// The complete Figure 3 deployment loop over a real socket:
//
//   [market traffic] -> SignatureServer (3a: payload check, clustering,
//   signature generation, versioned feed) -> FeedServer (HTTP on loopback)
//   -> device polls /version, fetches /feed -> FlowMonitor (3b) mediates
//   the remaining traffic with remembered per-(app, domain) decisions.
//
// Server and device run in one process here but exchange *only* HTTP bytes
// over 127.0.0.1 — exactly the protocol a real split deployment would use.
//
//   ./build/examples/full_loop [scale]

#include <cstdio>
#include <cstdlib>

#include "core/flow_monitor.h"
#include "core/signature_server.h"
#include "io/feed_server.h"
#include "sim/trafficgen.h"

int main(int argc, char** argv) {
  using namespace leakdet;
  double scale = argc > 1 ? std::atof(argv[1]) : 0.05;

  // Market traffic, observed in arrival order.
  sim::TrafficConfig config;
  config.seed = 31;
  config.scale = scale;
  sim::Trace trace = sim::GenerateTrace(config);
  std::printf("[world ] %zu packets from %zu apps\n", trace.packets.size(),
              trace.population.apps.size());

  // --- Figure 3a: the collection/analysis server -------------------------
  core::PayloadCheck oracle({trace.device.ToTokens()});
  core::SignatureServer::Options server_options;
  server_options.retrain_after = 400;
  server_options.pipeline.sample_size = 250;
  core::SignatureServer analysis(&oracle, server_options);

  io::FeedServer feed_http([&analysis] {
    return std::make_pair(analysis.feed_version(), analysis.Feed());
  });
  if (Status s = feed_http.Start(); !s.ok()) {
    std::fprintf(stderr, "feed server: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("[server] feed at http://127.0.0.1:%u/feed\n",
              feed_http.port());

  // The server sees the first 60%% of the traffic (its collection phase).
  size_t split = trace.packets.size() * 6 / 10;
  size_t retrains = 0;
  for (size_t i = 0; i < split; ++i) {
    if (analysis.Ingest(trace.packets[i].packet)) ++retrains;
  }
  std::printf("[server] ingested %zu packets, retrained %zu times, feed v%llu"
              " (%zu signatures)\n",
              split, retrains,
              static_cast<unsigned long long>(analysis.feed_version()),
              analysis.signatures().size());

  // --- Figure 3b: the device ---------------------------------------------
  auto version = io::FetchFeedVersion(feed_http.port());
  if (!version.ok()) {
    std::fprintf(stderr, "device poll: %s\n",
                 version.status().ToString().c_str());
    return 1;
  }
  auto feed = io::FetchFeed(feed_http.port());
  if (!feed.ok()) {
    std::fprintf(stderr, "device fetch: %s\n",
                 feed.status().ToString().c_str());
    return 1;
  }
  auto deployed = match::SignatureSet::Deserialize(feed->payload);
  if (!deployed.ok()) {
    std::fprintf(stderr, "device feed parse: %s\n",
                 deployed.status().ToString().c_str());
    return 1;
  }
  std::printf("[device] fetched feed v%llu over HTTP (%zu signatures, %zu "
              "bytes)\n",
              static_cast<unsigned long long>(feed->version),
              deployed->size(), feed->payload.size());

  core::Detector detector(std::move(*deployed));
  core::FlowMonitor monitor(&detector,
                            [](uint32_t, const std::string&) {
                              return false;  // cautious user: block leaks
                            });

  // The device mediates the remaining 40% of the traffic (unseen by
  // training except through the signatures).
  size_t leaks_blocked = 0, leaks_through = 0;
  for (size_t i = split; i < trace.packets.size(); ++i) {
    core::FlowVerdict verdict = monitor.Mediate(trace.packets[i].packet);
    if (trace.packets[i].sensitive()) {
      (verdict == core::FlowVerdict::kBlockedByPolicy ? leaks_blocked
                                                      : leaks_through)++;
    }
  }
  const core::FlowStats& stats = monitor.stats();
  std::printf("[device] mediated %zu flows: %zu silent, %zu blocked "
              "(%zu prompts)\n",
              trace.packets.size() - split, stats.silent, stats.blocked,
              stats.prompts);
  if (leaks_blocked + leaks_through > 0) {
    std::printf("[device] leaks stopped: %zu / %zu (%.1f%%)\n", leaks_blocked,
                leaks_blocked + leaks_through,
                100.0 * leaks_blocked / (leaks_blocked + leaks_through));
  }
  feed_http.Stop();
  return 0;
}
