// Market study: reproduces the paper's §III problem analysis on a simulated
// Android market — permission combinations (Table I), destination fan-out
// (Figure 2), per-service traffic (Table II), and the sensitive-information
// mix (Table III) — then prints the privacy findings the paper's
// introduction summarizes.
//
//   ./build/examples/market_study [scale] [seed]

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "eval/analysis.h"
#include "eval/table_format.h"
#include "sim/trafficgen.h"

int main(int argc, char** argv) {
  using namespace leakdet;
  double scale = argc > 1 ? std::atof(argv[1]) : 0.25;
  uint64_t seed = argc > 2 ? static_cast<uint64_t>(std::atoll(argv[2])) : 42;

  sim::TrafficConfig config;
  config.seed = seed;
  config.scale = scale;
  sim::Trace trace = sim::GenerateTrace(config);
  std::printf("market: %zu apps, %zu packets captured\n\n",
              trace.population.apps.size(), trace.packets.size());

  // --- Permission analysis (§III-A) --------------------------------------
  std::vector<int> combos = trace.population.PermissionComboCounts();
  int total = static_cast<int>(trace.population.apps.size());
  int dangerous = 0;
  for (const sim::App& app : trace.population.apps) {
    if (app.permissions.IsDangerousCombination()) ++dangerous;
  }
  std::printf("permission analysis:\n");
  std::printf("  INTERNET only:             %d apps\n", combos[0]);
  std::printf("  + LOCATION:                %d apps\n", combos[1]);
  std::printf("  + LOCATION + PHONE STATE:  %d apps\n", combos[2]);
  std::printf("  + PHONE STATE:             %d apps\n", combos[3]);
  std::printf("  all four:                  %d apps\n", combos[4]);
  std::printf("  dangerous combinations:    %d/%d (%.0f%%)\n\n", dangerous,
              total, 100.0 * dangerous / total);

  // --- Destination fan-out (Figure 2) -------------------------------------
  eval::DestinationDistribution dist =
      eval::ComputeDestinationDistribution(trace);
  std::printf("network fan-out: mean %.1f destinations per app, max %d;\n",
              dist.mean, dist.max);
  std::printf("  %.0f%% of apps reach more than one server\n\n",
              100.0 * (1.0 - dist.CumulativeAt(1)));

  // --- Who receives the traffic (Table II) --------------------------------
  auto domains = eval::ComputeDomainStats(trace, /*min_apps=*/5);
  std::printf("top destinations (>=5 apps):\n");
  eval::TablePrinter table({"domain", "# packets", "# apps"});
  size_t shown = 0;
  for (const eval::DomainStats& s : domains) {
    if (shown++ >= 12) break;
    table.AddRow({s.domain, std::to_string(s.packets),
                  std::to_string(s.apps)});
  }
  std::printf("%s\n", table.Render().c_str());

  // --- What leaks (Table III) ---------------------------------------------
  size_t suspicious = 0, normal = 0;
  auto stats = eval::ComputeSensitiveStats(trace, &suspicious, &normal);
  std::printf("sensitive information in transit (%zu of %zu packets, %.0f%%):\n",
              suspicious, trace.packets.size(),
              100.0 * suspicious / trace.packets.size());
  eval::TablePrinter leak_table(
      {"identifier", "# packets", "# apps", "# destinations"});
  std::vector<eval::SensitiveTypeStats> sorted = stats;
  std::sort(sorted.begin(), sorted.end(),
            [](const auto& a, const auto& b) { return a.packets > b.packets; });
  for (const auto& s : sorted) {
    leak_table.AddRow({std::string(core::SensitiveTypeName(s.type)),
                       std::to_string(s.packets), std::to_string(s.apps),
                       std::to_string(s.destinations)});
  }
  std::printf("%s\n", leak_table.Render().c_str());

  std::printf(
      "finding: immutable identifiers (IMEI, ANDROID_ID and their hashes) "
      "flow to advertisement services without user confirmation — the "
      "privacy gap the leakdet signature pipeline closes.\n");
  return 0;
}
