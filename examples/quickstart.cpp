// Quickstart: generate a small simulated Android traffic trace, split it
// with the payload check, build signatures, and measure detection — the
// paper's whole pipeline in ~80 lines.
//
//   ./build/examples/quickstart [scale] [N]
//
// `scale` scales the dataset (default 0.05 => ~60 apps / ~5,400 packets);
// `N` is the signature-generation sample size (default 150).

#include <cstdio>
#include <cstdlib>

#include "core/payload_check.h"
#include "core/pipeline.h"
#include "eval/experiment.h"
#include "eval/metrics.h"
#include "eval/table_format.h"
#include "sim/trafficgen.h"

int main(int argc, char** argv) {
  using namespace leakdet;

  double scale = argc > 1 ? std::atof(argv[1]) : 0.05;
  size_t n = argc > 2 ? static_cast<size_t>(std::atoi(argv[2])) : 150;

  // 1. Simulate the market: apps, ad modules, HTTP traffic.
  sim::TrafficConfig config;
  config.seed = 7;
  config.scale = scale;
  sim::Trace trace = sim::GenerateTrace(config);
  std::printf("generated %zu packets from %zu apps (%zu services)\n",
              trace.packets.size(), trace.population.apps.size(),
              trace.services.size());

  // 2. Payload check: split into suspicious / normal groups (§IV-A).
  core::PayloadCheck oracle({trace.device.ToTokens()});
  std::vector<core::HttpPacket> suspicious;
  std::vector<core::HttpPacket> normal;
  oracle.Split(trace.RawPackets(), &suspicious, &normal);
  std::printf("payload check: %zu suspicious, %zu normal\n",
              suspicious.size(), normal.size());

  // 3. Cluster a sample of N suspicious packets and generate signatures.
  core::PipelineOptions options;
  options.sample_size = n;
  StatusOr<core::PipelineResult> result =
      core::RunPipeline(suspicious, normal, options);
  if (!result.ok()) {
    std::fprintf(stderr, "pipeline error: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  std::printf("clustered %zu packets into %zu clusters -> %zu signatures\n",
              result->sampled_indices.size(), result->clusters.size(),
              result->signatures.size());
  size_t show = 0;
  for (const match::ConjunctionSignature& sig :
       result->signatures.signatures()) {
    if (show++ >= 5) {
      std::printf("  ... (%zu more signatures)\n",
                  result->signatures.size() - 5);
      break;
    }
    std::printf("  %s  host=%s  tokens=%zu  cluster=%u\n", sig.id.c_str(),
                sig.host_scope.empty() ? "*" : sig.host_scope.c_str(),
                sig.tokens.size(), sig.cluster_size);
  }

  // 4. Detect: apply signatures back to the whole dataset (§V-B).
  core::Detector detector(std::move(result->signatures));
  eval::ConfusionCounts counts = eval::EvaluateDetector(
      detector, trace, result->sampled_indices.size());
  eval::DetectionRates rates = eval::ComputePaperRates(counts);
  std::printf("\ndetection (paper §V-B formulas, N=%zu):\n",
              counts.sample_size);
  std::printf("  true positive : %s\n",
              eval::FormatPercent(rates.tp).c_str());
  std::printf("  false negative: %s\n",
              eval::FormatPercent(rates.fn).c_str());
  std::printf("  false positive: %s\n",
              eval::FormatPercent(rates.fp).c_str());
  return 0;
}
