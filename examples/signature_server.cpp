// Signature server: the server half of Figure 3(a). Collects application
// traffic, splits it with the payload check, clusters a sample of the
// suspicious group, generates conjunction signatures, and writes the
// signature feed the on-device component consumes.
//
//   ./build/examples/signature_server [out.sigs] [scale] [N]
//
// Pair with: ./build/examples/on_device_monitor out.sigs

#include <cstdio>
#include <cstdlib>

#include "core/payload_check.h"
#include "core/pipeline.h"
#include "io/trace_io.h"
#include "sim/trafficgen.h"

int main(int argc, char** argv) {
  using namespace leakdet;
  std::string out_path = argc > 1 ? argv[1] : "signatures.sigs";
  double scale = argc > 2 ? std::atof(argv[2]) : 0.1;
  size_t n = argc > 3 ? static_cast<size_t>(std::atoi(argv[3])) : 300;

  // Collect traffic (simulated capture of the market's applications).
  sim::TrafficConfig config;
  config.seed = 42;
  config.scale = scale;
  sim::Trace trace = sim::GenerateTrace(config);
  std::printf("[server] captured %zu HTTP packets from %zu applications\n",
              trace.packets.size(), trace.population.apps.size());

  // Payload check: split suspicious / normal.
  core::PayloadCheck oracle({trace.device.ToTokens()});
  std::vector<core::HttpPacket> suspicious, normal;
  oracle.Split(trace.RawPackets(), &suspicious, &normal);
  std::printf("[server] payload check: %zu suspicious / %zu normal\n",
              suspicious.size(), normal.size());

  // Cluster + generate.
  core::PipelineOptions options;
  options.sample_size = n;
  options.seed = 42;
  auto result = core::RunPipeline(suspicious, normal, options);
  if (!result.ok()) {
    std::fprintf(stderr, "[server] pipeline: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  std::printf("[server] %zu clusters -> %zu signatures\n",
              result->clusters.size(), result->signatures.size());
  for (const auto& report : result->cluster_reports) {
    if (!report.emitted) {
      std::printf("[server]   cluster %zu (size %zu) rejected: %s\n",
                  report.cluster_index, report.cluster_size,
                  report.reject_reason.c_str());
    }
  }

  // Publish the feed.
  std::string feed = result->signatures.Serialize();
  if (Status s = io::WriteFile(out_path, feed); !s.ok()) {
    std::fprintf(stderr, "[server] write: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("[server] wrote %zu signatures (%zu bytes) to %s\n",
              result->signatures.size(), feed.size(), out_path.c_str());

  // Also persist a small labeled sample of the trace so the monitor example
  // can replay realistic traffic.
  std::vector<sim::LabeledPacket> sample(
      trace.packets.begin(),
      trace.packets.begin() +
          static_cast<long>(std::min<size_t>(trace.packets.size(), 5000)));
  std::string trace_path = out_path + ".trace.jsonl";
  if (Status s = io::WriteFile(trace_path, io::SerializeJsonl(sample));
      !s.ok()) {
    std::fprintf(stderr, "[server] write: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("[server] wrote %zu replay packets to %s\n", sample.size(),
              trace_path.c_str());
  return 0;
}
