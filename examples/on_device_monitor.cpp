// On-device information-flow-control application: the device half of
// Figure 3(b). Fetches the server's signature feed and mediates every
// outgoing HTTP request through core::FlowMonitor: benign traffic passes
// silently; requests matching a leakage signature trigger a per-(app,
// destination) user decision that is remembered — exactly the "fine
// grained" control the paper's abstract promises, with no framework
// modification.
//
//   ./build/examples/on_device_monitor [feed.sigs]
//
// Run ./build/examples/signature_server first to produce the feed; without
// arguments this example generates both sides in-process.

#include <cstdio>
#include <string>

#include "core/flow_monitor.h"
#include "core/payload_check.h"
#include "core/pipeline.h"
#include "io/trace_io.h"
#include "sim/trafficgen.h"

int main(int argc, char** argv) {
  using namespace leakdet;
  std::string feed_path = argc > 1 ? argv[1] : "";

  match::SignatureSet signatures;
  std::vector<sim::LabeledPacket> traffic;

  if (!feed_path.empty()) {
    auto feed = io::ReadFile(feed_path);
    if (!feed.ok()) {
      std::fprintf(stderr, "[device] cannot read feed: %s\n",
                   feed.status().ToString().c_str());
      return 1;
    }
    auto parsed = match::SignatureSet::Deserialize(*feed);
    if (!parsed.ok()) {
      std::fprintf(stderr, "[device] bad feed: %s\n",
                   parsed.status().ToString().c_str());
      return 1;
    }
    signatures = std::move(*parsed);
    auto replay = io::ReadFile(feed_path + ".trace.jsonl");
    if (replay.ok()) {
      auto packets = io::ParseJsonl(*replay);
      if (packets.ok()) traffic = std::move(*packets);
    }
  }

  if (traffic.empty()) {
    // Self-contained mode: build both sides in-process.
    std::printf("[device] no feed given; running self-contained demo\n");
    sim::TrafficConfig config;
    config.seed = 11;
    config.scale = 0.05;
    sim::Trace trace = sim::GenerateTrace(config);
    core::PayloadCheck oracle({trace.device.ToTokens()});
    std::vector<core::HttpPacket> suspicious, normal;
    oracle.Split(trace.RawPackets(), &suspicious, &normal);
    core::PipelineOptions options;
    options.sample_size = 150;
    auto result = core::RunPipeline(suspicious, normal, options);
    if (!result.ok()) {
      std::fprintf(stderr, "[device] pipeline: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    signatures = std::move(result->signatures);
    traffic = std::move(trace.packets);
  }

  std::printf("[device] loaded %zu signatures; mediating %zu requests\n\n",
              signatures.size(), traffic.size());

  core::Detector detector(std::move(signatures));
  // Simulated user: blocks pure trackers, allows the gaming platforms the
  // app needs to function. Only the first flow per (app, domain) prompts.
  size_t shown = 0;
  core::FlowMonitor monitor(
      &detector, [&shown](uint32_t app_id, const std::string& domain) {
        bool looks_like_platform = domain.find("gree") != std::string::npos ||
                                   domain.find("mbga") != std::string::npos;
        if (shown < 8) {
          ++shown;
          std::printf("  [prompt] app %u -> %s : sensitive information (%s)\n",
                      app_id, domain.c_str(),
                      looks_like_platform ? "allowed" : "BLOCKED");
        }
        return looks_like_platform;
      });

  size_t leaks_blocked = 0, leaks_through = 0;
  for (const sim::LabeledPacket& lp : traffic) {
    core::FlowVerdict verdict = monitor.Mediate(lp.packet);
    if (lp.sensitive()) {
      if (verdict == core::FlowVerdict::kBlockedByPolicy) {
        ++leaks_blocked;
      } else {
        ++leaks_through;
      }
    }
  }

  const core::FlowStats& stats = monitor.stats();
  std::printf("\n[device] session summary\n");
  std::printf("  silent passes:        %zu\n", stats.silent);
  std::printf("  flagged & blocked:    %zu\n", stats.blocked);
  std::printf("  flagged & allowed:    %zu\n", stats.allowed);
  std::printf("  user prompts shown:   %zu (decisions remembered: %zu)\n",
              stats.prompts, monitor.remembered_decisions());
  size_t leaks_total = leaks_blocked + leaks_through;
  if (leaks_total > 0) {
    std::printf("  actual leaks stopped: %zu / %zu (%.1f%%)\n", leaks_blocked,
                leaks_total, 100.0 * leaks_blocked / leaks_total);
  }
  return 0;
}
