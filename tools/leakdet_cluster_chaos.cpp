// Deterministic cluster-chaos driver: runs RunClusterChaos — N gateway
// ClusterNodes behind consistent-hash routing, WAL replication over scripted
// connections, scripted per-node disks, leader kill + failover + restart and
// a partition/heal window — and differentially verifies every verdict against
// the single-node Detector oracle plus byte-identical feeds and exact packet
// conservation.
//
// Reproducibility is the point: `leakdet_cluster_chaos --seed S` is
// bit-for-bit replayable — identical verdict-stream digests and deterministic
// counters on every run. With --runs=N (default 2) the scenario executes N
// times in-process and the tool fails if any digest or counter differs.
//
// Examples:
//   leakdet_cluster_chaos --seed=7
//   leakdet_cluster_chaos --schedule=short-io --seed=7 --runs=3
//   leakdet_cluster_chaos --crash-torn-tail=0.5 --crash-bit-flip=0.25
//   leakdet_cluster_chaos --nodes=5 --epochs=8 --kill-at=4 --partition-at=6

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "testing/cluster_chaos.h"
#include "testing/fault_script.h"

namespace {

struct Flags {
  std::string schedule = "none";  // "none" = faithful transport
  uint64_t seed = 1;
  size_t runs = 2;
  size_t nodes = 3;
  size_t shards = 2;
  size_t epochs = 6;
  size_t packets = 96;
  size_t retrain = 24;
  size_t queue_capacity = 256;
  uint64_t devices = 64;
  size_t kill_at = 3;
  size_t restart_after = 1;
  size_t partition_at = 5;
  size_t replog_batch = 64;
  double crash_torn_tail = 0.0;
  double crash_bit_flip = 0.0;
  bool list_schedules = false;
  bool verbose = false;
};

bool ParseFlag(const std::string& arg, const char* name, std::string* value) {
  std::string prefix = std::string("--") + name + "=";
  if (arg.rfind(prefix, 0) != 0) return false;
  *value = arg.substr(prefix.size());
  return true;
}

void Usage() {
  std::fprintf(
      stderr,
      "usage: leakdet_cluster_chaos [--seed=N] [--runs=N]\n"
      "  [--schedule=none|NAME|FILE] [--nodes=N] [--shards=N] [--epochs=N]\n"
      "  [--packets=N] [--retrain=N] [--queue-capacity=N] [--devices=N]\n"
      "  [--kill-at=EPOCH] [--restart-after=N] [--partition-at=EPOCH]\n"
      "  [--replog-batch=N] [--crash-torn-tail=P] [--crash-bit-flip=P]\n"
      "  [--list-schedules] [-v]\n"
      "(--kill-at=0 / --partition-at=0 disable that chaos event)\n");
}

bool ParseFlags(int argc, char** argv, Flags* flags) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    std::string value;
    if (arg == "--list-schedules") {
      flags->list_schedules = true;
    } else if (arg == "-v" || arg == "--verbose") {
      flags->verbose = true;
    } else if (ParseFlag(arg, "schedule", &value)) {
      flags->schedule = value;
    } else if (ParseFlag(arg, "seed", &value)) {
      flags->seed = std::strtoull(value.c_str(), nullptr, 10);
    } else if (ParseFlag(arg, "runs", &value)) {
      flags->runs = std::strtoull(value.c_str(), nullptr, 10);
    } else if (ParseFlag(arg, "nodes", &value)) {
      flags->nodes = std::strtoull(value.c_str(), nullptr, 10);
    } else if (ParseFlag(arg, "shards", &value)) {
      flags->shards = std::strtoull(value.c_str(), nullptr, 10);
    } else if (ParseFlag(arg, "epochs", &value)) {
      flags->epochs = std::strtoull(value.c_str(), nullptr, 10);
    } else if (ParseFlag(arg, "packets", &value)) {
      flags->packets = std::strtoull(value.c_str(), nullptr, 10);
    } else if (ParseFlag(arg, "retrain", &value)) {
      flags->retrain = std::strtoull(value.c_str(), nullptr, 10);
    } else if (ParseFlag(arg, "queue-capacity", &value)) {
      flags->queue_capacity = std::strtoull(value.c_str(), nullptr, 10);
    } else if (ParseFlag(arg, "devices", &value)) {
      flags->devices = std::strtoull(value.c_str(), nullptr, 10);
    } else if (ParseFlag(arg, "kill-at", &value)) {
      flags->kill_at = std::strtoull(value.c_str(), nullptr, 10);
    } else if (ParseFlag(arg, "restart-after", &value)) {
      flags->restart_after = std::strtoull(value.c_str(), nullptr, 10);
    } else if (ParseFlag(arg, "partition-at", &value)) {
      flags->partition_at = std::strtoull(value.c_str(), nullptr, 10);
    } else if (ParseFlag(arg, "replog-batch", &value)) {
      flags->replog_batch = std::strtoull(value.c_str(), nullptr, 10);
    } else if (ParseFlag(arg, "crash-torn-tail", &value)) {
      flags->crash_torn_tail = std::strtod(value.c_str(), nullptr);
    } else if (ParseFlag(arg, "crash-bit-flip", &value)) {
      flags->crash_bit_flip = std::strtod(value.c_str(), nullptr);
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return false;
    }
  }
  if (flags->runs == 0) flags->runs = 1;
  if (flags->epochs == 0) flags->epochs = 1;
  if (flags->nodes < 2) flags->nodes = 2;
  if (flags->seed == 0) flags->seed = 1;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  if (!ParseFlags(argc, argv, &flags)) {
    Usage();
    return 2;
  }
  if (flags.list_schedules) {
    for (const std::string& name :
         leakdet::testing::FaultScript::BuiltinNames()) {
      std::printf("%s\n", name.c_str());
    }
    return 0;
  }

  leakdet::testing::ClusterChaosOptions options;
  options.seed = flags.seed;
  if (flags.schedule != "none") {
    auto script = leakdet::testing::FaultScript::Load(flags.schedule);
    if (!script.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   std::string(script.status().message()).c_str());
      return 2;
    }
    script->set_seed(flags.seed);
    options.script = *script;
  }
  options.store_faults.torn_tail = flags.crash_torn_tail;
  options.store_faults.bit_flip = flags.crash_bit_flip;
  options.nodes = flags.nodes;
  options.shards = flags.shards;
  options.queue_capacity = flags.queue_capacity;
  options.epochs = flags.epochs;
  options.packets_per_epoch = flags.packets;
  options.retrain_after = flags.retrain;
  options.devices = flags.devices;
  options.kill_leader_at_epoch = flags.kill_at;
  options.restart_killed_after = flags.restart_after;
  options.partition_follower_at_epoch = flags.partition_at;
  options.replog_batch_limit = flags.replog_batch;
  if (flags.verbose) {
    options.log = [](const std::string& message) {
      std::fprintf(stderr, "[cluster-chaos] %s\n", message.c_str());
    };
  }

  std::printf("schedule=%s seed=%llu nodes=%zu runs=%zu\n",
              flags.schedule.c_str(),
              static_cast<unsigned long long>(flags.seed), flags.nodes,
              flags.runs);

  bool all_ok = true;
  bool reproducible = true;
  leakdet::testing::ClusterChaosResult first;
  for (size_t run = 0; run < flags.runs; ++run) {
    leakdet::testing::ClusterChaosResult result =
        leakdet::testing::RunClusterChaos(options);
    std::printf("--- run %zu ---\n%s\n", run + 1, result.Summary().c_str());
    if (!result.ok()) all_ok = false;
    if (run == 0) {
      first = result;
    } else if (result.digest != first.digest ||
               result.ingested != first.ingested ||
               result.accepted != first.accepted ||
               result.delivered != first.delivered ||
               result.verdicts_checked != first.verdicts_checked ||
               result.records_replicated != first.records_replicated ||
               result.failovers != first.failovers ||
               result.node_restarts != first.node_restarts ||
               result.partitions != first.partitions ||
               result.heals != first.heals) {
      reproducible = false;
    }
  }
  if (!reproducible) {
    std::fprintf(stderr,
                 "FAIL: runs diverged — the scenario is not deterministic\n");
    return 1;
  }
  if (!all_ok) {
    std::fprintf(stderr,
                 "FAIL: cluster invariants violated (see summaries)\n");
    return 1;
  }
  std::printf("PASS: %zu run(s), digest=%llx\n", flags.runs,
              static_cast<unsigned long long>(first.digest));
  return 0;
}
