// Deterministic chaos driver for the feed/gateway serving path: runs the
// full SignatureServer + TrainerLoop (with a durable in-memory store) +
// DetectionGateway + FeedServer + obs::AdminServer stack over scripted
// connections under a seeded fault schedule, and verifies every gateway
// verdict against the single-threaded core::Detector oracle plus exact
// packet conservation and /statusz-vs-live-state consistency.
// --admin-port additionally exposes driver progress (/statusz) over TCP.
//
// Reproducibility is the point: `leakdet_chaos --seed S --schedule F` is
// bit-for-bit replayable — identical verdict streams (hashed into the run
// digest), drop counters, and exit status on every run. With --runs=N (default
// 2) the tool executes the scenario N times in-process and fails if any
// digest or deterministic counter differs.
//
// Examples:
//   leakdet_chaos --schedule=short-io --seed=7
//   leakdet_chaos --schedule=tools/schedules/reset_storm.fault --runs=3
//   leakdet_chaos --list-schedules
//   leakdet_chaos --schedule=swap-crash --print-schedule

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "obs/admin_server.h"
#include "testing/chaos.h"
#include "testing/fault_script.h"

namespace {

struct Flags {
  std::string schedule = "short-io";
  uint64_t seed = 0;  // 0 = keep the schedule's own seed
  size_t runs = 2;
  size_t shards = 4;
  size_t epochs = 3;
  size_t packets = 120;
  size_t fetches = 2;
  size_t queue_capacity = 256;
  bool list_schedules = false;
  bool print_schedule = false;
  bool verbose = false;
  long admin_port = -1;  // -1 = no admin server, 0 = ephemeral port
};

bool ParseFlag(const std::string& arg, const char* name, std::string* value) {
  std::string prefix = std::string("--") + name + "=";
  if (arg.rfind(prefix, 0) != 0) return false;
  *value = arg.substr(prefix.size());
  return true;
}

void Usage() {
  std::fprintf(
      stderr,
      "usage: leakdet_chaos [--schedule=NAME|FILE] [--seed=N] [--runs=N]\n"
      "  [--shards=N] [--epochs=N] [--packets=N] [--fetches=N]\n"
      "  [--queue-capacity=N] [--admin-port=N] [--list-schedules]\n"
      "  [--print-schedule] [-v]\n");
}

bool ParseFlags(int argc, char** argv, Flags* flags) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    std::string value;
    if (arg == "--list-schedules") {
      flags->list_schedules = true;
    } else if (arg == "--print-schedule") {
      flags->print_schedule = true;
    } else if (arg == "-v" || arg == "--verbose") {
      flags->verbose = true;
    } else if (ParseFlag(arg, "schedule", &value)) {
      flags->schedule = value;
    } else if (ParseFlag(arg, "seed", &value)) {
      flags->seed = std::strtoull(value.c_str(), nullptr, 10);
    } else if (ParseFlag(arg, "runs", &value)) {
      flags->runs = std::strtoull(value.c_str(), nullptr, 10);
    } else if (ParseFlag(arg, "shards", &value)) {
      flags->shards = std::strtoull(value.c_str(), nullptr, 10);
    } else if (ParseFlag(arg, "epochs", &value)) {
      flags->epochs = std::strtoull(value.c_str(), nullptr, 10);
    } else if (ParseFlag(arg, "packets", &value)) {
      flags->packets = std::strtoull(value.c_str(), nullptr, 10);
    } else if (ParseFlag(arg, "fetches", &value)) {
      flags->fetches = std::strtoull(value.c_str(), nullptr, 10);
    } else if (ParseFlag(arg, "queue-capacity", &value)) {
      flags->queue_capacity = std::strtoull(value.c_str(), nullptr, 10);
    } else if (ParseFlag(arg, "admin-port", &value)) {
      flags->admin_port = std::strtol(value.c_str(), nullptr, 10);
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return false;
    }
  }
  if (flags->runs == 0) flags->runs = 1;
  if (flags->epochs == 0) flags->epochs = 1;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  if (!ParseFlags(argc, argv, &flags)) {
    Usage();
    return 2;
  }
  if (flags.list_schedules) {
    for (const std::string& name :
         leakdet::testing::FaultScript::BuiltinNames()) {
      std::printf("%s\n", name.c_str());
    }
    return 0;
  }

  auto script = leakdet::testing::FaultScript::Load(flags.schedule);
  if (!script.ok()) {
    std::fprintf(stderr, "error: %s\n",
                 std::string(script.status().message()).c_str());
    return 2;
  }
  if (flags.seed != 0) script->set_seed(flags.seed);
  if (flags.print_schedule) {
    std::printf("%s", script->Serialize().c_str());
    return 0;
  }

  leakdet::testing::ChaosOptions options;
  options.script = *script;
  options.seed = script->seed();
  options.shards = flags.shards;
  options.epochs = flags.epochs;
  options.packets_per_epoch = flags.packets;
  options.feed_fetches_per_epoch = flags.fetches;
  options.queue_capacity = flags.queue_capacity;
  if (flags.verbose) {
    options.log = [](const std::string& message) {
      std::fprintf(stderr, "[chaos] %s\n", message.c_str());
    };
  }

  std::printf("schedule=%s seed=%llu runs=%zu\n", script->name().c_str(),
              static_cast<unsigned long long>(script->seed()), flags.runs);

  // Optional admin plane for long chaos campaigns: each RunChaos owns a
  // private registry (its components' lifetimes end with the run), so the
  // process-global default registry carries driver-level progress instead.
  std::atomic<uint64_t> runs_done{0};
  std::atomic<uint64_t> runs_failed{0};
  leakdet::obs::Registry* registry = leakdet::obs::Registry::Default();
  leakdet::obs::Gauge* runs_gauge = registry->GetGauge("chaos.runs_done");
  leakdet::obs::Gauge* failed_gauge = registry->GetGauge("chaos.runs_failed");
  leakdet::obs::AdminServer admin;
  if (flags.admin_port >= 0) {
    std::string schedule_name = script->name();
    admin.AddStatusSection(
        "chaos", [schedule_name, &runs_done, &runs_failed, total = flags.runs] {
          return "schedule: " + schedule_name +
                 "\nruns_done: " + std::to_string(runs_done.load()) +
                 "\nruns_failed: " + std::to_string(runs_failed.load()) +
                 "\nruns_total: " + std::to_string(total) + "\n";
        });
    leakdet::Status started =
        admin.Start(static_cast<uint16_t>(flags.admin_port));
    if (!started.ok()) {
      std::fprintf(stderr, "admin server: %s\n", started.ToString().c_str());
      return 2;
    }
    std::printf("admin plane at http://127.0.0.1:%u/statusz\n", admin.port());
  }

  bool all_ok = true;
  bool reproducible = true;
  uint64_t first_digest = 0;
  leakdet::testing::ChaosResult first;
  for (size_t run = 0; run < flags.runs; ++run) {
    leakdet::testing::ChaosResult result =
        leakdet::testing::RunChaos(options);
    std::printf("--- run %zu ---\n%s\n", run + 1, result.Summary().c_str());
    if (!result.ok()) {
      all_ok = false;
      runs_failed.fetch_add(1);
    }
    runs_done.fetch_add(1);
    runs_gauge->Set(static_cast<int64_t>(runs_done.load()));
    failed_gauge->Set(static_cast<int64_t>(runs_failed.load()));
    if (run == 0) {
      first = result;
      first_digest = result.digest;
    } else if (result.digest != first_digest ||
               result.delivered != first.delivered ||
               result.dropped != first.dropped ||
               result.accepted != first.accepted ||
               result.oracle_mismatches != first.oracle_mismatches ||
               result.swaps != first.swaps) {
      reproducible = false;
    }
  }
  if (!reproducible) {
    std::fprintf(stderr,
                 "FAIL: runs diverged — the scenario is not deterministic\n");
    return 1;
  }
  if (!all_ok) {
    std::fprintf(stderr, "FAIL: chaos invariants violated (see summaries)\n");
    return 1;
  }
  std::printf("PASS: %zu run(s), digest=%llx\n", flags.runs,
              static_cast<unsigned long long>(first_digest));
  return 0;
}
