#!/bin/sh
# Line-coverage report for the leakdet library (src/ only, tests excluded).
#
# Configures a dedicated build tree with -DLEAKDET_COVERAGE=ON, runs the
# test suite (stress soak excluded by default — it adds minutes and no new
# lines), then aggregates every per-file `gcov` summary into one number.
# Plain gcov only: no gcovr/lcov dependency.
#
# Usage:
#   tools/coverage.sh                 # build, test, report
#   BUILD_DIR=out tools/coverage.sh   # custom build tree
#   CTEST_ARGS="-L cluster" tools/coverage.sh   # coverage of one tier
set -eu

cd "$(dirname "$0")/.."
BUILD_DIR="${BUILD_DIR:-build-coverage}"
CTEST_ARGS="${CTEST_ARGS:--LE stress}"
JOBS="$(nproc 2>/dev/null || echo 4)"

cmake -B "$BUILD_DIR" -DLEAKDET_COVERAGE=ON -DCMAKE_BUILD_TYPE=Debug >/dev/null
cmake --build "$BUILD_DIR" -j"$JOBS" >/dev/null
# shellcheck disable=SC2086  # CTEST_ARGS is intentionally word-split
ctest --test-dir "$BUILD_DIR" --output-on-failure $CTEST_ARGS

# Each object directory holds the .gcno/.gcda pairs for its sources; run
# gcov once per counter file and fold the "File/Lines executed" summaries.
# Only files under src/ count toward the library number.
GCOV_TMP="$(mktemp -d)"
trap 'rm -rf "$GCOV_TMP"' EXIT
find "$BUILD_DIR/src" -name '*.gcda' | while read -r gcda; do
  (cd "$GCOV_TMP" && gcov -o "$(dirname "$OLDPWD/$gcda")" \
      "$OLDPWD/$gcda" 2>/dev/null)
done | awk '
  /^File / { in_src = ($0 ~ /src\//) && ($0 !~ /tests\//) }
  /^Lines executed:/ && in_src {
    # "Lines executed:NN.NN% of M" -> parts: Lines executed NN.NN of M
    split($0, parts, /[:% ]+/)
    pct = parts[3]; n = parts[5]
    covered += n * pct / 100.0; total += n
  }
  END {
    if (total == 0) { print "no coverage data found"; exit 1 }
    printf "TOTAL line coverage (src/): %.1f%% of %d lines\n",
           100.0 * covered / total, total
  }'
