// Real-socket gateway cluster: stands up N ClusterNodes on the local
// filesystem with TCP replication endpoints on 127.0.0.1, routes seeded
// detection traffic across the ring, replicates the leader's WAL to every
// follower each epoch, and (optionally) hard-kills the leader mid-run to
// demonstrate a live failover from replicated local state.
//
// Unlike leakdet_cluster_chaos (scripted transport + disks, differential
// oracle), this tool runs the production wiring: real sockets, the real
// filesystem under --data-dir, and leaders training from the traffic they
// serve (train_from_gateway). Data directories survive the run — rerunning
// with the same --data-dir recovers each node from its snapshot + WAL.
//
// Examples:
//   leakdet_cluster --data-dir=/tmp/leakdet-cluster
//   leakdet_cluster --data-dir=/tmp/lc --nodes=5 --epochs=6 --kill-at=3
//   leakdet_cluster --data-dir=/tmp/lc --admin-port=8080

#include <sys/stat.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "cluster/cluster.h"
#include "cluster/node.h"
#include "core/payload_check.h"
#include "net/tcp.h"
#include "obs/admin_server.h"
#include "store/file.h"
#include "testing/packet_gen.h"
#include "util/rng.h"

namespace {

struct Flags {
  std::string data_dir = "leakdet-cluster-data";
  size_t nodes = 3;
  size_t shards = 2;
  size_t epochs = 4;
  size_t packets = 120;
  size_t retrain = 16;
  uint64_t devices = 64;
  uint64_t seed = 1;
  double p_sensitive = 0.35;
  size_t kill_at = 0;  // 0 = never kill the leader
  long admin_port = -1;
  bool verbose = false;
};

bool ParseFlag(const std::string& arg, const char* name, std::string* value) {
  std::string prefix = std::string("--") + name + "=";
  if (arg.rfind(prefix, 0) != 0) return false;
  *value = arg.substr(prefix.size());
  return true;
}

void Usage() {
  std::fprintf(
      stderr,
      "usage: leakdet_cluster [--data-dir=DIR] [--nodes=N] [--shards=N]\n"
      "  [--epochs=N] [--packets=N] [--retrain=N] [--devices=N] [--seed=N]\n"
      "  [--p-sensitive=P] [--kill-at=EPOCH] [--admin-port=N] [-v]\n");
}

bool ParseFlags(int argc, char** argv, Flags* flags) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    std::string value;
    if (arg == "-v" || arg == "--verbose") {
      flags->verbose = true;
    } else if (ParseFlag(arg, "data-dir", &value)) {
      flags->data_dir = value;
    } else if (ParseFlag(arg, "nodes", &value)) {
      flags->nodes = std::strtoull(value.c_str(), nullptr, 10);
    } else if (ParseFlag(arg, "shards", &value)) {
      flags->shards = std::strtoull(value.c_str(), nullptr, 10);
    } else if (ParseFlag(arg, "epochs", &value)) {
      flags->epochs = std::strtoull(value.c_str(), nullptr, 10);
    } else if (ParseFlag(arg, "packets", &value)) {
      flags->packets = std::strtoull(value.c_str(), nullptr, 10);
    } else if (ParseFlag(arg, "retrain", &value)) {
      flags->retrain = std::strtoull(value.c_str(), nullptr, 10);
    } else if (ParseFlag(arg, "devices", &value)) {
      flags->devices = std::strtoull(value.c_str(), nullptr, 10);
    } else if (ParseFlag(arg, "seed", &value)) {
      flags->seed = std::strtoull(value.c_str(), nullptr, 10);
    } else if (ParseFlag(arg, "p-sensitive", &value)) {
      flags->p_sensitive = std::strtod(value.c_str(), nullptr);
    } else if (ParseFlag(arg, "kill-at", &value)) {
      flags->kill_at = std::strtoull(value.c_str(), nullptr, 10);
    } else if (ParseFlag(arg, "admin-port", &value)) {
      flags->admin_port = std::strtol(value.c_str(), nullptr, 10);
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return false;
    }
  }
  if (flags->nodes < 2) flags->nodes = 2;
  if (flags->epochs == 0) flags->epochs = 1;
  if (flags->seed == 0) flags->seed = 1;
  return true;
}

bool EnsureDir(const std::string& path) {
  if (::mkdir(path.c_str(), 0755) == 0 || errno == EEXIST) return true;
  std::fprintf(stderr, "mkdir %s: %s\n", path.c_str(), std::strerror(errno));
  return false;
}

bool WaitFor(const std::function<bool()>& pred, int timeout_ms) {
  auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  while (!pred()) {
    if (std::chrono::steady_clock::now() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  if (!ParseFlags(argc, argv, &flags)) {
    Usage();
    return 2;
  }
  if (!EnsureDir(flags.data_dir)) return 2;

  // Seeded device fleet: the oracle every node carries (so any follower can
  // be promoted into a trainer) and the token pool traffic leaks from.
  leakdet::Rng rng(flags.seed);
  std::vector<leakdet::core::DeviceTokens> fleet(2);
  for (auto& device : fleet) {
    device.android_id = rng.RandomHex(16);
    device.imei = rng.RandomDigits(15);
    device.imsi = rng.RandomDigits(15);
    device.sim_serial = rng.RandomDigits(19);
    device.carrier = "NTT DOCOMO";
  }
  auto oracle = std::make_unique<leakdet::core::PayloadCheck>(fleet);
  std::vector<std::string> tokens;
  for (const auto& device : fleet) {
    tokens.push_back(device.android_id);
    tokens.push_back(device.imei);
  }

  // Each node's replication endpoint binds an ephemeral loopback port; the
  // holder is refreshed by the factory so a restarted node's new port is
  // what peers dial.
  auto ports = std::make_shared<std::vector<std::atomic<uint16_t>>>(
      flags.nodes);
  std::atomic<uint64_t> delivered{0};

  leakdet::cluster::ClusterOptions cluster_options;
  leakdet::cluster::Cluster cluster(cluster_options);
  for (size_t i = 0; i < flags.nodes; ++i) {
    const std::string id = "node-" + std::to_string(i);
    const std::string node_dir = flags.data_dir + "/" + id;
    if (!EnsureDir(node_dir)) return 2;
    auto factory = [&, i, id, node_dir]()
        -> leakdet::StatusOr<
            std::unique_ptr<leakdet::cluster::ClusterNode>> {
      leakdet::cluster::NodeOptions options;
      options.node_id = id;
      options.dir = leakdet::store::Dir::Real();
      options.data_dir = node_dir;
      options.oracle = oracle.get();
      options.server.retrain_after = flags.retrain;
      options.server.pipeline.sample_size = 16;
      options.server.pipeline.normal_corpus_size = 64;
      options.server.pipeline.num_threads = 1;
      options.gateway.num_shards = flags.shards;
      options.gateway.queue_capacity = 256;
      options.sink = [&delivered](const leakdet::core::HttpPacket&,
                                  const leakdet::gateway::Verdict&) {
        delivered.fetch_add(1, std::memory_order_relaxed);
      };
      LEAKDET_ASSIGN_OR_RETURN(auto node, leakdet::cluster::ClusterNode::Start(
                                              std::move(options)));
      LEAKDET_RETURN_IF_ERROR(node->ServeReplication(0));
      (*ports)[i].store(node->replication_port());
      return node;
    };
    auto connect = [ports, i]()
        -> leakdet::StatusOr<std::unique_ptr<leakdet::net::Stream>> {
      LEAKDET_ASSIGN_OR_RETURN(
          leakdet::net::TcpConnection conn,
          leakdet::net::TcpConnectLoopback((*ports)[i].load()));
      (void)conn.SetReadTimeout(5000);
      return std::unique_ptr<leakdet::net::Stream>(
          std::make_unique<leakdet::net::TcpConnection>(std::move(conn)));
    };
    cluster.AddNode(id, std::move(factory), std::move(connect));
  }

  leakdet::Status started = cluster.Start(0);
  if (!started.ok()) {
    std::fprintf(stderr, "cluster start: %s\n", started.ToString().c_str());
    return 1;
  }
  for (size_t i = 0; i < flags.nodes; ++i) {
    std::printf("node-%zu replication at 127.0.0.1:%u\n", i,
                (*ports)[i].load());
  }

  leakdet::obs::AdminServer admin;
  cluster.AddStatusTo(&admin);
  if (flags.admin_port >= 0) {
    leakdet::Status admin_started =
        admin.Start(static_cast<uint16_t>(flags.admin_port));
    if (!admin_started.ok()) {
      std::fprintf(stderr, "admin server: %s\n",
                   admin_started.ToString().c_str());
      return 1;
    }
    std::printf("admin plane at http://127.0.0.1:%u/statusz\n", admin.port());
  }

  uint64_t submitted = 0;
  bool failed = false;
  for (size_t epoch = 1; epoch <= flags.epochs; ++epoch) {
    // Route one seeded batch across the ring; the leader trains from the
    // sensitive verdicts it serves (production wiring).
    for (size_t p = 0; p < flags.packets; ++p) {
      leakdet::core::HttpPacket packet =
          leakdet::testing::GeneratePacket(&rng, tokens, flags.p_sensitive);
      const uint64_t device = rng.UniformInt(flags.devices);
      if (cluster.Submit(device, std::move(packet))) ++submitted;
    }
    // Let the batch drain before replicating, so this epoch's training is
    // on disk for the followers to mirror.
    if (!WaitFor([&] { return delivered.load() >= submitted; }, 30000)) {
      std::fprintf(stderr, "epoch %zu: delivery stalled (%llu/%llu)\n", epoch,
                   static_cast<unsigned long long>(delivered.load()),
                   static_cast<unsigned long long>(submitted));
      failed = true;
      break;
    }
    leakdet::cluster::Cluster::SyncStats stats = cluster.SyncFollowers();
    cluster.PollHeartbeats();
    if (flags.verbose) {
      std::fprintf(stderr,
                   "[epoch %zu] synced=%zu records=%llu epochs_applied=%llu "
                   "failures=%zu\n",
                   epoch, stats.followers_synced,
                   static_cast<unsigned long long>(stats.records_replicated),
                   static_cast<unsigned long long>(stats.epochs_applied),
                   stats.failures);
    }
    if (stats.failures > 0) {
      std::fprintf(stderr, "epoch %zu: %zu replication rounds failed\n", epoch,
                   stats.failures);
      failed = true;
    }

    if (flags.kill_at != 0 && epoch == flags.kill_at) {
      const size_t old_leader = cluster.leader_index();
      std::printf("epoch %zu: killing leader node-%zu\n", epoch, old_leader);
      leakdet::Status killed = cluster.KillLeader();
      if (!killed.ok()) {
        std::fprintf(stderr, "kill: %s\n", killed.ToString().c_str());
        failed = true;
        break;
      }
      // Followers notice the silence, then the deterministic election runs.
      bool promoted = false;
      for (size_t round = 0; round < 2 * cluster_options.heartbeat_miss_threshold;
           ++round) {
        cluster.PollHeartbeats();
        if (cluster.MaybeFailover()) {
          promoted = true;
          break;
        }
      }
      if (!promoted) {
        std::fprintf(stderr, "epoch %zu: failover never fired\n", epoch);
        failed = true;
        break;
      }
      std::printf("epoch %zu: node-%zu promoted from its replicated WAL\n",
                  epoch, cluster.leader_index());
      leakdet::Status restarted = cluster.RestartNode(old_leader);
      if (!restarted.ok()) {
        std::fprintf(stderr, "restart: %s\n", restarted.ToString().c_str());
        failed = true;
        break;
      }
      std::printf("epoch %zu: node-%zu rejoined as a follower\n", epoch,
                  old_leader);
    }
  }

  std::printf("%s", cluster.StatusReport().c_str());
  cluster.Shutdown();

  leakdet::cluster::Cluster::Totals totals = cluster.GatewayTotals();
  std::printf(
      "submitted=%llu accepted=%llu dropped=%llu processed=%llu "
      "delivered=%llu failovers=%llu\n",
      static_cast<unsigned long long>(totals.submitted),
      static_cast<unsigned long long>(totals.accepted),
      static_cast<unsigned long long>(totals.dropped),
      static_cast<unsigned long long>(totals.processed),
      static_cast<unsigned long long>(delivered.load()),
      static_cast<unsigned long long>(cluster.failovers()));
  if (totals.processed != totals.accepted) {
    std::fprintf(stderr, "FAIL: accepted packets were lost in flight\n");
    failed = true;
  }
  if (failed) return 1;
  std::printf("PASS\n");
  return 0;
}
