// leakdet — command-line frontend for the whole pipeline, operating on
// files so each stage can be scripted and inspected:
//
//   leakdet generate  --out trace.jsonl --device device.tokens
//                     [--scale 0.1] [--seed 42] [--pcap trace.pcap]
//   leakdet split     --trace trace.jsonl --device device.tokens
//                     --suspicious sus.jsonl --normal normal.jsonl
//                     [--xor-key KEY]
//   leakdet sign      --suspicious sus.jsonl --normal normal.jsonl
//                     --out feed.sigs [--n 500] [--cut 2.0]
//                     [--compressor lzw] [--bayes]
//   leakdet detect    --signatures feed.sigs --trace trace.jsonl
//                     [--max-print 10]
//   leakdet eval      --signatures feed.sigs --trace trace.jsonl [--n 500]
//   leakdet pcap-export --trace trace.jsonl --out trace.pcap
//   leakdet pcap-import --pcap trace.pcap --out trace.jsonl
//   leakdet train     --trace trace.jsonl --device device.tokens
//                     [--data-dir store/] [--out feed.sigs]
//                     [--retrain-after 200] [--n 500] [--seed 1]
//                     [--sync-policy every-record|every-n|on-rotate]
//   leakdet serve     --signatures feed.sigs [--port P] [--admin-port P]
//   leakdet serve     --trace trace.jsonl --device device.tokens
//                     [--data-dir store/] [--port P] [--admin-port P]
//                     [--rate 500] [--loops 0] [--retrain-after 200]
//                     [--prefilter auto|off|scalar|simd]
//   leakdet federate  [--devices 24] [--shards 4] [--events 9000]
//                     [--seed 8086] [--scale 0.05] [--skew 0.3] [--k 2]
//                     [--tenant fleet] [--out feed.sigs] [--eval]
//                     [--holdout 1200] [--shard-export PREFIX]
//                     [--from-shards a.shard,b.shard,...]
//                     [--data-dir root/]
//
// `federate` runs the crowdsourced pipeline end to end: a simulated device
// fleet is partitioned into disjoint shards (device index mod --shards),
// each shard trains its own candidate signatures plus distinct-device
// witness evidence, the exports are merged with the deterministic
// federation protocol, and the K-anonymity gate publishes only tokens seen
// on at least --k devices. --shard-export writes each shard's export to
// PREFIX<i>.shard and stops (ship them between machines); --from-shards
// skips simulation and merges previously exported shard files instead.
// --eval additionally trains a central oracle on the union of all shard
// traffic and prints the merged-vs-central scoreboard on held-out replay.
// --data-dir snapshots the published feed into the tenant's own store
// lineage (<root>/tenant-<name>/) for `leakdet_store --tenant` inspection.
//
// `serve` with --signatures serves a static feed; with --trace/--device it
// stands up the live stack (gateway + trainer + optional durable store) and
// replays the trace through it. --admin-port exposes /metrics (Prometheus),
// /healthz, and /statusz for either form.
//
// `train` streams the trace through the online SignatureServer. With
// --data-dir every packet is WAL-logged before ingestion and every published
// epoch is snapshotted, so a killed run resumes exactly where the log ends —
// rerun the same command and it recovers, replays, and continues.
//
// Exit status: 0 on success, 1 on any error (message on stderr).

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <chrono>
#include <cstring>
#include <map>
#include <memory>
#include <thread>
#include <string>
#include <vector>

#include "core/detector.h"
#include "core/payload_check.h"
#include "core/pipeline.h"
#include "core/siggen_seq.h"
#include "core/signature_server.h"
#include "eval/metrics.h"
#include "federation/eval.h"
#include "federation/merge.h"
#include "federation/shard_trainer.h"
#include "federation/tenant_store.h"
#include "eval/report.h"
#include "eval/table_format.h"
#include "gateway/gateway.h"
#include "gateway/trainer.h"
#include "io/feed_server.h"
#include "io/pcap.h"
#include "io/trace_io.h"
#include "obs/admin_server.h"
#include "prefilter/prefilter.h"
#include "sim/fleet.h"
#include "sim/trafficgen.h"
#include "store/store_manager.h"

namespace {

using namespace leakdet;

class Args {
 public:
  Args(int argc, char** argv) {
    for (int i = 2; i < argc; ++i) {
      std::string_view arg = argv[i];
      if (arg.rfind("--", 0) != 0) continue;
      std::string key(arg.substr(2));
      if (i + 1 < argc && std::string_view(argv[i + 1]).rfind("--", 0) != 0) {
        values_[key] = argv[++i];
      } else {
        values_[key] = "";  // boolean flag
      }
    }
  }

  bool Has(const std::string& key) const { return values_.count(key) > 0; }
  std::string Get(const std::string& key, std::string def = "") const {
    auto it = values_.find(key);
    return it == values_.end() ? def : it->second;
  }
  double GetDouble(const std::string& key, double def) const {
    auto it = values_.find(key);
    return it == values_.end() ? def : std::atof(it->second.c_str());
  }
  long GetLong(const std::string& key, long def) const {
    auto it = values_.find(key);
    return it == values_.end() ? def : std::atol(it->second.c_str());
  }

 private:
  std::map<std::string, std::string> values_;
};

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

int Fail(const std::string& message) {
  std::fprintf(stderr, "error: %s\n", message.c_str());
  return 1;
}

StatusOr<std::vector<sim::LabeledPacket>> LoadTrace(const std::string& path) {
  LEAKDET_ASSIGN_OR_RETURN(std::string text, io::ReadFile(path));
  return io::ParseJsonl(text);
}

int CmdGenerate(const Args& args) {
  std::string out = args.Get("out");
  std::string device_out = args.Get("device");
  if (out.empty()) return Fail("generate needs --out <trace.jsonl>");

  sim::TrafficConfig config;
  config.scale = args.GetDouble("scale", 0.1);
  config.seed = static_cast<uint64_t>(args.GetLong("seed", 42));
  config.include_obfuscated_module = args.Has("with-obfuscated-module");
  sim::Trace trace = sim::GenerateTrace(config);

  if (Status s = io::WriteFile(out, io::SerializeJsonl(trace.packets));
      !s.ok()) {
    return Fail(s);
  }
  std::printf("wrote %zu packets to %s\n", trace.packets.size(), out.c_str());

  if (!device_out.empty()) {
    if (Status s = io::WriteFile(
            out.empty() ? device_out : device_out,
            io::SerializeDeviceTokens({trace.device.ToTokens()}));
        !s.ok()) {
      return Fail(s);
    }
    std::printf("wrote device tokens to %s\n", device_out.c_str());
  }
  if (args.Has("pcap")) {
    io::PcapWriter writer;
    if (Status s = io::WriteFile(args.Get("pcap"),
                                 writer.Write(trace.RawPackets()));
        !s.ok()) {
      return Fail(s);
    }
    std::printf("wrote capture to %s\n", args.Get("pcap").c_str());
  }
  return 0;
}

int CmdSplit(const Args& args) {
  std::string trace_path = args.Get("trace");
  std::string device_path = args.Get("device");
  std::string sus_path = args.Get("suspicious");
  std::string norm_path = args.Get("normal");
  if (trace_path.empty() || device_path.empty() || sus_path.empty() ||
      norm_path.empty()) {
    return Fail("split needs --trace --device --suspicious --normal");
  }
  auto packets = LoadTrace(trace_path);
  if (!packets.ok()) return Fail(packets.status());
  auto device_text = io::ReadFile(device_path);
  if (!device_text.ok()) return Fail(device_text.status());
  auto devices = io::ParseDeviceTokens(*device_text);
  if (!devices.ok()) return Fail(devices.status());

  std::vector<std::string> keys;
  if (args.Has("xor-key")) keys.push_back(args.Get("xor-key"));
  core::PayloadCheck oracle(*devices, keys);

  std::vector<sim::LabeledPacket> suspicious, normal;
  for (const sim::LabeledPacket& lp : *packets) {
    sim::LabeledPacket out = lp;
    out.truth = oracle.Check(lp.packet);  // re-label with the oracle
    (out.truth.empty() ? normal : suspicious).push_back(std::move(out));
  }
  if (Status s = io::WriteFile(sus_path, io::SerializeJsonl(suspicious));
      !s.ok()) {
    return Fail(s);
  }
  if (Status s = io::WriteFile(norm_path, io::SerializeJsonl(normal));
      !s.ok()) {
    return Fail(s);
  }
  std::printf("payload check: %zu suspicious -> %s, %zu normal -> %s\n",
              suspicious.size(), sus_path.c_str(), normal.size(),
              norm_path.c_str());
  return 0;
}

int CmdSign(const Args& args) {
  std::string sus_path = args.Get("suspicious");
  std::string norm_path = args.Get("normal");
  std::string out = args.Get("out");
  if (sus_path.empty() || norm_path.empty() || out.empty()) {
    return Fail("sign needs --suspicious --normal --out");
  }
  auto sus = LoadTrace(sus_path);
  if (!sus.ok()) return Fail(sus.status());
  auto norm = LoadTrace(norm_path);
  if (!norm.ok()) return Fail(norm.status());
  std::vector<core::HttpPacket> suspicious, normal;
  for (const auto& lp : *sus) suspicious.push_back(lp.packet);
  for (const auto& lp : *norm) normal.push_back(lp.packet);

  core::PipelineOptions options;
  options.sample_size = static_cast<size_t>(args.GetLong("n", 500));
  options.cut_height = args.GetDouble("cut", options.cut_height);
  options.compressor = args.Get("compressor", options.compressor);
  options.seed = static_cast<uint64_t>(args.GetLong("seed", 1));
  options.siggen.scope_by_host = args.Has("scope-by-host");

  std::string family = args.Get("family", args.Has("bayes") ? "bayes" : "conj");
  std::string feed;
  size_t count = 0;
  if (family == "bayes") {
    core::BayesPipelineOptions bayes_options;
    bayes_options.base = options;
    auto result = core::RunBayesPipeline(suspicious, normal, bayes_options);
    if (!result.ok()) return Fail(result.status());
    count = result->signatures.size();
    feed = result->signatures.Serialize();
  } else if (family == "seq") {
    auto clustering = core::RunClustering(suspicious, normal, options);
    if (!clustering.ok()) return Fail(clustering.status());
    core::SubsequenceSignatureGenerator gen(options.siggen);
    match::SubsequenceSignatureSet set =
        gen.Generate(clustering->sample, clustering->clusters,
                     clustering->normal_corpus);
    count = set.size();
    feed = set.Serialize();
  } else if (family == "conj") {
    auto result = core::RunPipeline(suspicious, normal, options);
    if (!result.ok()) return Fail(result.status());
    count = result->signatures.size();
    feed = result->signatures.Serialize();
  } else {
    return Fail("--family must be conj, seq, or bayes");
  }
  if (Status s = io::WriteFile(out, feed); !s.ok()) return Fail(s);
  std::printf("wrote %zu %s signatures to %s\n", count, family.c_str(),
              out.c_str());
  return 0;
}

/// Loads either signature format by sniffing the header line.
struct AnyDetector {
  std::unique_ptr<core::Detector> conjunction;
  std::unique_ptr<core::SubsequenceDetector> subsequence;
  std::unique_ptr<core::BayesDetector> bayes;

  bool IsSensitive(const core::HttpPacket& p) const {
    if (conjunction) return conjunction->IsSensitive(p);
    if (subsequence) return subsequence->IsSensitive(p);
    return bayes->IsSensitive(p);
  }
  size_t size() const {
    if (conjunction) return conjunction->signatures().size();
    if (subsequence) return subsequence->signatures().size();
    return bayes->signatures().size();
  }
};

StatusOr<AnyDetector> LoadDetector(const std::string& path) {
  LEAKDET_ASSIGN_OR_RETURN(std::string text, io::ReadFile(path));
  AnyDetector detector;
  if (text.rfind("leakdet-bayes-signatures", 0) == 0) {
    LEAKDET_ASSIGN_OR_RETURN(match::BayesSignatureSet set,
                             match::BayesSignatureSet::Deserialize(text));
    detector.bayes = std::make_unique<core::BayesDetector>(std::move(set));
  } else if (text.rfind("leakdet-subseq-signatures", 0) == 0) {
    LEAKDET_ASSIGN_OR_RETURN(match::SubsequenceSignatureSet set,
                             match::SubsequenceSignatureSet::Deserialize(text));
    detector.subsequence =
        std::make_unique<core::SubsequenceDetector>(std::move(set));
  } else {
    LEAKDET_ASSIGN_OR_RETURN(match::SignatureSet set,
                             match::SignatureSet::Deserialize(text));
    detector.conjunction =
        std::make_unique<core::Detector>(std::move(set));
  }
  return detector;
}

int CmdDetect(const Args& args) {
  std::string sig_path = args.Get("signatures");
  std::string trace_path = args.Get("trace");
  if (sig_path.empty() || trace_path.empty()) {
    return Fail("detect needs --signatures --trace");
  }
  auto detector = LoadDetector(sig_path);
  if (!detector.ok()) return Fail(detector.status());
  auto packets = LoadTrace(trace_path);
  if (!packets.ok()) return Fail(packets.status());

  long max_print = args.GetLong("max-print", 10);
  bool explain = args.Has("explain");
  size_t flagged = 0;
  long printed = 0;
  for (const sim::LabeledPacket& lp : *packets) {
    if (!detector->IsSensitive(lp.packet)) continue;
    ++flagged;
    if (printed < max_print) {
      ++printed;
      std::printf("FLAGGED app=%u host=%s %.*s\n", lp.packet.app_id,
                  lp.packet.destination.host.c_str(), 70,
                  lp.packet.request_line.c_str());
      if (explain && detector->conjunction) {
        for (const auto& why : detector->conjunction->Explain(lp.packet)) {
          std::printf("  by %s:\n", why.signature_id.c_str());
          for (const auto& hit : why.hits) {
            std::printf("    @%-5zu %.60s\n", hit.offset, hit.token.c_str());
          }
        }
      }
    }
  }
  std::printf("%zu of %zu packets flagged by %zu signatures\n", flagged,
              packets->size(), detector->size());
  return 0;
}

int CmdEval(const Args& args) {
  std::string sig_path = args.Get("signatures");
  std::string trace_path = args.Get("trace");
  if (sig_path.empty() || trace_path.empty()) {
    return Fail("eval needs --signatures --trace (with truth labels)");
  }
  auto detector = LoadDetector(sig_path);
  if (!detector.ok()) return Fail(detector.status());
  auto packets = LoadTrace(trace_path);
  if (!packets.ok()) return Fail(packets.status());

  eval::ConfusionCounts counts;
  counts.sample_size = static_cast<size_t>(args.GetLong("n", 0));
  for (const sim::LabeledPacket& lp : *packets) {
    bool flagged = detector->IsSensitive(lp.packet);
    if (!lp.truth.empty()) {
      counts.sensitive_total++;
      if (flagged) counts.detected_sensitive++;
    } else {
      counts.normal_total++;
      if (flagged) counts.detected_normal++;
    }
  }
  eval::DetectionRates paper = eval::ComputePaperRates(counts);
  eval::StandardRates standard = eval::ComputeStandardRates(counts);
  std::printf("sensitive: %zu (detected %zu)   normal: %zu (false alarms %zu)\n",
              counts.sensitive_total, counts.detected_sensitive,
              counts.normal_total, counts.detected_normal);
  std::printf("paper formulas (N=%zu): TP %s  FN %s  FP %s\n",
              counts.sample_size, eval::FormatPercent(paper.tp).c_str(),
              eval::FormatPercent(paper.fn).c_str(),
              eval::FormatPercent(paper.fp).c_str());
  std::printf("standard: recall %s  FPR %s  precision %s  F1 %s\n",
              eval::FormatPercent(standard.recall).c_str(),
              eval::FormatPercent(standard.fpr).c_str(),
              eval::FormatPercent(standard.precision).c_str(),
              eval::FormatPercent(standard.f1).c_str());
  return 0;
}

int CmdPcapExport(const Args& args) {
  std::string trace_path = args.Get("trace");
  std::string out = args.Get("out");
  if (trace_path.empty() || out.empty()) {
    return Fail("pcap-export needs --trace --out");
  }
  auto packets = LoadTrace(trace_path);
  if (!packets.ok()) return Fail(packets.status());
  std::vector<core::HttpPacket> raw;
  for (const auto& lp : *packets) raw.push_back(lp.packet);
  io::PcapWriter writer;
  if (Status s = io::WriteFile(out, writer.Write(raw)); !s.ok()) {
    return Fail(s);
  }
  std::printf("wrote %zu frames to %s\n", raw.size(), out.c_str());
  return 0;
}

int CmdPcapImport(const Args& args) {
  std::string pcap_path = args.Get("pcap");
  std::string out = args.Get("out");
  if (pcap_path.empty() || out.empty()) {
    return Fail("pcap-import needs --pcap --out");
  }
  auto data = io::ReadFile(pcap_path);
  if (!data.ok()) return Fail(data.status());
  auto packets = io::ReadPcap(*data);
  if (!packets.ok()) return Fail(packets.status());
  std::vector<sim::LabeledPacket> labeled;
  for (auto& p : *packets) {
    sim::LabeledPacket lp;
    lp.packet = std::move(p);
    labeled.push_back(std::move(lp));  // labels re-derivable via `split`
  }
  if (Status s = io::WriteFile(out, io::SerializeJsonl(labeled)); !s.ok()) {
    return Fail(s);
  }
  std::printf("imported %zu packets from %s to %s (labels cleared; run "
              "`split` to re-label)\n",
              labeled.size(), pcap_path.c_str(), out.c_str());
  return 0;
}

int CmdReport(const Args& args) {
  std::string out = args.Get("out");
  if (out.empty()) return Fail("report needs --out <report.md>");
  sim::TrafficConfig config;
  config.scale = args.GetDouble("scale", 0.05);
  config.seed = static_cast<uint64_t>(args.GetLong("seed", 42));
  sim::Trace trace = sim::GenerateTrace(config);
  eval::ReportOptions options;
  if (args.Has("n")) {
    options.sample_sizes = {static_cast<size_t>(args.GetLong("n", 200))};
  }
  auto report = eval::GenerateMarkdownReport(trace, options);
  if (!report.ok()) return Fail(report.status());
  if (Status s = io::WriteFile(out, *report); !s.ok()) return Fail(s);
  std::printf("wrote study report to %s\n", out.c_str());
  return 0;
}

/// Registers the standard /statusz sections for a serving stack: the
/// gateway's live epoch and, when a store is attached, the WAL watermark
/// gauges the StoreManager mirrors into the registry.
void AddServeStatusSections(obs::AdminServer* admin,
                            const gateway::DetectionGateway* gw,
                            obs::Registry* registry, bool with_store) {
  admin->AddStatusSection("gateway", [gw] {
    return "epoch_version: " + std::to_string(gw->current_version()) +
           "\nepoch_age_ns: " + std::to_string(gw->epoch_age_ns()) + "\n";
  });
  admin->AddStatusSection("prefilter", [gw] {
    return std::string("mode: ") + prefilter::ModeName(gw->prefilter_mode()) +
           "\nskipped: " + std::to_string(gw->prefilter_skipped()) +
           "\ncandidates: " + std::to_string(gw->prefilter_candidates()) +
           "\nfalse_candidates: " +
           std::to_string(gw->prefilter_false_candidates()) + "\n";
  });
  if (with_store) {
    admin->AddStatusSection("store", [registry] {
      return "wal_last_sequence: " +
             std::to_string(
                 registry->GetGauge("store.wal_last_sequence")->Value()) +
             "\nwal_durable_sequence: " +
             std::to_string(
                 registry->GetGauge("store.wal_durable_sequence")->Value()) +
             "\nsnapshot_version: " +
             std::to_string(
                 registry->GetGauge("store.snapshot_version")->Value()) +
             "\n";
    });
  }
}

/// `serve` with --trace/--device: the full serving stack — gateway +
/// trainer (+ durable store with --data-dir) — with the feed served from
/// the gateway's live epoch and the trace replayed through the shards at
/// --rate pkt/s so every layer keeps producing metrics for the admin plane.
int CmdServeLive(const Args& args) {
  auto packets = LoadTrace(args.Get("trace"));
  if (!packets.ok()) return Fail(packets.status());
  auto device_text = io::ReadFile(args.Get("device"));
  if (!device_text.ok()) return Fail(device_text.status());
  auto devices = io::ParseDeviceTokens(*device_text);
  if (!devices.ok()) return Fail(devices.status());
  core::PayloadCheck oracle(*devices);

  core::SignatureServer::Options server_options;
  server_options.retrain_after =
      static_cast<size_t>(args.GetLong("retrain-after", 200));
  server_options.pipeline.sample_size =
      static_cast<size_t>(args.GetLong("n", 500));
  server_options.pipeline.seed = static_cast<uint64_t>(args.GetLong("seed", 1));
  core::SignatureServer server(&oracle, server_options);

  // Everything shares the process-global registry so one admin server
  // scrapes the whole stack.
  obs::Registry* registry = obs::Registry::Default();
  gateway::GatewayOptions gw_options;
  gw_options.registry = registry;
  gw_options.num_shards = static_cast<size_t>(args.GetLong("shards", 2));
  // Prefilter escape hatch: --prefilter off ships verdicts through the
  // plain DFA path (the LEAKDET_PREFILTER env var overrides "auto").
  std::string prefilter_flag = args.Get("prefilter");
  if (!prefilter_flag.empty() &&
      !prefilter::ParseMode(prefilter_flag, &gw_options.prefilter)) {
    return Fail("--prefilter must be auto, off, scalar, or simd");
  }
  gateway::DetectionGateway gateway(gw_options);

  std::unique_ptr<store::StoreManager> store;
  std::string data_dir = args.Get("data-dir");
  if (!data_dir.empty()) {
    store::StoreOptions store_options;
    if (args.Has("sync-policy")) {
      auto policy = store::ParseSyncPolicy(args.Get("sync-policy"));
      if (!policy.ok()) return Fail(policy.status());
      store_options.wal.sync_policy = *policy;
    }
    auto opened = store::StoreManager::Open(store::Dir::Real(), data_dir,
                                            store_options);
    if (!opened.ok()) return Fail(opened.status());
    store = std::move(*opened);
    auto recovery = store->Recover(&server);
    if (!recovery.ok()) return Fail(recovery.status());
  }

  gateway::TrainerOptions trainer_options;
  trainer_options.store = store.get();
  gateway::TrainerLoop trainer(&server, &gateway, trainer_options);
  gateway.set_sink(trainer.Sink());
  if (Status s = gateway.Start(); !s.ok()) return Fail(s);
  if (Status s = trainer.Start(); !s.ok()) return Fail(s);

  io::FeedServer feed_server([&gateway] {
    auto set = gateway.current_set();
    if (set == nullptr) return std::make_pair(uint64_t{0}, std::string());
    return std::make_pair(set->version(), set->set().Serialize());
  });
  if (Status s =
          feed_server.Start(static_cast<uint16_t>(args.GetLong("port", 0)));
      !s.ok()) {
    return Fail(s);
  }

  obs::AdminServer admin;  // Registry::Default(), like the stack above
  AddServeStatusSections(&admin, &gateway, registry,
                         /*with_store=*/store != nullptr);
  if (Status s =
          admin.Start(static_cast<uint16_t>(args.GetLong("admin-port", 0)));
      !s.ok()) {
    return Fail(s);
  }
  std::printf("serving live feed at http://127.0.0.1:%u/feed\n",
              feed_server.port());
  std::printf("admin plane at http://127.0.0.1:%u/metrics\n", admin.port());

  // Replay the trace through the gateway, looping --loops times (0 =
  // forever) at --rate pkt/s. Every packet's verdict feeds the trainer, so
  // epochs keep publishing and the feed keeps advancing.
  double rate = args.GetDouble("rate", 500);
  long loops = args.GetLong("loops", 0);
  auto replay_start = std::chrono::steady_clock::now();
  size_t submitted = 0;
  for (long loop = 0; loops == 0 || loop < loops; ++loop) {
    for (const sim::LabeledPacket& lp : *packets) {
      gateway.Submit(lp.packet.app_id, lp.packet);
      ++submitted;
      if (rate > 0 && (submitted & 63) == 0) {
        double target = static_cast<double>(submitted) / rate;
        double actual = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - replay_start)
                            .count();
        if (actual < target) {
          std::this_thread::sleep_for(
              std::chrono::duration<double>(target - actual));
        }
      }
    }
  }
  gateway.Stop();
  trainer.Stop();
  feed_server.Stop();
  admin.Stop();
  if (store != nullptr) {
    if (Status s = store->Sync(); !s.ok()) return Fail(s);
  }
  std::printf("replayed %zu packets, feed version %llu\n", submitted,
              static_cast<unsigned long long>(gateway.current_version()));
  return 0;
}

int CmdServe(const Args& args) {
  if (args.Has("trace") && args.Has("device")) return CmdServeLive(args);
  std::string sig_path = args.Get("signatures");
  if (sig_path.empty()) {
    return Fail("serve needs --signatures (or --trace --device for the "
                "live stack)");
  }
  auto feed = io::ReadFile(sig_path);
  if (!feed.ok()) return Fail(feed.status());
  std::string payload = *feed;
  io::FeedServer server([&payload] {
    return std::make_pair(uint64_t{1}, payload);
  });
  uint16_t port = static_cast<uint16_t>(args.GetLong("port", 0));
  if (Status s = server.Start(port); !s.ok()) return Fail(s);
  std::printf("serving %zu-byte feed at http://127.0.0.1:%u/feed\n",
              payload.size(), server.port());
  // --admin-port exposes /metrics (the process-global registry the feed
  // server reports into), /healthz, and /statusz beside the feed.
  obs::AdminServer admin;
  if (args.Has("admin-port")) {
    admin.AddStatusSection("feed", [&server, &payload] {
      return "feed_bytes: " + std::to_string(payload.size()) +
             "\nrequests_served: " + std::to_string(server.requests_served()) +
             "\n";
    });
    if (Status s =
            admin.Start(static_cast<uint16_t>(args.GetLong("admin-port", 0)));
        !s.ok()) {
      return Fail(s);
    }
    std::printf("admin plane at http://127.0.0.1:%u/metrics\n", admin.port());
  }
  long max_requests = args.GetLong("serve-requests", 0);
  if (max_requests > 0) {
    // Test-friendly mode: exit after N requests.
    while (server.requests_served() < static_cast<uint64_t>(max_requests)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    server.Stop();
    admin.Stop();
    std::printf("served %llu requests, exiting\n",
                static_cast<unsigned long long>(server.requests_served()));
    return 0;
  }
  std::printf("press Ctrl-C to stop\n");
  while (true) {
    std::this_thread::sleep_for(std::chrono::seconds(1));
  }
}

int CmdFetch(const Args& args) {
  uint16_t port = static_cast<uint16_t>(args.GetLong("port", 0));
  std::string out = args.Get("out");
  if (port == 0 || out.empty()) return Fail("fetch needs --port --out");
  auto feed = io::FetchFeed(port);
  if (!feed.ok()) return Fail(feed.status());
  if (Status s = io::WriteFile(out, feed->payload); !s.ok()) return Fail(s);
  std::printf("fetched feed version %llu (%zu bytes) to %s\n",
              static_cast<unsigned long long>(feed->version),
              feed->payload.size(), out.c_str());
  return 0;
}

int CmdTrain(const Args& args) {
  std::string trace_path = args.Get("trace");
  std::string device_path = args.Get("device");
  if (trace_path.empty() || device_path.empty()) {
    return Fail("train needs --trace --device [--data-dir --out]");
  }
  auto packets = LoadTrace(trace_path);
  if (!packets.ok()) return Fail(packets.status());
  auto device_text = io::ReadFile(device_path);
  if (!device_text.ok()) return Fail(device_text.status());
  auto devices = io::ParseDeviceTokens(*device_text);
  if (!devices.ok()) return Fail(devices.status());
  core::PayloadCheck oracle(*devices);

  core::SignatureServer::Options options;
  options.retrain_after =
      static_cast<size_t>(args.GetLong("retrain-after", 200));
  options.pipeline.sample_size = static_cast<size_t>(args.GetLong("n", 500));
  options.pipeline.seed = static_cast<uint64_t>(args.GetLong("seed", 1));
  core::SignatureServer server(&oracle, options);

  // With --data-dir the run is durable: recover whatever an earlier
  // (possibly killed) invocation logged, then resume the trace right after
  // the last logged packet.
  std::unique_ptr<store::StoreManager> store;
  size_t resume = 0;
  std::string data_dir = args.Get("data-dir");
  if (!data_dir.empty()) {
    store::StoreOptions store_options;
    if (args.Has("sync-policy")) {
      auto policy = store::ParseSyncPolicy(args.Get("sync-policy"));
      if (!policy.ok()) return Fail(policy.status());
      store_options.wal.sync_policy = *policy;
    }
    auto opened = store::StoreManager::Open(store::Dir::Real(), data_dir,
                                            store_options);
    if (!opened.ok()) return Fail(opened.status());
    store = std::move(*opened);
    auto recovery = store->Recover(&server);
    if (!recovery.ok()) return Fail(recovery.status());
    resume = static_cast<size_t>(store->last_sequence());
    if (resume > packets->size()) {
      return Fail("store at " + data_dir + " holds " +
                  std::to_string(resume) +
                  " records but the trace has only " +
                  std::to_string(packets->size()) + " packets");
    }
    if (recovery->snapshot_loaded || recovery->replay.applied > 0) {
      std::printf("recovered: snapshot v%llu, %llu records replayed, "
                  "resuming at packet %zu\n",
                  static_cast<unsigned long long>(recovery->snapshot_version),
                  static_cast<unsigned long long>(recovery->replay.applied),
                  resume);
    }
  }

  for (size_t i = resume; i < packets->size(); ++i) {
    const sim::LabeledPacket& lp = (*packets)[i];
    if (store != nullptr) {
      store::FeedRecord record;
      record.feed_version = server.feed_version();
      record.sensitive = !lp.truth.empty();
      record.packet = lp.packet;
      if (auto appended = store->Append(std::move(record)); !appended.ok()) {
        return Fail(appended.status());
      }
    }
    if (server.Ingest(lp.packet) && store != nullptr) {
      if (Status s = store->WriteSnapshot(server); !s.ok()) return Fail(s);
      if (auto compacted = store->Compact(); !compacted.ok()) {
        return Fail(compacted.status());
      }
    }
  }
  if (store != nullptr) {
    if (Status s = store->Sync(); !s.ok()) return Fail(s);
  }

  std::printf("trained on %zu packets (%zu resumed from the store): feed "
              "version %llu, %zu signatures\n",
              packets->size(), resume,
              static_cast<unsigned long long>(server.feed_version()),
              server.signatures().size());
  std::string out = args.Get("out");
  if (!out.empty()) {
    if (Status s = io::WriteFile(out, server.Feed()); !s.ok()) return Fail(s);
    std::printf("wrote feed to %s\n", out.c_str());
  }
  return 0;
}

/// Snapshots a published federated feed into `tenant`'s store lineage under
/// `root`, so the feed participates in the same durability/recovery story as
/// a live trainer's epochs.
Status PersistFederatedFeed(const std::string& root, const std::string& tenant,
                            const core::PayloadCheck* oracle,
                            const match::SignatureSet& published) {
  federation::TenantStoreSet stores(store::Dir::Real(), root,
                                    store::StoreOptions());
  LEAKDET_ASSIGN_OR_RETURN(store::StoreManager * store, stores.Open(tenant));
  core::SignatureServer server(oracle, core::SignatureServer::Options());
  // Recover first: a re-published merge must advance the lineage's version,
  // never rewind it.
  LEAKDET_ASSIGN_OR_RETURN(store::StoreManager::RecoveryStats stats,
                           store->Recover(&server));
  (void)stats;
  core::SignatureServer::State state;
  state.feed_version = server.feed_version() + 1;
  state.signatures = published;
  server.Restore(std::move(state));
  return store->WriteSnapshot(server);
}

int CmdFederate(const Args& args) {
  const size_t k = static_cast<size_t>(args.GetLong("k", 2));
  const std::string tenant = args.Get("tenant", "fleet");
  const std::string out = args.Get("out");

  std::vector<federation::ShardExport> exports;
  std::unique_ptr<sim::Fleet> fleet;
  std::unique_ptr<core::PayloadCheck> oracle;
  std::unique_ptr<federation::ShardTrainer> central;

  if (args.Has("from-shards")) {
    // Merge-only mode: the shards were trained elsewhere (possibly on other
    // machines) and shipped as export files.
    std::string list = args.Get("from-shards");
    for (size_t begin = 0; begin <= list.size();) {
      size_t comma = list.find(',', begin);
      if (comma == std::string::npos) comma = list.size();
      std::string path = list.substr(begin, comma - begin);
      begin = comma + 1;
      if (path.empty()) continue;
      auto text = io::ReadFile(path);
      if (!text.ok()) return Fail(text.status());
      auto shard = federation::ParseShardExport(*text);
      if (!shard.ok()) {
        return Fail(Status(shard.status().code(),
                           path + ": " + std::string(shard.status().message())));
      }
      exports.push_back(std::move(*shard));
    }
    if (exports.empty()) {
      return Fail("federate --from-shards needs a comma-separated list of "
                  "shard export files");
    }
    std::printf("loaded %zu shard export(s)\n", exports.size());
  } else {
    // Fleet-simulation mode: stand up the device fleet, partition it into
    // disjoint shards by device index, and train every shard locally.
    const size_t num_shards =
        static_cast<size_t>(std::max(1l, args.GetLong("shards", 4)));
    const size_t events = static_cast<size_t>(args.GetLong("events", 9000));
    sim::FleetConfig config;
    config.seed = static_cast<uint64_t>(args.GetLong("seed", 8086));
    config.num_devices =
        static_cast<size_t>(std::max(1l, args.GetLong("devices", 24)));
    config.device_skew = args.GetDouble("skew", 0.3);
    config.market.seed = config.seed + 1;
    config.market.scale = args.GetDouble("scale", 0.05);
    fleet = std::make_unique<sim::Fleet>(config);
    std::vector<core::DeviceTokens> tokens;
    for (uint64_t index = 0; index < fleet->num_devices(); ++index) {
      tokens.push_back(fleet->DeviceAt(index).ToTokens());
    }
    oracle = std::make_unique<core::PayloadCheck>(tokens);

    federation::ShardTrainerOptions trainer_options;
    trainer_options.tenant = tenant;
    trainer_options.pipeline.sample_size =
        static_cast<size_t>(args.GetLong("n", 500));
    trainer_options.pipeline.num_threads = 1;
    std::vector<federation::ShardTrainer> shards;
    for (size_t shard = 0; shard < num_shards; ++shard) {
      shards.emplace_back(trainer_options, oracle.get());
    }
    if (args.Has("eval")) {
      central =
          std::make_unique<federation::ShardTrainer>(trainer_options,
                                                     oracle.get());
    }

    sim::Fleet::Stream stream = fleet->NewStream(1);
    for (size_t i = 0; i < events; ++i) {
      sim::Fleet::Event event = stream.Next();
      uint64_t key = fleet->DeviceKey(event.device_index);
      shards[event.device_index % num_shards].Observe(key,
                                                      event.packet.packet);
      if (central != nullptr) central->Observe(key, event.packet.packet);
    }
    std::printf("fleet: %zu devices, %zu events across %zu shard(s)\n",
                fleet->num_devices(), events, num_shards);

    for (size_t shard = 0; shard < num_shards; ++shard) {
      auto trained = shards[shard].Train();
      if (!trained.ok()) return Fail(trained.status());
      std::printf("  shard %zu: %zu packets observed, %zu candidate "
                  "signature(s)\n",
                  shard, static_cast<size_t>(shards[shard].observed_packets()),
                  trained->candidates.size());
      exports.push_back(std::move(*trained));
    }

    if (args.Has("shard-export")) {
      // Ship mode: write each export and stop; another invocation (possibly
      // elsewhere) merges them with --from-shards.
      std::string prefix = args.Get("shard-export");
      for (size_t shard = 0; shard < exports.size(); ++shard) {
        std::string path = prefix + std::to_string(shard) + ".shard";
        if (Status s = io::WriteFile(
                path, federation::SerializeShardExport(exports[shard]));
            !s.ok()) {
          return Fail(s);
        }
        std::printf("wrote %s\n", path.c_str());
      }
      return 0;
    }
  }

  auto merged = federation::MergeAll(exports);
  if (!merged.ok()) return Fail(merged.status());
  federation::PublishStats stats;
  match::SignatureSet published = federation::PublishFederated(*merged, k,
                                                               &stats);
  std::printf("merged %zu export(s) for tenant \"%s\": %zu device(s) "
              "witnessed, %zu candidate(s)\n",
              exports.size(), merged->tenant.c_str(), merged->DeviceCount(),
              merged->candidates.size());
  std::printf("k-anonymity gate (K=%zu): %zu/%zu token(s) suppressed, "
              "%zu dropped + %zu absorbed candidate(s), %zu signature(s) "
              "published\n",
              k, stats.tokens_suppressed, stats.tokens_total,
              stats.signatures_dropped, stats.signatures_absorbed,
              stats.signatures_published);

  if (args.Has("eval")) {
    if (central == nullptr) {
      return Fail("federate --eval needs the simulation path (it trains a "
                  "central oracle on the union of shard traffic); drop "
                  "--from-shards");
    }
    auto central_export = central->Train();
    if (!central_export.ok()) return Fail(central_export.status());
    match::SignatureSet central_published =
        federation::PublishFederated(*central_export, k);
    std::vector<federation::LabeledReplayPacket> holdout;
    const size_t holdout_n =
        static_cast<size_t>(args.GetLong("holdout", 1200));
    sim::Fleet::Stream stream = fleet->NewStream(99);
    while (holdout.size() < holdout_n) {
      sim::Fleet::Event event = stream.Next();
      holdout.push_back({event.packet.packet, event.packet.sensitive()});
    }
    core::Detector merged_detector(published);
    core::Detector central_detector(central_published);
    federation::Scoreboard board = federation::CompareOnReplay(
        merged_detector, central_detector, holdout);
    std::printf("%s", federation::FormatScoreboard(board).c_str());
  }

  std::string data_dir = args.Get("data-dir");
  if (!data_dir.empty()) {
    if (oracle == nullptr) {
      // --from-shards carries no device tokens; the store snapshot only
      // needs a server shell, so an empty oracle is sufficient.
      oracle = std::make_unique<core::PayloadCheck>(
          std::vector<core::DeviceTokens>{});
    }
    if (Status s = PersistFederatedFeed(data_dir, tenant, oracle.get(),
                                        published);
        !s.ok()) {
      return Fail(s);
    }
    std::printf("snapshotted feed into %s/%s\n", data_dir.c_str(),
                federation::TenantDirName(tenant).c_str());
  }
  if (!out.empty()) {
    if (Status s = io::WriteFile(out, published.Serialize()); !s.ok()) {
      return Fail(s);
    }
    std::printf("wrote %zu-signature federated feed to %s\n",
                published.size(), out.c_str());
  }
  return 0;
}

int Usage() {
  std::fprintf(stderr,
               "usage: leakdet <generate|split|sign|detect|eval|serve|fetch|"
               "pcap-export|pcap-import|train|federate> [--options]\n"
               "see the header of tools/leakdet_cli.cpp for per-command "
               "options\n");
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  std::string_view command = argv[1];
  Args args(argc, argv);
  if (command == "generate") return CmdGenerate(args);
  if (command == "split") return CmdSplit(args);
  if (command == "sign") return CmdSign(args);
  if (command == "detect") return CmdDetect(args);
  if (command == "eval") return CmdEval(args);
  if (command == "pcap-export") return CmdPcapExport(args);
  if (command == "pcap-import") return CmdPcapImport(args);
  if (command == "report") return CmdReport(args);
  if (command == "serve") return CmdServe(args);
  if (command == "fetch") return CmdFetch(args);
  if (command == "train") return CmdTrain(args);
  if (command == "federate") return CmdFederate(args);
  return Usage();
}
