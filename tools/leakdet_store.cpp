// leakdet_store — offline inspection and maintenance of a durable signature
// store data directory (WAL segments + epoch snapshots):
//
//   leakdet_store inspect --data-dir DIR
//       Lists every snapshot (version, covered sequence, digest status) and
//       WAL segment (record count, sequence range, torn bytes), plus the
//       recovery point an open would use. Read-only.
//
//   leakdet_store verify  --data-dir DIR
//       Full integrity pass: CRC-checks every record, digest-checks every
//       snapshot, verifies sequence contiguity and the snapshot-to-log
//       handoff. Read-only; exit 1 if recovery would lose anything.
//
//   leakdet_store compact --data-dir DIR [--keep N] [--sync-policy P]
//       Opens the store (repairing any torn tail) and retires WAL segments
//       folded into the newest snapshot plus snapshots beyond the newest N.
//
//   leakdet_store tenants --data-dir ROOT
//       Lists the per-tenant lineages (tenant-* subdirectories) under a
//       federation data root. Read-only.
//
// With --tenant NAME, inspect/verify/compact operate on that tenant's
// lineage under the federation data root: --data-dir ROOT --tenant acme
// targets ROOT/tenant-acme (name mangling handled for you).
//
// Exit status: 0 on success / healthy, 1 on any error or damage.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "federation/tenant_store.h"
#include "store/snapshot.h"
#include "store/store_manager.h"
#include "store/wal.h"

namespace {

using namespace leakdet;

class Args {
 public:
  Args(int argc, char** argv) {
    for (int i = 2; i < argc; ++i) {
      std::string_view arg = argv[i];
      if (arg.rfind("--", 0) != 0) continue;
      std::string key(arg.substr(2));
      if (i + 1 < argc && std::string_view(argv[i + 1]).rfind("--", 0) != 0) {
        values_[key] = argv[++i];
      } else {
        values_[key] = "";
      }
    }
  }

  std::string Get(const std::string& key, std::string def = "") const {
    auto it = values_.find(key);
    return it == values_.end() ? def : it->second;
  }
  long GetLong(const std::string& key, long def) const {
    auto it = values_.find(key);
    return it == values_.end() ? def : std::atol(it->second.c_str());
  }

 private:
  std::map<std::string, std::string> values_;
};

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

int Fail(const std::string& message) {
  std::fprintf(stderr, "error: %s\n", message.c_str());
  return 1;
}

/// The directory a command should operate on: --data-dir itself, or the
/// tenant's lineage under it when --tenant is also given. Empty means the
/// caller must Fail with its own usage line.
std::string ResolveDataDir(const Args& args) {
  std::string data_dir = args.Get("data-dir");
  if (data_dir.empty()) return data_dir;
  std::string tenant = args.Get("tenant");
  if (!tenant.empty()) {
    data_dir += "/" + federation::TenantDirName(tenant);
  }
  return data_dir;
}

struct SegmentReport {
  uint64_t id = 0;
  uint64_t bytes = 0;
  uint64_t records = 0;
  uint64_t first_sequence = 0;
  uint64_t last_sequence = 0;
  uint64_t tail_bytes = 0;      ///< bytes past the last clean record
  bool tail_is_corrupt = false; ///< CRC/type damage rather than truncation
};

StatusOr<SegmentReport> ScanSegment(store::Dir* dir, const std::string& path,
                                    uint64_t id) {
  SegmentReport report;
  report.id = id;
  LEAKDET_ASSIGN_OR_RETURN(std::string data, dir->Read(path));
  report.bytes = data.size();
  store::RecordCursor cursor(data);
  while (true) {
    StatusOr<store::FeedRecord> record = cursor.Next();
    if (!record.ok()) {
      if (record.status().code() != StatusCode::kNotFound) {
        report.tail_bytes = data.size() - cursor.offset();
        report.tail_is_corrupt =
            record.status().code() == StatusCode::kCorruption;
      }
      break;
    }
    if (report.records == 0) report.first_sequence = record->sequence;
    report.last_sequence = record->sequence;
    ++report.records;
  }
  return report;
}

struct StoreSurvey {
  std::vector<SegmentReport> segments;                   // by id
  std::vector<std::pair<std::string, std::string>> snapshots;  // name, status
  uint64_t newest_valid_version = 0;
  uint64_t newest_valid_sequence = 0;
  bool have_valid_snapshot = false;
  int problems = 0;
};

StatusOr<StoreSurvey> Survey(store::Dir* dir, const std::string& data_dir) {
  StoreSurvey survey;
  LEAKDET_ASSIGN_OR_RETURN(std::vector<std::string> names,
                           dir->List(data_dir));
  std::vector<std::pair<uint64_t, std::string>> segment_names;
  for (const std::string& name : names) {
    uint64_t id = 0, version = 0, sequence = 0;
    if (store::ParseSegmentFileName(name, &id)) {
      segment_names.emplace_back(id, name);
    } else if (store::ParseSnapshotFileName(name, &version, &sequence)) {
      StatusOr<std::string> text = dir->Read(data_dir + "/" + name);
      std::string status = "ok";
      if (!text.ok()) {
        status = "unreadable";
      } else {
        StatusOr<store::SnapshotContents> parsed = store::ParseSnapshot(*text);
        if (!parsed.ok()) {
          status = parsed.status().message();
        } else if (version > survey.newest_valid_version ||
                   !survey.have_valid_snapshot) {
          survey.newest_valid_version = version;
          survey.newest_valid_sequence = parsed->last_sequence;
          survey.have_valid_snapshot = true;
        }
      }
      if (status != "ok") ++survey.problems;
      survey.snapshots.emplace_back(name, status);
    }
  }
  std::sort(segment_names.begin(), segment_names.end());
  for (size_t i = 0; i < segment_names.size(); ++i) {
    LEAKDET_ASSIGN_OR_RETURN(
        SegmentReport report,
        ScanSegment(dir, data_dir + "/" + segment_names[i].second,
                    segment_names[i].first));
    // A dirty tail is legal only in the newest segment, and only as a torn
    // (truncated) record — corruption is damage anywhere.
    if (report.tail_bytes > 0 &&
        (i + 1 != segment_names.size() || report.tail_is_corrupt)) {
      ++survey.problems;
    }
    survey.segments.push_back(report);
  }
  // Sequence contiguity across the whole log.
  uint64_t expected = 0;
  for (const SegmentReport& report : survey.segments) {
    if (report.records == 0) continue;
    if (expected != 0 && report.first_sequence != expected) ++survey.problems;
    expected = report.last_sequence + 1;
  }
  // Snapshot-to-log handoff: replay must be able to pick up at
  // newest_valid_sequence + 1.
  if (survey.have_valid_snapshot) {
    uint64_t first_live = 0;
    for (const SegmentReport& report : survey.segments) {
      if (report.records == 0) continue;
      if (report.last_sequence > survey.newest_valid_sequence) {
        first_live = report.first_sequence;
        break;
      }
    }
    if (first_live > survey.newest_valid_sequence + 1) ++survey.problems;
  }
  return survey;
}

int CmdInspect(const Args& args) {
  std::string data_dir = ResolveDataDir(args);
  if (data_dir.empty()) return Fail("inspect needs --data-dir DIR");
  StatusOr<StoreSurvey> survey = Survey(store::Dir::Real(), data_dir);
  if (!survey.ok()) return Fail(survey.status());

  std::printf("snapshots (%zu):\n", survey->snapshots.size());
  for (const auto& [name, status] : survey->snapshots) {
    std::printf("  %s  [%s]\n", name.c_str(), status.c_str());
  }
  std::printf("wal segments (%zu):\n", survey->segments.size());
  uint64_t records = 0;
  for (const SegmentReport& report : survey->segments) {
    std::printf("  wal-%020llu.log  %8llu bytes  %6llu records",
                static_cast<unsigned long long>(report.id),
                static_cast<unsigned long long>(report.bytes),
                static_cast<unsigned long long>(report.records));
    if (report.records > 0) {
      std::printf("  seq %llu..%llu",
                  static_cast<unsigned long long>(report.first_sequence),
                  static_cast<unsigned long long>(report.last_sequence));
    }
    if (report.tail_bytes > 0) {
      std::printf("  [%s tail: %llu bytes]",
                  report.tail_is_corrupt ? "corrupt" : "torn",
                  static_cast<unsigned long long>(report.tail_bytes));
    }
    std::printf("\n");
    records += report.records;
  }
  std::printf("total records: %llu\n",
              static_cast<unsigned long long>(records));
  if (survey->have_valid_snapshot) {
    std::printf("recovery point: snapshot v%llu @ seq %llu, then WAL replay\n",
                static_cast<unsigned long long>(survey->newest_valid_version),
                static_cast<unsigned long long>(survey->newest_valid_sequence));
  } else {
    std::printf("recovery point: no valid snapshot — full WAL replay\n");
  }
  return 0;
}

int CmdVerify(const Args& args) {
  std::string data_dir = ResolveDataDir(args);
  if (data_dir.empty()) return Fail("verify needs --data-dir DIR");
  StatusOr<StoreSurvey> survey = Survey(store::Dir::Real(), data_dir);
  if (!survey.ok()) return Fail(survey.status());
  for (const auto& [name, status] : survey->snapshots) {
    if (status != "ok") {
      std::fprintf(stderr, "damaged snapshot: %s (%s)\n", name.c_str(),
                   status.c_str());
    }
  }
  for (size_t i = 0; i < survey->segments.size(); ++i) {
    const SegmentReport& report = survey->segments[i];
    if (report.tail_bytes > 0) {
      bool last = i + 1 == survey->segments.size();
      std::fprintf(stderr, "%s: wal-%020llu.log has %llu dirty tail bytes\n",
                   (last && !report.tail_is_corrupt) ? "repairable"
                                                     : "DAMAGE",
                   static_cast<unsigned long long>(report.id),
                   static_cast<unsigned long long>(report.tail_bytes));
    }
  }
  if (survey->problems == 0) {
    std::printf("ok: %zu snapshots, %zu segments, log contiguous\n",
                survey->snapshots.size(), survey->segments.size());
    return 0;
  }
  std::fprintf(stderr, "verify found %d problem(s)\n", survey->problems);
  return 1;
}

int CmdCompact(const Args& args) {
  std::string data_dir = ResolveDataDir(args);
  if (data_dir.empty()) return Fail("compact needs --data-dir DIR");
  store::StoreOptions options;
  options.keep_snapshots =
      static_cast<size_t>(args.GetLong("keep", 2));
  if (!args.Get("sync-policy").empty()) {
    StatusOr<store::SyncPolicy> policy =
        store::ParseSyncPolicy(args.Get("sync-policy"));
    if (!policy.ok()) return Fail(policy.status());
    options.wal.sync_policy = *policy;
  }
  StatusOr<std::unique_ptr<store::StoreManager>> opened =
      store::StoreManager::Open(store::Dir::Real(), data_dir, options);
  if (!opened.ok()) return Fail(opened.status());
  StatusOr<store::StoreManager::CompactStats> stats = (*opened)->Compact();
  if (!stats.ok()) return Fail(stats.status());
  std::printf("removed %llu wal segment(s), %llu snapshot(s)\n",
              static_cast<unsigned long long>(stats->segments_removed),
              static_cast<unsigned long long>(stats->snapshots_removed));
  return 0;
}

int CmdTenants(const Args& args) {
  std::string root = args.Get("data-dir");
  if (root.empty()) return Fail("tenants needs --data-dir ROOT");
  std::vector<std::string> tenants =
      federation::ListTenants(store::Dir::Real(), root);
  if (tenants.empty()) {
    std::printf("no tenant lineages under %s\n", root.c_str());
    return 0;
  }
  std::printf("tenant lineages (%zu):\n", tenants.size());
  for (const std::string& tenant : tenants) {
    std::printf("  %-24s %s/%s\n", tenant.c_str(), root.c_str(),
                federation::TenantDirName(tenant).c_str());
  }
  return 0;
}

int Usage() {
  std::fprintf(stderr,
               "usage: leakdet_store <inspect|verify|compact|tenants> "
               "--data-dir DIR [--tenant NAME] [--keep N] "
               "[--sync-policy every-record|every-n|on-rotate]\n");
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  Args args(argc, argv);
  std::string cmd = argv[1];
  if (cmd == "inspect") return CmdInspect(args);
  if (cmd == "verify") return CmdVerify(args);
  if (cmd == "compact") return CmdCompact(args);
  if (cmd == "tenants") return CmdTenants(args);
  return Usage();
}
