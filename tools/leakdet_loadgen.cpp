// Serving benchmark for the concurrent detection gateway: replays a
// simulated market trace (sim::TrafficGenerator) through gateway shards at
// full speed (or a target rate), with live retraining and matcher hot-swaps
// happening mid-run, then prints the metrics snapshot.
//
// Exactness check (--verify, on by default): every verdict the gateway
// produced is compared against the single-threaded core::Detector baseline
// for the matcher epoch the packet was matched under. Per-device FIFO
// sharding makes this exact: shard k's verdict sequence corresponds 1:1 to
// the order packets were accepted into shard k.
//
// Example (the repo's standing serving benchmark):
//   leakdet_loadgen --shards=4 --repeat=10 --min-swaps=3

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/detector.h"
#include "core/payload_check.h"
#include "core/signature_server.h"
#include "gateway/gateway.h"
#include "gateway/trainer.h"
#include "obs/admin_server.h"
#include "prefilter/prefilter.h"
#include "sim/trafficgen.h"

namespace {

using Clock = std::chrono::steady_clock;

struct Flags {
  size_t shards = 4;
  size_t queue_capacity = 4096;
  size_t pop_batch = 64;
  std::string policy = "block";  // block | drop
  double scale = 1.0;
  size_t repeat = 10;
  uint64_t seed = 42;
  double rate = 0;  // target packets/s, 0 = unlimited
  // Tuned to the trainer's sustainable oracle-scan intake (~15k pkt/s):
  // yields a retrain every few hundred ms of wall time, i.e. plenty of live
  // hot-swaps over a multi-second run.
  size_t retrain_after = 1200;
  size_t sample_size = 60;
  size_t normal_corpus = 400;
  size_t forward_normal_every = 8;
  size_t trainer_queue = 8192;
  uint64_t min_swaps = 0;  // fail the run if fewer hot-swaps happened
  bool verify = true;
  long admin_port = -1;  // -1 = no admin server, 0 = ephemeral port
  // Warmup rounds replay the trace before the measured window opens: they
  // warm shard queues, the matcher epoch, and branch predictors, and are
  // excluded from the reported throughput (their verdicts are still
  // verified).
  size_t warmup_repeat = 1;
  // Prefilter escape hatch: auto (default), off, scalar, or simd; forwarded
  // to GatewayOptions::prefilter (LEAKDET_PREFILTER overrides auto).
  std::string prefilter = "auto";
};

bool ParseFlag(const std::string& arg, const char* name, std::string* value) {
  std::string prefix = std::string("--") + name + "=";
  if (arg.rfind(prefix, 0) != 0) return false;
  *value = arg.substr(prefix.size());
  return true;
}

void Usage() {
  std::fprintf(
      stderr,
      "usage: leakdet_loadgen [--shards=N] [--queue-capacity=N] "
      "[--pop-batch=N]\n"
      "  [--policy=block|drop] [--scale=F] [--repeat=N] [--seed=N] "
      "[--rate=PPS]\n"
      "  [--retrain-after=N] [--sample-size=N] [--normal-corpus=N]\n"
      "  [--forward-normal-every=N] [--trainer-queue=N] [--min-swaps=N]\n"
      "  [--no-verify] [--admin-port=N] [--warmup-repeat=N]\n"
      "  [--prefilter=auto|off|scalar|simd]\n");
}

bool ParseFlags(int argc, char** argv, Flags* flags) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    std::string v;
    if (ParseFlag(arg, "shards", &v)) {
      flags->shards = std::strtoull(v.c_str(), nullptr, 10);
    } else if (ParseFlag(arg, "queue-capacity", &v)) {
      flags->queue_capacity = std::strtoull(v.c_str(), nullptr, 10);
    } else if (ParseFlag(arg, "pop-batch", &v)) {
      flags->pop_batch = std::strtoull(v.c_str(), nullptr, 10);
    } else if (ParseFlag(arg, "policy", &v)) {
      flags->policy = v;
    } else if (ParseFlag(arg, "scale", &v)) {
      flags->scale = std::strtod(v.c_str(), nullptr);
    } else if (ParseFlag(arg, "repeat", &v)) {
      flags->repeat = std::strtoull(v.c_str(), nullptr, 10);
    } else if (ParseFlag(arg, "seed", &v)) {
      flags->seed = std::strtoull(v.c_str(), nullptr, 10);
    } else if (ParseFlag(arg, "rate", &v)) {
      flags->rate = std::strtod(v.c_str(), nullptr);
    } else if (ParseFlag(arg, "retrain-after", &v)) {
      flags->retrain_after = std::strtoull(v.c_str(), nullptr, 10);
    } else if (ParseFlag(arg, "sample-size", &v)) {
      flags->sample_size = std::strtoull(v.c_str(), nullptr, 10);
    } else if (ParseFlag(arg, "normal-corpus", &v)) {
      flags->normal_corpus = std::strtoull(v.c_str(), nullptr, 10);
    } else if (ParseFlag(arg, "forward-normal-every", &v)) {
      flags->forward_normal_every = std::strtoull(v.c_str(), nullptr, 10);
    } else if (ParseFlag(arg, "trainer-queue", &v)) {
      flags->trainer_queue = std::strtoull(v.c_str(), nullptr, 10);
    } else if (ParseFlag(arg, "min-swaps", &v)) {
      flags->min_swaps = std::strtoull(v.c_str(), nullptr, 10);
    } else if (ParseFlag(arg, "admin-port", &v)) {
      flags->admin_port = std::strtol(v.c_str(), nullptr, 10);
    } else if (ParseFlag(arg, "warmup-repeat", &v)) {
      flags->warmup_repeat = std::strtoull(v.c_str(), nullptr, 10);
    } else if (ParseFlag(arg, "prefilter", &v)) {
      flags->prefilter = v;
    } else if (arg == "--no-verify") {
      flags->verify = false;
    } else if (arg == "--help" || arg == "-h") {
      Usage();
      std::exit(0);
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      Usage();
      return false;
    }
  }
  if (flags->policy != "block" && flags->policy != "drop") {
    std::fprintf(stderr, "--policy must be block or drop\n");
    return false;
  }
  if (flags->shards == 0 || flags->repeat == 0) {
    std::fprintf(stderr, "--shards and --repeat must be positive\n");
    return false;
  }
  leakdet::prefilter::Mode mode;
  if (!leakdet::prefilter::ParseMode(flags->prefilter, &mode)) {
    std::fprintf(stderr, "--prefilter must be auto, off, scalar, or simd\n");
    return false;
  }
  return true;
}

/// One recorded gateway verdict: which trace packet, under which epoch.
struct Recorded {
  uint32_t trace_index;
  uint64_t feed_version;
  bool sensitive;
};

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  if (!ParseFlags(argc, argv, &flags)) return 2;

  std::printf("generating trace (scale=%.3g seed=%llu)...\n", flags.scale,
              static_cast<unsigned long long>(flags.seed));
  leakdet::sim::TrafficConfig config;
  config.seed = flags.seed;
  config.scale = flags.scale;
  leakdet::sim::Trace trace = leakdet::sim::GenerateTrace(config);
  size_t sensitive_truth = 0;
  for (const auto& lp : trace.packets) {
    if (lp.sensitive()) ++sensitive_truth;
  }
  std::printf("trace: %zu packets (%zu ground-truth sensitive), %zu apps\n",
              trace.packets.size(), sensitive_truth,
              trace.population.apps.size());

  leakdet::core::PayloadCheck oracle({trace.device.ToTokens()});
  leakdet::core::SignatureServer::Options server_options;
  server_options.retrain_after = flags.retrain_after;
  server_options.pipeline.sample_size = flags.sample_size;
  server_options.pipeline.normal_corpus_size = flags.normal_corpus;
  server_options.pipeline.num_threads = 2;
  leakdet::core::SignatureServer server(&oracle, server_options);

  leakdet::gateway::GatewayOptions gw_options;
  gw_options.num_shards = flags.shards;
  gw_options.queue_capacity = flags.queue_capacity;
  gw_options.pop_batch = flags.pop_batch;
  gw_options.overload = flags.policy == "block"
                            ? leakdet::gateway::OverloadPolicy::kBlock
                            : leakdet::gateway::OverloadPolicy::kDropNewest;
  (void)leakdet::prefilter::ParseMode(flags.prefilter, &gw_options.prefilter);
  leakdet::gateway::DetectionGateway gateway(gw_options);

  leakdet::gateway::TrainerOptions trainer_options;
  trainer_options.queue_capacity = flags.trainer_queue;
  trainer_options.forward_normal_every = flags.forward_normal_every;
  leakdet::gateway::TrainerLoop trainer(&server, &gateway, trainer_options);

  // Optional admin plane over the gateway's registry (which the trainer
  // shares), so a scrape mid-run sees live shard queue depths and retrain
  // stage timings.
  leakdet::obs::AdminServerOptions admin_options;
  admin_options.registry = gateway.metrics();
  leakdet::obs::AdminServer admin(admin_options);
  admin.AddStatusSection("gateway", [&gateway] {
    return "epoch_version: " + std::to_string(gateway.current_version()) +
           "\nepoch_age_ns: " + std::to_string(gateway.epoch_age_ns()) + "\n";
  });
  if (flags.admin_port >= 0) {
    leakdet::Status started =
        admin.Start(static_cast<uint16_t>(flags.admin_port));
    if (!started.ok()) {
      std::fprintf(stderr, "admin server: %s\n",
                   started.ToString().c_str());
      return 2;
    }
    std::printf("admin plane at http://127.0.0.1:%u/metrics\n", admin.port());
  }

  size_t instances = trace.packets.size() * flags.repeat;
  // Per-shard verdict sequences; each is appended only by that shard's
  // worker thread, so no locking is needed (vectors are pre-created).
  std::vector<std::vector<Recorded>> verdicts(flags.shards);
  for (auto& v : verdicts) v.reserve(instances / flags.shards + 64);
  // Producer-side: which trace packet the k-th accepted packet of each
  // shard was. Together with FIFO shard order this reconstructs identity.
  std::vector<std::vector<uint32_t>> accepted(flags.shards);
  for (auto& v : accepted) v.reserve(instances / flags.shards + 64);
  std::atomic<uint32_t> current_index{0};

  gateway.set_sink([&](const leakdet::core::HttpPacket& packet,
                       const leakdet::gateway::Verdict& verdict) {
    Recorded r;
    r.trace_index = 0;  // patched from `accepted` during verification
    r.feed_version = verdict.feed_version;
    r.sensitive = verdict.sensitive;
    verdicts[verdict.shard].push_back(r);
    trainer.Offer(packet, verdict);
  });

  if (!gateway.Start().ok() || !trainer.Start().ok()) {
    std::fprintf(stderr, "failed to start gateway/trainer\n");
    return 2;
  }

  std::printf("replaying %zu x %zu = %zu packets through %zu shards "
              "(policy=%s, rate=%s, prefilter=%s, warmup=%zu rounds)...\n",
              trace.packets.size(), flags.repeat, instances, flags.shards,
              flags.policy.c_str(),
              flags.rate > 0 ? (std::to_string(flags.rate) + " pkt/s").c_str()
                             : "unlimited",
              leakdet::prefilter::ModeName(gateway.prefilter_mode()),
              flags.warmup_repeat);

  size_t submitted_count = 0;
  size_t pace_base = 0;  // accepted count when the current pacing clock began
  Clock::time_point pace_start = Clock::now();
  auto submit_round = [&] {
    for (size_t i = 0; i < trace.packets.size(); ++i) {
      const leakdet::core::HttpPacket& packet = trace.packets[i].packet;
      uint64_t device_id = packet.app_id;  // per-app ordering key
      size_t shard = gateway.shard_of(device_id);
      if (gateway.Submit(device_id, packet)) {
        accepted[shard].push_back(static_cast<uint32_t>(i));
        ++submitted_count;
      }
      if (flags.rate > 0 && (submitted_count & 1023) == 0) {
        double target_elapsed =
            static_cast<double>(submitted_count - pace_base) / flags.rate;
        double actual =
            std::chrono::duration<double>(Clock::now() - pace_start).count();
        if (actual < target_elapsed) {
          std::this_thread::sleep_for(
              std::chrono::duration<double>(target_elapsed - actual));
        }
      }
    }
  };
  auto drain = [&] {
    // Every accepted packet has a verdict once processed catches up (kBlock
    // accepts everything; kDropNewest counts drops at submit time).
    while (gateway.processed() < submitted_count) {
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  };

  // Warmup rounds: replay + drain OUTSIDE the measured window, so one-time
  // costs (trace paging, shard-queue first touch, the first matcher
  // hot-swap) never inflate or deflate the reported throughput. Their
  // verdicts are still recorded and verified like any others.
  for (size_t r = 0; r < flags.warmup_repeat; ++r) submit_round();
  drain();

  const uint64_t processed_before = gateway.processed();
  Clock::time_point run_start = Clock::now();
  pace_start = run_start;
  pace_base = submitted_count;
  for (size_t r = 0; r < flags.repeat; ++r) submit_round();
  drain();  // measured window ends when the last verdict lands, not at Stop
  Clock::time_point run_end = Clock::now();
  gateway.Stop();
  trainer.Stop();
  admin.Stop();

  double wall = std::chrono::duration<double>(run_end - run_start).count();
  uint64_t processed = gateway.processed();
  uint64_t measured = processed - processed_before;
  double throughput = wall > 0 ? static_cast<double>(measured) / wall : 0;
  std::printf("\nrun: submitted=%llu processed=%llu dropped=%llu "
              "matched=%llu swaps=%llu\n",
              static_cast<unsigned long long>(gateway.submitted()),
              static_cast<unsigned long long>(processed),
              static_cast<unsigned long long>(gateway.dropped()),
              static_cast<unsigned long long>(gateway.matched()),
              static_cast<unsigned long long>(gateway.swaps()));
  std::printf("run: measured=%llu wall=%.2fs throughput=%.0f pkt/s "
              "(warmup excluded; feeds published=%llu, training "
              "drops=%llu)\n",
              static_cast<unsigned long long>(measured), wall, throughput,
              static_cast<unsigned long long>(trainer.feeds_published()),
              static_cast<unsigned long long>(trainer.training_drops()));
  std::printf("run: prefilter skipped=%llu candidates=%llu "
              "false_candidates=%llu\n",
              static_cast<unsigned long long>(gateway.prefilter_skipped()),
              static_cast<unsigned long long>(gateway.prefilter_candidates()),
              static_cast<unsigned long long>(
                  gateway.prefilter_false_candidates()));

  std::printf("\n-- metrics --\n%s\n", gateway.metrics()->TextDump().c_str());

  int exit_code = 0;
  if (flags.verify) {
    // Patch identities, then check every verdict against the single-threaded
    // Detector for its epoch. One thread per shard, each with its own
    // per-version Detector cache (Detector construction rebuilds the
    // automaton, so caches are not shared across threads).
    std::printf("verifying %llu verdicts against the single-threaded "
                "Detector baseline...\n",
                static_cast<unsigned long long>(processed));
    std::atomic<uint64_t> mismatches{0};
    std::atomic<uint64_t> checked{0};
    std::vector<std::thread> checkers;
    for (size_t s = 0; s < flags.shards; ++s) {
      checkers.emplace_back([&, s] {
        if (verdicts[s].size() != accepted[s].size()) {
          std::fprintf(stderr,
                       "shard %zu: %zu verdicts for %zu accepted packets\n", s,
                       verdicts[s].size(), accepted[s].size());
          mismatches.fetch_add(1);
          return;
        }
        std::map<uint64_t, std::unique_ptr<leakdet::core::Detector>> cache;
        // version -> per-trace-index memo (-1 unknown, else 0/1).
        std::map<uint64_t, std::vector<int8_t>> memo;
        for (size_t k = 0; k < verdicts[s].size(); ++k) {
          Recorded& r = verdicts[s][k];
          r.trace_index = accepted[s][k];
          std::vector<int8_t>& m = memo[r.feed_version];
          if (m.empty()) m.assign(trace.packets.size(), -1);
          int8_t& slot = m[r.trace_index];
          if (slot < 0) {
            auto it = cache.find(r.feed_version);
            if (it == cache.end()) {
              leakdet::match::SignatureSet set;  // version 0: empty set
              if (r.feed_version != 0) {
                auto archived = trainer.SetForVersion(r.feed_version);
                if (!archived) {
                  std::fprintf(stderr, "no archived feed for version %llu\n",
                               static_cast<unsigned long long>(
                                   r.feed_version));
                  mismatches.fetch_add(1);
                  return;
                }
                set = archived->set();
              }
              it = cache
                       .emplace(r.feed_version,
                                std::make_unique<leakdet::core::Detector>(
                                    std::move(set)))
                       .first;
            }
            slot = it->second->IsSensitive(trace.packets[r.trace_index].packet)
                       ? 1
                       : 0;
          }
          if ((slot == 1) != r.sensitive) mismatches.fetch_add(1);
          checked.fetch_add(1, std::memory_order_relaxed);
        }
      });
    }
    for (std::thread& t : checkers) t.join();
    std::printf("verify: checked=%llu mismatches=%llu -> %s\n",
                static_cast<unsigned long long>(checked.load()),
                static_cast<unsigned long long>(mismatches.load()),
                mismatches.load() == 0 ? "IDENTICAL to baseline" : "FAILED");
    if (mismatches.load() != 0) exit_code = 1;
  }

  if (gateway.swaps() < flags.min_swaps) {
    std::printf("FAILED: %llu hot-swaps < required --min-swaps=%llu\n",
                static_cast<unsigned long long>(gateway.swaps()),
                static_cast<unsigned long long>(flags.min_swaps));
    exit_code = 1;
  }
  return exit_code;
}
