# Empty compiler generated dependencies file for leakdet_cli.
# This may be replaced when dependencies are built.
