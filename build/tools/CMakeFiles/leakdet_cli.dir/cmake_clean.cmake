file(REMOVE_RECURSE
  "CMakeFiles/leakdet_cli.dir/leakdet_cli.cpp.o"
  "CMakeFiles/leakdet_cli.dir/leakdet_cli.cpp.o.d"
  "leakdet"
  "leakdet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/leakdet_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
