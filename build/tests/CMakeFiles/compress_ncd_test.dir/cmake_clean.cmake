file(REMOVE_RECURSE
  "CMakeFiles/compress_ncd_test.dir/compress_ncd_test.cc.o"
  "CMakeFiles/compress_ncd_test.dir/compress_ncd_test.cc.o.d"
  "compress_ncd_test"
  "compress_ncd_test.pdb"
  "compress_ncd_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compress_ncd_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
