# Empty compiler generated dependencies file for compress_ncd_test.
# This may be replaced when dependencies are built.
