# Empty dependencies file for http_url_test.
# This may be replaced when dependencies are built.
