file(REMOVE_RECURSE
  "CMakeFiles/http_url_test.dir/http_url_test.cc.o"
  "CMakeFiles/http_url_test.dir/http_url_test.cc.o.d"
  "http_url_test"
  "http_url_test.pdb"
  "http_url_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/http_url_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
