# Empty compiler generated dependencies file for match_signature_test.
# This may be replaced when dependencies are built.
