file(REMOVE_RECURSE
  "CMakeFiles/compress_huffman_test.dir/compress_huffman_test.cc.o"
  "CMakeFiles/compress_huffman_test.dir/compress_huffman_test.cc.o.d"
  "compress_huffman_test"
  "compress_huffman_test.pdb"
  "compress_huffman_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compress_huffman_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
