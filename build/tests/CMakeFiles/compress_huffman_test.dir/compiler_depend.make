# Empty compiler generated dependencies file for compress_huffman_test.
# This may be replaced when dependencies are built.
