# Empty dependencies file for match_subsequence_signature_test.
# This may be replaced when dependencies are built.
