file(REMOVE_RECURSE
  "CMakeFiles/match_subsequence_signature_test.dir/match_subsequence_signature_test.cc.o"
  "CMakeFiles/match_subsequence_signature_test.dir/match_subsequence_signature_test.cc.o.d"
  "match_subsequence_signature_test"
  "match_subsequence_signature_test.pdb"
  "match_subsequence_signature_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/match_subsequence_signature_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
