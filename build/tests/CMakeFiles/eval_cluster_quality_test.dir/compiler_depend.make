# Empty compiler generated dependencies file for eval_cluster_quality_test.
# This may be replaced when dependencies are built.
