file(REMOVE_RECURSE
  "CMakeFiles/eval_cluster_quality_test.dir/eval_cluster_quality_test.cc.o"
  "CMakeFiles/eval_cluster_quality_test.dir/eval_cluster_quality_test.cc.o.d"
  "eval_cluster_quality_test"
  "eval_cluster_quality_test.pdb"
  "eval_cluster_quality_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eval_cluster_quality_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
