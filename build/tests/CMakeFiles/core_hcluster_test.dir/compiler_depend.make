# Empty compiler generated dependencies file for core_hcluster_test.
# This may be replaced when dependencies are built.
