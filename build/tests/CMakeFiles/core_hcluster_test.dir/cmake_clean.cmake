file(REMOVE_RECURSE
  "CMakeFiles/core_hcluster_test.dir/core_hcluster_test.cc.o"
  "CMakeFiles/core_hcluster_test.dir/core_hcluster_test.cc.o.d"
  "core_hcluster_test"
  "core_hcluster_test.pdb"
  "core_hcluster_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_hcluster_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
