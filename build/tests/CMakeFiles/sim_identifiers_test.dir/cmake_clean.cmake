file(REMOVE_RECURSE
  "CMakeFiles/sim_identifiers_test.dir/sim_identifiers_test.cc.o"
  "CMakeFiles/sim_identifiers_test.dir/sim_identifiers_test.cc.o.d"
  "sim_identifiers_test"
  "sim_identifiers_test.pdb"
  "sim_identifiers_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_identifiers_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
