file(REMOVE_RECURSE
  "CMakeFiles/text_suffix_automaton_test.dir/text_suffix_automaton_test.cc.o"
  "CMakeFiles/text_suffix_automaton_test.dir/text_suffix_automaton_test.cc.o.d"
  "text_suffix_automaton_test"
  "text_suffix_automaton_test.pdb"
  "text_suffix_automaton_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/text_suffix_automaton_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
