# Empty dependencies file for text_suffix_automaton_test.
# This may be replaced when dependencies are built.
