file(REMOVE_RECURSE
  "CMakeFiles/compress_roundtrip_test.dir/compress_roundtrip_test.cc.o"
  "CMakeFiles/compress_roundtrip_test.dir/compress_roundtrip_test.cc.o.d"
  "compress_roundtrip_test"
  "compress_roundtrip_test.pdb"
  "compress_roundtrip_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compress_roundtrip_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
