# Empty dependencies file for io_pcap_test.
# This may be replaced when dependencies are built.
