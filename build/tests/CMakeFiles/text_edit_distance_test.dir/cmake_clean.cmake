file(REMOVE_RECURSE
  "CMakeFiles/text_edit_distance_test.dir/text_edit_distance_test.cc.o"
  "CMakeFiles/text_edit_distance_test.dir/text_edit_distance_test.cc.o.d"
  "text_edit_distance_test"
  "text_edit_distance_test.pdb"
  "text_edit_distance_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/text_edit_distance_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
