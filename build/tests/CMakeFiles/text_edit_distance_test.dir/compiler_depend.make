# Empty compiler generated dependencies file for text_edit_distance_test.
# This may be replaced when dependencies are built.
