# Empty dependencies file for crypto_sha1_test.
# This may be replaced when dependencies are built.
