file(REMOVE_RECURSE
  "CMakeFiles/crypto_sha1_test.dir/crypto_sha1_test.cc.o"
  "CMakeFiles/crypto_sha1_test.dir/crypto_sha1_test.cc.o.d"
  "crypto_sha1_test"
  "crypto_sha1_test.pdb"
  "crypto_sha1_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crypto_sha1_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
