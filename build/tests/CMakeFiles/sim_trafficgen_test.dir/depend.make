# Empty dependencies file for sim_trafficgen_test.
# This may be replaced when dependencies are built.
