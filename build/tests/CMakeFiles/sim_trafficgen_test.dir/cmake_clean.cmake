file(REMOVE_RECURSE
  "CMakeFiles/sim_trafficgen_test.dir/sim_trafficgen_test.cc.o"
  "CMakeFiles/sim_trafficgen_test.dir/sim_trafficgen_test.cc.o.d"
  "sim_trafficgen_test"
  "sim_trafficgen_test.pdb"
  "sim_trafficgen_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_trafficgen_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
