file(REMOVE_RECURSE
  "CMakeFiles/compress_bitstream_test.dir/compress_bitstream_test.cc.o"
  "CMakeFiles/compress_bitstream_test.dir/compress_bitstream_test.cc.o.d"
  "compress_bitstream_test"
  "compress_bitstream_test.pdb"
  "compress_bitstream_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compress_bitstream_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
