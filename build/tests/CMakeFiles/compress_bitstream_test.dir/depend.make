# Empty dependencies file for compress_bitstream_test.
# This may be replaced when dependencies are built.
