# Empty dependencies file for match_bayes_signature_test.
# This may be replaced when dependencies are built.
