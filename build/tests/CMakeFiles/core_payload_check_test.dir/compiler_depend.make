# Empty compiler generated dependencies file for core_payload_check_test.
# This may be replaced when dependencies are built.
