file(REMOVE_RECURSE
  "CMakeFiles/core_payload_check_test.dir/core_payload_check_test.cc.o"
  "CMakeFiles/core_payload_check_test.dir/core_payload_check_test.cc.o.d"
  "core_payload_check_test"
  "core_payload_check_test.pdb"
  "core_payload_check_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_payload_check_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
