# Empty dependencies file for match_aho_corasick_test.
# This may be replaced when dependencies are built.
