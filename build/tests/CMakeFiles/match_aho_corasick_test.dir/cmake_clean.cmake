file(REMOVE_RECURSE
  "CMakeFiles/match_aho_corasick_test.dir/match_aho_corasick_test.cc.o"
  "CMakeFiles/match_aho_corasick_test.dir/match_aho_corasick_test.cc.o.d"
  "match_aho_corasick_test"
  "match_aho_corasick_test.pdb"
  "match_aho_corasick_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/match_aho_corasick_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
