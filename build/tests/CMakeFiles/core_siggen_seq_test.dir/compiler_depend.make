# Empty compiler generated dependencies file for core_siggen_seq_test.
# This may be replaced when dependencies are built.
