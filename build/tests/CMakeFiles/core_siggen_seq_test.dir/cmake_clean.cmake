file(REMOVE_RECURSE
  "CMakeFiles/core_siggen_seq_test.dir/core_siggen_seq_test.cc.o"
  "CMakeFiles/core_siggen_seq_test.dir/core_siggen_seq_test.cc.o.d"
  "core_siggen_seq_test"
  "core_siggen_seq_test.pdb"
  "core_siggen_seq_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_siggen_seq_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
