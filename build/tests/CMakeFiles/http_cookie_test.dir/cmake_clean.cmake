file(REMOVE_RECURSE
  "CMakeFiles/http_cookie_test.dir/http_cookie_test.cc.o"
  "CMakeFiles/http_cookie_test.dir/http_cookie_test.cc.o.d"
  "http_cookie_test"
  "http_cookie_test.pdb"
  "http_cookie_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/http_cookie_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
