# Empty dependencies file for http_cookie_test.
# This may be replaced when dependencies are built.
