
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/io_feed_server_test.cc" "tests/CMakeFiles/io_feed_server_test.dir/io_feed_server_test.cc.o" "gcc" "tests/CMakeFiles/io_feed_server_test.dir/io_feed_server_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/eval/CMakeFiles/leakdet_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/leakdet_io.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/leakdet_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/leakdet_core.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/leakdet_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/leakdet_text.dir/DependInfo.cmake"
  "/root/repo/build/src/compress/CMakeFiles/leakdet_compress.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/leakdet_net.dir/DependInfo.cmake"
  "/root/repo/build/src/http/CMakeFiles/leakdet_http.dir/DependInfo.cmake"
  "/root/repo/build/src/match/CMakeFiles/leakdet_match.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/leakdet_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
