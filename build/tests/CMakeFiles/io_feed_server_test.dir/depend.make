# Empty dependencies file for io_feed_server_test.
# This may be replaced when dependencies are built.
