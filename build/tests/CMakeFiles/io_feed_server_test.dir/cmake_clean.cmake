file(REMOVE_RECURSE
  "CMakeFiles/io_feed_server_test.dir/io_feed_server_test.cc.o"
  "CMakeFiles/io_feed_server_test.dir/io_feed_server_test.cc.o.d"
  "io_feed_server_test"
  "io_feed_server_test.pdb"
  "io_feed_server_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/io_feed_server_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
