# Empty dependencies file for net_org_registry_test.
# This may be replaced when dependencies are built.
