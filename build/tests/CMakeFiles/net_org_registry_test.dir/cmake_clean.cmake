file(REMOVE_RECURSE
  "CMakeFiles/net_org_registry_test.dir/net_org_registry_test.cc.o"
  "CMakeFiles/net_org_registry_test.dir/net_org_registry_test.cc.o.d"
  "net_org_registry_test"
  "net_org_registry_test.pdb"
  "net_org_registry_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/net_org_registry_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
