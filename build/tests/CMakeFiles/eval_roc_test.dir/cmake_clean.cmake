file(REMOVE_RECURSE
  "CMakeFiles/eval_roc_test.dir/eval_roc_test.cc.o"
  "CMakeFiles/eval_roc_test.dir/eval_roc_test.cc.o.d"
  "eval_roc_test"
  "eval_roc_test.pdb"
  "eval_roc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eval_roc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
