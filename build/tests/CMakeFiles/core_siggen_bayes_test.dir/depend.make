# Empty dependencies file for core_siggen_bayes_test.
# This may be replaced when dependencies are built.
