# Empty dependencies file for core_signature_server_test.
# This may be replaced when dependencies are built.
