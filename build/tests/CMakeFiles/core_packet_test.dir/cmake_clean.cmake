file(REMOVE_RECURSE
  "CMakeFiles/core_packet_test.dir/core_packet_test.cc.o"
  "CMakeFiles/core_packet_test.dir/core_packet_test.cc.o.d"
  "core_packet_test"
  "core_packet_test.pdb"
  "core_packet_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_packet_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
