# Empty dependencies file for core_packet_test.
# This may be replaced when dependencies are built.
