file(REMOVE_RECURSE
  "CMakeFiles/crypto_md5_test.dir/crypto_md5_test.cc.o"
  "CMakeFiles/crypto_md5_test.dir/crypto_md5_test.cc.o.d"
  "crypto_md5_test"
  "crypto_md5_test.pdb"
  "crypto_md5_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crypto_md5_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
