# Empty compiler generated dependencies file for text_token_extract_test.
# This may be replaced when dependencies are built.
