file(REMOVE_RECURSE
  "CMakeFiles/text_token_extract_test.dir/text_token_extract_test.cc.o"
  "CMakeFiles/text_token_extract_test.dir/text_token_extract_test.cc.o.d"
  "text_token_extract_test"
  "text_token_extract_test.pdb"
  "text_token_extract_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/text_token_extract_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
