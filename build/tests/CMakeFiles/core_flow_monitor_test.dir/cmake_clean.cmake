file(REMOVE_RECURSE
  "CMakeFiles/core_flow_monitor_test.dir/core_flow_monitor_test.cc.o"
  "CMakeFiles/core_flow_monitor_test.dir/core_flow_monitor_test.cc.o.d"
  "core_flow_monitor_test"
  "core_flow_monitor_test.pdb"
  "core_flow_monitor_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_flow_monitor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
