# Empty dependencies file for core_flow_monitor_test.
# This may be replaced when dependencies are built.
