# Empty dependencies file for core_siggen_test.
# This may be replaced when dependencies are built.
