# Empty dependencies file for http_response_test.
# This may be replaced when dependencies are built.
