file(REMOVE_RECURSE
  "CMakeFiles/http_response_test.dir/http_response_test.cc.o"
  "CMakeFiles/http_response_test.dir/http_response_test.cc.o.d"
  "http_response_test"
  "http_response_test.pdb"
  "http_response_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/http_response_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
