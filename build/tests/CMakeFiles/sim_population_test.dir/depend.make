# Empty dependencies file for sim_population_test.
# This may be replaced when dependencies are built.
