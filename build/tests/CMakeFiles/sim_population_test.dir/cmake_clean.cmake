file(REMOVE_RECURSE
  "CMakeFiles/sim_population_test.dir/sim_population_test.cc.o"
  "CMakeFiles/sim_population_test.dir/sim_population_test.cc.o.d"
  "sim_population_test"
  "sim_population_test.pdb"
  "sim_population_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_population_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
