# Empty compiler generated dependencies file for crypto_xor_obfuscate_test.
# This may be replaced when dependencies are built.
