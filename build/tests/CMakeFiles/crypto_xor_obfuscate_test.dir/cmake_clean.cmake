file(REMOVE_RECURSE
  "CMakeFiles/crypto_xor_obfuscate_test.dir/crypto_xor_obfuscate_test.cc.o"
  "CMakeFiles/crypto_xor_obfuscate_test.dir/crypto_xor_obfuscate_test.cc.o.d"
  "crypto_xor_obfuscate_test"
  "crypto_xor_obfuscate_test.pdb"
  "crypto_xor_obfuscate_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crypto_xor_obfuscate_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
