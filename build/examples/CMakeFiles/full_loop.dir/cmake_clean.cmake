file(REMOVE_RECURSE
  "CMakeFiles/full_loop.dir/full_loop.cpp.o"
  "CMakeFiles/full_loop.dir/full_loop.cpp.o.d"
  "full_loop"
  "full_loop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/full_loop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
