# Empty dependencies file for full_loop.
# This may be replaced when dependencies are built.
