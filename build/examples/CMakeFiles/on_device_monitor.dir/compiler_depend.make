# Empty compiler generated dependencies file for on_device_monitor.
# This may be replaced when dependencies are built.
