file(REMOVE_RECURSE
  "CMakeFiles/on_device_monitor.dir/on_device_monitor.cpp.o"
  "CMakeFiles/on_device_monitor.dir/on_device_monitor.cpp.o.d"
  "on_device_monitor"
  "on_device_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/on_device_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
