file(REMOVE_RECURSE
  "CMakeFiles/market_study.dir/market_study.cpp.o"
  "CMakeFiles/market_study.dir/market_study.cpp.o.d"
  "market_study"
  "market_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/market_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
