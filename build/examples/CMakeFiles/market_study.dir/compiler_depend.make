# Empty compiler generated dependencies file for market_study.
# This may be replaced when dependencies are built.
