# Empty compiler generated dependencies file for signature_server.
# This may be replaced when dependencies are built.
