file(REMOVE_RECURSE
  "CMakeFiles/signature_server.dir/signature_server.cpp.o"
  "CMakeFiles/signature_server.dir/signature_server.cpp.o.d"
  "signature_server"
  "signature_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/signature_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
