# Empty compiler generated dependencies file for leakdet_crypto.
# This may be replaced when dependencies are built.
