file(REMOVE_RECURSE
  "libleakdet_crypto.a"
)
