
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/crypto/md5.cc" "src/crypto/CMakeFiles/leakdet_crypto.dir/md5.cc.o" "gcc" "src/crypto/CMakeFiles/leakdet_crypto.dir/md5.cc.o.d"
  "/root/repo/src/crypto/sha1.cc" "src/crypto/CMakeFiles/leakdet_crypto.dir/sha1.cc.o" "gcc" "src/crypto/CMakeFiles/leakdet_crypto.dir/sha1.cc.o.d"
  "/root/repo/src/crypto/xor_obfuscate.cc" "src/crypto/CMakeFiles/leakdet_crypto.dir/xor_obfuscate.cc.o" "gcc" "src/crypto/CMakeFiles/leakdet_crypto.dir/xor_obfuscate.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/leakdet_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
