file(REMOVE_RECURSE
  "CMakeFiles/leakdet_crypto.dir/md5.cc.o"
  "CMakeFiles/leakdet_crypto.dir/md5.cc.o.d"
  "CMakeFiles/leakdet_crypto.dir/sha1.cc.o"
  "CMakeFiles/leakdet_crypto.dir/sha1.cc.o.d"
  "CMakeFiles/leakdet_crypto.dir/xor_obfuscate.cc.o"
  "CMakeFiles/leakdet_crypto.dir/xor_obfuscate.cc.o.d"
  "libleakdet_crypto.a"
  "libleakdet_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/leakdet_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
