file(REMOVE_RECURSE
  "libleakdet_net.a"
)
