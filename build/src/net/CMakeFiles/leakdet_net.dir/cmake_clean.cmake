file(REMOVE_RECURSE
  "CMakeFiles/leakdet_net.dir/host.cc.o"
  "CMakeFiles/leakdet_net.dir/host.cc.o.d"
  "CMakeFiles/leakdet_net.dir/ipv4.cc.o"
  "CMakeFiles/leakdet_net.dir/ipv4.cc.o.d"
  "CMakeFiles/leakdet_net.dir/org_registry.cc.o"
  "CMakeFiles/leakdet_net.dir/org_registry.cc.o.d"
  "CMakeFiles/leakdet_net.dir/tcp.cc.o"
  "CMakeFiles/leakdet_net.dir/tcp.cc.o.d"
  "libleakdet_net.a"
  "libleakdet_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/leakdet_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
