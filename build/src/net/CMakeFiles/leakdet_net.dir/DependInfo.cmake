
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/host.cc" "src/net/CMakeFiles/leakdet_net.dir/host.cc.o" "gcc" "src/net/CMakeFiles/leakdet_net.dir/host.cc.o.d"
  "/root/repo/src/net/ipv4.cc" "src/net/CMakeFiles/leakdet_net.dir/ipv4.cc.o" "gcc" "src/net/CMakeFiles/leakdet_net.dir/ipv4.cc.o.d"
  "/root/repo/src/net/org_registry.cc" "src/net/CMakeFiles/leakdet_net.dir/org_registry.cc.o" "gcc" "src/net/CMakeFiles/leakdet_net.dir/org_registry.cc.o.d"
  "/root/repo/src/net/tcp.cc" "src/net/CMakeFiles/leakdet_net.dir/tcp.cc.o" "gcc" "src/net/CMakeFiles/leakdet_net.dir/tcp.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/leakdet_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
