# Empty dependencies file for leakdet_net.
# This may be replaced when dependencies are built.
