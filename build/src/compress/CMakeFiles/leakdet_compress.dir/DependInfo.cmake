
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/compress/bitstream.cc" "src/compress/CMakeFiles/leakdet_compress.dir/bitstream.cc.o" "gcc" "src/compress/CMakeFiles/leakdet_compress.dir/bitstream.cc.o.d"
  "/root/repo/src/compress/compressor.cc" "src/compress/CMakeFiles/leakdet_compress.dir/compressor.cc.o" "gcc" "src/compress/CMakeFiles/leakdet_compress.dir/compressor.cc.o.d"
  "/root/repo/src/compress/huffman.cc" "src/compress/CMakeFiles/leakdet_compress.dir/huffman.cc.o" "gcc" "src/compress/CMakeFiles/leakdet_compress.dir/huffman.cc.o.d"
  "/root/repo/src/compress/lz77.cc" "src/compress/CMakeFiles/leakdet_compress.dir/lz77.cc.o" "gcc" "src/compress/CMakeFiles/leakdet_compress.dir/lz77.cc.o.d"
  "/root/repo/src/compress/lzw.cc" "src/compress/CMakeFiles/leakdet_compress.dir/lzw.cc.o" "gcc" "src/compress/CMakeFiles/leakdet_compress.dir/lzw.cc.o.d"
  "/root/repo/src/compress/ncd.cc" "src/compress/CMakeFiles/leakdet_compress.dir/ncd.cc.o" "gcc" "src/compress/CMakeFiles/leakdet_compress.dir/ncd.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/leakdet_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
