# Empty dependencies file for leakdet_compress.
# This may be replaced when dependencies are built.
