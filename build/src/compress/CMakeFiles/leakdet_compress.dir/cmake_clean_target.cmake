file(REMOVE_RECURSE
  "libleakdet_compress.a"
)
