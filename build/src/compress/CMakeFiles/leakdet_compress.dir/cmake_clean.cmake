file(REMOVE_RECURSE
  "CMakeFiles/leakdet_compress.dir/bitstream.cc.o"
  "CMakeFiles/leakdet_compress.dir/bitstream.cc.o.d"
  "CMakeFiles/leakdet_compress.dir/compressor.cc.o"
  "CMakeFiles/leakdet_compress.dir/compressor.cc.o.d"
  "CMakeFiles/leakdet_compress.dir/huffman.cc.o"
  "CMakeFiles/leakdet_compress.dir/huffman.cc.o.d"
  "CMakeFiles/leakdet_compress.dir/lz77.cc.o"
  "CMakeFiles/leakdet_compress.dir/lz77.cc.o.d"
  "CMakeFiles/leakdet_compress.dir/lzw.cc.o"
  "CMakeFiles/leakdet_compress.dir/lzw.cc.o.d"
  "CMakeFiles/leakdet_compress.dir/ncd.cc.o"
  "CMakeFiles/leakdet_compress.dir/ncd.cc.o.d"
  "libleakdet_compress.a"
  "libleakdet_compress.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/leakdet_compress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
