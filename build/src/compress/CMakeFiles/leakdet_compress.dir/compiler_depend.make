# Empty compiler generated dependencies file for leakdet_compress.
# This may be replaced when dependencies are built.
