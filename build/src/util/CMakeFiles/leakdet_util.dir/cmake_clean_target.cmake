file(REMOVE_RECURSE
  "libleakdet_util.a"
)
