# Empty dependencies file for leakdet_util.
# This may be replaced when dependencies are built.
