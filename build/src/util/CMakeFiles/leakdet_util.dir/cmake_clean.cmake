file(REMOVE_RECURSE
  "CMakeFiles/leakdet_util.dir/rng.cc.o"
  "CMakeFiles/leakdet_util.dir/rng.cc.o.d"
  "CMakeFiles/leakdet_util.dir/status.cc.o"
  "CMakeFiles/leakdet_util.dir/status.cc.o.d"
  "CMakeFiles/leakdet_util.dir/strutil.cc.o"
  "CMakeFiles/leakdet_util.dir/strutil.cc.o.d"
  "libleakdet_util.a"
  "libleakdet_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/leakdet_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
