file(REMOVE_RECURSE
  "libleakdet_core.a"
)
