
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/detector.cc" "src/core/CMakeFiles/leakdet_core.dir/detector.cc.o" "gcc" "src/core/CMakeFiles/leakdet_core.dir/detector.cc.o.d"
  "/root/repo/src/core/distance.cc" "src/core/CMakeFiles/leakdet_core.dir/distance.cc.o" "gcc" "src/core/CMakeFiles/leakdet_core.dir/distance.cc.o.d"
  "/root/repo/src/core/flow_monitor.cc" "src/core/CMakeFiles/leakdet_core.dir/flow_monitor.cc.o" "gcc" "src/core/CMakeFiles/leakdet_core.dir/flow_monitor.cc.o.d"
  "/root/repo/src/core/hcluster.cc" "src/core/CMakeFiles/leakdet_core.dir/hcluster.cc.o" "gcc" "src/core/CMakeFiles/leakdet_core.dir/hcluster.cc.o.d"
  "/root/repo/src/core/packet.cc" "src/core/CMakeFiles/leakdet_core.dir/packet.cc.o" "gcc" "src/core/CMakeFiles/leakdet_core.dir/packet.cc.o.d"
  "/root/repo/src/core/payload_check.cc" "src/core/CMakeFiles/leakdet_core.dir/payload_check.cc.o" "gcc" "src/core/CMakeFiles/leakdet_core.dir/payload_check.cc.o.d"
  "/root/repo/src/core/pipeline.cc" "src/core/CMakeFiles/leakdet_core.dir/pipeline.cc.o" "gcc" "src/core/CMakeFiles/leakdet_core.dir/pipeline.cc.o.d"
  "/root/repo/src/core/siggen.cc" "src/core/CMakeFiles/leakdet_core.dir/siggen.cc.o" "gcc" "src/core/CMakeFiles/leakdet_core.dir/siggen.cc.o.d"
  "/root/repo/src/core/siggen_bayes.cc" "src/core/CMakeFiles/leakdet_core.dir/siggen_bayes.cc.o" "gcc" "src/core/CMakeFiles/leakdet_core.dir/siggen_bayes.cc.o.d"
  "/root/repo/src/core/siggen_seq.cc" "src/core/CMakeFiles/leakdet_core.dir/siggen_seq.cc.o" "gcc" "src/core/CMakeFiles/leakdet_core.dir/siggen_seq.cc.o.d"
  "/root/repo/src/core/signature_server.cc" "src/core/CMakeFiles/leakdet_core.dir/signature_server.cc.o" "gcc" "src/core/CMakeFiles/leakdet_core.dir/signature_server.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/leakdet_util.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/leakdet_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/leakdet_text.dir/DependInfo.cmake"
  "/root/repo/build/src/compress/CMakeFiles/leakdet_compress.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/leakdet_net.dir/DependInfo.cmake"
  "/root/repo/build/src/http/CMakeFiles/leakdet_http.dir/DependInfo.cmake"
  "/root/repo/build/src/match/CMakeFiles/leakdet_match.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
