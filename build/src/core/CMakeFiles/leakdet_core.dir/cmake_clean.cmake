file(REMOVE_RECURSE
  "CMakeFiles/leakdet_core.dir/detector.cc.o"
  "CMakeFiles/leakdet_core.dir/detector.cc.o.d"
  "CMakeFiles/leakdet_core.dir/distance.cc.o"
  "CMakeFiles/leakdet_core.dir/distance.cc.o.d"
  "CMakeFiles/leakdet_core.dir/flow_monitor.cc.o"
  "CMakeFiles/leakdet_core.dir/flow_monitor.cc.o.d"
  "CMakeFiles/leakdet_core.dir/hcluster.cc.o"
  "CMakeFiles/leakdet_core.dir/hcluster.cc.o.d"
  "CMakeFiles/leakdet_core.dir/packet.cc.o"
  "CMakeFiles/leakdet_core.dir/packet.cc.o.d"
  "CMakeFiles/leakdet_core.dir/payload_check.cc.o"
  "CMakeFiles/leakdet_core.dir/payload_check.cc.o.d"
  "CMakeFiles/leakdet_core.dir/pipeline.cc.o"
  "CMakeFiles/leakdet_core.dir/pipeline.cc.o.d"
  "CMakeFiles/leakdet_core.dir/siggen.cc.o"
  "CMakeFiles/leakdet_core.dir/siggen.cc.o.d"
  "CMakeFiles/leakdet_core.dir/siggen_bayes.cc.o"
  "CMakeFiles/leakdet_core.dir/siggen_bayes.cc.o.d"
  "CMakeFiles/leakdet_core.dir/siggen_seq.cc.o"
  "CMakeFiles/leakdet_core.dir/siggen_seq.cc.o.d"
  "CMakeFiles/leakdet_core.dir/signature_server.cc.o"
  "CMakeFiles/leakdet_core.dir/signature_server.cc.o.d"
  "libleakdet_core.a"
  "libleakdet_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/leakdet_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
