# Empty dependencies file for leakdet_core.
# This may be replaced when dependencies are built.
