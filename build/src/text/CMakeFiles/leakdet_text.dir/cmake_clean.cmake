file(REMOVE_RECURSE
  "CMakeFiles/leakdet_text.dir/edit_distance.cc.o"
  "CMakeFiles/leakdet_text.dir/edit_distance.cc.o.d"
  "CMakeFiles/leakdet_text.dir/suffix_automaton.cc.o"
  "CMakeFiles/leakdet_text.dir/suffix_automaton.cc.o.d"
  "CMakeFiles/leakdet_text.dir/token_extract.cc.o"
  "CMakeFiles/leakdet_text.dir/token_extract.cc.o.d"
  "libleakdet_text.a"
  "libleakdet_text.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/leakdet_text.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
