file(REMOVE_RECURSE
  "libleakdet_text.a"
)
