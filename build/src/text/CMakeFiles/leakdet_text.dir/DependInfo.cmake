
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/text/edit_distance.cc" "src/text/CMakeFiles/leakdet_text.dir/edit_distance.cc.o" "gcc" "src/text/CMakeFiles/leakdet_text.dir/edit_distance.cc.o.d"
  "/root/repo/src/text/suffix_automaton.cc" "src/text/CMakeFiles/leakdet_text.dir/suffix_automaton.cc.o" "gcc" "src/text/CMakeFiles/leakdet_text.dir/suffix_automaton.cc.o.d"
  "/root/repo/src/text/token_extract.cc" "src/text/CMakeFiles/leakdet_text.dir/token_extract.cc.o" "gcc" "src/text/CMakeFiles/leakdet_text.dir/token_extract.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/leakdet_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
