# Empty dependencies file for leakdet_text.
# This may be replaced when dependencies are built.
