file(REMOVE_RECURSE
  "CMakeFiles/leakdet_sim.dir/catalog.cc.o"
  "CMakeFiles/leakdet_sim.dir/catalog.cc.o.d"
  "CMakeFiles/leakdet_sim.dir/device.cc.o"
  "CMakeFiles/leakdet_sim.dir/device.cc.o.d"
  "CMakeFiles/leakdet_sim.dir/identifiers.cc.o"
  "CMakeFiles/leakdet_sim.dir/identifiers.cc.o.d"
  "CMakeFiles/leakdet_sim.dir/permissions.cc.o"
  "CMakeFiles/leakdet_sim.dir/permissions.cc.o.d"
  "CMakeFiles/leakdet_sim.dir/population.cc.o"
  "CMakeFiles/leakdet_sim.dir/population.cc.o.d"
  "CMakeFiles/leakdet_sim.dir/trafficgen.cc.o"
  "CMakeFiles/leakdet_sim.dir/trafficgen.cc.o.d"
  "libleakdet_sim.a"
  "libleakdet_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/leakdet_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
