# Empty dependencies file for leakdet_sim.
# This may be replaced when dependencies are built.
