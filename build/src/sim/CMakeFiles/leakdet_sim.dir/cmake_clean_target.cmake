file(REMOVE_RECURSE
  "libleakdet_sim.a"
)
