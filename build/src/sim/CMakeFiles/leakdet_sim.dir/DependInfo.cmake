
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/catalog.cc" "src/sim/CMakeFiles/leakdet_sim.dir/catalog.cc.o" "gcc" "src/sim/CMakeFiles/leakdet_sim.dir/catalog.cc.o.d"
  "/root/repo/src/sim/device.cc" "src/sim/CMakeFiles/leakdet_sim.dir/device.cc.o" "gcc" "src/sim/CMakeFiles/leakdet_sim.dir/device.cc.o.d"
  "/root/repo/src/sim/identifiers.cc" "src/sim/CMakeFiles/leakdet_sim.dir/identifiers.cc.o" "gcc" "src/sim/CMakeFiles/leakdet_sim.dir/identifiers.cc.o.d"
  "/root/repo/src/sim/permissions.cc" "src/sim/CMakeFiles/leakdet_sim.dir/permissions.cc.o" "gcc" "src/sim/CMakeFiles/leakdet_sim.dir/permissions.cc.o.d"
  "/root/repo/src/sim/population.cc" "src/sim/CMakeFiles/leakdet_sim.dir/population.cc.o" "gcc" "src/sim/CMakeFiles/leakdet_sim.dir/population.cc.o.d"
  "/root/repo/src/sim/trafficgen.cc" "src/sim/CMakeFiles/leakdet_sim.dir/trafficgen.cc.o" "gcc" "src/sim/CMakeFiles/leakdet_sim.dir/trafficgen.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/leakdet_core.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/leakdet_util.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/leakdet_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/http/CMakeFiles/leakdet_http.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/leakdet_net.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/leakdet_text.dir/DependInfo.cmake"
  "/root/repo/build/src/compress/CMakeFiles/leakdet_compress.dir/DependInfo.cmake"
  "/root/repo/build/src/match/CMakeFiles/leakdet_match.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
