# Empty compiler generated dependencies file for leakdet_http.
# This may be replaced when dependencies are built.
