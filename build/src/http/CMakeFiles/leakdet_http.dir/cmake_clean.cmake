file(REMOVE_RECURSE
  "CMakeFiles/leakdet_http.dir/cookie.cc.o"
  "CMakeFiles/leakdet_http.dir/cookie.cc.o.d"
  "CMakeFiles/leakdet_http.dir/message.cc.o"
  "CMakeFiles/leakdet_http.dir/message.cc.o.d"
  "CMakeFiles/leakdet_http.dir/parser.cc.o"
  "CMakeFiles/leakdet_http.dir/parser.cc.o.d"
  "CMakeFiles/leakdet_http.dir/response.cc.o"
  "CMakeFiles/leakdet_http.dir/response.cc.o.d"
  "CMakeFiles/leakdet_http.dir/url.cc.o"
  "CMakeFiles/leakdet_http.dir/url.cc.o.d"
  "libleakdet_http.a"
  "libleakdet_http.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/leakdet_http.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
