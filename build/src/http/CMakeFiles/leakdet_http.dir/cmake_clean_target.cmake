file(REMOVE_RECURSE
  "libleakdet_http.a"
)
