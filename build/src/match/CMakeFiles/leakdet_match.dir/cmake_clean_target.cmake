file(REMOVE_RECURSE
  "libleakdet_match.a"
)
