file(REMOVE_RECURSE
  "CMakeFiles/leakdet_match.dir/aho_corasick.cc.o"
  "CMakeFiles/leakdet_match.dir/aho_corasick.cc.o.d"
  "CMakeFiles/leakdet_match.dir/bayes_signature.cc.o"
  "CMakeFiles/leakdet_match.dir/bayes_signature.cc.o.d"
  "CMakeFiles/leakdet_match.dir/signature.cc.o"
  "CMakeFiles/leakdet_match.dir/signature.cc.o.d"
  "CMakeFiles/leakdet_match.dir/subsequence_signature.cc.o"
  "CMakeFiles/leakdet_match.dir/subsequence_signature.cc.o.d"
  "libleakdet_match.a"
  "libleakdet_match.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/leakdet_match.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
