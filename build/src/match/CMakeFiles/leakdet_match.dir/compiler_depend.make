# Empty compiler generated dependencies file for leakdet_match.
# This may be replaced when dependencies are built.
