
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/match/aho_corasick.cc" "src/match/CMakeFiles/leakdet_match.dir/aho_corasick.cc.o" "gcc" "src/match/CMakeFiles/leakdet_match.dir/aho_corasick.cc.o.d"
  "/root/repo/src/match/bayes_signature.cc" "src/match/CMakeFiles/leakdet_match.dir/bayes_signature.cc.o" "gcc" "src/match/CMakeFiles/leakdet_match.dir/bayes_signature.cc.o.d"
  "/root/repo/src/match/signature.cc" "src/match/CMakeFiles/leakdet_match.dir/signature.cc.o" "gcc" "src/match/CMakeFiles/leakdet_match.dir/signature.cc.o.d"
  "/root/repo/src/match/subsequence_signature.cc" "src/match/CMakeFiles/leakdet_match.dir/subsequence_signature.cc.o" "gcc" "src/match/CMakeFiles/leakdet_match.dir/subsequence_signature.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/leakdet_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
