file(REMOVE_RECURSE
  "libleakdet_io.a"
)
