file(REMOVE_RECURSE
  "CMakeFiles/leakdet_io.dir/feed_server.cc.o"
  "CMakeFiles/leakdet_io.dir/feed_server.cc.o.d"
  "CMakeFiles/leakdet_io.dir/pcap.cc.o"
  "CMakeFiles/leakdet_io.dir/pcap.cc.o.d"
  "CMakeFiles/leakdet_io.dir/trace_io.cc.o"
  "CMakeFiles/leakdet_io.dir/trace_io.cc.o.d"
  "libleakdet_io.a"
  "libleakdet_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/leakdet_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
