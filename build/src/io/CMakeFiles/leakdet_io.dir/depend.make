# Empty dependencies file for leakdet_io.
# This may be replaced when dependencies are built.
