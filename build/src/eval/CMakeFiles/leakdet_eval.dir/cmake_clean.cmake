file(REMOVE_RECURSE
  "CMakeFiles/leakdet_eval.dir/analysis.cc.o"
  "CMakeFiles/leakdet_eval.dir/analysis.cc.o.d"
  "CMakeFiles/leakdet_eval.dir/cluster_quality.cc.o"
  "CMakeFiles/leakdet_eval.dir/cluster_quality.cc.o.d"
  "CMakeFiles/leakdet_eval.dir/experiment.cc.o"
  "CMakeFiles/leakdet_eval.dir/experiment.cc.o.d"
  "CMakeFiles/leakdet_eval.dir/metrics.cc.o"
  "CMakeFiles/leakdet_eval.dir/metrics.cc.o.d"
  "CMakeFiles/leakdet_eval.dir/report.cc.o"
  "CMakeFiles/leakdet_eval.dir/report.cc.o.d"
  "CMakeFiles/leakdet_eval.dir/roc.cc.o"
  "CMakeFiles/leakdet_eval.dir/roc.cc.o.d"
  "CMakeFiles/leakdet_eval.dir/table_format.cc.o"
  "CMakeFiles/leakdet_eval.dir/table_format.cc.o.d"
  "libleakdet_eval.a"
  "libleakdet_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/leakdet_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
