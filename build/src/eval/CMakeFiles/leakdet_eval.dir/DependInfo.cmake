
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/eval/analysis.cc" "src/eval/CMakeFiles/leakdet_eval.dir/analysis.cc.o" "gcc" "src/eval/CMakeFiles/leakdet_eval.dir/analysis.cc.o.d"
  "/root/repo/src/eval/cluster_quality.cc" "src/eval/CMakeFiles/leakdet_eval.dir/cluster_quality.cc.o" "gcc" "src/eval/CMakeFiles/leakdet_eval.dir/cluster_quality.cc.o.d"
  "/root/repo/src/eval/experiment.cc" "src/eval/CMakeFiles/leakdet_eval.dir/experiment.cc.o" "gcc" "src/eval/CMakeFiles/leakdet_eval.dir/experiment.cc.o.d"
  "/root/repo/src/eval/metrics.cc" "src/eval/CMakeFiles/leakdet_eval.dir/metrics.cc.o" "gcc" "src/eval/CMakeFiles/leakdet_eval.dir/metrics.cc.o.d"
  "/root/repo/src/eval/report.cc" "src/eval/CMakeFiles/leakdet_eval.dir/report.cc.o" "gcc" "src/eval/CMakeFiles/leakdet_eval.dir/report.cc.o.d"
  "/root/repo/src/eval/roc.cc" "src/eval/CMakeFiles/leakdet_eval.dir/roc.cc.o" "gcc" "src/eval/CMakeFiles/leakdet_eval.dir/roc.cc.o.d"
  "/root/repo/src/eval/table_format.cc" "src/eval/CMakeFiles/leakdet_eval.dir/table_format.cc.o" "gcc" "src/eval/CMakeFiles/leakdet_eval.dir/table_format.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/leakdet_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/leakdet_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/leakdet_text.dir/DependInfo.cmake"
  "/root/repo/build/src/compress/CMakeFiles/leakdet_compress.dir/DependInfo.cmake"
  "/root/repo/build/src/match/CMakeFiles/leakdet_match.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/leakdet_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/leakdet_net.dir/DependInfo.cmake"
  "/root/repo/build/src/http/CMakeFiles/leakdet_http.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/leakdet_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
