# Empty compiler generated dependencies file for leakdet_eval.
# This may be replaced when dependencies are built.
