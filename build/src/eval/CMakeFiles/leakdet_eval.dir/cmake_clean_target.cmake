file(REMOVE_RECURSE
  "libleakdet_eval.a"
)
