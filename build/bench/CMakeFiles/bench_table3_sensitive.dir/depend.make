# Empty dependencies file for bench_table3_sensitive.
# This may be replaced when dependencies are built.
