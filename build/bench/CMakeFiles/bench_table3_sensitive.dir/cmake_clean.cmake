file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_sensitive.dir/bench_table3_sensitive.cpp.o"
  "CMakeFiles/bench_table3_sensitive.dir/bench_table3_sensitive.cpp.o.d"
  "bench_table3_sensitive"
  "bench_table3_sensitive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_sensitive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
