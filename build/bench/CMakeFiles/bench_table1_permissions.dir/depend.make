# Empty dependencies file for bench_table1_permissions.
# This may be replaced when dependencies are built.
