file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_permissions.dir/bench_table1_permissions.cpp.o"
  "CMakeFiles/bench_table1_permissions.dir/bench_table1_permissions.cpp.o.d"
  "bench_table1_permissions"
  "bench_table1_permissions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_permissions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
