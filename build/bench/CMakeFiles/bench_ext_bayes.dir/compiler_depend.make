# Empty compiler generated dependencies file for bench_ext_bayes.
# This may be replaced when dependencies are built.
