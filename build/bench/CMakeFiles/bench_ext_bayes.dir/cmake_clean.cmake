file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_bayes.dir/bench_ext_bayes.cpp.o"
  "CMakeFiles/bench_ext_bayes.dir/bench_ext_bayes.cpp.o.d"
  "bench_ext_bayes"
  "bench_ext_bayes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_bayes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
