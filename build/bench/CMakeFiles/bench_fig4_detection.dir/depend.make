# Empty dependencies file for bench_fig4_detection.
# This may be replaced when dependencies are built.
