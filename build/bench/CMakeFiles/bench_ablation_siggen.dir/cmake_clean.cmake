file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_siggen.dir/bench_ablation_siggen.cpp.o"
  "CMakeFiles/bench_ablation_siggen.dir/bench_ablation_siggen.cpp.o.d"
  "bench_ablation_siggen"
  "bench_ablation_siggen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_siggen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
