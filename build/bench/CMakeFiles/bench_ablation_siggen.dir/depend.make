# Empty dependencies file for bench_ablation_siggen.
# This may be replaced when dependencies are built.
