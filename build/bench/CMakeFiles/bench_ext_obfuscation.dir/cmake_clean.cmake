file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_obfuscation.dir/bench_ext_obfuscation.cpp.o"
  "CMakeFiles/bench_ext_obfuscation.dir/bench_ext_obfuscation.cpp.o.d"
  "bench_ext_obfuscation"
  "bench_ext_obfuscation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_obfuscation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
