# Empty dependencies file for bench_ext_obfuscation.
# This may be replaced when dependencies are built.
