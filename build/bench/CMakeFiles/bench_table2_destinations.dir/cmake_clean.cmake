file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_destinations.dir/bench_table2_destinations.cpp.o"
  "CMakeFiles/bench_table2_destinations.dir/bench_table2_destinations.cpp.o.d"
  "bench_table2_destinations"
  "bench_table2_destinations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_destinations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
