file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_cross_device.dir/bench_ext_cross_device.cpp.o"
  "CMakeFiles/bench_ext_cross_device.dir/bench_ext_cross_device.cpp.o.d"
  "bench_ext_cross_device"
  "bench_ext_cross_device.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_cross_device.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
