file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_compressor.dir/bench_ablation_compressor.cpp.o"
  "CMakeFiles/bench_ablation_compressor.dir/bench_ablation_compressor.cpp.o.d"
  "bench_ablation_compressor"
  "bench_ablation_compressor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_compressor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
