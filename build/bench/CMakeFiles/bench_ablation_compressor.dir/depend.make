# Empty dependencies file for bench_ablation_compressor.
# This may be replaced when dependencies are built.
