// Ablation: NCD compressor choice (§IV-C uses "a compressor" abstractly).
// Compares LZW, LZ77+Huffman, and the order-0 entropy estimator on
// clustering quality and end-to-end detection at fixed N.

#include <chrono>
#include <cstdio>

#include "bench_util.h"
#include "eval/experiment.h"
#include "eval/table_format.h"

int main(int argc, char** argv) {
  using namespace leakdet;
  bench::BenchArgs args = bench::ParseArgs(argc, argv);
  sim::Trace trace = bench::GenerateBenchTrace(args);

  size_t n = static_cast<size_t>(300 * args.scale + 0.5);

  std::printf("Compressor ablation at N=%zu\n", n);
  eval::TablePrinter table({"compressor", "TP", "FN", "FP", "#sigs",
                            "cluster+siggen time"});
  for (const char* name : {"lzw", "lz77h", "entropy"}) {
    core::PipelineOptions options;
    options.seed = args.seed;
    options.sample_size = n;
    options.compressor = name;
    auto start = std::chrono::steady_clock::now();
    auto points = eval::RunDetectionSweep(trace, {n}, options);
    auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                       std::chrono::steady_clock::now() - start)
                       .count();
    if (!points.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", name,
                   points.status().ToString().c_str());
      continue;
    }
    const auto& p = (*points)[0];
    table.AddRow({name, eval::FormatPercent(p.paper.tp),
                  eval::FormatPercent(p.paper.fn),
                  eval::FormatPercent(p.paper.fp),
                  std::to_string(p.num_signatures),
                  std::to_string(elapsed) + " ms"});
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf(
      "lzw is the pipeline default (fast, low header overhead on short HTTP "
      "fields); lz77h has the sharpest self-similarity signal; the entropy "
      "estimator is a cheap approximation that ignores phrase structure.\n");
  return 0;
}
