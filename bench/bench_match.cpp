// Match hot-path benchmark: the rare-token prefilter against the dense-DFA
// oracle, written to BENCH_match.json.
//
// Three measurements, all on the same seeded synthetic ad traffic (mostly
// clean packets, one in --leak-every carrying every token of some
// signature):
//
// 1. Prefilter scan cost: ns/packet for Prefilter::Scan alone, per kernel
//    (scalar, SSE2, AVX2 — whichever the CPU can run), plus the skip rate
//    the screen achieves on this workload.
// 2. Match path: ns/packet for the plain DFA (MatchInto) vs the prefiltered
//    path (MatchIntoPrefiltered) per kernel; "match_speedup_<mode>" is the
//    ratio, the single-node throughput multiplier the prefilter buys.
// 3. Gateway: end-to-end packets/s through a one-shard DetectionGateway with
//    single-packet drains (pop_batch=1) vs batched drains (pop_batch=64),
//    prefilter on; and batched with the prefilter forced off — the batching
//    and screening contributions separately.
//
// Timed phases repeat --reps times; the fastest repetition is reported
// (noise is strictly additive).
//
// Usage:
//   bench_match [--packets=20000] [--num-sigs=64] [--tokens-per-sig=4]
//               [--leak-every=32] [--pad=160] [--reps=3] [--seed=7]
//               [--out=BENCH_match.json] [--selfcheck]
//
// --selfcheck asserts correctness on the benched workload instead of
// timing: MatchIntoPrefiltered must return bit-identical hits to MatchInto
// for every packet in every available kernel mode, and the gateway runs
// (batched, unbatched, prefilter off) must produce identical verdict
// streams. Exits nonzero on violation; used by the `perf` ctest smoke run.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/packet.h"
#include "gateway/gateway.h"
#include "match/compiled_set.h"
#include "match/signature.h"
#include "prefilter/prefilter.h"
#include "util/rng.h"

namespace {

using namespace leakdet;
using match::CompiledSignatureSet;
using match::ConjunctionSignature;
using match::MatchScratch;
using match::SignatureSet;

struct Args {
  size_t packets = 20000;
  size_t num_sigs = 64;
  size_t tokens_per_sig = 4;
  size_t leak_every = 32;
  size_t pad = 160;
  size_t reps = 3;
  uint64_t seed = 7;
  std::string out = "BENCH_match.json";
  bool selfcheck = false;
};

Args ParseArgs(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strncmp(a, "--packets=", 10) == 0) {
      args.packets = static_cast<size_t>(std::atoll(a + 10));
    } else if (std::strncmp(a, "--num-sigs=", 11) == 0) {
      args.num_sigs = static_cast<size_t>(std::atoll(a + 11));
    } else if (std::strncmp(a, "--tokens-per-sig=", 17) == 0) {
      args.tokens_per_sig = static_cast<size_t>(std::atoll(a + 17));
    } else if (std::strncmp(a, "--leak-every=", 13) == 0) {
      args.leak_every = static_cast<size_t>(std::atoll(a + 13));
    } else if (std::strncmp(a, "--pad=", 6) == 0) {
      args.pad = static_cast<size_t>(std::atoll(a + 6));
    } else if (std::strncmp(a, "--reps=", 7) == 0) {
      args.reps = static_cast<size_t>(std::atoll(a + 7));
      if (args.reps == 0) args.reps = 1;
    } else if (std::strncmp(a, "--seed=", 7) == 0) {
      args.seed = static_cast<uint64_t>(std::atoll(a + 7));
    } else if (std::strncmp(a, "--out=", 6) == 0) {
      args.out = a + 6;
    } else if (std::strcmp(a, "--selfcheck") == 0) {
      args.selfcheck = true;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", a);
      std::exit(2);
    }
  }
  if (args.packets == 0) args.packets = 1;
  if (args.num_sigs == 0) args.num_sigs = 1;
  if (args.leak_every == 0) args.leak_every = 1;
  return args;
}

SignatureSet MakeSignatures(const Args& args) {
  Rng rng(args.seed);
  std::vector<ConjunctionSignature> sigs;
  for (size_t s = 0; s < args.num_sigs; ++s) {
    ConjunctionSignature sig;
    sig.id = "sig-" + std::to_string(s);
    for (size_t t = 0; t < args.tokens_per_sig; ++t) {
      sig.tokens.push_back("k" + std::to_string(s) + "_" + std::to_string(t) +
                           "=" + rng.RandomHex(10));
    }
    sigs.push_back(std::move(sig));
  }
  return SignatureSet(std::move(sigs));
}

std::vector<std::string> MakeContents(const SignatureSet& set,
                                      const Args& args) {
  Rng rng(args.seed + 11);
  std::vector<std::string> contents;
  contents.reserve(args.packets);
  for (size_t i = 0; i < args.packets; ++i) {
    std::string content = "GET /serve?x=" + rng.RandomHex(24);
    if (i % args.leak_every == 0 && !set.signatures().empty()) {
      const ConjunctionSignature& sig =
          set.signatures()[i % set.signatures().size()];
      for (const std::string& tok : sig.tokens) content += "&" + tok;
    }
    content += "&pad=" + rng.RandomHex(args.pad);
    contents.push_back(std::move(content));
  }
  return contents;
}

double NsSince(std::chrono::steady_clock::time_point start) {
  return static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
}

std::vector<prefilter::Mode> AvailableModes() {
  std::vector<prefilter::Mode> modes = {prefilter::Mode::kScalar};
  if (prefilter::Sse2Available()) modes.push_back(prefilter::Mode::kSse2);
  if (prefilter::Avx2Available()) modes.push_back(prefilter::Mode::kAvx2);
  return modes;
}

// Fastest-of-reps ns/packet for `body(packet_index)` over all contents.
template <typename Body>
double BenchNsPerPacket(const Args& args, size_t n, Body&& body) {
  double best = -1;
  for (size_t rep = 0; rep < args.reps; ++rep) {
    auto start = std::chrono::steady_clock::now();
    for (size_t i = 0; i < n; ++i) body(i);
    double ns = NsSince(start) / static_cast<double>(n);
    if (best < 0 || ns < best) best = ns;
  }
  return best;
}

// One gateway run: submits every content as a packet on a one-shard
// gateway, returns packets/s over the submit+drain wall time and the
// verdict stream (signature hit counts per packet, in order).
double RunGateway(const std::vector<std::string>& contents, size_t pop_batch,
                  prefilter::Mode mode,
                  std::shared_ptr<const CompiledSignatureSet> compiled,
                  std::vector<uint32_t>* verdicts) {
  gateway::GatewayOptions options;
  options.num_shards = 1;
  options.queue_capacity = 4096;
  options.pop_batch = pop_batch;
  options.overload = gateway::OverloadPolicy::kBlock;
  options.prefilter = mode;
  gateway::DetectionGateway gw(options);
  gw.Publish(std::move(compiled));
  verdicts->clear();
  verdicts->reserve(contents.size());
  gw.set_sink([&](const core::HttpPacket&, const gateway::Verdict& verdict) {
    verdicts->push_back(verdict.num_matches);  // one shard: sink is serial
  });
  if (!gw.Start().ok()) {
    std::fprintf(stderr, "gateway failed to start\n");
    std::exit(1);
  }
  auto start = std::chrono::steady_clock::now();
  for (size_t i = 0; i < contents.size(); ++i) {
    core::HttpPacket packet;
    packet.app_id = static_cast<uint32_t>(i);
    packet.destination.host = "ads.bench.example";
    packet.request_line = contents[i];
    gw.Submit(/*device_id=*/7, std::move(packet));  // one device, one shard
  }
  gw.Stop();  // drains
  double ns = NsSince(start);
  return static_cast<double>(contents.size()) / (ns / 1e9);
}

}  // namespace

int main(int argc, char** argv) {
  Args args = ParseArgs(argc, argv);
  SignatureSet set = MakeSignatures(args);
  auto compiled = std::make_shared<const CompiledSignatureSet>(set, 1);
  std::vector<std::string> contents = MakeContents(set, args);
  const std::vector<prefilter::Mode> modes = AvailableModes();
  const size_t n = contents.size();

  // ---- correctness: the prefiltered path must equal the oracle ----------
  bool all_ok = true;
  size_t skipped = 0;
  {
    MatchScratch oracle, scratch;
    for (size_t i = 0; i < n; ++i) {
      size_t want = compiled->MatchInto(contents[i], {}, &oracle);
      for (prefilter::Mode mode : modes) {
        match::PrefilterOutcome outcome;
        size_t got = compiled->MatchIntoPrefiltered(contents[i], {}, &scratch,
                                                    mode, &outcome);
        if (got != want || scratch.hits != oracle.hits) {
          std::fprintf(stderr,
                       "DIVERGENCE packet %zu mode %s: got %zu want %zu\n", i,
                       prefilter::ModeName(mode), got, want);
          all_ok = false;
        }
        // Skip rate is mode-independent (same table); count once.
        if (mode == modes[0] &&
            outcome == match::PrefilterOutcome::kSkipped) {
          ++skipped;
        }
      }
    }
  }
  const double skip_rate = static_cast<double>(skipped) /
                           static_cast<double>(n);
  std::printf("packets=%zu sigs=%zu skip_rate=%.4f\n", n, args.num_sigs,
              skip_rate);

  // ---- 1. prefilter scan cost per kernel --------------------------------
  const prefilter::Prefilter& pf = compiled->prefilter();
  std::vector<std::pair<std::string, double>> scan_ns;
  for (prefilter::Mode mode : modes) {
    prefilter::ScanScratch scratch;
    uint64_t sink = 0;
    double ns = BenchNsPerPacket(args, n, [&](size_t i) {
      sink += pf.Scan(contents[i], &scratch, mode) ? 1 : 0;
    });
    if (sink == UINT64_MAX) std::printf("impossible\n");  // keep `sink` live
    scan_ns.emplace_back(prefilter::ModeName(mode), ns);
    std::printf("scan[%s]: %.1f ns/packet\n", prefilter::ModeName(mode), ns);
  }

  // ---- 2. DFA oracle vs prefiltered match path --------------------------
  MatchScratch scratch;
  double dfa_ns = BenchNsPerPacket(args, n, [&](size_t i) {
    compiled->MatchInto(contents[i], {}, &scratch);
  });
  std::printf("match[dfa]: %.1f ns/packet\n", dfa_ns);
  std::vector<std::pair<std::string, double>> match_ns;
  double best_speedup = 0;
  for (prefilter::Mode mode : modes) {
    double ns = BenchNsPerPacket(args, n, [&](size_t i) {
      compiled->MatchIntoPrefiltered(contents[i], {}, &scratch, mode);
    });
    match_ns.emplace_back(prefilter::ModeName(mode), ns);
    double speedup = ns > 0 ? dfa_ns / ns : 0;
    if (speedup > best_speedup) best_speedup = speedup;
    std::printf("match[%s]: %.1f ns/packet (%.2fx vs dfa)\n",
                prefilter::ModeName(mode), ns, speedup);
  }

  // ---- 3. gateway: unbatched vs batched, prefilter on vs off ------------
  std::vector<uint32_t> verdicts_single, verdicts_batched, verdicts_off;
  double pps_single = 0, pps_batched = 0, pps_off = 0;
  for (size_t rep = 0; rep < args.reps; ++rep) {
    double a = RunGateway(contents, 1, prefilter::Mode::kAuto, compiled,
                          &verdicts_single);
    double b = RunGateway(contents, 64, prefilter::Mode::kAuto, compiled,
                          &verdicts_batched);
    double c = RunGateway(contents, 64, prefilter::Mode::kOff, compiled,
                          &verdicts_off);
    if (a > pps_single) pps_single = a;
    if (b > pps_batched) pps_batched = b;
    if (c > pps_off) pps_off = c;
    if (verdicts_single != verdicts_batched ||
        verdicts_single != verdicts_off) {
      std::fprintf(stderr, "gateway verdict streams diverged (rep %zu)\n",
                   rep);
      all_ok = false;
    }
  }
  std::printf(
      "gateway: single=%.0f pps batched=%.0f pps batched_prefilter_off=%.0f "
      "pps\n",
      pps_single, pps_batched, pps_off);

  if (args.selfcheck) {
    std::printf("selfcheck: %s\n", all_ok ? "ok" : "FAILED");
  }

  std::string json = "{\n";
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "  \"packets\": %zu,\n  \"num_sigs\": %zu,\n"
                "  \"tokens_per_sig\": %zu,\n  \"leak_every\": %zu,\n"
                "  \"prefilter_skip_rate\": %.4f,\n",
                n, args.num_sigs, args.tokens_per_sig, args.leak_every,
                skip_rate);
  json += buf;
  for (const auto& [name, ns] : scan_ns) {
    std::snprintf(buf, sizeof(buf), "  \"scan_ns_per_packet_%s\": %.1f,\n",
                  name.c_str(), ns);
    json += buf;
  }
  std::snprintf(buf, sizeof(buf), "  \"match_ns_per_packet_dfa\": %.1f,\n",
                dfa_ns);
  json += buf;
  for (const auto& [name, ns] : match_ns) {
    std::snprintf(buf, sizeof(buf),
                  "  \"match_ns_per_packet_%s\": %.1f,\n"
                  "  \"match_speedup_%s\": %.2f,\n",
                  name.c_str(), ns, name.c_str(), ns > 0 ? dfa_ns / ns : 0);
    json += buf;
  }
  std::snprintf(buf, sizeof(buf),
                "  \"match_speedup_best\": %.2f,\n"
                "  \"gateway_pps_single\": %.0f,\n"
                "  \"gateway_pps_batched\": %.0f,\n"
                "  \"gateway_pps_batched_prefilter_off\": %.0f,\n"
                "  \"gateway_batching_speedup\": %.2f,\n"
                "  \"gateway_prefilter_speedup\": %.2f\n",
                best_speedup, pps_single, pps_batched, pps_off,
                pps_single > 0 ? pps_batched / pps_single : 0,
                pps_off > 0 ? pps_batched / pps_off : 0);
  json += buf;
  json += "}\n";
  if (FILE* f = std::fopen(args.out.c_str(), "w"); f != nullptr) {
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    std::printf("wrote %s\n", args.out.c_str());
  } else {
    std::fprintf(stderr, "cannot write %s\n", args.out.c_str());
    return 1;
  }
  return all_ok ? 0 : 1;
}
