// Federation benchmark: the three costs a crowdsourced deployment pays,
// written to BENCH_federation.json.
//
// 1. Fleet ingest: ShardTrainer::Observe throughput over the simulated
//    fleet's arrival stream (witness bookkeeping + pool routing per packet).
// 2. Shard training: candidate signatures + witness table per shard.
// 3. Merge + publish: MergeAll over the shard exports and the K-anonymity
//    gate, the coordinator-side cost paid once per federated epoch.
//
// Usage:
//   bench_federation [--devices=24] [--shards=4] [--events=9000]
//                    [--scale=0.05] [--seed=8086] [--k=2] [--reps=5]
//                    [--out=BENCH_federation.json] [--selfcheck]
//
// Timed phases repeat --reps times and report the fastest repetition
// (noise is strictly additive; min-of-K estimates the true cost). The
// ingest/train inputs are deterministic in --seed, so every repetition
// does identical work.
//
// --selfcheck asserts the protocol laws on the benched data instead of
// timing: MergeAll must be order-invariant (reversed shard order produces a
// byte-identical serialized export) and PublishFederated must be a fixed
// point (re-gating the published set changes nothing) with no published
// token below K distinct witness devices. Exits nonzero on any violation;
// used by the `perf` ctest smoke run.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "core/payload_check.h"
#include "federation/merge.h"
#include "federation/shard_trainer.h"
#include "federation/witness.h"
#include "sim/fleet.h"

namespace {

using namespace leakdet;

struct Args {
  size_t devices = 24;
  size_t shards = 4;
  size_t events = 9000;
  double scale = 0.05;
  uint64_t seed = 8086;
  size_t k = 2;
  size_t reps = 5;
  std::string out = "BENCH_federation.json";
  bool selfcheck = false;
};

Args ParseArgs(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strncmp(a, "--devices=", 10) == 0) {
      args.devices = static_cast<size_t>(std::atoll(a + 10));
    } else if (std::strncmp(a, "--shards=", 9) == 0) {
      args.shards = static_cast<size_t>(std::atoll(a + 9));
    } else if (std::strncmp(a, "--events=", 9) == 0) {
      args.events = static_cast<size_t>(std::atoll(a + 9));
    } else if (std::strncmp(a, "--scale=", 8) == 0) {
      args.scale = std::atof(a + 8);
    } else if (std::strncmp(a, "--seed=", 7) == 0) {
      args.seed = static_cast<uint64_t>(std::atoll(a + 7));
    } else if (std::strncmp(a, "--k=", 4) == 0) {
      args.k = static_cast<size_t>(std::atoll(a + 4));
    } else if (std::strncmp(a, "--reps=", 7) == 0) {
      args.reps = static_cast<size_t>(std::atoll(a + 7));
      if (args.reps == 0) args.reps = 1;
    } else if (std::strncmp(a, "--out=", 6) == 0) {
      args.out = a + 6;
    } else if (std::strcmp(a, "--selfcheck") == 0) {
      args.selfcheck = true;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", a);
      std::exit(2);
    }
  }
  if (args.shards == 0) args.shards = 1;
  return args;
}

double MillisSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

federation::ShardTrainerOptions TrainerOptions(const Args& args) {
  federation::ShardTrainerOptions options;
  options.tenant = "bench";
  options.pipeline.num_threads = 1;
  (void)args;
  return options;
}

/// The event tape, materialized once so every repetition times identical
/// work without re-paying generation cost inside the window.
struct Tape {
  std::vector<uint64_t> keys;
  std::vector<core::HttpPacket> packets;
  std::vector<size_t> shard_of;
};

Tape MakeTape(const sim::Fleet& fleet, const Args& args) {
  Tape tape;
  tape.keys.reserve(args.events);
  tape.packets.reserve(args.events);
  tape.shard_of.reserve(args.events);
  sim::Fleet::Stream stream = fleet.NewStream(1);
  for (size_t i = 0; i < args.events; ++i) {
    sim::Fleet::Event event = stream.Next();
    tape.keys.push_back(fleet.DeviceKey(event.device_index));
    tape.packets.push_back(event.packet.packet);
    tape.shard_of.push_back(event.device_index % args.shards);
  }
  return tape;
}

}  // namespace

int main(int argc, char** argv) {
  Args args = ParseArgs(argc, argv);

  sim::FleetConfig config;
  config.seed = args.seed;
  config.num_devices = args.devices;
  config.device_skew = 0.3;
  config.market.seed = args.seed + 1;
  config.market.scale = args.scale;
  sim::Fleet fleet(config);
  std::vector<core::DeviceTokens> tokens;
  for (uint64_t index = 0; index < fleet.num_devices(); ++index) {
    tokens.push_back(fleet.DeviceAt(index).ToTokens());
  }
  core::PayloadCheck oracle(tokens);

  std::printf("fleet: %zu devices, %zu events, %zu shards (scale=%.3f)\n",
              args.devices, args.events, args.shards, args.scale);
  Tape tape = MakeTape(fleet, args);

  // Phase 1: ingest. Fresh trainers per repetition; the tape is shared.
  double ingest_ms = 0.0;
  std::vector<federation::ShardTrainer> trainers;
  for (size_t rep = 0; rep < args.reps; ++rep) {
    std::vector<federation::ShardTrainer> fresh;
    for (size_t shard = 0; shard < args.shards; ++shard) {
      fresh.emplace_back(TrainerOptions(args), &oracle);
    }
    auto start = std::chrono::steady_clock::now();
    for (size_t i = 0; i < tape.packets.size(); ++i) {
      fresh[tape.shard_of[i]].Observe(tape.keys[i], tape.packets[i]);
    }
    double ms = MillisSince(start);
    if (rep == 0 || ms < ingest_ms) ingest_ms = ms;
    trainers = std::move(fresh);
  }
  double ingest_rate = args.events / (ingest_ms / 1000.0);
  std::printf("ingest : %8.2f ms  (%.0f packets/s across %zu shards)\n",
              ingest_ms, ingest_rate, args.shards);

  // Phase 2: training (pipeline + witness scan per shard). Train() is
  // const, so repetitions are genuinely identical.
  double train_ms = 0.0;
  std::vector<federation::ShardExport> exports;
  for (size_t rep = 0; rep < args.reps; ++rep) {
    std::vector<federation::ShardExport> fresh;
    auto start = std::chrono::steady_clock::now();
    for (const federation::ShardTrainer& trainer : trainers) {
      auto shard = trainer.Train();
      if (!shard.ok()) {
        std::fprintf(stderr, "train failed: %s\n",
                     shard.status().ToString().c_str());
        return 1;
      }
      fresh.push_back(std::move(*shard));
    }
    double ms = MillisSince(start);
    if (rep == 0 || ms < train_ms) train_ms = ms;
    exports = std::move(fresh);
  }
  size_t candidates = 0;
  for (const federation::ShardExport& shard : exports) {
    candidates += shard.candidates.size();
  }
  std::printf("train  : %8.2f ms  (%zu candidates over %zu shards)\n",
              train_ms, candidates, args.shards);

  // Phase 3: merge + K-gate, the per-epoch coordinator cost.
  double merge_ms = 0.0;
  match::SignatureSet published;
  federation::ShardExport merged;
  for (size_t rep = 0; rep < args.reps; ++rep) {
    auto start = std::chrono::steady_clock::now();
    auto folded = federation::MergeAll(exports);
    if (!folded.ok()) {
      std::fprintf(stderr, "merge failed: %s\n",
                   folded.status().ToString().c_str());
      return 1;
    }
    match::SignatureSet set = federation::PublishFederated(*folded, args.k);
    double ms = MillisSince(start);
    if (rep == 0 || ms < merge_ms) merge_ms = ms;
    merged = std::move(*folded);
    published = std::move(set);
  }
  std::printf("merge  : %8.2f ms  (%zu published signatures at K=%zu)\n",
              merge_ms, published.size(), args.k);

  bool selfcheck_failed = false;
  if (args.selfcheck) {
    // Law 1: fold order must not matter, down to the serialized bytes.
    std::vector<federation::ShardExport> reversed(exports.rbegin(),
                                                  exports.rend());
    auto remerged = federation::MergeAll(reversed);
    if (!remerged.ok() || federation::SerializeShardExport(*remerged) !=
                              federation::SerializeShardExport(merged)) {
      std::fprintf(stderr, "selfcheck: merge is fold-order dependent\n");
      selfcheck_failed = true;
    }
    // Law 2: the gate is a fixed point — re-publishing the published set
    // (as a candidates-only export over the same witness) changes nothing.
    federation::ShardExport regate = merged;
    regate.candidates = published;
    match::SignatureSet again = federation::PublishFederated(regate, args.k);
    if (again.Serialize() != published.Serialize()) {
      std::fprintf(stderr, "selfcheck: K-gate is not a fixed point\n");
      selfcheck_failed = true;
    }
    // Law 3: nothing below K distinct devices survives.
    for (const auto& sig : published.signatures()) {
      for (const std::string& token : sig.tokens) {
        if (merged.witness.DistinctDevices(token) < args.k) {
          std::fprintf(stderr, "selfcheck: token below K published\n");
          selfcheck_failed = true;
        }
      }
    }
    std::printf("selfcheck: %s\n", selfcheck_failed ? "FAILED" : "ok");
  }

  std::string json = "{\n";
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "  \"devices\": %zu,\n  \"shards\": %zu,\n"
                "  \"events\": %zu,\n  \"k\": %zu,\n",
                args.devices, args.shards, args.events, args.k);
  json += buf;
  std::snprintf(buf, sizeof(buf),
                "  \"ingest_ms\": %.3f,\n  \"ingest_packets_per_s\": %.0f,\n",
                ingest_ms, ingest_rate);
  json += buf;
  std::snprintf(buf, sizeof(buf),
                "  \"train_ms\": %.3f,\n  \"candidates\": %zu,\n", train_ms,
                candidates);
  json += buf;
  std::snprintf(buf, sizeof(buf),
                "  \"merge_publish_ms\": %.3f,\n  \"published\": %zu\n",
                merge_ms, published.size());
  json += buf;
  json += "}\n";
  if (FILE* f = std::fopen(args.out.c_str(), "w"); f != nullptr) {
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    std::printf("wrote %s\n", args.out.c_str());
  } else {
    std::fprintf(stderr, "cannot write %s\n", args.out.c_str());
    return 1;
  }
  return selfcheck_failed ? 1 : 0;
}
