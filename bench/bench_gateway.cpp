// Gateway hot-path micro-benchmarks: interpreted SignatureSet matching vs
// the dense-DFA CompiledSignatureSet the gateway hot-swaps, plus end-to-end
// shard throughput on synthetic ad traffic.

#include <benchmark/benchmark.h>

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "core/packet.h"
#include "gateway/gateway.h"
#include "match/compiled_set.h"
#include "match/signature.h"
#include "util/rng.h"

namespace {

using leakdet::Rng;
using leakdet::core::HttpPacket;
using leakdet::match::CompiledSignatureSet;
using leakdet::match::ConjunctionSignature;
using leakdet::match::MatchScratch;
using leakdet::match::SignatureSet;

SignatureSet MakeSignatures(size_t num_sigs, size_t tokens_per_sig) {
  Rng rng(7);
  std::vector<ConjunctionSignature> sigs;
  for (size_t s = 0; s < num_sigs; ++s) {
    ConjunctionSignature sig;
    sig.id = "sig-" + std::to_string(s);
    for (size_t t = 0; t < tokens_per_sig; ++t) {
      sig.tokens.push_back("k" + std::to_string(s) + "_" + std::to_string(t) +
                           "=" + rng.RandomHex(10));
    }
    sigs.push_back(std::move(sig));
  }
  return SignatureSet(std::move(sigs));
}

std::vector<std::string> MakeContents(const SignatureSet& set, size_t count) {
  Rng rng(11);
  std::vector<std::string> contents;
  for (size_t i = 0; i < count; ++i) {
    std::string content = "GET /serve?x=" + rng.RandomHex(24);
    if (i % 4 == 0 && !set.signatures().empty()) {
      // One in four packets carries every token of some signature.
      const ConjunctionSignature& sig =
          set.signatures()[i % set.signatures().size()];
      for (const std::string& tok : sig.tokens) content += "&" + tok;
    }
    content += "&pad=" + rng.RandomHex(160);
    contents.push_back(std::move(content));
  }
  return contents;
}

void BM_SignatureSetMatch(benchmark::State& state) {
  SignatureSet set = MakeSignatures(static_cast<size_t>(state.range(0)), 4);
  std::vector<std::string> contents = MakeContents(set, 512);
  size_t i = 0;
  size_t bytes = 0;
  for (auto _ : state) {
    const std::string& content = contents[i++ % contents.size()];
    benchmark::DoNotOptimize(set.Match(content));
    bytes += content.size();
  }
  state.SetBytesProcessed(static_cast<int64_t>(bytes));
}
BENCHMARK(BM_SignatureSetMatch)->Arg(16)->Arg(64)->Arg(256);

void BM_CompiledSetMatch(benchmark::State& state) {
  CompiledSignatureSet compiled(
      MakeSignatures(static_cast<size_t>(state.range(0)), 4), 1);
  std::vector<std::string> contents = MakeContents(compiled.set(), 512);
  MatchScratch scratch;
  size_t i = 0;
  size_t bytes = 0;
  for (auto _ : state) {
    const std::string& content = contents[i++ % contents.size()];
    benchmark::DoNotOptimize(compiled.MatchInto(content, {}, &scratch));
    bytes += content.size();
  }
  state.SetBytesProcessed(static_cast<int64_t>(bytes));
}
BENCHMARK(BM_CompiledSetMatch)->Arg(16)->Arg(64)->Arg(256);

void BM_CompiledSetBuild(benchmark::State& state) {
  SignatureSet set = MakeSignatures(static_cast<size_t>(state.range(0)), 4);
  for (auto _ : state) {
    CompiledSignatureSet compiled(set, 1);
    benchmark::DoNotOptimize(compiled.num_states());
  }
}
BENCHMARK(BM_CompiledSetBuild)->Arg(64)->Arg(256);

void BM_GatewayThroughput(benchmark::State& state) {
  leakdet::gateway::GatewayOptions options;
  options.num_shards = static_cast<size_t>(state.range(0));
  options.queue_capacity = 4096;
  leakdet::gateway::DetectionGateway gateway(options);
  SignatureSet set = MakeSignatures(64, 4);
  std::vector<std::string> contents = MakeContents(set, 512);
  gateway.Publish(std::make_shared<const CompiledSignatureSet>(set, 1));
  std::atomic<uint64_t> verdicts{0};
  gateway.set_sink([&](const HttpPacket&, const leakdet::gateway::Verdict&) {
    verdicts.fetch_add(1, std::memory_order_relaxed);
  });
  if (!gateway.Start().ok()) {
    state.SkipWithError("gateway failed to start");
    return;
  }
  uint64_t device = 0;
  size_t i = 0;
  for (auto _ : state) {
    HttpPacket packet;
    packet.app_id = static_cast<uint32_t>(device);
    packet.destination.host = "ads.bench.example";
    packet.request_line = contents[i++ % contents.size()];
    gateway.Submit(device++, std::move(packet));
  }
  gateway.Stop();
  state.SetItemsProcessed(static_cast<int64_t>(verdicts.load()));
}
BENCHMARK(BM_GatewayThroughput)->Arg(1)->Arg(4)->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
