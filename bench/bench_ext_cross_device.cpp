// Extension experiment: cross-device generalization. The paper's dataset
// comes from ONE instrumented handset (§V-A), so signatures may bind to
// that device's identifier values. Here we train on device A's market and
// apply the signatures to the *same market observed from device B* (same
// apps, services, templates; different IMEI/IMSI/ANDROID_ID/ICCID).
//
// Expectation: signatures whose tokens are identifier *values* stop
// matching; signatures keyed on template context (or on values shared
// across devices, like the carrier name) survive. This quantifies §III-B's
// point that UDID-based tracking is device-bound — and the limits of
// training leak detectors on a single handset.

#include <cstdio>

#include "bench_util.h"
#include "core/payload_check.h"
#include "core/pipeline.h"
#include "eval/experiment.h"
#include "eval/table_format.h"

int main(int argc, char** argv) {
  using namespace leakdet;
  bench::BenchArgs args = bench::ParseArgs(argc, argv);

  sim::TrafficConfig config_a;
  config_a.seed = args.seed;
  config_a.scale = args.scale;
  config_a.device_seed = 1001;
  sim::TrafficConfig config_b = config_a;
  config_b.device_seed = 2002;

  std::printf("generating the same market from two handsets...\n");
  sim::Trace trace_a = sim::GenerateTrace(config_a);
  sim::Trace trace_b = sim::GenerateTrace(config_b);
  std::printf("  device A imei=%s  device B imei=%s\n\n",
              trace_a.device.imei.c_str(), trace_b.device.imei.c_str());

  // Train on device A.
  std::vector<core::HttpPacket> suspicious_a, normal_a;
  trace_a.SplitByTruth(&suspicious_a, &normal_a);
  core::PipelineOptions options;
  options.seed = args.seed;
  options.sample_size = static_cast<size_t>(500 * args.scale + 0.5);
  auto result = core::RunPipeline(suspicious_a, normal_a, options);
  if (!result.ok()) {
    std::fprintf(stderr, "pipeline: %s\n", result.status().ToString().c_str());
    return 1;
  }
  core::Detector detector(std::move(result->signatures));

  eval::TablePrinter table(
      {"evaluated on", "TP (paper formula)", "FN", "FP", "detected carrier",
       "detected other"});
  const std::pair<const sim::Trace*, const char*> entries[] = {
      {&trace_a, "device A (training device)"},
      {&trace_b, "device B (unseen device)"},
  };
  for (const auto& entry : entries) {
    const sim::Trace& trace = *entry.first;
    eval::ConfusionCounts counts = eval::EvaluateDetector(
        detector, trace, options.sample_size);
    eval::DetectionRates rates = eval::ComputePaperRates(counts);
    // Which detected leaks are carrier-valued (shared across devices)?
    size_t carrier_hits = 0, other_hits = 0;
    for (const sim::LabeledPacket& lp : trace.packets) {
      if (!lp.sensitive() || !detector.IsSensitive(lp.packet)) continue;
      bool carrier = false;
      for (auto t : lp.truth) {
        if (t == core::SensitiveType::kCarrier) carrier = true;
      }
      (carrier ? carrier_hits : other_hits)++;
    }
    table.AddRow({entry.second, eval::FormatPercent(rates.tp),
                  eval::FormatPercent(rates.fn),
                  eval::FormatPercent(rates.fp),
                  std::to_string(carrier_hits), std::to_string(other_hits)});
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf(
      "Signatures trained on one handset carry its identifier values as "
      "tokens; on another handset only template-context and shared-value "
      "(carrier) signatures still fire. Production deployments must train "
      "per device or on value-free tokens — the cost of the paper's "
      "single-device methodology.\n");
  return 0;
}
