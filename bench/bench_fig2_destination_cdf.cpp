// Reproduces Figure 2: cumulative frequency distribution of HTTP host
// destinations per application.

#include <cstdio>

#include "bench_util.h"
#include "eval/analysis.h"
#include "eval/table_format.h"
#include "sim/paper_tables.h"

int main(int argc, char** argv) {
  using namespace leakdet;
  bench::BenchArgs args = bench::ParseArgs(argc, argv);
  sim::Trace trace = bench::GenerateBenchTrace(args);

  eval::DestinationDistribution dist =
      eval::ComputeDestinationDistribution(trace);

  std::printf("Figure 2 — destinations per application (CDF)\n\n");
  std::printf("  dests   cumulative fraction of apps\n");
  for (int k : {1, 2, 4, 6, 8, 10, 12, 16, 20, 30, 50, 84}) {
    double frac = dist.CumulativeAt(k);
    std::printf("  %5d   %6.1f%%  |", k, frac * 100);
    int bars = static_cast<int>(frac * 50);
    for (int b = 0; b < bars; ++b) std::printf("#");
    std::printf("\n");
  }

  std::printf("\nheadline statistics (paper vs measured):\n");
  eval::TablePrinter table({"statistic", "paper", "measured"});
  table.AddRow({"apps with exactly 1 destination",
                "81 (7%)",
                std::to_string(dist.apps_with_one) + " (" +
                    eval::FormatPercent(dist.CumulativeAt(1)) + ")"});
  table.AddRow({"apps with <= 10 destinations", "74%",
                eval::FormatPercent(dist.frac_up_to_10)});
  table.AddRow({"apps with <= 16 destinations", "90%",
                eval::FormatPercent(dist.frac_up_to_16)});
  table.AddRow({"mean destinations", "7.9",
                eval::FormatDouble(dist.mean, 1)});
  table.AddRow({"max destinations (embedded browser)", "84",
                std::to_string(dist.max)});
  std::printf("%s", table.Render().c_str());
  return 0;
}
