// Ablation: signature-generation knobs DESIGN.md calls out.
//   a) dendrogram cut height (per-module vs per-SDK vs merged clustering);
//   b) minimum invariant-token length (the "GET *" degeneracy guard);
//   c) normal-corpus screening on/off (the paper has no screen — this is
//      where its "verbose signatures" FP growth comes from);
//   d) host-scoped matching on/off (destination-specific signatures).

#include <cstdio>

#include "bench_util.h"
#include "eval/experiment.h"
#include "eval/table_format.h"

int main(int argc, char** argv) {
  using namespace leakdet;
  bench::BenchArgs args = bench::ParseArgs(argc, argv);
  sim::Trace trace = bench::GenerateBenchTrace(args);

  size_t n = static_cast<size_t>(300 * args.scale + 0.5);

  struct Variant {
    std::string name;
    core::PipelineOptions options;
  };
  std::vector<Variant> variants;
  {
    core::PipelineOptions base;
    base.seed = args.seed;

    for (double cut : {1.0, 1.5, 2.0, 2.5, 3.0}) {
      Variant v{"cut height " + eval::FormatDouble(cut, 1), base};
      v.options.cut_height = cut;
      variants.push_back(v);
    }
    for (size_t len : {4ul, 6ul, 10ul, 16ul}) {
      Variant v{"min token len " + std::to_string(len), base};
      v.options.siggen.min_token_len = len;
      variants.push_back(v);
    }
    {
      Variant v{"no normal-corpus screens (paper)", base};
      v.options.siggen.max_token_normal_df = 1.0;
      v.options.siggen.max_signature_normal_fp = 1.0;
      variants.push_back(v);
    }
    {
      Variant v{"host-scoped matching", base};
      v.options.siggen.scope_by_host = true;
      variants.push_back(v);
    }
  }

  std::printf("Signature-generation ablation at N=%zu\n", n);
  eval::TablePrinter table({"variant", "TP", "FN", "FP", "#sigs"});
  for (const Variant& v : variants) {
    auto points = eval::RunDetectionSweep(trace, {n}, v.options);
    if (!points.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", v.name.c_str(),
                   points.status().ToString().c_str());
      continue;
    }
    const auto& p = (*points)[0];
    table.AddRow({v.name, eval::FormatPercent(p.paper.tp),
                  eval::FormatPercent(p.paper.fn),
                  eval::FormatPercent(p.paper.fp),
                  std::to_string(p.num_signatures)});
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf(
      "Reading guide: very low cut heights fragment modules into app-level "
      "clusters (recall drops); very high cuts merge services (signatures "
      "die in screening or go generic). Short tokens and unscreened "
      "generation raise FP — §VI's degenerate-signature warning.\n");
  return 0;
}
