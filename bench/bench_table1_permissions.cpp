// Reproduces Table I: "Number of applications with dangerous permission
// combinations" — the permission mix of the simulated market vs the paper.

#include <cstdio>

#include "bench_util.h"
#include "eval/table_format.h"
#include "sim/paper_tables.h"

int main(int argc, char** argv) {
  using namespace leakdet;
  bench::BenchArgs args = bench::ParseArgs(argc, argv);
  sim::Trace trace = bench::GenerateBenchTrace(args);

  std::vector<int> measured = trace.population.PermissionComboCounts();

  std::printf("Table I — dangerous permission combinations\n");
  eval::TablePrinter table(
      {"INTERNET", "LOCATION", "PHONE STATE", "CONTACTS", "# Apps (paper)",
       "# Apps (measured)"});
  auto mark = [](bool b) { return std::string(b ? "x" : ""); };
  for (size_t i = 0; i < sim::kPaperTable1.size(); ++i) {
    const auto& row = sim::kPaperTable1[i];
    int paper = static_cast<int>(row.apps * args.scale + 0.5);
    table.AddRow({mark(row.internet), mark(row.location),
                  mark(row.phone_state), mark(row.contacts),
                  std::to_string(paper), std::to_string(measured[i])});
  }
  table.AddRow({"x", "(other)", "", "",
                std::to_string(static_cast<int>(
                    sim::kPaperTable1OtherApps * args.scale + 0.5)),
                std::to_string(measured[5])});
  std::printf("%s\n", table.Render().c_str());

  int total = 0;
  int dangerous = 0;
  for (const sim::App& app : trace.population.apps) {
    ++total;
    if (app.permissions.IsDangerousCombination()) ++dangerous;
  }
  std::printf(
      "dangerous combinations: %d/%d apps (%.0f%%); paper reports 61%% of "
      "1,188\n",
      dangerous, total, 100.0 * dangerous / total);
  std::printf(
      "note: the paper's Table I rows sum to 955 and its 61%% claim implies "
      "727 dangerous apps; the published numbers are internally "
      "inconsistent. We reproduce the table rows exactly and report the "
      "dangerous share they imply.\n");
  return 0;
}
