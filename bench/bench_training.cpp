// Training-path benchmark: times the three server-side training stages —
// distance-matrix build, hierarchical clustering, signature generation — at
// several sample sizes and writes the measurements to BENCH_training.json.
//
// For each N the matrix stage is measured twice: the optimized path
// (interning + shared NCD pair cache + chunked parallel rows) and, up to
// --naive-max, the serial uncached reference; likewise NN-chain vs the
// naive O(n³) scan for clustering. That makes the JSON a self-contained
// before/after record of the training-path optimization.
//
// Usage:
//   bench_training [--sizes=100,250,500,1000] [--scale=0.3] [--seed=42]
//                  [--threads=0] [--compressor=lzw] [--naive-max=500]
//                  [--out=BENCH_training.json] [--selfcheck]
//
// --selfcheck re-verifies, at each N, that the optimized matrix is
// bit-identical to the reference and that NN-chain reproduces the naive
// dendrogram's cut; it exits nonzero on any mismatch (used by the `perf`
// ctest smoke run).

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "compress/compressor.h"
#include "compress/ncd.h"
#include "core/distance.h"
#include "core/hcluster.h"
#include "core/packet.h"
#include "core/siggen.h"
#include "sim/trafficgen.h"

namespace {

using namespace leakdet;

struct Args {
  std::vector<size_t> sizes = {100, 250, 500, 1000};
  double scale = 0.3;
  uint64_t seed = 42;
  unsigned threads = 0;
  std::string compressor = "lzw";
  size_t naive_max = 500;
  std::string out = "BENCH_training.json";
  bool selfcheck = false;
};

Args ParseArgs(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strncmp(a, "--sizes=", 8) == 0) {
      args.sizes.clear();
      for (const char* p = a + 8; *p != '\0';) {
        args.sizes.push_back(static_cast<size_t>(std::strtoull(p, nullptr, 10)));
        while (*p != '\0' && *p != ',') ++p;
        if (*p == ',') ++p;
      }
    } else if (std::strncmp(a, "--scale=", 8) == 0) {
      args.scale = std::atof(a + 8);
    } else if (std::strncmp(a, "--seed=", 7) == 0) {
      args.seed = static_cast<uint64_t>(std::atoll(a + 7));
    } else if (std::strncmp(a, "--threads=", 10) == 0) {
      args.threads = static_cast<unsigned>(std::atoi(a + 10));
    } else if (std::strncmp(a, "--compressor=", 13) == 0) {
      args.compressor = a + 13;
    } else if (std::strncmp(a, "--naive-max=", 12) == 0) {
      args.naive_max = static_cast<size_t>(std::atoll(a + 12));
    } else if (std::strncmp(a, "--out=", 6) == 0) {
      args.out = a + 6;
    } else if (std::strcmp(a, "--selfcheck") == 0) {
      args.selfcheck = true;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", a);
      std::exit(2);
    }
  }
  return args;
}

double MillisSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

struct Row {
  size_t n = 0;
  size_t pairs = 0;
  double matrix_ms = 0;
  double matrix_naive_ms = -1;  // -1 = not measured (n > naive_max)
  double cluster_ms = 0;
  double cluster_naive_ms = -1;
  double siggen_ms = 0;
  double pairs_per_sec = 0;
  core::DistanceMatrixStats stats;
  size_t nclusters = 0;
  size_t nsignatures = 0;
};

void AppendRowJson(std::string* json, const Row& r, bool last) {
  char buf[1024];
  std::snprintf(
      buf, sizeof(buf),
      "    {\"n\": %zu, \"pairs\": %zu, \"matrix_ms\": %.2f, "
      "\"matrix_naive_ms\": %.2f, \"matrix_speedup\": %.2f, "
      "\"pairs_per_sec\": %.1f, \"cluster_ms\": %.2f, "
      "\"cluster_naive_ms\": %.2f, \"siggen_ms\": %.2f, "
      "\"distinct_content_strings\": %zu, \"distinct_hosts\": %zu, "
      "\"singleton_compressions\": %zu, \"ncd_pair_hits\": %llu, "
      "\"ncd_pairs_computed\": %llu, \"ncd_hit_rate\": %.4f, "
      "\"host_pairs_computed\": %llu, \"clusters\": %zu, "
      "\"signatures\": %zu}%s\n",
      r.n, r.pairs, r.matrix_ms, r.matrix_naive_ms,
      r.matrix_naive_ms > 0 ? r.matrix_naive_ms / r.matrix_ms : 0.0,
      r.pairs_per_sec, r.cluster_ms, r.cluster_naive_ms, r.siggen_ms,
      r.stats.distinct_content_strings, r.stats.distinct_hosts,
      r.stats.singleton_compressions,
      static_cast<unsigned long long>(r.stats.ncd_pair_hits),
      static_cast<unsigned long long>(r.stats.ncd_pairs_computed),
      r.stats.ncd_hit_rate(),
      static_cast<unsigned long long>(r.stats.host_pairs_computed),
      r.nclusters, r.nsignatures, last ? "" : ",");
  *json += buf;
}

bool MatricesIdentical(const core::DistanceMatrix& a,
                       const core::DistanceMatrix& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    for (size_t j = i + 1; j < a.size(); ++j) {
      if (a.at(i, j) != b.at(i, j)) return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Args args = ParseArgs(argc, argv);

  sim::TrafficConfig config;
  config.seed = args.seed;
  config.scale = args.scale;
  std::printf("generating trace (scale=%.3f seed=%llu)...\n", args.scale,
              static_cast<unsigned long long>(args.seed));
  sim::Trace trace = sim::GenerateTrace(config);
  std::vector<core::HttpPacket> suspicious, normal;
  trace.SplitByTruth(&suspicious, &normal);
  std::printf("  %zu suspicious / %zu normal packets\n\n", suspicious.size(),
              normal.size());

  auto compressor = compress::MakeCompressor(args.compressor);
  if (!compressor.ok()) {
    std::fprintf(stderr, "bad compressor: %s\n", args.compressor.c_str());
    return 2;
  }

  std::vector<std::string> normal_corpus;
  for (size_t i = 0; i < normal.size() && i < 2000; ++i) {
    normal_corpus.push_back(core::PacketContent(normal[i]));
  }

  const core::DistanceOptions distance_options;
  const double cut_height = 2.0;
  bool selfcheck_failed = false;
  std::vector<Row> rows;

  for (size_t n : args.sizes) {
    if (n > suspicious.size()) {
      std::printf("N=%zu skipped (only %zu suspicious packets; raise "
                  "--scale)\n",
                  n, suspicious.size());
      continue;
    }
    std::vector<core::HttpPacket> sample(suspicious.begin(),
                                         suspicious.begin() +
                                             static_cast<long>(n));
    Row row;
    row.n = n;
    row.pairs = n * (n - 1) / 2;

    auto t0 = std::chrono::steady_clock::now();
    core::DistanceMatrix matrix = core::ComputeDistanceMatrixParallel(
        sample, compressor->get(), distance_options, args.threads, &row.stats);
    row.matrix_ms = MillisSince(t0);
    row.pairs_per_sec = row.matrix_ms > 0
                            ? static_cast<double>(row.pairs) /
                                  (row.matrix_ms / 1000.0)
                            : 0.0;

    if (n <= args.naive_max) {
      compress::NcdCalculator calc(compressor->get());
      core::PacketDistance metric(&calc, distance_options);
      t0 = std::chrono::steady_clock::now();
      core::DistanceMatrix reference = core::ComputeDistanceMatrix(sample,
                                                                   metric);
      row.matrix_naive_ms = MillisSince(t0);
      if (args.selfcheck && !MatricesIdentical(matrix, reference)) {
        std::fprintf(stderr, "SELFCHECK FAILED: fast matrix != reference at "
                             "N=%zu\n",
                     n);
        selfcheck_failed = true;
      }
    }

    t0 = std::chrono::steady_clock::now();
    core::Dendrogram dendrogram = core::ClusterGroupAverage(matrix);
    row.cluster_ms = MillisSince(t0);
    std::vector<std::vector<int32_t>> clusters =
        dendrogram.CutAtHeight(cut_height);
    row.nclusters = clusters.size();

    if (n <= args.naive_max) {
      t0 = std::chrono::steady_clock::now();
      core::Dendrogram naive = core::ClusterGroupAverageNaive(matrix);
      row.cluster_naive_ms = MillisSince(t0);
      if (args.selfcheck && dendrogram.CutAtHeight(cut_height) !=
                                naive.CutAtHeight(cut_height)) {
        std::fprintf(stderr, "SELFCHECK FAILED: NN-chain cut != naive cut at "
                             "N=%zu\n",
                     n);
        selfcheck_failed = true;
      }
    }

    t0 = std::chrono::steady_clock::now();
    core::SignatureGenerator generator(core::SiggenOptions{});
    match::SignatureSet signatures =
        generator.Generate(sample, clusters, normal_corpus, nullptr);
    row.siggen_ms = MillisSince(t0);
    row.nsignatures = signatures.size();

    std::printf("N=%4zu matrix %8.1fms (naive %8.1fms)  cluster %7.1fms "
                "(naive %7.1fms)  siggen %6.1fms  ncd_hit_rate %.3f  "
                "%zu clusters\n",
                n, row.matrix_ms, row.matrix_naive_ms, row.cluster_ms,
                row.cluster_naive_ms, row.siggen_ms, row.stats.ncd_hit_rate(),
                row.nclusters);
    rows.push_back(row);
  }

  std::string json = "{\n";
  {
    char buf[512];
    std::snprintf(buf, sizeof(buf),
                  "  \"config\": {\"scale\": %.3f, \"seed\": %llu, "
                  "\"threads\": %u, \"compressor\": \"%s\", "
                  "\"cut_height\": %.2f, \"naive_max\": %zu},\n",
                  args.scale,
                  static_cast<unsigned long long>(args.seed), args.threads,
                  args.compressor.c_str(), cut_height, args.naive_max);
    json += buf;
  }
  json += "  \"results\": [\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    AppendRowJson(&json, rows[i], i + 1 == rows.size());
  }
  json += "  ]\n}\n";

  std::FILE* f = std::fopen(args.out.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", args.out.c_str());
    return 2;
  }
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  std::printf("\nwrote %s\n", args.out.c_str());

  if (args.selfcheck && rows.empty()) {
    std::fprintf(stderr, "SELFCHECK FAILED: no sizes were runnable\n");
    selfcheck_failed = true;
  }
  return selfcheck_failed ? 1 : 0;
}
