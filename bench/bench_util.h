#ifndef LEAKDET_BENCH_BENCH_UTIL_H_
#define LEAKDET_BENCH_BENCH_UTIL_H_

// Shared helpers for the table/figure reproduction binaries.
//
// Every reproduction bench accepts:
//   --scale=<f>   dataset scale (1.0 = the paper's 1,188 apps / ~108k packets)
//   --seed=<n>    generator seed
// and prints the paper's published row next to the measured row.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "sim/trafficgen.h"

namespace leakdet::bench {

struct BenchArgs {
  double scale = 1.0;
  uint64_t seed = 42;
};

inline BenchArgs ParseArgs(int argc, char** argv) {
  BenchArgs args;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--scale=", 8) == 0) {
      args.scale = std::atof(argv[i] + 8);
    } else if (std::strncmp(argv[i], "--seed=", 7) == 0) {
      args.seed = static_cast<uint64_t>(std::atoll(argv[i] + 7));
    } else if (std::strcmp(argv[i], "--help") == 0) {
      std::printf("usage: %s [--scale=1.0] [--seed=42]\n", argv[0]);
      std::exit(0);
    }
  }
  return args;
}

inline sim::Trace GenerateBenchTrace(const BenchArgs& args) {
  sim::TrafficConfig config;
  config.seed = args.seed;
  config.scale = args.scale;
  std::printf("generating trace (scale=%.3f seed=%llu)...\n", args.scale,
              static_cast<unsigned long long>(args.seed));
  sim::Trace trace = sim::GenerateTrace(config);
  std::printf("  %zu packets, %zu apps, %zu services\n\n",
              trace.packets.size(), trace.population.apps.size(),
              trace.services.size());
  return trace;
}

}  // namespace leakdet::bench

#endif  // LEAKDET_BENCH_BENCH_UTIL_H_
