// Ablation: which parts of the §IV packet distance matter?
//  - combined (paper, distance orientation)     d_dst + d_header
//  - destination-only                           d_dst
//  - content-only                               d_header
//  - literal similarity orientation             d_ip/d_port as printed
// Each variant clusters the same N-sample and is scored on the full trace.

#include <cstdio>

#include "bench_util.h"
#include "eval/experiment.h"
#include "eval/table_format.h"

int main(int argc, char** argv) {
  using namespace leakdet;
  bench::BenchArgs args = bench::ParseArgs(argc, argv);
  sim::Trace trace = bench::GenerateBenchTrace(args);

  size_t n = static_cast<size_t>(300 * args.scale + 0.5);

  struct Variant {
    const char* name;
    core::DistanceOptions distance;
    double cut_height;
  };
  core::DistanceOptions combined;
  core::DistanceOptions dst_only;
  dst_only.use_content = false;
  core::DistanceOptions content_only;
  content_only.use_destination = false;
  core::DistanceOptions literal;
  literal.literal_similarity_orientation = true;
  // WHOIS-verified IP distance (§VI's suggestion).
  net::OrgRegistry registry = sim::BuildOrgRegistry(trace.services);
  core::DistanceOptions verified;
  verified.org_registry = &registry;
  // Cut heights chosen per variant range: each composite has a different
  // maximum (3 for the single-sided variants, 6 for combined).
  const Variant variants[] = {
      {"combined (paper)", combined, 2.0},
      {"destination-only", dst_only, 1.0},
      {"content-only", content_only, 1.0},
      {"literal ip/port orientation", literal, 2.0},
      {"combined + WHOIS-verified ip", verified, 2.0},
  };

  std::printf("Distance ablation at N=%zu\n", n);
  eval::TablePrinter table(
      {"variant", "TP (paper formula)", "FN", "FP", "#sigs", "#clusters"});
  for (const Variant& v : variants) {
    core::PipelineOptions options;
    options.seed = args.seed;
    options.sample_size = n;
    options.distance = v.distance;
    options.cut_height = v.cut_height;
    auto points = eval::RunDetectionSweep(trace, {n}, options);
    if (!points.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", v.name,
                   points.status().ToString().c_str());
      continue;
    }
    const auto& p = (*points)[0];
    table.AddRow({v.name, eval::FormatPercent(p.paper.tp),
                  eval::FormatPercent(p.paper.fn),
                  eval::FormatPercent(p.paper.fp),
                  std::to_string(p.num_signatures),
                  std::to_string(p.num_clusters)});
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf(
      "The combined distance is the paper's design point (§IV-A): the "
      "destination half keeps clusters module-specific, the content half "
      "separates leaking from non-leaking packets at the same server.\n");
  return 0;
}
