// Extension: the three Polygraph-style signature families on the same
// clustering — conjunction (the paper's §IV-E), token subsequence (field
// order enforced), and probabilistic/Bayes (weighted tokens; the paper's
// §VI future work, refs [14], [30]) — swept over the Figure 4 sample sizes.

#include <cstdio>

#include "bench_util.h"
#include "core/pipeline.h"
#include "core/siggen_seq.h"
#include "eval/experiment.h"
#include "eval/roc.h"
#include "eval/table_format.h"

namespace {

using namespace leakdet;

template <typename DetectorT>
eval::DetectionRates Score(const DetectorT& detector, const sim::Trace& trace,
                           size_t n) {
  eval::ConfusionCounts counts;
  counts.sample_size = n;
  for (const sim::LabeledPacket& lp : trace.packets) {
    bool flagged = detector.IsSensitive(lp.packet);
    if (lp.sensitive()) {
      counts.sensitive_total++;
      if (flagged) counts.detected_sensitive++;
    } else {
      counts.normal_total++;
      if (flagged) counts.detected_normal++;
    }
  }
  return eval::ComputePaperRates(counts);
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchArgs args = bench::ParseArgs(argc, argv);
  sim::Trace trace = bench::GenerateBenchTrace(args);

  std::vector<core::HttpPacket> suspicious, normal;
  trace.SplitByTruth(&suspicious, &normal);

  std::printf("Signature families: conjunction vs subsequence vs Bayes\n");
  eval::TablePrinter table({"N", "conj TP", "conj FP", "subseq TP",
                            "subseq FP", "bayes TP", "bayes FP"});
  for (int base_n : {100, 300, 500}) {
    size_t n = static_cast<size_t>(base_n * args.scale + 0.5);

    core::PipelineOptions options;
    options.seed = args.seed;
    options.sample_size = n;

    // One shared clustering; three generators.
    auto clustering = core::RunClustering(suspicious, normal, options);
    if (!clustering.ok()) {
      std::fprintf(stderr, "clustering failed: %s\n",
                   clustering.status().ToString().c_str());
      return 1;
    }

    core::SignatureGenerator conj_gen(options.siggen);
    core::Detector conj_detector(
        conj_gen.Generate(clustering->sample, clustering->clusters,
                          clustering->normal_corpus),
        options.siggen.scope_by_host);
    eval::DetectionRates conj = Score(conj_detector, trace, n);

    core::SubsequenceSignatureGenerator seq_gen(options.siggen);
    core::SubsequenceDetector seq_detector(
        seq_gen.Generate(clustering->sample, clustering->clusters,
                         clustering->normal_corpus),
        options.siggen.scope_by_host);
    eval::DetectionRates seq = Score(seq_detector, trace, n);

    core::BayesSignatureGenerator bayes_gen;
    core::BayesDetector bayes_detector(
        bayes_gen.Generate(clustering->sample, clustering->clusters,
                           clustering->normal_corpus));
    eval::DetectionRates bayes = Score(bayes_detector, trace, n);

    table.AddRow({std::to_string(n), eval::FormatPercent(conj.tp),
                  eval::FormatPercent(conj.fp), eval::FormatPercent(seq.tp),
                  eval::FormatPercent(seq.fp), eval::FormatPercent(bayes.tp),
                  eval::FormatPercent(bayes.fp)});
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf(
      "Subsequence signatures add field-order precision (FP can only drop "
      "relative to conjunctions over the same tokens, recall can only "
      "drop); Bayes signatures trade a small FP increase for recall on "
      "polymorphic modules that drop or reorder template fields.\n\n");

  // ROC sweep of the Bayes threshold at N = 300·scale: the operating-point
  // dial a conjunction signature does not have.
  {
    size_t n = static_cast<size_t>(300 * args.scale + 0.5);
    core::PipelineOptions options;
    options.seed = args.seed;
    options.sample_size = n;
    auto clustering = core::RunClustering(suspicious, normal, options);
    if (clustering.ok()) {
      core::BayesSignatureGenerator gen;
      match::BayesSignatureSet set = gen.Generate(
          clustering->sample, clustering->clusters, clustering->normal_corpus);
      std::vector<double> offsets;
      for (double t = -3.0; t <= 3.0; t += 0.5) offsets.push_back(t);
      auto points = eval::BayesRocSweep(set, trace.packets, offsets);
      std::printf("Bayes threshold ROC (offset added to every threshold):\n");
      eval::TablePrinter roc({"offset", "recall", "FPR"});
      for (const auto& p : points) {
        roc.AddRow({eval::FormatDouble(p.threshold_offset, 1),
                    eval::FormatPercent(p.recall),
                    eval::FormatPercent(p.fpr, 2)});
      }
      std::printf("%s", roc.Render().c_str());
      std::printf("AUC ~ %.3f\n", eval::RocAuc(points));
    }
  }
  return 0;
}
