// Reproduces Figure 4: "Detection Rate of Sensitive Information Leakage" —
// TP / FN / FP percentages as the signature-generation sample N grows from
// 100 to 500, using the paper's §V-B formulas.

#include <cstdio>

#include "bench_util.h"
#include "eval/experiment.h"
#include "eval/table_format.h"
#include "sim/paper_tables.h"

int main(int argc, char** argv) {
  using namespace leakdet;
  bench::BenchArgs args = bench::ParseArgs(argc, argv);
  sim::Trace trace = bench::GenerateBenchTrace(args);

  std::vector<size_t> sample_sizes;
  for (const auto& row : sim::kPaperFig4) {
    sample_sizes.push_back(static_cast<size_t>(row.n * args.scale + 0.5));
  }

  core::PipelineOptions options;
  options.seed = args.seed;
  auto points = eval::RunDetectionSweep(trace, sample_sizes, options);
  if (!points.ok()) {
    std::fprintf(stderr, "sweep failed: %s\n",
                 points.status().ToString().c_str());
    return 1;
  }

  std::printf("Figure 4 — detection rate vs sample size N\n");
  eval::TablePrinter table({"N", "TP paper", "TP ours", "FN paper", "FN ours",
                            "FP paper", "FP ours", "#sigs", "#clusters"});
  for (size_t i = 0; i < points->size(); ++i) {
    const auto& paper = sim::kPaperFig4[i];
    const auto& p = (*points)[i];
    table.AddRow({std::to_string(p.n),
                  eval::FormatDouble(paper.tp_pct, 1) + "%",
                  eval::FormatPercent(p.paper.tp),
                  eval::FormatDouble(paper.fn_pct, 1) + "%",
                  eval::FormatPercent(p.paper.fn),
                  eval::FormatDouble(paper.fp_pct, 1) + "%",
                  eval::FormatPercent(p.paper.fp),
                  std::to_string(p.num_signatures),
                  std::to_string(p.num_clusters)});
  }
  std::printf("%s\n", table.Render().c_str());

  std::printf("cross-check (conventional metrics):\n");
  eval::TablePrinter std_table({"N", "recall", "FPR", "precision", "F1"});
  for (const auto& p : *points) {
    std_table.AddRow({std::to_string(p.n),
                      eval::FormatPercent(p.standard.recall),
                      eval::FormatPercent(p.standard.fpr),
                      eval::FormatPercent(p.standard.precision),
                      eval::FormatPercent(p.standard.f1)});
  }
  std::printf("%s\n", std_table.Render().c_str());
  std::printf(
      "paper §V-B rows: N=100 (85%% TP, 15%% FN, 0.3%% FP), N=200 (>90%% TP, "
      "<=8%% FN, 0.9%% FP), N=500 (94%% TP, 5%% FN, 2.3%% FP); N=300/400 "
      "columns are read off the figure.\n\n");

  // Per-type coverage at the largest N: which Table III categories the
  // final signature set actually catches.
  {
    std::vector<core::HttpPacket> suspicious, normal;
    trace.SplitByTruth(&suspicious, &normal);
    core::PipelineOptions final_options = options;
    final_options.sample_size = sample_sizes.back();
    final_options.seed =
        options.seed + (sample_sizes.size() - 1) * 0x9E37u;
    auto result = core::RunPipeline(suspicious, normal, final_options);
    if (result.ok()) {
      core::Detector detector(std::move(result->signatures));
      std::printf("per-type detection at N=%zu:\n", sample_sizes.back());
      eval::TablePrinter type_table({"type", "detected", "total", "rate"});
      for (const auto& row : eval::PerTypeDetection(detector, trace)) {
        type_table.AddRow({std::string(core::SensitiveTypeName(row.type)),
                           std::to_string(row.detected),
                           std::to_string(row.total),
                           eval::FormatPercent(row.rate())});
      }
      std::printf("%s", type_table.Render().c_str());
    }
  }
  return 0;
}
