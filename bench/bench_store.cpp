// Durable-store benchmark: three measurements, written to BENCH_store.json.
//
// 1. Raw WAL append throughput under each fsync policy against an in-memory
//    framing baseline (the identical frames appended to a buffer), isolating
//    exactly what the write(2)/fdatasync(2) pattern of each policy costs.
// 2. Recovery replay speed over each policy's log.
// 3. The acceptance metric: *gateway ingest* throughput with the store in
//    the loop (WAL append before every Ingest, snapshot on every publish,
//    every-N fsync) versus the same ingest stream fully in memory. The
//    training path's per-packet work dominates the WAL frame write, so the
//    durable run must stay within 10% of the in-memory run.
//
// Usage:
//   bench_store [--records=100000] [--ingest-records=2000] [--body-bytes=256]
//               [--sync-every-n=256] [--segment-mb=4] [--seed=42] [--reps=5]
//               [--dir=bench_store_data] [--out=BENCH_store.json]
//               [--selfcheck]
//
// The ingest phase repeats each configuration --reps times (fresh server and
// data directory per repetition; the stream is deterministic) and reports the
// fastest repetition — noise from frequency scaling and page-cache state is
// strictly additive, so min-of-K is the faithful estimate of each
// configuration's cost.
//
// --selfcheck re-replays every policy's log (exact record count and final
// sequence) and requires the store-backed ingest run to end bit-compatible
// with the in-memory run (same feed version, pools, counters); it exits
// nonzero on any mismatch. Used by the `perf` ctest smoke run; timing is
// reported, never asserted — CI machines are too noisy for that.

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "core/packet.h"
#include "core/payload_check.h"
#include "core/signature_server.h"
#include "store/file.h"
#include "store/store_manager.h"
#include "store/wal.h"
#include "util/rng.h"

namespace {

using namespace leakdet;

struct Args {
  size_t records = 100000;
  size_t ingest_records = 2000;
  size_t body_bytes = 256;
  size_t sync_every_n = 256;  // the WalOptions default group-commit size
  size_t segment_mb = 4;
  size_t reps = 5;
  uint64_t seed = 42;
  std::string dir = "bench_store_data";
  std::string out = "BENCH_store.json";
  bool selfcheck = false;
};

Args ParseArgs(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strncmp(a, "--records=", 10) == 0) {
      args.records = static_cast<size_t>(std::atoll(a + 10));
    } else if (std::strncmp(a, "--ingest-records=", 17) == 0) {
      args.ingest_records = static_cast<size_t>(std::atoll(a + 17));
    } else if (std::strncmp(a, "--body-bytes=", 13) == 0) {
      args.body_bytes = static_cast<size_t>(std::atoll(a + 13));
    } else if (std::strncmp(a, "--sync-every-n=", 15) == 0) {
      args.sync_every_n = static_cast<size_t>(std::atoll(a + 15));
    } else if (std::strncmp(a, "--segment-mb=", 13) == 0) {
      args.segment_mb = static_cast<size_t>(std::atoll(a + 13));
    } else if (std::strncmp(a, "--reps=", 7) == 0) {
      args.reps = static_cast<size_t>(std::atoll(a + 7));
      if (args.reps == 0) args.reps = 1;
    } else if (std::strncmp(a, "--seed=", 7) == 0) {
      args.seed = static_cast<uint64_t>(std::atoll(a + 7));
    } else if (std::strncmp(a, "--dir=", 6) == 0) {
      args.dir = a + 6;
    } else if (std::strncmp(a, "--out=", 6) == 0) {
      args.out = a + 6;
    } else if (std::strcmp(a, "--selfcheck") == 0) {
      args.selfcheck = true;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", a);
      std::exit(2);
    }
  }
  return args;
}

double MillisSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

/// The record tape: identical for the baseline and every policy, so the
/// byte streams are byte-for-byte the same. About 30% of packets leak one of
/// `device`'s identifiers so the ingest phase exercises real retrains.
std::vector<store::FeedRecord> MakeTape(const Args& args,
                                        const core::DeviceTokens& device) {
  Rng rng(args.seed);
  std::vector<store::FeedRecord> tape;
  tape.reserve(args.records);
  for (size_t i = 0; i < args.records; ++i) {
    store::FeedRecord record;
    record.feed_version = i / 1000;
    record.sensitive = rng.Bernoulli(0.3);
    record.shard = static_cast<uint32_t>(rng.UniformInt(8));
    record.num_matches = static_cast<uint32_t>(rng.UniformInt(4));
    record.packet.app_id = static_cast<uint32_t>(rng.UniformInt(10000));
    record.packet.destination.host = "ad" + std::to_string(rng.UniformInt(50)) +
                                     ".example.com";
    record.packet.destination.port = 80;
    record.packet.request_line =
        "GET /track?id=" + rng.RandomHex(16) + " HTTP/1.1";
    record.packet.cookie = "session=" + rng.RandomHex(24);
    record.packet.body = rng.RandomHex(args.body_bytes);
    if (rng.Bernoulli(0.3)) {
      record.packet.body +=
          (rng.Bernoulli(0.5) ? "&android_id=" + device.android_id
                              : "&imei=" + device.imei);
    }
    tape.push_back(std::move(record));
  }
  return tape;
}

void RemoveDirRecursive(const std::string& path) {
  store::Dir* dir = store::Dir::Real();
  auto names = dir->List(path);
  if (names.ok()) {
    for (const std::string& name : *names) dir->Remove(path + "/" + name);
  }
  std::remove(path.c_str());
}

struct PolicyRow {
  std::string name;
  double append_ms = 0;
  double records_per_sec = 0;
  double mb_per_sec = 0;
  double overhead_vs_memory = 0;  ///< append_ms / baseline_ms - 1
  uint64_t segments = 0;
  uint64_t synced_bytes = 0;
  double replay_ms = 0;
  double replay_records_per_sec = 0;
};

}  // namespace

int main(int argc, char** argv) {
  Args args = ParseArgs(argc, argv);

  core::DeviceTokens device;
  {
    Rng token_rng(args.seed * 131 + 7);
    device.android_id = token_rng.RandomHex(16);
    device.imei = token_rng.RandomDigits(15);
    device.imsi = token_rng.RandomDigits(15);
    device.sim_serial = token_rng.RandomDigits(19);
    device.carrier = "NTT DOCOMO";
  }
  std::printf("framing %zu records (~%zu body bytes each)...\n", args.records,
              args.body_bytes);
  std::vector<store::FeedRecord> tape = MakeTape(args, device);

  // In-memory baseline: the exact frames, appended to a buffer.
  uint64_t framed_bytes = 0;
  auto t0 = std::chrono::steady_clock::now();
  {
    std::string buffer;
    for (size_t i = 0; i < tape.size(); ++i) {
      store::FeedRecord record = tape[i];
      record.sequence = i + 1;
      buffer += store::FrameRecord(record);
    }
    framed_bytes = buffer.size();
  }
  const double baseline_ms = MillisSince(t0);
  const double mb = static_cast<double>(framed_bytes) / (1024.0 * 1024.0);
  std::printf("in-memory baseline: %.1fms  %.0f rec/s  %.1f MB/s\n",
              baseline_ms, tape.size() / (baseline_ms / 1000.0),
              mb / (baseline_ms / 1000.0));

  struct PolicyConfig {
    const char* name;
    store::SyncPolicy policy;
  };
  const PolicyConfig kPolicies[] = {
      {"every-record", store::SyncPolicy::kEveryRecord},
      {"every-n", store::SyncPolicy::kEveryN},
      {"on-rotate", store::SyncPolicy::kOnRotate},
  };

  bool selfcheck_failed = false;
  std::vector<PolicyRow> rows;
  // Deferred: invoked after the ingest phase below. The every-record pass is
  // tens of seconds of back-to-back fdatasyncs; running it first would hand
  // the ingest comparison — the acceptance metric — a hot, dirty machine.
  auto run_raw_phase = [&]() -> bool {
  for (const PolicyConfig& config : kPolicies) {
    const std::string dirpath = args.dir + "_" + config.name;
    RemoveDirRecursive(dirpath);
    store::Dir* dir = store::Dir::Real();
    if (!dir->CreateDir(dirpath).ok()) {
      std::fprintf(stderr, "cannot create %s\n", dirpath.c_str());
      return false;
    }
    store::WalOptions options;
    options.sync_policy = config.policy;
    options.sync_every_n = args.sync_every_n;
    options.segment_bytes = args.segment_mb << 20;
    auto writer = store::WalWriter::Open(dir, dirpath, 1, options);
    if (!writer.ok()) {
      std::fprintf(stderr, "open failed: %s\n",
                   writer.status().ToString().c_str());
      return false;
    }

    PolicyRow row;
    row.name = config.name;
    t0 = std::chrono::steady_clock::now();
    for (const store::FeedRecord& record : tape) {
      if (!(*writer)->Append(record).ok()) {
        std::fprintf(stderr, "append failed under %s\n", config.name);
        return false;
      }
    }
    if (!(*writer)->Sync().ok()) {
      std::fprintf(stderr, "final sync failed under %s\n", config.name);
      return false;
    }
    row.append_ms = MillisSince(t0);
    row.records_per_sec = tape.size() / (row.append_ms / 1000.0);
    row.mb_per_sec = mb / (row.append_ms / 1000.0);
    row.overhead_vs_memory =
        baseline_ms > 0 ? row.append_ms / baseline_ms - 1.0 : 0.0;
    row.segments = (*writer)->segments_created();
    row.synced_bytes = framed_bytes;
    writer->reset();

    // Recovery replay over what was just written.
    uint64_t replayed = 0;
    t0 = std::chrono::steady_clock::now();
    auto replay = store::ReplayWal(
        dir, dirpath, 0,
        [&replayed](const store::FeedRecord&) {
          ++replayed;
          return Status::OK();
        },
        /*repair=*/false);
    row.replay_ms = MillisSince(t0);
    row.replay_records_per_sec = replayed / (row.replay_ms / 1000.0);
    if (!replay.ok()) {
      std::fprintf(stderr, "replay failed under %s: %s\n", config.name,
                   replay.status().ToString().c_str());
      return false;
    }
    if (args.selfcheck &&
        (replayed != tape.size() || replay->last_sequence != tape.size() ||
         replay->truncated_bytes != 0)) {
      std::fprintf(stderr,
                   "SELFCHECK FAILED under %s: replayed %llu of %zu, "
                   "last_sequence %llu, truncated %llu\n",
                   config.name, static_cast<unsigned long long>(replayed),
                   tape.size(),
                   static_cast<unsigned long long>(replay->last_sequence),
                   static_cast<unsigned long long>(replay->truncated_bytes));
      selfcheck_failed = true;
    }

    std::printf("%-12s append %8.1fms  %8.0f rec/s  %6.1f MB/s  "
                "overhead %+6.1f%%  %llu segs   replay %8.1fms  %8.0f rec/s\n",
                config.name, row.append_ms, row.records_per_sec, row.mb_per_sec,
                row.overhead_vs_memory * 100.0,
                static_cast<unsigned long long>(row.segments), row.replay_ms,
                row.replay_records_per_sec);
    rows.push_back(row);
    RemoveDirRecursive(dirpath);
  }
  return true;
  };

  // --- Gateway ingest: in-memory vs store-backed. Identical packet stream
  // and server options throughout. Two durable configurations:
  //   wal-only — the acceptance metric: WAL append (every-N fsync) before
  //              each Ingest, nothing else; must stay within 10% of memory;
  //   full     — wal-only plus a snapshot + compaction on every publish,
  //              i.e. exactly what the gateway trainer does.
  core::PayloadCheck oracle(std::vector<core::DeviceTokens>{device});
  core::SignatureServer::Options server_options;
  server_options.retrain_after = 200;
  server_options.pipeline.sample_size = 100;
  server_options.pipeline.normal_corpus_size = 200;
  // Single-threaded retrains: the parallel pool's scheduling noise would
  // otherwise swamp the few-percent differences this phase measures.
  server_options.pipeline.num_threads = 1;
  const size_t ingest_n =
      args.ingest_records < tape.size() ? args.ingest_records : tape.size();

  // min-of-reps: each repetition rebuilds the server from scratch on the
  // same deterministic stream, so every repetition ends in the same state
  // and the fastest one is the noise-free cost. The three configurations
  // (memory / wal-only / full) are interleaved within each repetition —
  // running all of one config first would hand the baseline a cold, fast CPU
  // and the store runs a thermally throttled one.
  std::unique_ptr<core::SignatureServer> mem_server;
  double ingest_mem_ms = 0;
  auto run_mem_ingest = [&] {
    auto server =
        std::make_unique<core::SignatureServer>(&oracle, server_options);
    auto start = std::chrono::steady_clock::now();
    for (size_t i = 0; i < ingest_n; ++i) server->Ingest(tape[i].packet);
    const double ms = MillisSince(start);
    if (mem_server == nullptr || ms < ingest_mem_ms) ingest_mem_ms = ms;
    mem_server = std::move(server);
  };

  struct IngestRun {
    double total_ms = 0;
    double snapshot_ms = 0;  ///< spent in WriteSnapshot + Compact
    double overhead = 0;     ///< total_ms / ingest_mem_ms - 1
  };
  auto run_store_ingest = [&](bool snapshots, IngestRun* out) -> bool {
    const std::string dirpath = args.dir + "_ingest";
    RemoveDirRecursive(dirpath);
    store::StoreOptions store_options;
    store_options.wal.sync_policy = store::SyncPolicy::kEveryN;
    store_options.wal.sync_every_n = args.sync_every_n;
    store_options.wal.segment_bytes = args.segment_mb << 20;
    auto store =
        store::StoreManager::Open(store::Dir::Real(), dirpath, store_options);
    if (!store.ok()) {
      std::fprintf(stderr, "ingest store open failed: %s\n",
                   store.status().ToString().c_str());
      return false;
    }
    core::SignatureServer store_server(&oracle, server_options);
    // Settle writeback before timing: dirty pages left by earlier phases
    // (and repetitions) otherwise surface as arbitrary stalls inside this
    // run's fdatasyncs.
    ::sync();
    auto start = std::chrono::steady_clock::now();
    for (size_t i = 0; i < ingest_n; ++i) {
      store::FeedRecord record;
      record.feed_version = store_server.feed_version();
      record.sensitive = tape[i].sensitive;
      record.packet = tape[i].packet;
      if (!(*store)->Append(std::move(record)).ok()) {
        std::fprintf(stderr, "ingest append failed\n");
        return false;
      }
      if (store_server.Ingest(tape[i].packet) && snapshots) {
        auto ts = std::chrono::steady_clock::now();
        if (!(*store)->WriteSnapshot(store_server).ok() ||
            !(*store)->Compact().ok()) {
          std::fprintf(stderr, "ingest snapshot/compact failed\n");
          return false;
        }
        out->snapshot_ms += MillisSince(ts);
      }
    }
    if (!(*store)->Sync().ok()) {
      std::fprintf(stderr, "ingest final sync failed\n");
      return false;
    }
    out->total_ms = MillisSince(start);

    if (args.selfcheck &&
        (store_server.feed_version() != mem_server->feed_version() ||
         store_server.Feed() != mem_server->Feed() ||
         store_server.suspicious_pool_size() !=
             mem_server->suspicious_pool_size())) {
      std::fprintf(stderr,
                   "SELFCHECK FAILED: store-backed ingest diverged from "
                   "in-memory (version %llu vs %llu)\n",
                   static_cast<unsigned long long>(store_server.feed_version()),
                   static_cast<unsigned long long>(mem_server->feed_version()));
      selfcheck_failed = true;
    }
    store->reset();
    RemoveDirRecursive(dirpath);
    return true;
  };

  IngestRun wal_only, full;
  for (size_t rep = 0; rep < args.reps; ++rep) {
    run_mem_ingest();
    IngestRun wal_rep, full_rep;
    if (!run_store_ingest(/*snapshots=*/false, &wal_rep) ||
        !run_store_ingest(/*snapshots=*/true, &full_rep)) {
      return 2;
    }
    if (rep == 0 || wal_rep.total_ms < wal_only.total_ms) wal_only = wal_rep;
    if (rep == 0 || full_rep.total_ms < full.total_ms) full = full_rep;
  }
  wal_only.overhead =
      ingest_mem_ms > 0 ? wal_only.total_ms / ingest_mem_ms - 1.0 : 0.0;
  full.overhead = ingest_mem_ms > 0 ? full.total_ms / ingest_mem_ms - 1.0 : 0.0;
  std::printf("gateway ingest (%zu packets, %llu retrains): in-memory "
              "%8.1fms\n"
              "  wal-only %8.1fms  overhead %+6.1f%%   (acceptance metric)\n"
              "  full     %8.1fms  overhead %+6.1f%%   (%.1fms in "
              "snapshots+compaction)\n",
              ingest_n,
              static_cast<unsigned long long>(mem_server->feed_version()),
              ingest_mem_ms, wal_only.total_ms, wal_only.overhead * 100.0,
              full.total_ms, full.overhead * 100.0, full.snapshot_ms);

  if (!run_raw_phase()) return 2;

  std::string json = "{\n";
  {
    char buf[512];
    std::snprintf(buf, sizeof(buf),
                  "  \"config\": {\"records\": %zu, \"body_bytes\": %zu, "
                  "\"sync_every_n\": %zu, \"segment_mb\": %zu, \"seed\": %llu, "
                  "\"reps\": %zu, \"framed_bytes\": %llu},\n"
                  "  \"baseline\": {\"append_ms\": %.2f, "
                  "\"records_per_sec\": %.1f, \"mb_per_sec\": %.2f},\n",
                  args.records, args.body_bytes, args.sync_every_n,
                  args.segment_mb, static_cast<unsigned long long>(args.seed),
                  args.reps,
                  static_cast<unsigned long long>(framed_bytes), baseline_ms,
                  tape.size() / (baseline_ms / 1000.0),
                  mb / (baseline_ms / 1000.0));
    json += buf;
  }
  json += "  \"policies\": [\n";
  for (size_t i = 0; i < rows.size(); ++i) {
    const PolicyRow& r = rows[i];
    char buf[512];
    std::snprintf(
        buf, sizeof(buf),
        "    {\"policy\": \"%s\", \"append_ms\": %.2f, "
        "\"records_per_sec\": %.1f, \"mb_per_sec\": %.2f, "
        "\"overhead_vs_memory\": %.4f, \"segments\": %llu, "
        "\"replay_ms\": %.2f, \"replay_records_per_sec\": %.1f}%s\n",
        r.name.c_str(), r.append_ms, r.records_per_sec, r.mb_per_sec,
        r.overhead_vs_memory, static_cast<unsigned long long>(r.segments),
        r.replay_ms, r.replay_records_per_sec,
        i + 1 == rows.size() ? "" : ",");
    json += buf;
  }
  json += "  ],\n";
  {
    char buf[640];
    std::snprintf(
        buf, sizeof(buf),
        "  \"ingest\": {\"packets\": %zu, \"retrains\": %llu, "
        "\"policy\": \"every-n\", \"in_memory_ms\": %.2f, "
        "\"wal_only_ms\": %.2f, \"wal_only_overhead\": %.4f, "
        "\"full_ms\": %.2f, \"full_overhead\": %.4f, "
        "\"snapshot_ms\": %.2f}\n",
        ingest_n, static_cast<unsigned long long>(mem_server->feed_version()),
        ingest_mem_ms, wal_only.total_ms, wal_only.overhead, full.total_ms,
        full.overhead, full.snapshot_ms);
    json += buf;
  }
  json += "}\n";

  std::FILE* f = std::fopen(args.out.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", args.out.c_str());
    return 2;
  }
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  std::printf("\nwrote %s\n", args.out.c_str());
  return selfcheck_failed ? 1 : 0;
}
