// Micro-benchmarks (google-benchmark) for the substrate primitives the
// pipeline leans on: hashing, edit distance, compression/NCD, Aho–Corasick
// matching, suffix-automaton token extraction, and clustering.

#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "compress/compressor.h"
#include "compress/ncd.h"
#include "core/distance.h"
#include "core/hcluster.h"
#include "core/payload_check.h"
#include "crypto/md5.h"
#include "crypto/sha1.h"
#include "match/aho_corasick.h"
#include "text/edit_distance.h"
#include "text/token_extract.h"
#include "util/rng.h"

namespace {

using namespace leakdet;

std::string RandomBytes(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::string s;
  s.reserve(n);
  for (size_t i = 0; i < n; ++i) s += static_cast<char>(rng.UniformInt(256));
  return s;
}

std::string HttpLikeText(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::string s;
  while (s.size() < n) {
    s += "GET /gampad/ads?app_id=" + rng.RandomHex(16) +
         "&sdk=2.1.3&fmt=banner320x50&dc_uid=" + rng.RandomHex(32) +
         "&r=" + rng.RandomHex(8) + " HTTP/1.1\n";
  }
  s.resize(n);
  return s;
}

void BM_Md5(benchmark::State& state) {
  std::string data = RandomBytes(static_cast<size_t>(state.range(0)), 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::Md5Hex(data));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Md5)->Arg(64)->Arg(1024)->Arg(65536);

void BM_Sha1(benchmark::State& state) {
  std::string data = RandomBytes(static_cast<size_t>(state.range(0)), 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::Sha1Hex(data));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Sha1)->Arg(64)->Arg(1024)->Arg(65536);

void BM_EditDistanceHosts(benchmark::State& state) {
  std::string a = "googleads.g.doubleclick.net";
  std::string b = "pagead2.googlesyndication.com";
  for (auto _ : state) {
    benchmark::DoNotOptimize(text::EditDistance(a, b));
  }
}
BENCHMARK(BM_EditDistanceHosts);

void BM_CompressHttp(benchmark::State& state) {
  auto compressor = std::move(
      *compress::MakeCompressor(state.range(1) == 0 ? "lzw" : "lz77h"));
  std::string data = HttpLikeText(static_cast<size_t>(state.range(0)), 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(compressor->CompressedSize(data));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_CompressHttp)
    ->Args({512, 0})
    ->Args({4096, 0})
    ->Args({512, 1})
    ->Args({4096, 1});

void BM_NcdPair(benchmark::State& state) {
  auto compressor = std::move(*compress::MakeCompressor("lzw"));
  std::string a = HttpLikeText(400, 4);
  std::string b = HttpLikeText(400, 5);
  for (auto _ : state) {
    // Fresh calculator per iteration batch would hide caching; keep one and
    // vary nothing — this measures the cached-singles fast path the distance
    // matrix actually hits.
    compress::NcdCalculator ncd(compressor.get());
    benchmark::DoNotOptimize(ncd.Ncd(a, b));
  }
}
BENCHMARK(BM_NcdPair);

void BM_AhoCorasickScan(benchmark::State& state) {
  Rng rng(6);
  std::vector<std::string> patterns;
  for (int i = 0; i < state.range(0); ++i) {
    patterns.push_back(rng.RandomHex(12));
  }
  match::AhoCorasick ac(patterns);
  std::string text = HttpLikeText(4096, 7);
  std::vector<bool> seen(patterns.size());
  for (auto _ : state) {
    std::fill(seen.begin(), seen.end(), false);
    ac.MarkPresent(text, &seen);
    benchmark::DoNotOptimize(seen);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 4096);
}
BENCHMARK(BM_AhoCorasickScan)->Arg(16)->Arg(256)->Arg(2048);

void BM_TokenExtract(benchmark::State& state) {
  Rng rng(8);
  std::vector<std::string> samples;
  for (int i = 0; i < state.range(0); ++i) {
    samples.push_back("GET /adpv2/get?app_id=" + rng.RandomHex(12) +
                      "&aid=9774d56d682e549c&imei=352099001761481&r=" +
                      rng.RandomHex(8) + " HTTP/1.1\nsid=" + rng.RandomHex(8) +
                      "\n");
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(text::ExtractInvariantTokens(samples));
  }
}
BENCHMARK(BM_TokenExtract)->Arg(2)->Arg(8)->Arg(64);

void BM_ClusterGroupAverage(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  Rng rng(9);
  core::DistanceMatrix m(n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      m.set(i, j, rng.UniformDouble() * 6);
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::ClusterGroupAverage(m));
  }
}
BENCHMARK(BM_ClusterGroupAverage)->Arg(50)->Arg(200)->Arg(500);

void BM_PayloadCheck(benchmark::State& state) {
  core::DeviceTokens tokens;
  tokens.android_id = "9774d56d682e549c";
  tokens.imei = "352099001761481";
  tokens.imsi = "440100123456789";
  tokens.sim_serial = "8981100022313616843";
  tokens.carrier = "NTT DOCOMO";
  core::PayloadCheck check({tokens});
  core::HttpPacket packet;
  packet.request_line = HttpLikeText(300, 10);
  for (auto _ : state) {
    benchmark::DoNotOptimize(check.IsSensitive(packet));
  }
}
BENCHMARK(BM_PayloadCheck);

}  // namespace

BENCHMARK_MAIN();
