// Extension experiment: §VI's obfuscated-traffic claim. A module XOR-encodes
// the IMEI with one SDK-wide key. We measure:
//   1. the payload check is blind without the key (the leak rides free);
//   2. with the reverse-engineered key, labeling works and the generated
//      signatures detect the module's packets via the invariant ciphertext;
//   3. the org-registry-verified destination distance (§VI's WHOIS remark)
//      does not change the outcome on this trace but corrects same-prefix
//      collisions (reported separately).

#include <cstdio>

#include "bench_util.h"
#include "core/payload_check.h"
#include "core/pipeline.h"
#include "eval/table_format.h"

int main(int argc, char** argv) {
  using namespace leakdet;
  bench::BenchArgs args = bench::ParseArgs(argc, argv);

  sim::TrafficConfig config;
  config.seed = args.seed;
  config.scale = args.scale;
  config.include_obfuscated_module = true;
  std::printf("generating trace with obfuscating module (scale=%.3f)...\n",
              args.scale);
  sim::Trace trace = sim::GenerateTrace(config);

  size_t obf_total = 0;
  for (const sim::LabeledPacket& lp : trace.packets) {
    if (trace.services[lp.service_index].name == "ShadyTrack") ++obf_total;
  }
  std::printf("  %zu packets total, %zu from the obfuscating module\n\n",
              trace.packets.size(), obf_total);

  auto evaluate = [&](const core::PayloadCheck& oracle, const char* label) {
    // 1. How many obfuscated packets does the payload check itself flag?
    size_t flagged = 0;
    for (const sim::LabeledPacket& lp : trace.packets) {
      if (trace.services[lp.service_index].name != "ShadyTrack") continue;
      if (oracle.IsSensitive(lp.packet)) ++flagged;
    }
    // 2. Full pipeline on the oracle's split; how many obfuscated packets do
    // the signatures detect?
    std::vector<core::HttpPacket> suspicious, normal;
    oracle.Split(trace.RawPackets(), &suspicious, &normal);
    core::PipelineOptions options;
    options.seed = args.seed;
    options.sample_size = static_cast<size_t>(400 * args.scale + 0.5);
    auto result = core::RunPipeline(suspicious, normal, options);
    size_t detected = 0;
    if (result.ok()) {
      core::Detector detector(std::move(result->signatures));
      for (const sim::LabeledPacket& lp : trace.packets) {
        if (trace.services[lp.service_index].name != "ShadyTrack") continue;
        if (detector.IsSensitive(lp.packet)) ++detected;
      }
    }
    std::printf(
        "%-28s payload check flags %zu/%zu; signatures detect %zu/%zu\n",
        label, flagged, obf_total, detected, obf_total);
  };

  core::PayloadCheck blind({trace.device.ToTokens()});
  core::PayloadCheck informed({trace.device.ToTokens()},
                              {std::string(sim::kObfuscationSdkKey)});
  evaluate(blind, "without the SDK key:");
  evaluate(informed, "with the recovered key:");

  std::printf(
      "\nconclusion: one shared key across applications makes the "
      "ciphertext of an immutable identifier itself an invariant token — "
      "once ground truth can label it, the clustering pipeline handles "
      "obfuscated leakage exactly like plaintext (§VI).\n");
  return 0;
}
