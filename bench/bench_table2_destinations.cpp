// Reproduces Table II: "HTTP packet destinations" — packets and apps per
// destination domain, paper vs measured.

#include <cstdio>
#include <map>

#include "bench_util.h"
#include "eval/analysis.h"
#include "eval/table_format.h"
#include "sim/paper_tables.h"

int main(int argc, char** argv) {
  using namespace leakdet;
  bench::BenchArgs args = bench::ParseArgs(argc, argv);
  sim::Trace trace = bench::GenerateBenchTrace(args);

  std::map<std::string, eval::DomainStats> measured;
  for (const eval::DomainStats& s : eval::ComputeDomainStats(trace)) {
    measured[s.domain] = s;
  }

  std::printf("Table II — HTTP packet destinations (top services)\n");
  eval::TablePrinter table({"HTTP Host Destination", "# Packets (paper)",
                            "# Packets (ours)", "# Apps (paper)",
                            "# Apps (ours)"});
  long paper_pkts_total = 0, our_pkts_total = 0;
  for (const auto& row : sim::kPaperTable2) {
    std::string domain(row.domain);
    const eval::DomainStats& m = measured[domain];
    int paper_pkts = static_cast<int>(row.packets * args.scale + 0.5);
    int paper_apps = static_cast<int>(row.apps * args.scale + 0.5);
    paper_pkts_total += paper_pkts;
    our_pkts_total += static_cast<long>(m.packets);
    table.AddRow({domain, std::to_string(paper_pkts),
                  std::to_string(m.packets), std::to_string(paper_apps),
                  std::to_string(m.apps)});
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf("named-service packets: paper %ld vs ours %ld\n",
              paper_pkts_total, our_pkts_total);
  std::printf("total packets: paper %d vs ours %zu\n",
              static_cast<int>(sim::kPaperTotalPackets * args.scale + 0.5),
              trace.packets.size());
  return 0;
}
