// Cluster benchmark: the two latencies a replicated gateway deployment
// cares about, written to BENCH_cluster.json.
//
// 1. Replication lag: wall time for one follower SyncWithLeader round —
//    mirror the leader's WAL suffix over the feed protocol, adopt the
//    epoch, install the snapshot — measured per epoch of fresh training.
// 2. Failover time: wall time for ClusterNode::Promote() on a caught-up
//    follower after the leader stops — snapshot restore plus WAL-suffix
//    replay through the training path, until the node is serving as leader.
//
// The transport is an in-process ScriptedListener and the disks are
// in-memory ScriptedDirs, so the numbers isolate the replication/recovery
// code from socket and filesystem noise, and every repetition does
// identical (seeded) work. Timed phases repeat --reps times; the fastest
// repetition is reported (noise is strictly additive).
//
// Usage:
//   bench_cluster [--epochs=6] [--retrain=48] [--reps=3] [--seed=4242]
//                 [--out=BENCH_cluster.json] [--selfcheck]
//
// --selfcheck asserts correctness on the benched run instead of timing:
// the follower's log must mirror the leader's exactly and the promoted
// follower's serving feed must be byte-identical to the leader's. Exits
// nonzero on violation; used by the `perf` ctest smoke run.

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "cluster/node.h"
#include "core/payload_check.h"
#include "gateway/trainer.h"
#include "net/stream.h"
#include "testing/chaos_util.h"
#include "testing/packet_gen.h"
#include "testing/scripted_conn.h"
#include "testing/scripted_file.h"
#include "util/rng.h"

namespace {

using namespace leakdet;

struct Args {
  size_t epochs = 6;
  size_t retrain = 48;
  size_t reps = 3;
  uint64_t seed = 4242;
  std::string out = "BENCH_cluster.json";
  bool selfcheck = false;
};

Args ParseArgs(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strncmp(a, "--epochs=", 9) == 0) {
      args.epochs = static_cast<size_t>(std::atoll(a + 9));
    } else if (std::strncmp(a, "--retrain=", 10) == 0) {
      args.retrain = static_cast<size_t>(std::atoll(a + 10));
    } else if (std::strncmp(a, "--reps=", 7) == 0) {
      args.reps = static_cast<size_t>(std::atoll(a + 7));
      if (args.reps == 0) args.reps = 1;
    } else if (std::strncmp(a, "--seed=", 7) == 0) {
      args.seed = static_cast<uint64_t>(std::atoll(a + 7));
    } else if (std::strncmp(a, "--out=", 6) == 0) {
      args.out = a + 6;
    } else if (std::strcmp(a, "--selfcheck") == 0) {
      args.selfcheck = true;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", a);
      std::exit(2);
    }
  }
  if (args.epochs == 0) args.epochs = 1;
  return args;
}

double MillisSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(
             std::chrono::steady_clock::now() - start)
      .count();
}

struct RepResult {
  double sync_total_ms = 0;   // all replication rounds of the rep
  double sync_worst_ms = 0;   // slowest single round
  double failover_ms = 0;
  uint64_t records = 0;       // records mirrored across the rep
  uint64_t snapshots = 0;
  bool mirror_ok = false;     // follower log == leader log after every round
  bool feed_identical = false;
  uint64_t failover_epoch = 0;
};

}  // namespace

int main(int argc, char** argv) {
  Args args = ParseArgs(argc, argv);

  // Seeded device fleet shared by every repetition.
  Rng token_rng(args.seed);
  std::vector<core::DeviceTokens> fleet(2);
  for (auto& device : fleet) {
    device.android_id = token_rng.RandomHex(16);
    device.imei = token_rng.RandomDigits(15);
  }
  core::PayloadCheck oracle(fleet);
  std::vector<std::string> tokens;
  for (const auto& device : fleet) {
    tokens.push_back(device.android_id);
    tokens.push_back(device.imei);
  }

  core::SignatureServer::Options server_options;
  server_options.retrain_after = args.retrain;
  server_options.pipeline.sample_size = 16;
  server_options.pipeline.normal_corpus_size = 64;
  server_options.pipeline.num_threads = 1;

  RepResult best;
  best.sync_total_ms = -1;
  bool all_checks_ok = true;
  for (size_t rep = 0; rep < args.reps; ++rep) {
    RepResult result;
    testing::ScriptedDir leader_dir(args.seed + rep * 2);
    testing::ScriptedDir follower_dir(args.seed + rep * 2 + 1);

    auto make_node = [&](testing::ScriptedDir* dir, const char* id)
        -> StatusOr<std::unique_ptr<cluster::ClusterNode>> {
      cluster::NodeOptions options;
      options.node_id = id;
      options.dir = dir;
      options.oracle = &oracle;
      options.server = server_options;
      options.gateway.num_shards = 1;
      options.gateway.queue_capacity = 64;
      options.train_from_gateway = false;
      return cluster::ClusterNode::Start(std::move(options));
    };

    auto leader = make_node(&leader_dir, "leader");
    auto follower = make_node(&follower_dir, "follower");
    if (!leader.ok() || !follower.ok()) {
      std::fprintf(stderr, "node start failed\n");
      return 1;
    }
    if (!(*leader)->Promote().ok()) return 1;
    auto listener = std::make_unique<testing::ScriptedListener>();
    testing::ScriptedListener* listener_ptr = listener.get();
    if (!(*leader)->ServeReplication(std::move(listener)).ok()) return 1;
    auto connect = [&]() -> StatusOr<std::unique_ptr<net::Stream>> {
      std::unique_ptr<testing::ScriptedStream> stream =
          listener_ptr->Connect();
      (void)stream->SetReadTimeout(5000);
      return StatusOr<std::unique_ptr<net::Stream>>(std::move(stream));
    };

    // The identical seeded training stream every repetition.
    Rng rng(args.seed * 1000003);
    gateway::TrainerLoop* trainer = (*leader)->trainer();
    uint64_t offered = 0;
    result.mirror_ok = true;
    for (size_t epoch = 1; epoch <= args.epochs; ++epoch) {
      for (size_t i = 0; i < args.retrain; ++i) {
        core::HttpPacket packet = testing::GeneratePacket(&rng, tokens, 1.0);
        gateway::Verdict verdict;
        verdict.sensitive = true;
        if (trainer->Offer(packet, verdict)) ++offered;
        if (i % 2 == 1) {
          core::HttpPacket normal = testing::GeneratePacket(&rng, tokens, 0.0);
          gateway::Verdict clean;
          if (trainer->Offer(normal, clean)) ++offered;
        }
      }
      if (!testing::WaitUntil([&] {
            return trainer->items_processed() >= offered &&
                   (*leader)->epoch_version() >= epoch;
          })) {
        std::fprintf(stderr, "epoch %zu never published\n", epoch);
        return 1;
      }
      if (!(*leader)->store().Sync().ok()) return 1;
      const uint64_t gap =
          (*leader)->wal_last_sequence() - (*follower)->wal_last_sequence();

      auto start = std::chrono::steady_clock::now();
      auto sync = (*follower)->SyncWithLeader(connect);
      const double round_ms = MillisSince(start);
      if (!sync.ok()) {
        std::fprintf(stderr, "sync failed: %s\n",
                     std::string(sync.status().message()).c_str());
        return 1;
      }
      result.sync_total_ms += round_ms;
      if (round_ms > result.sync_worst_ms) result.sync_worst_ms = round_ms;
      result.records += sync->records_applied;
      result.snapshots += sync->snapshot_installed ? 1 : 0;
      if (sync->records_applied != gap ||
          (*follower)->wal_last_sequence() != (*leader)->wal_last_sequence() ||
          (*follower)->epoch_version() != (*leader)->epoch_version()) {
        result.mirror_ok = false;
      }
    }

    // Failover: leader gone, follower must serve the same feed from its own
    // durable state.
    const std::string leader_feed =
        (*leader)->gateway().current_set()->set().Serialize();
    const uint64_t leader_epoch = (*leader)->epoch_version();
    (*leader)->StopServing();
    auto start = std::chrono::steady_clock::now();
    if (!(*follower)->Promote().ok()) {
      std::fprintf(stderr, "promote failed\n");
      return 1;
    }
    result.failover_ms = MillisSince(start);
    result.failover_epoch = (*follower)->epoch_version();
    auto promoted = (*follower)->gateway().current_set();
    result.feed_identical = promoted != nullptr &&
                            promoted->version() == leader_epoch &&
                            promoted->set().Serialize() == leader_feed;
    (*follower)->StopServing();

    std::printf(
        "rep %zu: sync_total=%.3fms sync_worst=%.3fms records=%llu "
        "failover=%.3fms mirror=%s feed=%s\n",
        rep + 1, result.sync_total_ms, result.sync_worst_ms,
        static_cast<unsigned long long>(result.records), result.failover_ms,
        result.mirror_ok ? "ok" : "DIVERGED",
        result.feed_identical ? "identical" : "DIVERGED");
    if (!result.mirror_ok || !result.feed_identical) all_checks_ok = false;
    if (best.sync_total_ms < 0 ||
        result.sync_total_ms + result.failover_ms <
            best.sync_total_ms + best.failover_ms) {
      best = result;
    }
  }

  if (args.selfcheck) {
    std::printf("selfcheck: %s\n", all_checks_ok ? "ok" : "FAILED");
  }

  const double rounds = static_cast<double>(args.epochs);
  const double records_per_s =
      best.sync_total_ms > 0
          ? static_cast<double>(best.records) / (best.sync_total_ms / 1000.0)
          : 0;
  std::string json = "{\n";
  char buf[320];
  std::snprintf(buf, sizeof(buf),
                "  \"epochs\": %zu,\n  \"retrain\": %zu,\n"
                "  \"records_replicated\": %llu,\n"
                "  \"snapshots_installed\": %llu,\n",
                args.epochs, args.retrain,
                static_cast<unsigned long long>(best.records),
                static_cast<unsigned long long>(best.snapshots));
  json += buf;
  std::snprintf(buf, sizeof(buf),
                "  \"replication_round_mean_ms\": %.3f,\n"
                "  \"replication_round_worst_ms\": %.3f,\n"
                "  \"replication_records_per_s\": %.0f,\n",
                best.sync_total_ms / rounds, best.sync_worst_ms,
                records_per_s);
  json += buf;
  std::snprintf(buf, sizeof(buf),
                "  \"failover_ms\": %.3f,\n  \"failover_epoch\": %llu\n",
                best.failover_ms,
                static_cast<unsigned long long>(best.failover_epoch));
  json += buf;
  json += "}\n";
  if (FILE* f = std::fopen(args.out.c_str(), "w"); f != nullptr) {
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    std::printf("wrote %s\n", args.out.c_str());
  } else {
    std::fprintf(stderr, "cannot write %s\n", args.out.c_str());
    return 1;
  }
  return all_checks_ok ? 0 : 1;
}
