// Reproduces Table III: "Sensitive Information" — per-type packet, app, and
// destination counts, measured with the PayloadCheck oracle over the trace.

#include <cstdio>

#include "bench_util.h"
#include "eval/analysis.h"
#include "eval/table_format.h"
#include "sim/paper_tables.h"

int main(int argc, char** argv) {
  using namespace leakdet;
  bench::BenchArgs args = bench::ParseArgs(argc, argv);
  sim::Trace trace = bench::GenerateBenchTrace(args);

  size_t suspicious = 0, normal = 0;
  auto stats = eval::ComputeSensitiveStats(trace, &suspicious, &normal);

  std::printf("Table III — sensitive information mix\n");
  eval::TablePrinter table({"Sensitive Information", "Pkts (paper)",
                            "Pkts (ours)", "Apps (paper)", "Apps (ours)",
                            "Dests (paper)", "Dests (ours)"});
  for (const auto& row : sim::kPaperTable3) {
    const auto& m = stats[static_cast<size_t>(row.type)];
    table.AddRow({std::string(core::SensitiveTypeName(row.type)),
                  std::to_string(static_cast<int>(row.packets * args.scale +
                                                  0.5)),
                  std::to_string(m.packets),
                  std::to_string(static_cast<int>(row.apps * args.scale +
                                                  0.5)),
                  std::to_string(m.apps),
                  std::to_string(static_cast<int>(row.destinations *
                                                      args.scale +
                                                  0.5)),
                  std::to_string(m.destinations)});
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf("suspicious group: paper %d vs ours %zu\n",
              static_cast<int>(sim::kPaperSensitivePackets * args.scale + 0.5),
              suspicious);
  std::printf("normal group:     paper %d vs ours %zu\n",
              static_cast<int>(sim::kPaperNormalPackets * args.scale + 0.5),
              normal);
  std::printf(
      "\nnote: apps/destinations columns scale sublinearly with --scale; "
      "compare them at scale 1.0. The paper's ANDROID_ID row (7,590 packets "
      "across only 21 apps) conflicts with its own §III-B host list, which "
      "attributes raw ANDROID_ID to services embedded in hundreds of apps; "
      "we calibrate to the packet counts (see DESIGN.md).\n");
  return 0;
}
