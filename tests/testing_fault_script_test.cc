#include "testing/fault_script.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

namespace leakdet::testing {
namespace {

TEST(FaultScriptTest, BuiltinRegistryHasTheStandingSchedules) {
  std::vector<std::string> names = FaultScript::BuiltinNames();
  ASSERT_EQ(names.size(), 4u);
  for (const std::string& name : names) {
    auto script = FaultScript::Builtin(name);
    ASSERT_TRUE(script.ok()) << name;
    EXPECT_EQ(script->name(), name);
  }
  EXPECT_FALSE(FaultScript::Builtin("no-such-schedule").ok());
}

TEST(FaultScriptTest, SerializeParseRoundTrip) {
  auto original = FaultScript::Builtin("reset-storm");
  ASSERT_TRUE(original.ok());
  original->set_seed(12345);
  auto reparsed = FaultScript::Parse(original->Serialize());
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(reparsed->name(), original->name());
  EXPECT_EQ(reparsed->seed(), 12345u);
  const FaultProfile& a = original->profile();
  const FaultProfile& b = reparsed->profile();
  EXPECT_DOUBLE_EQ(a.short_read, b.short_read);
  EXPECT_DOUBLE_EQ(a.short_write, b.short_write);
  EXPECT_DOUBLE_EQ(a.eintr, b.eintr);
  EXPECT_DOUBLE_EQ(a.timeout, b.timeout);
  EXPECT_DOUBLE_EQ(a.reset, b.reset);
  EXPECT_DOUBLE_EQ(a.delay, b.delay);
  EXPECT_DOUBLE_EQ(a.corrupt, b.corrupt);
  EXPECT_EQ(a.short_chunk, b.short_chunk);
  EXPECT_EQ(a.max_eintr, b.max_eintr);
  EXPECT_EQ(a.delay_ns, b.delay_ns);
  EXPECT_EQ(a.trainer_kill_every, b.trainer_kill_every);
  EXPECT_EQ(a.burst_multiplier, b.burst_multiplier);
}

TEST(FaultScriptTest, ParseAcceptsCommentsAndBlankLines) {
  auto script = FaultScript::Parse(
      "# a comment\n"
      "\n"
      "name = spaced \n"
      "seed=9\n"
      "short_read = 0.5\n");
  ASSERT_TRUE(script.ok());
  EXPECT_EQ(script->name(), "spaced");
  EXPECT_EQ(script->seed(), 9u);
  EXPECT_DOUBLE_EQ(script->profile().short_read, 0.5);
}

TEST(FaultScriptTest, UnknownKeyIsAnError) {
  auto script = FaultScript::Parse("name=x\nshort_raed=0.5\n");
  ASSERT_FALSE(script.ok());
  EXPECT_NE(std::string(script.status().message()).find("unknown key"),
            std::string::npos);
}

TEST(FaultScriptTest, BadValuesAreErrorsNotSilentDefaults) {
  EXPECT_FALSE(FaultScript::Parse("short_read=1.5\n").ok());  // > 1
  EXPECT_FALSE(FaultScript::Parse("short_read=oops\n").ok());
  EXPECT_FALSE(FaultScript::Parse("seed=12x\n").ok());
  EXPECT_FALSE(FaultScript::Parse("just a line\n").ok());  // no '='
}

TEST(FaultScriptTest, PlanDecisionsAreDeterministicPerConnection) {
  auto script = FaultScript::Builtin("short-io");
  ASSERT_TRUE(script.ok());
  for (uint64_t conn = 0; conn < 4; ++conn) {
    FaultPlan a = script->PlanForConnection(conn);
    FaultPlan b = script->PlanForConnection(conn);
    for (int i = 0; i < 200; ++i) {
      FaultPlan::ReadDecision ra = a.NextRead();
      FaultPlan::ReadDecision rb = b.NextRead();
      EXPECT_EQ(ra.eintrs, rb.eintrs);
      EXPECT_EQ(ra.timeout, rb.timeout);
      EXPECT_EQ(ra.reset, rb.reset);
      EXPECT_EQ(ra.delay_ns, rb.delay_ns);
      EXPECT_EQ(ra.max_bytes, rb.max_bytes);
      EXPECT_EQ(ra.corrupt, rb.corrupt);
      FaultPlan::WriteDecision wa = a.NextWrite();
      FaultPlan::WriteDecision wb = b.NextWrite();
      EXPECT_EQ(wa.eintrs, wb.eintrs);
      EXPECT_EQ(wa.reset, wb.reset);
      EXPECT_EQ(wa.chunk, wb.chunk);
      EXPECT_EQ(wa.corrupt, wb.corrupt);
    }
  }
}

TEST(FaultScriptTest, DifferentSeedsGiveDifferentDecisionStreams) {
  auto a = FaultScript::Builtin("short-io");
  auto b = FaultScript::Builtin("short-io");
  ASSERT_TRUE(a.ok() && b.ok());
  b->set_seed(999);
  FaultPlan plan_a = a->PlanForConnection(0);
  FaultPlan plan_b = b->PlanForConnection(0);
  int differences = 0;
  for (int i = 0; i < 200; ++i) {
    FaultPlan::ReadDecision ra = plan_a.NextRead();
    FaultPlan::ReadDecision rb = plan_b.NextRead();
    if (ra.eintrs != rb.eintrs || ra.max_bytes != rb.max_bytes ||
        ra.delay_ns != rb.delay_ns) {
      ++differences;
    }
  }
  EXPECT_GT(differences, 0);
}

TEST(FaultScriptTest, DefaultPlanInjectsNothing) {
  FaultPlan plan;  // the faithful-transport plan
  for (int i = 0; i < 50; ++i) {
    FaultPlan::ReadDecision r = plan.NextRead();
    EXPECT_EQ(r.eintrs, 0u);
    EXPECT_FALSE(r.timeout);
    EXPECT_FALSE(r.reset);
    EXPECT_EQ(r.delay_ns, 0u);
    EXPECT_EQ(r.max_bytes, SIZE_MAX);
    FaultPlan::WriteDecision w = plan.NextWrite();
    EXPECT_EQ(w.eintrs, 0u);
    EXPECT_FALSE(w.reset);
    EXPECT_EQ(w.chunk, SIZE_MAX);
  }
}

TEST(FaultScriptTest, LoadResolvesFilesThenBuiltins) {
  // A schedule file wins over builtin resolution.
  std::string path = ::testing::TempDir() + "/leakdet_fault_script_test.fault";
  {
    std::ofstream out(path);
    out << "name=from-file\nseed=77\nreset=0.25\n";
  }
  auto from_file = FaultScript::Load(path);
  ASSERT_TRUE(from_file.ok());
  EXPECT_EQ(from_file->name(), "from-file");
  EXPECT_EQ(from_file->seed(), 77u);
  EXPECT_DOUBLE_EQ(from_file->profile().reset, 0.25);
  std::remove(path.c_str());

  auto builtin = FaultScript::Load("swap-crash");
  ASSERT_TRUE(builtin.ok());
  EXPECT_EQ(builtin->profile().trainer_kill_every, 2u);

  EXPECT_FALSE(FaultScript::Load("/no/such/file.fault").ok());
}

}  // namespace
}  // namespace leakdet::testing
