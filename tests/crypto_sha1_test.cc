#include "crypto/sha1.h"

#include <gtest/gtest.h>

#include <string>

namespace leakdet::crypto {
namespace {

// FIPS 180 / RFC 3174 test vectors.
TEST(Sha1Test, StandardVectors) {
  EXPECT_EQ(Sha1Hex(""), "da39a3ee5e6b4b0d3255bfef95601890afd80709");
  EXPECT_EQ(Sha1Hex("abc"), "a9993e364706816aba3e25717850c26c9cd0d89d");
  EXPECT_EQ(
      Sha1Hex("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
      "84983e441c3bd26ebaae4aa1f95129e5e54670f1");
  EXPECT_EQ(Sha1Hex("The quick brown fox jumps over the lazy dog"),
            "2fd4e1c67a2d28fced849ee1bb76e7391b93eb12");
}

TEST(Sha1Test, PaddingBoundaryLengths) {
  EXPECT_EQ(Sha1Hex(std::string(55, 'a')),
            "c1c8bbdc22796e28c0e15163d20899b65621d65a");
  EXPECT_EQ(Sha1Hex(std::string(64, 'a')),
            "0098ba824b5c16427bd7a1122a5a442a25ec644d");
}

TEST(Sha1Test, MillionAs) {
  Sha1 sha;
  std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) sha.Update(chunk);
  auto digest = sha.Finish();
  std::string hex;
  for (uint8_t b : digest) {
    char buf[3];
    snprintf(buf, sizeof(buf), "%02x", b);
    hex += buf;
  }
  EXPECT_EQ(hex, "34aa973cd4c4daa4f61eeb2bdbad27316534016f");
}

TEST(Sha1Test, UpperCaseVariant) {
  EXPECT_EQ(Sha1HexUpper("abc"), "A9993E364706816ABA3E25717850C26C9CD0D89D");
}

TEST(Sha1Test, StreamingMatchesOneShot) {
  std::string data;
  for (int i = 0; i < 777; ++i) data += static_cast<char>(i * 31 % 256);
  for (size_t split : {1ul, 63ul, 64ul, 65ul, 300ul}) {
    Sha1 sha;
    sha.Update(std::string_view(data).substr(0, split));
    sha.Update(std::string_view(data).substr(split));
    auto streamed = sha.Finish();
    Sha1 oneshot;
    oneshot.Update(data);
    EXPECT_EQ(streamed, oneshot.Finish()) << "split=" << split;
  }
}

TEST(Sha1Test, ResetAllowsReuse) {
  Sha1 sha;
  sha.Update("junk");
  sha.Reset();
  sha.Update("abc");
  auto digest = sha.Finish();
  EXPECT_EQ(digest[0], 0xa9);
  EXPECT_EQ(digest[19], 0x9d);
}

TEST(Sha1Test, DistinctInputsDistinctDigests) {
  EXPECT_NE(Sha1Hex("354406061234567"), Sha1Hex("354406061234568"));
}

}  // namespace
}  // namespace leakdet::crypto
