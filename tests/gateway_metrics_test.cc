#include "gateway/metrics.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace leakdet::gateway {
namespace {

TEST(CounterTest, StartsAtZeroAndAccumulates) {
  Counter c;
  EXPECT_EQ(c.Value(), 0u);
  c.Inc();
  c.Inc(41);
  EXPECT_EQ(c.Value(), 42u);
}

TEST(CounterTest, ConcurrentIncrementsAreExact) {
  Counter c;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kPerThread; ++i) c.Inc();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.Value(), static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST(HistogramTest, BucketsObservationsByPowerOfTwo) {
  Histogram h;
  h.Observe(0);    // bucket 0
  h.Observe(1);    // bucket 0 ([1,2))
  h.Observe(2);    // bucket 1
  h.Observe(3);    // bucket 1
  h.Observe(800);  // bucket 9 ([512,1024))
  Histogram::Snapshot snap = h.Take();
  EXPECT_EQ(snap.count, 5u);
  EXPECT_EQ(snap.sum, 806u);
  EXPECT_EQ(snap.buckets[0], 2u);
  EXPECT_EQ(snap.buckets[1], 2u);
  EXPECT_EQ(snap.buckets[9], 1u);
}

TEST(HistogramTest, HugeValuesLandInLastBucket) {
  Histogram h;
  h.Observe(~uint64_t{0});
  Histogram::Snapshot snap = h.Take();
  EXPECT_EQ(snap.buckets[Histogram::kNumBuckets - 1], 1u);
}

TEST(HistogramTest, MeanAndQuantiles) {
  Histogram h;
  for (int i = 0; i < 90; ++i) h.Observe(100);   // bucket 6: [64,128)
  for (int i = 0; i < 10; ++i) h.Observe(5000);  // bucket 12: [4096,8192)
  Histogram::Snapshot snap = h.Take();
  EXPECT_NEAR(snap.Mean(), (90 * 100 + 10 * 5000) / 100.0, 1e-9);
  EXPECT_EQ(snap.Quantile(0.5), uint64_t{128});    // in the [64,128) bucket
  EXPECT_EQ(snap.Quantile(0.99), uint64_t{8192});  // tail bucket upper edge
}

TEST(HistogramTest, EmptySnapshotIsSane) {
  Histogram h;
  Histogram::Snapshot snap = h.Take();
  EXPECT_EQ(snap.count, 0u);
  EXPECT_EQ(snap.Mean(), 0.0);
  EXPECT_EQ(snap.Quantile(0.99), 0u);
}

TEST(MetricsRegistryTest, SameNameReturnsSameMetric) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("gateway.submitted");
  Counter* b = registry.GetCounter("gateway.submitted");
  EXPECT_EQ(a, b);
  a->Inc(5);
  EXPECT_EQ(b->Value(), 5u);
  EXPECT_NE(static_cast<void*>(registry.GetHistogram("gateway.submitted")),
            static_cast<void*>(a));  // separate namespace per metric kind
}

TEST(MetricsRegistryTest, TextDumpIsSortedAndComplete) {
  MetricsRegistry registry;
  registry.GetCounter("b.count")->Inc(2);
  registry.GetCounter("a.count")->Inc(1);
  registry.GetHistogram("c.latency")->Observe(100);
  std::string dump = registry.TextDump();
  size_t a = dump.find("a.count 1");
  size_t b = dump.find("b.count 2");
  size_t c = dump.find("c.latency count=1");
  ASSERT_NE(a, std::string::npos);
  ASSERT_NE(b, std::string::npos);
  ASSERT_NE(c, std::string::npos);
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
}

TEST(MetricsRegistryTest, PointersStableAcrossManyRegistrations) {
  MetricsRegistry registry;
  Counter* first = registry.GetCounter("first");
  for (int i = 0; i < 100; ++i) {
    registry.GetCounter("extra." + std::to_string(i));
  }
  first->Inc();
  EXPECT_EQ(registry.GetCounter("first"), first);
  EXPECT_EQ(first->Value(), 1u);
}

}  // namespace
}  // namespace leakdet::gateway
