// Property tests for the trace serialization formats over adversarial
// bytes: every generated packet — printable or not — must round-trip
// bit-exactly through JSONL, CSV, and the single-packet JSON used by the
// WAL, and malformed input must be rejected cleanly, never crash. Also the
// crash-atomicity regression for io::WriteFile.

#include "io/trace_io.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/payload_check.h"
#include "util/rng.h"

#include "test_seed.h"

namespace leakdet::io {
namespace {

/// Adversarial string: any byte value, with escapes-in-waiting ('"', '\\',
/// newlines, commas for CSV, NULs) over-represented.
std::string NastyString(Rng* rng, size_t max_len) {
  static const char kSpice[] = {'"', '\\', '\n', '\r', '\t', ',', '\0',
                                '{', '}',  '[',  ']',  ':',  '\x7f'};
  size_t len = static_cast<size_t>(rng->UniformInt(max_len + 1));
  std::string out;
  out.reserve(len);
  for (size_t i = 0; i < len; ++i) {
    if (rng->Bernoulli(0.3)) {
      out += kSpice[rng->UniformInt(sizeof(kSpice))];
    } else {
      out += static_cast<char>(rng->UniformInt(256));
    }
  }
  return out;
}

sim::LabeledPacket NastyPacket(Rng* rng) {
  sim::LabeledPacket labeled;
  labeled.packet.app_id = static_cast<uint32_t>(rng->Next());
  labeled.packet.destination.port = static_cast<uint16_t>(rng->Next());
  labeled.packet.destination.host = NastyString(rng, 40);
  labeled.packet.request_line = NastyString(rng, 120);
  labeled.packet.cookie = NastyString(rng, 80);
  labeled.packet.body = NastyString(rng, 200);
  size_t truths = static_cast<size_t>(rng->UniformInt(4));
  for (size_t i = 0; i < truths; ++i) {
    labeled.truth.push_back(static_cast<core::SensitiveType>(
        rng->UniformInt(core::kNumSensitiveTypes)));
  }
  return labeled;
}

TEST(TraceIoPropertyTest, JsonlRoundTripsAdversarialBytes) {
  const uint64_t seed = testing::TestSeed(811);
  SCOPED_TRACE(testing::SeedTrace(seed));
  Rng rng(seed);
  for (int round = 0; round < 50; ++round) {
    std::vector<sim::LabeledPacket> packets;
    size_t count = 1 + static_cast<size_t>(rng.UniformInt(8));
    for (size_t i = 0; i < count; ++i) packets.push_back(NastyPacket(&rng));

    std::string text = SerializeJsonl(packets);
    StatusOr<std::vector<sim::LabeledPacket>> parsed = ParseJsonl(text);
    ASSERT_TRUE(parsed.ok()) << "round " << round << ": "
                             << parsed.status().message();
    ASSERT_EQ(parsed->size(), packets.size());
    for (size_t i = 0; i < packets.size(); ++i) {
      EXPECT_EQ((*parsed)[i].packet, packets[i].packet) << "round " << round;
      EXPECT_EQ((*parsed)[i].truth, packets[i].truth);
    }
    // Canonical: re-serialization is bit-identical.
    EXPECT_EQ(SerializeJsonl(*parsed), text);
  }
}

TEST(TraceIoPropertyTest, CsvRoundTripsAdversarialBytes) {
  const uint64_t seed = testing::TestSeed(977);
  SCOPED_TRACE(testing::SeedTrace(seed));
  Rng rng(seed);
  for (int round = 0; round < 50; ++round) {
    std::vector<sim::LabeledPacket> packets;
    size_t count = 1 + static_cast<size_t>(rng.UniformInt(8));
    for (size_t i = 0; i < count; ++i) packets.push_back(NastyPacket(&rng));

    std::string text = SerializeCsv(packets);
    StatusOr<std::vector<sim::LabeledPacket>> parsed = ParseCsv(text);
    ASSERT_TRUE(parsed.ok()) << "round " << round << ": "
                             << parsed.status().message();
    ASSERT_EQ(parsed->size(), packets.size());
    for (size_t i = 0; i < packets.size(); ++i) {
      EXPECT_EQ((*parsed)[i].packet, packets[i].packet) << "round " << round;
      EXPECT_EQ((*parsed)[i].truth, packets[i].truth);
    }
  }
}

TEST(TraceIoPropertyTest, PacketJsonRoundTripsAdversarialBytes) {
  const uint64_t seed = testing::TestSeed(1013);
  SCOPED_TRACE(testing::SeedTrace(seed));
  Rng rng(seed);
  for (int round = 0; round < 200; ++round) {
    core::HttpPacket packet = NastyPacket(&rng).packet;
    std::string line = SerializePacketJson(packet);
    // The WAL embeds this in binary frames: it must never contain a raw
    // newline, whatever bytes the packet held.
    EXPECT_EQ(line.find('\n'), std::string::npos);
    StatusOr<core::HttpPacket> parsed = ParsePacketJson(line);
    ASSERT_TRUE(parsed.ok()) << "round " << round << ": "
                             << parsed.status().message();
    EXPECT_EQ(*parsed, packet) << "round " << round;
  }
}

TEST(TraceIoPropertyTest, MalformedInputIsRejectedNotCrashed) {
  const uint64_t seed = testing::TestSeed(1201);
  SCOPED_TRACE(testing::SeedTrace(seed));
  Rng rng(seed);
  // Purely random bytes: any answer is fine, crashing or hanging is not.
  for (int round = 0; round < 300; ++round) {
    std::string noise = NastyString(&rng, 200);
    (void)ParseJsonl(noise);
    (void)ParseCsv(noise);
    (void)ParsePacketJson(noise);
  }
  // Structured-but-broken lines must be rejected.
  const char* kBroken[] = {
      "{",
      "{}",
      "{\"app\":1",
      "{\"app\":\"x\",\"host\":\"h\",\"ip\":\"1.2.3.4\",\"port\":80,"
      "\"rline\":\"GET\",\"cookie\":\"\",\"body\":\"\"}",
      "{\"app\":1,\"host\":\"h\",\"ip\":\"nope\",\"port\":80,"
      "\"rline\":\"GET\",\"cookie\":\"\",\"body\":\"\"}",
      "{\"app\":1,\"host\":\"h\",\"ip\":\"1.2.3.4\",\"port\":99999999,"
      "\"rline\":\"GET\",\"cookie\":\"\",\"body\":\"\"}",
      "{\"app\":1,\"host\":\"h\"}",
      "{\"app\":1,\"host\":\"h\",\"ip\":\"1.2.3.4\",\"port\":80,"
      "\"rline\":\"bad escape \\q\",\"cookie\":\"\",\"body\":\"\"}",
  };
  for (const char* line : kBroken) {
    EXPECT_FALSE(ParsePacketJson(line).ok()) << line;
  }
}

TEST(TraceIoPropertyTest, TruncatedSerializationsAreRejected) {
  const uint64_t seed = testing::TestSeed(1511);
  SCOPED_TRACE(testing::SeedTrace(seed));
  Rng rng(seed);
  core::HttpPacket packet = NastyPacket(&rng).packet;
  std::string line = SerializePacketJson(packet);
  for (size_t len = 0; len < line.size(); ++len) {
    StatusOr<core::HttpPacket> parsed =
        ParsePacketJson(std::string_view(line).substr(0, len));
    if (parsed.ok()) {
      // A strict prefix that still parses must not silently masquerade as
      // the full packet.
      EXPECT_FALSE(*parsed == packet) << "prefix length " << len;
    }
  }
}

TEST(WriteFileTest, WritesAndOverwritesAtomically) {
  const std::string dir = ::testing::TempDir();
  const std::string path = dir + "/leakdet_writefile_test.dat";
  std::remove(path.c_str());

  ASSERT_TRUE(WriteFile(path, "first contents\n").ok());
  auto read_back = ReadFile(path);
  ASSERT_TRUE(read_back.ok());
  EXPECT_EQ(*read_back, "first contents\n");

  // Overwrite in place: readers see either the old or the new contents,
  // never a mix — and afterwards, exactly the new contents.
  std::string big(1 << 16, 'x');
  ASSERT_TRUE(WriteFile(path, big).ok());
  read_back = ReadFile(path);
  ASSERT_TRUE(read_back.ok());
  EXPECT_EQ(*read_back, big);

  // The temp staging file must not survive a successful write.
  EXPECT_FALSE(ReadFile(path + ".tmp").ok());
  std::remove(path.c_str());
}

TEST(WriteFileTest, FailsCleanlyWithoutParentDirectory) {
  const std::string path =
      ::testing::TempDir() + "/leakdet_no_such_dir/contents.dat";
  EXPECT_FALSE(WriteFile(path, "data").ok());
  EXPECT_FALSE(ReadFile(path).ok());
}

TEST(WriteFileTest, EmptyAndBinaryContentsRoundTrip) {
  const std::string path = ::testing::TempDir() + "/leakdet_writefile_bin.dat";
  std::string binary;
  for (int i = 0; i < 256; ++i) binary += static_cast<char>(i);
  ASSERT_TRUE(WriteFile(path, binary).ok());
  auto read_back = ReadFile(path);
  ASSERT_TRUE(read_back.ok());
  EXPECT_EQ(*read_back, binary);

  ASSERT_TRUE(WriteFile(path, "").ok());
  read_back = ReadFile(path);
  ASSERT_TRUE(read_back.ok());
  EXPECT_EQ(*read_back, "");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace leakdet::io
