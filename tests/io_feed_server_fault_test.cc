// Fault-injection tests for the feed serving path: the scripted-connection
// harness drives io::FeedServer through partial reads, trickled requests,
// deadline expiry at exact boundaries, resets, corruption, and short writes
// — plus a real-socket EINTR test for net::TcpConnection's retry loops.

#include <gtest/gtest.h>
#include <pthread.h>
#include <signal.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <utility>

#include "crypto/sha1.h"
#include "io/feed_server.h"
#include "net/tcp.h"
#include "testing/fault_script.h"
#include "testing/scripted_conn.h"
#include "testing/virtual_clock.h"
#include "util/status.h"

namespace leakdet {
namespace {

using std::chrono::milliseconds;

io::FeedServer::FeedProvider FixedFeed(uint64_t version,
                                       const std::string& payload) {
  return [version, payload] { return std::make_pair(version, payload); };
}

TEST(FeedServerFaultTest, ServesOverScriptedConnections) {
  io::FeedServer server(FixedFeed(3, "sig-0\thost.com\ttokA\n"));
  auto listener = std::make_unique<testing::ScriptedListener>();
  testing::ScriptedListener* raw = listener.get();
  ASSERT_TRUE(server.Start(std::move(listener)).ok());

  auto client = raw->Connect();
  auto feed = io::FetchFeedFrom(client.get());
  ASSERT_TRUE(feed.ok()) << feed.status().message();
  EXPECT_EQ(feed->version, 3u);
  EXPECT_EQ(feed->payload, "sig-0\thost.com\ttokA\n");

  auto version_client = raw->Connect();
  auto version = io::FetchFeedVersionFrom(version_client.get());
  ASSERT_TRUE(version.ok());
  EXPECT_EQ(*version, 3u);
  server.Stop();
}

TEST(FeedServerFaultTest, TrickledRequestWithinBudgetIsServed) {
  testing::VirtualClock clock;
  io::FeedServerOptions options;
  options.request_deadline_ms = 1000;
  options.clock = &clock;
  io::FeedServer server(FixedFeed(9, "payload"), options);
  auto listener = std::make_unique<testing::ScriptedListener>(&clock);
  testing::ScriptedListener* raw = listener.get();
  ASSERT_TRUE(server.Start(std::move(listener)).ok());

  auto client = raw->Connect();
  const std::string request = "GET /version HTTP/1.1\r\n\r\n";
  // Trickle the request in four pieces, 200 virtual ms apart: 800ms total,
  // inside the 1000ms budget, so the server must answer.
  const size_t piece = request.size() / 4 + 1;
  for (size_t offset = 0; offset < request.size(); offset += piece) {
    ASSERT_TRUE(
        client->WriteAll(request.substr(offset, piece)).ok());
    clock.Advance(milliseconds(200));
  }
  auto raw_response = client->ReadUntilClose();
  ASSERT_TRUE(raw_response.ok()) << raw_response.status().message();
  EXPECT_NE(raw_response->find("200"), std::string::npos);
  EXPECT_NE(raw_response->find("9"), std::string::npos);
  EXPECT_EQ(server.requests_timed_out(), 0u);
  server.Stop();
}

// Regression for the per-read-timeout bug: the deadline bounds the WHOLE
// request, so a client trickling bytes slowly enough to keep every
// individual read alive must still be cut off once the total budget is
// spent, with a 408 (not a bogus 400, not an indefinite stall).
TEST(FeedServerFaultTest, TricklingClientCannotExtendTheRequestDeadline) {
  testing::VirtualClock clock;
  io::FeedServerOptions options;
  options.request_deadline_ms = 1000;
  options.clock = &clock;
  io::FeedServer server(FixedFeed(1, "p"), options);
  auto listener = std::make_unique<testing::ScriptedListener>(&clock);
  testing::ScriptedListener* raw = listener.get();
  ASSERT_TRUE(server.Start(std::move(listener)).ok());

  auto client = raw->Connect();
  // Let the serve thread accept and enter Handle before the first virtual
  // step, so its request window opens at virtual t=0.
  std::this_thread::sleep_for(milliseconds(50));
  // One byte every 300 virtual ms: each gap is comfortably inside a
  // per-read window, but the total crosses 1000ms after four bytes.
  const std::string partial = "GET /fee";
  for (char c : partial) {
    ASSERT_TRUE(client->WriteAll(std::string(1, c)).ok());
    clock.Advance(milliseconds(300));
    // Give the serve thread real time to observe each virtual step.
    std::this_thread::sleep_for(milliseconds(5));
  }
  // Fallback advancer: if the serve thread entered Handle late, its window
  // opened mid-trickle — keep stepping virtual time until it expires. The
  // 408/timeout assertions below do not depend on where the window opened.
  std::atomic<bool> responded{false};
  std::thread advancer([&] {
    while (!responded.load()) {
      std::this_thread::sleep_for(milliseconds(10));
      clock.Advance(milliseconds(300));
    }
  });
  auto response = client->ReadUntilClose();
  responded.store(true);
  advancer.join();
  ASSERT_TRUE(response.ok()) << response.status().message();
  EXPECT_NE(response->find("408"), std::string::npos)
      << "expected 408 Request Timeout, got: " << *response;
  EXPECT_EQ(server.requests_timed_out(), 1u);
  EXPECT_EQ(server.requests_served(), 0u);
  server.Stop();
}

// The budget is [start, deadline): stepping the clock EXACTLY onto the
// deadline expires the request.
TEST(FeedServerFaultTest, DeadlineExpiresAtTheExactBoundary) {
  testing::VirtualClock clock;
  io::FeedServerOptions options;
  options.request_deadline_ms = 500;
  options.clock = &clock;
  io::FeedServer server(FixedFeed(1, "p"), options);
  auto listener = std::make_unique<testing::ScriptedListener>(&clock);
  testing::ScriptedListener* raw = listener.get();
  ASSERT_TRUE(server.Start(std::move(listener)).ok());

  auto client = raw->Connect();
  ASSERT_TRUE(client->WriteAll("GET /feed HTTP/1.1\r\n").ok());
  // Let the server absorb the partial request, then step exactly onto the
  // deadline — not a nanosecond past it. (The exact-boundary semantics of
  // the clock itself are pinned down deterministically in ScriptedConnTest;
  // the fallback advancer below only guards against the serve thread
  // opening its request window after our first advance.)
  std::this_thread::sleep_for(milliseconds(30));
  clock.Advance(milliseconds(500));
  std::atomic<bool> responded{false};
  std::thread advancer([&] {
    while (!responded.load()) {
      std::this_thread::sleep_for(milliseconds(10));
      clock.Advance(milliseconds(500));
    }
  });
  auto response = client->ReadUntilClose();
  responded.store(true);
  advancer.join();
  ASSERT_TRUE(response.ok());
  EXPECT_NE(response->find("408"), std::string::npos);
  EXPECT_EQ(server.requests_timed_out(), 1u);
  server.Stop();
}

TEST(FeedServerFaultTest, PeerClosingMidRequestGetsCleanRejection) {
  io::FeedServer server(FixedFeed(2, "p"));
  auto listener = std::make_unique<testing::ScriptedListener>();
  testing::ScriptedListener* raw = listener.get();
  ASSERT_TRUE(server.Start(std::move(listener)).ok());

  auto half = raw->Connect();
  ASSERT_TRUE(half->WriteAll("GET /fe").ok());
  half->ShutdownWrite();  // EOF before the header block terminates
  auto response = half->ReadUntilClose();
  ASSERT_TRUE(response.ok());
  EXPECT_NE(response->find("400"), std::string::npos);

  // The server survived and serves the next, clean connection.
  auto clean = raw->Connect();
  auto feed = io::FetchFeedFrom(clean.get());
  ASSERT_TRUE(feed.ok());
  EXPECT_EQ(feed->payload, "p");
  server.Stop();
}

TEST(FeedServerFaultTest, SurvivesAResetStormAndServesAfterwards) {
  auto script = testing::FaultScript::Builtin("reset-storm");
  ASSERT_TRUE(script.ok());
  io::FeedServer server(FixedFeed(4, "storm-payload"));
  auto listener = std::make_unique<testing::ScriptedListener>(nullptr,
                                                              &*script);
  testing::ScriptedListener* raw = listener.get();
  ASSERT_TRUE(server.Start(std::move(listener)).ok());

  int ok_count = 0;
  int error_count = 0;
  for (int i = 0; i < 20; ++i) {
    auto client = raw->Connect();
    (void)client->SetReadTimeout(2000);
    auto feed = io::FetchFeedFrom(client.get());
    if (feed.ok()) {
      ++ok_count;
      // Whatever survives the storm must be the exact payload — the digest
      // header rejects every corrupted copy.
      EXPECT_EQ(feed->payload, "storm-payload");
      EXPECT_EQ(feed->version, 4u);
    } else {
      ++error_count;
    }
  }
  EXPECT_GT(error_count, 0) << "the storm injected no faults at all?";
  server.Stop();

  // A fresh, faithful listener confirms the server state is intact.
  io::FeedServer after(FixedFeed(4, "storm-payload"));
  auto clean_listener = std::make_unique<testing::ScriptedListener>();
  testing::ScriptedListener* clean_raw = clean_listener.get();
  ASSERT_TRUE(after.Start(std::move(clean_listener)).ok());
  auto client = clean_raw->Connect();
  auto feed = io::FetchFeedFrom(client.get());
  ASSERT_TRUE(feed.ok());
  EXPECT_EQ(feed->payload, "storm-payload");
  after.Stop();
}

// A flipped payload byte must surface as Corruption (X-Feed-Digest), never
// as a successful fetch of wrong signatures.
TEST(FeedServerFaultTest, CorruptedFeedPayloadIsRejectedByDigest) {
  testing::ScriptedPair pair = testing::ScriptedPair::Make();
  std::thread fake_server([&] {
    auto request = pair.server->ReadUntilClose();
    ASSERT_TRUE(request.ok());
    const std::string payload = "sig-0\thost.com\ttokA\n";
    std::string flipped = payload;
    flipped[5] ^= 0x01;
    std::string response =
        "HTTP/1.1 200 OK\r\n"
        "X-Feed-Version: 7\r\n"
        "X-Feed-Digest: " +
        crypto::Sha1Hex(payload) +  // digest of the REAL payload
        "\r\nContent-Length: " + std::to_string(flipped.size()) +
        "\r\nConnection: close\r\n\r\n" + flipped;
    ASSERT_TRUE(pair.server->WriteAll(response).ok());
    pair.server->Close();
  });
  auto feed = io::FetchFeedFrom(pair.client.get());
  fake_server.join();
  ASSERT_FALSE(feed.ok());
  EXPECT_EQ(feed.status().code(), StatusCode::kCorruption);
}

TEST(FeedServerFaultTest, ShortIoScheduleReassemblesEveryFetch) {
  auto script = testing::FaultScript::Builtin("short-io");
  ASSERT_TRUE(script.ok());
  const std::string payload(512, 's');
  io::FeedServer server(FixedFeed(5, payload));
  auto listener = std::make_unique<testing::ScriptedListener>(nullptr,
                                                              &*script);
  testing::ScriptedListener* raw = listener.get();
  ASSERT_TRUE(server.Start(std::move(listener)).ok());
  // short-io injects no resets/timeouts/corruption, so every fetch must
  // succeed byte-for-byte despite 3-byte reads, split writes, EINTR bursts
  // and delivery delays.
  for (int i = 0; i < 5; ++i) {
    auto client = raw->Connect();
    (void)client->SetReadTimeout(5000);
    auto feed = io::FetchFeedFrom(client.get());
    ASSERT_TRUE(feed.ok()) << i << ": " << feed.status().message();
    EXPECT_EQ(feed->payload, payload);
  }
  EXPECT_EQ(server.requests_served(), 5u);
  server.Stop();
}

// Real-socket EINTR regression: TcpConnection's read loop must retry
// interrupted syscalls, so a signal landing mid-read (no SA_RESTART) is
// invisible to the caller.
TEST(FeedServerFaultTest, TcpReadSurvivesRealEintr) {
  struct sigaction action = {};
  action.sa_handler = [](int) {};  // no SA_RESTART: reads really get EINTR
  sigemptyset(&action.sa_mask);
  action.sa_flags = 0;
  struct sigaction old_action = {};
  ASSERT_EQ(sigaction(SIGUSR1, &action, &old_action), 0);

  auto listener = net::TcpListener::Bind(0);
  ASSERT_TRUE(listener.ok());
  auto client = net::TcpConnectLoopback(listener->port());
  ASSERT_TRUE(client.ok());
  auto accepted = listener->Accept(2000);
  ASSERT_TRUE(accepted.ok());

  std::atomic<bool> reading{false};
  StatusOr<std::string> got = std::string();
  std::thread reader([&] {
    reading.store(true);
    got = accepted->ReadSome(64);  // blocks until data
  });
  while (!reading.load()) std::this_thread::yield();
  std::this_thread::sleep_for(milliseconds(20));  // let it enter recv()
  for (int i = 0; i < 5; ++i) {
    pthread_kill(reader.native_handle(), SIGUSR1);
    std::this_thread::sleep_for(milliseconds(5));
  }
  ASSERT_TRUE(client->WriteAll("after the interrupts").ok());
  reader.join();
  ASSERT_TRUE(got.ok()) << got.status().message();
  EXPECT_EQ(*got, "after the interrupts");
  sigaction(SIGUSR1, &old_action, nullptr);
}

}  // namespace
}  // namespace leakdet
