#include "eval/experiment.h"

#include <gtest/gtest.h>

namespace leakdet::eval {
namespace {

const sim::Trace& SmallTrace() {
  static const sim::Trace* trace = [] {
    sim::TrafficConfig config;
    config.seed = 71;
    config.scale = 0.04;
    return new sim::Trace(sim::GenerateTrace(config));
  }();
  return *trace;
}

TEST(RunDetectionSweepTest, ProducesOnePointPerN) {
  core::PipelineOptions options;
  auto points = RunDetectionSweep(SmallTrace(), {20, 50, 100}, options);
  ASSERT_TRUE(points.ok());
  ASSERT_EQ(points->size(), 3u);
  EXPECT_EQ((*points)[0].n, 20u);
  EXPECT_EQ((*points)[1].n, 50u);
  EXPECT_EQ((*points)[2].n, 100u);
}

TEST(RunDetectionSweepTest, RatesWithinBounds) {
  core::PipelineOptions options;
  auto points = RunDetectionSweep(SmallTrace(), {30, 80}, options);
  ASSERT_TRUE(points.ok());
  for (const SweepPoint& p : *points) {
    EXPECT_GE(p.paper.tp, 0.0);
    EXPECT_LE(p.paper.tp, 1.0);
    EXPECT_GE(p.paper.fp, 0.0);
    EXPECT_LE(p.paper.fp, 1.0);
    EXPECT_GT(p.num_signatures, 0u);
    EXPECT_GE(p.num_clusters, p.num_signatures);
    EXPECT_EQ(p.counts.sensitive_total + p.counts.normal_total,
              SmallTrace().packets.size());
  }
}

TEST(RunDetectionSweepTest, LargerSampleDetectsMore) {
  core::PipelineOptions options;
  auto points = RunDetectionSweep(SmallTrace(), {10, 200}, options);
  ASSERT_TRUE(points.ok());
  // The Figure 4 trend: recall grows with N (standard recall is monotone-ish
  // here; the paper formula subtracts N so compare raw detection counts).
  EXPECT_GT((*points)[1].standard.recall, (*points)[0].standard.recall);
}

TEST(PerTypeDetectionTest, RowsConsistentWithTruth) {
  core::PipelineOptions options;
  options.sample_size = 80;
  std::vector<core::HttpPacket> suspicious, normal;
  SmallTrace().SplitByTruth(&suspicious, &normal);
  auto result = core::RunPipeline(suspicious, normal, options);
  ASSERT_TRUE(result.ok());
  core::Detector detector(std::move(result->signatures));
  auto rows = PerTypeDetection(detector, SmallTrace());
  ASSERT_EQ(rows.size(), static_cast<size_t>(core::kNumSensitiveTypes));
  // Totals must equal the trace's per-type truth counts.
  std::vector<size_t> truth(core::kNumSensitiveTypes, 0);
  for (const sim::LabeledPacket& lp : SmallTrace().packets) {
    for (auto t : lp.truth) truth[static_cast<size_t>(t)]++;
  }
  size_t any_detected = 0;
  for (const auto& row : rows) {
    EXPECT_EQ(row.total, truth[static_cast<size_t>(row.type)]);
    EXPECT_LE(row.detected, row.total);
    EXPECT_GE(row.rate(), 0.0);
    EXPECT_LE(row.rate(), 1.0);
    any_detected += row.detected;
  }
  EXPECT_GT(any_detected, 0u);
}

TEST(EvaluateDetectorTest, CountsConsistent) {
  core::PipelineOptions options;
  options.sample_size = 60;
  std::vector<core::HttpPacket> suspicious, normal;
  SmallTrace().SplitByTruth(&suspicious, &normal);
  auto result = core::RunPipeline(suspicious, normal, options);
  ASSERT_TRUE(result.ok());
  core::Detector detector(std::move(result->signatures));
  ConfusionCounts c = EvaluateDetector(detector, SmallTrace(), 60);
  EXPECT_EQ(c.sensitive_total, suspicious.size());
  EXPECT_EQ(c.normal_total, normal.size());
  EXPECT_LE(c.detected_sensitive, c.sensitive_total);
  EXPECT_LE(c.detected_normal, c.normal_total);
  EXPECT_EQ(c.sample_size, 60u);
}

}  // namespace
}  // namespace leakdet::eval
