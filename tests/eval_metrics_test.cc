#include "eval/metrics.h"

#include <gtest/gtest.h>

namespace leakdet::eval {
namespace {

TEST(ComputePaperRatesTest, PaperFormulaExact) {
  // 23,309 sensitive, 84,550 normal, N = 500; detector catches 22,500
  // sensitive and 1,900 normal packets.
  ConfusionCounts c;
  c.sensitive_total = 23309;
  c.normal_total = 84550;
  c.sample_size = 500;
  c.detected_sensitive = 22500;
  c.detected_normal = 1900;
  DetectionRates r = ComputePaperRates(c);
  EXPECT_NEAR(r.tp, (22500.0 - 500) / (23309 - 500), 1e-12);
  EXPECT_NEAR(r.fn, (23309.0 - 22500) / (23309 - 500), 1e-12);
  EXPECT_NEAR(r.fp, 1900.0 / (84550 - 500), 1e-12);
}

TEST(ComputePaperRatesTest, PerfectDetector) {
  ConfusionCounts c;
  c.sensitive_total = 1000;
  c.normal_total = 5000;
  c.sample_size = 100;
  c.detected_sensitive = 1000;
  c.detected_normal = 0;
  DetectionRates r = ComputePaperRates(c);
  EXPECT_DOUBLE_EQ(r.tp, 1.0);
  EXPECT_DOUBLE_EQ(r.fn, 0.0);
  EXPECT_DOUBLE_EQ(r.fp, 0.0);
}

TEST(ComputePaperRatesTest, DetectorWorseThanSample) {
  // Fewer detections than the sample size must clamp TP at zero, not go
  // negative.
  ConfusionCounts c;
  c.sensitive_total = 1000;
  c.normal_total = 1000;
  c.sample_size = 100;
  c.detected_sensitive = 50;
  DetectionRates r = ComputePaperRates(c);
  EXPECT_DOUBLE_EQ(r.tp, 0.0);
  EXPECT_GT(r.fn, 1.0);  // the paper's formula can exceed 1 here
}

TEST(ComputePaperRatesTest, DegenerateDenominators) {
  ConfusionCounts c;
  c.sensitive_total = 100;
  c.normal_total = 100;
  c.sample_size = 100;  // both denominators zero
  c.detected_sensitive = 100;
  c.detected_normal = 50;
  DetectionRates r = ComputePaperRates(c);
  EXPECT_DOUBLE_EQ(r.tp, 0.0);
  EXPECT_DOUBLE_EQ(r.fn, 0.0);
  EXPECT_DOUBLE_EQ(r.fp, 0.0);
}

TEST(ComputePaperRatesTest, TpPlusFnIsOneWhenDetectedSupersetOfSample) {
  // With all N training packets detected, TP + FN = 1 by construction.
  ConfusionCounts c;
  c.sensitive_total = 2000;
  c.normal_total = 9000;
  c.sample_size = 300;
  c.detected_sensitive = 1800;
  DetectionRates r = ComputePaperRates(c);
  EXPECT_NEAR(r.tp + r.fn, 1.0, 1e-12);
}

TEST(ComputeStandardRatesTest, RecallPrecisionF1) {
  ConfusionCounts c;
  c.sensitive_total = 100;
  c.normal_total = 900;
  c.detected_sensitive = 80;
  c.detected_normal = 20;
  StandardRates r = ComputeStandardRates(c);
  EXPECT_DOUBLE_EQ(r.recall, 0.8);
  EXPECT_NEAR(r.fpr, 20.0 / 900, 1e-12);
  EXPECT_DOUBLE_EQ(r.precision, 0.8);
  EXPECT_NEAR(r.f1, 0.8, 1e-12);
}

TEST(ComputeStandardRatesTest, NothingDetected) {
  ConfusionCounts c;
  c.sensitive_total = 10;
  c.normal_total = 10;
  StandardRates r = ComputeStandardRates(c);
  EXPECT_DOUBLE_EQ(r.recall, 0.0);
  EXPECT_DOUBLE_EQ(r.precision, 0.0);
  EXPECT_DOUBLE_EQ(r.f1, 0.0);
}

TEST(ComputeStandardRatesTest, EmptyDataset) {
  ConfusionCounts c;
  StandardRates r = ComputeStandardRates(c);
  EXPECT_DOUBLE_EQ(r.recall, 0.0);
  EXPECT_DOUBLE_EQ(r.fpr, 0.0);
  DetectionRates p = ComputePaperRates(c);
  EXPECT_DOUBLE_EQ(p.tp, 0.0);
}

}  // namespace
}  // namespace leakdet::eval
