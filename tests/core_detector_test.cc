#include "core/detector.h"

#include <gtest/gtest.h>

namespace leakdet::core {
namespace {

HttpPacket MakePkt(const std::string& host, const std::string& rline) {
  HttpPacket p;
  p.destination.host = host;
  p.destination.ip = *net::Ipv4Address::Parse("10.1.2.3");
  p.destination.port = 80;
  p.request_line = rline;
  return p;
}

match::ConjunctionSignature Sig(std::string id,
                                std::vector<std::string> tokens,
                                std::string scope = "") {
  match::ConjunctionSignature s;
  s.id = std::move(id);
  s.tokens = std::move(tokens);
  s.host_scope = std::move(scope);
  return s;
}

TEST(DetectorTest, FlagsMatchingPacket) {
  Detector det(match::SignatureSet({Sig("sig-0", {"&udid=deadbeef"})}));
  EXPECT_TRUE(det.IsSensitive(
      MakePkt("x.com", "GET /a?z=1&udid=deadbeef HTTP/1.1")));
  EXPECT_FALSE(det.IsSensitive(MakePkt("x.com", "GET /a?z=1 HTTP/1.1")));
}

TEST(DetectorTest, MatchedSignatureIds) {
  Detector det(match::SignatureSet(
      {Sig("sig-0", {"alpha!"}), Sig("sig-1", {"beta!"})}));
  auto ids = det.MatchedSignatureIds(
      MakePkt("x.com", "GET /alpha!beta! HTTP/1.1"));
  ASSERT_EQ(ids.size(), 2u);
  EXPECT_EQ(ids[0], "sig-0");
  EXPECT_EQ(ids[1], "sig-1");
}

TEST(DetectorTest, HostScopeEnforced) {
  Detector det(
      match::SignatureSet({Sig("sig-0", {"token99"}, "admob.com")}));
  EXPECT_TRUE(det.IsSensitive(
      MakePkt("r.admob.com", "GET /token99 HTTP/1.1")));
  EXPECT_FALSE(det.IsSensitive(
      MakePkt("tracker.example.org", "GET /token99 HTTP/1.1")));
}

TEST(DetectorTest, HostScopeUsesRegistrableDomain) {
  Detector det(
      match::SignatureSet({Sig("sig-0", {"token99"}, "i-mobile.co.jp")}));
  EXPECT_TRUE(det.IsSensitive(
      MakePkt("spad.i-mobile.co.jp", "GET /token99 HTTP/1.1")));
}

TEST(DetectorTest, HostScopeDisabled) {
  Detector det(match::SignatureSet({Sig("sig-0", {"token99"}, "admob.com")}),
               /*use_host_scope=*/false);
  EXPECT_TRUE(det.IsSensitive(
      MakePkt("tracker.example.org", "GET /token99 HTTP/1.1")));
}

TEST(DetectorTest, MatchesAgainstCookieAndBody) {
  Detector det(match::SignatureSet({Sig("sig-0", {"sid=feedface"})}));
  HttpPacket p = MakePkt("x.com", "GET / HTTP/1.1");
  p.cookie = "sid=feedface";
  EXPECT_TRUE(det.IsSensitive(p));

  Detector det2(match::SignatureSet({Sig("sig-1", {"imei=35209900"})}));
  HttpPacket q = MakePkt("x.com", "POST /api HTTP/1.1");
  q.body = "imei=352099001761481";
  EXPECT_TRUE(det2.IsSensitive(q));
}

TEST(DetectorTest, TokenSpanningFieldBoundaryDoesNotMatch) {
  // Content fields are joined with '\n'; a token cannot accidentally match
  // across the request-line/cookie boundary unless it contains the '\n'.
  Detector det(match::SignatureSet({Sig("sig-0", {"END!START"})}));
  HttpPacket p = MakePkt("x.com", "GET /END! HTTP/1.1");
  p.cookie = "START=1";
  EXPECT_FALSE(det.IsSensitive(p));
}

TEST(DetectorTest, ExplainReportsTokensAndOffsets) {
  Detector det(match::SignatureSet(
      {Sig("sig-0", {"udid=deadbeef", "GET /ad?"}, "x.com"),
       Sig("sig-1", {"absent-token"})}));
  HttpPacket p = MakePkt("x.com", "GET /ad?z=1&udid=deadbeef HTTP/1.1");
  auto explanations = det.Explain(p);
  ASSERT_EQ(explanations.size(), 1u);
  EXPECT_EQ(explanations[0].signature_id, "sig-0");
  EXPECT_EQ(explanations[0].host_scope, "x.com");
  ASSERT_EQ(explanations[0].hits.size(), 2u);
  std::string content = PacketContent(p);
  for (const auto& hit : explanations[0].hits) {
    ASSERT_NE(hit.offset, std::string::npos);
    EXPECT_EQ(content.substr(hit.offset, hit.token.size()), hit.token);
  }
}

TEST(DetectorTest, ExplainEmptyForCleanPacket) {
  Detector det(match::SignatureSet({Sig("sig-0", {"needle99"})}));
  EXPECT_TRUE(det.Explain(MakePkt("x.com", "GET /clean HTTP/1.1")).empty());
}

TEST(DetectorTest, EmptySignatureSetFlagsNothing) {
  Detector det((match::SignatureSet()));
  EXPECT_FALSE(det.IsSensitive(MakePkt("x.com", "GET / HTTP/1.1")));
}

}  // namespace
}  // namespace leakdet::core
