#include "gateway/gateway.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/detector.h"
#include "match/compiled_set.h"
#include "util/rng.h"

namespace leakdet::gateway {
namespace {

using core::HttpPacket;
using match::CompiledSignatureSet;
using match::ConjunctionSignature;
using match::SignatureSet;

SignatureSet LeakSignatures() {
  ConjunctionSignature sig;
  sig.id = "sig-0";
  sig.tokens = {"udid=9774d56d682e549c"};
  sig.host_scope = "stream-net.com";
  return SignatureSet({sig});
}

HttpPacket AdPacket(uint32_t app_id, const std::string& noise, bool leaking) {
  HttpPacket p;
  p.app_id = app_id;
  p.destination.host = "ads.stream-net.com";
  p.destination.port = 80;
  p.request_line = "GET /live/get?k=" + noise +
                   (leaking ? "&udid=9774d56d682e549c" : "") + " HTTP/1.1";
  return p;
}

TEST(DetectionGatewayTest, VerdictsAgreeWithSingleThreadedDetector) {
  GatewayOptions options;
  options.num_shards = 3;
  DetectionGateway gateway(options);
  gateway.Publish(std::make_shared<const CompiledSignatureSet>(
      LeakSignatures(), 1));

  std::mutex mu;
  std::vector<std::pair<HttpPacket, Verdict>> seen;
  gateway.set_sink([&](const HttpPacket& packet, const Verdict& verdict) {
    std::lock_guard<std::mutex> lock(mu);
    seen.emplace_back(packet, verdict);
  });
  ASSERT_TRUE(gateway.Start().ok());

  Rng rng(3);
  for (uint32_t i = 0; i < 200; ++i) {
    ASSERT_TRUE(gateway.Submit(i, AdPacket(i, rng.RandomHex(6), i % 3 == 0)));
  }
  gateway.Stop();

  core::Detector baseline(LeakSignatures());
  ASSERT_EQ(seen.size(), 200u);
  for (const auto& [packet, verdict] : seen) {
    EXPECT_EQ(verdict.sensitive, baseline.IsSensitive(packet));
    EXPECT_EQ(verdict.feed_version, 1u);
  }
  EXPECT_EQ(gateway.processed(), 200u);
  EXPECT_EQ(gateway.matched(), 67u);  // i % 3 == 0 for i in [0, 200)
}

TEST(DetectionGatewayTest, NoVerdictsAreSensitiveBeforeFirstPublish) {
  DetectionGateway gateway(GatewayOptions{});
  std::atomic<uint64_t> sensitive{0};
  std::atomic<uint64_t> total{0};
  gateway.set_sink([&](const HttpPacket&, const Verdict& verdict) {
    total.fetch_add(1);
    if (verdict.sensitive) sensitive.fetch_add(1);
    EXPECT_EQ(verdict.feed_version, 0u);
  });
  ASSERT_TRUE(gateway.Start().ok());
  for (uint32_t i = 0; i < 50; ++i) {
    ASSERT_TRUE(gateway.Submit(i, AdPacket(i, "aa", true)));
  }
  gateway.Stop();
  EXPECT_EQ(total.load(), 50u);
  EXPECT_EQ(sensitive.load(), 0u);
}

TEST(DetectionGatewayTest, NoPacketLostBelowCapacity) {
  GatewayOptions options;
  options.num_shards = 4;
  options.queue_capacity = 64;
  options.overload = OverloadPolicy::kBlock;
  DetectionGateway gateway(options);
  std::atomic<uint64_t> delivered{0};
  gateway.set_sink(
      [&](const HttpPacket&, const Verdict&) { delivered.fetch_add(1); });
  ASSERT_TRUE(gateway.Start().ok());
  constexpr uint32_t kPackets = 5000;
  for (uint32_t i = 0; i < kPackets; ++i) {
    ASSERT_TRUE(gateway.Submit(i, AdPacket(i, "bb", false)));
  }
  gateway.Stop();  // drains
  EXPECT_EQ(delivered.load(), kPackets);
  EXPECT_EQ(gateway.submitted(), kPackets);
  EXPECT_EQ(gateway.processed(), kPackets);
  EXPECT_EQ(gateway.dropped(), 0u);
}

TEST(DetectionGatewayTest, DropCountersExactWhenOverCapacity) {
  GatewayOptions options;
  options.num_shards = 2;
  options.queue_capacity = 16;
  options.overload = OverloadPolicy::kDropNewest;
  DetectionGateway gateway(options);
  // Workers not started: queues only fill, so drops are deterministic.
  const uint64_t device = 7;
  size_t shard = gateway.shard_of(device);
  constexpr uint32_t kSubmitted = 50;
  uint32_t accepted = 0;
  for (uint32_t i = 0; i < kSubmitted; ++i) {
    if (gateway.Submit(device, AdPacket(1, "cc", false))) ++accepted;
  }
  EXPECT_EQ(accepted, 16u);  // exactly the queue capacity
  EXPECT_EQ(gateway.dropped(), kSubmitted - 16u);
  std::string drop_counter =
      "gateway.shard" + std::to_string(shard) + ".dropped";
  EXPECT_EQ(gateway.metrics()->GetCounter(drop_counter)->Value(),
            kSubmitted - 16u);
  // Draining afterwards delivers exactly the accepted ones.
  std::atomic<uint64_t> delivered{0};
  gateway.set_sink(
      [&](const HttpPacket&, const Verdict&) { delivered.fetch_add(1); });
  ASSERT_TRUE(gateway.Start().ok());
  gateway.Stop();
  EXPECT_EQ(delivered.load(), 16u);
}

TEST(DetectionGatewayTest, PublishRejectsStaleVersions) {
  DetectionGateway gateway(GatewayOptions{});
  EXPECT_FALSE(gateway.Publish(nullptr));
  EXPECT_TRUE(gateway.Publish(
      std::make_shared<const CompiledSignatureSet>(LeakSignatures(), 2)));
  EXPECT_FALSE(gateway.Publish(
      std::make_shared<const CompiledSignatureSet>(LeakSignatures(), 2)));
  EXPECT_FALSE(gateway.Publish(
      std::make_shared<const CompiledSignatureSet>(LeakSignatures(), 1)));
  EXPECT_EQ(gateway.current_version(), 2u);
  EXPECT_TRUE(gateway.Publish(
      std::make_shared<const CompiledSignatureSet>(LeakSignatures(), 3)));
  EXPECT_EQ(gateway.current_version(), 3u);
  EXPECT_EQ(gateway.swaps(), 2u);
  EXPECT_EQ(gateway.metrics()->GetCounter("gateway.swap_rejected")->Value(),
            2u);
}

TEST(DetectionGatewayTest, SubmitAfterStopIsRefused) {
  DetectionGateway gateway(GatewayOptions{});
  ASSERT_TRUE(gateway.Start().ok());
  gateway.Stop();
  EXPECT_FALSE(gateway.Submit(1, AdPacket(1, "dd", false)));
  EXPECT_EQ(gateway.dropped(), 1u);
}

TEST(DetectionGatewayTest, PerDeviceOrderIsPreserved) {
  GatewayOptions options;
  options.num_shards = 4;
  DetectionGateway gateway(options);
  gateway.Publish(
      std::make_shared<const CompiledSignatureSet>(LeakSignatures(), 1));
  std::mutex mu;
  std::vector<std::string> order_device3;
  gateway.set_sink([&](const HttpPacket& packet, const Verdict&) {
    if (packet.app_id == 3) {
      std::lock_guard<std::mutex> lock(mu);
      order_device3.push_back(packet.request_line);
    }
  });
  ASSERT_TRUE(gateway.Start().ok());
  std::vector<std::string> expected;
  for (uint32_t i = 0; i < 500; ++i) {
    uint32_t device = i % 10;
    HttpPacket p = AdPacket(device, "seq" + std::to_string(i), false);
    if (device == 3) expected.push_back(p.request_line);
    ASSERT_TRUE(gateway.Submit(device, std::move(p)));
  }
  gateway.Stop();
  EXPECT_EQ(order_device3, expected);
}

// The prefilter is a pure accelerator: forcing it off must not change a
// single verdict. Same stream, same single-shard gateway, prefilter off vs
// auto — the per-device FIFO guarantee makes the two runs comparable 1:1.
TEST(DetectionGatewayTest, PrefilterOffAndOnProduceIdenticalVerdicts) {
  auto run = [](prefilter::Mode mode) {
    GatewayOptions options;
    options.num_shards = 1;
    options.prefilter = mode;
    DetectionGateway gateway(options);
    gateway.Publish(
        std::make_shared<const CompiledSignatureSet>(LeakSignatures(), 1));
    std::vector<std::pair<std::string, uint32_t>> verdicts;
    gateway.set_sink([&](const HttpPacket& packet, const Verdict& verdict) {
      verdicts.emplace_back(packet.request_line, verdict.num_matches);
    });
    EXPECT_TRUE(gateway.Start().ok());
    Rng rng(17);
    for (uint32_t i = 0; i < 300; ++i) {
      EXPECT_TRUE(
          gateway.Submit(5, AdPacket(5, rng.RandomHex(6), i % 4 == 0)));
    }
    gateway.Stop();
    return verdicts;
  };
  // kScalar rather than kAuto: explicit modes ignore LEAKDET_PREFILTER, so
  // this parity check holds even in the forced-off ctest rerun
  // (gateway_prefilter_off).
  auto off = run(prefilter::Mode::kOff);
  auto on = run(prefilter::Mode::kScalar);
  ASSERT_EQ(off.size(), 300u);
  EXPECT_EQ(off, on);
}

TEST(DetectionGatewayTest, PrefilterCountersAccountForEveryPacket) {
  GatewayOptions options;
  options.num_shards = 2;
  options.prefilter = prefilter::Mode::kScalar;  // env-insensitive (see above)
  DetectionGateway gateway(options);
  gateway.Publish(
      std::make_shared<const CompiledSignatureSet>(LeakSignatures(), 1));
  ASSERT_TRUE(gateway.Start().ok());
  constexpr uint32_t kPackets = 400;
  for (uint32_t i = 0; i < kPackets; ++i) {
    // Every 5th packet leaks; the rest carry only random hex, which the
    // rare-token screen should reject without ever running the DFA.
    ASSERT_TRUE(gateway.Submit(i, AdPacket(i, "noise", i % 5 == 0)));
  }
  gateway.Stop();
  EXPECT_EQ(gateway.processed(), kPackets);
  // With a non-empty set and the prefilter enabled, every packet is either
  // skipped by the screen or falls through as a candidate — no third bucket.
  EXPECT_EQ(gateway.prefilter_skipped() + gateway.prefilter_candidates(),
            kPackets);
  // All 80 leaking packets must fall through (no false negatives) ...
  EXPECT_GE(gateway.prefilter_candidates(), kPackets / 5);
  // ... and the fixed "noise" payload contains no signature window, so the
  // clean packets are all skipped and no candidate was false.
  EXPECT_EQ(gateway.prefilter_skipped(), kPackets - kPackets / 5);
  EXPECT_EQ(gateway.prefilter_false_candidates(), 0u);
  EXPECT_EQ(gateway.matched(), kPackets / 5);
}

TEST(DetectionGatewayTest, PrefilterOffDisablesCounters) {
  GatewayOptions options;
  options.prefilter = prefilter::Mode::kOff;
  DetectionGateway gateway(options);
  gateway.Publish(
      std::make_shared<const CompiledSignatureSet>(LeakSignatures(), 1));
  ASSERT_TRUE(gateway.Start().ok());
  for (uint32_t i = 0; i < 50; ++i) {
    ASSERT_TRUE(gateway.Submit(i, AdPacket(i, "zz", true)));
  }
  gateway.Stop();
  EXPECT_EQ(gateway.processed(), 50u);
  EXPECT_EQ(gateway.matched(), 50u);
  EXPECT_EQ(gateway.prefilter_skipped(), 0u);
  EXPECT_EQ(gateway.prefilter_candidates(), 0u);
  EXPECT_EQ(gateway.prefilter_false_candidates(), 0u);
}

TEST(DetectionGatewayTest, StartTwiceFails) {
  DetectionGateway gateway(GatewayOptions{});
  ASSERT_TRUE(gateway.Start().ok());
  EXPECT_FALSE(gateway.Start().ok());
  gateway.Stop();
}

}  // namespace
}  // namespace leakdet::gateway
