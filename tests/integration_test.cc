// Cross-module integration tests: the full §IV/§V pipeline over a simulated
// market, exercised end to end (generator -> payload check -> clustering ->
// signatures -> detection -> metrics -> serialization).

#include <gtest/gtest.h>

#include "core/payload_check.h"
#include "core/pipeline.h"
#include "eval/experiment.h"
#include "io/trace_io.h"
#include "sim/trafficgen.h"

namespace leakdet {
namespace {

const sim::Trace& Trace() {
  static const sim::Trace* trace = [] {
    sim::TrafficConfig config;
    config.seed = 20240707;
    config.scale = 0.08;
    return new sim::Trace(sim::GenerateTrace(config));
  }();
  return *trace;
}

TEST(IntegrationTest, OracleSplitEqualsGeneratorSplit) {
  core::PayloadCheck oracle({Trace().device.ToTokens()});
  std::vector<core::HttpPacket> osus, onorm, tsus, tnorm;
  oracle.Split(Trace().RawPackets(), &osus, &onorm);
  Trace().SplitByTruth(&tsus, &tnorm);
  EXPECT_EQ(osus.size(), tsus.size());
  EXPECT_EQ(onorm.size(), tnorm.size());
}

TEST(IntegrationTest, EndToEndDetectionQuality) {
  std::vector<core::HttpPacket> suspicious, normal;
  Trace().SplitByTruth(&suspicious, &normal);

  core::PipelineOptions options;
  options.sample_size = 200;
  auto result = core::RunPipeline(suspicious, normal, options);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->signatures.size(), 5u);

  core::Detector detector(std::move(result->signatures));
  eval::ConfusionCounts counts =
      eval::EvaluateDetector(detector, Trace(), 200);
  eval::DetectionRates rates = eval::ComputePaperRates(counts);
  // The paper's headline band: high TP, low FP. At reduced scale we accept a
  // wider band but the order of magnitude must hold.
  EXPECT_GT(rates.tp, 0.70) << "tp=" << rates.tp;
  EXPECT_LT(rates.fp, 0.10) << "fp=" << rates.fp;
  EXPECT_LT(rates.fn, 0.30) << "fn=" << rates.fn;
}

TEST(IntegrationTest, SignatureFeedRoundTripPreservesDetection) {
  // Server generates signatures, serializes the feed; the on-device side
  // deserializes and must reach identical verdicts (Fig. 3 a->b handoff).
  std::vector<core::HttpPacket> suspicious, normal;
  Trace().SplitByTruth(&suspicious, &normal);
  core::PipelineOptions options;
  options.sample_size = 120;
  auto result = core::RunPipeline(suspicious, normal, options);
  ASSERT_TRUE(result.ok());

  std::string feed = result->signatures.Serialize();
  auto restored = match::SignatureSet::Deserialize(feed);
  ASSERT_TRUE(restored.ok());

  core::Detector server_side(std::move(result->signatures));
  core::Detector device_side(std::move(*restored));
  size_t n = 0;
  for (const sim::LabeledPacket& lp : Trace().packets) {
    if (++n > 2000) break;
    EXPECT_EQ(server_side.IsSensitive(lp.packet),
              device_side.IsSensitive(lp.packet));
  }
}

TEST(IntegrationTest, TraceSerializationPreservesEvaluation) {
  // Persist the trace, reload it, and confirm the payload check agrees on
  // every reloaded packet.
  std::string jsonl = io::SerializeJsonl(Trace().packets);
  auto restored = io::ParseJsonl(jsonl);
  ASSERT_TRUE(restored.ok());
  core::PayloadCheck oracle({Trace().device.ToTokens()});
  for (size_t i = 0; i < restored->size(); i += 29) {
    const sim::LabeledPacket& lp = (*restored)[i];
    EXPECT_EQ(oracle.Check(lp.packet), lp.truth);
  }
}

TEST(IntegrationTest, SweepReproducesFigureFourTrends) {
  core::PipelineOptions options;
  auto points = eval::RunDetectionSweep(Trace(), {50, 150, 300}, options);
  ASSERT_TRUE(points.ok());
  ASSERT_EQ(points->size(), 3u);
  // Monotone trends (allowing small noise): recall up, FN down.
  EXPECT_GT((*points)[2].standard.recall + 0.02,
            (*points)[0].standard.recall);
  EXPECT_LT((*points)[2].paper.fn - 0.02, (*points)[0].paper.fn);
  // FP stays bounded at every point.
  for (const auto& p : *points) EXPECT_LT(p.paper.fp, 0.10);
}

TEST(IntegrationTest, HostScopedDetectionNoWorseThanUnscoped) {
  std::vector<core::HttpPacket> suspicious, normal;
  Trace().SplitByTruth(&suspicious, &normal);
  core::PipelineOptions options;
  options.sample_size = 150;
  auto result = core::RunPipeline(suspicious, normal, options);
  ASSERT_TRUE(result.ok());
  match::SignatureSet set = std::move(result->signatures);
  core::Detector scoped(set, /*use_host_scope=*/true);
  core::Detector unscoped(set, /*use_host_scope=*/false);
  eval::ConfusionCounts cs = eval::EvaluateDetector(scoped, Trace(), 150);
  eval::ConfusionCounts cu = eval::EvaluateDetector(unscoped, Trace(), 150);
  // Scoping can only reduce false positives.
  EXPECT_LE(cs.detected_normal, cu.detected_normal);
}

}  // namespace
}  // namespace leakdet
