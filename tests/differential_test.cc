// Differential tests: fast implementations checked against brute-force
// oracles on small random inputs.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "core/hcluster.h"
#include "eval/cluster_quality.h"
#include "text/token_extract.h"
#include "util/rng.h"

namespace leakdet {
namespace {

// --- Group-average clustering vs naive recomputation -----------------------

/// Naive group-average agglomeration: recompute every cluster-pair mean
/// distance from the raw matrix at every step (O(n^5) worst case — fine for
/// n <= 12).
std::vector<double> NaiveMergeHeights(const core::DistanceMatrix& m) {
  std::vector<std::vector<int>> clusters;
  for (size_t i = 0; i < m.size(); ++i) {
    clusters.push_back({static_cast<int>(i)});
  }
  std::vector<double> heights;
  while (clusters.size() > 1) {
    double best = 1e300;
    size_t bi = 0, bj = 0;
    for (size_t i = 0; i < clusters.size(); ++i) {
      for (size_t j = i + 1; j < clusters.size(); ++j) {
        double sum = 0;
        for (int a : clusters[i]) {
          for (int b : clusters[j]) {
            sum += m.at(static_cast<size_t>(a), static_cast<size_t>(b));
          }
        }
        double d = sum / (static_cast<double>(clusters[i].size()) *
                          static_cast<double>(clusters[j].size()));
        if (d < best) {
          best = d;
          bi = i;
          bj = j;
        }
      }
    }
    heights.push_back(best);
    clusters[bi].insert(clusters[bi].end(), clusters[bj].begin(),
                        clusters[bj].end());
    clusters.erase(clusters.begin() + static_cast<long>(bj));
  }
  return heights;
}

TEST(ClusteringDifferentialTest, LanceWilliamsMatchesNaiveGroupAverage) {
  Rng rng(101);
  for (int trial = 0; trial < 30; ++trial) {
    size_t n = 2 + rng.UniformInt(10);
    core::DistanceMatrix m(n);
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = i + 1; j < n; ++j) {
        m.set(i, j, rng.UniformDouble() * 5);
      }
    }
    core::Dendrogram d = core::ClusterGroupAverage(m);
    std::vector<double> expected = NaiveMergeHeights(m);
    ASSERT_EQ(d.merges().size(), expected.size());
    for (size_t k = 0; k < expected.size(); ++k) {
      EXPECT_NEAR(d.merges()[k].height, expected[k], 1e-9)
          << "trial " << trial << " merge " << k;
    }
  }
}

// --- Invariant tokens vs brute-force common substrings ---------------------

/// All substrings of `s` with length >= min_len.
std::set<std::string> AllSubstrings(const std::string& s, size_t min_len) {
  std::set<std::string> subs;
  for (size_t i = 0; i < s.size(); ++i) {
    for (size_t len = min_len; i + len <= s.size(); ++len) {
      subs.insert(s.substr(i, len));
    }
  }
  return subs;
}

/// Brute-force maximal common substrings of all samples.
std::set<std::string> BruteInvariantTokens(
    const std::vector<std::string>& samples, size_t min_len) {
  if (samples.empty()) return {};
  std::set<std::string> common = AllSubstrings(samples[0], min_len);
  for (size_t i = 1; i < samples.size(); ++i) {
    std::set<std::string> next;
    for (const std::string& sub : common) {
      if (samples[i].find(sub) != std::string::npos) next.insert(sub);
    }
    common = std::move(next);
  }
  // Keep only maximal elements.
  std::set<std::string> maximal;
  for (const std::string& a : common) {
    bool contained = false;
    for (const std::string& b : common) {
      if (a != b && b.find(a) != std::string::npos) {
        contained = true;
        break;
      }
    }
    if (!contained) maximal.insert(a);
  }
  return maximal;
}

TEST(TokenExtractDifferentialTest, MatchesBruteForceMaximalCommonSubstrings) {
  Rng rng(103);
  for (int trial = 0; trial < 40; ++trial) {
    size_t num_samples = 2 + rng.UniformInt(4);
    std::vector<std::string> samples;
    // Small alphabet forces rich repeat structure.
    std::string shared = rng.RandomString(3 + rng.UniformInt(6), "abc");
    for (size_t s = 0; s < num_samples; ++s) {
      samples.push_back(rng.RandomString(rng.UniformInt(8), "abc") + shared +
                        rng.RandomString(rng.UniformInt(8), "abc"));
    }
    size_t min_len = 2 + rng.UniformInt(3);
    text::TokenExtractOptions opts;
    opts.min_token_len = min_len;
    opts.max_tokens = 0;  // unlimited
    std::vector<std::string> got_vec =
        text::ExtractInvariantTokens(samples, opts);
    std::set<std::string> got(got_vec.begin(), got_vec.end());
    std::set<std::string> expected = BruteInvariantTokens(samples, min_len);
    EXPECT_EQ(got, expected) << "trial " << trial;
  }
}

// --- Silhouette vs direct definition (tiny case, hand-computed) ------------

TEST(SilhouetteHandComputedTest, FourPoints) {
  // Points 0,1 close (d=1); points 2,3 close (d=1); across-pairs d=10.
  core::DistanceMatrix m(4);
  m.set(0, 1, 1.0);
  m.set(2, 3, 1.0);
  for (auto [i, j] : {std::pair<int, int>{0, 2}, {0, 3}, {1, 2}, {1, 3}}) {
    m.set(static_cast<size_t>(i), static_cast<size_t>(j), 10.0);
  }
  // s(p) = (b - a) / max(a, b) = (10 - 1) / 10 = 0.9 for every point.
  std::vector<std::vector<int32_t>> clusters = {{0, 1}, {2, 3}};
  EXPECT_NEAR(eval::MeanSilhouette(m, clusters), 0.9, 1e-12);
}

}  // namespace
}  // namespace leakdet
