#include "core/pipeline.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace leakdet::core {
namespace {

HttpPacket TemplatePacket(const std::string& host, const char* ip,
                          const std::string& param, const std::string& value,
                          const std::string& noise) {
  HttpPacket p;
  p.destination.host = host;
  p.destination.ip = *net::Ipv4Address::Parse(ip);
  p.destination.port = 80;
  p.request_line = "GET /req?app=" + noise + "&" + param + "=" + value +
                   "&r=" + noise + " HTTP/1.1";
  return p;
}

/// Two leaky "services" with distinct templates plus benign traffic.
struct Fixture {
  std::vector<HttpPacket> suspicious;
  std::vector<HttpPacket> normal;
};

Fixture MakeFixture(size_t per_service) {
  Fixture f;
  Rng rng(99);
  for (size_t i = 0; i < per_service; ++i) {
    f.suspicious.push_back(TemplatePacket("ads.alpha-net.com", "20.1.2.3",
                                          "udid", "9774d56d682e549c",
                                          rng.RandomHex(6)));
    f.suspicious.push_back(TemplatePacket("sdk.beta-ads.jp", "121.9.8.7",
                                          "device_id", "352099001761481",
                                          rng.RandomHex(6)));
  }
  for (size_t i = 0; i < per_service * 6; ++i) {
    f.normal.push_back(TemplatePacket("cdn.benign.example", "55.5.5.5", "q",
                                      rng.RandomHex(10), rng.RandomHex(6)));
  }
  return f;
}

TEST(PipelineTest, RejectsEmptySuspiciousGroup) {
  PipelineOptions options;
  auto result = RunPipeline({}, {}, options);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(PipelineTest, RejectsZeroSampleSize) {
  Fixture f = MakeFixture(5);
  PipelineOptions options;
  options.sample_size = 0;
  EXPECT_FALSE(RunPipeline(f.suspicious, f.normal, options).ok());
}

TEST(PipelineTest, SampleTruncatedToGroupSize) {
  Fixture f = MakeFixture(3);  // 6 suspicious packets
  PipelineOptions options;
  options.sample_size = 100;
  auto result = RunPipeline(f.suspicious, f.normal, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->sampled_indices.size(), 6u);
}

TEST(PipelineTest, SeparatesServicesIntoClusters) {
  Fixture f = MakeFixture(10);
  PipelineOptions options;
  options.sample_size = 20;
  options.siggen.scope_by_host = true;  // scope to inspect per-host output
  auto result = RunPipeline(f.suspicious, f.normal, options);
  ASSERT_TRUE(result.ok());
  // The two distinct module templates must land in (at least) two clusters
  // and produce signatures for both hosts.
  EXPECT_GE(result->clusters.size(), 2u);
  ASSERT_GE(result->signatures.size(), 2u);
  bool saw_alpha = false, saw_beta = false;
  for (const auto& sig : result->signatures.signatures()) {
    if (sig.host_scope == "alpha-net.com") saw_alpha = true;
    if (sig.host_scope == "beta-ads.jp") saw_beta = true;
  }
  EXPECT_TRUE(saw_alpha);
  EXPECT_TRUE(saw_beta);
}

TEST(PipelineTest, DeterministicForFixedSeed) {
  Fixture f = MakeFixture(8);
  PipelineOptions options;
  options.sample_size = 10;
  options.seed = 1234;
  auto a = RunPipeline(f.suspicious, f.normal, options);
  auto b = RunPipeline(f.suspicious, f.normal, options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->sampled_indices, b->sampled_indices);
  EXPECT_EQ(a->signatures.Serialize(), b->signatures.Serialize());
}

TEST(PipelineTest, SeedChangesSample) {
  Fixture f = MakeFixture(20);
  PipelineOptions options;
  options.sample_size = 10;
  options.seed = 1;
  auto a = RunPipeline(f.suspicious, f.normal, options);
  options.seed = 2;
  auto b = RunPipeline(f.suspicious, f.normal, options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NE(a->sampled_indices, b->sampled_indices);
}

TEST(PipelineTest, DetectsHeldOutPacketsFromSampledService) {
  Fixture f = MakeFixture(25);
  PipelineOptions options;
  options.sample_size = 20;
  auto result = RunPipeline(f.suspicious, f.normal, options);
  ASSERT_TRUE(result.ok());
  Detector detector(std::move(result->signatures));
  size_t detected = 0;
  for (const HttpPacket& p : f.suspicious) {
    if (detector.IsSensitive(p)) ++detected;
  }
  // Both services were surely sampled (20 of 50, alternating), so nearly all
  // suspicious packets must be caught.
  EXPECT_GT(static_cast<double>(detected) / f.suspicious.size(), 0.9);
  // And benign traffic stays clean.
  size_t false_hits = 0;
  for (const HttpPacket& p : f.normal) {
    if (detector.IsSensitive(p)) ++false_hits;
  }
  EXPECT_EQ(false_hits, 0u);
}

TEST(PipelineTest, MergeHeightsExposedAndMonotone) {
  Fixture f = MakeFixture(10);
  PipelineOptions options;
  options.sample_size = 12;
  auto result = RunPipeline(f.suspicious, f.normal, options);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->merge_heights.size(), 11u);
  for (size_t i = 1; i < result->merge_heights.size(); ++i) {
    EXPECT_GE(result->merge_heights[i], result->merge_heights[i - 1] - 1e-9);
  }
}

TEST(PipelineTest, UnknownCompressorRejected) {
  Fixture f = MakeFixture(3);
  PipelineOptions options;
  options.compressor = "zstd";
  EXPECT_FALSE(RunPipeline(f.suspicious, f.normal, options).ok());
}

TEST(PipelineTest, WorksWithEveryBuiltInCompressor) {
  Fixture f = MakeFixture(6);
  for (const char* name : {"lzw", "lz77h", "entropy"}) {
    PipelineOptions options;
    options.sample_size = 8;
    options.compressor = name;
    auto result = RunPipeline(f.suspicious, f.normal, options);
    ASSERT_TRUE(result.ok()) << name;
    EXPECT_GE(result->signatures.size(), 1u) << name;
  }
}

TEST(PipelineTest, ClusterReportsCoverAllClusters) {
  Fixture f = MakeFixture(8);
  PipelineOptions options;
  options.sample_size = 10;
  auto result = RunPipeline(f.suspicious, f.normal, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->cluster_reports.size(), result->clusters.size());
}

}  // namespace
}  // namespace leakdet::core
