// Concurrency stress for obs::Registry: registration races scrapes races
// observation. The point is a TSan-clean run (the suite runs under
// LEAKDET_SANITIZE=thread in CI) plus exact conservation of every count
// once the threads join.

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"

namespace leakdet::obs {
namespace {

TEST(ObsRegistryStressTest, ConcurrentRegistrationObservationAndScrape) {
  Registry registry;
  constexpr int kThreads = 8;
#ifdef LEAKDET_TSAN_BUILD
  constexpr int kIters = 1000;  // TSan runs ~10x slower
#else
  constexpr int kIters = 5000;
#endif
  constexpr int kLabelValues = 4;

  // A scraper hammering both renderers while workers register and observe:
  // every render must see internally consistent storage (TSan enforces the
  // rest). One metric exists before the scraper starts so the exposition is
  // never empty.
  registry.GetCounter("stress.shared");
  std::atomic<bool> stop{false};
  std::thread scraper([&registry, &stop] {
    while (!stop.load(std::memory_order_acquire)) {
      std::string exposition = registry.PrometheusText();
      ASSERT_NE(exposition.find("# TYPE"), std::string::npos);
      (void)registry.TextDump();
    }
  });

  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&registry, t] {
      // Each worker builds its own family handle over the shared registry —
      // the family cache itself is part of what races.
      CounterFamily family(&registry, "stress.requests", "worker");
      const std::string label = "w" + std::to_string(t % kLabelValues);
      Gauge* depth = registry.GetGauge("stress.depth",
                                       {{"thread", std::to_string(t)}});
      for (int i = 0; i < kIters; ++i) {
        registry.GetCounter("stress.shared")->Inc();
        family.With(label)->Inc();
        registry.GetHistogram("stress.ns")->Observe(
            static_cast<uint64_t>(i));
        depth->Set(i);
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  stop.store(true, std::memory_order_release);
  scraper.join();

  constexpr uint64_t kTotal = uint64_t{kThreads} * kIters;
  EXPECT_EQ(registry.GetCounter("stress.shared")->Value(), kTotal);

  CounterFamily family(&registry, "stress.requests", "worker");
  uint64_t labeled_total = 0;
  for (int l = 0; l < kLabelValues; ++l) {
    labeled_total += family.With("w" + std::to_string(l))->Value();
  }
  EXPECT_EQ(labeled_total, kTotal);

  Histogram::Snapshot snap = registry.GetHistogram("stress.ns")->Take();
  EXPECT_EQ(snap.count, kTotal);
  uint64_t bucket_mass = 0;
  for (uint64_t b : snap.buckets) bucket_mass += b;
  EXPECT_EQ(bucket_mass, kTotal);

  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(registry.GetGauge("stress.depth",
                                {{"thread", std::to_string(t)}})
                  ->Value(),
              kIters - 1);
  }
}

}  // namespace
}  // namespace leakdet::obs
