// Property tests for consistent-hash device routing (ctest label: cluster).
// The two laws the HashRing guarantees to the cluster's routing plane:
// balance (each of N nodes owns ~1/N of the device-id space) and minimal
// disruption (removing a node remaps exactly the ids it owned — nothing
// else moves). Every iteration is a pure function of the seed; failures
// print it and LEAKDET_TEST_SEED replays exactly.

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "cluster/ring.h"
#include "test_seed.h"
#include "util/rng.h"

namespace leakdet {
namespace {

constexpr size_t kNodes = 8;
constexpr size_t kDeviceIds = 20000;

std::vector<std::string> NodeIds(size_t n) {
  std::vector<std::string> ids;
  for (size_t i = 0; i < n; ++i) ids.push_back("node-" + std::to_string(i));
  return ids;
}

// Balance: at the default vnode count, every one of 8 nodes owns within
// 15% (relative) of its fair 1/8 share of a uniform device-id fleet.
TEST(ClusterRingPropertyTest, BalanceWithin15PercentAcross8Nodes) {
  const uint64_t seed = testing::TestSeed(0x51B6);
  SCOPED_TRACE(testing::SeedTrace(seed));
  Rng rng(seed);
  cluster::HashRing ring;
  for (const std::string& id : NodeIds(kNodes)) ring.AddNode(id);

  std::map<std::string, size_t> owned;
  for (size_t i = 0; i < kDeviceIds; ++i) {
    owned[ring.NodeFor(rng.Next())]++;
  }
  ASSERT_EQ(owned.size(), kNodes) << "some node owns nothing";
  const double fair = static_cast<double>(kDeviceIds) / kNodes;
  for (const auto& [id, count] : owned) {
    const double deviation = (static_cast<double>(count) - fair) / fair;
    EXPECT_LE(deviation, 0.15) << id << " owns " << count << " of "
                               << kDeviceIds;
    EXPECT_GE(deviation, -0.15) << id << " owns " << count << " of "
                                << kDeviceIds;
  }
}

// Minimal disruption: removing one node remaps exactly the ids that node
// owned (~1/N of the space) and not a single id owned by a survivor.
TEST(ClusterRingPropertyTest, RemovalRemapsOnlyTheRemovedNodesShare) {
  const uint64_t seed = testing::TestSeed(4242);
  SCOPED_TRACE(testing::SeedTrace(seed));
  Rng rng(seed);
  cluster::HashRing ring;
  for (const std::string& id : NodeIds(kNodes)) ring.AddNode(id);

  std::vector<uint64_t> devices(kDeviceIds);
  std::vector<std::string> before(kDeviceIds);
  for (size_t i = 0; i < kDeviceIds; ++i) {
    devices[i] = rng.Next();
    before[i] = ring.NodeFor(devices[i]);
  }
  const std::string victim = "node-" + std::to_string(rng.UniformInt(kNodes));
  ring.RemoveNode(victim);

  size_t moved = 0;
  size_t victim_owned = 0;
  for (size_t i = 0; i < kDeviceIds; ++i) {
    const bool was_victims = before[i] == victim;
    victim_owned += was_victims ? 1 : 0;
    const std::string& now = ring.NodeFor(devices[i]);
    if (now != before[i]) {
      ++moved;
      // Only ids the victim owned are allowed to move.
      EXPECT_TRUE(was_victims)
          << "device " << devices[i] << " moved " << before[i] << " -> "
          << now << " though " << victim << " never owned it";
    } else {
      EXPECT_FALSE(was_victims) << "device " << devices[i]
                                << " still routes to the removed node";
    }
  }
  EXPECT_EQ(moved, victim_owned);
  // ~1/N of the space, within the same 15% relative tolerance as balance.
  const double fair = static_cast<double>(kDeviceIds) / kNodes;
  EXPECT_NEAR(static_cast<double>(moved), fair, 0.15 * fair);
}

// Placement is a pure function of the membership set: two rings built in
// different insertion orders agree on every routing decision, so every
// process in the cluster computes the identical ring with no coordination.
TEST(ClusterRingPropertyTest, InsertionOrderDoesNotAffectRouting) {
  const uint64_t seed = testing::TestSeed(7);
  SCOPED_TRACE(testing::SeedTrace(seed));
  Rng rng(seed);
  cluster::HashRing forward;
  cluster::HashRing shuffled;
  std::vector<std::string> ids = NodeIds(kNodes);
  for (const std::string& id : ids) forward.AddNode(id);
  for (size_t i = ids.size(); i > 0; --i) shuffled.AddNode(ids[i - 1]);
  for (size_t i = 0; i < 4000; ++i) {
    const uint64_t device = rng.Next();
    EXPECT_EQ(forward.NodeFor(device), shuffled.NodeFor(device));
  }
}

// Re-adding a removed node restores the exact pre-removal routing: joins
// are as minimally disruptive as leaves, and a bounced node reclaims
// precisely its old devices.
TEST(ClusterRingPropertyTest, RejoinRestoresPriorRouting) {
  const uint64_t seed = testing::TestSeed(99);
  SCOPED_TRACE(testing::SeedTrace(seed));
  Rng rng(seed);
  cluster::HashRing ring;
  for (const std::string& id : NodeIds(kNodes)) ring.AddNode(id);
  std::vector<uint64_t> devices(4000);
  std::vector<std::string> before(devices.size());
  for (size_t i = 0; i < devices.size(); ++i) {
    devices[i] = rng.Next();
    before[i] = ring.NodeFor(devices[i]);
  }
  ring.RemoveNode("node-5");
  ring.AddNode("node-5");
  for (size_t i = 0; i < devices.size(); ++i) {
    EXPECT_EQ(ring.NodeFor(devices[i]), before[i]);
  }
}

}  // namespace
}  // namespace leakdet
