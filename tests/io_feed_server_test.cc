// Loopback integration tests of the Figure 3 distribution channel: the
// feed server, the device-side fetch helpers, and the TCP substrate.

#include "io/feed_server.h"

#include <gtest/gtest.h>

#include <atomic>

#include "core/signature_server.h"
#include "match/signature.h"
#include "net/tcp.h"
#include "util/rng.h"

namespace leakdet::io {
namespace {

match::SignatureSet TestSignatures() {
  match::ConjunctionSignature sig;
  sig.id = "sig-0";
  sig.tokens = {"&udid=9774d56d682e549c"};
  sig.host_scope = "tracker.example";
  return match::SignatureSet({sig});
}

TEST(TcpTest, ListenerConnectRoundTrip) {
  auto listener = net::TcpListener::Bind(0);
  ASSERT_TRUE(listener.ok());
  EXPECT_GT(listener->port(), 0);
  auto client = net::TcpConnectLoopback(listener->port());
  ASSERT_TRUE(client.ok());
  auto server_side = listener->Accept(2000);
  ASSERT_TRUE(server_side.ok());
  ASSERT_TRUE(client->WriteAll("ping").ok());
  client->ShutdownWrite();
  auto got = server_side->ReadUntilClose();
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, "ping");
}

TEST(TcpTest, AcceptTimesOut) {
  auto listener = net::TcpListener::Bind(0);
  ASSERT_TRUE(listener.ok());
  auto conn = listener->Accept(50);
  ASSERT_FALSE(conn.ok());
  EXPECT_EQ(conn.status().code(), StatusCode::kNotFound);
}

TEST(TcpTest, ConnectToClosedPortFails) {
  // Bind then close to find a (very likely) unused port.
  auto listener = net::TcpListener::Bind(0);
  ASSERT_TRUE(listener.ok());
  uint16_t port = listener->port();
  listener->Close();
  EXPECT_FALSE(net::TcpConnectLoopback(port).ok());
}

TEST(FeedServerTest, ServesFeedAndVersion) {
  std::string feed_text = TestSignatures().Serialize();
  FeedServer server([&feed_text] {
    return std::make_pair(uint64_t{3}, feed_text);
  });
  ASSERT_TRUE(server.Start().ok());

  auto version = FetchFeedVersion(server.port());
  ASSERT_TRUE(version.ok());
  EXPECT_EQ(*version, 3u);

  auto feed = FetchFeed(server.port());
  ASSERT_TRUE(feed.ok());
  EXPECT_EQ(feed->version, 3u);
  EXPECT_EQ(feed->payload, feed_text);

  // The fetched payload deserializes into an equivalent working set.
  auto restored = match::SignatureSet::Deserialize(feed->payload);
  ASSERT_TRUE(restored.ok());
  EXPECT_TRUE(restored->Matches("x &udid=9774d56d682e549c y",
                                "tracker.example"));
  server.Stop();
  EXPECT_GE(server.requests_served(), 2u);
}

TEST(FeedServerTest, UnknownPathIs404) {
  FeedServer server([] { return std::make_pair(uint64_t{1}, std::string()); });
  ASSERT_TRUE(server.Start().ok());
  auto conn = net::TcpConnectLoopback(server.port());
  ASSERT_TRUE(conn.ok());
  ASSERT_TRUE(conn->WriteAll("GET /nope HTTP/1.1\r\nHost: x\r\n\r\n").ok());
  conn->ShutdownWrite();
  auto raw = conn->ReadUntilClose();
  ASSERT_TRUE(raw.ok());
  EXPECT_NE(raw->find("404"), std::string::npos);
}

TEST(FeedServerTest, MalformedRequestIs400) {
  FeedServer server([] { return std::make_pair(uint64_t{1}, std::string()); });
  ASSERT_TRUE(server.Start().ok());
  auto conn = net::TcpConnectLoopback(server.port());
  ASSERT_TRUE(conn.ok());
  ASSERT_TRUE(conn->WriteAll("NOT AN HTTP REQUEST\r\n\r\n").ok());
  conn->ShutdownWrite();
  auto raw = conn->ReadUntilClose();
  ASSERT_TRUE(raw.ok());
  EXPECT_NE(raw->find("400"), std::string::npos);
}

TEST(FeedServerTest, NonGetIs405) {
  FeedServer server([] { return std::make_pair(uint64_t{1}, std::string()); });
  ASSERT_TRUE(server.Start().ok());
  auto conn = net::TcpConnectLoopback(server.port());
  ASSERT_TRUE(conn.ok());
  ASSERT_TRUE(conn->WriteAll(
                      "POST /feed HTTP/1.1\r\nHost: x\r\n\r\n")
                  .ok());
  conn->ShutdownWrite();
  auto raw = conn->ReadUntilClose();
  ASSERT_TRUE(raw.ok());
  EXPECT_NE(raw->find("405"), std::string::npos);
}

TEST(FeedServerTest, VersionAdvancesWithProvider) {
  std::atomic<uint64_t> version{1};
  FeedServer server([&version] {
    return std::make_pair(version.load(), std::string("payload"));
  });
  ASSERT_TRUE(server.Start().ok());
  EXPECT_EQ(*FetchFeedVersion(server.port()), 1u);
  version.store(2);
  EXPECT_EQ(*FetchFeedVersion(server.port()), 2u);
}

TEST(FeedServerTest, ServesSignatureServerFeedEndToEnd) {
  // Full Figure 3 loop: streaming server retrains, publishes over HTTP,
  // device polls and deploys.
  core::DeviceTokens tokens;
  tokens.android_id = "9774d56d682e549c";
  core::PayloadCheck oracle({tokens});
  core::SignatureServer::Options options;
  options.retrain_after = 20;
  options.pipeline.sample_size = 15;
  core::SignatureServer sig_server(&oracle, options);
  leakdet::Rng rng(9);
  for (int i = 0; i < 25; ++i) {
    core::HttpPacket p;
    p.destination.host = "ads.feedtest.net";
    p.destination.ip = *net::Ipv4Address::Parse("77.7.7.7");
    p.request_line = "GET /v?k=" + rng.RandomHex(4) +
                     "&udid=9774d56d682e549c&r=" + rng.RandomHex(6) +
                     " HTTP/1.1";
    sig_server.Ingest(p);
  }
  ASSERT_GE(sig_server.feed_version(), 1u);

  FeedServer http_server([&sig_server] {
    return std::make_pair(sig_server.feed_version(), sig_server.Feed());
  });
  ASSERT_TRUE(http_server.Start().ok());
  auto feed = FetchFeed(http_server.port());
  ASSERT_TRUE(feed.ok());
  EXPECT_EQ(feed->version, sig_server.feed_version());
  auto deployed = match::SignatureSet::Deserialize(feed->payload);
  ASSERT_TRUE(deployed.ok());
  EXPECT_GT(deployed->size(), 0u);
}

TEST(FeedServerTest, LargeFeedSurvivesPartialWrites) {
  // A multi-megabyte feed exceeds any single socket write; the response must
  // arrive intact through the short-write loop.
  leakdet::Rng rng(13);
  std::vector<match::ConjunctionSignature> sigs;
  for (int i = 0; i < 2000; ++i) {
    match::ConjunctionSignature sig;
    sig.id = "sig-" + std::to_string(i);
    sig.tokens = {rng.RandomHex(400), rng.RandomHex(400)};
    sigs.push_back(std::move(sig));
  }
  std::string feed_text = match::SignatureSet(std::move(sigs)).Serialize();
  ASSERT_GT(feed_text.size(), 2u << 20);
  FeedServer server([&feed_text] {
    return std::make_pair(uint64_t{9}, feed_text);
  });
  ASSERT_TRUE(server.Start().ok());
  auto feed = FetchFeed(server.port());
  ASSERT_TRUE(feed.ok());
  EXPECT_EQ(feed->version, 9u);
  EXPECT_EQ(feed->payload, feed_text);
}

TEST(FeedServerTest, IdleClientCannotWedgeTheServer) {
  FeedServer server([] { return std::make_pair(uint64_t{4}, std::string()); },
                    /*read_timeout_ms=*/100);
  ASSERT_TRUE(server.Start().ok());
  // Connect and send nothing: without a read deadline this connection would
  // park the accept loop forever.
  auto idle = net::TcpConnectLoopback(server.port());
  ASSERT_TRUE(idle.ok());
  // The server must shed the idle connection and serve the next client.
  auto version = FetchFeedVersion(server.port());
  ASSERT_TRUE(version.ok());
  EXPECT_EQ(*version, 4u);
}

TEST(FeedServerTest, StopIsIdempotentAndRestartable) {
  FeedServer server([] { return std::make_pair(uint64_t{1}, std::string()); });
  ASSERT_TRUE(server.Start().ok());
  server.Stop();
  server.Stop();
  // A fresh Start() binds a new port.
  ASSERT_TRUE(server.Start().ok());
  EXPECT_TRUE(FetchFeedVersion(server.port()).ok());
}

}  // namespace
}  // namespace leakdet::io
