#include "eval/report.h"

#include <gtest/gtest.h>

namespace leakdet::eval {
namespace {

const sim::Trace& ReportTrace() {
  static const sim::Trace* trace = [] {
    sim::TrafficConfig config;
    config.seed = 13;
    config.scale = 0.03;
    return new sim::Trace(sim::GenerateTrace(config));
  }();
  return *trace;
}

TEST(ReportTest, ContainsEverySection) {
  ReportOptions options;
  options.sample_sizes = {80};
  auto report = GenerateMarkdownReport(ReportTrace(), options);
  ASSERT_TRUE(report.ok());
  for (const char* section :
       {"# Sensitive-information leakage study", "## Dataset",
        "## Permission combinations", "## Destination fan-out",
        "## Top destinations", "## Sensitive information in transit",
        "## Signature detection"}) {
    EXPECT_NE(report->find(section), std::string::npos) << section;
  }
  // Counts embedded in the report agree with the trace.
  EXPECT_NE(report->find(std::to_string(ReportTrace().packets.size())),
            std::string::npos);
}

TEST(ReportTest, SkipsDetectionWhenNoSampleSizes) {
  ReportOptions options;
  options.sample_sizes = {};
  auto report = GenerateMarkdownReport(ReportTrace(), options);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->find("## Signature detection"), std::string::npos);
  EXPECT_NE(report->find("## Dataset"), std::string::npos);
}

TEST(ReportTest, MaxDomainsCapRespected) {
  ReportOptions options;
  options.sample_sizes = {};
  options.max_domains = 3;
  auto report = GenerateMarkdownReport(ReportTrace(), options);
  ASSERT_TRUE(report.ok());
  // The destinations table has header + rule + at most 3 rows before the
  // blank line.
  size_t begin = report->find("## Top destinations");
  size_t end = report->find("## Sensitive information");
  ASSERT_NE(begin, std::string::npos);
  ASSERT_NE(end, std::string::npos);
  std::string section = report->substr(begin, end - begin);
  size_t rows = 0;
  for (char c : section) {
    if (c == '\n') ++rows;
  }
  EXPECT_LE(rows, 10u);
}

}  // namespace
}  // namespace leakdet::eval
