#ifndef LEAKDET_TESTS_TEST_SEED_H_
#define LEAKDET_TESTS_TEST_SEED_H_

#include <cstdint>
#include <cstdlib>
#include <string>

namespace leakdet::testing {

/// Seed for a randomized test: `default_seed` unless the LEAKDET_TEST_SEED
/// environment variable overrides it (decimal or 0x-prefixed hex). Pair with
/// SCOPED_TRACE(SeedTrace(seed)) so any failure prints the exact seed to
/// replay: `LEAKDET_TEST_SEED=<n> ./the_test --gtest_filter=...`.
inline uint64_t TestSeed(uint64_t default_seed) {
  const char* env = std::getenv("LEAKDET_TEST_SEED");
  if (env == nullptr || *env == '\0') return default_seed;
  return std::strtoull(env, nullptr, 0);
}

inline std::string SeedTrace(uint64_t seed) {
  return "seed=" + std::to_string(seed) +
         " (replay with LEAKDET_TEST_SEED=" + std::to_string(seed) + ")";
}

}  // namespace leakdet::testing

#endif  // LEAKDET_TESTS_TEST_SEED_H_
