// Fleet-scale property test for the K-anonymity gate: train shards over a
// simulated device fleet, merge, publish with threshold K, then recount
// distinct devices per published token the naive way over *all* observed
// traffic. No published token may fall below K.

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>
#include <vector>

#include "core/packet.h"
#include "core/payload_check.h"
#include "federation/merge.h"
#include "federation/shard_trainer.h"
#include "sim/fleet.h"

namespace leakdet::federation {
namespace {

struct FleetWorld {
  explicit FleetWorld(uint64_t seed) {
    sim::FleetConfig config;
    config.seed = seed;
    config.num_devices = 20;
    config.device_skew = 0.4;
    config.market.seed = seed + 1;
    config.market.scale = 0.05;
    fleet = std::make_unique<sim::Fleet>(config);
    std::vector<core::DeviceTokens> tokens;
    for (uint64_t index = 0; index < fleet->num_devices(); ++index) {
      tokens.push_back(fleet->DeviceAt(index).ToTokens());
    }
    oracle = std::make_unique<core::PayloadCheck>(tokens);
  }

  ShardTrainerOptions TrainerOptions() const {
    ShardTrainerOptions options;
    options.tenant = "fleet";
    options.pipeline.sample_size = 20;
    options.pipeline.normal_corpus_size = 40;
    options.pipeline.num_threads = 1;
    return options;
  }

  std::unique_ptr<sim::Fleet> fleet;
  std::unique_ptr<core::PayloadCheck> oracle;
};

TEST(KAnonymityGateTest, NoPublishedTokenBelowKDevices) {
  FleetWorld world(5150);
  const size_t kShards = 3;
  const size_t kEvents = 1500;

  std::vector<ShardTrainer> trainers;
  for (size_t shard = 0; shard < kShards; ++shard) {
    trainers.emplace_back(world.TrainerOptions(), world.oracle.get());
  }
  // Ground truth, rebuilt independently of any federation code: every
  // (device, packet content) pair actually observed.
  std::vector<std::pair<uint64_t, std::string>> observed;

  sim::Fleet::Stream stream = world.fleet->NewStream(1);
  for (size_t i = 0; i < kEvents; ++i) {
    sim::Fleet::Event event = stream.Next();
    uint64_t key = world.fleet->DeviceKey(event.device_index);
    trainers[event.device_index % kShards].Observe(key, event.packet.packet);
    observed.emplace_back(event.device_index,
                          core::PacketContent(event.packet.packet));
  }

  std::vector<ShardExport> shards;
  for (const ShardTrainer& trainer : trainers) {
    auto shard = trainer.Train();
    ASSERT_TRUE(shard.ok()) << shard.status().message();
    shards.push_back(std::move(*shard));
  }
  auto merged = MergeAll(shards);
  ASSERT_TRUE(merged.ok()) << merged.status().message();

  for (size_t k : {2u, 3u, 5u}) {
    PublishStats stats;
    match::SignatureSet published = PublishFederated(*merged, k, &stats);
    std::set<std::string> tokens;
    for (const auto& sig : published.signatures()) {
      tokens.insert(sig.tokens.begin(), sig.tokens.end());
    }
    for (const std::string& token : tokens) {
      std::set<uint64_t> devices;
      for (const auto& [device, content] : observed) {
        if (content.find(token) != std::string::npos) devices.insert(device);
      }
      EXPECT_GE(devices.size(), k)
          << "token \"" << token << "\" published at K=" << k << " but only "
          << devices.size() << " devices ever emitted it";
    }
    EXPECT_LE(stats.tokens_suppressed, stats.tokens_total);
    EXPECT_EQ(stats.signatures_published, published.size());
    if (k > 2) {
      // A stricter K can only shrink (or hold) the published vocabulary.
      match::SignatureSet loose = PublishFederated(*merged, 2);
      std::set<std::string> loose_tokens;
      for (const auto& sig : loose.signatures()) {
        loose_tokens.insert(sig.tokens.begin(), sig.tokens.end());
      }
      for (const std::string& token : tokens) {
        EXPECT_TRUE(loose_tokens.count(token))
            << "token survived K=" << k << " but not K=2";
      }
    }
  }
}

TEST(KAnonymityGateTest, PerDeviceIdentifiersAreSuppressed) {
  // The gate's reason to exist: a single device's ANDROID_ID/IMEI appears on
  // exactly one device, so at K >= 2 it can never be published as signature
  // vocabulary even if local training latched onto it.
  FleetWorld world(6021);
  ShardTrainer trainer(world.TrainerOptions(), world.oracle.get());
  sim::Fleet::Stream stream = world.fleet->NewStream(2);
  for (size_t i = 0; i < 800; ++i) {
    sim::Fleet::Event event = stream.Next();
    trainer.Observe(world.fleet->DeviceKey(event.device_index),
                    event.packet.packet);
  }
  auto shard = trainer.Train();
  ASSERT_TRUE(shard.ok()) << shard.status().message();
  match::SignatureSet published = PublishFederated(*shard, 2);

  std::set<std::string> per_device_values;
  for (uint64_t index = 0; index < world.fleet->num_devices(); ++index) {
    sim::DeviceProfile device = world.fleet->DeviceAt(index);
    per_device_values.insert(device.android_id);
    per_device_values.insert(device.imei);
    per_device_values.insert(device.imsi);
    per_device_values.insert(device.sim_serial);
  }
  for (const auto& sig : published.signatures()) {
    for (const std::string& token : sig.tokens) {
      for (const std::string& value : per_device_values) {
        EXPECT_EQ(token.find(value), std::string::npos)
            << "published token \"" << token
            << "\" embeds a device-unique identifier";
      }
    }
  }
}

}  // namespace
}  // namespace leakdet::federation
