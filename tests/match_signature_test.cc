#include "match/signature.h"

#include <gtest/gtest.h>

namespace leakdet::match {
namespace {

ConjunctionSignature MakeSig(std::string id, std::vector<std::string> tokens,
                             std::string host = "") {
  ConjunctionSignature sig;
  sig.id = std::move(id);
  sig.tokens = std::move(tokens);
  sig.host_scope = std::move(host);
  sig.cluster_size = 3;
  return sig;
}

TEST(SignatureSetTest, ConjunctionRequiresAllTokens) {
  SignatureSet set({MakeSig("s0", {"alpha", "beta"})});
  EXPECT_TRUE(set.Matches("xx alpha yy beta zz"));
  EXPECT_FALSE(set.Matches("xx alpha yy"));
  EXPECT_FALSE(set.Matches("beta only"));
  EXPECT_FALSE(set.Matches(""));
}

TEST(SignatureSetTest, MultipleSignaturesIndependent) {
  SignatureSet set({MakeSig("s0", {"aaa", "bbb"}), MakeSig("s1", {"ccc"})});
  auto hits = set.Match("ccc aaa");
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0], 1u);
  hits = set.Match("aaa bbb ccc");
  EXPECT_EQ(hits.size(), 2u);
}

TEST(SignatureSetTest, SharedTokensAcrossSignatures) {
  SignatureSet set({MakeSig("s0", {"common", "only0"}),
                    MakeSig("s1", {"common", "only1"})});
  auto hits = set.Match("common only1");
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0], 1u);
}

TEST(SignatureSetTest, HostScopeRestricts) {
  SignatureSet set({MakeSig("s0", {"token"}, "admob.com")});
  EXPECT_TRUE(set.Matches("token here", "admob.com"));
  EXPECT_FALSE(set.Matches("token here", "doubleclick.net"));
  // Empty host_domain disables scoping (caller opted out).
  EXPECT_TRUE(set.Matches("token here", ""));
}

TEST(SignatureSetTest, UnscopedSignatureMatchesAnyHost) {
  SignatureSet set({MakeSig("s0", {"token"})});
  EXPECT_TRUE(set.Matches("token", "anything.example"));
}

TEST(SignatureSetTest, EmptyTokenListNeverMatches) {
  SignatureSet set({MakeSig("s0", {})});
  EXPECT_FALSE(set.Matches("anything at all"));
}

TEST(SignatureSetTest, EmptySetMatchesNothing) {
  SignatureSet set;
  EXPECT_FALSE(set.Matches("whatever"));
  EXPECT_TRUE(set.empty());
}

TEST(SignatureSetTest, TokenMustMatchExactBytes) {
  SignatureSet set({MakeSig("s0", {"CaseSensitive"})});
  EXPECT_TRUE(set.Matches("xxCaseSensitivexx"));
  EXPECT_FALSE(set.Matches("xxcasesensitivexx"));
}

TEST(SignatureSetTest, SerializeDeserializeRoundTrip) {
  std::vector<ConjunctionSignature> sigs = {
      MakeSig("sig-0", {"GET /gampad/ads?", "&dc_uid=900150983cd2"},
              "doubleclick.net"),
      MakeSig("sig-1", {std::string("bin\x00\x01tok", 8)}),
  };
  sigs[1].cluster_size = 42;
  SignatureSet original(sigs);
  std::string text = original.Serialize();
  auto restored = SignatureSet::Deserialize(text);
  ASSERT_TRUE(restored.ok());
  ASSERT_EQ(restored->size(), 2u);
  EXPECT_EQ(restored->signatures()[0], sigs[0]);
  EXPECT_EQ(restored->signatures()[1], sigs[1]);
  // Restored set must behave identically.
  EXPECT_TRUE(restored->Matches("GET /gampad/ads?x&dc_uid=900150983cd2",
                                "doubleclick.net"));
}

TEST(SignatureSetTest, DeserializeRejectsBadHeader) {
  EXPECT_FALSE(SignatureSet::Deserialize("not-a-signature-file\n").ok());
  EXPECT_FALSE(SignatureSet::Deserialize("").ok());
}

TEST(SignatureSetTest, DeserializeRejectsUnterminatedBlock) {
  std::string text =
      "leakdet-signatures v1\n"
      "signature s0\n"
      "token 616263\n";
  EXPECT_FALSE(SignatureSet::Deserialize(text).ok());
}

TEST(SignatureSetTest, DeserializeRejectsBadTokenHex) {
  std::string text =
      "leakdet-signatures v1\n"
      "signature s0\n"
      "token zznothex\n"
      "end\n";
  EXPECT_FALSE(SignatureSet::Deserialize(text).ok());
}

TEST(SignatureSetTest, DeserializeEmptySetOk) {
  auto set = SignatureSet::Deserialize("leakdet-signatures v1\n");
  ASSERT_TRUE(set.ok());
  EXPECT_TRUE(set->empty());
}

TEST(SignatureSetTest, MatchIsOneScanRegardlessOfSignatureCount) {
  // Smoke-check the shared-automaton path with many signatures.
  std::vector<ConjunctionSignature> sigs;
  for (int i = 0; i < 200; ++i) {
    // The '.' terminator keeps one token from being a prefix of another
    // (token-77 would otherwise contain token-7).
    sigs.push_back(MakeSig("sig-" + std::to_string(i),
                           {"unique-token-" + std::to_string(i) + ".",
                            "shared"}));
  }
  SignatureSet set(sigs);
  auto hits = set.Match("shared unique-token-77. unique-token-142.");
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0], 77u);
  EXPECT_EQ(hits[1], 142u);
}

}  // namespace
}  // namespace leakdet::match
