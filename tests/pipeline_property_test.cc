// Property sweeps over the pipeline's structural invariants: whatever the
// options, clusters partition the sample, signatures reference real cluster
// content, and detection respects the training set.

#include <gtest/gtest.h>

#include <set>

#include "core/pipeline.h"
#include "eval/cluster_quality.h"
#include "util/rng.h"

#include "test_seed.h"

namespace leakdet::core {
namespace {

struct Fixture {
  std::vector<HttpPacket> suspicious;
  std::vector<HttpPacket> normal;
};

Fixture MakeFixture() {
  Fixture f;
  const uint64_t seed = testing::TestSeed(2024);
  SCOPED_TRACE(testing::SeedTrace(seed));
  Rng rng(seed);
  auto make = [&rng](const std::string& host, const char* ip,
                     const std::string& tpl, const std::string& value) {
    HttpPacket p;
    p.destination.host = host;
    p.destination.ip = *net::Ipv4Address::Parse(ip);
    p.destination.port = 80;
    p.request_line = "GET /" + tpl + "?k=" + rng.RandomHex(5) + "&id=" + value +
                     "&r=" + rng.RandomHex(6) + " HTTP/1.1";
    return p;
  };
  for (int i = 0; i < 25; ++i) {
    f.suspicious.push_back(
        make("a.alpha.net", "20.0.0.1", "alpha/fetch", "9774d56d682e549c"));
    f.suspicious.push_back(
        make("b.beta.org", "99.0.0.1", "beta/sync", "352099001761481"));
  }
  for (int i = 0; i < 150; ++i) {
    f.normal.push_back(
        make("cdn.gamma.io", "55.0.0.1", "assets", rng.RandomHex(16)));
  }
  return f;
}

class PipelineCutSweep : public ::testing::TestWithParam<double> {};

TEST_P(PipelineCutSweep, ClustersPartitionSampleAtEveryCutHeight) {
  Fixture f = MakeFixture();
  PipelineOptions options;
  options.sample_size = 30;
  options.cut_height = GetParam();
  auto result = RunPipeline(f.suspicious, f.normal, options);
  ASSERT_TRUE(result.ok());
  std::set<int32_t> seen;
  for (const auto& cluster : result->clusters) {
    ASSERT_FALSE(cluster.empty());
    for (int32_t member : cluster) {
      EXPECT_GE(member, 0);
      EXPECT_LT(member, 30);
      EXPECT_TRUE(seen.insert(member).second) << "member in two clusters";
    }
  }
  EXPECT_EQ(seen.size(), 30u);
  // One signature at most per cluster; reports cover every cluster.
  EXPECT_LE(result->signatures.size(), result->clusters.size());
  EXPECT_EQ(result->cluster_reports.size(), result->clusters.size());
}

TEST_P(PipelineCutSweep, SignatureTokensComeFromSampledContent) {
  Fixture f = MakeFixture();
  PipelineOptions options;
  options.sample_size = 24;
  options.cut_height = GetParam();
  auto result = RunPipeline(f.suspicious, f.normal, options);
  ASSERT_TRUE(result.ok());
  // Every token of every signature must occur in at least one sampled
  // packet's content (tokens are extracted, never synthesized).
  std::vector<std::string> contents;
  for (size_t idx : result->sampled_indices) {
    contents.push_back(PacketContent(f.suspicious[idx]));
  }
  for (const auto& sig : result->signatures.signatures()) {
    for (const std::string& token : sig.tokens) {
      bool found = false;
      for (const std::string& content : contents) {
        if (content.find(token) != std::string::npos) {
          found = true;
          break;
        }
      }
      EXPECT_TRUE(found) << "orphan token: " << token;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(CutHeights, PipelineCutSweep,
                         ::testing::Values(0.5, 1.0, 1.5, 2.0, 3.0, 6.0));

class PipelineSampleSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(PipelineSampleSweep, SampleIndicesAreDistinctSortedAndInRange) {
  Fixture f = MakeFixture();
  PipelineOptions options;
  options.sample_size = GetParam();
  auto result = RunPipeline(f.suspicious, f.normal, options);
  ASSERT_TRUE(result.ok());
  size_t expected = std::min(GetParam(), f.suspicious.size());
  ASSERT_EQ(result->sampled_indices.size(), expected);
  for (size_t i = 0; i < result->sampled_indices.size(); ++i) {
    EXPECT_LT(result->sampled_indices[i], f.suspicious.size());
    if (i > 0) {
      EXPECT_GT(result->sampled_indices[i], result->sampled_indices[i - 1]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(SampleSizes, PipelineSampleSweep,
                         ::testing::Values(1, 2, 5, 20, 50, 500));

TEST(PipelinePropertyTest, TrainingPacketsAreDetectedWhenSignaturesEmitted) {
  Fixture f = MakeFixture();
  PipelineOptions options;
  options.sample_size = 20;
  auto result = RunPipeline(f.suspicious, f.normal, options);
  ASSERT_TRUE(result.ok());
  ASSERT_GT(result->signatures.size(), 0u);
  // Map each emitted signature back to its cluster; every member of an
  // emitted cluster must be detected by the resulting set.
  Detector detector(result->signatures);
  std::set<size_t> emitted_clusters;
  size_t sig_idx = 0;
  for (const auto& report : result->cluster_reports) {
    if (report.emitted) {
      emitted_clusters.insert(report.cluster_index);
      ++sig_idx;
    }
  }
  for (size_t c = 0; c < result->clusters.size(); ++c) {
    if (!emitted_clusters.count(c)) continue;
    for (int32_t member : result->clusters[c]) {
      const HttpPacket& packet =
          f.suspicious[result->sampled_indices[static_cast<size_t>(member)]];
      EXPECT_TRUE(detector.IsSensitive(packet));
    }
  }
}

TEST(PipelinePropertyTest, ClusterQualityDiagnosticsOnRealPipeline) {
  // Silhouette of the pipeline's clusters (two planted services) should be
  // strongly positive, and the dendrogram should preserve the metric.
  Fixture f = MakeFixture();
  PipelineOptions options;
  options.sample_size = 30;
  auto clustering = RunClustering(f.suspicious, f.normal, options);
  ASSERT_TRUE(clustering.ok());
  // Recompute the matrix the pipeline used.
  auto compressor = std::move(*compress::MakeCompressor(options.compressor));
  compress::NcdCalculator ncd(compressor.get());
  PacketDistance metric(&ncd, options.distance);
  DistanceMatrix matrix = ComputeDistanceMatrix(clustering->sample, metric);
  EXPECT_GT(eval::MeanSilhouette(matrix, clustering->clusters), 0.5);
  Dendrogram dendrogram = ClusterGroupAverage(matrix);
  EXPECT_GT(eval::CopheneticCorrelation(matrix, dendrogram), 0.8);
}

}  // namespace
}  // namespace leakdet::core
