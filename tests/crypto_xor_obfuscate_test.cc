#include "crypto/xor_obfuscate.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace leakdet::crypto {
namespace {

TEST(XorObfuscateTest, RoundTrip) {
  std::string value = "352099001761481";
  std::string key = "zq2013key";
  std::string hex = XorObfuscateHex(value, key);
  EXPECT_EQ(hex.size(), value.size() * 2);
  EXPECT_EQ(XorDeobfuscateHex(hex, key), value);
}

TEST(XorObfuscateTest, DeterministicCiphertext) {
  // The §VI property: a fixed identifier under a fixed key produces the same
  // ciphertext everywhere — an invariant token.
  EXPECT_EQ(XorObfuscateHex("9774d56d682e549c", "k"),
            XorObfuscateHex("9774d56d682e549c", "k"));
}

TEST(XorObfuscateTest, KeyMatters) {
  EXPECT_NE(XorObfuscateHex("352099001761481", "key-a"),
            XorObfuscateHex("352099001761481", "key-b"));
}

TEST(XorObfuscateTest, WrongKeyDoesNotDecode) {
  std::string hex = XorObfuscateHex("sensitive", "right");
  EXPECT_NE(XorDeobfuscateHex(hex, "wrong!"), "sensitive");
}

TEST(XorObfuscateTest, KeyShorterAndLongerThanValue) {
  for (const char* key : {"k", "longer-than-the-value-itself-by-far"}) {
    std::string hex = XorObfuscateHex("abc123", key);
    EXPECT_EQ(XorDeobfuscateHex(hex, key), "abc123") << key;
  }
}

TEST(XorObfuscateTest, EmptyValue) {
  EXPECT_EQ(XorObfuscateHex("", "key"), "");
  EXPECT_EQ(XorDeobfuscateHex("", "key"), "");
}

TEST(XorObfuscateTest, BinaryValuesSurvive) {
  Rng rng(3);
  for (int trial = 0; trial < 20; ++trial) {
    std::string value;
    for (int i = 0; i < 40; ++i) {
      value += static_cast<char>(rng.UniformInt(256));
    }
    std::string key = rng.RandomHex(1 + rng.UniformInt(12));
    EXPECT_EQ(XorDeobfuscateHex(XorObfuscateHex(value, key), key), value);
  }
}

TEST(XorObfuscateTest, NonHexInputFailsOpen) {
  EXPECT_EQ(XorDeobfuscateHex("zz-not-hex", "key"), "");
}

}  // namespace
}  // namespace leakdet::crypto
