#include "sim/fleet.h"

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>
#include <vector>

#include "sim/device.h"

namespace leakdet::sim {
namespace {

TEST(DeviceStreamSeedTest, DistinctPerIndexAndFleet) {
  std::set<uint64_t> seeds;
  for (uint64_t index = 0; index < 1000; ++index) {
    seeds.insert(DeviceStreamSeed(2013, index));
  }
  EXPECT_EQ(seeds.size(), 1000u);
  EXPECT_NE(DeviceStreamSeed(2013, 7), DeviceStreamSeed(2014, 7));
}

TEST(MakeDeviceAtTest, ReplayStable) {
  DeviceProfile a = MakeDeviceAt(2013, 42);
  DeviceProfile b = MakeDeviceAt(2013, 42);
  EXPECT_EQ(a.android_id, b.android_id);
  EXPECT_EQ(a.imei, b.imei);
  EXPECT_EQ(a.imsi, b.imsi);
  EXPECT_EQ(a.sim_serial, b.sim_serial);
  EXPECT_EQ(a.carrier, b.carrier);
}

TEST(MakeDeviceAtTest, OrderIndependent) {
  // Device 500 is the same whether it is materialized alone or after the
  // whole fleet prefix — the property shared-generator drawing lacked.
  DeviceProfile alone = MakeDeviceAt(2013, 500);
  for (uint64_t index = 0; index < 500; ++index) MakeDeviceAt(2013, index);
  DeviceProfile after = MakeDeviceAt(2013, 500);
  EXPECT_EQ(alone.android_id, after.android_id);
  EXPECT_EQ(alone.imei, after.imei);
}

TEST(MakeDeviceAtTest, DeviceUniqueIdentifiers) {
  // K-anonymity distinct-device counts are only meaningful if identifier
  // values are unique per device.
  std::set<std::string> android_ids, imeis, imsis;
  for (uint64_t index = 0; index < 200; ++index) {
    DeviceProfile device = MakeDeviceAt(2013, index);
    android_ids.insert(device.android_id);
    imeis.insert(device.imei);
    imsis.insert(device.imsi);
  }
  EXPECT_EQ(android_ids.size(), 200u);
  EXPECT_EQ(imeis.size(), 200u);
  EXPECT_EQ(imsis.size(), 200u);
}

FleetConfig SmallFleet() {
  FleetConfig config;
  config.seed = 77;
  config.num_devices = 25;
  config.market.seed = 99;
  config.market.scale = 0.05;
  return config;
}

TEST(FleetTest, StreamsReplayIdentically) {
  Fleet fleet(SmallFleet());
  Fleet::Stream a = fleet.NewStream(1);
  Fleet::Stream b = fleet.NewStream(1);
  for (int i = 0; i < 200; ++i) {
    Fleet::Event ea = a.Next();
    Fleet::Event eb = b.Next();
    EXPECT_EQ(ea.device_index, eb.device_index);
    EXPECT_DOUBLE_EQ(ea.time_s, eb.time_s);
    EXPECT_EQ(ea.packet.packet.request_line, eb.packet.packet.request_line);
    EXPECT_EQ(ea.packet.packet.body, eb.packet.packet.body);
    EXPECT_EQ(ea.packet.sensitive(), eb.packet.sensitive());
  }
}

TEST(FleetTest, EventContentIndependentOfInterleaving) {
  // Device D's n-th packet is a pure function of (fleet seed, D, n): two
  // streams with different salts interleave devices differently, yet the
  // n-th packet of any given device is identical across them.
  Fleet fleet(SmallFleet());
  auto collect = [&](uint64_t salt, size_t events) {
    std::map<uint64_t, std::vector<std::string>> per_device;
    Fleet::Stream stream = fleet.NewStream(salt);
    for (size_t i = 0; i < events; ++i) {
      Fleet::Event event = stream.Next();
      per_device[event.device_index].push_back(
          event.packet.packet.request_line + "|" + event.packet.packet.body);
    }
    return per_device;
  };
  auto a = collect(1, 600);
  auto b = collect(2, 600);
  size_t compared = 0;
  for (const auto& [device, packets_a] : a) {
    auto it = b.find(device);
    if (it == b.end()) continue;
    size_t n = std::min(packets_a.size(), it->second.size());
    for (size_t i = 0; i < n; ++i) {
      EXPECT_EQ(packets_a[i], it->second[i])
          << "device " << device << " packet " << i;
      ++compared;
    }
  }
  EXPECT_GT(compared, 100u) << "fleets barely overlapped; grow the sample";
}

TEST(FleetTest, DeviceTrafficCarriesItsOwnIdentifiers) {
  // A device's sensitive packets leak *that device's* values, not another
  // device's — the fix for shared-generator identifier bleed.
  Fleet fleet(SmallFleet());
  Fleet::Stream stream = fleet.NewStream(3);
  size_t checked = 0;
  for (int i = 0; i < 2000 && checked < 20; ++i) {
    Fleet::Event event = stream.Next();
    if (!event.packet.sensitive()) continue;
    std::string wire =
        event.packet.packet.request_line + event.packet.packet.cookie +
        event.packet.packet.body;
    // At least one of the device's raw identifiers (or their hex digests)
    // must be derivable from this device — spot-check the raw forms, which
    // the catalog leaks in cleartext for some services.
    for (uint64_t other = 0; other < fleet.num_devices(); ++other) {
      if (other == event.device_index) continue;
      DeviceProfile foreign = fleet.DeviceAt(other);
      EXPECT_EQ(wire.find(foreign.android_id), std::string::npos)
          << "device " << event.device_index << " leaked device " << other
          << "'s ANDROID_ID";
    }
    ++checked;
  }
  EXPECT_GT(checked, 0u);
}

TEST(FleetTest, ZipfSkewConcentratesTraffic) {
  FleetConfig config = SmallFleet();
  config.device_skew = 1.2;
  Fleet fleet(config);
  Fleet::Stream stream = fleet.NewStream(9);
  std::map<uint64_t, size_t> counts;
  for (int i = 0; i < 3000; ++i) ++counts[stream.Next().device_index];
  // The head device should clearly dominate the tail under skew 1.2.
  size_t head = 0, total = 0;
  for (const auto& [device, count] : counts) {
    head = std::max(head, count);
    total += count;
  }
  EXPECT_GT(head, 2 * (total / counts.size()))
      << "head device not heavier than the mean";
}

}  // namespace
}  // namespace leakdet::sim
