#include "compress/huffman.h"

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <vector>

#include "util/rng.h"

namespace leakdet::compress {
namespace {

TEST(HuffmanTest, SingleSymbolGetsLengthOne) {
  std::vector<uint64_t> freqs(10, 0);
  freqs[3] = 42;
  auto lengths = BuildHuffmanCodeLengths(freqs);
  EXPECT_EQ(lengths[3], 1);
  for (size_t s = 0; s < lengths.size(); ++s) {
    if (s != 3) EXPECT_EQ(lengths[s], 0);
  }
}

TEST(HuffmanTest, KraftEqualityForOptimalCode) {
  // An optimal Huffman code is complete: sum 2^-len == 1.
  Rng rng(3);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<uint64_t> freqs(2 + rng.UniformInt(60), 0);
    for (auto& f : freqs) f = rng.UniformInt(1000);
    size_t used = 0;
    for (auto f : freqs) {
      if (f > 0) ++used;
    }
    if (used < 2) continue;
    auto lengths = BuildHuffmanCodeLengths(freqs);
    double kraft = 0;
    for (uint8_t l : lengths) {
      if (l > 0) kraft += std::pow(2.0, -static_cast<double>(l));
    }
    EXPECT_NEAR(kraft, 1.0, 1e-9);
  }
}

TEST(HuffmanTest, FrequentSymbolsGetShorterCodes) {
  std::vector<uint64_t> freqs = {1000, 1, 1, 1};
  auto lengths = BuildHuffmanCodeLengths(freqs);
  EXPECT_LT(lengths[0], lengths[1]);
}

TEST(HuffmanTest, MaxLengthHonored) {
  // Fibonacci-like frequencies force deep optimal trees.
  std::vector<uint64_t> freqs;
  uint64_t a = 1, b = 1;
  for (int i = 0; i < 40; ++i) {
    freqs.push_back(a);
    uint64_t next = a + b;
    a = b;
    b = next;
  }
  auto lengths = BuildHuffmanCodeLengths(freqs, 12);
  for (uint8_t l : lengths) EXPECT_LE(l, 12);
  // Still decodable (Kraft <= 1).
  auto dec = HuffmanDecoder::Build(lengths);
  EXPECT_TRUE(dec.ok());
}

TEST(HuffmanTest, EncodeDecodeRoundTrip) {
  Rng rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    size_t alphabet = 2 + rng.UniformInt(100);
    std::vector<uint64_t> freqs(alphabet, 0);
    std::vector<uint32_t> message;
    for (int i = 0; i < 500; ++i) {
      uint32_t sym = static_cast<uint32_t>(rng.UniformInt(alphabet));
      message.push_back(sym);
      freqs[sym]++;
    }
    auto lengths = BuildHuffmanCodeLengths(freqs);
    HuffmanEncoder enc(lengths);
    BitWriter writer;
    for (uint32_t sym : message) enc.Encode(sym, &writer);
    std::string bits = writer.Finish();

    auto dec = HuffmanDecoder::Build(lengths);
    ASSERT_TRUE(dec.ok());
    BitReader reader(bits);
    for (uint32_t expected : message) {
      uint32_t sym;
      ASSERT_TRUE(dec->Decode(&reader, &sym).ok());
      EXPECT_EQ(sym, expected);
    }
  }
}

TEST(HuffmanTest, CompressionBeatsFixedWidthOnSkewedData) {
  // 256-symbol alphabet, heavily skewed: total bits must be well under 8/sym.
  std::vector<uint64_t> freqs(256, 1);
  freqs['e'] = 5000;
  freqs['t'] = 3000;
  freqs['a'] = 2500;
  auto lengths = BuildHuffmanCodeLengths(freqs);
  uint64_t total_bits = 0, total_syms = 0;
  for (size_t s = 0; s < 256; ++s) {
    total_bits += freqs[s] * lengths[s];
    total_syms += freqs[s];
  }
  EXPECT_LT(static_cast<double>(total_bits) / total_syms, 4.0);
}

TEST(HuffmanDecoderTest, RejectsOverSubscribedLengths) {
  // Three codes of length 1 oversubscribe the binary tree.
  std::vector<uint8_t> lengths = {1, 1, 1};
  EXPECT_FALSE(HuffmanDecoder::Build(lengths).ok());
}

TEST(HuffmanDecoderTest, RejectsAllZeroLengths) {
  std::vector<uint8_t> lengths = {0, 0, 0};
  EXPECT_FALSE(HuffmanDecoder::Build(lengths).ok());
}

TEST(HuffmanDecoderTest, IncompleteCodeDetectsInvalidInput) {
  // One symbol of length 2: codes 00; inputs reaching other leaves fail.
  std::vector<uint8_t> lengths = {2};
  auto dec = HuffmanDecoder::Build(lengths);
  ASSERT_TRUE(dec.ok());
  BitWriter w;
  w.WriteBits(0x3, 2);  // MSB-first "11" is not assigned
  w.WriteBits(0, 6);
  std::string data = w.Finish();
  BitReader r(data);
  uint32_t sym;
  EXPECT_FALSE(dec->Decode(&r, &sym).ok());
}

TEST(HuffmanDecoderTest, UnderrunDetected) {
  std::vector<uint8_t> lengths = {3, 3, 3, 3, 3, 3, 3, 3};
  auto dec = HuffmanDecoder::Build(lengths);
  ASSERT_TRUE(dec.ok());
  BitReader r("");
  uint32_t sym;
  EXPECT_FALSE(dec->Decode(&r, &sym).ok());
}

}  // namespace
}  // namespace leakdet::compress
