#include "store/wal.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "testing/packet_gen.h"
#include "testing/scripted_file.h"
#include "util/rng.h"

namespace leakdet::store {
namespace {

core::HttpPacket TestPacket(uint32_t app_id, const std::string& token) {
  core::HttpPacket packet;
  packet.app_id = app_id;
  packet.destination.port = 443;
  packet.destination.host = "ads.example.com";
  packet.request_line = "GET /track?id=" + token + " HTTP/1.1";
  packet.cookie = "session=" + token;
  packet.body = "k=v&token=" + token;
  return packet;
}

FeedRecord TestRecord(uint64_t i) {
  FeedRecord record;
  record.feed_version = i / 3;
  record.sensitive = (i % 2) == 0;
  record.shard = static_cast<uint32_t>(i % 4);
  record.num_matches = static_cast<uint32_t>(i % 5);
  record.packet = TestPacket(static_cast<uint32_t>(i), std::to_string(i));
  return record;
}

std::vector<FeedRecord> Collect(Dir* dir, const std::string& path,
                                uint64_t after, WalReplayStats* stats,
                                bool repair = false) {
  std::vector<FeedRecord> out;
  auto result = ReplayWal(
      dir, path, after,
      [&](const FeedRecord& record) {
        out.push_back(record);
        return Status::OK();
      },
      repair);
  EXPECT_TRUE(result.ok()) << result.status().message();
  if (result.ok() && stats != nullptr) *stats = *result;
  return out;
}

TEST(WalFramingTest, RecordRoundTripsThroughCursor) {
  FeedRecord record = TestRecord(7);
  record.sequence = 42;
  std::string frame = FrameRecord(record);
  RecordCursor cursor(frame);
  StatusOr<FeedRecord> decoded = cursor.Next();
  ASSERT_TRUE(decoded.ok()) << decoded.status().message();
  EXPECT_EQ(decoded->sequence, 42u);
  EXPECT_EQ(decoded->feed_version, record.feed_version);
  EXPECT_EQ(decoded->sensitive, record.sensitive);
  EXPECT_EQ(decoded->shard, record.shard);
  EXPECT_EQ(decoded->num_matches, record.num_matches);
  EXPECT_EQ(decoded->packet, record.packet);
  EXPECT_EQ(cursor.offset(), frame.size());
  EXPECT_EQ(cursor.Next().status().code(), StatusCode::kNotFound);
}

TEST(WalFramingTest, CursorFlagsTornTailAndCorruption) {
  std::string frame = FrameRecord(TestRecord(1));
  // Every strict prefix is a torn tail (OutOfRange), never Corruption.
  for (size_t len = 0; len < frame.size(); ++len) {
    RecordCursor cursor(std::string_view(frame).substr(0, len));
    if (len == 0) {
      EXPECT_EQ(cursor.Next().status().code(), StatusCode::kNotFound);
    } else {
      EXPECT_EQ(cursor.Next().status().code(), StatusCode::kOutOfRange)
          << "prefix length " << len;
    }
    EXPECT_EQ(cursor.offset(), 0u);
  }
  // Any single flipped bit is Corruption (or a plausible-but-wrong length
  // that reads as truncation) — never a silently different record.
  FeedRecord original = TestRecord(1);
  for (size_t i = 0; i < frame.size(); ++i) {
    std::string bad = frame;
    bad[i] = static_cast<char>(bad[i] ^ 0x20);
    RecordCursor cursor(bad);
    StatusOr<FeedRecord> decoded = cursor.Next();
    if (decoded.ok()) {
      ADD_FAILURE() << "flip at byte " << i << " went undetected";
    } else {
      StatusCode code = decoded.status().code();
      EXPECT_TRUE(code == StatusCode::kCorruption ||
                  code == StatusCode::kOutOfRange)
          << "byte " << i << ": " << decoded.status().message();
    }
  }
}

TEST(WalFramingTest, FuzzedBytesNeverCrashTheCursor) {
  Rng rng(2024);
  for (int round = 0; round < 200; ++round) {
    size_t len = static_cast<size_t>(rng.UniformInt(300));
    std::string noise(len, '\0');
    for (char& c : noise) c = static_cast<char>(rng.UniformInt(256));
    RecordCursor cursor(noise);
    // Drain until a terminal status; decoded garbage is fine, UB is not.
    for (int i = 0; i < 64; ++i) {
      if (!cursor.Next().ok()) break;
    }
  }
}

TEST(WalWriterTest, AppendThenReplayRoundTrips) {
  leakdet::testing::ScriptedDir dir;
  ASSERT_TRUE(dir.CreateDir("data").ok());
  auto writer = WalWriter::Open(&dir, "data", 1, WalOptions());
  ASSERT_TRUE(writer.ok());
  for (uint64_t i = 0; i < 25; ++i) {
    StatusOr<uint64_t> seq = (*writer)->Append(TestRecord(i));
    ASSERT_TRUE(seq.ok());
    EXPECT_EQ(*seq, i + 1);
  }
  ASSERT_TRUE((*writer)->Sync().ok());
  EXPECT_EQ((*writer)->durable_sequence(), 25u);

  WalReplayStats stats;
  std::vector<FeedRecord> records = Collect(&dir, "data", 0, &stats);
  ASSERT_EQ(records.size(), 25u);
  EXPECT_EQ(stats.last_sequence, 25u);
  for (uint64_t i = 0; i < 25; ++i) {
    EXPECT_EQ(records[i].sequence, i + 1);
    EXPECT_EQ(records[i].packet, TestRecord(i).packet);
  }

  // Suffix replay: only records past the cutoff are delivered.
  std::vector<FeedRecord> suffix = Collect(&dir, "data", 20, &stats);
  ASSERT_EQ(suffix.size(), 5u);
  EXPECT_EQ(suffix.front().sequence, 21u);
  EXPECT_EQ(stats.records, 25u);
  EXPECT_EQ(stats.applied, 5u);
}

TEST(WalWriterTest, RotatesSegmentsBySize) {
  leakdet::testing::ScriptedDir dir;
  ASSERT_TRUE(dir.CreateDir("data").ok());
  WalOptions options;
  options.segment_bytes = 512;  // tiny: force several rotations
  auto writer = WalWriter::Open(&dir, "data", 1, options);
  ASSERT_TRUE(writer.ok());
  for (uint64_t i = 0; i < 40; ++i) {
    ASSERT_TRUE((*writer)->Append(TestRecord(i)).ok());
  }
  ASSERT_TRUE((*writer)->Sync().ok());  // flush the staged tail batch
  EXPECT_GT((*writer)->segments_created(), 3u);

  WalReplayStats stats;
  std::vector<FeedRecord> records = Collect(&dir, "data", 0, &stats);
  EXPECT_EQ(records.size(), 40u);
  EXPECT_EQ(stats.segments, (*writer)->segments_created());
}

TEST(WalWriterTest, ResumesSequencesAcrossReopen) {
  leakdet::testing::ScriptedDir dir;
  ASSERT_TRUE(dir.CreateDir("data").ok());
  {
    auto writer = WalWriter::Open(&dir, "data", 1, WalOptions());
    ASSERT_TRUE(writer.ok());
    for (uint64_t i = 0; i < 10; ++i) {
      ASSERT_TRUE((*writer)->Append(TestRecord(i)).ok());
    }
    ASSERT_TRUE((*writer)->Sync().ok());
  }
  WalReplayStats stats;
  Collect(&dir, "data", 0, &stats);
  auto writer = WalWriter::Open(&dir, "data", stats.last_sequence + 1,
                                WalOptions());
  ASSERT_TRUE(writer.ok());
  for (uint64_t i = 10; i < 15; ++i) {
    ASSERT_TRUE((*writer)->Append(TestRecord(i)).ok());
  }
  ASSERT_TRUE((*writer)->Sync().ok());
  std::vector<FeedRecord> records = Collect(&dir, "data", 0, &stats);
  ASSERT_EQ(records.size(), 15u);
  EXPECT_EQ(records.back().sequence, 15u);
}

TEST(WalWriterTest, SyncPoliciesGateTheDurableWatermark) {
  for (SyncPolicy policy : {SyncPolicy::kEveryRecord, SyncPolicy::kEveryN,
                            SyncPolicy::kOnRotate}) {
    leakdet::testing::ScriptedDir dir;
    ASSERT_TRUE(dir.CreateDir("data").ok());
    WalOptions options;
    options.sync_policy = policy;
    options.sync_every_n = 4;
    auto writer = WalWriter::Open(&dir, "data", 1, options);
    ASSERT_TRUE(writer.ok());
    for (uint64_t i = 0; i < 10; ++i) {
      ASSERT_TRUE((*writer)->Append(TestRecord(i)).ok());
    }
    switch (policy) {
      case SyncPolicy::kEveryRecord:
        EXPECT_EQ((*writer)->durable_sequence(), 10u);
        break;
      case SyncPolicy::kEveryN:
        EXPECT_EQ((*writer)->durable_sequence(), 8u);  // two batches of 4
        break;
      case SyncPolicy::kOnRotate:
        EXPECT_EQ((*writer)->durable_sequence(), 0u);
        break;
    }
    ASSERT_TRUE((*writer)->Sync().ok());
    EXPECT_EQ((*writer)->durable_sequence(), 10u);
  }
}

TEST(WalWriterTest, ParseSyncPolicyNames) {
  for (SyncPolicy policy : {SyncPolicy::kEveryRecord, SyncPolicy::kEveryN,
                            SyncPolicy::kOnRotate}) {
    auto parsed = ParseSyncPolicy(SyncPolicyName(policy));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, policy);
  }
  EXPECT_FALSE(ParseSyncPolicy("sometimes").ok());
}

TEST(WalReplayTest, TornTailIsTruncatedOnlyInLastSegment) {
  leakdet::testing::ScriptedDir dir;
  ASSERT_TRUE(dir.CreateDir("data").ok());
  auto writer = WalWriter::Open(&dir, "data", 1, WalOptions());
  ASSERT_TRUE(writer.ok());
  for (uint64_t i = 0; i < 5; ++i) {
    ASSERT_TRUE((*writer)->Append(TestRecord(i)).ok());
  }
  ASSERT_TRUE((*writer)->Sync().ok());
  const std::string path = "data/" + SegmentFileName((*writer)->segment_id());

  // Simulate a torn tail: append half a record's worth of garbage.
  std::string frame = FrameRecord(TestRecord(5));
  auto file = dir.OpenAppend(path);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE(
      (*file)->Append(std::string_view(frame).substr(0, frame.size() / 2))
          .ok());
  ASSERT_TRUE((*file)->Close().ok());

  WalReplayStats stats;
  std::vector<FeedRecord> records =
      Collect(&dir, "data", 0, &stats, /*repair=*/true);
  EXPECT_EQ(records.size(), 5u);
  EXPECT_EQ(stats.truncated_bytes, frame.size() / 2);

  // After repair the tail is gone and the log replays cleanly again.
  stats = WalReplayStats();
  records = Collect(&dir, "data", 0, &stats);
  EXPECT_EQ(records.size(), 5u);
  EXPECT_EQ(stats.truncated_bytes, 0u);
}

TEST(WalReplayTest, MidLogDamageIsCorruptionNotTornTail) {
  leakdet::testing::ScriptedDir dir;
  ASSERT_TRUE(dir.CreateDir("data").ok());
  WalOptions options;
  options.segment_bytes = 256;  // many segments
  auto writer = WalWriter::Open(&dir, "data", 1, options);
  ASSERT_TRUE(writer.ok());
  for (uint64_t i = 0; i < 30; ++i) {
    ASSERT_TRUE((*writer)->Append(TestRecord(i)).ok());
  }
  ASSERT_TRUE((*writer)->Sync().ok());
  ASSERT_GT((*writer)->segments_created(), 2u);

  // Corrupt the FIRST segment: replay must refuse, not silently truncate
  // away every later record.
  const std::string first = "data/" + SegmentFileName(1);
  auto text = dir.Read(first);
  ASSERT_TRUE(text.ok());
  ASSERT_TRUE(dir.Truncate(first, text->size() - 3).ok());
  auto result = ReplayWal(&dir, "data", 0, nullptr, /*repair=*/true);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCorruption);
}

TEST(WalWriterTest, ShortWriteIsRepairedAndRetried) {
  // A deterministic fault schedule with frequent short writes: every flush
  // either lands intact or the writer truncates back to the last flushed
  // boundary and retries the staged batch — a faulted record is delayed,
  // never skipped, so replay must see the full contiguous log.
  leakdet::testing::StoreFaultProfile profile;
  profile.short_write = 0.3;
  leakdet::testing::ScriptedDir dir(77, profile);
  ASSERT_TRUE(dir.CreateDir("data").ok());
  WalOptions options;
  options.sync_policy = SyncPolicy::kEveryRecord;  // flush point per append
  auto writer = WalWriter::Open(&dir, "data", 1, options);
  ASSERT_TRUE(writer.ok());
  for (uint64_t i = 0; i < 50; ++i) {
    ASSERT_TRUE((*writer)->Append(TestRecord(i)).ok());
  }
  EXPECT_GT((*writer)->append_repairs(), 0u);
  EXPECT_FALSE((*writer)->broken());
  // A doubly-faulted flush keeps its batch staged; keep syncing until the
  // schedule lets it through (short writes never break the writer).
  bool synced = false;
  for (int i = 0; i < 100 && !synced; ++i) {
    synced = (*writer)->Sync().ok();
  }
  ASSERT_TRUE(synced);
  EXPECT_EQ((*writer)->durable_sequence(), 50u);

  auto result = ReplayWal(&dir, "data", 0, nullptr, /*repair=*/true);
  ASSERT_TRUE(result.ok()) << result.status().message();
  EXPECT_EQ(result->records, 50u);
}

}  // namespace
}  // namespace leakdet::store
