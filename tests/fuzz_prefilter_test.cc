// Seeded differential fuzz tests (ctest label: fuzz) for the rare-token
// prefilter against the exact DFA matcher. Contract under fuzz: for ANY
// payload and ANY signature set, Prefilter::Scan may admit false candidates
// but must never drop a payload the DFA would match — i.e.
// MatchIntoPrefiltered returns bit-identical hits to MatchInto in every
// kernel mode. Replays the checked-in corpus under tests/fuzz/ first, then
// seeded random payloads, mutation sweeps of leaking payloads, and randomly
// generated signature sets (LEAKDET_TEST_SEED overrides the seeds).

#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "match/compiled_set.h"
#include "match/signature.h"
#include "prefilter/prefilter.h"
#include "test_seed.h"
#include "util/rng.h"

#ifndef LEAKDET_FUZZ_CORPUS_DIR
#define LEAKDET_FUZZ_CORPUS_DIR "tests/fuzz"
#endif

namespace leakdet {
namespace {

using match::CompiledSignatureSet;
using match::ConjunctionSignature;
using match::MatchScratch;
using match::SignatureSet;

std::string ReadCorpus(const std::string& name) {
  const std::string path = std::string(LEAKDET_FUZZ_CORPUS_DIR) + "/" + name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing corpus file " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

// Every kernel the running CPU can execute; explicit modes, so the test is
// independent of LEAKDET_PREFILTER in the environment.
std::vector<prefilter::Mode> AvailableModes() {
  std::vector<prefilter::Mode> modes = {prefilter::Mode::kScalar};
  if (prefilter::Sse2Available()) modes.push_back(prefilter::Mode::kSse2);
  if (prefilter::Avx2Available()) modes.push_back(prefilter::Mode::kAvx2);
  return modes;
}

// A deliberately adversarial mix: multi-token conjunction, host-scoped
// signature, short-token signature (below the window width, so it is an
// always-candidate), a binary token, and two signatures sharing a 4-byte
// window prefix.
SignatureSet FuzzSignatures() {
  std::vector<ConjunctionSignature> sigs(6);
  sigs[0].id = "udid-leak";
  sigs[0].tokens = {"udid=9774d56d682e549c", "ver=2"};
  sigs[1].id = "imei-scoped";
  sigs[1].tokens = {"imei=3534900698"};
  sigs[1].host_scope = "tracker.example";
  sigs[2].id = "short";
  sigs[2].tokens = {"&q="};  // < 4 bytes: must be an always-candidate
  sigs[3].id = "binary";
  sigs[3].tokens = {std::string("\x01\xFF\x00\x7F\xC0mark", 9)};
  sigs[4].id = "shared-prefix-a";
  sigs[4].tokens = {"token-alpha-0001"};
  sigs[5].id = "shared-prefix-b";
  sigs[5].tokens = {"token-bravo-0002"};
  return SignatureSet(sigs);
}

// The differential oracle: prefiltered matching must equal plain matching —
// same hits, same order, same count — for every available kernel.
void ExpectDifferentialEquality(const CompiledSignatureSet& compiled,
                                const std::string& payload,
                                const std::string& host) {
  MatchScratch oracle;
  size_t want = compiled.MatchInto(payload, host, &oracle);
  std::vector<size_t> want_hits = oracle.hits;
  for (prefilter::Mode mode : AvailableModes()) {
    MatchScratch scratch;
    match::PrefilterOutcome outcome;
    size_t got =
        compiled.MatchIntoPrefiltered(payload, host, &scratch, mode, &outcome);
    ASSERT_EQ(got, want) << "mode=" << prefilter::ModeName(mode)
                         << " payload.size=" << payload.size();
    ASSERT_EQ(scratch.hits, want_hits)
        << "mode=" << prefilter::ModeName(mode);
    if (want > 0) {
      // A payload the DFA matches must never have been screened out.
      ASSERT_NE(outcome, match::PrefilterOutcome::kSkipped)
          << "prefilter dropped a matching payload, mode="
          << prefilter::ModeName(mode);
    }
  }
}

TEST(FuzzPrefilter, CorpusReplays) {
  CompiledSignatureSet compiled(FuzzSignatures(), 1);
  const struct {
    const char* name;
    const char* host;
    bool expect_match;
  } kCases[] = {
      {"prefilter_leak.seed", "tracker.example", true},
      {"prefilter_clean.seed", "", false},
      {"prefilter_binary.seed", "", true},
      {"prefilter_boundary.seed", "", true},
  };
  for (const auto& c : kCases) {
    SCOPED_TRACE(c.name);
    const std::string payload = ReadCorpus(c.name);
    ASSERT_FALSE(payload.empty());
    MatchScratch scratch;
    EXPECT_EQ(compiled.MatchInto(payload, c.host, &scratch) > 0,
              c.expect_match);
    ExpectDifferentialEquality(compiled, payload, c.host);
  }
}

TEST(FuzzPrefilter, SurvivesRandomBytes) {
  const uint64_t seed = testing::TestSeed(0xF20001);
  SCOPED_TRACE(testing::SeedTrace(seed));
  Rng rng(seed);
  CompiledSignatureSet compiled(FuzzSignatures(), 1);
  for (int trial = 0; trial < 1500; ++trial) {
    size_t len = rng.UniformInt(600);
    std::string payload;
    payload.reserve(len);
    for (size_t i = 0; i < len; ++i) {
      payload += static_cast<char>(rng.UniformInt(256));
    }
    ExpectDifferentialEquality(compiled, payload, "");
  }
}

TEST(FuzzPrefilter, MutationsOfLeakingPayloadNeverDropAMatch) {
  const uint64_t seed = testing::TestSeed(0xF20002);
  SCOPED_TRACE(testing::SeedTrace(seed));
  Rng rng(seed);
  CompiledSignatureSet compiled(FuzzSignatures(), 1);
  const std::string valid = ReadCorpus("prefilter_leak.seed");
  for (int trial = 0; trial < 1500; ++trial) {
    std::string mutated = valid;
    size_t flips = 1 + rng.UniformInt(4);
    for (size_t f = 0; f < flips; ++f) {
      mutated[rng.UniformInt(mutated.size())] =
          static_cast<char>(rng.UniformInt(256));
    }
    // A mutation may or may not destroy the token — either way the
    // prefiltered path must agree with the oracle exactly.
    ExpectDifferentialEquality(compiled, mutated, "tracker.example");
  }
  // Truncation at every boundary: a token cut in half must not match, and
  // the screened path must agree at each cut.
  for (size_t cut = 0; cut < valid.size(); cut += 3) {
    ExpectDifferentialEquality(compiled, valid.substr(0, cut),
                               "tracker.example");
  }
}

TEST(FuzzPrefilter, RandomSignatureSetsStayDifferentiallyEqual) {
  const uint64_t seed = testing::TestSeed(0xF20003);
  SCOPED_TRACE(testing::SeedTrace(seed));
  Rng rng(seed);
  // Small alphabet maximizes window collisions and shared prefixes — the
  // hard case for the bucketed table and the bloom screen.
  const std::string alphabet = "abAB01_=&\xFF\x00";
  auto random_token = [&](size_t min_len, size_t max_len) {
    size_t len = min_len + rng.UniformInt(max_len - min_len + 1);
    std::string t;
    for (size_t i = 0; i < len; ++i) {
      t += alphabet[rng.UniformInt(alphabet.size())];
    }
    return t;
  };
  for (int round = 0; round < 40; ++round) {
    size_t num_sigs = 1 + rng.UniformInt(20);
    std::vector<ConjunctionSignature> sigs(num_sigs);
    std::vector<std::string> all_tokens;
    for (size_t s = 0; s < num_sigs; ++s) {
      sigs[s].id = "sig-" + std::to_string(round) + "-" + std::to_string(s);
      size_t num_tokens = 1 + rng.UniformInt(3);
      for (size_t t = 0; t < num_tokens; ++t) {
        sigs[s].tokens.push_back(random_token(2, 12));
        all_tokens.push_back(sigs[s].tokens.back());
      }
    }
    CompiledSignatureSet compiled(SignatureSet(sigs), 1);
    for (int trial = 0; trial < 40; ++trial) {
      // Payload = noise with real tokens spliced in, so matches actually
      // occur (pure random bytes over this alphabet rarely complete a
      // conjunction).
      std::string payload = random_token(0, 80);
      size_t splices = rng.UniformInt(5);
      for (size_t i = 0; i < splices; ++i) {
        payload += all_tokens[rng.UniformInt(all_tokens.size())];
        payload += random_token(0, 10);
      }
      ExpectDifferentialEquality(compiled, payload, "");
    }
  }
}

}  // namespace
}  // namespace leakdet
