// Concurrency soak for the federation hub: many submit threads spraying
// packets across tenants (and unknown tenants) while every tenant's trainer
// retrains and hot-swaps epochs. Run under ThreadSanitizer in CI's stress
// tier; assertions here are liveness and conservation, the sanitizer owns
// the data-race half.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/packet.h"
#include "core/payload_check.h"
#include "federation/hub.h"
#include "gateway/gateway.h"
#include "obs/metrics.h"
#include "testing/packet_gen.h"
#include "util/rng.h"

namespace leakdet::federation {
namespace {

using leakdet::testing::GeneratePacket;

constexpr int kThreads = 4;
#ifdef LEAKDET_TSAN_BUILD
constexpr int kPacketsPerThread = 100;  // TSan runs ~10x slower
#else
constexpr int kPacketsPerThread = 400;
#endif
const char* const kTenants[] = {"acme", "globex", "initech"};

TEST(FederationHubStressTest, ConcurrentSubmitAcrossTenantsWhilePublishing) {
  Rng seed_rng(31415);
  std::vector<core::DeviceTokens> devices;
  for (int i = 0; i < 9; ++i) {
    core::DeviceTokens device;
    device.android_id = seed_rng.RandomHex(16);
    device.imei = seed_rng.RandomDigits(15);
    device.imsi = seed_rng.RandomDigits(15);
    device.sim_serial = seed_rng.RandomDigits(19);
    device.carrier = "NTT DOCOMO";
    devices.push_back(device);
  }
  core::PayloadCheck oracle(devices);
  obs::Registry registry;

  gateway::GatewayOptions gw_options;
  gw_options.num_shards = 2;
  gw_options.queue_capacity = 256;
  gateway::DetectionGateway gateway(gw_options);

  HubOptions options;
  options.defaults.k_anonymity = 2;
  options.defaults.witness_window = 256;
  options.server.retrain_after = 25;
  options.server.pipeline.sample_size = 10;
  options.server.pipeline.normal_corpus_size = 20;
  options.server.pipeline.num_threads = 1;
  options.registry = &registry;

  // app_id 1..3 map onto the tenants; anything else is a stranger.
  FederationHub hub(
      &gateway,
      &oracle,
      [](const core::HttpPacket& packet) -> std::string {
        if (packet.app_id >= 1 && packet.app_id <= 3) {
          return kTenants[packet.app_id - 1];
        }
        return "stranger";
      },
      options);
  for (const char* tenant : kTenants) {
    ASSERT_TRUE(hub.AddTenant(tenant).ok());
  }
  gateway.set_sink(hub.Sink());
  ASSERT_TRUE(gateway.Start().ok());
  ASSERT_TRUE(hub.Start().ok());

  std::atomic<uint64_t> accepted{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(1000 + t);
      for (int i = 0; i < kPacketsPerThread; ++i) {
        // Tenant 0..2 (occasionally a stranger), device 0..2 within it.
        uint32_t tenant = static_cast<uint32_t>(rng.UniformInt(16));
        size_t device = rng.UniformInt(3);
        const core::DeviceTokens& tokens =
            devices[(tenant % 3) * 3 + device];
        core::HttpPacket packet =
            GeneratePacket(&rng, {tokens.android_id, tokens.imei}, 0.6);
        packet.app_id = tenant < 12 ? (tenant % 3) + 1 : 99;
        uint64_t key = (tenant % 3) * 100 + device + 1;
        if (hub.Submit(key, packet)) accepted.fetch_add(1);
        if (i % 64 == 0) std::this_thread::yield();
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  gateway.Stop();
  hub.Stop();

  EXPECT_EQ(accepted.load(),
            static_cast<uint64_t>(kThreads) * kPacketsPerThread)
      << "kBlock gateway shed packets before Stop";

  // Conservation: every submit landed in exactly one tenant counter or the
  // unknown-tenant counter.
  uint64_t counted =
      registry.GetCounter("federation.unknown_tenant")->Value();
  for (const char* tenant : kTenants) {
    counted += registry
                   .GetCounter("federation.submitted", {{"tenant", tenant}})
                   ->Value();
  }
  EXPECT_EQ(counted, accepted.load());

  // Liveness: with ~500 packets per tenant at retrain_after=25, every
  // tenant must have published at least once, into its own namespace.
  for (const char* tenant : kTenants) {
    auto feed = hub.TenantFeed(tenant);
    ASSERT_TRUE(feed.has_value()) << tenant;
    EXPECT_GE(feed->first, 1u) << tenant << " never published";
    EXPECT_GE(gateway.tenant_version(tenant), 1u);
  }
  // Reads under concurrency exercised the statusz path too.
  EXPECT_FALSE(hub.StatuszRender().empty());
}

}  // namespace
}  // namespace leakdet::federation
