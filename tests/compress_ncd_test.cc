#include "compress/ncd.h"

#include <gtest/gtest.h>

#include <string>

#include "util/rng.h"

namespace leakdet::compress {
namespace {

class NcdTest : public ::testing::TestWithParam<const char*> {
 protected:
  void SetUp() override {
    auto c = MakeCompressor(GetParam());
    ASSERT_TRUE(c.ok());
    compressor_ = std::move(*c);
    ncd_ = std::make_unique<NcdCalculator>(compressor_.get());
  }
  std::unique_ptr<Compressor> compressor_;
  std::unique_ptr<NcdCalculator> ncd_;
};

// Self-distance depends on how well each codec exploits an exact repeat:
// LZ77 copies the whole second half as one match; LZW only reuses short
// phrases; the order-0 estimator cannot see repetition at all.
TEST_P(NcdTest, IdenticalStringsSelfDistanceByCodec) {
  std::string s =
      "GET /ad/v3/req?app_id=aabb&udid=35409806123456&r=17 HTTP/1.1";
  double d = ncd_->Ncd(s, s);
  std::string_view codec = GetParam();
  if (codec == "lz77h") {
    EXPECT_LT(d, 0.35);
  } else if (codec == "lzw") {
    EXPECT_LT(d, 0.65);
  } else {
    EXPECT_LT(d, 1.0);
  }
}

TEST_P(NcdTest, UnrelatedRandomStringsFar) {
  Rng rng(5);
  std::string a, b;
  for (int i = 0; i < 800; ++i) a += static_cast<char>(rng.UniformInt(256));
  for (int i = 0; i < 800; ++i) b += static_cast<char>(rng.UniformInt(256));
  EXPECT_GT(ncd_->Ncd(a, b), 0.5);
}

// The property the clustering actually relies on: for every codec, the
// self-distance sits well below the unrelated-distance.
TEST_P(NcdTest, SelfDistanceBelowUnrelatedDistance) {
  std::string s =
      "GET /gampad/ads?app_id=k1&sdk=2.1.3&dc_uid=900150983cd24fb0d696 "
      "HTTP/1.1";
  Rng rng(21);
  std::string unrelated;
  for (size_t i = 0; i < s.size(); ++i) {
    unrelated += static_cast<char>(rng.UniformInt(256));
  }
  EXPECT_LT(ncd_->Ncd(s, s) + 0.1, ncd_->Ncd(s, unrelated));
}

TEST_P(NcdTest, SimilarClosterThanDissimilar) {
  std::string base =
      "GET /gampad/ads?app_id=k1&sdk=2.1.3&fmt=banner320x50&dc_uid="
      "900150983cd24fb0d6963f7d28e17f72&r=11aabb22 HTTP/1.1";
  std::string similar =
      "GET /gampad/ads?app_id=k2&sdk=2.1.3&fmt=banner320x50&dc_uid="
      "900150983cd24fb0d6963f7d28e17f72&r=99ffcc00 HTTP/1.1";
  Rng rng(9);
  std::string unrelated;
  for (size_t i = 0; i < base.size(); ++i) {
    unrelated += static_cast<char>(rng.UniformInt(256));
  }
  EXPECT_LT(ncd_->Ncd(base, similar), ncd_->Ncd(base, unrelated));
}

TEST_P(NcdTest, BoundedInUnitInterval) {
  Rng rng(11);
  for (int trial = 0; trial < 40; ++trial) {
    std::string a = rng.RandomString(rng.UniformInt(300), "abcdef&=/?");
    std::string b = rng.RandomString(rng.UniformInt(300), "abcdef&=/?");
    double d = ncd_->Ncd(a, b);
    EXPECT_GE(d, 0.0);
    EXPECT_LE(d, 1.0);
  }
}

TEST_P(NcdTest, ExactSymmetry) {
  // Real codecs are concatenation-order sensitive, so the raw formula is
  // slightly asymmetric; Ncd canonicalizes the concatenation order, which
  // makes the distance exactly symmetric (the pair caches key on unordered
  // pairs and rely on this).
  Rng rng(13);
  for (int trial = 0; trial < 20; ++trial) {
    std::string a = rng.RandomString(50 + rng.UniformInt(200), "abcdxyz");
    std::string b = rng.RandomString(50 + rng.UniformInt(200), "abcdxyz");
    EXPECT_DOUBLE_EQ(ncd_->Ncd(a, b), ncd_->Ncd(b, a));
  }
}

TEST_P(NcdTest, CacheCountersTrackHitsAndMisses) {
  std::string a = "count-me-a", b = "count-me-b";
  EXPECT_EQ(ncd_->cache_hits(), 0u);
  EXPECT_EQ(ncd_->cache_misses(), 0u);
  ncd_->Ncd(a, b);  // two fresh singleton compressions
  EXPECT_EQ(ncd_->cache_misses(), 2u);
  EXPECT_EQ(ncd_->cache_hits(), 0u);
  ncd_->Ncd(b, a);  // both served from the memo
  EXPECT_EQ(ncd_->cache_misses(), 2u);
  EXPECT_EQ(ncd_->cache_hits(), 2u);
}

TEST_P(NcdTest, PairCacheMatchesCalculatorExactly) {
  Rng rng(17);
  std::vector<std::string> universe;
  for (int i = 0; i < 12; ++i) {
    universe.push_back(rng.RandomString(20 + rng.UniformInt(120), "abcq&=/"));
  }
  std::vector<std::string_view> views(universe.begin(), universe.end());
  NcdPairCache cache(compressor_.get(), views);
  cache.PrecomputeSizes(2);
  for (uint32_t x = 0; x < views.size(); ++x) {
    for (uint32_t y = 0; y < views.size(); ++y) {
      EXPECT_DOUBLE_EQ(cache.Ncd(x, y), ncd_->Ncd(universe[x], universe[y]))
          << "x=" << x << " y=" << y;
    }
  }
}

TEST_P(NcdTest, PairCacheServesBothOrdersFromOneEntry) {
  std::vector<std::string> universe = {"GET /ads?id=1 HTTP/1.1",
                                       "GET /ads?id=2 HTTP/1.1"};
  std::vector<std::string_view> views(universe.begin(), universe.end());
  NcdPairCache cache(compressor_.get(), views);
  cache.PrecomputeSizes(1);
  double forward = cache.Ncd(0, 1);
  EXPECT_EQ(cache.pairs_computed(), 1u);
  EXPECT_EQ(cache.pair_hits(), 0u);
  double backward = cache.Ncd(1, 0);
  // The (min_id, max_id) canonical key means the reverse order is a cache
  // hit, and symmetry means the shared value is correct for both orders.
  EXPECT_EQ(cache.pairs_computed(), 1u);
  EXPECT_EQ(cache.pair_hits(), 1u);
  EXPECT_DOUBLE_EQ(forward, backward);
}

TEST_P(NcdTest, BothEmptyIsZero) {
  EXPECT_DOUBLE_EQ(ncd_->Ncd("", ""), 0.0);
}

TEST_P(NcdTest, EmptyVsNonEmptyIsLarge) {
  std::string s(300, 'q');
  s += "variation-0123456789";
  EXPECT_GT(ncd_->Ncd("", s), 0.4);
}

TEST_P(NcdTest, CacheMemoizesSingles) {
  std::string a = "cache-me-once", b = "cache-me-twice";
  ncd_->Ncd(a, b);
  size_t after_first = ncd_->cache_size();
  EXPECT_EQ(after_first, 2u);
  ncd_->Ncd(a, b);
  ncd_->Ncd(b, a);
  EXPECT_EQ(ncd_->cache_size(), after_first);
}

INSTANTIATE_TEST_SUITE_P(Compressors, NcdTest,
                         ::testing::Values("lz77h", "lzw", "entropy"));

}  // namespace
}  // namespace leakdet::compress
