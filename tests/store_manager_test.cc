#include "store/store_manager.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/payload_check.h"
#include "testing/packet_gen.h"
#include "testing/scripted_file.h"
#include "util/rng.h"

namespace leakdet::store {
namespace {

using leakdet::testing::GeneratePacket;
using leakdet::testing::ScriptedDir;

/// Small-but-real training world: a PayloadCheck oracle over one known
/// device, traffic from the shared generator, and a SignatureServer tuned
/// tiny so retrains happen within a few dozen packets.
struct World {
  World() : rng(4242) {
    core::DeviceTokens device;
    device.android_id = rng.RandomHex(16);
    device.imei = rng.RandomDigits(15);
    device.imsi = rng.RandomDigits(15);
    device.sim_serial = rng.RandomDigits(19);
    device.carrier = "NTT DOCOMO";
    tokens = {device.android_id, device.imei};
    oracle = std::make_unique<core::PayloadCheck>(
        std::vector<core::DeviceTokens>{device});
  }

  core::SignatureServer::Options ServerOptions() const {
    core::SignatureServer::Options options;
    options.retrain_after = 10;
    options.pipeline.sample_size = 10;
    options.pipeline.normal_corpus_size = 20;
    options.pipeline.num_threads = 1;
    return options;
  }

  core::HttpPacket Packet(double p_sensitive) {
    return GeneratePacket(&rng, tokens, p_sensitive);
  }

  Rng rng;
  std::vector<std::string> tokens;
  std::unique_ptr<core::PayloadCheck> oracle;
};

/// Drives the trainer's persistence protocol by hand: append, ingest,
/// snapshot+compact on publish.
void FeedOne(StoreManager* store, core::SignatureServer* server,
             const core::HttpPacket& packet) {
  FeedRecord record;
  record.feed_version = server->feed_version();
  record.packet = packet;
  ASSERT_TRUE(store->Append(std::move(record)).ok());
  uint64_t before = server->feed_version();
  server->Ingest(packet);
  if (server->feed_version() != before) {
    ASSERT_TRUE(store->WriteSnapshot(*server).ok());
    ASSERT_TRUE(store->Compact().ok());
  }
}

TEST(StoreManagerTest, FreshDirectoryRecoversToEmpty) {
  ScriptedDir dir;
  auto store = StoreManager::Open(&dir, "data", StoreOptions());
  ASSERT_TRUE(store.ok()) << store.status().message();
  World world;
  core::SignatureServer server(world.oracle.get(), world.ServerOptions());
  auto stats = (*store)->Recover(&server);
  ASSERT_TRUE(stats.ok());
  EXPECT_FALSE(stats->snapshot_loaded);
  EXPECT_EQ(stats->replay.applied, 0u);
  EXPECT_EQ(server.feed_version(), 0u);
}

TEST(StoreManagerTest, RecoveryReproducesTheExactServerState) {
  ScriptedDir dir;
  World world;

  // Oracle run: train through the store, remember the final state.
  core::SignatureServer server(world.oracle.get(), world.ServerOptions());
  uint64_t published = 0;
  server.SetFeedObserver(
      [&](uint64_t version, const match::SignatureSet&) { published = version; });
  auto store = StoreManager::Open(&dir, "data", StoreOptions());
  ASSERT_TRUE(store.ok());
  for (int i = 0; i < 80; ++i) {
    FeedOne(store->get(), &server, world.Packet(0.6));
  }
  ASSERT_GT(published, 0u) << "world too small: no epoch ever published";
  ASSERT_TRUE((*store)->Sync().ok());
  const uint64_t final_sequence = (*store)->last_sequence();

  // Recover into a fresh server from the same directory.
  core::SignatureServer recovered(world.oracle.get(), world.ServerOptions());
  std::vector<uint64_t> republished;
  recovered.SetFeedObserver([&](uint64_t version, const match::SignatureSet&) {
    republished.push_back(version);
  });
  auto store2 = StoreManager::Open(&dir, "data", StoreOptions());
  ASSERT_TRUE(store2.ok());
  auto stats = (*store2)->Recover(&recovered);
  ASSERT_TRUE(stats.ok()) << stats.status().message();
  EXPECT_TRUE(stats->snapshot_loaded);
  EXPECT_EQ((*store2)->last_sequence(), final_sequence);

  // Serve-before-replay: the first republished epoch is the snapshot's, and
  // versions never regress during replay.
  ASSERT_FALSE(republished.empty());
  EXPECT_EQ(republished.front(), stats->snapshot_version);
  for (size_t i = 1; i < republished.size(); ++i) {
    EXPECT_GT(republished[i], republished[i - 1]);
  }

  // Bit-identical state: version, published set, pools, and counters all
  // match the no-crash server.
  EXPECT_EQ(recovered.feed_version(), server.feed_version());
  EXPECT_EQ(recovered.Feed(), server.Feed());
  EXPECT_EQ(recovered.new_suspicious(), server.new_suspicious());
  ASSERT_EQ(recovered.suspicious_pool().size(), server.suspicious_pool().size());
  ASSERT_EQ(recovered.normal_pool().size(), server.normal_pool().size());
  for (size_t i = 0; i < server.suspicious_pool().size(); ++i) {
    EXPECT_EQ(recovered.suspicious_pool()[i], server.suspicious_pool()[i]);
  }
  for (size_t i = 0; i < server.normal_pool().size(); ++i) {
    EXPECT_EQ(recovered.normal_pool()[i], server.normal_pool()[i]);
  }
}

TEST(StoreManagerTest, CompactRetiresFoldedSegmentsAndOldSnapshots) {
  ScriptedDir dir;
  World world;
  core::SignatureServer server(world.oracle.get(), world.ServerOptions());
  StoreOptions options;
  options.wal.segment_bytes = 1024;  // tiny: rotate often
  options.keep_snapshots = 1;
  auto store = StoreManager::Open(&dir, "data", options);
  ASSERT_TRUE(store.ok());
  for (int i = 0; i < 80; ++i) {
    FeedOne(store->get(), &server, world.Packet(0.6));
  }
  ASSERT_GT(server.feed_version(), 1u) << "need at least two epochs";

  auto names = dir.List("data");
  ASSERT_TRUE(names.ok());
  size_t segments = 0, snapshots = 0;
  uint64_t id = 0, version = 0, sequence = 0;
  for (const std::string& name : *names) {
    if (ParseSegmentFileName(name, &id)) ++segments;
    if (ParseSnapshotFileName(name, &version, &sequence)) ++snapshots;
  }
  EXPECT_EQ(snapshots, 1u);
  // Everything up to the newest snapshot is folded away: at most the active
  // segment plus the ones written since the last publish remain.
  EXPECT_LT(segments, (*store)->writer().segments_created());

  // The compacted log still recovers to the exact state.
  core::SignatureServer recovered(world.oracle.get(), world.ServerOptions());
  auto store2 = StoreManager::Open(&dir, "data", options);
  ASSERT_TRUE(store2.ok());
  ASSERT_TRUE((*store2)->Recover(&recovered).ok());
  EXPECT_EQ(recovered.feed_version(), server.feed_version());
  EXPECT_EQ(recovered.Feed(), server.Feed());
}

TEST(StoreManagerTest, GapBetweenSnapshotAndLogIsCorruption) {
  ScriptedDir dir;
  World world;
  core::SignatureServer server(world.oracle.get(), world.ServerOptions());
  StoreOptions options;
  options.wal.segment_bytes = 1024;
  auto store = StoreManager::Open(&dir, "data", options);
  ASSERT_TRUE(store.ok());
  for (int i = 0; i < 40; ++i) {
    FeedOne(store->get(), &server, world.Packet(0.6));
  }
  ASSERT_GT(server.feed_version(), 0u);
  ASSERT_TRUE((*store)->Sync().ok());

  // Delete the segment holding the records right after the snapshot: the
  // replay would have to skip sequences, which recovery must refuse.
  auto names = dir.List("data");
  ASSERT_TRUE(names.ok());
  std::vector<uint64_t> ids;
  uint64_t id = 0;
  for (const std::string& name : *names) {
    if (ParseSegmentFileName(name, &id)) ids.push_back(id);
  }
  ASSERT_GE(ids.size(), 2u) << "need a non-active segment to delete";
  ASSERT_TRUE(dir.Remove("data/" + SegmentFileName(ids.front())).ok());

  core::SignatureServer recovered(world.oracle.get(), world.ServerOptions());
  auto store2 = StoreManager::Open(&dir, "data", options);
  ASSERT_TRUE(store2.ok());
  auto stats = (*store2)->Recover(&recovered);
  // Either the scan already failed (sequence gap mid-log) or the
  // snapshot-to-log handoff check caught it.
  ASSERT_FALSE(stats.ok());
  EXPECT_EQ(stats.status().code(), StatusCode::kCorruption);
}

TEST(StoreManagerTest, DescribeBuildParamsNamesTheKnobs) {
  World world;
  std::string params = DescribeBuildParams(world.ServerOptions());
  EXPECT_NE(params.find("sample_size=10"), std::string::npos);
  EXPECT_NE(params.find("compressor=lzw"), std::string::npos);
  EXPECT_NE(params.find("retrain_after=10"), std::string::npos);
}

}  // namespace
}  // namespace leakdet::store
