#include "sim/trafficgen.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "core/payload_check.h"
#include "http/parser.h"

namespace leakdet::sim {
namespace {

// A reduced-scale trace shared across tests (full scale is exercised by the
// benches).
class TrafficGenTest : public ::testing::Test {
 protected:
  static const Trace& GetTrace() {
    static const Trace* trace = [] {
      TrafficConfig config;
      config.seed = 2024;
      config.scale = 0.05;
      return new Trace(GenerateTrace(config));
    }();
    return *trace;
  }
};

TEST_F(TrafficGenTest, ScaleRoughlyHonored) {
  const Trace& trace = GetTrace();
  double expected = 107859 * 0.05;
  EXPECT_GT(trace.packets.size(), expected * 0.7);
  EXPECT_LT(trace.packets.size(), expected * 1.4);
}

TEST_F(TrafficGenTest, GeneratorTruthAgreesWithPayloadCheckOracle) {
  // The central consistency property: the labels the generator wrote must be
  // exactly what the PayloadCheck oracle finds in the bytes.
  const Trace& trace = GetTrace();
  core::PayloadCheck oracle({trace.device.ToTokens()});
  size_t checked = 0;
  for (const LabeledPacket& lp : trace.packets) {
    std::vector<core::SensitiveType> found = oracle.Check(lp.packet);
    ASSERT_EQ(found, lp.truth)
        << "packet to " << lp.packet.destination.host << ": "
        << lp.packet.request_line << " body=" << lp.packet.body;
    ++checked;
  }
  EXPECT_GT(checked, 1000u);
}

TEST_F(TrafficGenTest, SensitiveShareNearPaper) {
  const Trace& trace = GetTrace();
  size_t sensitive = 0;
  for (const LabeledPacket& lp : trace.packets) {
    if (lp.sensitive()) ++sensitive;
  }
  double share = static_cast<double>(sensitive) / trace.packets.size();
  // Paper: 23,309 / 107,859 = 21.6%.
  EXPECT_GT(share, 0.12);
  EXPECT_LT(share, 0.35);
}

TEST_F(TrafficGenTest, PacketsAreWellFormedHttp) {
  const Trace& trace = GetTrace();
  size_t n = 0;
  for (const LabeledPacket& lp : trace.packets) {
    if (++n > 500) break;  // spot-check a prefix
    const core::HttpPacket& p = lp.packet;
    EXPECT_FALSE(p.destination.host.empty());
    EXPECT_NE(p.destination.ip.value(), 0u);
    // Request line parses as METHOD SP target SP version.
    auto req = http::ParseRequest(p.request_line + "\r\n\r\n");
    ASSERT_TRUE(req.ok()) << p.request_line;
    EXPECT_TRUE(http::IsSupportedMethod(req->method()));
  }
}

TEST_F(TrafficGenTest, PostPacketsCarryBody) {
  const Trace& trace = GetTrace();
  bool saw_post_with_body = false;
  for (const LabeledPacket& lp : trace.packets) {
    if (lp.packet.request_line.rfind("POST ", 0) == 0 &&
        !lp.packet.body.empty()) {
      saw_post_with_body = true;
      break;
    }
  }
  EXPECT_TRUE(saw_post_with_body);
}

TEST_F(TrafficGenTest, CookiesPersistPerAppService) {
  const Trace& trace = GetTrace();
  // For each (app, host) pair, the sid cookie must be constant.
  std::map<std::pair<uint32_t, std::string>, std::set<std::string>> cookies;
  for (const LabeledPacket& lp : trace.packets) {
    if (lp.packet.cookie.empty()) continue;
    cookies[{lp.packet.app_id, lp.packet.destination.host}].insert(
        lp.packet.cookie);
  }
  ASSERT_FALSE(cookies.empty());
  for (auto& [key, values] : cookies) {
    EXPECT_EQ(values.size(), 1u)
        << "app " << key.first << " host " << key.second;
  }
}

TEST_F(TrafficGenTest, ServiceIndexConsistentWithHost) {
  const Trace& trace = GetTrace();
  for (const LabeledPacket& lp : trace.packets) {
    ASSERT_LT(lp.service_index, trace.services.size());
    const ServiceSpec& svc = trace.services[lp.service_index];
    EXPECT_NE(std::find(svc.hosts.begin(), svc.hosts.end(),
                        lp.packet.destination.host),
              svc.hosts.end())
        << lp.packet.destination.host << " not in " << svc.name;
  }
}

TEST_F(TrafficGenTest, AllNineSensitiveTypesPresent) {
  const Trace& trace = GetTrace();
  std::set<core::SensitiveType> seen;
  for (const LabeledPacket& lp : trace.packets) {
    for (auto t : lp.truth) seen.insert(t);
  }
  EXPECT_EQ(seen.size(), static_cast<size_t>(core::kNumSensitiveTypes));
}

TEST_F(TrafficGenTest, SplitByTruthPartitions) {
  const Trace& trace = GetTrace();
  std::vector<core::HttpPacket> suspicious, normal;
  trace.SplitByTruth(&suspicious, &normal);
  EXPECT_EQ(suspicious.size() + normal.size(), trace.packets.size());
  EXPECT_GT(suspicious.size(), 0u);
  EXPECT_GT(normal.size(), suspicious.size());
}

TEST_F(TrafficGenTest, RawPacketsProjection) {
  const Trace& trace = GetTrace();
  auto raw = trace.RawPackets();
  ASSERT_EQ(raw.size(), trace.packets.size());
  EXPECT_EQ(raw[0], trace.packets[0].packet);
}

TEST_F(TrafficGenTest, IpsStayInServiceBlock) {
  const Trace& trace = GetTrace();
  for (const LabeledPacket& lp : trace.packets) {
    const ServiceSpec& svc = trace.services[lp.service_index];
    EXPECT_EQ(lp.packet.destination.ip.value() & 0xFFFF0000u, svc.ip_base)
        << svc.name;
  }
}

TEST(TrafficGenDeterminismTest, SameSeedSameTrace) {
  TrafficConfig config;
  config.seed = 5;
  config.scale = 0.02;
  Trace a = GenerateTrace(config);
  Trace b = GenerateTrace(config);
  ASSERT_EQ(a.packets.size(), b.packets.size());
  for (size_t i = 0; i < a.packets.size(); i += 37) {
    EXPECT_EQ(a.packets[i].packet, b.packets[i].packet);
  }
  EXPECT_EQ(a.device.imei, b.device.imei);
}

TEST(TrafficGenDeterminismTest, DifferentSeedDifferentTrace) {
  TrafficConfig a_cfg;
  a_cfg.seed = 5;
  a_cfg.scale = 0.02;
  TrafficConfig b_cfg = a_cfg;
  b_cfg.seed = 6;
  Trace a = GenerateTrace(a_cfg);
  Trace b = GenerateTrace(b_cfg);
  EXPECT_NE(a.device.imei, b.device.imei);
}

}  // namespace
}  // namespace leakdet::sim
