#include "match/bayes_signature.h"

#include <gtest/gtest.h>

namespace leakdet::match {
namespace {

BayesSignature MakeSig(std::string id,
                       std::vector<std::pair<std::string, double>> tokens,
                       double threshold) {
  BayesSignature sig;
  sig.id = std::move(id);
  for (auto& [tok, w] : tokens) {
    sig.tokens.push_back(WeightedToken{tok, w});
  }
  sig.threshold = threshold;
  sig.cluster_size = 2;
  return sig;
}

TEST(BayesSignatureTest, ScoreSumsPresentTokens) {
  BayesSignature sig = MakeSig("b0", {{"alpha", 2.0}, {"beta", 1.5}}, 0);
  EXPECT_DOUBLE_EQ(sig.Score("alpha beta"), 3.5);
  EXPECT_DOUBLE_EQ(sig.Score("alpha only"), 2.0);
  EXPECT_DOUBLE_EQ(sig.Score("nothing here"), 0.0);
}

TEST(BayesSignatureTest, ThresholdGatesMatch) {
  BayesSignature sig = MakeSig("b0", {{"alpha", 2.0}, {"beta", 1.5}}, 3.0);
  EXPECT_TRUE(sig.Matches("alpha beta"));
  EXPECT_FALSE(sig.Matches("alpha"));       // 2.0 < 3.0
  EXPECT_FALSE(sig.Matches("beta"));        // 1.5 < 3.0
}

TEST(BayesSignatureTest, PartialMatchSurvivesDroppedField) {
  // The polymorphism property the paper's future work wants: dropping one
  // template field still fires the signature.
  BayesSignature sig = MakeSig(
      "b0", {{"&udid=9774d56d682e549c", 4.0}, {"GET /ad/fetch?", 1.0},
             {"&fmt=banner", 0.5}},
      4.5);
  EXPECT_TRUE(sig.Matches("GET /ad/fetch?x=1&udid=9774d56d682e549c"));
  // Reordered/missing boilerplate but identifier present: still above 4.5
  // only with the path token; identifier alone is not enough.
  EXPECT_FALSE(sig.Matches("&udid=9774d56d682e549c"));
  EXPECT_TRUE(
      sig.Matches("GET /ad/fetch?&fmt=banner&udid=9774d56d682e549c"));
}

TEST(BayesSignatureSetTest, MatchAndScores) {
  BayesSignatureSet set({MakeSig("b0", {{"xxtok", 2.0}}, 1.0),
                         MakeSig("b1", {{"yytok", 2.0}}, 1.0)});
  auto hits = set.Match("has xxtok only");
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0], 0u);
  auto scores = set.Scores("xxtok yytok");
  ASSERT_EQ(scores.size(), 2u);
  EXPECT_DOUBLE_EQ(scores[0], 2.0);
  EXPECT_DOUBLE_EQ(scores[1], 2.0);
  EXPECT_TRUE(set.Matches("yytok"));
  EXPECT_FALSE(set.Matches("neither"));
}

TEST(BayesSignatureSetTest, SharedVocabularyAcrossSignatures) {
  BayesSignatureSet set({MakeSig("b0", {{"shared", 1.0}, {"only0", 1.0}}, 2.0),
                         MakeSig("b1", {{"shared", 3.0}}, 2.5)});
  auto hits = set.Match("shared");
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0], 1u);  // b1 scores 3.0 >= 2.5; b0 scores 1.0 < 2.0
}

TEST(BayesSignatureSetTest, EmptySet) {
  BayesSignatureSet set;
  EXPECT_FALSE(set.Matches("anything"));
  EXPECT_TRUE(set.Match("anything").empty());
}

TEST(BayesSignatureSetTest, CopyRebuildsIndex) {
  BayesSignatureSet original({MakeSig("b0", {{"token!", 2.0}}, 1.0)});
  BayesSignatureSet copy(original);
  EXPECT_TRUE(copy.Matches("a token! b"));
  original = copy;
  EXPECT_TRUE(original.Matches("a token! b"));
}

TEST(BayesSignatureSetTest, SerializeRoundTrip) {
  BayesSignatureSet original(
      {MakeSig("b0", {{"GET /track?", 1.25}, {std::string("\x00\x01", 2), 0.5}},
               1.75),
       MakeSig("b1", {{"&enc=4b43", 3.75}}, 3.0)});
  std::string text = original.Serialize();
  auto restored = BayesSignatureSet::Deserialize(text);
  ASSERT_TRUE(restored.ok());
  ASSERT_EQ(restored->size(), 2u);
  for (size_t s = 0; s < 2; ++s) {
    const auto& a = original.signatures()[s];
    const auto& b = restored->signatures()[s];
    EXPECT_EQ(a.id, b.id);
    EXPECT_DOUBLE_EQ(a.threshold, b.threshold);
    ASSERT_EQ(a.tokens.size(), b.tokens.size());
    for (size_t t = 0; t < a.tokens.size(); ++t) {
      EXPECT_EQ(a.tokens[t].token, b.tokens[t].token);
      EXPECT_DOUBLE_EQ(a.tokens[t].weight, b.tokens[t].weight);
    }
  }
}

TEST(BayesSignatureSetTest, DeserializeRejectsGarbage) {
  EXPECT_FALSE(BayesSignatureSet::Deserialize("wrong header\n").ok());
  EXPECT_FALSE(BayesSignatureSet::Deserialize(
                   "leakdet-bayes-signatures v1\nsignature x\ntoken 1.0\nend\n")
                   .ok());  // token missing hex part
  EXPECT_FALSE(BayesSignatureSet::Deserialize(
                   "leakdet-bayes-signatures v1\nsignature x\n")
                   .ok());  // unterminated
}

}  // namespace
}  // namespace leakdet::match
