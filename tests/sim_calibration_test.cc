// Calibration properties of the simulated market at moderate scale: the
// generated trace must track the paper's published marginals proportionally
// (the full-scale exact comparisons live in the bench binaries).

#include <gtest/gtest.h>

#include <map>

#include "eval/analysis.h"
#include "sim/paper_tables.h"
#include "sim/trafficgen.h"

namespace leakdet::sim {
namespace {

constexpr double kScale = 0.2;

const Trace& CalTrace() {
  static const Trace* trace = [] {
    TrafficConfig config;
    config.seed = 4242;
    config.scale = kScale;
    return new Trace(GenerateTrace(config));
  }();
  return *trace;
}

TEST(SimCalibrationTest, TotalPacketsScaleLinearly) {
  double expected = kPaperTotalPackets * kScale;
  EXPECT_NEAR(CalTrace().packets.size(), expected, expected * 0.05);
}

TEST(SimCalibrationTest, NamedServicePacketsProportionalToTableTwo) {
  std::map<std::string, size_t> measured;
  for (const eval::DomainStats& s : eval::ComputeDomainStats(CalTrace())) {
    measured[s.domain] = s.packets;
  }
  for (const auto& row : kPaperTable2) {
    double expected = row.packets * kScale;
    double got = static_cast<double>(measured[std::string(row.domain)]);
    // Within 15% or 10 packets (rounding dominates small services).
    EXPECT_NEAR(got, expected, std::max(10.0, expected * 0.15))
        << row.domain;
  }
}

TEST(SimCalibrationTest, SensitiveShareMatchesPaper) {
  size_t suspicious = 0, normal = 0;
  eval::ComputeSensitiveStats(CalTrace(), &suspicious, &normal);
  double share =
      static_cast<double>(suspicious) / CalTrace().packets.size();
  double paper_share = static_cast<double>(kPaperSensitivePackets) /
                       kPaperTotalPackets;  // 21.6 %
  EXPECT_NEAR(share, paper_share, 0.04);
}

TEST(SimCalibrationTest, PerTypePacketsProportionalToTableThree) {
  auto stats = eval::ComputeSensitiveStats(CalTrace());
  for (const auto& row : kPaperTable3) {
    double expected = row.packets * kScale;
    double got =
        static_cast<double>(stats[static_cast<size_t>(row.type)].packets);
    EXPECT_NEAR(got, expected, std::max(15.0, expected * 0.2))
        << core::SensitiveTypeName(row.type);
  }
}

TEST(SimCalibrationTest, DestinationDistributionShapeHolds) {
  auto dist = eval::ComputeDestinationDistribution(CalTrace());
  EXPECT_NEAR(dist.CumulativeAt(1), 0.07, 0.04);
  EXPECT_NEAR(dist.frac_up_to_10, kPaperFracUpTo10Dests, 0.10);
  EXPECT_NEAR(dist.mean, kPaperMeanDests, 2.0);
  // One embedded-browser-style heavy-tail app exists; rotating SDK backends
  // can push its count somewhat past the planned 84 at some seeds.
  EXPECT_GE(dist.max, 60);
  EXPECT_LE(dist.max, 140);
}

TEST(SimCalibrationTest, PermissionRowsScale) {
  auto counts = CalTrace().population.PermissionComboCounts();
  for (size_t i = 0; i < kPaperTable1.size(); ++i) {
    EXPECT_NEAR(counts[i], kPaperTable1[i].apps * kScale, 2.0) << "row " << i;
  }
}

}  // namespace
}  // namespace leakdet::sim
