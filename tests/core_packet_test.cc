#include "core/packet.h"

#include <gtest/gtest.h>

namespace leakdet::core {
namespace {

net::Endpoint Ep(const std::string& host, const char* ip, uint16_t port) {
  net::Endpoint e;
  e.host = host;
  e.ip = *net::Ipv4Address::Parse(ip);
  e.port = port;
  return e;
}

TEST(PacketTest, MakePacketExtractsContentFields) {
  http::HttpRequest req("GET", "/ad?x=1");
  req.AddHeader("Host", "r.admob.com");
  req.AddHeader("Cookie", "sid=abcd");
  req.set_body("payload");
  HttpPacket p = MakePacket(7, Ep("r.admob.com", "74.125.1.2", 80), req);
  EXPECT_EQ(p.app_id, 7u);
  EXPECT_EQ(p.destination.host, "r.admob.com");
  EXPECT_EQ(p.request_line, "GET /ad?x=1 HTTP/1.1");
  EXPECT_EQ(p.cookie, "sid=abcd");
  EXPECT_EQ(p.body, "payload");
}

TEST(PacketTest, MakePacketNoCookieNoBody) {
  http::HttpRequest req("GET", "/");
  HttpPacket p = MakePacket(1, Ep("x.com", "1.2.3.4", 80), req);
  EXPECT_EQ(p.cookie, "");
  EXPECT_EQ(p.body, "");
}

TEST(PacketTest, PacketContentJoinsFieldsWithNewlines) {
  HttpPacket p;
  p.request_line = "GET / HTTP/1.1";
  p.cookie = "a=1";
  p.body = "b";
  EXPECT_EQ(PacketContent(p), "GET / HTTP/1.1\na=1\nb");
}

TEST(PacketTest, PacketContentEmptyFieldsKeepSeparators) {
  HttpPacket p;
  p.request_line = "GET / HTTP/1.1";
  EXPECT_EQ(PacketContent(p), "GET / HTTP/1.1\n\n");
}

TEST(PacketTest, PacketContentsBatch) {
  HttpPacket a, b;
  a.request_line = "A";
  b.request_line = "B";
  auto contents = PacketContents({a, b});
  ASSERT_EQ(contents.size(), 2u);
  EXPECT_EQ(contents[0], "A\n\n");
  EXPECT_EQ(contents[1], "B\n\n");
}

TEST(PacketTest, EqualityComparesAllFields) {
  http::HttpRequest req("GET", "/");
  HttpPacket a = MakePacket(1, Ep("x.com", "1.2.3.4", 80), req);
  HttpPacket b = a;
  EXPECT_EQ(a, b);
  b.body = "changed";
  EXPECT_FALSE(a == b);
}

}  // namespace
}  // namespace leakdet::core
