#include "sim/identifiers.h"

#include <gtest/gtest.h>

#include <set>

namespace leakdet::sim {
namespace {

TEST(LuhnTest, KnownCheckDigits) {
  // 7992739871 -> check digit 3 (classic example).
  EXPECT_EQ(LuhnCheckDigit("7992739871"), '3');
  // 453201511283036 -> 6 (Visa test number 4532015112830366).
  EXPECT_EQ(LuhnCheckDigit("453201511283036"), '6');
}

TEST(LuhnTest, ValidationAcceptsAndRejects) {
  EXPECT_TRUE(LuhnValid("79927398713"));
  EXPECT_FALSE(LuhnValid("79927398710"));
  EXPECT_FALSE(LuhnValid("79927398714"));
  EXPECT_FALSE(LuhnValid(""));
  EXPECT_FALSE(LuhnValid("1"));
  EXPECT_FALSE(LuhnValid("12a4"));
}

TEST(LuhnTest, AppendedCheckDigitAlwaysValidates) {
  Rng rng(1);
  for (int trial = 0; trial < 200; ++trial) {
    std::string body = rng.RandomDigits(1 + rng.UniformInt(20));
    std::string full = body + LuhnCheckDigit(body);
    EXPECT_TRUE(LuhnValid(full)) << full;
  }
}

TEST(LuhnTest, SingleDigitCorruptionDetected) {
  // Luhn detects every single-digit substitution.
  Rng rng(2);
  std::string body = rng.RandomDigits(14);
  std::string full = body + LuhnCheckDigit(body);
  for (size_t pos = 0; pos < full.size(); ++pos) {
    for (char d = '0'; d <= '9'; ++d) {
      if (d == full[pos]) continue;
      std::string corrupted = full;
      corrupted[pos] = d;
      EXPECT_FALSE(LuhnValid(corrupted)) << corrupted;
    }
  }
}

TEST(GenerateImeiTest, StructurallyValid) {
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    std::string imei = GenerateImei(&rng);
    EXPECT_EQ(imei.size(), 15u);
    EXPECT_TRUE(LooksLikeImei(imei)) << imei;
    EXPECT_EQ(imei.substr(0, 2), "35");
  }
}

TEST(GenerateImeiTest, Distinct) {
  Rng rng(4);
  std::set<std::string> seen;
  for (int i = 0; i < 100; ++i) seen.insert(GenerateImei(&rng));
  EXPECT_EQ(seen.size(), 100u);
}

TEST(GenerateImsiTest, CarriesMccMnc) {
  Rng rng(5);
  std::string imsi = GenerateImsi(&rng);
  EXPECT_EQ(imsi.size(), 15u);
  EXPECT_EQ(imsi.substr(0, 3), "440");  // Japan MCC
  EXPECT_TRUE(LooksLikeImsi(imsi));
  std::string custom = GenerateImsi(&rng, "310", "026");
  EXPECT_EQ(custom.substr(0, 6), "310026");
  EXPECT_EQ(custom.size(), 15u);
}

TEST(GenerateSimSerialTest, IccidStructure) {
  Rng rng(6);
  for (int i = 0; i < 50; ++i) {
    std::string iccid = GenerateSimSerial(&rng);
    EXPECT_EQ(iccid.size(), 19u);
    EXPECT_EQ(iccid.substr(0, 4), "8981");
    EXPECT_TRUE(LooksLikeSimSerial(iccid)) << iccid;
  }
}

TEST(GenerateAndroidIdTest, SixteenLowercaseHex) {
  Rng rng(7);
  for (int i = 0; i < 50; ++i) {
    std::string id = GenerateAndroidId(&rng);
    EXPECT_TRUE(LooksLikeAndroidId(id)) << id;
    EXPECT_NE(id[0], '0');
  }
}

TEST(ValidatorsTest, RejectWrongShapes) {
  EXPECT_FALSE(LooksLikeImei("12345"));
  EXPECT_FALSE(LooksLikeImei("35209900176148a"));
  EXPECT_FALSE(LooksLikeImsi("44010012345678"));    // 14 digits
  EXPECT_FALSE(LooksLikeSimSerial("1234567890123456789"));  // bad prefix
  EXPECT_FALSE(LooksLikeAndroidId("9774D56D682E549C"));     // uppercase
  EXPECT_FALSE(LooksLikeAndroidId("9774d56d682e549"));      // 15 chars
}

TEST(GeneratorsTest, DeterministicPerSeed) {
  Rng a(42), b(42);
  EXPECT_EQ(GenerateImei(&a), GenerateImei(&b));
  EXPECT_EQ(GenerateImsi(&a), GenerateImsi(&b));
  EXPECT_EQ(GenerateSimSerial(&a), GenerateSimSerial(&b));
  EXPECT_EQ(GenerateAndroidId(&a), GenerateAndroidId(&b));
}

}  // namespace
}  // namespace leakdet::sim
