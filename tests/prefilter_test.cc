// Unit and property tests for the SIMD multi-pattern prefilter: rare-token
// selection, the no-false-negative contract, kernel agreement (scalar vs
// SSE2 vs AVX2 must produce bit-identical candidate bitmaps), mode
// parsing/resolution, and the bucket-overflow path of the hash table.
//
// These tests pick their kernels explicitly, so they pass unchanged when
// ctest re-runs them with LEAKDET_PREFILTER=scalar on machines without AVX2
// (the prefilter_scalar_path ctest entry).

#include "prefilter/prefilter.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "prefilter/scan_kernels.h"
#include "test_seed.h"
#include "util/rng.h"

namespace leakdet::prefilter {
namespace {

using SigTokens = std::vector<std::vector<std::string>>;

std::vector<Mode> AvailableModes() {
  std::vector<Mode> modes = {Mode::kScalar};
  if (Sse2Available()) modes.push_back(Mode::kSse2);
  if (Avx2Available()) modes.push_back(Mode::kAvx2);
  return modes;
}

std::string RandomPayload(Rng* rng, size_t max_len) {
  size_t len = rng->UniformInt(max_len + 1);
  std::string s;
  s.reserve(len);
  for (size_t i = 0; i < len; ++i) {
    s += static_cast<char>(rng->UniformInt(256));
  }
  return s;
}

/// RAII environment-variable override (restores the prior value).
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    had_old_ = old != nullptr;
    if (had_old_) old_ = old;
    if (value == nullptr) {
      ::unsetenv(name);
    } else {
      ::setenv(name, value, 1);
    }
  }
  ~ScopedEnv() {
    if (had_old_) {
      ::setenv(name_, old_.c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }

 private:
  const char* name_;
  bool had_old_ = false;
  std::string old_;
};

TEST(PrefilterModeTest, ParseModeRoundTrips) {
  Mode mode = Mode::kScalar;
  EXPECT_TRUE(ParseMode("auto", &mode));
  EXPECT_EQ(mode, Mode::kAuto);
  EXPECT_TRUE(ParseMode("off", &mode));
  EXPECT_EQ(mode, Mode::kOff);
  EXPECT_TRUE(ParseMode("scalar", &mode));
  EXPECT_EQ(mode, Mode::kScalar);
  EXPECT_TRUE(ParseMode("sse2", &mode));
  EXPECT_EQ(mode, Mode::kSse2);
  EXPECT_TRUE(ParseMode("avx2", &mode));
  EXPECT_EQ(mode, Mode::kAvx2);
  EXPECT_TRUE(ParseMode("simd", &mode));
  EXPECT_EQ(mode, Mode::kAvx2);
  Mode untouched = Mode::kSse2;
  EXPECT_FALSE(ParseMode("warp-speed", &untouched));
  EXPECT_EQ(untouched, Mode::kSse2);
  EXPECT_STREQ(ModeName(Mode::kAvx2), "avx2");
  EXPECT_STREQ(ModeName(Mode::kOff), "off");
}

TEST(PrefilterModeTest, ResolveHonorsEnvironment) {
  {
    ScopedEnv env("LEAKDET_PREFILTER", "off");
    EXPECT_EQ(Resolve(Mode::kAuto), Mode::kOff);
  }
  {
    ScopedEnv env("LEAKDET_PREFILTER", "scalar");
    EXPECT_EQ(Resolve(Mode::kAuto), Mode::kScalar);
  }
  {
    // An explicit (non-auto) request wins over the environment.
    ScopedEnv env("LEAKDET_PREFILTER", "off");
    EXPECT_EQ(Resolve(Mode::kScalar), Mode::kScalar);
  }
  {
    ScopedEnv env("LEAKDET_PREFILTER", nullptr);
    Mode resolved = Resolve(Mode::kAuto);
    EXPECT_NE(resolved, Mode::kAuto);
    EXPECT_NE(resolved, Mode::kOff);
  }
}

TEST(PrefilterModeTest, ResolveDegradesUnavailableKernels) {
  Mode avx2 = Resolve(Mode::kAvx2);
  if (Avx2Available()) {
    EXPECT_EQ(avx2, Mode::kAvx2);
  } else {
    EXPECT_NE(avx2, Mode::kAvx2);
  }
  Mode sse2 = Resolve(Mode::kSse2);
  if (Sse2Available()) {
    EXPECT_EQ(sse2, Mode::kSse2);
  } else {
    EXPECT_EQ(sse2, Mode::kScalar);
  }
  EXPECT_EQ(Resolve(Mode::kScalar), Mode::kScalar);
  EXPECT_EQ(Resolve(Mode::kOff), Mode::kOff);
}

TEST(PrefilterBuildTest, SelectsLowestDocumentFrequencyToken) {
  // "common=1" appears in all three signatures, the others are unique, so
  // every signature anchors on its unique token.
  SigTokens sigs = {
      {"common=1", "alpha-token"},
      {"common=1", "bravo-token"},
      {"common=1", "charlie-token"},
  };
  Prefilter pf = Prefilter::Build(sigs);
  EXPECT_EQ(pf.selected_token(0), "alpha-token");
  EXPECT_EQ(pf.selected_token(1), "bravo-token");
  EXPECT_EQ(pf.selected_token(2), "charlie-token");
  EXPECT_EQ(pf.num_always_candidates(), 0u);
}

TEST(PrefilterBuildTest, InjectedCorpusFrequencyOverridesDocFrequency) {
  SigTokens sigs = {{"seen-everywhere", "actually-rare"}};
  PrefilterOptions options;
  options.token_frequency = [](std::string_view tok) -> uint64_t {
    return tok == "actually-rare" ? 3 : 1000000;
  };
  Prefilter pf = Prefilter::Build(sigs, options);
  EXPECT_EQ(pf.selected_token(0), "actually-rare");
}

TEST(PrefilterBuildTest, TiePrefersLongerThenLexicographicToken) {
  // All tokens unique (doc freq 1): the longest wins; equal lengths break
  // toward the lexicographically smaller, deterministically.
  SigTokens sigs = {{"shrt1", "muchlongertoken"}, {"bbbb-same", "aaaa-same"}};
  Prefilter pf = Prefilter::Build(sigs);
  EXPECT_EQ(pf.selected_token(0), "muchlongertoken");
  EXPECT_EQ(pf.selected_token(1), "aaaa-same");
}

TEST(PrefilterBuildTest, ShortTokenSignaturesAreAlwaysCandidates) {
  SigTokens sigs = {{"ab", "xyz"}, {"long-enough-token"}};
  Prefilter pf = Prefilter::Build(sigs);
  EXPECT_EQ(pf.num_always_candidates(), 1u);
  EXPECT_EQ(pf.selected_token(0), "");
  ScanScratch scratch;
  // Payload contains nothing: the short-token signature must still be a
  // candidate (it could match content the windows can't see).
  EXPECT_TRUE(pf.Scan("nothing interesting here", &scratch, Mode::kScalar));
  EXPECT_TRUE(Prefilter::IsCandidate(scratch, 0));
  EXPECT_FALSE(Prefilter::IsCandidate(scratch, 1));
}

TEST(PrefilterBuildTest, EmptyConjunctionGetsNoBit) {
  SigTokens sigs = {{}, {"real-token-here"}};
  Prefilter pf = Prefilter::Build(sigs);
  EXPECT_EQ(pf.num_always_candidates(), 0u);
  ScanScratch scratch;
  EXPECT_FALSE(pf.Scan("whatever payload", &scratch, Mode::kScalar));
  EXPECT_FALSE(Prefilter::IsCandidate(scratch, 0));
}

TEST(PrefilterScanTest, EmptySetAndShortPayloads) {
  Prefilter empty = Prefilter::Build({});
  ScanScratch scratch;
  EXPECT_FALSE(empty.Scan("anything", &scratch));

  Prefilter pf = Prefilter::Build({{"token-x1"}});
  EXPECT_FALSE(pf.Scan("", &scratch, Mode::kScalar));
  EXPECT_FALSE(pf.Scan("tok", &scratch, Mode::kScalar));  // < window size
  EXPECT_TRUE(pf.Scan("token-x1", &scratch, Mode::kScalar));
}

TEST(PrefilterScanTest, FindsPlantedTokenAtEveryOffsetInEveryMode) {
  const std::string token = "rare$token&7231";
  Prefilter pf = Prefilter::Build({{token}});
  Rng rng(testing::TestSeed(0xF17E));
  for (Mode mode : AvailableModes()) {
    SCOPED_TRACE(ModeName(mode));
    // Offsets sweep every SIMD phase and iteration boundary (kernels step
    // 16/32 positions with 4 phase loads).
    for (size_t offset = 0; offset < 80; ++offset) {
      std::string payload(offset, 'x');
      for (char& c : payload) c = static_cast<char>('a' + rng.UniformInt(26));
      payload += token;
      payload += "trailer";
      ScanScratch scratch;
      EXPECT_TRUE(pf.Scan(payload, &scratch, mode)) << "offset " << offset;
      EXPECT_TRUE(Prefilter::IsCandidate(scratch, 0)) << "offset " << offset;
    }
  }
}

TEST(PrefilterScanTest, BinaryTokensSurvive) {
  std::string token("\x00\xFF\x7F\x01\nbin", 7);
  Prefilter pf = Prefilter::Build({{token}});
  std::string payload = "prefix" + token + "suffix";
  for (Mode mode : AvailableModes()) {
    SCOPED_TRACE(ModeName(mode));
    ScanScratch scratch;
    EXPECT_TRUE(pf.Scan(payload, &scratch, mode));
    EXPECT_TRUE(Prefilter::IsCandidate(scratch, 0));
  }
}

TEST(PrefilterScanTest, SharedWindowMarksEverySignature) {
  // Two signatures whose selected tokens share the same first 4 bytes: one
  // window entry must carry both signature ids.
  SigTokens sigs = {{"imei=352099"}, {"imei=999111"}, {"unrelated-tok"}};
  Prefilter pf = Prefilter::Build(sigs);
  ScanScratch scratch;
  for (Mode mode : AvailableModes()) {
    SCOPED_TRACE(ModeName(mode));
    EXPECT_TRUE(pf.Scan("x=1&imei=352099&y=2", &scratch, mode));
    EXPECT_TRUE(Prefilter::IsCandidate(scratch, 0));
    // False positive by design: same window, different tail.
    EXPECT_TRUE(Prefilter::IsCandidate(scratch, 1));
    EXPECT_FALSE(Prefilter::IsCandidate(scratch, 2));
  }
}

TEST(PrefilterScanTest, ModesProduceIdenticalBitmaps) {
  uint64_t seed = testing::TestSeed(0xB17B17);
  SCOPED_TRACE(testing::SeedTrace(seed));
  Rng rng(seed);
  // A few hundred signatures so the table has real occupancy.
  SigTokens sigs;
  for (size_t s = 0; s < 300; ++s) {
    sigs.push_back({"tok" + std::to_string(s) + "=" + rng.RandomHex(8),
                    "alt" + std::to_string(s) + "-" + rng.RandomHex(6)});
  }
  Prefilter pf = Prefilter::Build(sigs);
  std::vector<Mode> modes = AvailableModes();
  for (int trial = 0; trial < 300; ++trial) {
    std::string payload = RandomPayload(&rng, 400);
    if (trial % 3 == 0) {
      // Plant a selected token at a random position so hit paths compare
      // too, not just misses.
      size_t s = rng.UniformInt(sigs.size());
      size_t pos = rng.UniformInt(payload.size() + 1);
      payload.insert(pos, pf.selected_token(s));
    }
    ScanScratch reference;
    pf.Scan(payload, &reference, Mode::kScalar);
    for (size_t m = 1; m < modes.size(); ++m) {
      ScanScratch scratch;
      pf.Scan(payload, &scratch, modes[m]);
      ASSERT_EQ(scratch.bits, reference.bits)
          << "mode " << ModeName(modes[m]) << " diverged on trial " << trial;
    }
  }
}

TEST(PrefilterScanTest, NoFalseNegativeVsSubstringSearch) {
  uint64_t seed = testing::TestSeed(0x5EED);
  SCOPED_TRACE(testing::SeedTrace(seed));
  Rng rng(seed);
  SigTokens sigs;
  for (size_t s = 0; s < 64; ++s) {
    sigs.push_back({"key" + std::to_string(s) + "=" + rng.RandomHex(10)});
  }
  Prefilter pf = Prefilter::Build(sigs);
  for (int trial = 0; trial < 500; ++trial) {
    std::string payload = RandomPayload(&rng, 300);
    if (trial % 2 == 0) {
      size_t s = rng.UniformInt(sigs.size());
      size_t pos = rng.UniformInt(payload.size() + 1);
      payload.insert(pos, sigs[s][0]);
    }
    for (Mode mode : AvailableModes()) {
      ScanScratch scratch;
      pf.Scan(payload, &scratch, mode);
      for (size_t s = 0; s < sigs.size(); ++s) {
        if (payload.find(pf.selected_token(s)) != std::string::npos) {
          ASSERT_TRUE(Prefilter::IsCandidate(scratch, s))
              << "mode " << ModeName(mode) << " dropped sig " << s
              << " on trial " << trial;
        }
      }
    }
  }
}

TEST(PrefilterTableTest, BucketOverflowChainIsFollowed) {
  // Brute-force >16 distinct windows that all land in bucket 0 of the table
  // the builder will size for them, forcing the overflow chain. Windows are
  // 4-digit-ish ASCII tokens so the payload below stays printable.
  std::vector<std::string> tokens;
  uint32_t probe = 0;
  while (tokens.size() < 20 && probe < 200000000u) {
    ++probe;
    std::string tok = "w" + std::to_string(probe);
    if (tok.size() < 4) continue;
    uint32_t window;
    static_assert(sizeof(window) == 4);
    std::memcpy(&window, tok.data(), 4);
    // 20 windows -> want_buckets = ceil(40/16) = 3 -> 4 buckets, mask 3.
    if ((internal::HashWindow(window) & 3u) == 0) {
      tok += "-tail";
      tokens.push_back(tok);
    }
  }
  ASSERT_EQ(tokens.size(), 20u) << "hash changed? could not force collisions";

  SigTokens sigs;
  for (const std::string& tok : tokens) sigs.push_back({tok});
  Prefilter pf = Prefilter::Build(sigs);
  ASSERT_EQ(pf.num_buckets(), 4u);
  for (Mode mode : AvailableModes()) {
    SCOPED_TRACE(ModeName(mode));
    for (size_t s = 0; s < sigs.size(); ++s) {
      ScanScratch scratch;
      EXPECT_TRUE(pf.Scan("pad|" + sigs[s][0] + "|pad", &scratch, mode));
      EXPECT_TRUE(Prefilter::IsCandidate(scratch, s)) << "sig " << s;
    }
  }
}

TEST(PrefilterTableTest, IntrospectionIsSane) {
  // Distinct first-4-byte windows ("abcd", "efgh"); "toke"-style shared
  // prefixes would collapse into one window (see SharedWindowMarksEvery).
  SigTokens sigs = {{"abcd-token"}, {"efgh-token"}, {"xy"}};
  Prefilter pf = Prefilter::Build(sigs);
  EXPECT_EQ(pf.num_signatures(), 3u);
  EXPECT_EQ(pf.num_windows(), 2u);
  EXPECT_EQ(pf.num_always_candidates(), 1u);
  EXPECT_GT(pf.table_bytes(), internal::kBloomBytes);
  EXPECT_GE(pf.num_buckets(), 4u);
}

}  // namespace
}  // namespace leakdet::prefilter
