// Unit tests for the WAL replication protocol and the ClusterNode sync /
// promote lifecycle (ctest label: cluster). The wire format is the store's
// own CRC-framed records, so every damage mode a disk can produce is also
// detected in flight; followers mirror the leader's log byte-for-byte and
// can be promoted from local durable state alone.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "cluster/node.h"
#include "cluster/replication.h"
#include "core/payload_check.h"
#include "gateway/gateway.h"
#include "gateway/trainer.h"
#include "store/store_manager.h"
#include "store/wal.h"
#include "testing/chaos_util.h"
#include "testing/packet_gen.h"
#include "testing/scripted_conn.h"
#include "testing/scripted_file.h"
#include "util/rng.h"

namespace leakdet {
namespace {

store::FeedRecord MakeRecord(Rng* rng, uint64_t feed_version) {
  store::FeedRecord record;
  record.feed_version = feed_version;
  record.sensitive = rng->Bernoulli(0.5);
  record.shard = static_cast<uint32_t>(rng->UniformInt(4));
  record.num_matches = static_cast<uint32_t>(rng->UniformInt(3));
  record.packet = testing::GeneratePacket(rng, {}, 0.0);
  return record;
}

class WalBatchTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto opened = store::StoreManager::Open(&dir_, "leader", {});
    ASSERT_TRUE(opened.ok()) << opened.status().message();
    store_ = std::move(*opened);
    Rng rng(7);
    for (int i = 0; i < 10; ++i) {
      ASSERT_TRUE(store_->Append(MakeRecord(&rng, 1)).ok());
    }
    ASSERT_TRUE(store_->Sync().ok());
  }

  testing::ScriptedDir dir_{1};
  std::unique_ptr<store::StoreManager> store_;
};

TEST_F(WalBatchTest, RoundTripsTheWholeLog) {
  uint64_t last = 0;
  auto payload = cluster::BuildWalBatchPayload(&dir_, "leader", 0,
                                               /*max_records=*/0, &last);
  ASSERT_TRUE(payload.ok()) << payload.status().message();
  EXPECT_EQ(last, 10u);
  auto batch = cluster::ParseWalBatch(*payload, 0);
  ASSERT_TRUE(batch.ok()) << batch.status().message();
  EXPECT_EQ(batch->records.size(), 10u);
  EXPECT_EQ(batch->last_sequence, 10u);
  for (size_t i = 0; i < batch->records.size(); ++i) {
    EXPECT_EQ(batch->records[i].sequence, i + 1);
  }
}

TEST_F(WalBatchTest, HonorsBatchCapAndResumesAfter) {
  uint64_t last = 0;
  auto head = cluster::BuildWalBatchPayload(&dir_, "leader", 0,
                                            /*max_records=*/3, &last);
  ASSERT_TRUE(head.ok());
  EXPECT_EQ(last, 3u);
  auto head_batch = cluster::ParseWalBatch(*head, 0);
  ASSERT_TRUE(head_batch.ok());
  EXPECT_EQ(head_batch->records.size(), 3u);

  auto tail = cluster::BuildWalBatchPayload(&dir_, "leader", last,
                                            /*max_records=*/0, &last);
  ASSERT_TRUE(tail.ok());
  auto tail_batch = cluster::ParseWalBatch(*tail, 3);
  ASSERT_TRUE(tail_batch.ok());
  EXPECT_EQ(tail_batch->records.size(), 7u);
  EXPECT_EQ(tail_batch->last_sequence, 10u);
}

TEST_F(WalBatchTest, EmptySuffixYieldsEmptyBatch) {
  auto payload = cluster::BuildWalBatchPayload(&dir_, "leader", 10);
  ASSERT_TRUE(payload.ok());
  EXPECT_TRUE(payload->empty());
  auto batch = cluster::ParseWalBatch(*payload, 10);
  ASSERT_TRUE(batch.ok());
  EXPECT_TRUE(batch->records.empty());
  EXPECT_EQ(batch->last_sequence, 10u);
}

TEST_F(WalBatchTest, DetectsEveryWireDamageMode) {
  auto payload = cluster::BuildWalBatchPayload(&dir_, "leader", 0);
  ASSERT_TRUE(payload.ok());

  // Single flipped bit anywhere in a frame -> Corruption.
  std::string flipped = *payload;
  flipped[flipped.size() / 2] ^= 0x20;
  auto flipped_batch = cluster::ParseWalBatch(flipped, 0);
  ASSERT_FALSE(flipped_batch.ok());
  EXPECT_EQ(flipped_batch.status().code(), StatusCode::kCorruption);

  // Truncated mid-frame (a torn replication write) -> Corruption, not a
  // silent short batch.
  std::string torn = payload->substr(0, payload->size() - 7);
  auto torn_batch = cluster::ParseWalBatch(torn, 0);
  ASSERT_FALSE(torn_batch.ok());
  EXPECT_EQ(torn_batch.status().code(), StatusCode::kCorruption);

  // A gap in the sequence numbering (valid frames, wrong suffix) ->
  // Corruption: the batch does not continue the follower's log.
  auto batch = cluster::ParseWalBatch(*payload, 1);
  ASSERT_FALSE(batch.ok());
  EXPECT_EQ(batch.status().code(), StatusCode::kCorruption);
}

TEST(ClusterReplicationTest, AppendReplicatedRejectsGapsAndRewinds) {
  testing::ScriptedDir dir(3);
  auto opened = store::StoreManager::Open(&dir, "follower", {});
  ASSERT_TRUE(opened.ok());
  std::unique_ptr<store::StoreManager> follower = std::move(*opened);
  Rng rng(11);

  store::FeedRecord first = MakeRecord(&rng, 1);
  first.sequence = 1;
  ASSERT_TRUE(follower->AppendReplicated(std::move(first)).ok());

  store::FeedRecord gap = MakeRecord(&rng, 1);
  gap.sequence = 3;  // skips 2
  auto gap_result = follower->AppendReplicated(std::move(gap));
  ASSERT_FALSE(gap_result.ok());
  EXPECT_EQ(gap_result.status().code(), StatusCode::kInvalidArgument);

  store::FeedRecord rewind = MakeRecord(&rng, 1);
  rewind.sequence = 1;  // duplicate of the applied record
  auto rewind_result = follower->AppendReplicated(std::move(rewind));
  ASSERT_FALSE(rewind_result.ok());
  EXPECT_EQ(rewind_result.status().code(), StatusCode::kInvalidArgument);

  EXPECT_EQ(follower->last_sequence(), 1u);
}

// Full node lifecycle: a leader trains and publishes; a follower mirrors
// the WAL and adopts the epoch over a scripted connection; promoting the
// follower reproduces the leader's exact feed from local state alone.
TEST(ClusterReplicationTest, FollowerSyncsAndPromotesToIdenticalFeed) {
  std::vector<core::DeviceTokens> devices(1);
  Rng rng(31);
  devices[0].android_id = rng.RandomHex(16);
  devices[0].imei = rng.RandomDigits(15);
  core::PayloadCheck oracle(devices);
  std::vector<std::string> tokens = {devices[0].android_id, devices[0].imei};

  core::SignatureServer::Options server_options;
  server_options.retrain_after = 8;
  server_options.pipeline.sample_size = 16;
  server_options.pipeline.normal_corpus_size = 64;
  server_options.pipeline.num_threads = 1;

  auto make_node = [&](testing::ScriptedDir* dir, const std::string& id) {
    cluster::NodeOptions options;
    options.node_id = id;
    options.dir = dir;
    options.oracle = &oracle;
    options.server = server_options;
    options.gateway.num_shards = 1;
    options.gateway.queue_capacity = 64;
    options.train_from_gateway = false;
    return cluster::ClusterNode::Start(std::move(options));
  };

  testing::ScriptedDir leader_dir(101);
  testing::ScriptedDir follower_dir(102);
  auto leader = make_node(&leader_dir, "leader");
  ASSERT_TRUE(leader.ok()) << leader.status().message();
  auto follower = make_node(&follower_dir, "follower");
  ASSERT_TRUE(follower.ok()) << follower.status().message();

  ASSERT_TRUE((*leader)->Promote().ok());
  EXPECT_EQ((*leader)->role(), cluster::ClusterNode::Role::kLeader);

  auto listener = std::make_unique<testing::ScriptedListener>();
  testing::ScriptedListener* listener_ptr = listener.get();
  ASSERT_TRUE((*leader)->ServeReplication(std::move(listener)).ok());

  gateway::TrainerLoop* trainer = (*leader)->trainer();
  ASSERT_NE(trainer, nullptr);
  uint64_t offered = 0;
  for (size_t i = 0; i < server_options.retrain_after; ++i) {
    core::HttpPacket packet = testing::GeneratePacket(&rng, tokens, 1.0);
    gateway::Verdict verdict;
    verdict.sensitive = true;
    if (trainer->Offer(packet, verdict)) ++offered;
  }
  ASSERT_TRUE(testing::WaitUntil([&] {
    return trainer->items_processed() >= offered &&
           (*leader)->epoch_version() >= 1;
  }));
  ASSERT_TRUE((*leader)->store().Sync().ok());
  const uint64_t leader_epoch = (*leader)->epoch_version();
  const uint64_t leader_wal = (*leader)->wal_last_sequence();
  ASSERT_GT(leader_wal, 0u);

  auto connect = [&]() -> StatusOr<std::unique_ptr<net::Stream>> {
    std::unique_ptr<testing::ScriptedStream> stream = listener_ptr->Connect();
    (void)stream->SetReadTimeout(5000);
    return StatusOr<std::unique_ptr<net::Stream>>(std::move(stream));
  };
  auto sync = (*follower)->SyncWithLeader(connect);
  ASSERT_TRUE(sync.ok()) << sync.status().message();
  EXPECT_EQ(sync->leader_feed_version, leader_epoch);
  EXPECT_EQ(sync->records_applied, leader_wal);
  EXPECT_TRUE(sync->epoch_applied);
  EXPECT_EQ((*follower)->epoch_version(), leader_epoch);
  EXPECT_EQ((*follower)->wal_last_sequence(), leader_wal);

  // A second round is a no-op: nothing new to apply, no rollback.
  auto again = (*follower)->SyncWithLeader(connect);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->records_applied, 0u);
  EXPECT_FALSE(again->epoch_applied);

  // Promotion from local durable state reproduces the leader's feed
  // byte-for-byte — the failover guarantee, minus the cluster around it.
  const std::string leader_feed =
      (*leader)->gateway().current_set()->set().Serialize();
  (*leader)->StopServing();
  ASSERT_TRUE((*follower)->Promote().ok());
  auto promoted_set = (*follower)->gateway().current_set();
  ASSERT_NE(promoted_set, nullptr);
  EXPECT_EQ(promoted_set->version(), leader_epoch);
  EXPECT_EQ(promoted_set->set().Serialize(), leader_feed);
  (*follower)->StopServing();
}

}  // namespace
}  // namespace leakdet
