// Kill-and-recover integration test against the real filesystem: a child
// process ingests store-backed training traffic and reports its durable
// watermark over a pipe; the parent SIGKILLs it mid-run, recovers the data
// directory, and verifies that no acknowledged-durable record was lost and
// that the recovered server republishes at least the pre-crash epoch.
//
// The child is forked before any threads exist and both sides stay
// single-threaded, so the test is safe under TSan/ASan.

#include <gtest/gtest.h>

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/payload_check.h"
#include "core/signature_server.h"
#include "store/store_manager.h"
#include "testing/packet_gen.h"
#include "util/rng.h"

namespace leakdet::store {
namespace {

using leakdet::testing::GeneratePacket;

constexpr uint64_t kSeed = 20260807;
constexpr size_t kTapeLength = 150;

core::SignatureServer::Options SmallServerOptions() {
  core::SignatureServer::Options options;
  options.retrain_after = 10;
  options.pipeline.sample_size = 10;
  options.pipeline.normal_corpus_size = 20;
  options.pipeline.num_threads = 1;
  return options;
}

struct World {
  World() : rng(kSeed) {
    core::DeviceTokens device;
    device.android_id = rng.RandomHex(16);
    device.imei = rng.RandomDigits(15);
    device.imsi = rng.RandomDigits(15);
    device.sim_serial = rng.RandomDigits(19);
    device.carrier = "NTT DOCOMO";
    tokens = {device.android_id, device.imei};
    oracle = std::make_unique<core::PayloadCheck>(
        std::vector<core::DeviceTokens>{device});
    Rng traffic_rng(kSeed * 31 + 7);
    for (size_t i = 0; i < kTapeLength; ++i) {
      tape.push_back(GeneratePacket(&traffic_rng, tokens, 0.6));
    }
  }

  Rng rng;
  std::vector<std::string> tokens;
  std::unique_ptr<core::PayloadCheck> oracle;
  std::vector<core::HttpPacket> tape;
};

/// One progress report the child writes after every ingested packet.
struct Progress {
  uint64_t durable = 0;  ///< store->durable_sequence() at report time
  uint64_t version = 0;  ///< server->feed_version() at report time
};

StoreOptions TestStoreOptions() {
  StoreOptions options;
  // every-record acks make the "no acked record lost" assertion as tight
  // as it can be: every reported durable sequence is a hard promise.
  options.wal.sync_policy = SyncPolicy::kEveryRecord;
  options.wal.segment_bytes = 8192;
  return options;
}

/// Child body: recover, resume the tape, report progress forever (the
/// parent kills us). Uses only async-signal-unsafe-free reporting (write).
[[noreturn]] void RunChild(const std::string& data_dir, int report_fd) {
  World world;
  auto store = StoreManager::Open(Dir::Real(), data_dir, TestStoreOptions());
  if (!store.ok()) _exit(10);
  core::SignatureServer server(world.oracle.get(), SmallServerOptions());
  if (!(*store)->Recover(&server).ok()) _exit(11);
  size_t cursor = static_cast<size_t>((*store)->last_sequence());
  if (cursor > world.tape.size()) _exit(12);
  while (cursor < world.tape.size()) {
    FeedRecord record;
    record.feed_version = server.feed_version();
    record.packet = world.tape[cursor];
    if (!(*store)->Append(std::move(record)).ok()) _exit(13);
    uint64_t before = server.feed_version();
    server.Ingest(world.tape[cursor]);
    ++cursor;
    if (server.feed_version() != before) {
      if ((*store)->WriteSnapshot(server).ok()) {
        (void)(*store)->Compact();
      }
    }
    Progress progress{(*store)->durable_sequence(), server.feed_version()};
    if (write(report_fd, &progress, sizeof(progress)) != sizeof(progress)) {
      _exit(14);
    }
  }
  _exit(0);  // tape finished before the parent killed us — also fine
}

class StoreKillRecoverTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Under the build tree (the ctest working directory), not /tmp: the
    // fsync behaviour under test is the real filesystem's.
    data_dir_ = "store_kill_recover_data_" + std::to_string(getpid());
    RemoveDataDir();
  }
  void TearDown() override { RemoveDataDir(); }

  void RemoveDataDir() {
    auto names = Dir::Real()->List(data_dir_);
    if (names.ok()) {
      for (const std::string& name : *names) {
        Dir::Real()->Remove(data_dir_ + "/" + name);
      }
    }
    std::remove(data_dir_.c_str());
  }

  /// Forks a child run and SIGKILLs it once the parent has seen at least
  /// `min_reports` progress reports (or lets it finish if the tape runs
  /// out). Returns the last progress the child acknowledged.
  Progress RunAndKill(size_t min_reports) {
    int pipe_fds[2];
    EXPECT_EQ(pipe(pipe_fds), 0);
    pid_t pid = fork();
    EXPECT_GE(pid, 0);
    if (pid == 0) {
      close(pipe_fds[0]);
      RunChild(data_dir_, pipe_fds[1]);  // never returns
    }
    close(pipe_fds[1]);

    Progress last{};
    size_t reports = 0;
    Progress progress;
    while (true) {
      ssize_t n = read(pipe_fds[0], &progress, sizeof(progress));
      if (n != sizeof(progress)) break;  // EOF: child done or died
      last = progress;
      ++reports;
      if (reports >= min_reports) {
        kill(pid, SIGKILL);
        break;
      }
    }
    // Drain whatever the child wrote between our decision and its death —
    // every report read is an acknowledged promise, including these.
    while (read(pipe_fds[0], &progress, sizeof(progress)) ==
           static_cast<ssize_t>(sizeof(progress))) {
      last = progress;
    }
    close(pipe_fds[0]);
    int wstatus = 0;
    EXPECT_EQ(waitpid(pid, &wstatus, 0), pid);
    if (WIFEXITED(wstatus)) {
      EXPECT_EQ(WEXITSTATUS(wstatus), 0) << "child failed before the kill";
    }
    return last;
  }

  std::string data_dir_;
};

TEST_F(StoreKillRecoverTest, NoAcknowledgedRecordLostAcrossKills) {
  World world;
  // Three kill-recover cycles at different depths, then a run to completion.
  std::vector<Progress> acked;
  acked.push_back(RunAndKill(20));
  acked.push_back(RunAndKill(45));
  acked.push_back(RunAndKill(70));
  acked.push_back(RunAndKill(kTapeLength * 2));  // never reached: tape ends

  for (const Progress& progress : acked) {
    ASSERT_GT(progress.durable, 0u);
  }
  // Each cycle resumed at or past the previous acked watermark, so the
  // watermarks are non-decreasing across kills.
  for (size_t i = 1; i < acked.size(); ++i) {
    EXPECT_GE(acked[i].durable, acked[i - 1].durable);
  }

  // Final recovery in-process: the full tape must be there and the state
  // bit-identical to a never-crashed oracle run.
  auto store = StoreManager::Open(Dir::Real(), data_dir_, TestStoreOptions());
  ASSERT_TRUE(store.ok()) << store.status().message();
  core::SignatureServer recovered(world.oracle.get(), SmallServerOptions());
  uint64_t first_republished = 0;
  recovered.SetFeedObserver(
      [&](uint64_t version, const match::SignatureSet&) {
        if (first_republished == 0) first_republished = version;
      });
  auto stats = (*store)->Recover(&recovered);
  ASSERT_TRUE(stats.ok()) << stats.status().message();

  const Progress& final_acked = acked.back();
  EXPECT_GE((*store)->last_sequence(), final_acked.durable)
      << "acknowledged-durable records were lost";
  EXPECT_EQ((*store)->last_sequence(), kTapeLength);

  // Serve-before-replay: the snapshot epoch published before any replay...
  EXPECT_TRUE(stats->snapshot_loaded);
  EXPECT_EQ(first_republished, stats->snapshot_version);
  // ...and after replay the served epoch is at least the last the child
  // ever reported as published before dying.
  EXPECT_GE(recovered.feed_version(), final_acked.version);

  // Bit-identical to the no-crash oracle.
  core::SignatureServer oracle_server(world.oracle.get(), SmallServerOptions());
  for (const core::HttpPacket& packet : world.tape) {
    oracle_server.Ingest(packet);
  }
  EXPECT_EQ(recovered.feed_version(), oracle_server.feed_version());
  EXPECT_EQ(recovered.Feed(), oracle_server.Feed());
  EXPECT_EQ(recovered.new_suspicious(), oracle_server.new_suspicious());
  ASSERT_EQ(recovered.suspicious_pool().size(),
            oracle_server.suspicious_pool().size());
  for (size_t i = 0; i < oracle_server.suspicious_pool().size(); ++i) {
    EXPECT_EQ(recovered.suspicious_pool()[i],
              oracle_server.suspicious_pool()[i]);
  }
}

}  // namespace
}  // namespace leakdet::store
