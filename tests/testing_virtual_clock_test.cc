#include "testing/virtual_clock.h"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "util/clock.h"

namespace leakdet::testing {
namespace {

using std::chrono::milliseconds;
using std::chrono::nanoseconds;

TEST(VirtualClockTest, TimeOnlyMovesWhenAdvanced) {
  VirtualClock clock;
  Clock::TimePoint t0 = clock.Now();
  EXPECT_EQ(clock.Now(), t0);
  EXPECT_EQ(clock.Now(), t0);
  clock.Advance(milliseconds(25));
  EXPECT_EQ(clock.Now(), t0 + milliseconds(25));
}

TEST(VirtualClockTest, AdvanceToNeverMovesBackwards) {
  VirtualClock clock;
  Clock::TimePoint t0 = clock.Now();
  clock.AdvanceTo(t0 + milliseconds(10));
  EXPECT_EQ(clock.Now(), t0 + milliseconds(10));
  clock.AdvanceTo(t0);  // in the past: ignored
  EXPECT_EQ(clock.Now(), t0 + milliseconds(10));
}

TEST(VirtualClockTest, SleepForAdvancesTheClockItself) {
  VirtualClock clock;
  Clock::TimePoint t0 = clock.Now();
  clock.SleepFor(nanoseconds(1500));
  EXPECT_EQ(clock.Now(), t0 + nanoseconds(1500));
}

TEST(VirtualClockTest, AdvancesCounterCountsEveryStep) {
  VirtualClock clock;
  EXPECT_EQ(clock.advances(), 0u);
  clock.Advance(milliseconds(1));
  clock.AdvanceTo(clock.Now());
  clock.SleepFor(nanoseconds(1));
  EXPECT_EQ(clock.advances(), 3u);
}

TEST(VirtualClockTest, BlockUntilReleasesWhenAnotherThreadAdvances) {
  VirtualClock clock;
  Clock::TimePoint target = clock.Now() + milliseconds(50);
  std::thread advancer([&] {
    std::this_thread::sleep_for(milliseconds(20));
    clock.Advance(milliseconds(50));
  });
  clock.BlockUntil(target);  // must return once the advance lands
  EXPECT_GE(clock.Now(), target);
  advancer.join();
}

TEST(VirtualClockTest, RealClockMovesOnItsOwn) {
  Clock* real = Clock::Real();
  ASSERT_NE(real, nullptr);
  Clock::TimePoint t0 = real->Now();
  real->SleepFor(milliseconds(2));
  EXPECT_GT(real->Now(), t0);
}

}  // namespace
}  // namespace leakdet::testing
