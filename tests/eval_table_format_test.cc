#include "eval/table_format.h"

#include <gtest/gtest.h>

namespace leakdet::eval {
namespace {

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter table({"Name", "N"});
  table.AddRow({"short", "1"});
  table.AddRow({"a-much-longer-name", "12345"});
  std::string out = table.Render();
  EXPECT_NE(out.find("| Name               | N     |"), std::string::npos)
      << out;
  EXPECT_NE(out.find("| a-much-longer-name | 12345 |"), std::string::npos);
  EXPECT_NE(out.find("|------"), std::string::npos);
}

TEST(TablePrinterTest, HeaderOnlyTable) {
  TablePrinter table({"A", "B"});
  std::string out = table.Render();
  EXPECT_NE(out.find("| A | B |"), std::string::npos);
}

TEST(TablePrinterTest, RowsRenderInOrder) {
  TablePrinter table({"k"});
  table.AddRow({"first"});
  table.AddRow({"second"});
  std::string out = table.Render();
  EXPECT_LT(out.find("first"), out.find("second"));
}

TEST(FormatDoubleTest, Decimals) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(3.0, 0), "3");
  EXPECT_EQ(FormatDouble(-1.5, 1), "-1.5");
}

TEST(FormatPercentTest, FractionToPercent) {
  EXPECT_EQ(FormatPercent(0.94), "94.0%");
  EXPECT_EQ(FormatPercent(0.023, 1), "2.3%");
  EXPECT_EQ(FormatPercent(1.0, 0), "100%");
}

}  // namespace
}  // namespace leakdet::eval
