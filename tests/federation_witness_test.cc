#include "federation/witness.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "util/rng.h"

namespace leakdet::federation {
namespace {

TEST(WitnessTableTest, CountsDistinctDevicesOnly) {
  WitnessTable table(8);
  table.Observe("token", 1);
  table.Observe("token", 1);
  table.Observe("token", 2);
  EXPECT_EQ(table.DistinctDevices("token"), 2u);
  EXPECT_EQ(table.DistinctDevices("absent"), 0u);
}

TEST(WitnessTableTest, TruncationKeepsTheSmallestHashes) {
  WitnessTable table(3);
  for (uint64_t hash : {50u, 10u, 40u, 20u, 30u}) table.Observe("t", hash);
  EXPECT_EQ(table.DistinctDevices("t"), 3u);
  EXPECT_EQ(table.tokens().at("t"), (std::vector<uint64_t>{10, 20, 30}));
  // A hash above the retained maximum cannot displace anything.
  table.Observe("t", 99);
  EXPECT_EQ(table.tokens().at("t"), (std::vector<uint64_t>{10, 20, 30}));
  // A smaller hash evicts the current maximum.
  table.Observe("t", 5);
  EXPECT_EQ(table.tokens().at("t"), (std::vector<uint64_t>{5, 10, 20}));
}

TEST(WitnessTableTest, MergeRefusesCapMismatch) {
  WitnessTable a(4), b(8);
  EXPECT_FALSE(a.MergeFrom(b));
  WitnessTable c(4);
  EXPECT_TRUE(a.MergeFrom(c));
}

/// The load-bearing property: min-cap truncation never changes a ">= K"
/// decision for K <= cap, no matter how observations are split across
/// shards or in what order shards merge.
TEST(WitnessTableTest, TruncatedUnionPreservesThresholdDecisions) {
  Rng rng(11);
  const size_t cap = 8;
  for (int trial = 0; trial < 200; ++trial) {
    // True device set for one token, of size around the cap boundary.
    size_t true_devices = 1 + rng.UniformInt(2 * cap);
    std::vector<uint64_t> devices;
    std::set<uint64_t> seen;
    while (devices.size() < true_devices) {
      uint64_t hash = rng.Next();
      if (seen.insert(hash).second) devices.push_back(hash);
    }
    // Random 3-way shard split with duplicated observations.
    WitnessTable shards[3] = {WitnessTable(cap), WitnessTable(cap),
                              WitnessTable(cap)};
    for (uint64_t hash : devices) {
      size_t copies = 1 + rng.UniformInt(3);
      for (size_t c = 0; c < copies; ++c) {
        shards[rng.UniformInt(3)].Observe("t", hash);
      }
    }
    WitnessTable merged(cap);
    // Random merge order.
    std::vector<int> order = {0, 1, 2};
    rng.Shuffle(&order);
    for (int index : order) ASSERT_TRUE(merged.MergeFrom(shards[index]));
    for (size_t k = 1; k <= cap; ++k) {
      EXPECT_EQ(merged.DistinctDevices("t") >= k, true_devices >= k)
          << "K=" << k << " true=" << true_devices
          << " merged=" << merged.DistinctDevices("t");
    }
  }
}

TEST(WitnessTableTest, MergeIsCommutativeAssociativeIdempotent) {
  Rng rng(23);
  for (int trial = 0; trial < 100; ++trial) {
    auto random_table = [&]() {
      WitnessTable table(4);
      size_t observations = rng.UniformInt(20);
      for (size_t i = 0; i < observations; ++i) {
        std::string token = "tok" + std::to_string(rng.UniformInt(4));
        table.Observe(token, rng.UniformInt(32));
      }
      return table;
    };
    WitnessTable a = random_table(), b = random_table(), c = random_table();

    WitnessTable ab = a;
    ASSERT_TRUE(ab.MergeFrom(b));
    WitnessTable ba = b;
    ASSERT_TRUE(ba.MergeFrom(a));
    EXPECT_TRUE(ab == ba);

    WitnessTable ab_c = ab;
    ASSERT_TRUE(ab_c.MergeFrom(c));
    WitnessTable bc = b;
    ASSERT_TRUE(bc.MergeFrom(c));
    WitnessTable a_bc = a;
    ASSERT_TRUE(a_bc.MergeFrom(bc));
    EXPECT_TRUE(ab_c == a_bc);

    WitnessTable aa = a;
    ASSERT_TRUE(aa.MergeFrom(a));
    EXPECT_TRUE(aa == a);
  }
}

TEST(BuildWitnessTableTest, MatchesNaiveScan) {
  Rng rng(37);
  std::vector<std::string> tokens = {"alphatoken", "betatoken", "gammatoken"};
  std::vector<WitnessRecord> corpus;
  for (int i = 0; i < 60; ++i) {
    WitnessRecord record;
    record.device_hash = 1 + rng.UniformInt(10);
    record.content = "prefix/";
    for (const std::string& token : tokens) {
      if (rng.Bernoulli(0.4)) record.content += token + "&";
    }
    corpus.push_back(std::move(record));
  }
  WitnessTable table = BuildWitnessTable(tokens, corpus, 64);
  for (const std::string& token : tokens) {
    std::set<uint64_t> expected;
    for (const WitnessRecord& record : corpus) {
      if (record.content.find(token) != std::string::npos) {
        expected.insert(record.device_hash);
      }
    }
    EXPECT_EQ(table.DistinctDevices(token), expected.size()) << token;
  }
}

TEST(BuildWitnessTableTest, HandlesDuplicateAndEmptyTokens) {
  std::vector<WitnessRecord> corpus = {{7, "needle in here"}};
  WitnessTable table =
      BuildWitnessTable({"needle", "needle", "", "missing"}, corpus, 4);
  EXPECT_EQ(table.DistinctDevices("needle"), 1u);
  EXPECT_EQ(table.DistinctDevices(""), 0u);
  EXPECT_EQ(table.DistinctDevices("missing"), 0u);
}

TEST(DeviceWitnessHashTest, StableAndSpread) {
  EXPECT_EQ(DeviceWitnessHash(123), DeviceWitnessHash(123));
  std::set<uint64_t> hashes;
  for (uint64_t key = 0; key < 1000; ++key) {
    hashes.insert(DeviceWitnessHash(key));
  }
  EXPECT_EQ(hashes.size(), 1000u);
}

}  // namespace
}  // namespace leakdet::federation
