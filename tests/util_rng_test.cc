#include "util/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>

namespace leakdet {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformIntStaysInRange) {
  Rng rng(7);
  for (uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.UniformInt(bound), bound);
    }
  }
}

TEST(RngTest, UniformIntCoversAllValues) {
  Rng rng(11);
  std::set<uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.UniformInt(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, UniformRangeInclusive) {
  Rng rng(13);
  bool hit_lo = false, hit_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.UniformRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    if (v == -3) hit_lo = true;
    if (v == 3) hit_hi = true;
  }
  EXPECT_TRUE(hit_lo);
  EXPECT_TRUE(hit_hi);
}

TEST(RngTest, UniformDoubleInHalfOpenUnitInterval) {
  Rng rng(17);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double v = rng.UniformDouble();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(19);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliRate) {
  Rng rng(23);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(RngTest, RandomStringUsesAlphabet) {
  Rng rng(29);
  std::string s = rng.RandomString(200, "ab");
  EXPECT_EQ(s.size(), 200u);
  for (char c : s) EXPECT_TRUE(c == 'a' || c == 'b');
}

TEST(RngTest, RandomDigitsAndHex) {
  Rng rng(31);
  std::string d = rng.RandomDigits(50);
  for (char c : d) EXPECT_TRUE(c >= '0' && c <= '9');
  std::string h = rng.RandomHex(50);
  for (char c : h) {
    EXPECT_TRUE((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f'));
  }
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(37);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  EXPECT_NE(v, orig);  // astronomically unlikely to be identity
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(RngTest, ShuffleEmptyAndSingle) {
  Rng rng(41);
  std::vector<int> empty;
  rng.Shuffle(&empty);
  std::vector<int> one{5};
  rng.Shuffle(&one);
  EXPECT_EQ(one[0], 5);
}

TEST(RngTest, WeightedIndexRespectsWeights) {
  Rng rng(43);
  std::vector<double> weights = {1.0, 0.0, 3.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 8000; ++i) counts[rng.WeightedIndex(weights)]++;
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(counts[0] / 8000.0, 0.25, 0.03);
  EXPECT_NEAR(counts[2] / 8000.0, 0.75, 0.03);
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(47);
  for (size_t k : {0ul, 1ul, 5ul, 50ul, 100ul}) {
    auto sample = rng.SampleWithoutReplacement(100, k);
    EXPECT_EQ(sample.size(), k);
    std::set<size_t> unique(sample.begin(), sample.end());
    EXPECT_EQ(unique.size(), k);
    for (size_t v : sample) EXPECT_LT(v, 100u);
  }
}

TEST(RngTest, SampleWithoutReplacementSparsePath) {
  Rng rng(53);
  auto sample = rng.SampleWithoutReplacement(1000000, 10);
  std::set<size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 10u);
}

TEST(ZipfSamplerTest, PmfSumsToOneAndDecreases) {
  ZipfSampler zipf(100, 1.0);
  double sum = 0;
  for (size_t k = 0; k < 100; ++k) {
    sum += zipf.Pmf(k);
    if (k > 0) EXPECT_LE(zipf.Pmf(k), zipf.Pmf(k - 1) + 1e-12);
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(ZipfSamplerTest, RankZeroIsMostLikely) {
  ZipfSampler zipf(50, 1.2);
  Rng rng(59);
  std::vector<int> counts(50, 0);
  for (int i = 0; i < 20000; ++i) counts[zipf.Sample(&rng)]++;
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[0], counts[49]);
  EXPECT_NEAR(counts[0] / 20000.0, zipf.Pmf(0), 0.02);
}

TEST(ZipfSamplerTest, SingleElement) {
  ZipfSampler zipf(1, 1.0);
  Rng rng(61);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(zipf.Sample(&rng), 0u);
}

}  // namespace
}  // namespace leakdet
