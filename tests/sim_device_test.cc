#include "sim/device.h"

#include <gtest/gtest.h>

#include "sim/identifiers.h"
#include "sim/permissions.h"

namespace leakdet::sim {
namespace {

TEST(DeviceTest, MakeDeviceProducesValidIdentifiers) {
  Rng rng(1);
  DeviceProfile d = MakeDevice(&rng);
  EXPECT_TRUE(LooksLikeAndroidId(d.android_id));
  EXPECT_TRUE(LooksLikeImei(d.imei));
  EXPECT_TRUE(LooksLikeImsi(d.imsi));
  EXPECT_TRUE(LooksLikeSimSerial(d.sim_serial));
  EXPECT_EQ(d.carrier, "NTT DOCOMO");
  EXPECT_EQ(d.model, "Nexus S");
  EXPECT_EQ(d.os_version, "2.3.4");
}

TEST(DeviceTest, CustomCarrier) {
  Rng rng(2);
  DeviceProfile d = MakeDevice(&rng, "SoftBank");
  EXPECT_EQ(d.carrier, "SoftBank");
}

TEST(DeviceTest, ToTokensMirrorsFields) {
  Rng rng(3);
  DeviceProfile d = MakeDevice(&rng);
  core::DeviceTokens t = d.ToTokens();
  EXPECT_EQ(t.android_id, d.android_id);
  EXPECT_EQ(t.imei, d.imei);
  EXPECT_EQ(t.imsi, d.imsi);
  EXPECT_EQ(t.sim_serial, d.sim_serial);
  EXPECT_EQ(t.carrier, d.carrier);
}

TEST(DeviceTest, DistinctDevicesDistinctIdentifiers) {
  Rng rng(4);
  DeviceProfile a = MakeDevice(&rng);
  DeviceProfile b = MakeDevice(&rng);
  EXPECT_NE(a.android_id, b.android_id);
  EXPECT_NE(a.imei, b.imei);
  EXPECT_NE(a.imsi, b.imsi);
  EXPECT_NE(a.sim_serial, b.sim_serial);
}

TEST(CarrierCatalogTest, JapaneseCarriersPresent) {
  const auto& carriers = CarrierCatalog();
  ASSERT_GE(carriers.size(), 3u);
  EXPECT_EQ(carriers[0], "NTT DOCOMO");
  bool has_softbank = false;
  for (const auto& c : carriers) {
    if (c == "SoftBank") has_softbank = true;
  }
  EXPECT_TRUE(has_softbank);
}

TEST(PermissionSetTest, DangerousCombination) {
  PermissionSet p;
  p.bits = kInternet;
  EXPECT_FALSE(p.IsDangerousCombination());
  p.bits = kInternet | kLocation;
  EXPECT_TRUE(p.IsDangerousCombination());
  p.bits = kInternet | kReadPhoneState;
  EXPECT_TRUE(p.IsDangerousCombination());
  p.bits = kLocation | kReadPhoneState;  // no INTERNET
  EXPECT_FALSE(p.IsDangerousCombination());
}

TEST(PermissionSetTest, PhoneIdGate) {
  PermissionSet p;
  p.bits = kInternet;
  EXPECT_FALSE(p.CanReadPhoneIds());
  p.bits = kInternet | kReadPhoneState;
  EXPECT_TRUE(p.CanReadPhoneIds());
  EXPECT_TRUE(PermissionSet::CanReadAndroidId());
}

TEST(PermissionSetTest, ToStringForm) {
  PermissionSet p;
  p.bits = kInternet | kLocation | kReadPhoneState | kReadContacts;
  EXPECT_EQ(p.ToString(), "I+L+P+C");
  p.bits = kInternet | kOther;
  EXPECT_EQ(p.ToString(), "I+O");
  p.bits = 0;
  EXPECT_EQ(p.ToString(), "-");
}

}  // namespace
}  // namespace leakdet::sim
