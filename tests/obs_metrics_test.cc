// Unit tests for the obs metric primitives and Registry, including the
// Quantile torn-snapshot regression and a Prometheus exposition golden.

#include "obs/metrics.h"

#include <cstdint>
#include <limits>
#include <string>

#include <gtest/gtest.h>

#include "testing/virtual_clock.h"

namespace leakdet::obs {
namespace {

TEST(CounterTest, IncAndValue) {
  Counter c;
  EXPECT_EQ(c.Value(), 0u);
  c.Inc();
  c.Inc(41);
  EXPECT_EQ(c.Value(), 42u);
}

TEST(GaugeTest, SetAddValue) {
  Gauge g;
  EXPECT_EQ(g.Value(), 0);
  g.Set(7);
  EXPECT_EQ(g.Value(), 7);
  g.Add(-10);
  EXPECT_EQ(g.Value(), -3);
}

TEST(HistogramTest, ObserveCountsSumAndMean) {
  Histogram h;
  h.Observe(0);
  h.Observe(3);
  h.Observe(1024);
  Histogram::Snapshot snap = h.Take();
  EXPECT_EQ(snap.count, 3u);
  EXPECT_EQ(snap.sum, 1027u);
  EXPECT_DOUBLE_EQ(snap.Mean(), 1027.0 / 3.0);
  EXPECT_EQ(snap.buckets[0], 1u);   // 0 lands in bucket 0
  EXPECT_EQ(snap.buckets[1], 1u);   // 3 in [2, 4)
  EXPECT_EQ(snap.buckets[10], 1u);  // 1024 in [1024, 2048)
}

TEST(HistogramTest, QuantileReportsBucketUpperEdge) {
  Histogram h;
  for (int i = 0; i < 1000; ++i) h.Observe(4096);  // bucket 12: [4096, 8192)
  Histogram::Snapshot snap = h.Take();
  EXPECT_EQ(snap.Quantile(0.50), uint64_t{1} << 13);
  EXPECT_EQ(snap.Quantile(0.99), uint64_t{1} << 13);
}

TEST(HistogramTest, QuantileEmptySnapshotIsZero) {
  Histogram::Snapshot snap;
  EXPECT_EQ(snap.Quantile(0.99), 0u);
}

// Regression: a torn snapshot — `count` incremented by a concurrent
// Observe between the bucket loads and the count load — used to rank past
// every bucket and fall through to the 1<<40 (~18 minute) sentinel,
// poisoning p99 reports. The quantile must rank over the bucket mass the
// snapshot actually holds.
TEST(HistogramTest, TornSnapshotNeverReportsSentinel) {
  Histogram::Snapshot snap;
  snap.count = 100;  // ran far ahead of the bucket sums
  snap.sum = 100 * 4096;
  snap.buckets[12] = 2;  // only two observations made it into buckets
  EXPECT_EQ(snap.Quantile(0.99), uint64_t{1} << 13);
  EXPECT_NE(snap.Quantile(0.99), uint64_t{1} << 40);
  EXPECT_EQ(snap.Quantile(1.0), uint64_t{1} << 13);
}

// The last bucket is unbounded, so a quantile landing there reports "off
// the scale" rather than a fabricated 2^40 edge.
TEST(HistogramTest, QuantileInLastBucketReportsOffScale) {
  Histogram::Snapshot snap;
  snap.count = 4;
  snap.buckets[Histogram::kNumBuckets - 1] = 4;
  EXPECT_EQ(snap.Quantile(0.5), std::numeric_limits<uint64_t>::max());

  Histogram::Snapshot mixed;
  mixed.count = 2;
  mixed.buckets[0] = 1;
  mixed.buckets[Histogram::kNumBuckets - 1] = 1;
  EXPECT_EQ(mixed.Quantile(0.0), 2u);
  EXPECT_EQ(mixed.Quantile(1.0), std::numeric_limits<uint64_t>::max());
}

TEST(ScopedTimerTest, ObservesElapsedVirtualTime) {
  testing::VirtualClock clock;
  Histogram h;
  {
    ScopedTimer timer(&h, &clock);
    clock.Advance(std::chrono::milliseconds(5));
    EXPECT_EQ(timer.ElapsedNs(), 5'000'000u);
  }
  Histogram::Snapshot snap = h.Take();
  EXPECT_EQ(snap.count, 1u);
  EXPECT_EQ(snap.sum, 5'000'000u);
}

TEST(ScopedTimerTest, NullHistogramIsANoOp) {
  testing::VirtualClock clock;
  ScopedTimer timer(nullptr, &clock);
  clock.Advance(std::chrono::milliseconds(1));
  EXPECT_EQ(timer.ElapsedNs(), 1'000'000u);
}

TEST(RegistryTest, SameNameReturnsSameMetric) {
  Registry registry;
  EXPECT_EQ(registry.GetCounter("a"), registry.GetCounter("a"));
  EXPECT_NE(registry.GetCounter("a"), registry.GetCounter("b"));
  EXPECT_NE(registry.GetCounter("a"),
            registry.GetCounter("a", {{"shard", "0"}}));
  EXPECT_EQ(registry.GetGauge("g", {{"k", "v"}}),
            registry.GetGauge("g", {{"k", "v"}}));
  EXPECT_EQ(registry.GetHistogram("h"), registry.GetHistogram("h"));
}

TEST(RegistryTest, TextDumpIsSortedFlatFormat) {
  Registry registry;
  registry.GetCounter("b")->Inc();
  registry.GetGauge("a")->Set(5);
  EXPECT_EQ(registry.TextDump(), "a 5\nb 1\n");
}

TEST(RegistryTest, OnCollectRefreshesGaugesBeforeRender) {
  Registry registry;
  Gauge* depth = registry.GetGauge("depth");
  int live = 0;
  registry.OnCollect([depth, &live] { depth->Set(live); });
  live = 17;
  EXPECT_EQ(registry.TextDump(), "depth 17\n");
  live = 23;
  EXPECT_NE(registry.PrometheusText().find("depth 23\n"), std::string::npos);
}

TEST(FamilyTest, WithCachesAndRegistersLabeledSeries) {
  Registry registry;
  CounterFamily family(&registry, "reqs", "outcome");
  Counter* ok = family.With("ok");
  EXPECT_EQ(ok, family.With("ok"));
  EXPECT_EQ(ok, registry.GetCounter("reqs", {{"outcome", "ok"}}));
  EXPECT_NE(ok, family.With("err"));
}

// Golden Prometheus text exposition: families sorted by sanitized name,
// `# TYPE` per family, cumulative buckets with the empty tail trimmed, and
// the mandatory +Inf / _sum / _count series.
TEST(RegistryTest, PrometheusGolden) {
  Registry registry;
  registry.GetCounter("gw.requests")->Inc(3);
  registry.GetGauge("queue.depth")->Set(-2);
  Histogram* h = registry.GetHistogram("req.ns");
  h->Observe(0);
  h->Observe(3);
  h->Observe(1024);
  EXPECT_EQ(registry.PrometheusText(),
            "# TYPE gw_requests counter\n"
            "gw_requests 3\n"
            "# TYPE queue_depth gauge\n"
            "queue_depth -2\n"
            "# TYPE req_ns histogram\n"
            "req_ns_bucket{le=\"2\"} 1\n"
            "req_ns_bucket{le=\"4\"} 2\n"
            "req_ns_bucket{le=\"8\"} 2\n"
            "req_ns_bucket{le=\"16\"} 2\n"
            "req_ns_bucket{le=\"32\"} 2\n"
            "req_ns_bucket{le=\"64\"} 2\n"
            "req_ns_bucket{le=\"128\"} 2\n"
            "req_ns_bucket{le=\"256\"} 2\n"
            "req_ns_bucket{le=\"512\"} 2\n"
            "req_ns_bucket{le=\"1024\"} 2\n"
            "req_ns_bucket{le=\"2048\"} 3\n"
            "req_ns_bucket{le=\"+Inf\"} 3\n"
            "req_ns_sum 1027\n"
            "req_ns_count 3\n");
}

TEST(RegistryTest, PrometheusLabeledSeriesSortedWithinFamily) {
  Registry registry;
  CounterFamily family(&registry, "reqs", "outcome");
  family.With("ok")->Inc(2);
  family.With("err")->Inc();
  EXPECT_EQ(registry.PrometheusText(),
            "# TYPE reqs counter\n"
            "reqs{outcome=\"err\"} 1\n"
            "reqs{outcome=\"ok\"} 2\n");
}

TEST(RegistryTest, PrometheusEscapesLabelValuesAndSanitizesNames) {
  Registry registry;
  registry.GetCounter("1bad.name", {{"path", "a\"b\\c\nd"}})->Inc();
  EXPECT_EQ(registry.PrometheusText(),
            "# TYPE _bad_name counter\n"
            "_bad_name{path=\"a\\\"b\\\\c\\nd\"} 1\n");
}

}  // namespace
}  // namespace leakdet::obs
