// Property tests for the optimized training path: the NN-chain clustering
// must reproduce the naive greedy group-average dendrogram, and the
// interned/cached parallel distance matrix must be bit-identical to the
// serial uncached reference under every option variant.

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "compress/compressor.h"
#include "core/distance.h"
#include "core/hcluster.h"
#include "net/org_registry.h"
#include "sim/trafficgen.h"
#include "util/rng.h"

namespace leakdet::core {
namespace {

DistanceMatrix RandomMatrix(size_t n, uint64_t seed) {
  Rng rng(seed);
  DistanceMatrix m(n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      m.set(i, j, rng.UniformDouble() * 2.0);
    }
  }
  return m;
}

/// A matrix full of exact ties: every distance is a dyadic rational k/8,
/// k in 1..8, so equal merge candidates are common and comparisons are
/// exact in floating point.
DistanceMatrix DyadicTieMatrix(size_t n, uint64_t seed) {
  Rng rng(seed);
  DistanceMatrix m(n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      m.set(i, j, static_cast<double>(1 + rng.UniformInt(8)) / 8.0);
    }
  }
  return m;
}

/// Rows i and i+1 identical (distance 0 between them) — the duplicate-heavy
/// regime real ad-SDK traffic produces, all ties at height zero.
DistanceMatrix DuplicateRowMatrix(size_t n, uint64_t seed) {
  Rng rng(seed);
  DistanceMatrix m(n);
  for (size_t i = 0; i < n; i += 2) {
    for (size_t j = i + 2; j < n; ++j) {
      double d = 0.5 + rng.UniformDouble();
      m.set(i, j, d);
      if (i + 1 < n) m.set(i + 1, j, d);
    }
  }
  return m;
}

std::vector<double> CutHeights(const Dendrogram& dend) {
  // Cut between distinct merge heights (midpoints), far from any ulp-level
  // discrepancy between the two implementations.
  std::vector<double> heights;
  for (const MergeStep& m : dend.merges()) heights.push_back(m.height);
  std::sort(heights.begin(), heights.end());
  std::vector<double> cuts{-1.0};
  for (size_t k = 0; k + 1 < heights.size(); ++k) {
    if (heights[k + 1] - heights[k] > 1e-6) {
      cuts.push_back((heights[k] + heights[k + 1]) / 2.0);
    }
  }
  if (!heights.empty()) cuts.push_back(heights.back() + 1.0);
  return cuts;
}

void ExpectEquivalentDendrograms(const DistanceMatrix& m) {
  Dendrogram fast = ClusterGroupAverage(m);
  Dendrogram naive = ClusterGroupAverageNaive(m);
  ASSERT_EQ(fast.merges().size(), naive.merges().size());
  // Merge heights agree up to floating-point reassociation: both use the
  // same Lance–Williams expression, but NN-chain discovers merges in a
  // different order, so intermediate averages can associate differently.
  for (size_t k = 0; k < fast.merges().size(); ++k) {
    EXPECT_NEAR(fast.merges()[k].height, naive.merges()[k].height, 1e-9)
        << "merge " << k;
    EXPECT_EQ(fast.merges()[k].size, naive.merges()[k].size) << "merge " << k;
  }
  // Flat partitions must be *identical* at every cut between merge levels.
  for (double h : CutHeights(naive)) {
    EXPECT_EQ(fast.CutAtHeight(h), naive.CutAtHeight(h)) << "cut at " << h;
  }
  for (size_t k = 1; k <= m.size(); k += std::max<size_t>(1, m.size() / 7)) {
    EXPECT_EQ(fast.CutIntoK(k), naive.CutIntoK(k)) << "k=" << k;
  }
}

/// The tie-tolerant comparison: equal sorted height multisets and equal flat
/// partitions at every cut between distinct height levels. Within a group
/// of equal-height merges the two implementations may legitimately record
/// the merges in different orders, so per-merge fields are not compared.
void ExpectEquivalentHeightsAndCuts(const DistanceMatrix& m) {
  Dendrogram fast = ClusterGroupAverage(m);
  Dendrogram naive = ClusterGroupAverageNaive(m);
  ASSERT_EQ(fast.merges().size(), naive.merges().size());
  std::vector<double> hf, hn;
  for (const MergeStep& s : fast.merges()) hf.push_back(s.height);
  for (const MergeStep& s : naive.merges()) hn.push_back(s.height);
  std::sort(hf.begin(), hf.end());
  std::sort(hn.begin(), hn.end());
  for (size_t k = 0; k < hf.size(); ++k) {
    EXPECT_NEAR(hf[k], hn[k], 1e-9) << "sorted height " << k;
  }
  for (double h : CutHeights(naive)) {
    EXPECT_EQ(fast.CutAtHeight(h), naive.CutAtHeight(h)) << "cut at " << h;
  }
}

/// Exact group-average distance between two leaf sets from the raw matrix.
double ExactGroupAverage(const DistanceMatrix& m,
                         const std::vector<int32_t>& a,
                         const std::vector<int32_t>& b) {
  double sum = 0.0;
  for (int32_t x : a) {
    for (int32_t y : b) {
      sum += m.at(static_cast<size_t>(x), static_cast<size_t>(y));
    }
  }
  return sum / (static_cast<double>(a.size()) * static_cast<double>(b.size()));
}

/// Validity oracle for adversarial tie matrices, where NN-chain and the
/// naive scan may break ties differently and produce structurally different
/// (but equally valid) group-average dendrograms: every merge height must
/// equal the true group-average distance between the merged leaf sets, and
/// heights must be monotone.
void ExpectValidGroupAverageDendrogram(const DistanceMatrix& m,
                                       const Dendrogram& dend) {
  ASSERT_EQ(dend.merges().size(), m.size() - 1);
  double prev = -std::numeric_limits<double>::infinity();
  for (const MergeStep& s : dend.merges()) {
    std::vector<int32_t> left = dend.LeavesUnder(s.left);
    std::vector<int32_t> right = dend.LeavesUnder(s.right);
    EXPECT_EQ(left.size() + right.size(), static_cast<size_t>(s.size));
    EXPECT_NEAR(s.height, ExactGroupAverage(m, left, right), 1e-9);
    EXPECT_GE(s.height, prev - 1e-12);  // reducible => no inversions
    prev = s.height;
  }
}

TEST(NnChainEquivalenceTest, ContinuousRandomMatrices) {
  for (uint64_t seed = 1; seed <= 12; ++seed) {
    size_t n = 2 + seed * 3;  // 5..38 points
    SCOPED_TRACE("seed=" + std::to_string(seed));
    ExpectEquivalentDendrograms(RandomMatrix(n, seed));
  }
}

TEST(NnChainEquivalenceTest, DuplicateRowTieMatrices) {
  // Exact duplicates (distance-0 ties) are the tie pattern real training
  // samples produce; the two implementations must agree on heights and on
  // every between-level partition.
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    size_t n = 6 + seed * 4;
    SCOPED_TRACE("seed=" + std::to_string(seed));
    ExpectEquivalentHeightsAndCuts(DuplicateRowMatrix(n, seed));
  }
}

TEST(NnChainEquivalenceTest, DyadicTieMatricesProduceValidDendrograms) {
  // Saturated-tie matrices (every distance one of eight dyadic values) admit
  // many valid group-average dendrograms; NN-chain and the naive scan are
  // free to pick different ones. Both outputs must be exactly verifiable
  // against the definition.
  for (uint64_t seed = 1; seed <= 12; ++seed) {
    size_t n = 4 + seed * 2;
    SCOPED_TRACE("seed=" + std::to_string(seed));
    DistanceMatrix m = DyadicTieMatrix(n, seed);
    ExpectValidGroupAverageDendrogram(m, ClusterGroupAverage(m));
    ExpectValidGroupAverageDendrogram(m, ClusterGroupAverageNaive(m));
  }
}

TEST(NnChainEquivalenceTest, TinyInputs) {
  EXPECT_EQ(ClusterGroupAverage(DistanceMatrix(0)).merges().size(), 0u);
  EXPECT_EQ(ClusterGroupAverage(DistanceMatrix(1)).merges().size(), 0u);
  DistanceMatrix two(2);
  two.set(0, 1, 0.25);
  Dendrogram d = ClusterGroupAverage(two);
  ASSERT_EQ(d.merges().size(), 1u);
  EXPECT_EQ(d.merges()[0].left, 0);
  EXPECT_EQ(d.merges()[0].right, 1);
  EXPECT_DOUBLE_EQ(d.merges()[0].height, 0.25);
}

TEST(NnChainEquivalenceTest, DeterministicAcrossRuns) {
  DistanceMatrix m = DyadicTieMatrix(24, 99);
  Dendrogram a = ClusterGroupAverage(m);
  Dendrogram b = ClusterGroupAverage(m);
  ASSERT_EQ(a.merges().size(), b.merges().size());
  for (size_t k = 0; k < a.merges().size(); ++k) {
    EXPECT_EQ(a.merges()[k].left, b.merges()[k].left);
    EXPECT_EQ(a.merges()[k].right, b.merges()[k].right);
    EXPECT_EQ(a.merges()[k].height, b.merges()[k].height);
  }
}

// ---------------------------------------------------------------------------

std::vector<HttpPacket> SamplePackets(size_t n) {
  static const sim::Trace* trace = [] {
    sim::TrafficConfig config;
    config.seed = 4242;
    config.scale = 0.05;
    return new sim::Trace(sim::GenerateTrace(config));
  }();
  std::vector<HttpPacket> packets = trace->RawPackets();
  if (packets.size() > n) packets.resize(n);
  return packets;
}

void ExpectFastMatrixMatchesReference(const DistanceOptions& options) {
  std::vector<HttpPacket> packets = SamplePackets(60);
  auto compressor = compress::MakeCompressor("lzw");
  ASSERT_TRUE(compressor.ok());

  compress::NcdCalculator calc(compressor->get());
  PacketDistance metric(&calc, options);
  DistanceMatrix reference = ComputeDistanceMatrix(packets, metric);

  for (unsigned threads : {1u, 2u, 3u, 8u}) {
    DistanceMatrixStats stats;
    DistanceMatrix fast = ComputeDistanceMatrixParallel(
        packets, compressor->get(), options, threads, &stats);
    ASSERT_EQ(fast.size(), reference.size());
    for (size_t i = 0; i < packets.size(); ++i) {
      for (size_t j = i + 1; j < packets.size(); ++j) {
        // Bit-identical, not merely close: the fast path must share the
        // reference path's exact floating-point expressions.
        ASSERT_EQ(fast.at(i, j), reference.at(i, j))
            << "threads=" << threads << " i=" << i << " j=" << j;
      }
    }
    EXPECT_EQ(stats.packets, packets.size());
    EXPECT_EQ(stats.pairs, packets.size() * (packets.size() - 1) / 2);
    if (options.use_content) {
      // Each distinct unordered string pair is compressed at most once (a
      // benign compute race can add a handful of duplicates when threaded).
      EXPECT_LE(stats.ncd_pairs_computed,
                stats.distinct_content_strings * stats.distinct_content_strings);
      EXPECT_GT(stats.ncd_pair_hits + stats.ncd_pairs_computed, 0u);
      EXPECT_GT(stats.singleton_compressions, 0u);
    }
  }
}

TEST(FastMatrixEquivalenceTest, DefaultOptions) {
  ExpectFastMatrixMatchesReference(DistanceOptions{});
}

TEST(FastMatrixEquivalenceTest, ContentOnly) {
  DistanceOptions options;
  options.use_destination = false;
  ExpectFastMatrixMatchesReference(options);
}

TEST(FastMatrixEquivalenceTest, DestinationOnly) {
  DistanceOptions options;
  options.use_content = false;
  ExpectFastMatrixMatchesReference(options);
}

TEST(FastMatrixEquivalenceTest, LiteralOrientationAndWeights) {
  DistanceOptions options;
  options.literal_similarity_orientation = true;
  options.ip_weight = 0.5;
  options.cookie_weight = 2.0;
  ExpectFastMatrixMatchesReference(options);
}

TEST(FastMatrixEquivalenceTest, WithOrgRegistry) {
  net::OrgRegistry registry;
  registry.Add(*net::CidrPrefix::Parse("10.0.0.0/8"), "alpha-ads");
  registry.Add(*net::CidrPrefix::Parse("172.16.0.0/12"), "beta-analytics");
  DistanceOptions options;
  options.org_registry = &registry;
  ExpectFastMatrixMatchesReference(options);
}

TEST(FastMatrixEquivalenceTest, SerialPathReportsFullCacheEffect) {
  std::vector<HttpPacket> packets = SamplePackets(60);
  auto compressor = compress::MakeCompressor("lzw");
  ASSERT_TRUE(compressor.ok());
  DistanceMatrixStats stats;
  ComputeDistanceMatrixParallel(packets, compressor->get(), DistanceOptions{},
                                1, &stats);
  // Serial path has no compute races: pair compressions are exactly the
  // distinct non-trivial unordered pairs, and everything else is a hit.
  uint64_t probes = stats.ncd_pair_hits + stats.ncd_pairs_computed;
  EXPECT_GT(probes, 0u);
  EXPECT_LE(stats.ncd_pairs_computed,
            static_cast<uint64_t>(stats.distinct_content_strings) *
                (stats.distinct_content_strings + 1) / 2);
  // Real ad traffic repeats field strings heavily, so the shared cache must
  // absorb a sizable share of probes even at this small N (the hit rate
  // climbs with sample size; bench_training records it at production N).
  EXPECT_GT(stats.ncd_hit_rate(), 0.25) << "hit rate " << stats.ncd_hit_rate();
}

}  // namespace
}  // namespace leakdet::core
