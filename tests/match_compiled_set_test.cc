#include "match/compiled_set.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "match/signature.h"
#include "util/rng.h"

namespace leakdet::match {
namespace {

ConjunctionSignature Sig(const std::string& id,
                         std::vector<std::string> tokens,
                         const std::string& host_scope = "") {
  ConjunctionSignature sig;
  sig.id = id;
  sig.tokens = std::move(tokens);
  sig.host_scope = host_scope;
  return sig;
}

TEST(CompiledSignatureSetTest, EmptySetMatchesNothing) {
  CompiledSignatureSet compiled{SignatureSet(), 1};
  MatchScratch scratch;
  EXPECT_EQ(compiled.MatchInto("anything at all", {}, &scratch), 0u);
  EXPECT_FALSE(compiled.Matches("anything", {}, &scratch));
  EXPECT_EQ(compiled.version(), 1u);
}

TEST(CompiledSignatureSetTest, ConjunctionRequiresEveryToken) {
  CompiledSignatureSet compiled{
      SignatureSet({Sig("sig-0", {"udid=abc", "model=NexusS"})}), 3};
  MatchScratch scratch;
  EXPECT_TRUE(compiled.Matches("x udid=abc y model=NexusS z", {}, &scratch));
  EXPECT_FALSE(compiled.Matches("x udid=abc y", {}, &scratch));
  EXPECT_FALSE(compiled.Matches("model=NexusS", {}, &scratch));
  EXPECT_EQ(compiled.version(), 3u);
}

TEST(CompiledSignatureSetTest, HostScopeEnforcedLikeSignatureSet) {
  SignatureSet set({Sig("sig-0", {"token"}, "ads.example")});
  CompiledSignatureSet compiled{set, 1};
  MatchScratch scratch;
  // Same contract as SignatureSet::Match: scope enforced when a domain is
  // passed, skipped when the caller passes "".
  EXPECT_TRUE(compiled.Matches("token", "ads.example", &scratch));
  EXPECT_FALSE(compiled.Matches("token", "other.example", &scratch));
  EXPECT_TRUE(compiled.Matches("token", "", &scratch));
}

TEST(CompiledSignatureSetTest, HitsReportSignatureIndices) {
  SignatureSet set({Sig("sig-0", {"aaa"}), Sig("sig-1", {"bbb"}),
                    Sig("sig-2", {"aaa", "bbb"})});
  CompiledSignatureSet compiled{set, 1};
  MatchScratch scratch;
  ASSERT_EQ(compiled.MatchInto("xx aaa yy bbb", {}, &scratch), 3u);
  EXPECT_EQ(scratch.hits, (std::vector<size_t>{0, 1, 2}));
  ASSERT_EQ(compiled.MatchInto("xx bbb", {}, &scratch), 1u);
  EXPECT_EQ(scratch.hits, (std::vector<size_t>{1}));
}

TEST(CompiledSignatureSetTest, OverlappingTokensAllDetected) {
  // Tokens that are substrings / share prefixes exercise the output
  // closures of the flattened DFA (fail-chain outputs must be preserved).
  SignatureSet set({Sig("sig-0", {"abcd"}), Sig("sig-1", {"bcd"}),
                    Sig("sig-2", {"cd", "ab"})});
  CompiledSignatureSet compiled{set, 1};
  MatchScratch scratch;
  ASSERT_EQ(compiled.MatchInto("xx abcd yy", {}, &scratch), 3u);
}

TEST(CompiledSignatureSetTest, RandomizedEquivalenceWithSignatureSet) {
  Rng rng(101);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<ConjunctionSignature> sigs;
    size_t num_sigs = 1 + rng.UniformInt(12);
    for (size_t s = 0; s < num_sigs; ++s) {
      ConjunctionSignature sig;
      sig.id = "sig-" + std::to_string(s);
      size_t num_tokens = 1 + rng.UniformInt(4);
      for (size_t t = 0; t < num_tokens; ++t) {
        sig.tokens.push_back(rng.RandomString(1 + rng.UniformInt(6), "abcx=&"));
      }
      if (rng.Bernoulli(0.3)) sig.host_scope = "scoped.example";
      sigs.push_back(std::move(sig));
    }
    SignatureSet set(sigs);
    CompiledSignatureSet compiled{set, static_cast<uint64_t>(trial + 1)};
    MatchScratch scratch;
    for (int probe = 0; probe < 200; ++probe) {
      std::string content = rng.RandomString(rng.UniformInt(80), "abcx=& ");
      std::string domain = rng.Bernoulli(0.5) ? "scoped.example" : "";
      std::vector<size_t> expected = set.Match(content, domain);
      compiled.MatchInto(content, domain, &scratch);
      EXPECT_EQ(scratch.hits, expected)
          << "trial=" << trial << " content=" << content
          << " domain=" << domain;
    }
  }
}

TEST(CompiledSignatureSetTest, ReportsCompilationStats) {
  SignatureSet set({Sig("sig-0", {"hello", "world"})});
  CompiledSignatureSet compiled{set, 1};
  EXPECT_EQ(compiled.num_signatures(), 1u);
  EXPECT_EQ(compiled.num_tokens(), 2u);
  // Root + one state per pattern byte (no shared prefixes here).
  EXPECT_EQ(compiled.num_states(), 11u);
  EXPECT_GT(compiled.table_bytes(), compiled.num_states() * 256 * 4 - 1);
}

}  // namespace
}  // namespace leakdet::match
