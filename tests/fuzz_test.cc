// Robustness "mini-fuzz" tests: every parser in the library must reject or
// accept arbitrary and mutated inputs without crashing, and acceptance must
// be internally consistent. Deterministic (seeded) so failures reproduce.

#include <gtest/gtest.h>

#include <string>

#include "compress/compressor.h"
#include "http/parser.h"
#include "http/url.h"
#include "io/pcap.h"
#include "io/trace_io.h"
#include "match/bayes_signature.h"
#include "match/signature.h"
#include "net/ipv4.h"
#include "util/rng.h"

namespace leakdet {
namespace {

std::string RandomBytes(Rng* rng, size_t max_len) {
  size_t len = rng->UniformInt(max_len + 1);
  std::string s;
  s.reserve(len);
  for (size_t i = 0; i < len; ++i) {
    s += static_cast<char>(rng->UniformInt(256));
  }
  return s;
}

TEST(FuzzTest, HttpParserSurvivesRandomBytes) {
  Rng rng(1);
  int accepted = 0;
  for (int trial = 0; trial < 3000; ++trial) {
    std::string input = RandomBytes(&rng, 200);
    auto result = http::ParseRequest(input);
    if (result.ok()) {
      ++accepted;
      // Anything accepted must re-serialize to a parseable request.
      auto again = http::ParseRequest(result->Serialize());
      EXPECT_TRUE(again.ok());
    }
  }
  // Random bytes essentially never form a valid request line.
  EXPECT_LT(accepted, 3);
}

TEST(FuzzTest, HttpParserSurvivesMutatedValidRequests) {
  Rng rng(2);
  const std::string valid =
      "POST /client/api.php HTTP/1.1\r\n"
      "Host: api.zqapk.com\r\n"
      "Cookie: sid=feedface\r\n"
      "Content-Length: 20\r\n"
      "\r\n"
      "imei=352099001761\r\n1";
  for (int trial = 0; trial < 3000; ++trial) {
    std::string mutated = valid;
    size_t flips = 1 + rng.UniformInt(4);
    for (size_t f = 0; f < flips; ++f) {
      size_t pos = rng.UniformInt(mutated.size());
      mutated[pos] = static_cast<char>(rng.UniformInt(256));
    }
    auto result = http::ParseRequest(mutated);  // must not crash or hang
    if (result.ok()) {
      EXPECT_TRUE(http::ParseRequest(result->Serialize()).ok());
    }
  }
}

// Regression corpus: wire shapes the property-based generator
// (testing/packet_gen.h) surfaced as near-misses. Each must be rejected with
// a clean InvalidArgument — never accepted, never crashing.
TEST(FuzzTest, HttpParserRejectsGeneratorFoundCorpus) {
  const char* corpus[] = {
      "GET /x HTTP/1.1\rX\r\n\r\n",                   // stray CR in the line
      "GET /x HTTP/1.1",                              // no terminator at all
      "GET  /x HTTP/1.1\r\n\r\n",                     // double SP: empty target
      "G(T /x HTTP/1.1\r\n\r\n",                      // separator in method
      " GET /x HTTP/1.1\r\n\r\n",                     // leading SP: empty method
      "GET /x HTTP/2.0.1\r\n\r\n",                    // malformed version
      "GET /x HTTP/1.1\r\nHost api.com\r\n\r\n",      // header missing colon
      "GET /x HTTP/1.1\r\nHo st: a\r\n\r\n",          // SP inside header name
      "GET /x HTTP/1.1\r\nA: 1\r\n b\r\n\r\n",        // obs-fold continuation
      "GET /x HTTP/1.1\r\nA: 1\r\n",                  // unterminated headers
      "POST /x HTTP/1.1\r\nContent-Length: 5\r\n\r\nabc",    // CL > body
      "POST /x HTTP/1.1\r\nContent-Length: 2\r\n\r\nabc",    // CL < body
      "POST /x HTTP/1.1\r\nContent-Length: -1\r\n\r\n",      // negative CL
      "POST /x HTTP/1.1\r\nContent-Length: 1e2\r\n\r\n",     // non-digit CL
      "\r\nGET /x HTTP/1.1\r\n\r\n",                  // leading blank line
      "HTTP/1.1 200 OK\r\n\r\n",                      // a response, not request
  };
  for (const char* wire : corpus) {
    auto result = http::ParseRequest(wire);
    ASSERT_FALSE(result.ok()) << "accepted: " << wire;
    EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument) << wire;
    EXPECT_FALSE(result.status().message().empty()) << wire;
  }
}

TEST(FuzzTest, PercentDecodeSurvivesRandomBytes) {
  Rng rng(3);
  for (int trial = 0; trial < 5000; ++trial) {
    std::string input = RandomBytes(&rng, 60);
    auto decoded = http::PercentDecode(input);
    if (decoded.ok()) {
      // Decoding is a retraction of encoding only for '+'-free inputs;
      // here we just require no crash and bounded output.
      EXPECT_LE(decoded->size(), input.size());
    }
  }
}

class CodecFuzz : public ::testing::TestWithParam<const char*> {};

TEST_P(CodecFuzz, DecompressorSurvivesRandomBytes) {
  auto compressor = std::move(*compress::MakeCompressor(GetParam()));
  Rng rng(4);
  int succeeded = 0;
  for (int trial = 0; trial < 2000; ++trial) {
    std::string garbage = RandomBytes(&rng, 300);
    auto result = compressor->Decompress(garbage);  // no crash, no UB
    if (result.ok()) ++succeeded;
  }
  // Random inputs essentially never carry the magic byte AND decode.
  EXPECT_LT(succeeded, 20);
}

TEST_P(CodecFuzz, DecompressorSurvivesBitflippedArchives) {
  auto compressor = std::move(*compress::MakeCompressor(GetParam()));
  Rng rng(5);
  std::string original =
      "GET /gampad/ads?app_id=abcdef&dc_uid=900150983cd24fb0 HTTP/1.1 "
      "GET /gampad/ads?app_id=abcdef&dc_uid=900150983cd24fb0 HTTP/1.1";
  std::string archive = *compressor->Compress(original);
  for (int trial = 0; trial < 2000; ++trial) {
    std::string corrupted = archive;
    corrupted[rng.UniformInt(corrupted.size())] ^=
        static_cast<char>(1 + rng.UniformInt(255));
    auto result = compressor->Decompress(corrupted);
    // Either detected as corrupt, or decodes to *something* (flips inside
    // literal payloads can be silent) — but never to a longer-than-declared
    // buffer and never crashing.
    if (result.ok()) {
      EXPECT_LE(result->size(), original.size() + 1);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Codecs, CodecFuzz, ::testing::Values("lz77h", "lzw"));

TEST(FuzzTest, JsonlParserSurvivesRandomAndTruncatedInput) {
  Rng rng(6);
  // Random bytes.
  for (int trial = 0; trial < 1000; ++trial) {
    io::ParseJsonl(RandomBytes(&rng, 150));
  }
  // Truncations/mutations of a valid file.
  sim::LabeledPacket lp;
  lp.packet.destination.host = "x.com";
  lp.packet.destination.ip = *net::Ipv4Address::Parse("1.2.3.4");
  lp.packet.request_line = "GET /a?b=c HTTP/1.1";
  lp.truth = {core::SensitiveType::kImei};
  std::string valid = io::SerializeJsonl({lp, lp, lp});
  for (size_t cut = 0; cut < valid.size(); cut += 3) {
    io::ParseJsonl(valid.substr(0, cut));  // must not crash
  }
  for (int trial = 0; trial < 1000; ++trial) {
    std::string mutated = valid;
    mutated[rng.UniformInt(mutated.size())] =
        static_cast<char>(rng.UniformInt(256));
    io::ParseJsonl(mutated);
  }
}

TEST(FuzzTest, CsvParserSurvivesRandomInput) {
  Rng rng(7);
  for (int trial = 0; trial < 1000; ++trial) {
    io::ParseCsv(RandomBytes(&rng, 150));
  }
}

TEST(FuzzTest, SignatureDeserializerSurvivesMutations) {
  match::ConjunctionSignature sig;
  sig.id = "sig-0";
  sig.tokens = {"tokA", "tokB"};
  sig.host_scope = "x.com";
  std::string valid = match::SignatureSet({sig}).Serialize();
  Rng rng(8);
  for (int trial = 0; trial < 2000; ++trial) {
    std::string mutated = valid;
    mutated[rng.UniformInt(mutated.size())] =
        static_cast<char>(rng.UniformInt(256));
    match::SignatureSet::Deserialize(mutated);  // no crash
  }
}

TEST(FuzzTest, BayesDeserializerSurvivesMutations) {
  match::BayesSignature sig;
  sig.id = "b0";
  sig.tokens = {{"tokA", 1.5}};
  sig.threshold = 1.0;
  std::string valid = match::BayesSignatureSet({sig}).Serialize();
  Rng rng(9);
  for (int trial = 0; trial < 2000; ++trial) {
    std::string mutated = valid;
    mutated[rng.UniformInt(mutated.size())] =
        static_cast<char>(rng.UniformInt(256));
    match::BayesSignatureSet::Deserialize(mutated);  // no crash
  }
}

TEST(FuzzTest, PcapReaderSurvivesRandomAndMutatedCaptures) {
  Rng rng(10);
  for (int trial = 0; trial < 500; ++trial) {
    io::ReadPcap(RandomBytes(&rng, 300));
  }
  core::HttpPacket p;
  p.destination.host = "x.com";
  p.destination.ip = *net::Ipv4Address::Parse("1.2.3.4");
  p.request_line = "GET / HTTP/1.1";
  io::PcapWriter writer;
  std::string capture = writer.Write({p, p});
  for (int trial = 0; trial < 2000; ++trial) {
    std::string mutated = capture;
    mutated[rng.UniformInt(mutated.size())] =
        static_cast<char>(rng.UniformInt(256));
    io::ReadPcap(mutated);  // no crash; checksums catch most flips
  }
  for (size_t cut = 0; cut < capture.size(); cut += 5) {
    io::ReadPcap(std::string_view(capture).substr(0, cut));
  }
}

TEST(FuzzTest, Ipv4ParserSurvivesRandomInput) {
  Rng rng(11);
  for (int trial = 0; trial < 5000; ++trial) {
    net::Ipv4Address::Parse(RandomBytes(&rng, 24));
  }
}

TEST(FuzzTest, DeviceTokenParserSurvivesMutations) {
  core::DeviceTokens d;
  d.android_id = "9774d56d682e549c";
  d.imei = "352099001761481";
  d.carrier = "NTT DOCOMO";
  std::string valid = io::SerializeDeviceTokens({d});
  Rng rng(12);
  for (int trial = 0; trial < 2000; ++trial) {
    std::string mutated = valid;
    mutated[rng.UniformInt(mutated.size())] =
        static_cast<char>(rng.UniformInt(256));
    io::ParseDeviceTokens(mutated);  // no crash
  }
}

}  // namespace
}  // namespace leakdet
