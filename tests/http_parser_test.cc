#include "http/parser.h"

#include <gtest/gtest.h>

namespace leakdet::http {
namespace {

TEST(ParseRequestTest, SimpleGet) {
  auto req = ParseRequest(
      "GET /ad?x=1 HTTP/1.1\r\n"
      "Host: r.admob.com\r\n"
      "User-Agent: Dalvik/1.4.0\r\n"
      "\r\n");
  ASSERT_TRUE(req.ok());
  EXPECT_EQ(req->method(), "GET");
  EXPECT_EQ(req->target(), "/ad?x=1");
  EXPECT_EQ(req->version(), "HTTP/1.1");
  EXPECT_EQ(req->host(), "r.admob.com");
  EXPECT_TRUE(req->body().empty());
}

TEST(ParseRequestTest, PostWithBodyAndContentLength) {
  auto req = ParseRequest(
      "POST /api HTTP/1.1\r\n"
      "Host: x.com\r\n"
      "Content-Length: 11\r\n"
      "\r\n"
      "imei=123456");
  ASSERT_TRUE(req.ok());
  EXPECT_EQ(req->body(), "imei=123456");
}

TEST(ParseRequestTest, ContentLengthMismatchRejected) {
  auto req = ParseRequest(
      "POST /api HTTP/1.1\r\n"
      "Content-Length: 5\r\n"
      "\r\n"
      "imei=123456");
  EXPECT_FALSE(req.ok());
}

TEST(ParseRequestTest, BadContentLengthRejected) {
  auto req = ParseRequest(
      "POST /api HTTP/1.1\r\n"
      "Content-Length: five\r\n"
      "\r\n"
      "12345");
  EXPECT_FALSE(req.ok());
}

TEST(ParseRequestTest, BodyWithoutContentLength) {
  auto req = ParseRequest(
      "POST /api HTTP/1.1\r\n"
      "\r\n"
      "freeform body");
  ASSERT_TRUE(req.ok());
  EXPECT_EQ(req->body(), "freeform body");
}

TEST(ParseRequestTest, BareLfLineEndingsAccepted) {
  auto req = ParseRequest(
      "GET / HTTP/1.0\n"
      "Host: a.b\n"
      "\n");
  ASSERT_TRUE(req.ok());
  EXPECT_EQ(req->version(), "HTTP/1.0");
  EXPECT_EQ(req->host(), "a.b");
}

TEST(ParseRequestTest, HeaderValueWhitespaceTrimmed) {
  auto req = ParseRequest(
      "GET / HTTP/1.1\r\n"
      "X-Pad:    spaced value   \r\n"
      "\r\n");
  ASSERT_TRUE(req.ok());
  EXPECT_EQ(req->FindHeader("X-Pad").value(), "spaced value");
}

TEST(ParseRequestTest, RejectsMissingRequestLineParts) {
  EXPECT_FALSE(ParseRequest("GET\r\n\r\n").ok());
  EXPECT_FALSE(ParseRequest("GET /\r\n\r\n").ok());
  EXPECT_FALSE(ParseRequest("\r\n\r\n").ok());
}

TEST(ParseRequestTest, RejectsBadVersion) {
  EXPECT_FALSE(ParseRequest("GET / HTTPS/1.1\r\n\r\n").ok());
  EXPECT_FALSE(ParseRequest("GET / HTTP/11\r\n\r\n").ok());
  EXPECT_FALSE(ParseRequest("GET / HTTP/1.x\r\n\r\n").ok());
  EXPECT_FALSE(ParseRequest("GET / http/1.1\r\n\r\n").ok());
}

TEST(ParseRequestTest, RejectsBadMethodToken) {
  EXPECT_FALSE(ParseRequest("GE T / HTTP/1.1\r\n\r\n").ok());
  EXPECT_FALSE(ParseRequest("G(T / HTTP/1.1\r\n\r\n").ok());
}

TEST(ParseRequestTest, RejectsObsFold) {
  EXPECT_FALSE(ParseRequest(
                   "GET / HTTP/1.1\r\n"
                   "X-Long: part1\r\n"
                   " part2\r\n"
                   "\r\n")
                   .ok());
}

TEST(ParseRequestTest, RejectsHeaderWithoutColon) {
  EXPECT_FALSE(ParseRequest(
                   "GET / HTTP/1.1\r\n"
                   "NoColonHere\r\n"
                   "\r\n")
                   .ok());
}

TEST(ParseRequestTest, RejectsBadHeaderName) {
  EXPECT_FALSE(ParseRequest(
                   "GET / HTTP/1.1\r\n"
                   "Bad Name: v\r\n"
                   "\r\n")
                   .ok());
}

TEST(ParseRequestTest, RejectsUnterminatedHeaders) {
  EXPECT_FALSE(ParseRequest("GET / HTTP/1.1\r\nHost: x\r\n").ok());
  EXPECT_FALSE(ParseRequest("GET / HTTP/1.1").ok());
}

TEST(ParseRequestTest, SerializeParseRoundTrip) {
  HttpRequest original("POST", "/client/api.php");
  original.AddHeader("Host", "api.zqapk.com");
  original.AddHeader("Cookie", "sid=deadbeef01234567");
  original.set_body("imei=352099001761481&operator=NTT%20DOCOMO");
  original.AddHeader("Content-Length",
                     std::to_string(original.body().size()));
  auto parsed = ParseRequest(original.Serialize());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->method(), original.method());
  EXPECT_EQ(parsed->target(), original.target());
  EXPECT_EQ(parsed->body(), original.body());
  EXPECT_EQ(parsed->cookie(), "sid=deadbeef01234567");
  EXPECT_EQ(parsed->Serialize(), original.Serialize());
}

TEST(IsSupportedMethodTest, KnownMethods) {
  EXPECT_TRUE(IsSupportedMethod("GET"));
  EXPECT_TRUE(IsSupportedMethod("POST"));
  EXPECT_FALSE(IsSupportedMethod("get"));
  EXPECT_FALSE(IsSupportedMethod("PATCH"));
  EXPECT_FALSE(IsSupportedMethod(""));
}

}  // namespace
}  // namespace leakdet::http
