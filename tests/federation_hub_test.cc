// End-to-end multi-tenant federation: two tenants share one gateway, each
// training into its own signature namespace with its own K-anonymity policy
// and its own store lineage, with feeds served per tenant over HTTP.

#include "federation/hub.h"

#include <gtest/gtest.h>

#include <chrono>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/packet.h"
#include "core/payload_check.h"
#include "federation/tenant_store.h"
#include "gateway/gateway.h"
#include "io/feed_server.h"
#include "obs/metrics.h"
#include "testing/packet_gen.h"
#include "testing/scripted_file.h"
#include "util/rng.h"

namespace leakdet::federation {
namespace {

using leakdet::testing::GeneratePacket;
using leakdet::testing::ScriptedDir;

constexpr uint32_t kAcmeApp = 1;
constexpr uint32_t kGlobexApp = 2;

std::string ResolveByApp(const core::HttpPacket& packet) {
  switch (packet.app_id) {
    case kAcmeApp:
      return "acme";
    case kGlobexApp:
      return "globex";
    default:
      return "stranger";
  }
}

struct HubWorld {
  HubWorld() : rng(2718) {
    for (int tenant = 0; tenant < 2; ++tenant) {
      for (int i = 0; i < 3; ++i) {
        core::DeviceTokens device;
        device.android_id = rng.RandomHex(16);
        device.imei = rng.RandomDigits(15);
        device.imsi = rng.RandomDigits(15);
        device.sim_serial = rng.RandomDigits(19);
        device.carrier = "NTT DOCOMO";
        devices.push_back(device);
      }
    }
    oracle = std::make_unique<core::PayloadCheck>(devices);
  }

  HubOptions Options() {
    HubOptions options;
    options.defaults.k_anonymity = 2;
    options.defaults.witness_window = 512;
    // acme runs ungated (K=1): its feed publishes whatever trains, which
    // pins down that overrides are honored per tenant.
    options.tenant_overrides["acme"].k_anonymity = 1;
    options.server.retrain_after = 10;
    options.server.pipeline.sample_size = 10;
    options.server.pipeline.normal_corpus_size = 20;
    options.server.pipeline.num_threads = 1;
    options.registry = &registry;
    return options;
  }

  /// One packet for tenant index 0 (acme) or 1 (globex), emitted by one of
  /// the tenant's three devices. Returns (device_key, packet).
  std::pair<uint64_t, core::HttpPacket> TenantPacket(int tenant) {
    size_t device = rng.UniformInt(3);
    const core::DeviceTokens& tokens = devices[tenant * 3 + device];
    core::HttpPacket packet =
        GeneratePacket(&rng, {tokens.android_id, tokens.imei}, 0.7);
    packet.app_id = tenant == 0 ? kAcmeApp : kGlobexApp;
    return {static_cast<uint64_t>(tenant * 100 + device + 1), packet};
  }

  Rng rng;
  std::vector<core::DeviceTokens> devices;
  std::unique_ptr<core::PayloadCheck> oracle;
  obs::Registry registry;
};

bool WaitFor(const std::function<bool()>& done) {
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(20);
  while (std::chrono::steady_clock::now() < deadline) {
    if (done()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return done();
}

TEST(FederationHubTest, TwoTenantsTrainIntoSeparateNamespaces) {
  HubWorld world;
  gateway::GatewayOptions gw_options;
  gw_options.num_shards = 2;
  gateway::DetectionGateway gateway(gw_options);
  FederationHub hub(&gateway, world.oracle.get(), ResolveByApp,
                    world.Options());
  ASSERT_TRUE(hub.AddTenant("acme").ok());
  ASSERT_TRUE(hub.AddTenant("globex").ok());
  EXPECT_FALSE(hub.AddTenant("acme").ok()) << "duplicate tenant accepted";
  gateway.set_sink(hub.Sink());
  ASSERT_TRUE(gateway.Start().ok());
  ASSERT_TRUE(hub.Start().ok());

  for (int i = 0; i < 300; ++i) {
    auto [key_a, packet_a] = world.TenantPacket(0);
    auto [key_g, packet_g] = world.TenantPacket(1);
    ASSERT_TRUE(hub.Submit(key_a, packet_a));
    ASSERT_TRUE(hub.Submit(key_g, packet_g));
  }
  EXPECT_TRUE(WaitFor([&] {
    auto acme = hub.TenantFeed("acme");
    auto globex = hub.TenantFeed("globex");
    return acme && acme->first >= 1 && globex && globex->first >= 1;
  })) << "tenants never published a feed";

  gateway.Stop();
  hub.Stop();

  // Epochs landed in per-tenant namespaces, not the default one.
  EXPECT_GE(gateway.tenant_version("acme"), 1u);
  EXPECT_GE(gateway.tenant_version("globex"), 1u);
  EXPECT_NE(gateway.tenant_set("acme"), nullptr);
  EXPECT_NE(gateway.tenant_set("globex"), nullptr);
  EXPECT_EQ(gateway.current_version(), 0u)
      << "tenant feed leaked into default";

  // The cached tenant feed is exactly what the tenant's server last
  // published.
  auto acme = hub.TenantFeed("acme");
  ASSERT_TRUE(acme.has_value());
  EXPECT_EQ(acme->first, hub.server("acme")->feed_version());
  EXPECT_EQ(acme->second, hub.server("acme")->Feed());
  EXPECT_FALSE(hub.TenantFeed("nosuch").has_value());

  // globex (K=2): no device-unique identifier value may appear anywhere in
  // the published feed payload.
  auto globex = hub.TenantFeed("globex");
  ASSERT_TRUE(globex.has_value());
  for (const core::DeviceTokens& device : world.devices) {
    EXPECT_EQ(globex->second.find(device.android_id), std::string::npos);
    EXPECT_EQ(globex->second.find(device.imei), std::string::npos);
  }

  // statusz covers both tenants.
  std::string statusz = hub.StatuszRender();
  EXPECT_NE(statusz.find("acme"), std::string::npos);
  EXPECT_NE(statusz.find("globex"), std::string::npos);

  EXPECT_GT(
      world.registry.GetCounter("federation.submitted", {{"tenant", "acme"}})
          ->Value(),
      0u);
}

TEST(FederationHubTest, UnknownTenantFallsBackToDefaultNamespace) {
  HubWorld world;
  gateway::GatewayOptions gw_options;
  gw_options.num_shards = 1;
  gateway::DetectionGateway gateway(gw_options);
  FederationHub hub(&gateway, world.oracle.get(), ResolveByApp,
                    world.Options());
  ASSERT_TRUE(hub.AddTenant("acme").ok());
  gateway.set_sink(hub.Sink());
  ASSERT_TRUE(gateway.Start().ok());
  ASSERT_TRUE(hub.Start().ok());

  auto [key, packet] = world.TenantPacket(0);
  packet.app_id = 777;  // resolves to "stranger", which is not configured
  EXPECT_TRUE(hub.Submit(key, packet));
  gateway.Stop();
  hub.Stop();
  EXPECT_EQ(world.registry.GetCounter("federation.unknown_tenant")->Value(),
            1u);
}

TEST(FederationHubTest, TenantLineagesPersistAndRecover) {
  HubWorld world;
  ScriptedDir dir(7);  // no faults: a clean in-memory filesystem
  uint64_t acme_version = 0;
  std::string acme_feed;
  {
    gateway::DetectionGateway gateway(gateway::GatewayOptions{});
    HubOptions options = world.Options();
    options.data_root = "federation";
    options.dir = &dir;
    FederationHub hub(&gateway, world.oracle.get(), ResolveByApp, options);
    ASSERT_TRUE(hub.AddTenant("acme").ok());
    ASSERT_TRUE(hub.AddTenant("globex").ok());
    gateway.set_sink(hub.Sink());
    ASSERT_TRUE(gateway.Start().ok());
    ASSERT_TRUE(hub.Start().ok());
    for (int i = 0; i < 300; ++i) {
      auto [key, packet] = world.TenantPacket(0);
      ASSERT_TRUE(hub.Submit(key, packet));
    }
    ASSERT_TRUE(WaitFor([&] {
      auto feed = hub.TenantFeed("acme");
      return feed && feed->first >= 1;
    })) << "acme never published";
    gateway.Stop();
    hub.Stop();
    auto feed = hub.TenantFeed("acme");
    ASSERT_TRUE(feed.has_value());
    acme_version = feed->first;
    acme_feed = feed->second;
  }

  // Each tenant trained into its own directory lineage.
  EXPECT_EQ(ListTenants(&dir, "federation"),
            (std::vector<std::string>{"acme", "globex"}));

  // A fresh hub over the same root recovers acme's feed and republishes its
  // epoch into the gateway before any traffic flows.
  {
    gateway::DetectionGateway gateway(gateway::GatewayOptions{});
    HubOptions options = world.Options();
    options.data_root = "federation";
    options.dir = &dir;
    FederationHub hub(&gateway, world.oracle.get(), ResolveByApp, options);
    ASSERT_TRUE(hub.AddTenant("acme").ok());
    auto feed = hub.TenantFeed("acme");
    ASSERT_TRUE(feed.has_value());
    EXPECT_EQ(feed->first, acme_version);
    EXPECT_EQ(feed->second, acme_feed);
    EXPECT_EQ(gateway.tenant_version("acme"), acme_version);
    hub.Stop();
  }
}

TEST(FederationHubTest, FeedServerServesPerTenantFeeds) {
  HubWorld world;
  gateway::DetectionGateway gateway(gateway::GatewayOptions{});
  FederationHub hub(&gateway, world.oracle.get(), ResolveByApp,
                    world.Options());
  ASSERT_TRUE(hub.AddTenant("acme").ok());
  ASSERT_TRUE(hub.AddTenant("globex").ok());
  gateway.set_sink(hub.Sink());
  ASSERT_TRUE(gateway.Start().ok());
  ASSERT_TRUE(hub.Start().ok());
  for (int i = 0; i < 300; ++i) {
    auto [key, packet] = world.TenantPacket(0);
    ASSERT_TRUE(hub.Submit(key, packet));
  }
  ASSERT_TRUE(WaitFor([&] {
    auto feed = hub.TenantFeed("acme");
    return feed && feed->first >= 1;
  }));
  gateway.Stop();
  hub.Stop();

  io::FeedServer server([] { return std::make_pair(uint64_t{42},
                                                   std::string("default")); });
  server.set_tenant_provider(
      [&hub](const std::string& tenant) { return hub.TenantFeed(tenant); });
  ASSERT_TRUE(server.Start(0).ok());

  auto expected = hub.TenantFeed("acme");
  ASSERT_TRUE(expected.has_value());
  auto fetched = io::FetchFeed(server.port(), "acme");
  ASSERT_TRUE(fetched.ok()) << fetched.status().message();
  EXPECT_EQ(fetched->version, expected->first);
  EXPECT_EQ(fetched->payload, expected->second);

  auto version = io::FetchFeedVersion(server.port(), "globex");
  ASSERT_TRUE(version.ok()) << version.status().message();
  auto globex = hub.TenantFeed("globex");
  ASSERT_TRUE(globex.has_value());
  EXPECT_EQ(*version, globex->first);

  // An unknown tenant must 404, never receive another tenant's feed.
  EXPECT_FALSE(io::FetchFeed(server.port(), "nosuch").ok());

  // Untenanted requests still resolve through the default provider.
  auto plain = io::FetchFeed(server.port());
  ASSERT_TRUE(plain.ok()) << plain.status().message();
  EXPECT_EQ(plain->version, 42u);
  EXPECT_EQ(plain->payload, "default");

  server.Stop();
}

}  // namespace
}  // namespace leakdet::federation
