#include "core/siggen_seq.h"

#include <gtest/gtest.h>

namespace leakdet::core {
namespace {

HttpPacket Pkt(const std::string& rline) {
  HttpPacket p;
  p.destination.host = "sdk.ordered.net";
  p.destination.ip = *net::Ipv4Address::Parse("44.3.2.1");
  p.destination.port = 80;
  p.request_line = rline;
  return p;
}

std::vector<HttpPacket> OrderedCluster() {
  return {
      Pkt("GET /seq/get?key=a1&udid=9774d56d682e549c&tail=x1 HTTP/1.1"),
      Pkt("GET /seq/get?key=b2&udid=9774d56d682e549c&tail=x2 HTTP/1.1"),
      Pkt("GET /seq/get?key=c3&udid=9774d56d682e549c&tail=x3 HTTP/1.1"),
  };
}

TEST(SubsequenceSiggenTest, GeneratesOrderedSignature) {
  SubsequenceSignatureGenerator gen;
  auto set = gen.Generate(OrderedCluster(), {{0, 1, 2}}, {});
  ASSERT_EQ(set.size(), 1u);
  const auto& sig = set.signatures()[0];
  ASSERT_GE(sig.tokens.size(), 2u);
  // Tokens must be ordered by their template position: the path prefix
  // before the identifier, the identifier before the tail.
  size_t prefix_idx = sig.tokens.size(), id_idx = sig.tokens.size();
  for (size_t i = 0; i < sig.tokens.size(); ++i) {
    if (sig.tokens[i].find("GET /seq/get?key=") != std::string::npos) {
      prefix_idx = i;
    }
    if (sig.tokens[i].find("9774d56d682e549c") != std::string::npos) {
      id_idx = i;
    }
  }
  ASSERT_LT(prefix_idx, sig.tokens.size());
  ASSERT_LT(id_idx, sig.tokens.size());
  EXPECT_LT(prefix_idx, id_idx);
}

TEST(SubsequenceSiggenTest, DetectsTrainingAndUnseenMembers) {
  SubsequenceSignatureGenerator gen;
  auto set = gen.Generate(OrderedCluster(), {{0, 1, 2}}, {});
  SubsequenceDetector detector(std::move(set));
  for (const HttpPacket& p : OrderedCluster()) {
    EXPECT_TRUE(detector.IsSensitive(p));
  }
  EXPECT_TRUE(detector.IsSensitive(
      Pkt("GET /seq/get?key=zz&udid=9774d56d682e549c&tail=x9 HTTP/1.1")));
}

TEST(SubsequenceSiggenTest, OrderMattersAtDetectionTime) {
  SubsequenceSignatureGenerator gen;
  auto set = gen.Generate(OrderedCluster(), {{0, 1, 2}}, {});
  SubsequenceDetector detector(std::move(set));
  // Same tokens, reversed field order: a conjunction would fire, the
  // subsequence signature must not.
  EXPECT_FALSE(detector.IsSensitive(
      Pkt("GET /elsewhere?udid=9774d56d682e549c&path=/seq/get?key=a1&tail "
          "HTTP/1.1")));
}

TEST(SubsequenceSiggenTest, PrunesTokensViolatingOrderAcrossMembers) {
  // "AAAA" and "BBBB" swap order between members; only one can survive in
  // an ordered signature (plus the stable "CCCCC" tail).
  std::vector<HttpPacket> packets = {
      Pkt("AAAA-BBBB-CCCCC"),
      Pkt("BBBB-AAAA-CCCCC"),
  };
  SubsequenceSignatureGenerator gen;
  auto set = gen.Generate(packets, {{0, 1}}, {});
  ASSERT_EQ(set.size(), 1u);
  SubsequenceDetector detector(set);
  EXPECT_TRUE(detector.IsSensitive(packets[0]));
  EXPECT_TRUE(detector.IsSensitive(packets[1]));
}

TEST(SubsequenceSiggenTest, FpScreenDropsSignature) {
  std::vector<HttpPacket> packets = {
      Pkt("GET /common/path?r=1 HTTP/1.1"),
      Pkt("GET /common/path?r=2 HTTP/1.1"),
  };
  std::vector<std::string> corpus;
  for (int i = 0; i < 50; ++i) {
    corpus.push_back("GET /common/path?r=9" + std::to_string(i) +
                     " HTTP/1.1\n\n");
  }
  SiggenOptions opts;
  opts.max_token_normal_df = 1.0;
  opts.max_signature_normal_fp = 0.01;
  SubsequenceSignatureGenerator gen(opts);
  auto set = gen.Generate(packets, {{0, 1}}, corpus);
  EXPECT_EQ(set.size(), 0u);
}

TEST(SubsequenceSiggenTest, HostScopeOption) {
  SiggenOptions opts;
  opts.scope_by_host = true;
  SubsequenceSignatureGenerator gen(opts);
  auto set = gen.Generate(OrderedCluster(), {{0, 1, 2}}, {});
  ASSERT_EQ(set.size(), 1u);
  EXPECT_EQ(set.signatures()[0].host_scope, "ordered.net");
}

}  // namespace
}  // namespace leakdet::core
