#include "text/suffix_automaton.h"

#include <gtest/gtest.h>

#include <string>

#include "util/rng.h"

namespace leakdet::text {
namespace {

TEST(SuffixAutomatonTest, RecognizesExactlySubstrings) {
  SuffixAutomaton sam("abcbc");
  // All substrings.
  for (size_t i = 0; i < 5; ++i) {
    for (size_t len = 1; i + len <= 5; ++len) {
      EXPECT_TRUE(sam.ContainsSubstring(std::string("abcbc").substr(i, len)));
    }
  }
  EXPECT_TRUE(sam.ContainsSubstring(""));
  EXPECT_FALSE(sam.ContainsSubstring("ac"));
  EXPECT_FALSE(sam.ContainsSubstring("cbcb"));
  EXPECT_FALSE(sam.ContainsSubstring("abcbcx"));
  EXPECT_FALSE(sam.ContainsSubstring("d"));
}

TEST(SuffixAutomatonTest, EmptyString) {
  SuffixAutomaton sam("");
  EXPECT_EQ(sam.num_states(), 1u);
  EXPECT_TRUE(sam.ContainsSubstring(""));
  EXPECT_FALSE(sam.ContainsSubstring("a"));
}

TEST(SuffixAutomatonTest, StateCountLinearBound) {
  // A suffix automaton has at most 2n-1 states (n >= 2), plus the root.
  Rng rng(1);
  for (int trial = 0; trial < 20; ++trial) {
    std::string s = rng.RandomString(3 + rng.UniformInt(200), "ab");
    SuffixAutomaton sam(s);
    EXPECT_LE(sam.num_states(), 2 * s.size());
  }
}

TEST(SuffixAutomatonTest, LongestCommonSubstringBasic) {
  SuffixAutomaton sam("xabcdy");
  auto r = sam.LongestCommonSubstring("zzabcdezz");
  EXPECT_EQ(r.length, 4u);
  EXPECT_EQ(std::string("zzabcdezz").substr(r.end_in_other - r.length,
                                            r.length),
            "abcd");
}

TEST(SuffixAutomatonTest, LongestCommonSubstringDisjoint) {
  SuffixAutomaton sam("aaaa");
  auto r = sam.LongestCommonSubstring("bbbb");
  EXPECT_EQ(r.length, 0u);
}

TEST(SuffixAutomatonTest, LongestCommonSubstringIdentical) {
  SuffixAutomaton sam("hello world");
  auto r = sam.LongestCommonSubstring("hello world");
  EXPECT_EQ(r.length, 11u);
}

// Brute-force oracle for LCS length.
size_t BruteLcs(const std::string& a, const std::string& b) {
  size_t best = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    for (size_t j = 0; j < b.size(); ++j) {
      size_t len = 0;
      while (i + len < a.size() && j + len < b.size() &&
             a[i + len] == b[j + len]) {
        ++len;
      }
      best = std::max(best, len);
    }
  }
  return best;
}

TEST(SuffixAutomatonTest, LcsMatchesBruteForce) {
  Rng rng(2);
  for (int trial = 0; trial < 60; ++trial) {
    std::string a = rng.RandomString(1 + rng.UniformInt(40), "abc");
    std::string b = rng.RandomString(1 + rng.UniformInt(40), "abc");
    SuffixAutomaton sam(a);
    auto r = sam.LongestCommonSubstring(b);
    EXPECT_EQ(r.length, BruteLcs(a, b)) << "a=" << a << " b=" << b;
    if (r.length > 0) {
      // The reported occurrence must actually be a common substring.
      std::string sub = b.substr(r.end_in_other - r.length, r.length);
      EXPECT_NE(a.find(sub), std::string::npos);
    }
  }
}

TEST(SuffixAutomatonTest, FirstEndPositionsValid) {
  std::string s = "abracadabra";
  SuffixAutomaton sam(s);
  for (size_t v = 1; v < sam.num_states(); ++v) {
    const auto& st = sam.state(v);
    ASSERT_GE(st.first_end, st.len);
    ASSERT_LE(static_cast<size_t>(st.first_end), s.size());
    // The longest string of the state ends at first_end.
    std::string longest =
        s.substr(static_cast<size_t>(st.first_end - st.len),
                 static_cast<size_t>(st.len));
    EXPECT_TRUE(sam.ContainsSubstring(longest));
  }
}

TEST(SuffixAutomatonTest, StatesByLenIsSorted) {
  SuffixAutomaton sam("mississippi");
  const auto& order = sam.StatesByLen();
  ASSERT_EQ(order.size(), sam.num_states());
  for (size_t i = 1; i < order.size(); ++i) {
    EXPECT_LE(sam.state(order[i - 1]).len, sam.state(order[i]).len);
  }
  EXPECT_EQ(order[0], 0);  // root has len 0
}

TEST(SuffixAutomatonTest, BinaryContent) {
  std::string s;
  for (int i = 0; i < 256; ++i) s += static_cast<char>(i);
  SuffixAutomaton sam(s);
  EXPECT_TRUE(sam.ContainsSubstring(std::string("\x00\x01\x02", 3)));
  EXPECT_FALSE(sam.ContainsSubstring(std::string("\x02\x01", 2)));
}

}  // namespace
}  // namespace leakdet::text
