// Gateway concurrency stress: multi-producer ingest racing live retrains and
// matcher hot-swaps. Labeled "stress" in ctest; run it under
// -DLEAKDET_SANITIZE=thread to data-race-check the whole serving path.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/payload_check.h"
#include "core/signature_server.h"
#include "gateway/gateway.h"
#include "gateway/trainer.h"
#include "util/rng.h"

namespace leakdet::gateway {
namespace {

using core::HttpPacket;

core::DeviceTokens TestDevice() {
  core::DeviceTokens d;
  d.android_id = "9774d56d682e549c";
  d.imei = "352099001761481";
  d.carrier = "NTT DOCOMO";
  return d;
}

HttpPacket AdPacket(uint32_t app_id, const std::string& noise, bool leaking) {
  HttpPacket p;
  p.app_id = app_id;
  p.destination.host = "ads.stream-net.com";
  p.destination.port = 80;
  p.request_line = "GET /live/get?k=" + noise +
                   (leaking ? "&udid=9774d56d682e549c" : "") + "&r=" + noise +
                   " HTTP/1.1";
  return p;
}

TEST(GatewayStressTest, ConcurrentIngestWithLiveRetrains) {
  constexpr size_t kShards = 4;
  constexpr int kProducers = 4;
#ifdef LEAKDET_TSAN_BUILD
  // TSan runs slower, but don't scale below the training floor: with
  // forward_normal_every=4 and ~30% of traffic leaking, the server sees
  // roughly total/4 * 0.3 sensitive packets pre-publish, and the
  // feed_version >= 2 assertion below needs two retrain_after=400 cycles.
  constexpr int kPacketsPerProducer = 4000;
#else
  constexpr int kPacketsPerProducer = 6000;
#endif
  constexpr uint64_t kTotal =
      static_cast<uint64_t>(kProducers) * kPacketsPerProducer;

  core::PayloadCheck oracle({TestDevice()});
  core::SignatureServer::Options server_options;
  server_options.retrain_after = 400;
  server_options.pipeline.sample_size = 30;
  server_options.pipeline.normal_corpus_size = 60;
  server_options.pipeline.num_threads = 1;
  core::SignatureServer server(&oracle, server_options);

  GatewayOptions gw_options;
  gw_options.num_shards = kShards;
  gw_options.queue_capacity = 512;
  gw_options.overload = OverloadPolicy::kBlock;  // no losses below capacity
  DetectionGateway gateway(gw_options);

  TrainerOptions trainer_options;
  trainer_options.queue_capacity = 4096;
  trainer_options.forward_normal_every = 4;
  TrainerLoop trainer(&server, &gateway, trainer_options);

  // Per-shard last-seen feed version: each slot is only written by that
  // shard's single worker (through the sink), so plain atomics suffice.
  std::vector<std::unique_ptr<std::atomic<uint64_t>>> last_version;
  for (size_t s = 0; s < kShards; ++s) {
    last_version.push_back(std::make_unique<std::atomic<uint64_t>>(0));
  }
  std::atomic<uint64_t> delivered{0};
  std::atomic<uint64_t> version_regressions{0};
  gateway.set_sink([&](const HttpPacket& packet, const Verdict& verdict) {
    uint64_t prev = last_version[verdict.shard]->exchange(
        verdict.feed_version, std::memory_order_relaxed);
    if (verdict.feed_version < prev) version_regressions.fetch_add(1);
    delivered.fetch_add(1, std::memory_order_relaxed);
    trainer.Offer(packet, verdict);
  });

  ASSERT_TRUE(gateway.Start().ok());
  ASSERT_TRUE(trainer.Start().ok());

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      Rng rng(static_cast<uint64_t>(p) + 1);
      for (int i = 0; i < kPacketsPerProducer; ++i) {
        uint32_t app = static_cast<uint32_t>(p * 100 + i % 37);
        bool leaking = rng.Bernoulli(0.3);
        ASSERT_TRUE(gateway.Submit(app, AdPacket(app, rng.RandomHex(6),
                                                 leaking)));
      }
    });
  }
  for (auto& t : producers) t.join();

  // The trainer may still be chewing through its mailbox (it is much slower
  // than the matchers, e.g. under TSan). Wait for the first hot-swap, then
  // send a tail wave of known leaks that must be matched against a live
  // feed.
  for (int i = 0; i < 4000 && gateway.current_version() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_GE(gateway.current_version(), 1u);
  constexpr uint64_t kTailWave = 200;
  Rng tail_rng(99);
  for (uint64_t i = 0; i < kTailWave; ++i) {
    uint32_t app = static_cast<uint32_t>(900 + i % 37);
    ASSERT_TRUE(gateway.Submit(app, AdPacket(app, tail_rng.RandomHex(6),
                                             /*leaking=*/true)));
  }
  gateway.Stop();  // drains: every accepted packet must produce a verdict
  trainer.Stop();
  constexpr uint64_t kAll = kTotal + kTailWave;

  // Feed-version monotonicity under concurrent ingest + retrain.
  EXPECT_EQ(version_regressions.load(), 0u);
  // No lost packets below queue capacity (kBlock policy).
  EXPECT_EQ(gateway.submitted(), kAll);
  EXPECT_EQ(gateway.processed(), kAll);
  EXPECT_EQ(delivered.load(), kAll);
  EXPECT_EQ(gateway.dropped(), 0u);
  // Retraining really happened live and was published to the gateway.
  EXPECT_GE(server.feed_version(), 2u);
  EXPECT_EQ(trainer.feeds_published(), server.feed_version());
  EXPECT_GE(gateway.swaps(), 2u);
  EXPECT_EQ(gateway.current_version(), server.feed_version());
  // Every published epoch is archived for replay verification.
  for (uint64_t v = 1; v <= server.feed_version(); ++v) {
    EXPECT_NE(trainer.SetForVersion(v), nullptr) << "version " << v;
  }
  // With signatures live, matched packets exist (30% of traffic leaks).
  EXPECT_GT(gateway.matched(), 0u);
}

TEST(GatewayStressTest, OverloadShedsExactlyAndKeepsServing) {
  GatewayOptions options;
  options.num_shards = 2;
  options.queue_capacity = 128;
  options.overload = OverloadPolicy::kDropNewest;
  DetectionGateway gateway(options);
  std::atomic<uint64_t> delivered{0};
  gateway.set_sink(
      [&](const HttpPacket&, const Verdict&) { delivered.fetch_add(1); });
  ASSERT_TRUE(gateway.Start().ok());

  std::atomic<uint64_t> accepted{0};
  constexpr int kProducers = 4;
#ifdef LEAKDET_TSAN_BUILD
  constexpr int kPacketsPerProducer = 3000;  // TSan runs ~10x slower
#else
  constexpr int kPacketsPerProducer = 20000;
#endif
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      Rng rng(static_cast<uint64_t>(p) + 50);
      for (int i = 0; i < kPacketsPerProducer; ++i) {
        uint32_t app = static_cast<uint32_t>(i % 1000);
        if (gateway.Submit(app, AdPacket(app, rng.RandomHex(4), false))) {
          accepted.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& t : producers) t.join();
  gateway.Stop();

  constexpr uint64_t kTotal =
      static_cast<uint64_t>(kProducers) * kPacketsPerProducer;
  // Accounting closes exactly: accepted + dropped == offered, and every
  // accepted packet was processed (drops are shed at the door, never lost
  // from inside the queue).
  EXPECT_EQ(accepted.load() + gateway.dropped(), kTotal);
  EXPECT_EQ(gateway.submitted(), accepted.load());
  EXPECT_EQ(gateway.processed(), accepted.load());
  EXPECT_EQ(delivered.load(), accepted.load());
  uint64_t shard_drops = 0;
  for (size_t s = 0; s < 2; ++s) {
    shard_drops += gateway.metrics()
                       ->GetCounter("gateway.shard" + std::to_string(s) +
                                    ".dropped")
                       ->Value();
  }
  EXPECT_EQ(shard_drops, gateway.dropped());
}

}  // namespace
}  // namespace leakdet::gateway
