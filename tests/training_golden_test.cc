// Golden regression tests for training determinism: RunClustering over a
// fixed synthetic trace with fixed seeds must keep producing the exact same
// clustering and signatures, independent of thread count. The digests below
// pin the output of the optimized (interned + pair-cached + NN-chain)
// training path; any bit-level drift in the distance matrix, the dendrogram,
// or signature generation shows up as a digest change.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "core/pipeline.h"
#include "crypto/sha1.h"
#include "sim/trafficgen.h"

namespace leakdet::core {
namespace {

const sim::Trace& GoldenTrace() {
  static const sim::Trace* trace = [] {
    sim::TrafficConfig config;
    config.seed = 42;
    config.scale = 0.12;
    return new sim::Trace(sim::GenerateTrace(config));
  }();
  return *trace;
}

std::string DigestClustering(const ClusteringResult& result) {
  std::string payload;
  char buf[64];
  for (size_t idx : result.sampled_indices) {
    std::snprintf(buf, sizeof(buf), "i%zu;", idx);
    payload += buf;
  }
  for (const auto& cluster : result.clusters) {
    payload += "c:";
    for (int32_t leaf : cluster) {
      std::snprintf(buf, sizeof(buf), "%d,", leaf);
      payload += buf;
    }
  }
  for (double h : result.merge_heights) {
    // Full bit pattern (%a), not a rounded print: this digest is a
    // bit-identity check on the dendrogram heights.
    std::snprintf(buf, sizeof(buf), "h%a;", h);
    payload += buf;
  }
  return crypto::Sha1Hex(payload);
}

std::string DigestSignatures(const match::SignatureSet& set) {
  return crypto::Sha1Hex(set.Serialize());
}

struct GoldenCase {
  const char* compressor;
  size_t sample_size;
  const char* clustering_digest;
  const char* signatures_digest;
};

// Captured from this implementation (seed 42 trace, pipeline seed 1,
// scale 0.12). If an intentional semantic change moves these, recapture via
// the printed "actual" values and say so in the commit message.
constexpr GoldenCase kGoldenCases[] = {
    {"lzw", 100, "e764c3f4d9e38cf6214a2952f465f29a39440f84",
     "0f22fed72a933211cfc595d313c9178d6aa554b5"},
    {"lzw", 300, "dfbe6ec8098b76932434613c892a2c234edb377c",
     "ec7958752acf4a3d8021563e1f876363157e868b"},
    {"lz77h", 200, "6b0d540ae86b395a542c6013a54d4fab2fa284bd",
     "5bead82b9947f82450d027cf2c7b27763ce748ee"},
    {"entropy", 200, "6d4c8abd527c28d305658d046a6b955abea82e6c",
     "3be894d1eddb4f5d15d5dd851dbd0bad54ca85fe"},
};

PipelineOptions GoldenOptions(const GoldenCase& c, unsigned num_threads) {
  PipelineOptions options;
  options.sample_size = c.sample_size;
  options.compressor = c.compressor;
  options.seed = 1;
  options.num_threads = num_threads;
  return options;
}

TEST(TrainingGoldenTest, ClusteringAndSignaturesMatchGoldenDigests) {
  std::vector<HttpPacket> suspicious, normal;
  GoldenTrace().SplitByTruth(&suspicious, &normal);
  for (const GoldenCase& c : kGoldenCases) {
    SCOPED_TRACE(std::string(c.compressor) + " N=" +
                 std::to_string(c.sample_size));
    auto clustering =
        RunClustering(suspicious, normal, GoldenOptions(c, 1));
    ASSERT_TRUE(clustering.ok());
    EXPECT_EQ(DigestClustering(*clustering), c.clustering_digest);

    auto pipeline = RunPipeline(suspicious, normal, GoldenOptions(c, 1));
    ASSERT_TRUE(pipeline.ok());
    EXPECT_EQ(DigestSignatures(pipeline->signatures), c.signatures_digest);
  }
}

TEST(TrainingGoldenTest, ThreadCountDoesNotChangeOutput) {
  std::vector<HttpPacket> suspicious, normal;
  GoldenTrace().SplitByTruth(&suspicious, &normal);
  const GoldenCase& c = kGoldenCases[0];
  auto serial = RunClustering(suspicious, normal, GoldenOptions(c, 1));
  ASSERT_TRUE(serial.ok());
  for (unsigned threads : {2u, 3u, 8u, 0u}) {
    auto parallel =
        RunClustering(suspicious, normal, GoldenOptions(c, threads));
    ASSERT_TRUE(parallel.ok());
    EXPECT_EQ(DigestClustering(*parallel), DigestClustering(*serial))
        << "threads=" << threads;
  }
}

TEST(TrainingGoldenTest, RepeatedRunsAreBitIdentical) {
  std::vector<HttpPacket> suspicious, normal;
  GoldenTrace().SplitByTruth(&suspicious, &normal);
  const GoldenCase& c = kGoldenCases[0];
  auto first = RunPipeline(suspicious, normal, GoldenOptions(c, 0));
  auto second = RunPipeline(suspicious, normal, GoldenOptions(c, 0));
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(DigestSignatures(first->signatures),
            DigestSignatures(second->signatures));
}

}  // namespace
}  // namespace leakdet::core
