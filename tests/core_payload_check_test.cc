#include "core/payload_check.h"

#include <gtest/gtest.h>

#include "crypto/md5.h"
#include "crypto/sha1.h"

namespace leakdet::core {
namespace {

DeviceTokens TestDevice() {
  DeviceTokens d;
  d.android_id = "9774d56d682e549c";
  d.imei = "352099001761481";
  d.imsi = "440100123456789";
  d.sim_serial = "8981100022313616843";
  d.carrier = "NTT DOCOMO";
  return d;
}

HttpPacket PacketWithRequestLine(const std::string& rline) {
  HttpPacket p;
  p.request_line = rline;
  return p;
}

class PayloadCheckTest : public ::testing::Test {
 protected:
  PayloadCheckTest() : check_({TestDevice()}) {}
  PayloadCheck check_;
};

TEST_F(PayloadCheckTest, CleanPacketIsNormal) {
  HttpPacket p = PacketWithRequestLine(
      "GET /api/v1/fetch?key=aabbcc&lang=ja HTTP/1.1");
  EXPECT_FALSE(check_.IsSensitive(p));
  EXPECT_TRUE(check_.Check(p).empty());
}

TEST_F(PayloadCheckTest, DetectsRawAndroidId) {
  HttpPacket p = PacketWithRequestLine(
      "GET /ad?aid=9774d56d682e549c HTTP/1.1");
  auto types = check_.Check(p);
  ASSERT_EQ(types.size(), 1u);
  EXPECT_EQ(types[0], SensitiveType::kAndroidId);
}

TEST_F(PayloadCheckTest, DetectsUppercaseAndroidId) {
  HttpPacket p = PacketWithRequestLine(
      "GET /ad?aid=9774D56D682E549C HTTP/1.1");
  auto types = check_.Check(p);
  ASSERT_EQ(types.size(), 1u);
  EXPECT_EQ(types[0], SensitiveType::kAndroidId);
}

TEST_F(PayloadCheckTest, DetectsImeiImsiSim) {
  HttpPacket p;
  p.body =
      "imei=352099001761481&imsi=440100123456789&iccid=8981100022313616843";
  auto types = check_.Check(p);
  ASSERT_EQ(types.size(), 3u);
  EXPECT_EQ(types[0], SensitiveType::kImei);
  EXPECT_EQ(types[1], SensitiveType::kImsi);
  EXPECT_EQ(types[2], SensitiveType::kSimSerial);
}

TEST_F(PayloadCheckTest, DetectsHashedIdentifiersBothCases) {
  DeviceTokens d = TestDevice();
  struct Case {
    std::string value;
    SensitiveType expected;
  };
  const Case cases[] = {
      {crypto::Md5Hex(d.android_id), SensitiveType::kAndroidIdMd5},
      {crypto::Md5HexUpper(d.android_id), SensitiveType::kAndroidIdMd5},
      {crypto::Sha1Hex(d.android_id), SensitiveType::kAndroidIdSha1},
      {crypto::Sha1HexUpper(d.android_id), SensitiveType::kAndroidIdSha1},
      {crypto::Md5Hex(d.imei), SensitiveType::kImeiMd5},
      {crypto::Sha1Hex(d.imei), SensitiveType::kImeiSha1},
  };
  for (const Case& c : cases) {
    HttpPacket p = PacketWithRequestLine("GET /t?u=" + c.value + " HTTP/1.1");
    auto types = check_.Check(p);
    ASSERT_EQ(types.size(), 1u) << c.value;
    EXPECT_EQ(types[0], c.expected);
  }
}

TEST_F(PayloadCheckTest, DetectsCarrierRawAndPercentEncoded) {
  HttpPacket raw;
  raw.body = "operator=NTT DOCOMO&x=1";
  ASSERT_EQ(check_.Check(raw).size(), 1u);
  EXPECT_EQ(check_.Check(raw)[0], SensitiveType::kCarrier);

  HttpPacket encoded = PacketWithRequestLine(
      "GET /ad?carrier=NTT%20DOCOMO HTTP/1.1");
  ASSERT_EQ(check_.Check(encoded).size(), 1u);
  EXPECT_EQ(check_.Check(encoded)[0], SensitiveType::kCarrier);
}

TEST_F(PayloadCheckTest, DetectsInCookieField) {
  HttpPacket p;
  p.cookie = "track=352099001761481";
  auto types = check_.Check(p);
  ASSERT_EQ(types.size(), 1u);
  EXPECT_EQ(types[0], SensitiveType::kImei);
}

TEST_F(PayloadCheckTest, EachTypeReportedOnce) {
  HttpPacket p;
  p.request_line = "GET /a?x=352099001761481 HTTP/1.1";
  p.body = "again=352099001761481";
  auto types = check_.Check(p);
  EXPECT_EQ(types.size(), 1u);
}

TEST_F(PayloadCheckTest, SimilarButDifferentValueNotFlagged) {
  // Last digit differs from the device IMEI.
  HttpPacket p = PacketWithRequestLine(
      "GET /ad?imei=352099001761482 HTTP/1.1");
  EXPECT_FALSE(check_.IsSensitive(p));
}

TEST_F(PayloadCheckTest, SplitPreservesOrderAndPartition) {
  std::vector<HttpPacket> packets = {
      PacketWithRequestLine("GET /clean1 HTTP/1.1"),
      PacketWithRequestLine("GET /x?im=352099001761481 HTTP/1.1"),
      PacketWithRequestLine("GET /clean2 HTTP/1.1"),
  };
  std::vector<HttpPacket> suspicious, normal;
  check_.Split(packets, &suspicious, &normal);
  ASSERT_EQ(suspicious.size(), 1u);
  ASSERT_EQ(normal.size(), 2u);
  EXPECT_EQ(normal[0].request_line, "GET /clean1 HTTP/1.1");
  EXPECT_EQ(normal[1].request_line, "GET /clean2 HTTP/1.1");
}

TEST(PayloadCheckMultiDeviceTest, TracksAllDevices) {
  DeviceTokens a = TestDevice();
  DeviceTokens b = TestDevice();
  b.imei = "490154203237518";
  PayloadCheck check({a, b});
  HttpPacket pa;
  pa.body = "imei=352099001761481";
  HttpPacket pb;
  pb.body = "imei=490154203237518";
  EXPECT_TRUE(check.IsSensitive(pa));
  EXPECT_TRUE(check.IsSensitive(pb));
}

TEST(SensitiveTypeNameTest, MatchesTableThreeLabels) {
  EXPECT_EQ(SensitiveTypeName(SensitiveType::kAndroidId), "ANDROID_ID");
  EXPECT_EQ(SensitiveTypeName(SensitiveType::kAndroidIdMd5), "ANDROID_ID MD5");
  EXPECT_EQ(SensitiveTypeName(SensitiveType::kImeiSha1), "IMEI SHA1");
  EXPECT_EQ(SensitiveTypeName(SensitiveType::kSimSerial), "SIM Serial");
  EXPECT_EQ(SensitiveTypeName(SensitiveType::kCarrier), "CARRIER");
}

}  // namespace
}  // namespace leakdet::core
