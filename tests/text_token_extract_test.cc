#include "text/token_extract.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "util/rng.h"

namespace leakdet::text {
namespace {

TokenExtractOptions MinLen(size_t n) {
  TokenExtractOptions o;
  o.min_token_len = n;
  return o;
}

TEST(TokenExtractTest, EmptyInput) {
  EXPECT_TRUE(ExtractInvariantTokens(std::vector<std::string>{}).empty());
}

TEST(TokenExtractTest, EmptySampleYieldsNothing) {
  std::vector<std::string> samples = {"abcdef", ""};
  EXPECT_TRUE(ExtractInvariantTokens(samples).empty());
}

TEST(TokenExtractTest, SingleSampleReturnsWholeString) {
  std::vector<std::string> samples = {"GET /ad?uid=42 HTTP/1.1"};
  auto tokens = ExtractInvariantTokens(samples, MinLen(4));
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0], samples[0]);
}

TEST(TokenExtractTest, CommonInfixExtracted) {
  std::vector<std::string> samples = {
      "xxSHAREDyy",
      "aaSHAREDbb",
      "SHAREDzz",
  };
  auto tokens = ExtractInvariantTokens(samples, MinLen(4));
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0], "SHARED");
}

TEST(TokenExtractTest, MultipleDisjointTokens) {
  std::vector<std::string> samples = {
      "AAAA-1-BBBB",
      "AAAA-2-BBBB",
      "BBBB-3-AAAA",
  };
  auto tokens = ExtractInvariantTokens(samples, MinLen(4));
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_TRUE((tokens[0] == "AAAA" && tokens[1] == "BBBB") ||
              (tokens[0] == "BBBB" && tokens[1] == "AAAA"));
}

TEST(TokenExtractTest, MinLengthFiltersShortTokens) {
  std::vector<std::string> samples = {"ab--cd", "zzabzz--cd"};
  // "ab" and "--cd" are common; with min 4 only "--cd" survives.
  auto tokens = ExtractInvariantTokens(samples, MinLen(4));
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0], "--cd");
}

TEST(TokenExtractTest, NoCommonSubstring) {
  std::vector<std::string> samples = {"aaaa", "bbbb"};
  EXPECT_TRUE(ExtractInvariantTokens(samples, MinLen(2)).empty());
}

TEST(TokenExtractTest, TokensAreMaximal) {
  // Every returned token must not be a substring of another returned token.
  std::vector<std::string> samples = {
      "GET /ad/fetch?app=k1&udid=deadbeef&r=111 HTTP/1.1",
      "GET /ad/fetch?app=k2&udid=deadbeef&r=222 HTTP/1.1",
      "GET /ad/fetch?app=k3&udid=deadbeef&r=939 HTTP/1.1",
  };
  auto tokens = ExtractInvariantTokens(samples, MinLen(4));
  ASSERT_FALSE(tokens.empty());
  for (size_t i = 0; i < tokens.size(); ++i) {
    for (size_t j = 0; j < tokens.size(); ++j) {
      if (i == j) continue;
      EXPECT_EQ(tokens[j].find(tokens[i]), std::string::npos)
          << tokens[i] << " contained in " << tokens[j];
    }
  }
  // The shared prefix and the shared id must be covered by some token.
  bool covers_prefix = false, covers_id = false;
  for (const std::string& t : tokens) {
    if (t.find("GET /ad/fetch?app=k") != std::string::npos) {
      covers_prefix = true;
    }
    if (t.find("&udid=deadbeef&r=") != std::string::npos) covers_id = true;
  }
  EXPECT_TRUE(covers_prefix);
  EXPECT_TRUE(covers_id);
}

TEST(TokenExtractTest, EveryTokenOccursInEverySample) {
  Rng rng(5);
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<std::string> samples;
    std::string core = rng.RandomString(8, "XYZW");
    for (int s = 0; s < 4; ++s) {
      samples.push_back(rng.RandomString(rng.UniformInt(10), "abc") + core +
                        rng.RandomString(rng.UniformInt(10), "abc"));
    }
    auto tokens = ExtractInvariantTokens(samples, MinLen(3));
    ASSERT_FALSE(tokens.empty());
    for (const std::string& tok : tokens) {
      for (const std::string& sample : samples) {
        EXPECT_NE(sample.find(tok), std::string::npos)
            << "token '" << tok << "' missing from sample '" << sample << "'";
      }
    }
  }
}

TEST(TokenExtractTest, MaxTokensCapRespected) {
  std::vector<std::string> samples = {
      "aaaa.bbbb.cccc.dddd.eeee",
      "eeee.dddd.cccc.bbbb.aaaa",
  };
  TokenExtractOptions opts;
  opts.min_token_len = 4;
  opts.max_tokens = 2;
  auto tokens = ExtractInvariantTokens(samples, opts);
  EXPECT_LE(tokens.size(), 2u);
}

TEST(TokenExtractTest, LongestFirstOrdering) {
  std::vector<std::string> samples = {
      "LONGTOKENXYZ medium1 tiny",
      "tiny medium1 LONGTOKENXYZ",
  };
  auto tokens = ExtractInvariantTokens(samples, MinLen(4));
  ASSERT_GE(tokens.size(), 2u);
  for (size_t i = 1; i < tokens.size(); ++i) {
    EXPECT_GE(tokens[i - 1].size(), tokens[i].size());
  }
}

TEST(TokenExtractTest, RepeatedContentInBase) {
  // Same bytes recur in the base string; content-level dedup must collapse
  // them to one maximal token.
  std::vector<std::string> samples = {
      "tokentoken",
      "xtokenx",
  };
  auto tokens = ExtractInvariantTokens(samples, MinLen(5));
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0], "token");
}

TEST(LongestCommonSubstringTest, Basics) {
  EXPECT_EQ(LongestCommonSubstring("hello world", "yellow"), "ello");
  EXPECT_EQ(LongestCommonSubstring("abc", "xyz"), "");
  EXPECT_EQ(LongestCommonSubstring("", "abc"), "");
  EXPECT_EQ(LongestCommonSubstring("same", "same"), "same");
}

// Property sweep over min_token_len.
class TokenExtractSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(TokenExtractSweep, AllTokensAtLeastMinLen) {
  size_t min_len = GetParam();
  Rng rng(400 + min_len);
  std::vector<std::string> samples;
  std::string shared = "COMMON-SEGMENT-0123456789";
  for (int i = 0; i < 5; ++i) {
    samples.push_back(rng.RandomString(6, "pqr") + shared +
                      rng.RandomString(6, "pqr"));
  }
  auto tokens = ExtractInvariantTokens(samples, MinLen(min_len));
  ASSERT_FALSE(tokens.empty());
  for (const std::string& t : tokens) EXPECT_GE(t.size(), min_len);
}

INSTANTIATE_TEST_SUITE_P(MinLens, TokenExtractSweep,
                         ::testing::Values(1, 2, 4, 8, 16, 25));

}  // namespace
}  // namespace leakdet::text
