#include "eval/analysis.h"

#include <gtest/gtest.h>

#include "net/host.h"
#include "sim/paper_tables.h"

namespace leakdet::eval {
namespace {

const sim::Trace& SmallTrace() {
  static const sim::Trace* trace = [] {
    sim::TrafficConfig config;
    config.seed = 31;
    config.scale = 0.05;
    return new sim::Trace(sim::GenerateTrace(config));
  }();
  return *trace;
}

TEST(ComputeDomainStatsTest, AggregatesByRegistrableDomain) {
  auto stats = ComputeDomainStats(SmallTrace());
  ASSERT_FALSE(stats.empty());
  size_t total_packets = 0;
  bool saw_doubleclick = false;
  for (const DomainStats& s : stats) {
    total_packets += s.packets;
    EXPECT_GT(s.apps, 0u);
    if (s.domain == "doubleclick.net") {
      saw_doubleclick = true;
      EXPECT_GT(s.packets, 50u);  // ~5% of 5786
    }
    // Registrable domains only: no subdomain labels beyond eTLD+1.
    EXPECT_EQ(net::RegistrableDomain(s.domain), s.domain);
  }
  EXPECT_EQ(total_packets, SmallTrace().packets.size());
  EXPECT_TRUE(saw_doubleclick);
}

TEST(ComputeDomainStatsTest, SortedByAppsDescending) {
  auto stats = ComputeDomainStats(SmallTrace());
  for (size_t i = 1; i < stats.size(); ++i) {
    EXPECT_GE(stats[i - 1].apps, stats[i].apps);
  }
}

TEST(ComputeDomainStatsTest, MinAppsFilters) {
  auto all = ComputeDomainStats(SmallTrace(), 0);
  auto filtered = ComputeDomainStats(SmallTrace(), 5);
  EXPECT_LT(filtered.size(), all.size());
  for (const DomainStats& s : filtered) EXPECT_GE(s.apps, 5u);
}

TEST(ComputeSensitiveStatsTest, MatchesGenerationTruth) {
  const sim::Trace& trace = SmallTrace();
  size_t suspicious = 0, normal = 0;
  auto stats = ComputeSensitiveStats(trace, &suspicious, &normal);
  EXPECT_EQ(suspicious + normal, trace.packets.size());
  ASSERT_EQ(stats.size(), static_cast<size_t>(core::kNumSensitiveTypes));
  // Cross-check against generator labels.
  std::vector<size_t> truth_packets(core::kNumSensitiveTypes, 0);
  size_t truth_suspicious = 0;
  for (const sim::LabeledPacket& lp : trace.packets) {
    if (lp.sensitive()) ++truth_suspicious;
    for (auto t : lp.truth) truth_packets[static_cast<size_t>(t)]++;
  }
  EXPECT_EQ(suspicious, truth_suspicious);
  for (int t = 0; t < core::kNumSensitiveTypes; ++t) {
    EXPECT_EQ(stats[static_cast<size_t>(t)].packets,
              truth_packets[static_cast<size_t>(t)])
        << core::SensitiveTypeName(static_cast<core::SensitiveType>(t));
  }
}

TEST(ComputeSensitiveStatsTest, AppAndDestinationCountsPositive) {
  auto stats = ComputeSensitiveStats(SmallTrace());
  for (const SensitiveTypeStats& s : stats) {
    EXPECT_GT(s.packets, 0u) << core::SensitiveTypeName(s.type);
    EXPECT_GT(s.apps, 0u);
    EXPECT_GT(s.destinations, 0u);
    EXPECT_LE(s.apps, SmallTrace().population.apps.size());
  }
}

TEST(ComputeDestinationDistributionTest, ShapeStatistics) {
  auto dist = ComputeDestinationDistribution(SmallTrace());
  ASSERT_FALSE(dist.dests_per_app.empty());
  EXPECT_GT(dist.mean, 2.0);
  EXPECT_LT(dist.mean, 15.0);
  EXPECT_GT(dist.max, 10);
  EXPECT_GE(dist.frac_up_to_16, dist.frac_up_to_10);
  EXPECT_DOUBLE_EQ(dist.CumulativeAt(dist.max), 1.0);
  EXPECT_LE(dist.CumulativeAt(1),
            static_cast<double>(dist.dests_per_app.size()));
}

TEST(ComputeDestinationDistributionTest, SortedAscending) {
  auto dist = ComputeDestinationDistribution(SmallTrace());
  for (size_t i = 1; i < dist.dests_per_app.size(); ++i) {
    EXPECT_LE(dist.dests_per_app[i - 1], dist.dests_per_app[i]);
  }
}

}  // namespace
}  // namespace leakdet::eval
