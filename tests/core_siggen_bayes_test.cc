#include "core/siggen_bayes.h"

#include <gtest/gtest.h>

#include "core/pipeline.h"
#include "util/rng.h"

namespace leakdet::core {
namespace {

HttpPacket AdPacket(const std::string& rline) {
  HttpPacket p;
  p.destination.host = "ads.poly-net.com";
  p.destination.ip = *net::Ipv4Address::Parse("21.4.5.6");
  p.destination.port = 80;
  p.request_line = rline;
  return p;
}

/// Cluster whose members share an identifier but only *most* share each
/// template field (polymorphic module).
std::vector<HttpPacket> PolymorphicCluster() {
  return {
      AdPacket("GET /poly/get?k=a1&udid=9774d56d682e549c&fmt=banner&r=1 "
               "HTTP/1.1"),
      AdPacket("GET /poly/get?k=b2&udid=9774d56d682e549c&fmt=banner&r=2 "
               "HTTP/1.1"),
      AdPacket("GET /poly/get?udid=9774d56d682e549c&k=c3&r=3 HTTP/1.1"),
      AdPacket("GET /poly/get?k=d4&udid=9774d56d682e549c&fmt=banner&r=4 "
               "HTTP/1.1"),
  };
}

TEST(BayesSiggenTest, GeneratesWeightedSignature) {
  std::vector<HttpPacket> packets = PolymorphicCluster();
  BayesSignatureGenerator gen;
  auto set = gen.Generate(packets, {{0, 1, 2, 3}}, {});
  ASSERT_EQ(set.size(), 1u);
  const auto& sig = set.signatures()[0];
  EXPECT_FALSE(sig.tokens.empty());
  EXPECT_GT(sig.threshold, 0.0);
  for (const auto& wt : sig.tokens) EXPECT_GT(wt.weight, 0.0);
}

TEST(BayesSiggenTest, MatchesAllTrainingMembers) {
  std::vector<HttpPacket> packets = PolymorphicCluster();
  BayesSignatureGenerator gen;
  auto set = gen.Generate(packets, {{0, 1, 2, 3}}, {});
  ASSERT_EQ(set.size(), 1u);
  BayesDetector detector(std::move(set));
  for (const HttpPacket& p : packets) {
    EXPECT_TRUE(detector.IsSensitive(p));
  }
}

TEST(BayesSiggenTest, DetectsPolymorphicVariantConjunctionMisses) {
  std::vector<HttpPacket> packets = PolymorphicCluster();
  // Normal corpus containing the bare template: discriminative weighting
  // needs to see that the boilerplate also occurs in benign traffic.
  std::vector<std::string> corpus;
  for (int i = 0; i < 100; ++i) {
    corpus.push_back("GET /poly/get?k=n" + std::to_string(i) +
                     "&fmt=banner&r=0 HTTP/1.1\n\n");
  }
  // Bayes: majority tokens with weights.
  BayesSignatureGenerator bayes_gen;
  auto bayes = bayes_gen.Generate(packets, {{0, 1, 2, 3}}, corpus);
  BayesDetector bayes_detector(std::move(bayes));

  // A variant that keeps the identifier and path but drops "fmt" and
  // reorders fields — polymorphic leakage.
  HttpPacket variant = AdPacket(
      "GET /poly/get?r=9&udid=9774d56d682e549c&k=z9 HTTP/1.1");
  EXPECT_TRUE(bayes_detector.IsSensitive(variant));
  // Benign request to the same module (no identifier) stays clean.
  HttpPacket clean = AdPacket("GET /poly/get?k=z9&fmt=banner&r=9 HTTP/1.1");
  EXPECT_FALSE(bayes_detector.IsSensitive(clean));
}

TEST(BayesSiggenTest, NormalCorpusRaisesThreshold) {
  std::vector<HttpPacket> packets = PolymorphicCluster();
  // Corpus full of documents containing the template (but not the id).
  std::vector<std::string> corpus;
  for (int i = 0; i < 200; ++i) {
    corpus.push_back("GET /poly/get?k=x" + std::to_string(i) +
                     "&fmt=banner&r=7 HTTP/1.1\n\n");
  }
  BayesSignatureGenerator gen;
  auto set = gen.Generate(packets, {{0, 1, 2, 3}}, corpus);
  ASSERT_EQ(set.size(), 1u);
  // No corpus document may reach the threshold.
  size_t fp = 0;
  for (const std::string& doc : corpus) {
    if (set.signatures()[0].Score(doc) >= set.signatures()[0].threshold) ++fp;
  }
  EXPECT_EQ(fp, 0u);
  // Training members still match.
  BayesDetector detector(std::move(set));
  for (const HttpPacket& p : packets) EXPECT_TRUE(detector.IsSensitive(p));
}

TEST(BayesSiggenTest, MinClusterSizeRespected) {
  BayesSiggenOptions opts;
  opts.min_cluster_size = 3;
  BayesSignatureGenerator gen(opts);
  std::vector<HttpPacket> packets = PolymorphicCluster();
  auto set = gen.Generate(packets, {{0, 1}}, {});
  EXPECT_EQ(set.size(), 0u);
}

TEST(BayesSiggenTest, TokenCapRespected) {
  BayesSiggenOptions opts;
  opts.max_tokens_per_signature = 3;
  BayesSignatureGenerator gen(opts);
  auto set = gen.Generate(PolymorphicCluster(), {{0, 1, 2, 3}}, {});
  ASSERT_EQ(set.size(), 1u);
  EXPECT_LE(set.signatures()[0].tokens.size(), 3u);
}

TEST(RunBayesPipelineTest, EndToEnd) {
  Rng rng(5);
  std::vector<HttpPacket> suspicious;
  for (int i = 0; i < 30; ++i) {
    suspicious.push_back(
        AdPacket("GET /poly/get?k=" + rng.RandomHex(4) +
                 "&udid=9774d56d682e549c&r=" + rng.RandomHex(6) +
                 " HTTP/1.1"));
  }
  std::vector<HttpPacket> normal;
  for (int i = 0; i < 100; ++i) {
    normal.push_back(AdPacket("GET /other/page?q=" + rng.RandomHex(8) +
                              " HTTP/1.1"));
  }
  BayesPipelineOptions options;
  options.base.sample_size = 15;
  auto result = RunBayesPipeline(suspicious, normal, options);
  ASSERT_TRUE(result.ok());
  ASSERT_GE(result->signatures.size(), 1u);
  BayesDetector detector(std::move(result->signatures));
  size_t detected = 0;
  for (const HttpPacket& p : suspicious) {
    if (detector.IsSensitive(p)) ++detected;
  }
  EXPECT_GT(detected, suspicious.size() * 9 / 10);
  for (const HttpPacket& p : normal) {
    EXPECT_FALSE(detector.IsSensitive(p));
  }
}

}  // namespace
}  // namespace leakdet::core
