#include "core/flow_monitor.h"

#include <gtest/gtest.h>

namespace leakdet::core {
namespace {

HttpPacket Pkt(uint32_t app, const std::string& host,
               const std::string& rline) {
  HttpPacket p;
  p.app_id = app;
  p.destination.host = host;
  p.destination.ip = *net::Ipv4Address::Parse("10.9.8.7");
  p.destination.port = 80;
  p.request_line = rline;
  return p;
}

match::SignatureSet LeakSignatures() {
  match::ConjunctionSignature sig;
  sig.id = "sig-0";
  sig.tokens = {"&udid=9774d5"};
  return match::SignatureSet({sig});
}

TEST(FlowMonitorTest, BenignFlowsPassSilently) {
  Detector detector(LeakSignatures());
  FlowMonitor monitor(&detector, [](uint32_t, const std::string&) {
    ADD_FAILURE() << "benign flow must not prompt";
    return true;
  });
  EXPECT_EQ(monitor.Mediate(Pkt(1, "cdn.example", "GET /img.png HTTP/1.1")),
            FlowVerdict::kPassedSilently);
  EXPECT_EQ(monitor.stats().silent, 1u);
  EXPECT_EQ(monitor.stats().prompts, 0u);
}

TEST(FlowMonitorTest, FlaggedFlowPromptsOncePerAppDomain) {
  Detector detector(LeakSignatures());
  size_t prompts = 0;
  FlowMonitor monitor(&detector, [&prompts](uint32_t, const std::string&) {
    ++prompts;
    return false;  // block
  });
  HttpPacket leak = Pkt(5, "ads.tracker.net", "GET /a?&udid=9774d5 HTTP/1.1");
  EXPECT_EQ(monitor.Mediate(leak), FlowVerdict::kBlockedByPolicy);
  EXPECT_EQ(monitor.Mediate(leak), FlowVerdict::kBlockedByPolicy);
  EXPECT_EQ(monitor.Mediate(leak), FlowVerdict::kBlockedByPolicy);
  EXPECT_EQ(prompts, 1u);  // remembered
  EXPECT_EQ(monitor.stats().blocked, 3u);
  EXPECT_EQ(monitor.remembered_decisions(), 1u);
}

TEST(FlowMonitorTest, DecisionKeyedByAppAndDomain) {
  Detector detector(LeakSignatures());
  size_t prompts = 0;
  FlowMonitor monitor(&detector, [&prompts](uint32_t app, const std::string&) {
    ++prompts;
    return app == 1;  // allow app 1, block others
  });
  // Same domain, two apps: two prompts, two different decisions.
  EXPECT_EQ(monitor.Mediate(
                Pkt(1, "ads.tracker.net", "GET /a?&udid=9774d5 HTTP/1.1")),
            FlowVerdict::kAllowedByPolicy);
  EXPECT_EQ(monitor.Mediate(
                Pkt(2, "ads.tracker.net", "GET /a?&udid=9774d5 HTTP/1.1")),
            FlowVerdict::kBlockedByPolicy);
  // Same app, different registrable domain: third prompt.
  EXPECT_EQ(monitor.Mediate(
                Pkt(1, "ads.other.org", "GET /a?&udid=9774d5 HTTP/1.1")),
            FlowVerdict::kAllowedByPolicy);
  EXPECT_EQ(prompts, 3u);
}

TEST(FlowMonitorTest, SubdomainsShareTheDomainDecision) {
  Detector detector(LeakSignatures());
  size_t prompts = 0;
  FlowMonitor monitor(&detector, [&prompts](uint32_t, const std::string&) {
    ++prompts;
    return false;
  });
  monitor.Mediate(Pkt(1, "a.tracker.net", "GET /a?&udid=9774d5 HTTP/1.1"));
  monitor.Mediate(Pkt(1, "b.tracker.net", "GET /a?&udid=9774d5 HTTP/1.1"));
  EXPECT_EQ(prompts, 1u);  // both resolve to tracker.net
}

TEST(FlowMonitorTest, NullPromptBlocksByDefault) {
  Detector detector(LeakSignatures());
  FlowMonitor monitor(&detector, nullptr);
  EXPECT_EQ(monitor.Mediate(
                Pkt(1, "ads.tracker.net", "GET /a?&udid=9774d5 HTTP/1.1")),
            FlowVerdict::kBlockedByPolicy);
}

TEST(FlowMonitorTest, ForgetDecisionsPromptsAgain) {
  Detector detector(LeakSignatures());
  size_t prompts = 0;
  FlowMonitor monitor(&detector, [&prompts](uint32_t, const std::string&) {
    ++prompts;
    return true;
  });
  HttpPacket leak = Pkt(9, "ads.tracker.net", "GET /a?&udid=9774d5 HTTP/1.1");
  monitor.Mediate(leak);
  monitor.ForgetDecisions();
  monitor.Mediate(leak);
  EXPECT_EQ(prompts, 2u);
  EXPECT_EQ(monitor.stats().allowed, 2u);
}

TEST(FlowMonitorTest, StatsAccumulateAcrossVerdicts) {
  Detector detector(LeakSignatures());
  FlowMonitor monitor(&detector,
                      [](uint32_t app, const std::string&) { return app == 1; });
  monitor.Mediate(Pkt(1, "cdn.example", "GET /x HTTP/1.1"));          // silent
  monitor.Mediate(Pkt(1, "t.net", "GET /a?&udid=9774d5 HTTP/1.1"));   // allow
  monitor.Mediate(Pkt(2, "t.net", "GET /a?&udid=9774d5 HTTP/1.1"));   // block
  monitor.Mediate(Pkt(2, "t.net", "GET /b?&udid=9774d5 HTTP/1.1"));   // block
  EXPECT_EQ(monitor.stats().silent, 1u);
  EXPECT_EQ(monitor.stats().allowed, 1u);
  EXPECT_EQ(monitor.stats().blocked, 2u);
  EXPECT_EQ(monitor.stats().prompts, 2u);
}

}  // namespace
}  // namespace leakdet::core
