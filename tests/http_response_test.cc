#include "http/response.h"

#include <gtest/gtest.h>

namespace leakdet::http {
namespace {

TEST(HttpResponseTest, SerializeAppendsContentLength) {
  HttpResponse response(200, "OK");
  response.AddHeader("Content-Type", "text/plain");
  response.set_body("hello");
  EXPECT_EQ(response.Serialize(),
            "HTTP/1.1 200 OK\r\n"
            "Content-Type: text/plain\r\n"
            "Content-Length: 5\r\n"
            "\r\n"
            "hello");
}

TEST(HttpResponseTest, ExplicitContentLengthNotDuplicated) {
  HttpResponse response(204, "No Content");
  response.AddHeader("Content-Length", "0");
  std::string wire = response.Serialize();
  EXPECT_EQ(wire.find("Content-Length"), wire.rfind("Content-Length"));
}

TEST(ParseResponseTest, RoundTrip) {
  HttpResponse original(200, "OK");
  original.AddHeader("X-Feed-Version", "7");
  original.set_body("leakdet-signatures v1\n");
  auto parsed = ParseResponse(original.Serialize());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->status_code(), 200);
  EXPECT_EQ(parsed->reason(), "OK");
  EXPECT_EQ(parsed->FindHeader("x-feed-version").value(), "7");
  EXPECT_EQ(parsed->body(), "leakdet-signatures v1\n");
}

TEST(ParseResponseTest, ReasonWithSpaces) {
  auto parsed = ParseResponse("HTTP/1.1 405 Method Not Allowed\r\n\r\n");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->status_code(), 405);
  EXPECT_EQ(parsed->reason(), "Method Not Allowed");
}

TEST(ParseResponseTest, MissingReasonAccepted) {
  auto parsed = ParseResponse("HTTP/1.1 404\r\n\r\n");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->status_code(), 404);
  EXPECT_EQ(parsed->reason(), "");
}

TEST(ParseResponseTest, RejectsMalformed) {
  EXPECT_FALSE(ParseResponse("").ok());
  EXPECT_FALSE(ParseResponse("HTTP/1.1 200 OK").ok());       // no terminator
  EXPECT_FALSE(ParseResponse("NOTHTTP 200 OK\r\n\r\n").ok());
  EXPECT_FALSE(ParseResponse("HTTP/1.1 999 X\r\n\r\n").ok());  // bad code
  EXPECT_FALSE(ParseResponse("HTTP/1.1 abc X\r\n\r\n").ok());
  EXPECT_FALSE(ParseResponse("HTTP/1.1 200 OK\r\nNoColon\r\n\r\n").ok());
}

TEST(ParseResponseTest, ContentLengthMismatchRejected) {
  EXPECT_FALSE(
      ParseResponse("HTTP/1.1 200 OK\r\nContent-Length: 10\r\n\r\nshort")
          .ok());
}

TEST(ParseResponseTest, BodyWithoutContentLength) {
  auto parsed = ParseResponse("HTTP/1.1 200 OK\r\n\r\nfree-form body");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->body(), "free-form body");
}

}  // namespace
}  // namespace leakdet::http
