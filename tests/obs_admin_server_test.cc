// obs::AdminServer: routing unit tests via Respond(), transport-level tests
// over a testing::ScriptedListener, and a real-TCP loopback smoke test
// (the admin-plane smoke CI runs under LEAKDET_SANITIZE=thread).

#include "obs/admin_server.h"

#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "testing/scripted_conn.h"

namespace leakdet::obs {
namespace {

TEST(AdminServerRespondTest, HealthzIsOk) {
  Registry registry;
  AdminServerOptions options;
  options.registry = &registry;
  AdminServer admin(options);
  http::HttpResponse response = admin.Respond("GET", "/healthz");
  EXPECT_EQ(response.status_code(), 200);
  EXPECT_EQ(response.body(), "ok\n");
}

TEST(AdminServerRespondTest, MetricsServesPrometheusExposition) {
  Registry registry;
  registry.GetCounter("app.requests")->Inc(7);
  AdminServerOptions options;
  options.registry = &registry;
  AdminServer admin(options);
  http::HttpResponse response = admin.Respond("GET", "/metrics");
  EXPECT_EQ(response.status_code(), 200);
  auto content_type = response.FindHeader("Content-Type");
  ASSERT_TRUE(content_type.has_value());
  EXPECT_EQ(*content_type, "text/plain; version=0.0.4; charset=utf-8");
  EXPECT_NE(response.body().find("# TYPE app_requests counter\n"),
            std::string::npos);
  EXPECT_NE(response.body().find("app_requests 7\n"), std::string::npos);
  // The admin server's own request metrics live in the same registry.
  EXPECT_NE(response.body().find("admin_requests"), std::string::npos);
}

TEST(AdminServerRespondTest, StatuszRendersBuildInfoAndSections) {
  Registry registry;
  AdminServerOptions options;
  options.registry = &registry;
  AdminServer admin(options);
  admin.AddStatusSection("gateway", [] {
    return std::string("epoch_version: 7\nepoch_age_ns: 123\n");
  });
  admin.AddStatusSection("store", [] {
    return std::string("wal_last_sequence: 42");  // no trailing newline
  });
  http::HttpResponse response = admin.Respond("GET", "/statusz");
  EXPECT_EQ(response.status_code(), 200);
  const std::string& body = response.body();
  EXPECT_EQ(body.rfind("leakdet statusz\nbuild: ", 0), 0u);
  EXPECT_NE(body.find(BuildInfoString()), std::string::npos);
  EXPECT_NE(body.find("\n[gateway]\nepoch_version: 7\n"), std::string::npos);
  EXPECT_NE(body.find("\n[store]\nwal_last_sequence: 42\n"),
            std::string::npos);
}

TEST(AdminServerRespondTest, VarzServesFlatDump) {
  Registry registry;
  registry.GetGauge("depth")->Set(9);
  AdminServerOptions options;
  options.registry = &registry;
  AdminServer admin(options);
  http::HttpResponse response = admin.Respond("GET", "/varz");
  EXPECT_EQ(response.status_code(), 200);
  EXPECT_NE(response.body().find("depth 9\n"), std::string::npos);
}

TEST(AdminServerRespondTest, UnknownPathIs404) {
  Registry registry;
  AdminServerOptions options;
  options.registry = &registry;
  AdminServer admin(options);
  EXPECT_EQ(admin.Respond("GET", "/nope").status_code(), 404);
}

TEST(AdminServerRespondTest, NonGetIs405) {
  Registry registry;
  AdminServerOptions options;
  options.registry = &registry;
  AdminServer admin(options);
  EXPECT_EQ(admin.Respond("POST", "/metrics").status_code(), 405);
}

TEST(AdminServerRespondTest, QueryStringDoesNotChangeRouting) {
  Registry registry;
  AdminServerOptions options;
  options.registry = &registry;
  AdminServer admin(options);
  EXPECT_EQ(admin.Respond("GET", "/healthz?verbose=1").status_code(), 200);
}

TEST(AdminServerRespondTest, RequestsCountedByBoundedPathLabel) {
  Registry registry;
  AdminServerOptions options;
  options.registry = &registry;
  AdminServer admin(options);
  (void)admin.Respond("GET", "/metrics");
  (void)admin.Respond("GET", "/scan1");
  (void)admin.Respond("GET", "/scan2");
  EXPECT_EQ(registry.GetCounter("admin.requests", {{"path", "metrics"}})
                ->Value(),
            1u);
  // Unknown paths collapse into one series: a scanner cannot mint
  // unbounded label values.
  EXPECT_EQ(
      registry.GetCounter("admin.requests", {{"path", "other"}})->Value(),
      2u);
}

TEST(AdminServerScriptedTest, ServesOverScriptedListener) {
  Registry registry;
  registry.GetCounter("app.requests")->Inc();
  AdminServerOptions options;
  options.registry = &registry;
  AdminServer admin(options);
  auto listener = std::make_unique<testing::ScriptedListener>();
  testing::ScriptedListener* listener_ptr = listener.get();
  ASSERT_TRUE(admin.Start(std::move(listener)).ok());

  std::unique_ptr<testing::ScriptedStream> client = listener_ptr->Connect();
  (void)client->SetReadTimeout(5000);
  StatusOr<http::HttpResponse> response = AdminGet(client.get(), "/healthz");
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->status_code(), 200);
  EXPECT_EQ(response->body(), "ok\n");

  std::unique_ptr<testing::ScriptedStream> metrics_client =
      listener_ptr->Connect();
  (void)metrics_client->SetReadTimeout(5000);
  StatusOr<http::HttpResponse> metrics =
      AdminGet(metrics_client.get(), "/metrics");
  ASSERT_TRUE(metrics.ok()) << metrics.status().ToString();
  EXPECT_NE(metrics->body().find("app_requests 1\n"), std::string::npos);

  admin.Stop();
  EXPECT_EQ(admin.requests_served(), 2u);
}

TEST(AdminServerTcpTest, LoopbackSmoke) {
  Registry registry;
  registry.GetCounter("smoke.requests")->Inc(3);
  AdminServerOptions options;
  options.registry = &registry;
  AdminServer admin(options);
  ASSERT_TRUE(admin.Start(/*port=*/0).ok());
  ASSERT_NE(admin.port(), 0);

  StatusOr<http::HttpResponse> health = AdminGet(admin.port(), "/healthz");
  ASSERT_TRUE(health.ok()) << health.status().ToString();
  EXPECT_EQ(health->status_code(), 200);
  EXPECT_EQ(health->body(), "ok\n");

  StatusOr<http::HttpResponse> metrics = AdminGet(admin.port(), "/metrics");
  ASSERT_TRUE(metrics.ok()) << metrics.status().ToString();
  EXPECT_EQ(metrics->status_code(), 200);
  EXPECT_NE(metrics->body().find("# TYPE smoke_requests counter\n"),
            std::string::npos);
  EXPECT_NE(metrics->body().find("smoke_requests 3\n"), std::string::npos);

  StatusOr<http::HttpResponse> statusz = AdminGet(admin.port(), "/statusz");
  ASSERT_TRUE(statusz.ok()) << statusz.status().ToString();
  EXPECT_EQ(statusz->status_code(), 200);

  admin.Stop();
  EXPECT_GE(admin.requests_served(), 3u);
}

}  // namespace
}  // namespace leakdet::obs
