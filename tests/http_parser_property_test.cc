// Property-based round-trip tests for the HTTP/1.1 request parser: for any
// generated valid request, parse(serialize(r)) is field-identical to r; for
// any adversarially malformed byte string, the parser returns a clean
// InvalidArgument without crashing. Every iteration is a pure function of
// the seed, so a failure replays exactly.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "http/message.h"
#include "http/parser.h"
#include "testing/packet_gen.h"
#include "util/rng.h"
#include "util/status.h"

#include "test_seed.h"

namespace leakdet {
namespace {

void ExpectFieldIdentical(const http::HttpRequest& a,
                          const http::HttpRequest& b,
                          const std::string& context) {
  EXPECT_EQ(a.method(), b.method()) << context;
  EXPECT_EQ(a.target(), b.target()) << context;
  EXPECT_EQ(a.version(), b.version()) << context;
  EXPECT_EQ(a.body(), b.body()) << context;
  ASSERT_EQ(a.headers().size(), b.headers().size()) << context;
  for (size_t i = 0; i < a.headers().size(); ++i) {
    EXPECT_EQ(a.headers()[i].name, b.headers()[i].name) << context;
    EXPECT_EQ(a.headers()[i].value, b.headers()[i].value) << context;
  }
}

TEST(HttpParserPropertyTest, ParseSerializeParseIsIdentity) {
  const uint64_t seed = testing::TestSeed(0x9E3779B97F4A7C15ull);
  SCOPED_TRACE(testing::SeedTrace(seed));
  Rng rng(seed);
  for (int i = 0; i < 2000; ++i) {
    http::HttpRequest request = testing::GenerateValidRequest(&rng);
    std::string wire = request.Serialize();
    auto first = http::ParseRequest(wire);
    ASSERT_TRUE(first.ok())
        << "iteration " << i << ": " << first.status().message() << "\nwire:\n"
        << wire;
    ExpectFieldIdentical(request, *first,
                         "iteration " + std::to_string(i));
    // The fixpoint: serializing the parse and parsing again changes nothing.
    auto second = http::ParseRequest(first->Serialize());
    ASSERT_TRUE(second.ok()) << "iteration " << i;
    ExpectFieldIdentical(*first, *second,
                         "fixpoint, iteration " + std::to_string(i));
  }
}

TEST(HttpParserPropertyTest, WireVariationsParseToTheSameRequest) {
  const uint64_t seed = testing::TestSeed(0xA0761D6478BD642Full);
  SCOPED_TRACE(testing::SeedTrace(seed));
  Rng rng(seed);
  for (int i = 0; i < 2000; ++i) {
    http::HttpRequest request = testing::GenerateValidRequest(&rng);
    std::string varied = testing::SerializeWithVariations(request, &rng);
    auto parsed = http::ParseRequest(varied);
    ASSERT_TRUE(parsed.ok())
        << "iteration " << i << ": " << parsed.status().message()
        << "\nwire:\n" << varied;
    ExpectFieldIdentical(request, *parsed,
                         "variation, iteration " + std::to_string(i));
  }
}

TEST(HttpParserPropertyTest, MalformedInputNeverCrashesAndAlwaysRejects) {
  const uint64_t seed = testing::TestSeed(0xD1B54A32D192ED03ull);
  SCOPED_TRACE(testing::SeedTrace(seed));
  Rng rng(seed);
  for (int i = 0; i < 3000; ++i) {
    std::string clazz;
    std::string wire = testing::GenerateMalformedRequest(&rng, &clazz);
    auto parsed = http::ParseRequest(wire);
    ASSERT_FALSE(parsed.ok())
        << "iteration " << i << " class " << clazz
        << " unexpectedly parsed:\n" << wire;
    EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument)
        << "iteration " << i << " class " << clazz;
    EXPECT_FALSE(parsed.status().message().empty())
        << "iteration " << i << " class " << clazz;
  }
}

TEST(HttpParserPropertyTest, GeneratedPacketsCarryParseableRequests) {
  const uint64_t seed = testing::TestSeed(0xBF58476D1CE4E5B9ull);
  SCOPED_TRACE(testing::SeedTrace(seed));
  Rng rng(seed);
  std::vector<std::string> tokens = {"73f1a2b4c5d6e7f8", "358240051111110"};
  int sensitive = 0;
  for (int i = 0; i < 500; ++i) {
    core::HttpPacket packet = testing::GeneratePacket(&rng, tokens, 0.5);
    // The packet's request line must itself be a parseable request head.
    std::string wire = packet.request_line + "\r\n\r\n";
    auto parsed = http::ParseRequest(wire);
    ASSERT_TRUE(parsed.ok())
        << "iteration " << i << ": " << packet.request_line;
    bool has_token = false;
    for (const std::string& token : tokens) {
      if (packet.request_line.find(token) != std::string::npos) {
        has_token = true;
      }
    }
    sensitive += has_token ? 1 : 0;
  }
  // p=0.5 over 500 draws: both classes must be well represented.
  EXPECT_GT(sensitive, 100);
  EXPECT_LT(sensitive, 400);
}

}  // namespace
}  // namespace leakdet
