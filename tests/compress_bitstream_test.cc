#include "compress/bitstream.h"

#include <gtest/gtest.h>

#include <vector>

#include "util/rng.h"

namespace leakdet::compress {
namespace {

TEST(BitStreamTest, RoundTripSingleBits) {
  BitWriter w;
  const int bits[] = {1, 0, 1, 1, 0, 0, 1, 0, 1, 1, 1};
  for (int b : bits) w.WriteBits(static_cast<uint64_t>(b), 1);
  std::string data = w.Finish();
  BitReader r(data);
  for (int b : bits) EXPECT_EQ(r.ReadBit(), b);
}

TEST(BitStreamTest, RoundTripMixedWidths) {
  Rng rng(1);
  std::vector<std::pair<uint64_t, int>> fields;
  BitWriter w;
  for (int i = 0; i < 500; ++i) {
    int nbits = 1 + static_cast<int>(rng.UniformInt(57));
    uint64_t value = rng.Next() & ((nbits == 64) ? ~0ull
                                                 : ((1ull << nbits) - 1));
    fields.emplace_back(value, nbits);
    w.WriteBits(value, nbits);
  }
  std::string data = w.Finish();
  BitReader r(data);
  for (auto [value, nbits] : fields) {
    uint64_t got;
    ASSERT_TRUE(r.ReadBits(nbits, &got).ok());
    EXPECT_EQ(got, value);
  }
}

TEST(BitStreamTest, ZeroBitWrite) {
  BitWriter w;
  w.WriteBits(0, 0);
  w.WriteBits(1, 1);
  std::string data = w.Finish();
  BitReader r(data);
  uint64_t v;
  ASSERT_TRUE(r.ReadBits(0, &v).ok());
  EXPECT_EQ(v, 0u);
  EXPECT_EQ(r.ReadBit(), 1);
}

TEST(BitStreamTest, UnderrunReported) {
  BitWriter w;
  w.WriteBits(0x3, 2);
  std::string data = w.Finish();  // one byte
  BitReader r(data);
  uint64_t v;
  ASSERT_TRUE(r.ReadBits(8, &v).ok());  // padding bits readable
  EXPECT_FALSE(r.ReadBits(8, &v).ok()); // beyond the buffer
}

TEST(BitStreamTest, EmptyReader) {
  BitReader r("");
  EXPECT_TRUE(r.Exhausted());
  EXPECT_EQ(r.ReadBit(), -1);
}

TEST(VarintTest, RoundTripBoundaries) {
  const uint64_t values[] = {0,       1,        127,        128,
                             16383,   16384,    (1ull << 32) - 1,
                             1ull << 32,        UINT64_MAX};
  for (uint64_t v : values) {
    std::string buf;
    AppendVarint(v, &buf);
    size_t pos = 0;
    uint64_t got;
    ASSERT_TRUE(ReadVarint(buf, &pos, &got).ok()) << v;
    EXPECT_EQ(got, v);
    EXPECT_EQ(pos, buf.size());
  }
}

TEST(VarintTest, EncodingLengths) {
  std::string buf;
  AppendVarint(127, &buf);
  EXPECT_EQ(buf.size(), 1u);
  buf.clear();
  AppendVarint(128, &buf);
  EXPECT_EQ(buf.size(), 2u);
  buf.clear();
  AppendVarint(UINT64_MAX, &buf);
  EXPECT_EQ(buf.size(), 10u);
}

TEST(VarintTest, Underrun) {
  std::string buf;
  AppendVarint(300, &buf);
  buf.pop_back();
  size_t pos = 0;
  uint64_t v;
  EXPECT_FALSE(ReadVarint(buf, &pos, &v).ok());
}

TEST(VarintTest, SequentialDecoding) {
  std::string buf;
  for (uint64_t v = 0; v < 100; v += 7) AppendVarint(v * v, &buf);
  size_t pos = 0;
  for (uint64_t v = 0; v < 100; v += 7) {
    uint64_t got;
    ASSERT_TRUE(ReadVarint(buf, &pos, &got).ok());
    EXPECT_EQ(got, v * v);
  }
  EXPECT_EQ(pos, buf.size());
}

}  // namespace
}  // namespace leakdet::compress
