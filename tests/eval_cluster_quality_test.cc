#include "eval/cluster_quality.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace leakdet::eval {
namespace {

core::DistanceMatrix PlantedMatrix() {
  // Two tight groups {0,1,2} and {3,4}, well separated.
  core::DistanceMatrix m(5);
  for (size_t i = 0; i < 5; ++i) {
    for (size_t j = i + 1; j < 5; ++j) {
      bool same = (i < 3) == (j < 3);
      m.set(i, j, same ? 0.1 : 4.0);
    }
  }
  return m;
}

TEST(CopheneticCorrelationTest, HighForWellStructuredData) {
  core::DistanceMatrix m = PlantedMatrix();
  core::Dendrogram d = core::ClusterGroupAverage(m);
  EXPECT_GT(CopheneticCorrelation(m, d), 0.95);
}

TEST(CopheneticCorrelationTest, LowerForRandomData) {
  Rng rng(3);
  core::DistanceMatrix m(20);
  for (size_t i = 0; i < 20; ++i) {
    for (size_t j = i + 1; j < 20; ++j) {
      m.set(i, j, rng.UniformDouble());
    }
  }
  core::Dendrogram d = core::ClusterGroupAverage(m);
  double random_corr = CopheneticCorrelation(m, d);
  core::DistanceMatrix planted = PlantedMatrix();
  double planted_corr =
      CopheneticCorrelation(planted, core::ClusterGroupAverage(planted));
  EXPECT_LT(random_corr, planted_corr);
  EXPECT_GE(random_corr, -1.0);
  EXPECT_LE(random_corr, 1.0);
}

TEST(CopheneticCorrelationTest, DegenerateInputs) {
  core::DistanceMatrix one(1);
  core::Dendrogram d1 = core::ClusterGroupAverage(one);
  EXPECT_DOUBLE_EQ(CopheneticCorrelation(one, d1), 0.0);
  // Constant distances: zero variance => defined as 0.
  core::DistanceMatrix flat(4);
  for (size_t i = 0; i < 4; ++i) {
    for (size_t j = i + 1; j < 4; ++j) flat.set(i, j, 1.0);
  }
  core::Dendrogram df = core::ClusterGroupAverage(flat);
  EXPECT_DOUBLE_EQ(CopheneticCorrelation(flat, df), 0.0);
}

TEST(MeanSilhouetteTest, PlantedClustersScoreHigh) {
  core::DistanceMatrix m = PlantedMatrix();
  std::vector<std::vector<int32_t>> good = {{0, 1, 2}, {3, 4}};
  EXPECT_GT(MeanSilhouette(m, good), 0.9);
}

TEST(MeanSilhouetteTest, WrongClustersScoreLow) {
  core::DistanceMatrix m = PlantedMatrix();
  std::vector<std::vector<int32_t>> bad = {{0, 3}, {1, 2, 4}};
  EXPECT_LT(MeanSilhouette(m, bad), MeanSilhouette(m, {{0, 1, 2}, {3, 4}}));
  EXPECT_LT(MeanSilhouette(m, bad), 0.4);
}

TEST(MeanSilhouetteTest, SingletonsContributeZero) {
  core::DistanceMatrix m = PlantedMatrix();
  std::vector<std::vector<int32_t>> singletons = {{0}, {1}, {2}, {3}, {4}};
  EXPECT_DOUBLE_EQ(MeanSilhouette(m, singletons), 0.0);
}

TEST(MeanSilhouetteTest, SingleClusterIsZero) {
  core::DistanceMatrix m = PlantedMatrix();
  std::vector<std::vector<int32_t>> one = {{0, 1, 2, 3, 4}};
  EXPECT_DOUBLE_EQ(MeanSilhouette(m, one), 0.0);
}

TEST(PointSilhouettesTest, BoundsAndCount) {
  core::DistanceMatrix m = PlantedMatrix();
  std::vector<std::vector<int32_t>> clusters = {{0, 1, 2}, {3, 4}};
  auto s = PointSilhouettes(m, clusters);
  ASSERT_EQ(s.size(), 5u);
  for (double v : s) {
    EXPECT_GE(v, -1.0);
    EXPECT_LE(v, 1.0);
  }
}

TEST(ClusterQualityIntegrationTest, DendrogramCutQualityPeaksAtPlantedK) {
  // Three planted groups; silhouette should peak when cutting into 3.
  Rng rng(9);
  size_t n = 18;
  core::DistanceMatrix m(n);
  auto group = [](size_t i) { return i / 6; };
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      double base = group(i) == group(j) ? 0.2 : 3.0;
      m.set(i, j, base + 0.05 * rng.UniformDouble());
    }
  }
  core::Dendrogram d = core::ClusterGroupAverage(m);
  double s2 = MeanSilhouette(m, d.CutIntoK(2));
  double s3 = MeanSilhouette(m, d.CutIntoK(3));
  double s6 = MeanSilhouette(m, d.CutIntoK(6));
  EXPECT_GT(s3, s2);
  EXPECT_GT(s3, s6);
  EXPECT_GT(s3, 0.85);
}

}  // namespace
}  // namespace leakdet::eval
