#include "match/aho_corasick.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "util/rng.h"

namespace leakdet::match {
namespace {

TEST(AhoCorasickTest, FindsSinglePattern) {
  AhoCorasick ac({"needle"});
  auto matches = ac.FindAll("hay needle hay needle");
  ASSERT_EQ(matches.size(), 2u);
  EXPECT_EQ(matches[0].pattern, 0u);
  EXPECT_EQ(matches[0].end, 10u);
  EXPECT_EQ(matches[1].end, 21u);
}

TEST(AhoCorasickTest, OverlappingPatternsAllReported) {
  AhoCorasick ac({"he", "she", "hers", "his"});
  auto matches = ac.FindAll("ushers");
  std::set<std::pair<uint32_t, size_t>> got;
  for (auto m : matches) got.insert({m.pattern, m.end});
  // "she" ends at 4, "he" ends at 4, "hers" ends at 6.
  EXPECT_TRUE(got.count({1, 4}));
  EXPECT_TRUE(got.count({0, 4}));
  EXPECT_TRUE(got.count({2, 6}));
  EXPECT_EQ(matches.size(), 3u);
}

TEST(AhoCorasickTest, PatternInsidePattern) {
  AhoCorasick ac({"abcd", "bc"});
  auto matches = ac.FindAll("abcd");
  std::set<uint32_t> patterns;
  for (auto m : matches) patterns.insert(m.pattern);
  EXPECT_TRUE(patterns.count(0));
  EXPECT_TRUE(patterns.count(1));
}

TEST(AhoCorasickTest, DuplicatePatternsShareMatches) {
  AhoCorasick ac({"dup", "dup"});
  auto matches = ac.FindAll("dup");
  // Both ids end at the same node; both are reported.
  EXPECT_EQ(matches.size(), 2u);
}

TEST(AhoCorasickTest, EmptyPatternsIgnored) {
  AhoCorasick ac({"", "x"});
  EXPECT_EQ(ac.num_patterns(), 2u);
  auto matches = ac.FindAll("xx");
  for (auto m : matches) EXPECT_EQ(m.pattern, 1u);
  EXPECT_EQ(matches.size(), 2u);
}

TEST(AhoCorasickTest, NoPatterns) {
  AhoCorasick ac({});
  EXPECT_TRUE(ac.FindAll("anything").empty());
  EXPECT_FALSE(ac.AnyMatch("anything"));
}

TEST(AhoCorasickTest, MarkPresent) {
  AhoCorasick ac({"imei=", "android_id=", "carrier="});
  std::vector<bool> seen(3, false);
  ac.MarkPresent("GET /x?imei=3520&carrier=docomo HTTP/1.1", &seen);
  EXPECT_TRUE(seen[0]);
  EXPECT_FALSE(seen[1]);
  EXPECT_TRUE(seen[2]);
}

TEST(AhoCorasickTest, AnyMatchEarlyOut) {
  AhoCorasick ac({"zzz"});
  EXPECT_TRUE(ac.AnyMatch("aaazzzbbb"));
  EXPECT_FALSE(ac.AnyMatch("aaabbbccc"));
  EXPECT_FALSE(ac.AnyMatch(""));
}

TEST(AhoCorasickTest, AnyMatchViaReportChain) {
  // Match that only surfaces through the report (suffix) chain.
  AhoCorasick ac({"bc"});
  EXPECT_TRUE(ac.AnyMatch("abcd"));
}

TEST(AhoCorasickTest, BinaryPatterns) {
  std::string p1("\x00\x01", 2);
  std::string p2("\xff\xfe\xfd", 3);
  AhoCorasick ac({p1, p2});
  std::string text = "x" + p1 + "y" + p2;
  auto matches = ac.FindAll(text);
  EXPECT_EQ(matches.size(), 2u);
}

// Brute-force differential test.
TEST(AhoCorasickTest, MatchesBruteForceOnRandomInput) {
  Rng rng(17);
  for (int trial = 0; trial < 25; ++trial) {
    std::vector<std::string> patterns;
    size_t np = 1 + rng.UniformInt(8);
    for (size_t i = 0; i < np; ++i) {
      patterns.push_back(rng.RandomString(1 + rng.UniformInt(5), "ab"));
    }
    std::string text = rng.RandomString(200, "ab");
    AhoCorasick ac(patterns);
    auto matches = ac.FindAll(text);
    std::multiset<std::pair<uint32_t, size_t>> got;
    for (auto m : matches) got.insert({m.pattern, m.end});
    std::multiset<std::pair<uint32_t, size_t>> expected;
    for (uint32_t p = 0; p < patterns.size(); ++p) {
      size_t pos = text.find(patterns[p]);
      while (pos != std::string::npos) {
        expected.insert({p, pos + patterns[p].size()});
        pos = text.find(patterns[p], pos + 1);
      }
    }
    EXPECT_EQ(got, expected) << "trial " << trial;
  }
}

TEST(AhoCorasickTest, ManyPatternsScale) {
  Rng rng(23);
  std::vector<std::string> patterns;
  for (int i = 0; i < 500; ++i) {
    patterns.push_back("tok-" + std::to_string(i) + "-" + rng.RandomHex(6));
  }
  AhoCorasick ac(patterns);
  std::string text = "prefix " + patterns[123] + " infix " + patterns[499];
  std::vector<bool> seen(patterns.size(), false);
  ac.MarkPresent(text, &seen);
  EXPECT_TRUE(seen[123]);
  EXPECT_TRUE(seen[499]);
  EXPECT_EQ(std::count(seen.begin(), seen.end(), true), 2);
}

}  // namespace
}  // namespace leakdet::match
