#include "federation/merge.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "util/rng.h"

namespace leakdet::federation {
namespace {

bool SameExport(const ShardExport& a, const ShardExport& b) {
  return a.tenant == b.tenant && a.witness_cap == b.witness_cap &&
         a.candidates.signatures() == b.candidates.signatures() &&
         a.witness == b.witness && a.devices == b.devices &&
         a.max_shard_packets == b.max_shard_packets;
}

match::ConjunctionSignature Sig(std::vector<std::string> tokens,
                                std::string scope, uint32_t cluster_size) {
  match::ConjunctionSignature sig;
  sig.tokens = std::move(tokens);
  sig.host_scope = std::move(scope);
  sig.cluster_size = cluster_size;
  return sig;
}

ShardExport RandomExport(Rng* rng) {
  static const std::vector<std::string> kTokens = {
      "imei=", "android_id=", "mac=", "lat=", "lon=", "uid="};
  static const std::vector<std::string> kScopes = {"", "ads.example.com",
                                                   "track.example.net"};
  ShardExport shard;
  shard.tenant = "acme";
  shard.witness_cap = 8;
  shard.witness = WitnessTable(8);
  std::vector<match::ConjunctionSignature> sigs;
  size_t n = 1 + rng->UniformInt(4);
  for (size_t i = 0; i < n; ++i) {
    std::vector<std::string> tokens;
    size_t ntok = 1 + rng->UniformInt(3);
    for (size_t t = 0; t < ntok; ++t) {
      tokens.push_back(kTokens[rng->UniformInt(kTokens.size())]);
    }
    sigs.push_back(Sig(std::move(tokens), kScopes[rng->UniformInt(3)],
                       static_cast<uint32_t>(1 + rng->UniformInt(20))));
  }
  shard.candidates = match::SignatureSet(std::move(sigs));
  size_t observations = rng->UniformInt(30);
  for (size_t i = 0; i < observations; ++i) {
    shard.witness.Observe(kTokens[rng->UniformInt(kTokens.size())],
                          rng->UniformInt(64));
  }
  size_t devices = rng->UniformInt(10);
  for (size_t i = 0; i < devices; ++i) {
    ObserveDevice(&shard.devices, rng->UniformInt(64));
  }
  shard.max_shard_packets = rng->UniformInt(1000);
  return shard;
}

TEST(CanonicalizeTest, SortsDedupesAndReassignsIds) {
  match::SignatureSet set(
      {Sig({"b", "a", "b"}, "host", 3), Sig({"a", "b"}, "host", 7),
       Sig({"z"}, "", 1)});
  match::SignatureSet canon = Canonicalize(set);
  ASSERT_EQ(canon.size(), 2u);
  // Empty scope sorts first; duplicate (host, {a,b}) collapsed with max
  // cluster_size.
  EXPECT_EQ(canon.signatures()[0].host_scope, "");
  EXPECT_EQ(canon.signatures()[0].tokens, (std::vector<std::string>{"z"}));
  EXPECT_EQ(canon.signatures()[0].id, "sig-0000");
  EXPECT_EQ(canon.signatures()[1].tokens,
            (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(canon.signatures()[1].cluster_size, 7u);
  EXPECT_EQ(canon.signatures()[1].id, "sig-0001");
}

TEST(MergeTest, RefusesTenantAndCapMismatch) {
  ShardExport a, b;
  a.tenant = "acme";
  b.tenant = "globex";
  EXPECT_FALSE(Merge(a, b).ok());
  b.tenant = "acme";
  b.witness_cap = a.witness_cap + 1;
  b.witness = WitnessTable(b.witness_cap);
  EXPECT_FALSE(Merge(a, b).ok());
  EXPECT_FALSE(MergeAll({}).ok());
}

TEST(MergeTest, CommutativeAssociativeIdempotent) {
  Rng rng(2013);
  for (int trial = 0; trial < 60; ++trial) {
    ShardExport a = RandomExport(&rng);
    ShardExport b = RandomExport(&rng);
    ShardExport c = RandomExport(&rng);

    auto ab = Merge(a, b);
    auto ba = Merge(b, a);
    ASSERT_TRUE(ab.ok() && ba.ok());
    EXPECT_TRUE(SameExport(*ab, *ba)) << "commutativity, trial " << trial;

    auto ab_c = Merge(*ab, c);
    auto bc = Merge(b, c);
    ASSERT_TRUE(ab_c.ok() && bc.ok());
    auto a_bc = Merge(a, *bc);
    ASSERT_TRUE(a_bc.ok());
    EXPECT_TRUE(SameExport(*ab_c, *a_bc)) << "associativity, trial " << trial;

    auto aa = Merge(a, a);
    ASSERT_TRUE(aa.ok());
    ShardExport canon_a = *MergeAll({a});
    EXPECT_TRUE(SameExport(*aa, canon_a)) << "idempotence, trial " << trial;

    // MergeAll in any order equals the pairwise fold.
    ShardExport fold = *MergeAll({c, a, b});
    EXPECT_TRUE(SameExport(fold, *ab_c)) << "fold order, trial " << trial;
  }
}

TEST(MergeTest, ClusterSizeJoinsByMaxNotSum) {
  ShardExport a, b;
  a.tenant = b.tenant = "acme";
  a.candidates = match::SignatureSet({Sig({"imei="}, "", 5)});
  b.candidates = match::SignatureSet({Sig({"imei="}, "", 9)});
  auto merged = Merge(a, b);
  ASSERT_TRUE(merged.ok());
  ASSERT_EQ(merged->candidates.size(), 1u);
  EXPECT_EQ(merged->candidates.signatures()[0].cluster_size, 9u);
}

TEST(SerializeTest, RoundTripsExactly) {
  Rng rng(404);
  for (int trial = 0; trial < 20; ++trial) {
    ShardExport shard = *MergeAll({RandomExport(&rng)});
    // Exercise awkward bytes in tenant and tokens (hex armor must cover
    // spaces and newlines).
    shard.tenant = "acme corp\nEU";
    std::string wire = SerializeShardExport(shard);
    auto parsed = ParseShardExport(wire);
    ASSERT_TRUE(parsed.ok()) << parsed.status().message();
    EXPECT_TRUE(SameExport(shard, *parsed)) << "trial " << trial;
    // Serialization is canonical: re-serializing the parse is identical.
    EXPECT_EQ(SerializeShardExport(*parsed), wire);
  }
}

TEST(SerializeTest, RejectsGarbage) {
  EXPECT_FALSE(ParseShardExport("").ok());
  EXPECT_FALSE(ParseShardExport("not-a-shard-export").ok());
  EXPECT_FALSE(ParseShardExport("leakdet-shard-export v99\n").ok());
  ShardExport shard;
  shard.tenant = "t";
  std::string wire = SerializeShardExport(shard);
  EXPECT_FALSE(ParseShardExport(wire.substr(0, wire.size() / 2)).ok());
}

TEST(PublishFederatedTest, GatesTokensBelowK) {
  ShardExport shard;
  shard.tenant = "acme";
  shard.candidates = match::SignatureSet(
      {Sig({"common=", "rare="}, "", 4), Sig({"rare="}, "", 2)});
  for (uint64_t device = 0; device < 5; ++device) {
    shard.witness.Observe("common=", device);
  }
  shard.witness.Observe("rare=", 1);

  PublishStats stats;
  match::SignatureSet published = PublishFederated(shard, 3, &stats);
  // "rare=" seen on one device: generalized out of the first signature and
  // the second signature collapses to empty and is dropped.
  ASSERT_EQ(published.size(), 1u);
  EXPECT_EQ(published.signatures()[0].tokens,
            (std::vector<std::string>{"common="}));
  EXPECT_EQ(stats.tokens_suppressed, 2u);
  EXPECT_EQ(stats.signatures_dropped, 1u);
  EXPECT_EQ(stats.signatures_published, 1u);
}

TEST(PublishFederatedTest, AbsorbsStrictSupersets) {
  ShardExport shard;
  shard.tenant = "acme";
  shard.candidates = match::SignatureSet(
      {Sig({"a", "b", "c"}, "h", 9), Sig({"a", "b"}, "h", 2),
       Sig({"a", "b", "c"}, "other", 1)});
  for (const char* token : {"a", "b", "c"}) {
    for (uint64_t device = 0; device < 4; ++device) {
      shard.witness.Observe(token, device);
    }
  }
  PublishStats stats;
  match::SignatureSet published = PublishFederated(shard, 2, &stats);
  // {a,b,c}@h is a strict superset of {a,b}@h -> absorbed (it can only
  // match a subset of what {a,b} matches). The other-scope triple stays.
  ASSERT_EQ(published.size(), 2u);
  EXPECT_EQ(stats.signatures_absorbed, 1u);
  std::set<std::string> scopes;
  for (const auto& sig : published.signatures()) scopes.insert(sig.host_scope);
  EXPECT_EQ(scopes, (std::set<std::string>{"h", "other"}));
  for (const auto& sig : published.signatures()) {
    if (sig.host_scope == "h") {
      EXPECT_EQ(sig.tokens, (std::vector<std::string>{"a", "b"}));
      // Absorber inherits the absorbed signature's larger cluster.
      EXPECT_EQ(sig.cluster_size, 9u);
    }
  }
}

TEST(PublishFederatedTest, IsAFixedPoint) {
  Rng rng(777);
  for (int trial = 0; trial < 40; ++trial) {
    ShardExport merged =
        *MergeAll({RandomExport(&rng), RandomExport(&rng)});
    for (size_t k : {1u, 2u, 4u}) {
      match::SignatureSet once = PublishFederated(merged, k);
      // Re-gate the published set (witness evidence unchanged).
      ShardExport again = merged;
      again.candidates = once;
      match::SignatureSet twice = PublishFederated(again, k);
      EXPECT_EQ(once.signatures(), twice.signatures())
          << "k=" << k << " trial " << trial;
    }
  }
}

TEST(ObserveDeviceTest, KeepsCapSmallestDistinct) {
  std::vector<uint64_t> devices;
  for (uint64_t hash : {9u, 3u, 7u, 3u, 1u}) {
    ObserveDevice(&devices, hash, 3);
  }
  EXPECT_EQ(devices, (std::vector<uint64_t>{1, 3, 7}));
}

}  // namespace
}  // namespace leakdet::federation
