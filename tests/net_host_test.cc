#include "net/host.h"

#include <gtest/gtest.h>

namespace leakdet::net {
namespace {

TEST(NormalizeHostTest, LowercasesAndTrims) {
  EXPECT_EQ(NormalizeHost("  AdMob.COM  "), "admob.com");
  EXPECT_EQ(NormalizeHost("example.com."), "example.com");
  EXPECT_EQ(NormalizeHost(""), "");
}

TEST(IsValidHostnameTest, AcceptsTypicalHosts) {
  EXPECT_TRUE(IsValidHostname("admob.com"));
  EXPECT_TRUE(IsValidHostname("spad.i-mobile.co.jp"));
  EXPECT_TRUE(IsValidHostname("a"));
  EXPECT_TRUE(IsValidHostname("t0.gstatic.com"));
}

TEST(IsValidHostnameTest, RejectsMalformed) {
  EXPECT_FALSE(IsValidHostname(""));
  EXPECT_FALSE(IsValidHostname("-leading.com"));
  EXPECT_FALSE(IsValidHostname("trailing-.com"));
  EXPECT_FALSE(IsValidHostname("sp ace.com"));
  EXPECT_FALSE(IsValidHostname("dots..com"));
  EXPECT_FALSE(IsValidHostname("under_score.com"));
  EXPECT_FALSE(IsValidHostname(std::string(64, 'a') + ".com"));  // long label
  // Total length > 253.
  std::string long_host;
  for (int i = 0; i < 70; ++i) long_host += "abc.";
  long_host += "com";
  EXPECT_FALSE(IsValidHostname(long_host));
}

TEST(HostLabelsTest, SplitsOnDots) {
  auto labels = HostLabels("ads.g.doubleclick.net");
  ASSERT_EQ(labels.size(), 4u);
  EXPECT_EQ(labels[0], "ads");
  EXPECT_EQ(labels[3], "net");
}

TEST(RegistrableDomainTest, GenericTlds) {
  EXPECT_EQ(RegistrableDomain("ads.g.doubleclick.net"), "doubleclick.net");
  EXPECT_EQ(RegistrableDomain("r.admob.com"), "admob.com");
  EXPECT_EQ(RegistrableDomain("api.ad-maker.info"), "ad-maker.info");
  EXPECT_EQ(RegistrableDomain("ads.mydas.mobi"), "mydas.mobi");
}

TEST(RegistrableDomainTest, JapaneseSecondLevelSuffixes) {
  EXPECT_EQ(RegistrableDomain("img.yahoo.co.jp"), "yahoo.co.jp");
  EXPECT_EQ(RegistrableDomain("spad.i-mobile.co.jp"), "i-mobile.co.jp");
  EXPECT_EQ(RegistrableDomain("a.b.example.ne.jp"), "example.ne.jp");
  // Plain .jp is a single-label suffix.
  EXPECT_EQ(RegistrableDomain("sp.adlantis.jp"), "adlantis.jp");
  EXPECT_EQ(RegistrableDomain("send.microad.jp"), "microad.jp");
}

TEST(RegistrableDomainTest, AlreadyRegistrable) {
  EXPECT_EQ(RegistrableDomain("doubleclick.net"), "doubleclick.net");
  EXPECT_EQ(RegistrableDomain("yahoo.co.jp"), "yahoo.co.jp");
}

TEST(RegistrableDomainTest, EdgeCases) {
  EXPECT_EQ(RegistrableDomain("localhost"), "localhost");
  EXPECT_EQ(RegistrableDomain("co.jp"), "co.jp");  // bare suffix unchanged
  EXPECT_EQ(RegistrableDomain(""), "");
  EXPECT_EQ(RegistrableDomain("UPPER.Example.COM"), "example.com");
}

}  // namespace
}  // namespace leakdet::net
