// Round-trip and behavioural property tests for the real codecs, swept over
// both compressor implementations and a corpus of adversarial inputs.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "compress/compressor.h"
#include "util/rng.h"

namespace leakdet::compress {
namespace {

std::vector<std::string> TestCorpus() {
  Rng rng(12345);
  std::vector<std::string> corpus = {
      "",
      "a",
      "ab",
      "aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa",
      "abcabcabcabcabcabcabcabcabcabcabc",
      "GET /gampad/ads?app_id=8e2f&sdk=2.1.3&fmt=banner320x50&dc_uid="
      "900150983cd24fb0d6963f7d28e17f72&r=11aabb22&ts=1327990001 HTTP/1.1",
      "POST /client/api.php HTTP/1.1\r\nHost: api.zqapk.com\r\n\r\n"
      "imei=352099001761481&iccid=8981100022313616843&operator=NTT%20DOCOMO",
      std::string(1, '\0'),
      std::string("\x00\x01\x02\x03\xff\xfe", 6),
  };
  // Random binary blobs of assorted sizes.
  for (size_t len : {3ul, 17ul, 64ul, 255ul, 256ul, 1000ul, 5000ul}) {
    std::string blob;
    for (size_t i = 0; i < len; ++i) {
      blob += static_cast<char>(rng.UniformInt(256));
    }
    corpus.push_back(std::move(blob));
  }
  // Highly repetitive (LZ-friendly) long input crossing the 32 KiB window.
  std::string rep;
  while (rep.size() < 70000) rep += "pattern-0123456789-";
  corpus.push_back(rep);
  // Low-entropy two-symbol random.
  corpus.push_back(rng.RandomString(20000, "ab"));
  return corpus;
}

class CodecRoundTrip : public ::testing::TestWithParam<const char*> {};

TEST_P(CodecRoundTrip, DecompressInvertsCompress) {
  auto compressor = MakeCompressor(GetParam());
  ASSERT_TRUE(compressor.ok());
  for (const std::string& input : TestCorpus()) {
    auto compressed = (*compressor)->Compress(input);
    ASSERT_TRUE(compressed.ok()) << "len=" << input.size();
    auto restored = (*compressor)->Decompress(*compressed);
    ASSERT_TRUE(restored.ok()) << "len=" << input.size();
    EXPECT_EQ(*restored, input) << "len=" << input.size();
  }
}

TEST_P(CodecRoundTrip, CompressedSizeMatchesCompressOutput) {
  auto compressor = MakeCompressor(GetParam());
  ASSERT_TRUE(compressor.ok());
  for (const std::string& input : TestCorpus()) {
    auto compressed = (*compressor)->Compress(input);
    ASSERT_TRUE(compressed.ok());
    EXPECT_EQ((*compressor)->CompressedSize(input), compressed->size());
  }
}

TEST_P(CodecRoundTrip, RepetitiveInputCompresses) {
  auto compressor = MakeCompressor(GetParam());
  ASSERT_TRUE(compressor.ok());
  std::string rep;
  while (rep.size() < 10000) rep += "0123456789abcdef";
  EXPECT_LT((*compressor)->CompressedSize(rep), rep.size() / 3);
}

TEST_P(CodecRoundTrip, RandomInputDoesNotExplode) {
  auto compressor = MakeCompressor(GetParam());
  ASSERT_TRUE(compressor.ok());
  Rng rng(777);
  std::string blob;
  for (int i = 0; i < 4096; ++i) blob += static_cast<char>(rng.UniformInt(256));
  // Incompressible data may expand, but only modestly (headers + code-width
  // overhead).
  EXPECT_LT((*compressor)->CompressedSize(blob), blob.size() * 3 / 2 + 512);
}

TEST_P(CodecRoundTrip, DeterministicOutput) {
  auto compressor = MakeCompressor(GetParam());
  ASSERT_TRUE(compressor.ok());
  std::string input = "determinism check determinism check determinism";
  auto a = (*compressor)->Compress(input);
  auto b = (*compressor)->Compress(input);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*a, *b);
}

TEST_P(CodecRoundTrip, RejectsCorruptMagic) {
  auto compressor = MakeCompressor(GetParam());
  ASSERT_TRUE(compressor.ok());
  auto compressed = (*compressor)->Compress("hello world hello world");
  ASSERT_TRUE(compressed.ok());
  std::string bad = *compressed;
  bad[0] = '?';
  EXPECT_FALSE((*compressor)->Decompress(bad).ok());
}

TEST_P(CodecRoundTrip, RejectsTruncation) {
  auto compressor = MakeCompressor(GetParam());
  ASSERT_TRUE(compressor.ok());
  std::string input =
      "some reasonably long input that compresses into multiple bytes "
      "some reasonably long input that compresses into multiple bytes";
  auto compressed = (*compressor)->Compress(input);
  ASSERT_TRUE(compressed.ok());
  // Cutting the payload must produce an error, never wrong data.
  std::string truncated = compressed->substr(0, compressed->size() / 2);
  auto restored = (*compressor)->Decompress(truncated);
  if (restored.ok()) {
    EXPECT_NE(*restored, input);  // at minimum it must not silently succeed
  }
}

INSTANTIATE_TEST_SUITE_P(Codecs, CodecRoundTrip,
                         ::testing::Values("lz77h", "lzw"));

TEST(MakeCompressorTest, KnownNames) {
  EXPECT_TRUE(MakeCompressor("lz77h").ok());
  EXPECT_TRUE(MakeCompressor("lzw").ok());
  EXPECT_TRUE(MakeCompressor("entropy").ok());
  EXPECT_FALSE(MakeCompressor("gzip").ok());
  EXPECT_FALSE(MakeCompressor("").ok());
}

TEST(EntropyEstimatorTest, IsSizeModelOnly) {
  EntropyEstimator est;
  EXPECT_FALSE(est.Compress("abc").ok());
  EXPECT_FALSE(est.Decompress("abc").ok());
}

TEST(EntropyEstimatorTest, UniformBytesNearEightBits) {
  EntropyEstimator est;
  std::string all;
  for (int rep = 0; rep < 16; ++rep) {
    for (int i = 0; i < 256; ++i) all += static_cast<char>(i);
  }
  size_t size = est.CompressedSize(all);
  // Entropy bound ~4096 bytes plus model cost.
  EXPECT_GE(size, all.size() * 95 / 100 - 900);
  EXPECT_LE(size, all.size() + 900);
}

TEST(EntropyEstimatorTest, ConstantInputTiny) {
  EntropyEstimator est;
  EXPECT_LT(est.CompressedSize(std::string(10000, 'x')), 64u);
}

TEST(Lz77Test, WindowLimitedMatchStillRoundTrips) {
  // Repeat distance larger than the 32 KiB window: must fall back to
  // literals/nearer matches but still round-trip.
  std::string head(40000, 'x');
  std::string input = "UNIQUE-MARKER-SEGMENT" + head + "UNIQUE-MARKER-SEGMENT";
  Lz77HuffmanCompressor codec;
  auto compressed = codec.Compress(input);
  ASSERT_TRUE(compressed.ok());
  auto restored = codec.Decompress(*compressed);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(*restored, input);
}

TEST(LzwTest, DictionaryGrowthAcrossWidths) {
  // Enough distinct digrams to push code width past 9 and 10 bits.
  Rng rng(31337);
  std::string input = rng.RandomString(30000, "abcdefghij");
  LzwCompressor codec;
  auto compressed = codec.Compress(input);
  ASSERT_TRUE(compressed.ok());
  auto restored = codec.Decompress(*compressed);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(*restored, input);
}

TEST(LzwTest, KwKwKPattern) {
  // "abababab..." exercises the classic cScSc decoder special case.
  std::string input;
  for (int i = 0; i < 100; ++i) input += "ab";
  LzwCompressor codec;
  auto compressed = codec.Compress(input);
  ASSERT_TRUE(compressed.ok());
  auto restored = codec.Decompress(*compressed);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(*restored, input);
}

}  // namespace
}  // namespace leakdet::compress
