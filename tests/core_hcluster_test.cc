#include "core/hcluster.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "util/rng.h"

namespace leakdet::core {
namespace {

// Builds a matrix with two tight groups ({0,1,2} and {3,4}) far apart.
DistanceMatrix TwoGroupMatrix() {
  DistanceMatrix m(5);
  for (size_t i = 0; i < 5; ++i) {
    for (size_t j = i + 1; j < 5; ++j) {
      bool same_group = (i < 3) == (j < 3);
      m.set(i, j, same_group ? 0.1 : 5.0);
    }
  }
  return m;
}

TEST(ClusterGroupAverageTest, EmptyAndSingleton) {
  EXPECT_EQ(ClusterGroupAverage(DistanceMatrix(0)).num_leaves(), 0u);
  Dendrogram one = ClusterGroupAverage(DistanceMatrix(1));
  EXPECT_EQ(one.num_leaves(), 1u);
  EXPECT_TRUE(one.merges().empty());
  auto clusters = one.CutAtHeight(100.0);
  ASSERT_EQ(clusters.size(), 1u);
  EXPECT_EQ(clusters[0], std::vector<int32_t>{0});
}

TEST(ClusterGroupAverageTest, ProducesNMinusOneMerges) {
  Dendrogram d = ClusterGroupAverage(TwoGroupMatrix());
  EXPECT_EQ(d.num_leaves(), 5u);
  EXPECT_EQ(d.merges().size(), 4u);
}

TEST(ClusterGroupAverageTest, MergeHeightsAreMonotone) {
  // Group-average linkage is reducible: no inversions.
  Rng rng(5);
  for (int trial = 0; trial < 10; ++trial) {
    size_t n = 2 + rng.UniformInt(30);
    DistanceMatrix m(n);
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = i + 1; j < n; ++j) {
        m.set(i, j, rng.UniformDouble() * 10);
      }
    }
    Dendrogram d = ClusterGroupAverage(m);
    for (size_t k = 1; k < d.merges().size(); ++k) {
      EXPECT_GE(d.merges()[k].height, d.merges()[k - 1].height - 1e-9);
    }
  }
}

TEST(ClusterGroupAverageTest, RecoversPlantedGroups) {
  Dendrogram d = ClusterGroupAverage(TwoGroupMatrix());
  auto clusters = d.CutAtHeight(1.0);
  ASSERT_EQ(clusters.size(), 2u);
  std::set<int32_t> first(clusters[0].begin(), clusters[0].end());
  std::set<int32_t> second(clusters[1].begin(), clusters[1].end());
  EXPECT_EQ(first, (std::set<int32_t>{0, 1, 2}));
  EXPECT_EQ(second, (std::set<int32_t>{3, 4}));
}

TEST(ClusterGroupAverageTest, FirstMergeIsClosestPair) {
  DistanceMatrix m(4);
  m.set(0, 1, 3.0);
  m.set(0, 2, 1.0);
  m.set(0, 3, 4.0);
  m.set(1, 2, 5.0);
  m.set(1, 3, 0.5);  // closest
  m.set(2, 3, 6.0);
  Dendrogram d = ClusterGroupAverage(m);
  const MergeStep& first = d.merges()[0];
  EXPECT_DOUBLE_EQ(first.height, 0.5);
  std::set<int32_t> merged{first.left, first.right};
  EXPECT_EQ(merged, (std::set<int32_t>{1, 3}));
}

TEST(ClusterGroupAverageTest, GroupAverageLanceWilliamsExact) {
  // 3 points: after merging {0,1}, d({0,1},2) must be the mean of d(0,2)
  // and d(1,2).
  DistanceMatrix m(3);
  m.set(0, 1, 0.2);
  m.set(0, 2, 2.0);
  m.set(1, 2, 4.0);
  Dendrogram d = ClusterGroupAverage(m);
  ASSERT_EQ(d.merges().size(), 2u);
  EXPECT_DOUBLE_EQ(d.merges()[0].height, 0.2);
  EXPECT_DOUBLE_EQ(d.merges()[1].height, 3.0);
}

TEST(ClusterGroupAverageTest, WeightedAverageOverClusterSizes) {
  // Cluster of size 2 vs singleton: group average weights by member count,
  // not by cluster count. 4 points on a line-ish configuration.
  DistanceMatrix m(4);
  m.set(0, 1, 0.1);   // merge first -> A = {0,1}
  m.set(0, 2, 1.0);
  m.set(1, 2, 2.0);
  m.set(0, 3, 10.0);
  m.set(1, 3, 10.0);
  m.set(2, 3, 10.0);
  Dendrogram d = ClusterGroupAverage(m);
  // Second merge: A with 2 at height (1.0 + 2.0)/2 = 1.5.
  EXPECT_DOUBLE_EQ(d.merges()[1].height, 1.5);
  // Third: {0,1,2} with 3 at (10+10+10)/3 = 10.
  EXPECT_DOUBLE_EQ(d.merges()[2].height, 10.0);
}

TEST(DendrogramTest, LeavesUnderInternalNodes) {
  Dendrogram d = ClusterGroupAverage(TwoGroupMatrix());
  // The root (last merge node) covers all leaves.
  int32_t root = static_cast<int32_t>(d.num_leaves() + d.merges().size() - 1);
  auto all = d.LeavesUnder(root);
  EXPECT_EQ(all, (std::vector<int32_t>{0, 1, 2, 3, 4}));
  // A leaf id is its own cover.
  EXPECT_EQ(d.LeavesUnder(2), std::vector<int32_t>{2});
}

TEST(DendrogramTest, CutAtHeightExtremes) {
  Dendrogram d = ClusterGroupAverage(TwoGroupMatrix());
  // Below every merge: all singletons.
  auto singletons = d.CutAtHeight(0.0);
  EXPECT_EQ(singletons.size(), 5u);
  // Above every merge: one cluster.
  auto everything = d.CutAtHeight(100.0);
  ASSERT_EQ(everything.size(), 1u);
  EXPECT_EQ(everything[0].size(), 5u);
}

TEST(DendrogramTest, CutIntoK) {
  Dendrogram d = ClusterGroupAverage(TwoGroupMatrix());
  EXPECT_EQ(d.CutIntoK(5).size(), 5u);
  EXPECT_EQ(d.CutIntoK(2).size(), 2u);
  EXPECT_EQ(d.CutIntoK(1).size(), 1u);
  EXPECT_EQ(d.CutIntoK(3).size(), 3u);
}

TEST(DendrogramTest, CutsPartitionLeaves) {
  Rng rng(7);
  size_t n = 20;
  DistanceMatrix m(n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      m.set(i, j, rng.UniformDouble());
    }
  }
  Dendrogram d = ClusterGroupAverage(m);
  for (double h : {0.0, 0.2, 0.4, 0.6, 1.0}) {
    auto clusters = d.CutAtHeight(h);
    std::set<int32_t> seen;
    for (const auto& c : clusters) {
      for (int32_t leaf : c) {
        EXPECT_TRUE(seen.insert(leaf).second) << "leaf duplicated";
      }
    }
    EXPECT_EQ(seen.size(), n);
  }
}

TEST(DendrogramTest, CopheneticDistanceProperties) {
  Dendrogram d = ClusterGroupAverage(TwoGroupMatrix());
  EXPECT_DOUBLE_EQ(d.CopheneticDistance(0, 0), 0.0);
  // Within-group cophenetic height is small; cross-group is the top merge.
  EXPECT_LT(d.CopheneticDistance(0, 1), 1.0);
  EXPECT_GT(d.CopheneticDistance(0, 4), 1.0);
  EXPECT_DOUBLE_EQ(d.CopheneticDistance(0, 4), d.CopheneticDistance(4, 0));
  // Ultrametric inequality: d(x,z) <= max(d(x,y), d(y,z)).
  double xy = d.CopheneticDistance(0, 3);
  double yz = d.CopheneticDistance(3, 4);
  double xz = d.CopheneticDistance(0, 4);
  EXPECT_LE(xz, std::max(xy, yz) + 1e-9);
}

TEST(DendrogramTest, MergeSizesAccumulate) {
  Dendrogram d = ClusterGroupAverage(TwoGroupMatrix());
  const auto& merges = d.merges();
  // Final merge covers all five leaves.
  EXPECT_EQ(merges.back().size, 5);
  int32_t total_leaf_draws = 0;
  for (const auto& m : merges) {
    EXPECT_GE(m.size, 2);
    total_leaf_draws += 0;  // structural check only
  }
  (void)total_leaf_draws;
}

}  // namespace
}  // namespace leakdet::core
