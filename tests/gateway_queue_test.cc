#include "gateway/bounded_queue.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace leakdet::gateway {
namespace {

TEST(BoundedQueueTest, FifoWithinCapacity) {
  BoundedQueue<int> q(4);
  EXPECT_TRUE(q.TryPush(1));
  EXPECT_TRUE(q.TryPush(2));
  EXPECT_TRUE(q.TryPush(3));
  int out = 0;
  EXPECT_TRUE(q.Pop(&out));
  EXPECT_EQ(out, 1);
  EXPECT_TRUE(q.Pop(&out));
  EXPECT_EQ(out, 2);
  EXPECT_TRUE(q.Pop(&out));
  EXPECT_EQ(out, 3);
}

TEST(BoundedQueueTest, TryPushRefusesWhenFull) {
  BoundedQueue<int> q(2);
  EXPECT_TRUE(q.TryPush(1));
  EXPECT_TRUE(q.TryPush(2));
  EXPECT_FALSE(q.TryPush(3));  // full: the drop-newest overload path
  int out = 0;
  EXPECT_TRUE(q.Pop(&out));
  EXPECT_TRUE(q.TryPush(3));  // room again
}

TEST(BoundedQueueTest, PushBlocksUntilRoom) {
  BoundedQueue<int> q(1);
  ASSERT_TRUE(q.TryPush(1));
  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    EXPECT_TRUE(q.Push(2));  // must wait for the Pop below
    pushed.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(pushed.load());
  int out = 0;
  EXPECT_TRUE(q.Pop(&out));
  producer.join();
  EXPECT_TRUE(pushed.load());
  EXPECT_TRUE(q.Pop(&out));
  EXPECT_EQ(out, 2);
}

TEST(BoundedQueueTest, CloseDrainsBacklogThenSignalsDone) {
  BoundedQueue<int> q(4);
  ASSERT_TRUE(q.TryPush(1));
  ASSERT_TRUE(q.TryPush(2));
  q.Close();
  EXPECT_FALSE(q.TryPush(3));  // producers refused after close
  EXPECT_FALSE(q.Push(3));
  int out = 0;
  EXPECT_TRUE(q.Pop(&out));  // backlog still delivered
  EXPECT_EQ(out, 1);
  EXPECT_TRUE(q.Pop(&out));
  EXPECT_EQ(out, 2);
  EXPECT_FALSE(q.Pop(&out));  // closed and drained
}

TEST(BoundedQueueTest, CloseWakesBlockedConsumers) {
  BoundedQueue<int> q(4);
  std::thread consumer([&] {
    int out = 0;
    EXPECT_FALSE(q.Pop(&out));  // wakes on Close with nothing delivered
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  q.Close();
  consumer.join();
}

TEST(BoundedQueueTest, PopBatchRespectsLimitAndOrder) {
  BoundedQueue<int> q(8);
  for (int i = 0; i < 6; ++i) ASSERT_TRUE(q.TryPush(i));
  std::vector<int> batch;
  EXPECT_EQ(q.PopBatch(&batch, 4), 4u);
  EXPECT_EQ(batch, (std::vector<int>{0, 1, 2, 3}));
  batch.clear();
  EXPECT_EQ(q.PopBatch(&batch, 4), 2u);
  EXPECT_EQ(batch, (std::vector<int>{4, 5}));
}

TEST(BoundedQueueTest, MultiProducerMultiConsumerLosesNothing) {
  constexpr int kProducers = 4;
  constexpr int kConsumers = 3;
  constexpr int kPerProducer = 5000;
  BoundedQueue<int> q(64);
  std::atomic<uint64_t> sum{0};
  std::atomic<uint64_t> received{0};
  std::vector<std::thread> consumers;
  for (int c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&] {
      std::vector<int> batch;
      while (true) {
        batch.clear();
        if (q.PopBatch(&batch, 16) == 0) return;
        for (int v : batch) {
          sum.fetch_add(static_cast<uint64_t>(v), std::memory_order_relaxed);
          received.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(q.Push(p * kPerProducer + i));
      }
    });
  }
  for (auto& t : producers) t.join();
  q.Close();
  for (auto& t : consumers) t.join();
  constexpr uint64_t kTotal = uint64_t{kProducers} * kPerProducer;
  EXPECT_EQ(received.load(), kTotal);
  EXPECT_EQ(sum.load(), kTotal * (kTotal - 1) / 2);
}

}  // namespace
}  // namespace leakdet::gateway
