#include "http/message.h"

#include <gtest/gtest.h>

namespace leakdet::http {
namespace {

TEST(HttpRequestTest, DefaultsAreSane) {
  HttpRequest req;
  EXPECT_EQ(req.target(), "/");
  EXPECT_EQ(req.version(), "HTTP/1.1");
  EXPECT_TRUE(req.headers().empty());
  EXPECT_TRUE(req.body().empty());
}

TEST(HttpRequestTest, RequestLine) {
  HttpRequest req("GET", "/ad?x=1");
  EXPECT_EQ(req.RequestLine(), "GET /ad?x=1 HTTP/1.1");
}

TEST(HttpRequestTest, HeaderLookupIsCaseInsensitive) {
  HttpRequest req("GET", "/");
  req.AddHeader("Content-Type", "text/plain");
  EXPECT_EQ(req.FindHeader("content-type").value(), "text/plain");
  EXPECT_EQ(req.FindHeader("CONTENT-TYPE").value(), "text/plain");
  EXPECT_FALSE(req.FindHeader("Content-Length").has_value());
}

TEST(HttpRequestTest, DuplicateHeadersFirstWins) {
  HttpRequest req("GET", "/");
  req.AddHeader("X-Tag", "one");
  req.AddHeader("X-Tag", "two");
  EXPECT_EQ(req.FindHeader("x-tag").value(), "one");
  EXPECT_EQ(req.headers().size(), 2u);
}

TEST(HttpRequestTest, RemoveHeaderRemovesAll) {
  HttpRequest req("GET", "/");
  req.AddHeader("A", "1");
  req.AddHeader("a", "2");
  req.AddHeader("B", "3");
  EXPECT_EQ(req.RemoveHeader("A"), 2u);
  EXPECT_EQ(req.headers().size(), 1u);
  EXPECT_EQ(req.headers()[0].name, "B");
}

TEST(HttpRequestTest, HostAndCookieAccessors) {
  HttpRequest req("GET", "/");
  EXPECT_EQ(req.host(), "");
  EXPECT_EQ(req.cookie(), "");
  req.AddHeader("Host", "r.admob.com");
  req.AddHeader("Cookie", "sid=abc123");
  EXPECT_EQ(req.host(), "r.admob.com");
  EXPECT_EQ(req.cookie(), "sid=abc123");
}

TEST(HttpRequestTest, SerializeWireFormat) {
  HttpRequest req("POST", "/api");
  req.AddHeader("Host", "api.example.com");
  req.AddHeader("Content-Length", "5");
  req.set_body("hello");
  EXPECT_EQ(req.Serialize(),
            "POST /api HTTP/1.1\r\n"
            "Host: api.example.com\r\n"
            "Content-Length: 5\r\n"
            "\r\n"
            "hello");
}

TEST(HttpRequestTest, SplitRequestTarget) {
  HttpRequest req("GET", "/p?q=1");
  Target t = req.SplitRequestTarget();
  EXPECT_EQ(t.path, "/p");
  EXPECT_EQ(t.raw_query, "q=1");
}

}  // namespace
}  // namespace leakdet::http
