#include "io/trace_io.h"

#include <gtest/gtest.h>

#include <cstdio>

namespace leakdet::io {
namespace {

sim::LabeledPacket MakeLp(uint32_t app, const std::string& host,
                          const std::string& rline, const std::string& cookie,
                          const std::string& body,
                          std::vector<core::SensitiveType> truth = {}) {
  sim::LabeledPacket lp;
  lp.packet.app_id = app;
  lp.packet.destination.host = host;
  lp.packet.destination.ip = *net::Ipv4Address::Parse("173.194.7.9");
  lp.packet.destination.port = 80;
  lp.packet.request_line = rline;
  lp.packet.cookie = cookie;
  lp.packet.body = body;
  lp.truth = std::move(truth);
  return lp;
}

std::vector<sim::LabeledPacket> SamplePackets() {
  return {
      MakeLp(1, "ad.doubleclick.net",
             "GET /gampad/ads?x=1&dc_uid=900150983cd2 HTTP/1.1",
             "sid=deadbeef", "", {core::SensitiveType::kAndroidIdMd5}),
      MakeLp(2, "api.zqapk.com", "POST /client/api.php HTTP/1.1", "",
             "imei=352099001761481&operator=NTT%20DOCOMO",
             {core::SensitiveType::kCarrier, core::SensitiveType::kImei}),
      MakeLp(3, "cdn.benign.example", "GET /assets/a1b2.png HTTP/1.1", "", ""),
  };
}

TEST(JsonlTest, RoundTrip) {
  auto packets = SamplePackets();
  std::string text = SerializeJsonl(packets);
  auto restored = ParseJsonl(text);
  ASSERT_TRUE(restored.ok());
  ASSERT_EQ(restored->size(), packets.size());
  for (size_t i = 0; i < packets.size(); ++i) {
    EXPECT_EQ((*restored)[i].packet, packets[i].packet) << i;
    EXPECT_EQ((*restored)[i].truth, packets[i].truth) << i;
  }
}

TEST(JsonlTest, EscapesSpecialCharacters) {
  auto lp = MakeLp(9, "x.com", "GET /\"q\\uote\" HTTP/1.1", "a=\t\n",
                   std::string("\x01\x7f\xff bin", 8));
  std::string text = SerializeJsonl({lp});
  // One line per packet despite embedded newline bytes.
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 1);
  auto restored = ParseJsonl(text);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ((*restored)[0].packet, lp.packet);
}

TEST(JsonlTest, SkipsBlankLines) {
  std::string text = SerializeJsonl(SamplePackets());
  text = "\n" + text + "\n\n";
  auto restored = ParseJsonl(text);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->size(), 3u);
}

TEST(JsonlTest, RejectsMalformedLine) {
  EXPECT_FALSE(ParseJsonl("{\"app\":1").ok());
  EXPECT_FALSE(ParseJsonl("not json at all").ok());
  EXPECT_FALSE(ParseJsonl("{\"unknown_key\":1}").ok());
  EXPECT_FALSE(ParseJsonl("{\"port\":99999}").ok());
  EXPECT_FALSE(ParseJsonl("{\"truth\":[42]}").ok());
}

TEST(JsonlTest, EmptyInputYieldsEmpty) {
  auto restored = ParseJsonl("");
  ASSERT_TRUE(restored.ok());
  EXPECT_TRUE(restored->empty());
}

TEST(CsvTest, RoundTrip) {
  auto packets = SamplePackets();
  std::string text = SerializeCsv(packets);
  auto restored = ParseCsv(text);
  ASSERT_TRUE(restored.ok());
  ASSERT_EQ(restored->size(), packets.size());
  for (size_t i = 0; i < packets.size(); ++i) {
    EXPECT_EQ((*restored)[i].packet, packets[i].packet) << i;
    EXPECT_EQ((*restored)[i].truth, packets[i].truth) << i;
  }
}

TEST(CsvTest, QuotesFieldsWithCommasQuotesNewlines) {
  auto lp = MakeLp(5, "x.com", "GET /a,b?c=\"d\" HTTP/1.1", "k=\"v\"",
                   "line1\r\nline2,with,commas");
  std::string text = SerializeCsv({lp});
  auto restored = ParseCsv(text);
  ASSERT_TRUE(restored.ok());
  ASSERT_EQ(restored->size(), 1u);
  EXPECT_EQ((*restored)[0].packet, lp.packet);
}

TEST(CsvTest, RejectsWrongHeader) {
  EXPECT_FALSE(ParseCsv("a,b,c\n1,2,3\n").ok());
  EXPECT_FALSE(ParseCsv("").ok());
}

TEST(CsvTest, RejectsWrongFieldCount) {
  std::string text = "app,host,ip,port,rline,cookie,body,truth\n1,2,3\n";
  EXPECT_FALSE(ParseCsv(text).ok());
}

TEST(CsvTest, RejectsBadIpOrPort) {
  std::string good = SerializeCsv(SamplePackets());
  std::string bad_ip = good;
  size_t pos = bad_ip.find("173.194.7.9");
  bad_ip.replace(pos, 11, "not-an-ip!!");
  EXPECT_FALSE(ParseCsv(bad_ip).ok());
}

TEST(FileIoTest, WriteReadRoundTrip) {
  std::string path = ::testing::TempDir() + "/leakdet_io_test.bin";
  std::string contents("binary\x00payload\xff", 15);
  ASSERT_TRUE(WriteFile(path, contents).ok());
  auto read = ReadFile(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, contents);
  std::remove(path.c_str());
}

TEST(FileIoTest, ReadMissingFileFails) {
  auto read = ReadFile("/nonexistent/path/definitely/missing.txt");
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kIOError);
}

TEST(TraceRoundTripTest, GeneratedTraceSurvivesJsonl) {
  sim::TrafficConfig config;
  config.seed = 3;
  config.scale = 0.01;
  sim::Trace trace = sim::GenerateTrace(config);
  std::string text = SerializeJsonl(trace.packets);
  auto restored = ParseJsonl(text);
  ASSERT_TRUE(restored.ok());
  ASSERT_EQ(restored->size(), trace.packets.size());
  for (size_t i = 0; i < trace.packets.size(); i += 11) {
    EXPECT_EQ((*restored)[i].packet, trace.packets[i].packet);
    EXPECT_EQ((*restored)[i].truth, trace.packets[i].truth);
  }
}

}  // namespace
}  // namespace leakdet::io
