#include "util/status.h"

#include <gtest/gtest.h>

#include "util/statusor.h"

namespace leakdet {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, NamedConstructorsCarryCodeAndMessage) {
  struct Case {
    Status status;
    StatusCode code;
  };
  const Case cases[] = {
      {Status::InvalidArgument("a"), StatusCode::kInvalidArgument},
      {Status::NotFound("b"), StatusCode::kNotFound},
      {Status::OutOfRange("c"), StatusCode::kOutOfRange},
      {Status::FailedPrecondition("d"), StatusCode::kFailedPrecondition},
      {Status::Corruption("e"), StatusCode::kCorruption},
      {Status::IOError("f"), StatusCode::kIOError},
      {Status::Unimplemented("g"), StatusCode::kUnimplemented},
      {Status::Internal("h"), StatusCode::kInternal},
  };
  for (const Case& c : cases) {
    EXPECT_FALSE(c.status.ok());
    EXPECT_EQ(c.status.code(), c.code);
    EXPECT_FALSE(c.status.message().empty());
  }
}

TEST(StatusTest, ToStringIncludesCodeNameAndMessage) {
  Status s = Status::NotFound("missing thing");
  EXPECT_EQ(s.ToString(), "NotFound: missing thing");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::Internal("x"));
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_EQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeToString(StatusCode::kCorruption), "Corruption");
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status UsesReturnIfError(int x) {
  LEAKDET_RETURN_IF_ERROR(FailIfNegative(x));
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(UsesReturnIfError(1).ok());
  EXPECT_EQ(UsesReturnIfError(-1).code(), StatusCode::kInvalidArgument);
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
  EXPECT_TRUE(v.status().ok());
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = Status::NotFound("nope");
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

TEST(StatusOrTest, OkStatusBecomesInternalError) {
  StatusOr<int> v = Status::OK();
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kInternal);
}

TEST(StatusOrTest, MoveOutValue) {
  StatusOr<std::string> v = std::string("hello");
  std::string taken = std::move(v).value();
  EXPECT_EQ(taken, "hello");
}

StatusOr<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

StatusOr<int> Quarter(int x) {
  LEAKDET_ASSIGN_OR_RETURN(int h, Half(x));
  LEAKDET_ASSIGN_OR_RETURN(int q, Half(h));
  return q;
}

TEST(StatusOrTest, AssignOrReturnChains) {
  StatusOr<int> q = Quarter(8);
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(*q, 2);
  EXPECT_FALSE(Quarter(6).ok());  // 6/2 = 3 is odd
}

}  // namespace
}  // namespace leakdet
