// Crash-recovery differential test: a store-backed training run is crashed
// at scripted points under a seeded fault schedule (short writes, fsync
// failures, torn tails, bit flips in the unsynced region), recovered, and
// after every crash the recovered SignatureServer must be *bit-identical*
// to a no-crash oracle fed exactly the records the log retained — and the
// log must never have lost an acknowledged-durable record.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/payload_check.h"
#include "core/signature_server.h"
#include "store/snapshot.h"
#include "store/store_manager.h"
#include "testing/packet_gen.h"
#include "testing/scripted_file.h"
#include "util/rng.h"

namespace leakdet::store {
namespace {

using leakdet::testing::GeneratePacket;
using leakdet::testing::ScriptedDir;
using leakdet::testing::StoreFaultProfile;

core::SignatureServer::Options SmallServerOptions() {
  core::SignatureServer::Options options;
  options.retrain_after = 10;
  options.pipeline.sample_size = 10;
  options.pipeline.normal_corpus_size = 20;
  options.pipeline.num_threads = 1;
  return options;
}

struct World {
  explicit World(uint64_t seed) : rng(seed) {
    core::DeviceTokens device;
    device.android_id = rng.RandomHex(16);
    device.imei = rng.RandomDigits(15);
    device.imsi = rng.RandomDigits(15);
    device.sim_serial = rng.RandomDigits(19);
    device.carrier = "NTT DOCOMO";
    tokens = {device.android_id, device.imei};
    oracle = std::make_unique<core::PayloadCheck>(
        std::vector<core::DeviceTokens>{device});
  }

  Rng rng;
  std::vector<std::string> tokens;
  std::unique_ptr<core::PayloadCheck> oracle;
};

/// The canonical bit-exact fingerprint of a server's training state — the
/// snapshot serialization itself, so "recovered == oracle" is one string
/// comparison over everything that matters.
std::string StateString(const core::SignatureServer& server) {
  SnapshotContents snapshot;
  snapshot.feed_version = server.feed_version();
  snapshot.new_suspicious = server.new_suspicious();
  snapshot.signatures = server.Feed();
  snapshot.suspicious = server.suspicious_pool();
  snapshot.normal = server.normal_pool();
  return SerializeSnapshot(snapshot);
}

/// The no-crash oracle: a fresh server fed packets[0..count) directly.
std::string OracleStateAt(World* world, const std::vector<core::HttpPacket>& packets,
                          size_t count) {
  core::SignatureServer server(world->oracle.get(), SmallServerOptions());
  for (size_t i = 0; i < count; ++i) server.Ingest(packets[i]);
  return StateString(server);
}

struct RunResult {
  size_t crashes_executed = 0;
  uint64_t final_version = 0;
};

/// Runs one full fault schedule: feed all packets through a store-backed
/// server, crashing at each scheduled packet index, recovering, and
/// differentially checking after every crash.
RunResult RunSchedule(uint64_t seed, const StoreFaultProfile& profile,
                      const std::vector<size_t>& crash_points) {
  World world(seed);
  // The packet tape is fixed up front: record sequence k always carries
  // packets[k-1], which is what makes the oracle prefix well-defined.
  std::vector<core::HttpPacket> packets;
  Rng traffic_rng(seed * 977 + 1);
  for (int i = 0; i < 120; ++i) {
    packets.push_back(GeneratePacket(&traffic_rng, world.tokens, 0.6));
  }

  ScriptedDir dir(seed, profile);
  RunResult result;
  size_t next_crash = 0;
  size_t cursor = 0;  // next packet index to feed

  while (true) {
    // (Re)open. Fault injection can fail the open itself (e.g. a scripted
    // directory-sync failure while creating the first segment) — retry, as
    // an operator restarting the process would.
    StoreOptions options;
    options.wal.sync_policy = SyncPolicy::kEveryN;
    options.wal.sync_every_n = 3;
    options.wal.segment_bytes = 2048;
    std::unique_ptr<StoreManager> store;
    for (int attempt = 0; attempt < 10 && store == nullptr; ++attempt) {
      auto opened = StoreManager::Open(&dir, "data", options);
      if (opened.ok()) store = std::move(*opened);
    }
    EXPECT_NE(store, nullptr) << "store would not open after 10 attempts";
    if (store == nullptr) return result;

    core::SignatureServer server(world.oracle.get(), SmallServerOptions());
    uint64_t last_published = 0;
    server.SetFeedObserver(
        [&](uint64_t version, const match::SignatureSet&) {
          last_published = version;
        });
    auto recovery = store->Recover(&server);
    EXPECT_TRUE(recovery.ok()) << recovery.status().message();
    if (!recovery.ok()) return result;

    // The log decides where the tape resumes: exactly the records it
    // retained are the packets the recovered server has seen.
    const uint64_t recovered = store->last_sequence();
    EXPECT_LE(recovered, packets.size());
    cursor = static_cast<size_t>(recovered);

    // Differential: recovered state == oracle fed the same prefix.
    EXPECT_EQ(StateString(server), OracleStateAt(&world, packets, cursor))
        << "recovered state diverged at sequence " << recovered;
    // Serve-before-replay: whatever epoch the server now holds has been
    // republished through the observer.
    if (server.feed_version() != 0) {
      EXPECT_EQ(last_published, server.feed_version());
    }

    // Feed until the next crash point (or the end of the tape).
    size_t stop = next_crash < crash_points.size()
                      ? crash_points[next_crash]
                      : packets.size();
    if (stop < cursor) stop = cursor;
    uint64_t durable_before_crash = 0;
    bool io_broke = false;
    while (cursor < stop) {
      FeedRecord record;
      record.feed_version = server.feed_version();
      record.sensitive = false;
      record.packet = packets[cursor];
      if (!store->Append(std::move(record)).ok()) {
        // The writer could not log the packet; the packet was NOT ingested,
        // so sequence<->packet correspondence is intact. Treat it as a
        // mid-run I/O crash.
        io_broke = true;
        break;
      }
      uint64_t before = server.feed_version();
      server.Ingest(packets[cursor]);
      ++cursor;
      if (server.feed_version() != before) {
        // Snapshot and compaction failures are survivable (the WAL still
        // has everything); recovery just replays more.
        if (store->WriteSnapshot(server).ok()) {
          auto compacted = store->Compact();
          EXPECT_TRUE(compacted.ok() ||
                      compacted.status().code() != StatusCode::kCorruption);
        }
      }
    }
    durable_before_crash = store->durable_sequence();

    if (cursor >= packets.size() && !io_broke) {
      // Tape done: final no-crash-oracle comparison.
      store->Sync();
      store.reset();
      EXPECT_EQ(StateString(server),
                OracleStateAt(&world, packets, packets.size()));
      result.final_version = server.feed_version();
      return result;
    }

    // Crash. Everything unsynced may tear or flip; everything acknowledged
    // durable must survive — checked on the next loop iteration.
    store.reset();
    dir.Crash();
    ++result.crashes_executed;
    if (!io_broke) ++next_crash;

    // No acknowledged record may be lost: re-scan and compare against the
    // pre-crash durable watermark.
    auto scan = ReplayWal(&dir, "data", 0, nullptr, /*repair=*/false);
    if (scan.ok()) {
      EXPECT_GE(scan->last_sequence, durable_before_crash)
          << "acknowledged-durable records lost in crash "
          << result.crashes_executed;
    }
  }
}

TEST(StoreRecoveryChaosTest, CleanCrashesRecoverBitIdentical) {
  // No write faults: crashes simply cut the unsynced tail whole.
  StoreFaultProfile profile;
  RunResult result = RunSchedule(11, profile, {13, 37, 58, 85, 110});
  EXPECT_EQ(result.crashes_executed, 5u);
  EXPECT_GT(result.final_version, 0u);
}

TEST(StoreRecoveryChaosTest, TornTailsAndBitFlipsRecoverBitIdentical) {
  StoreFaultProfile profile;
  profile.torn_tail = 1.0;  // every crash tears the unsynced suffix
  profile.bit_flip = 0.5;   // and half the time flips a surviving bit
  RunResult result = RunSchedule(23, profile, {17, 42, 71, 99});
  EXPECT_GE(result.crashes_executed, 4u);
}

TEST(StoreRecoveryChaosTest, WriteAndSyncFaultsRecoverBitIdentical) {
  StoreFaultProfile profile;
  profile.short_write = 0.05;
  profile.sync_fail = 0.05;
  profile.torn_tail = 0.7;
  profile.bit_flip = 0.3;
  RunResult result = RunSchedule(31, profile, {20, 55, 90});
  EXPECT_GE(result.crashes_executed, 3u);
}

TEST(StoreRecoveryChaosTest, SchedulesReplayDeterministically) {
  StoreFaultProfile profile;
  profile.short_write = 0.05;
  profile.sync_fail = 0.05;
  profile.torn_tail = 0.7;
  profile.bit_flip = 0.3;
  RunResult a = RunSchedule(47, profile, {25, 60});
  RunResult b = RunSchedule(47, profile, {25, 60});
  EXPECT_EQ(a.crashes_executed, b.crashes_executed);
  EXPECT_EQ(a.final_version, b.final_version);
}

}  // namespace
}  // namespace leakdet::store
