// Overflow-accounting tests for gateway::BoundedQueue and the gateway's two
// overload policies: kBlock must never drop (backpressure only), and
// kDropNewest must drop EXACTLY what an occupancy oracle predicts, down to
// the per-shard counters.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "gateway/bounded_queue.h"
#include "gateway/gateway.h"
#include "testing/packet_gen.h"
#include "util/rng.h"

namespace leakdet {
namespace {

TEST(BoundedQueueTest, TryPushFillsToExactlyCapacityThenRefuses) {
  gateway::BoundedQueue<int> queue(4);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(queue.TryPush(i)) << i;
  EXPECT_FALSE(queue.TryPush(99));  // the 5th is refused, not queued
  EXPECT_EQ(queue.size(), 4u);
  int out = -1;
  ASSERT_TRUE(queue.Pop(&out));
  EXPECT_EQ(out, 0);
  EXPECT_TRUE(queue.TryPush(5));  // one slot freed, one push accepted
  EXPECT_FALSE(queue.TryPush(6));
}

TEST(BoundedQueueTest, PushBlocksUntilAConsumerMakesRoom) {
  gateway::BoundedQueue<int> queue(1);
  ASSERT_TRUE(queue.TryPush(1));
  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    EXPECT_TRUE(queue.Push(2));  // must block: queue is full
    pushed.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(pushed.load()) << "Push returned while the queue was full";
  int out = 0;
  ASSERT_TRUE(queue.Pop(&out));
  producer.join();
  EXPECT_TRUE(pushed.load());
  ASSERT_TRUE(queue.Pop(&out));
  EXPECT_EQ(out, 2);
}

TEST(BoundedQueueTest, CloseDrainsAcceptedItemsButRefusesNewOnes) {
  gateway::BoundedQueue<int> queue(8);
  ASSERT_TRUE(queue.TryPush(1));
  ASSERT_TRUE(queue.TryPush(2));
  queue.Close();
  EXPECT_FALSE(queue.TryPush(3));
  EXPECT_FALSE(queue.Push(4));
  int out = 0;
  EXPECT_TRUE(queue.Pop(&out));
  EXPECT_TRUE(queue.Pop(&out));
  EXPECT_FALSE(queue.Pop(&out));  // closed and drained
}

core::HttpPacket MakeTestPacket(Rng* rng, uint32_t app_id) {
  core::HttpPacket packet = testing::GeneratePacket(rng, {}, 0.0);
  packet.app_id = app_id;
  return packet;
}

// kBlock is backpressure: whatever the producers throw at it, nothing is
// ever dropped and every accepted packet produces a verdict.
TEST(GatewayOverflowTest, BlockPolicyNeverDropsUnderProducerPressure) {
  gateway::GatewayOptions options;
  options.num_shards = 2;
  options.queue_capacity = 8;  // tiny: producers WILL hit the bound
  options.overload = gateway::OverloadPolicy::kBlock;
  gateway::DetectionGateway gateway(options);
  std::atomic<uint64_t> delivered{0};
  gateway.set_sink([&](const core::HttpPacket&, const gateway::Verdict&) {
    delivered.fetch_add(1);
  });
  ASSERT_TRUE(gateway.Start().ok());

  constexpr int kProducers = 4;
  constexpr int kPerProducer = 500;
  std::vector<std::thread> producers;
  std::atomic<uint64_t> accepted{0};
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      Rng rng(1000 + p);
      for (int i = 0; i < kPerProducer; ++i) {
        if (gateway.Submit(rng.UniformInt(64),
                           MakeTestPacket(&rng, p * kPerProducer + i))) {
          accepted.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : producers) t.join();
  gateway.Stop();

  EXPECT_EQ(accepted.load(), kProducers * kPerProducer);
  EXPECT_EQ(gateway.dropped(), 0u);
  EXPECT_EQ(gateway.processed(), kProducers * kPerProducer);
  EXPECT_EQ(delivered.load(), kProducers * kPerProducer);
}

// kDropNewest on an unstarted gateway: acceptance is a pure function of
// queue occupancy, so the accounting oracle is exact, not approximate.
TEST(GatewayOverflowTest, DropNewestAccountingMatchesTheOccupancyOracle) {
  gateway::GatewayOptions options;
  options.num_shards = 1;
  options.queue_capacity = 16;
  options.overload = gateway::OverloadPolicy::kDropNewest;
  gateway::DetectionGateway gateway(options);
  std::atomic<uint64_t> delivered{0};
  gateway.set_sink([&](const core::HttpPacket&, const gateway::Verdict&) {
    delivered.fetch_add(1);
  });

  Rng rng(7);
  constexpr uint64_t kBurst = 50;
  uint64_t accepted = 0;
  for (uint64_t i = 0; i < kBurst; ++i) {
    if (gateway.Submit(0, MakeTestPacket(&rng, static_cast<uint32_t>(i)))) {
      ++accepted;
    }
  }
  EXPECT_EQ(accepted, 16u);  // exactly capacity
  EXPECT_EQ(gateway.dropped(), kBurst - 16);
  EXPECT_EQ(gateway.submitted(), 16u);
  EXPECT_EQ(gateway.metrics()->GetCounter("gateway.shard0.dropped")->Value(),
            kBurst - 16);

  // Drain: every accepted packet still produces a verdict.
  ASSERT_TRUE(gateway.Start().ok());
  gateway.Stop();
  EXPECT_EQ(gateway.processed(), 16u);
  EXPECT_EQ(delivered.load(), 16u);
  EXPECT_EQ(gateway.submitted() + gateway.dropped(), kBurst);
}

// Multi-shard variant: the per-shard drop counters must agree with a
// shard_of() precomputation, packet by packet.
TEST(GatewayOverflowTest, PerShardDropCountersMatchARoutingOracle) {
  gateway::GatewayOptions options;
  options.num_shards = 4;
  options.queue_capacity = 4;
  options.overload = gateway::OverloadPolicy::kDropNewest;
  gateway::DetectionGateway gateway(options);
  gateway.set_sink([](const core::HttpPacket&, const gateway::Verdict&) {});

  Rng rng(11);
  std::vector<uint64_t> expected_accepted(4, 0);
  std::vector<uint64_t> expected_dropped(4, 0);
  uint64_t accepted = 0;
  for (int i = 0; i < 200; ++i) {
    uint64_t device_id = rng.UniformInt(256);
    size_t shard = gateway.shard_of(device_id);
    bool will_accept = expected_accepted[shard] < options.queue_capacity;
    if (will_accept) {
      ++expected_accepted[shard];
    } else {
      ++expected_dropped[shard];
    }
    EXPECT_EQ(gateway.Submit(device_id, MakeTestPacket(&rng, i)),
              will_accept)
        << "packet " << i << " shard " << shard;
    accepted += will_accept ? 1 : 0;
  }
  for (size_t shard = 0; shard < 4; ++shard) {
    std::string prefix = "gateway.shard" + std::to_string(shard) + ".";
    EXPECT_EQ(gateway.metrics()->GetCounter(prefix + "enqueued")->Value(),
              expected_accepted[shard])
        << prefix;
    EXPECT_EQ(gateway.metrics()->GetCounter(prefix + "dropped")->Value(),
              expected_dropped[shard])
        << prefix;
  }
  EXPECT_EQ(gateway.submitted(), accepted);
  ASSERT_TRUE(gateway.Start().ok());
  gateway.Stop();
  EXPECT_EQ(gateway.processed(), accepted);
}

}  // namespace
}  // namespace leakdet
