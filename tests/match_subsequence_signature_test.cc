#include "match/subsequence_signature.h"

#include <gtest/gtest.h>

namespace leakdet::match {
namespace {

SubsequenceSignature MakeSig(std::string id, std::vector<std::string> tokens,
                             std::string host = "") {
  SubsequenceSignature sig;
  sig.id = std::move(id);
  sig.tokens = std::move(tokens);
  sig.host_scope = std::move(host);
  sig.cluster_size = 2;
  return sig;
}

TEST(SubsequenceSignatureTest, RequiresOrder) {
  SubsequenceSignature sig = MakeSig("q0", {"first", "second"});
  EXPECT_TRUE(sig.Matches("x first y second z"));
  EXPECT_FALSE(sig.Matches("x second y first z"));  // wrong order
  EXPECT_FALSE(sig.Matches("x first y"));           // missing token
}

TEST(SubsequenceSignatureTest, NonOverlappingOccurrences) {
  // "abab" then "ab": the second token must start after the first ends.
  SubsequenceSignature sig = MakeSig("q0", {"abab", "ab"});
  EXPECT_FALSE(sig.Matches("abab"));     // overlap would be needed
  EXPECT_TRUE(sig.Matches("ababab"));    // "abab" then "ab" at offset 4
  EXPECT_TRUE(sig.Matches("abab ab"));
}

TEST(SubsequenceSignatureTest, RepeatedToken) {
  SubsequenceSignature sig = MakeSig("q0", {"dup!", "dup!"});
  EXPECT_FALSE(sig.Matches("one dup! only"));
  EXPECT_TRUE(sig.Matches("dup! and dup! again"));
}

TEST(SubsequenceSignatureTest, EmptyTokenListNeverMatches) {
  SubsequenceSignature sig = MakeSig("q0", {});
  EXPECT_FALSE(sig.Matches("anything"));
}

TEST(SubsequenceSignatureSetTest, PrefilterPlusOrderCheck) {
  SubsequenceSignatureSet set({MakeSig("q0", {"GET /a?", "&uid=42&"}),
                               MakeSig("q1", {"&uid=42&", "GET /a?"})});
  auto hits = set.Match("GET /a?x=1&uid=42&r=7 HTTP/1.1");
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0], 0u);  // q1 requires reversed order
}

TEST(SubsequenceSignatureSetTest, HostScope) {
  SubsequenceSignatureSet set({MakeSig("q0", {"tok1", "tok2"}, "admob.com")});
  EXPECT_TRUE(set.Matches("tok1 tok2", "admob.com"));
  EXPECT_FALSE(set.Matches("tok1 tok2", "other.net"));
  EXPECT_TRUE(set.Matches("tok1 tok2", ""));  // scoping disabled by caller
}

TEST(SubsequenceSignatureSetTest, EmptySet) {
  SubsequenceSignatureSet set;
  EXPECT_FALSE(set.Matches("anything"));
}

TEST(SubsequenceSignatureSetTest, CopyRebuildsIndex) {
  SubsequenceSignatureSet original({MakeSig("q0", {"aaa!", "bbb!"})});
  SubsequenceSignatureSet copy(original);
  EXPECT_TRUE(copy.Matches("aaa! bbb!"));
  SubsequenceSignatureSet assigned;
  assigned = original;
  EXPECT_TRUE(assigned.Matches("aaa! bbb!"));
}

TEST(SubsequenceSignatureSetTest, SerializeRoundTrip) {
  SubsequenceSignatureSet original(
      {MakeSig("q0", {"GET /x?", std::string("\x00\xff", 2)}, "x.com"),
       MakeSig("q1", {"alpha"})});
  auto restored = SubsequenceSignatureSet::Deserialize(original.Serialize());
  ASSERT_TRUE(restored.ok());
  ASSERT_EQ(restored->size(), 2u);
  EXPECT_EQ(restored->signatures()[0], original.signatures()[0]);
  EXPECT_EQ(restored->signatures()[1], original.signatures()[1]);
}

TEST(SubsequenceSignatureSetTest, DeserializeRejectsGarbage) {
  EXPECT_FALSE(SubsequenceSignatureSet::Deserialize("nope\n").ok());
  EXPECT_FALSE(SubsequenceSignatureSet::Deserialize(
                   "leakdet-subseq-signatures v1\nsignature q0\n")
                   .ok());
  EXPECT_FALSE(SubsequenceSignatureSet::Deserialize(
                   "leakdet-subseq-signatures v1\nsignature q0\ntoken zz\nend\n")
                   .ok());
}

}  // namespace
}  // namespace leakdet::match
