#include "sim/population.h"

#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "sim/paper_tables.h"

namespace leakdet::sim {
namespace {

class PopulationTest : public ::testing::Test {
 protected:
  PopulationTest() {
    Rng rng(11);
    catalog_ = DefaultCatalog();
    auto lt = MakeLongTailLeakyServices(&rng);
    catalog_.insert(catalog_.end(), lt.begin(), lt.end());
    background_ = MakeLongTailNormalServices(&rng, 500);
    pop_ = GeneratePopulation(&rng, catalog_, background_, {});
  }

  std::vector<ServiceSpec> catalog_;
  std::vector<ServiceSpec> background_;
  Population pop_;
};

TEST_F(PopulationTest, AppCountMatchesPaper) {
  EXPECT_EQ(pop_.apps.size(), static_cast<size_t>(kPaperTotalApps));
}

TEST_F(PopulationTest, PermissionCombosMatchTableOneExactly) {
  auto counts = pop_.PermissionComboCounts();
  ASSERT_EQ(counts.size(), 6u);
  for (size_t i = 0; i < kPaperTable1.size(); ++i) {
    EXPECT_EQ(counts[i], kPaperTable1[i].apps) << "row " << i;
  }
  EXPECT_EQ(counts[5], kPaperTable1OtherApps);
}

TEST_F(PopulationTest, EveryAppHasInternet) {
  for (const App& app : pop_.apps) {
    EXPECT_TRUE(app.permissions.Has(kInternet));
  }
}

TEST_F(PopulationTest, DestinationBudgetsMatchFigureTwoShape) {
  double total = 0;
  int ones = 0, up_to_10 = 0, up_to_16 = 0, max_d = 0;
  for (const App& app : pop_.apps) {
    EXPECT_GE(app.dest_budget, 1);
    total += app.dest_budget;
    if (app.dest_budget == 1) ++ones;
    if (app.dest_budget <= 10) ++up_to_10;
    if (app.dest_budget <= 16) ++up_to_16;
    max_d = std::max(max_d, app.dest_budget);
  }
  double n = static_cast<double>(pop_.apps.size());
  EXPECT_NEAR(total / n, kPaperMeanDests, 1.5);
  EXPECT_NEAR(ones / n, kPaperAppsWithOneDest / 1188.0, 0.03);
  EXPECT_NEAR(up_to_10 / n, kPaperFracUpTo10Dests, 0.06);
  EXPECT_NEAR(up_to_16 / n, kPaperFracUpTo16Dests, 0.06);
  EXPECT_EQ(max_d, kPaperMaxDests);
}

TEST_F(PopulationTest, ServiceAssignmentsApproximateTableTwoAppCounts) {
  std::vector<int> apps_per_service(catalog_.size(), 0);
  for (const App& app : pop_.apps) {
    for (size_t s : app.services) apps_per_service[s]++;
  }
  for (size_t s = 0; s < catalog_.size(); ++s) {
    if (catalog_[s].target_apps == 0) continue;
    // Within 25% or 3 apps of the target (capacity constraints may bind).
    double target = catalog_[s].target_apps;
    EXPECT_LE(apps_per_service[s], target + std::max(3.0, 0.25 * target))
        << catalog_[s].name;
    EXPECT_GE(apps_per_service[s], target - std::max(3.0, 0.25 * target))
        << catalog_[s].name;
  }
}

TEST_F(PopulationTest, NoAppExceedsDestinationBudget) {
  for (const App& app : pop_.apps) {
    size_t used = app.services.size() + app.background_hosts.size();
    EXPECT_LE(used, static_cast<size_t>(app.dest_budget)) << app.id;
  }
}

TEST_F(PopulationTest, NoDuplicateServicesPerApp) {
  for (const App& app : pop_.apps) {
    std::set<size_t> unique(app.services.begin(), app.services.end());
    EXPECT_EQ(unique.size(), app.services.size());
    std::set<size_t> bg(app.background_hosts.begin(),
                        app.background_hosts.end());
    EXPECT_EQ(bg.size(), app.background_hosts.size());
  }
}

TEST_F(PopulationTest, PhonePermissionRespected) {
  for (const App& app : pop_.apps) {
    for (size_t s : app.services) {
      if (catalog_[s].requires_phone_permission) {
        EXPECT_TRUE(app.permissions.CanReadPhoneIds())
            << "app " << app.id << " got " << catalog_[s].name;
      }
    }
  }
}

TEST_F(PopulationTest, SharedPoolsBoundAppSpread) {
  // All services with the same app_pool_id must draw from a bounded app set.
  std::map<int, std::set<uint32_t>> pool_apps;
  std::map<int, int> pool_size;
  for (const App& app : pop_.apps) {
    for (size_t s : app.services) {
      if (catalog_[s].app_pool_id >= 0) {
        pool_apps[catalog_[s].app_pool_id].insert(app.id);
        pool_size[catalog_[s].app_pool_id] = catalog_[s].app_pool_size;
      }
    }
  }
  for (auto& [pool, apps] : pool_apps) {
    EXPECT_LE(apps.size(), static_cast<size_t>(pool_size[pool]))
        << "pool " << pool;
  }
}

TEST_F(PopulationTest, AppMetadataPopulated) {
  std::set<std::string> packages;
  for (const App& app : pop_.apps) {
    EXPECT_FALSE(app.package.empty());
    EXPECT_EQ(app.app_key.size(), 16u);
    EXPECT_GT(app.activity, 0.0);
    packages.insert(app.package);
  }
  EXPECT_EQ(packages.size(), pop_.apps.size());  // unique package names
}

TEST(PopulationScaleTest, ScalesDown) {
  Rng rng(13);
  auto catalog = DefaultCatalog();
  auto background = MakeLongTailNormalServices(&rng, 50);
  PopulationConfig config;
  config.app_scale = 0.05;
  Population pop = GeneratePopulation(&rng, catalog, background, config);
  EXPECT_GT(pop.apps.size(), 20u);
  EXPECT_LT(pop.apps.size(), 120u);
}

TEST(PopulationDeterminismTest, SameSeedSamePopulation) {
  auto make = [] {
    Rng rng(77);
    auto catalog = DefaultCatalog();
    auto background = MakeLongTailNormalServices(&rng, 100);
    return GeneratePopulation(&rng, catalog, background, {});
  };
  Population a = make();
  Population b = make();
  ASSERT_EQ(a.apps.size(), b.apps.size());
  for (size_t i = 0; i < a.apps.size(); ++i) {
    EXPECT_EQ(a.apps[i].package, b.apps[i].package);
    EXPECT_EQ(a.apps[i].services, b.apps[i].services);
    EXPECT_EQ(a.apps[i].dest_budget, b.apps[i].dest_budget);
  }
}

}  // namespace
}  // namespace leakdet::sim
