#include "util/strutil.h"

#include <gtest/gtest.h>

namespace leakdet {
namespace {

TEST(StrutilTest, AsciiCaseConversion) {
  EXPECT_EQ(AsciiToLower("AbC-09_z"), "abc-09_z");
  EXPECT_EQ(AsciiToUpper("AbC-09_z"), "ABC-09_Z");
  EXPECT_EQ(AsciiToLower(""), "");
}

TEST(StrutilTest, EqualsIgnoreCase) {
  EXPECT_TRUE(EqualsIgnoreCase("Content-Length", "content-length"));
  EXPECT_TRUE(EqualsIgnoreCase("", ""));
  EXPECT_FALSE(EqualsIgnoreCase("a", "ab"));
  EXPECT_FALSE(EqualsIgnoreCase("abc", "abd"));
}

TEST(StrutilTest, TrimWhitespace) {
  EXPECT_EQ(TrimWhitespace("  x \t\r\n"), "x");
  EXPECT_EQ(TrimWhitespace("x"), "x");
  EXPECT_EQ(TrimWhitespace("   "), "");
  EXPECT_EQ(TrimWhitespace(""), "");
  EXPECT_EQ(TrimWhitespace(" a b "), "a b");
}

TEST(StrutilTest, TrimAllWhitespaceReturnsViewIntoInput) {
  // Regression: all-whitespace input used to return a default-constructed
  // view (data() == nullptr) instead of an empty view into `s`, tripping
  // callers that compute offsets with pointer arithmetic against s.data().
  const std::string_view s = " \t\r\n ";
  std::string_view trimmed = TrimWhitespace(s);
  EXPECT_TRUE(trimmed.empty());
  ASSERT_NE(trimmed.data(), nullptr);
  EXPECT_GE(trimmed.data(), s.data());
  EXPECT_LE(trimmed.data(), s.data() + s.size());

  std::string_view empty_trimmed = TrimWhitespace(std::string_view("x", 0));
  EXPECT_TRUE(empty_trimmed.empty());
  EXPECT_NE(empty_trimmed.data(), nullptr);
}

TEST(StrutilTest, SplitPreservesEmptyFields) {
  auto parts = Split("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
}

TEST(StrutilTest, SplitEdgeCases) {
  EXPECT_EQ(Split("", ',').size(), 1u);
  EXPECT_EQ(Split(",", ',').size(), 2u);
  EXPECT_EQ(Split("abc", ',').size(), 1u);
}

TEST(StrutilTest, JoinRoundTripsSplit) {
  std::vector<std::string_view> parts = {"a", "", "b"};
  EXPECT_EQ(Join(parts, ","), "a,,b");
  EXPECT_EQ(Join(std::vector<std::string>{}, ","), "");
  EXPECT_EQ(Join(std::vector<std::string>{"one"}, ", "), "one");
}

TEST(StrutilTest, HexEncode) {
  EXPECT_EQ(HexEncode(std::string_view("\x00\xff\x10", 3)), "00ff10");
  EXPECT_EQ(HexEncode(""), "");
}

TEST(StrutilTest, HexDecodeValid) {
  auto decoded = HexDecode("00FF10");
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, std::string("\x00\xff\x10", 3));
}

TEST(StrutilTest, HexDecodeRejectsOddLength) {
  EXPECT_FALSE(HexDecode("abc").ok());
}

TEST(StrutilTest, HexDecodeRejectsNonHex) {
  EXPECT_FALSE(HexDecode("zz").ok());
}

TEST(StrutilTest, HexRoundTripAllBytes) {
  std::string all;
  for (int i = 0; i < 256; ++i) all += static_cast<char>(i);
  auto decoded = HexDecode(HexEncode(all));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, all);
}

TEST(StrutilTest, ParseUint64Valid) {
  EXPECT_EQ(*ParseUint64("0"), 0u);
  EXPECT_EQ(*ParseUint64("18446744073709551615"), UINT64_MAX);
}

TEST(StrutilTest, ParseUint64Invalid) {
  EXPECT_FALSE(ParseUint64("").ok());
  EXPECT_FALSE(ParseUint64("-1").ok());
  EXPECT_FALSE(ParseUint64("12x").ok());
  EXPECT_FALSE(ParseUint64(" 1").ok());
}

TEST(StrutilTest, ParseUint64Overflow) {
  auto v = ParseUint64("18446744073709551616");  // 2^64
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kOutOfRange);
}

TEST(StrutilTest, Contains) {
  EXPECT_TRUE(Contains("hello world", "lo w"));
  EXPECT_TRUE(Contains("abc", ""));
  EXPECT_FALSE(Contains("abc", "abcd"));
}

TEST(StrutilTest, IsAllDigits) {
  EXPECT_TRUE(IsAllDigits("0123456789"));
  EXPECT_FALSE(IsAllDigits(""));
  EXPECT_FALSE(IsAllDigits("12a"));
  EXPECT_FALSE(IsAllDigits("1 2"));
}

}  // namespace
}  // namespace leakdet
