#include "store/snapshot.h"

#include <gtest/gtest.h>

#include <string>

#include "testing/scripted_file.h"

namespace leakdet::store {
namespace {

core::HttpPacket PoolPacket(uint32_t app_id, const std::string& marker) {
  core::HttpPacket packet;
  packet.app_id = app_id;
  packet.destination.port = 80;
  packet.destination.host = "api.example.net";
  packet.request_line = "POST /v1/collect HTTP/1.1";
  packet.cookie = "uid=" + marker;
  packet.body = "payload=\"" + marker + "\"\nline2\ttab";
  return packet;
}

SnapshotContents TestSnapshot() {
  SnapshotContents snapshot;
  snapshot.feed_version = 3;
  snapshot.last_sequence = 1234;
  snapshot.new_suspicious = 17;
  snapshot.params = "sample_size=300 cut_height=2.0 compressor=lzw";
  snapshot.signatures = "signature-set-bytes\nline two\n";
  for (uint32_t i = 0; i < 5; ++i) {
    snapshot.suspicious.push_back(PoolPacket(i, "sus" + std::to_string(i)));
  }
  for (uint32_t i = 0; i < 3; ++i) {
    snapshot.normal.push_back(PoolPacket(100 + i, "norm" + std::to_string(i)));
  }
  return snapshot;
}

TEST(SnapshotTest, SerializeParseRoundTrips) {
  SnapshotContents snapshot = TestSnapshot();
  StatusOr<SnapshotContents> parsed = ParseSnapshot(SerializeSnapshot(snapshot));
  ASSERT_TRUE(parsed.ok()) << parsed.status().message();
  EXPECT_EQ(parsed->feed_version, snapshot.feed_version);
  EXPECT_EQ(parsed->last_sequence, snapshot.last_sequence);
  EXPECT_EQ(parsed->new_suspicious, snapshot.new_suspicious);
  EXPECT_EQ(parsed->params, snapshot.params);
  EXPECT_EQ(parsed->signatures, snapshot.signatures);
  ASSERT_EQ(parsed->suspicious.size(), snapshot.suspicious.size());
  ASSERT_EQ(parsed->normal.size(), snapshot.normal.size());
  for (size_t i = 0; i < snapshot.suspicious.size(); ++i) {
    EXPECT_EQ(parsed->suspicious[i], snapshot.suspicious[i]);
  }
  for (size_t i = 0; i < snapshot.normal.size(); ++i) {
    EXPECT_EQ(parsed->normal[i], snapshot.normal[i]);
  }
  // Bit-identical re-serialization: the format is canonical, which is what
  // lets the crash-recovery differential compare states by string equality.
  EXPECT_EQ(SerializeSnapshot(*parsed), SerializeSnapshot(snapshot));
}

TEST(SnapshotTest, DigestCatchesEveryByteFlip) {
  const std::string text = SerializeSnapshot(TestSnapshot());
  size_t undetected = 0;
  for (size_t i = 0; i < text.size(); ++i) {
    std::string bad = text;
    bad[i] = static_cast<char>(bad[i] ^ 0x01);
    if (ParseSnapshot(bad).ok()) ++undetected;
  }
  EXPECT_EQ(undetected, 0u);
}

TEST(SnapshotTest, TruncationsAreRejected) {
  const std::string text = SerializeSnapshot(TestSnapshot());
  for (size_t len : {size_t{0}, size_t{10}, text.size() / 2, text.size() - 1}) {
    EXPECT_FALSE(ParseSnapshot(std::string_view(text).substr(0, len)).ok())
        << "prefix length " << len;
  }
}

TEST(SnapshotTest, FileNameRoundTrips) {
  uint64_t version = 0, sequence = 0;
  ASSERT_TRUE(
      ParseSnapshotFileName(SnapshotFileName(7, 123456), &version, &sequence));
  EXPECT_EQ(version, 7u);
  EXPECT_EQ(sequence, 123456u);
  EXPECT_FALSE(ParseSnapshotFileName("snap-x.snap", &version, &sequence));
  EXPECT_FALSE(ParseSnapshotFileName("wal-00000000000000000001.log", &version,
                                     &sequence));
}

TEST(SnapshotTest, LoadNewestSkipsDamagedSnapshots) {
  leakdet::testing::ScriptedDir dir;
  ASSERT_TRUE(dir.CreateDir("data").ok());

  SnapshotContents old_snapshot = TestSnapshot();
  old_snapshot.feed_version = 1;
  old_snapshot.last_sequence = 100;
  ASSERT_TRUE(WriteSnapshotFile(&dir, "data", old_snapshot).ok());

  SnapshotContents new_snapshot = TestSnapshot();
  new_snapshot.feed_version = 2;
  new_snapshot.last_sequence = 200;
  ASSERT_TRUE(WriteSnapshotFile(&dir, "data", new_snapshot).ok());

  // Newest wins while both are intact.
  std::string chosen;
  auto loaded = LoadNewestSnapshot(&dir, "data", &chosen);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->feed_version, 2u);
  EXPECT_EQ(chosen, SnapshotFileName(2, 200));

  // Damage the newest: recovery falls back to the older valid one.
  const std::string newest_path = "data/" + SnapshotFileName(2, 200);
  auto size = dir.FileSize(newest_path);
  ASSERT_TRUE(size.ok());
  ASSERT_TRUE(dir.Truncate(newest_path, *size - 5).ok());
  size_t skipped = 0;
  loaded = LoadNewestSnapshot(&dir, "data", &chosen, &skipped);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->feed_version, 1u);
  EXPECT_EQ(skipped, 1u);

  // No valid snapshot at all: NotFound, not an error recovery can't tell
  // apart from real damage.
  ASSERT_TRUE(dir.Remove(newest_path).ok());
  ASSERT_TRUE(dir.Remove("data/" + SnapshotFileName(1, 100)).ok());
  loaded = LoadNewestSnapshot(&dir, "data");
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
}

TEST(SnapshotTest, WriteIsCrashAtomic) {
  // Crash between the temp write and the rename: the directory reverts to
  // its durable table and no half-written snapshot is visible.
  leakdet::testing::ScriptedDir dir;
  ASSERT_TRUE(dir.CreateDir("data").ok());
  SnapshotContents snapshot = TestSnapshot();
  ASSERT_TRUE(WriteSnapshotFile(&dir, "data", snapshot).ok());
  ASSERT_TRUE(dir.SyncDir("data").ok());

  // Start a second snapshot write by hand, stopping before the rename.
  SnapshotContents next = TestSnapshot();
  next.feed_version = 9;
  const std::string tmp = "data/." + SnapshotFileName(9, 1234) + ".tmp";
  auto file = dir.OpenAppend(tmp);
  ASSERT_TRUE(file.ok());
  ASSERT_TRUE((*file)->Append(SerializeSnapshot(next)).ok());
  dir.Crash();

  // The unrenamed temp file vanished; the completed snapshot survived.
  EXPECT_FALSE(dir.Exists(tmp));
  auto loaded = LoadNewestSnapshot(&dir, "data");
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->feed_version, TestSnapshot().feed_version);
}

}  // namespace
}  // namespace leakdet::store
