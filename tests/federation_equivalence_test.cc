// Shard-vs-central equivalence: the federated path (disjoint device shards
// trained independently, exports merged, K-gate applied to the combined
// evidence) must produce the same verdicts as one central trainer that saw
// every packet — on held-out replay traffic, for 2, 4, and 8 shards, and
// with the merged feed surviving a faulty persistence round-trip.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/detector.h"
#include "core/packet.h"
#include "core/payload_check.h"
#include "core/signature_server.h"
#include "federation/eval.h"
#include "federation/merge.h"
#include "federation/shard_trainer.h"
#include "federation/tenant_store.h"
#include "sim/fleet.h"
#include "store/store_manager.h"
#include "testing/scripted_file.h"

namespace leakdet::federation {
namespace {

using leakdet::testing::ScriptedDir;
using leakdet::testing::StoreFaultProfile;

constexpr size_t kK = 2;

struct FleetWorld {
  explicit FleetWorld(uint64_t seed) {
    sim::FleetConfig config;
    config.seed = seed;
    config.num_devices = 24;
    config.device_skew = 0.3;
    config.market.seed = seed + 1;
    config.market.scale = 0.05;
    fleet = std::make_unique<sim::Fleet>(config);
    std::vector<core::DeviceTokens> tokens;
    for (uint64_t index = 0; index < fleet->num_devices(); ++index) {
      tokens.push_back(fleet->DeviceAt(index).ToTokens());
    }
    oracle = std::make_unique<core::PayloadCheck>(tokens);
  }

  /// Shard-vs-central equivalence requires template saturation on both
  /// paths: every shard and the central trainer must see enough packets of
  /// every sensitive template that cluster-invariant tokens converge to the
  /// template constants. The market's long-tail leaky services are too rare
  /// for that at test scale, so this world restricts sensitive traffic to
  /// the high-volume catalog head.
  static constexpr uint32_t kHeadServices = 8;

  bool InWorld(const sim::LabeledPacket& packet) const {
    return !packet.sensitive() || packet.service_index < kHeadServices;
  }

  ShardTrainerOptions TrainerOptions() const {
    ShardTrainerOptions options;
    options.tenant = "fleet";
    // No subsampling: the pipelines consume their whole pools, so the
    // central pool is exactly the union of the shard pools and divergence
    // can only come from the protocol, never from sampling luck.
    options.pipeline.sample_size = 1 << 20;
    options.pipeline.normal_corpus_size = 1 << 20;
    options.pipeline.num_threads = 1;
    return options;
  }

  std::vector<LabeledReplayPacket> Holdout(uint64_t salt, size_t n) const {
    std::vector<LabeledReplayPacket> holdout;
    sim::Fleet::Stream stream = fleet->NewStream(salt);
    while (holdout.size() < n) {
      sim::Fleet::Event event = stream.Next();
      if (!InWorld(event.packet)) continue;
      holdout.push_back({event.packet.packet, event.packet.sensitive()});
    }
    return holdout;
  }

  std::unique_ptr<sim::Fleet> fleet;
  std::unique_ptr<core::PayloadCheck> oracle;
};

struct FederatedRun {
  match::SignatureSet merged;
  match::SignatureSet central;
};

/// Streams `events` arrivals, routing each device to its shard
/// (device_index mod num_shards — devices are disjoint across shards by
/// construction) and every packet to the central trainer, then trains both
/// paths and publishes both with the same K.
FederatedRun TrainBothPaths(const FleetWorld& world, size_t num_shards,
                            size_t events) {
  std::vector<ShardTrainer> shards;
  for (size_t shard = 0; shard < num_shards; ++shard) {
    shards.emplace_back(world.TrainerOptions(), world.oracle.get());
  }
  ShardTrainer central(world.TrainerOptions(), world.oracle.get());

  sim::Fleet::Stream stream = world.fleet->NewStream(1);
  for (size_t i = 0; i < events; ++i) {
    sim::Fleet::Event event = stream.Next();
    if (!world.InWorld(event.packet)) continue;
    uint64_t key = world.fleet->DeviceKey(event.device_index);
    shards[event.device_index % num_shards].Observe(key, event.packet.packet);
    central.Observe(key, event.packet.packet);
  }

  std::vector<ShardExport> exports;
  for (const ShardTrainer& trainer : shards) {
    auto shard = trainer.Train();
    EXPECT_TRUE(shard.ok()) << shard.status().message();
    if (shard.ok()) exports.push_back(std::move(*shard));
  }
  FederatedRun run;
  auto merged = MergeAll(exports);
  EXPECT_TRUE(merged.ok()) << merged.status().message();
  if (merged.ok()) run.merged = PublishFederated(*merged, kK);
  auto central_export = central.Train();
  EXPECT_TRUE(central_export.ok()) << central_export.status().message();
  if (central_export.ok()) {
    run.central = PublishFederated(*central_export, kK);
  }
  return run;
}

class EquivalenceTest : public ::testing::TestWithParam<size_t> {};

TEST_P(EquivalenceTest, ShardedVerdictsMatchCentral) {
  const size_t num_shards = GetParam();
  FleetWorld world(8086);
  // Sized so even 8-way sharding (3 devices, ~1/8 of traffic per shard)
  // saturates every head template on every shard.
  FederatedRun run = TrainBothPaths(world, num_shards, 9000);
  ASSERT_FALSE(run.central.empty()) << "central training produced no feed";

  core::Detector merged_detector(run.merged);
  core::Detector central_detector(run.central);
  Scoreboard board = CompareOnReplay(merged_detector, central_detector,
                                     world.Holdout(99, 1200));
  EXPECT_TRUE(board.VerdictIdentical())
      << num_shards << " shards: " << FormatScoreboard(board);
  // The feeds must also actually detect: equivalence of two useless feeds
  // proves nothing.
  EXPECT_GT(board.central.true_positives, 0u);
  EXPECT_GT(board.merged.true_positives, 0u);
  EXPECT_EQ(board.replayed, 1200u);
}

INSTANTIATE_TEST_SUITE_P(ShardCounts, EquivalenceTest,
                         ::testing::Values(2, 4, 8));

TEST(EquivalenceFaultTest, MergedFeedSurvivesFaultyStoreRoundTrip) {
  // The merged feed, published into a per-tenant store under a scripted
  // fault schedule and crashed, must recover to the identical serving set.
  FleetWorld world(8086);
  FederatedRun run = TrainBothPaths(world, 4, 4000);
  ASSERT_FALSE(run.merged.empty());

  StoreFaultProfile profile;
  profile.short_write = 0.05;
  profile.sync_fail = 0.1;
  profile.torn_tail = 0.5;
  profile.bit_flip = 0.25;
  ScriptedDir dir(31337, profile);
  store::StoreOptions store_options;
  const std::string tenant = "acme corp";

  // Publish + snapshot under injected faults; a failed snapshot write is
  // retried like an operator-restarted publish would be.
  bool durable = false;
  for (int attempt = 0; attempt < 10 && !durable; ++attempt) {
    TenantStoreSet stores(&dir, "data", store_options);
    auto store = stores.Open(tenant);
    if (!store.ok()) continue;
    core::SignatureServer server(world.oracle.get(),
                                 core::SignatureServer::Options());
    core::SignatureServer::State state;
    state.feed_version = 1;
    state.signatures = run.merged;
    server.Restore(std::move(state));
    durable = (*store)->WriteSnapshot(server).ok();
  }
  ASSERT_TRUE(durable) << "snapshot would not persist in 10 attempts";

  dir.Crash();

  // Fault injection can fail the reopen itself (scripted directory-sync
  // failures) — retry, as an operator restarting the process would.
  StatusOr<store::StoreManager*> store =
      Status::IOError("never attempted");
  std::unique_ptr<TenantStoreSet> recovered_stores;
  for (int attempt = 0; attempt < 10 && !store.ok(); ++attempt) {
    recovered_stores =
        std::make_unique<TenantStoreSet>(&dir, "data", store_options);
    store = recovered_stores->Open(tenant);
  }
  ASSERT_TRUE(store.ok()) << store.status().message();
  core::SignatureServer recovered(world.oracle.get(),
                                  core::SignatureServer::Options());
  auto stats = (*store)->Recover(&recovered);
  ASSERT_TRUE(stats.ok()) << stats.status().message();
  EXPECT_TRUE(stats->snapshot_loaded);
  EXPECT_EQ(recovered.feed_version(), 1u);
  EXPECT_EQ(recovered.Feed(), run.merged.Serialize());

  // And the recovered feed still matches the central oracle verdict for
  // verdict on the held-out stream.
  core::Detector recovered_detector(recovered.signatures());
  core::Detector central_detector(run.central);
  Scoreboard board = CompareOnReplay(recovered_detector, central_detector,
                                     world.Holdout(99, 600));
  EXPECT_TRUE(board.VerdictIdentical()) << FormatScoreboard(board);
}

}  // namespace
}  // namespace leakdet::federation
