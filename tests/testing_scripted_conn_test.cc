#include "testing/scripted_conn.h"

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>

#include "testing/fault_script.h"
#include "testing/virtual_clock.h"
#include "util/status.h"

namespace leakdet::testing {
namespace {

using std::chrono::milliseconds;

FaultProfile ProfileWith(double FaultProfile::* field, double p) {
  FaultProfile profile;
  profile.*field = p;
  return profile;
}

TEST(ScriptedConnTest, FaithfulRoundTripAndEof) {
  ScriptedPair pair = ScriptedPair::Make();
  ASSERT_TRUE(pair.client->WriteAll("hello ").ok());
  ASSERT_TRUE(pair.client->WriteAll("world").ok());
  pair.client->ShutdownWrite();

  std::string got;
  for (;;) {
    auto chunk = pair.server->ReadSome(4096);
    ASSERT_TRUE(chunk.ok());
    if (chunk->empty()) break;
    got += *chunk;
  }
  EXPECT_EQ(got, "hello world");
  // EOF is sticky.
  auto again = pair.server->ReadSome(10);
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(again->empty());
}

TEST(ScriptedConnTest, DuplexTrafficFlowsBothWays) {
  ScriptedPair pair = ScriptedPair::Make();
  ASSERT_TRUE(pair.client->WriteAll("ping").ok());
  auto request = pair.server->ReadSome(16);
  ASSERT_TRUE(request.ok());
  EXPECT_EQ(*request, "ping");
  ASSERT_TRUE(pair.server->WriteAll("pong").ok());
  auto response = pair.client->ReadSome(16);
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(*response, "pong");
}

// Regression: a peer that sends exactly `limit` bytes and then closes is
// within the limit. The old TcpConnection::ReadUntilClose returned
// OutOfRange for this case.
TEST(ScriptedConnTest, ReadUntilCloseAcceptsExactlyLimitBytes) {
  ScriptedPair pair = ScriptedPair::Make();
  std::string payload(1000, 'x');
  ASSERT_TRUE(pair.client->WriteAll(payload).ok());
  pair.client->ShutdownWrite();
  auto got = pair.server->ReadUntilClose(/*limit=*/1000);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->size(), 1000u);
}

TEST(ScriptedConnTest, ReadUntilCloseRejectsOverLimitPeers) {
  ScriptedPair pair = ScriptedPair::Make();
  ASSERT_TRUE(pair.client->WriteAll(std::string(1001, 'x')).ok());
  pair.client->ShutdownWrite();
  auto got = pair.server->ReadUntilClose(/*limit=*/1000);
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kOutOfRange);
}

TEST(ScriptedConnTest, ShortReadsDeliverEverythingInPieces) {
  FaultProfile profile = ProfileWith(&FaultProfile::short_read, 1.0);
  profile.short_chunk = 3;
  ScriptedPair pair = ScriptedPair::Make(nullptr, FaultPlan(),
                                         FaultPlan(7, profile));
  ASSERT_TRUE(pair.client->WriteAll("abcdefghij").ok());
  pair.client->ShutdownWrite();
  std::string got;
  int reads = 0;
  for (;;) {
    auto chunk = pair.server->ReadSome(4096);
    ASSERT_TRUE(chunk.ok());
    if (chunk->empty()) break;
    EXPECT_LE(chunk->size(), 3u);
    got += *chunk;
    ++reads;
  }
  EXPECT_EQ(got, "abcdefghij");
  EXPECT_GE(reads, 4);
  EXPECT_GE(pair.server->stats().short_reads, 3u);
}

TEST(ScriptedConnTest, ShortWritesStillDeliverTheWholeBuffer) {
  FaultProfile profile = ProfileWith(&FaultProfile::short_write, 1.0);
  profile.short_chunk = 2;
  ScriptedPair pair = ScriptedPair::Make(nullptr, FaultPlan(11, profile),
                                         FaultPlan());
  ASSERT_TRUE(pair.client->WriteAll("0123456789").ok());
  pair.client->ShutdownWrite();
  auto got = pair.server->ReadUntilClose();
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, "0123456789");
  EXPECT_GE(pair.client->stats().short_writes, 4u);
}

TEST(ScriptedConnTest, EintrBurstsAreAbsorbedAndCounted) {
  FaultProfile profile = ProfileWith(&FaultProfile::eintr, 1.0);
  profile.max_eintr = 3;
  ScriptedPair pair = ScriptedPair::Make(nullptr, FaultPlan(3, profile),
                                         FaultPlan(4, profile));
  ASSERT_TRUE(pair.client->WriteAll("data").ok());
  auto got = pair.server->ReadSome(16);
  ASSERT_TRUE(got.ok());  // the interrupt never surfaces
  EXPECT_EQ(*got, "data");
  EXPECT_GE(pair.client->stats().eintrs_absorbed, 1u);
  EXPECT_GE(pair.server->stats().eintrs_absorbed, 1u);
}

TEST(ScriptedConnTest, ResetKillsBothEndsMidStream) {
  FaultProfile profile = ProfileWith(&FaultProfile::reset, 1.0);
  ScriptedPair pair = ScriptedPair::Make(nullptr, FaultPlan(),
                                         FaultPlan(5, profile));
  ASSERT_TRUE(pair.client->WriteAll("doomed").ok());
  auto got = pair.server->ReadSome(16);
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kIOError);
  EXPECT_EQ(pair.server->stats().resets, 1u);
  // The reset is fatal for the peer too.
  EXPECT_FALSE(pair.client->WriteAll("more").ok());
}

TEST(ScriptedConnTest, InjectedTimeoutFiresOnlyWithAnEmptyBuffer) {
  FaultProfile profile = ProfileWith(&FaultProfile::timeout, 1.0);
  ScriptedPair pair = ScriptedPair::Make(nullptr, FaultPlan(),
                                         FaultPlan(6, profile));
  // Nothing buffered: the scripted EAGAIN surfaces.
  auto empty_read = pair.server->ReadSome(16);
  ASSERT_FALSE(empty_read.ok());
  EXPECT_NE(std::string(empty_read.status().message()).find("timed out"),
            std::string::npos);
  EXPECT_GE(pair.server->stats().timeouts, 1u);
  // Buffered data wins over the injected timeout (a real poll() would
  // report the socket readable).
  ASSERT_TRUE(pair.client->WriteAll("late").ok());
  auto read = pair.server->ReadSome(16);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, "late");
}

TEST(ScriptedConnTest, CorruptionFlipsBytesAndCountsThem) {
  FaultProfile profile = ProfileWith(&FaultProfile::corrupt, 1.0);
  ScriptedPair pair = ScriptedPair::Make(nullptr, FaultPlan(),
                                         FaultPlan(8, profile));
  ASSERT_TRUE(pair.client->WriteAll("AAAA").ok());
  auto got = pair.server->ReadSome(16);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->size(), 4u);
  EXPECT_NE(*got, "AAAA");
  EXPECT_GE(pair.server->stats().corrupted_bytes, 1u);
}

// The deadline-arithmetic boundary: a clock stepping EXACTLY onto the
// deadline counts as expired ([start, deadline) budget).
TEST(ScriptedConnTest, VirtualClockDeadlineExpiresAtTheExactBoundary) {
  VirtualClock clock;
  ScriptedPair pair = ScriptedPair::Make(&clock);
  ASSERT_TRUE(pair.server->SetReadTimeout(50).ok());
  StatusOr<std::string> got = std::string();
  std::thread reader([&] { got = pair.server->ReadSome(16); });
  std::this_thread::sleep_for(milliseconds(20));  // let the reader block
  clock.Advance(milliseconds(50));                // exactly the deadline
  reader.join();
  ASSERT_FALSE(got.ok());
  EXPECT_NE(std::string(got.status().message()).find("timed out"),
            std::string::npos);
  EXPECT_EQ(pair.server->stats().timeouts, 1u);
}

TEST(ScriptedConnTest, DataBeatingTheVirtualDeadlineIsDelivered) {
  VirtualClock clock;
  ScriptedPair pair = ScriptedPair::Make(&clock);
  ASSERT_TRUE(pair.server->SetReadTimeout(50).ok());
  StatusOr<std::string> got = std::string();
  std::thread reader([&] { got = pair.server->ReadSome(16); });
  std::this_thread::sleep_for(milliseconds(20));
  clock.Advance(milliseconds(49));  // one ms short of the deadline
  ASSERT_TRUE(pair.client->WriteAll("made it").ok());
  reader.join();
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, "made it");
}

TEST(ScriptedConnTest, ListenerHandsOutQueuedServerEnds) {
  ScriptedListener listener;
  auto client = listener.Connect();
  ASSERT_TRUE(client->WriteAll("through the listener").ok());
  client->ShutdownWrite();
  auto accepted = listener.AcceptStream(1000);
  ASSERT_TRUE(accepted.ok());
  auto got = (*accepted)->ReadUntilClose();
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, "through the listener");
  EXPECT_EQ(listener.connections(), 1u);
}

TEST(ScriptedConnTest, ListenerAcceptTimesOutAndCloses) {
  ScriptedListener listener;
  auto timed_out = listener.AcceptStream(20);
  ASSERT_FALSE(timed_out.ok());
  EXPECT_EQ(timed_out.status().code(), StatusCode::kNotFound);
  listener.Close();
  EXPECT_FALSE(listener.ok());
  auto closed = listener.AcceptStream(20);
  ASSERT_FALSE(closed.ok());
  EXPECT_EQ(closed.status().code(), StatusCode::kFailedPrecondition);
}

TEST(ScriptedConnTest, ListenerPlansFollowTheScriptDeterministically) {
  auto script = FaultScript::Builtin("reset-storm");
  ASSERT_TRUE(script.ok());
  // Two listeners over the same script must produce identical fault
  // behaviour for the same connection index and operation sequence.
  for (int round = 0; round < 2; ++round) {
    ScriptedListener first(nullptr, &*script);
    ScriptedListener second(nullptr, &*script);
    auto client_a = first.Connect();
    auto client_b = second.Connect();
    Status wa = client_a->WriteAll("identical operation sequence");
    Status wb = client_b->WriteAll("identical operation sequence");
    EXPECT_EQ(wa.ok(), wb.ok());
    EXPECT_EQ(client_a->stats().resets, client_b->stats().resets);
    EXPECT_EQ(client_a->stats().short_writes, client_b->stats().short_writes);
  }
}

}  // namespace
}  // namespace leakdet::testing
