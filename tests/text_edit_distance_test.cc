#include "text/edit_distance.h"

#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "util/rng.h"

namespace leakdet::text {
namespace {

TEST(EditDistanceTest, KnownValues) {
  EXPECT_EQ(EditDistance("kitten", "sitting"), 3u);
  EXPECT_EQ(EditDistance("flaw", "lawn"), 2u);
  EXPECT_EQ(EditDistance("", ""), 0u);
  EXPECT_EQ(EditDistance("abc", ""), 3u);
  EXPECT_EQ(EditDistance("", "abc"), 3u);
  EXPECT_EQ(EditDistance("same", "same"), 0u);
}

TEST(EditDistanceTest, SingleOperations) {
  EXPECT_EQ(EditDistance("abc", "abcd"), 1u);  // insert
  EXPECT_EQ(EditDistance("abcd", "abc"), 1u);  // delete
  EXPECT_EQ(EditDistance("abc", "axc"), 1u);   // substitute
}

TEST(EditDistanceTest, HostnameExamples) {
  // The §IV-B host distance operates on FQDNs.
  EXPECT_EQ(EditDistance("admob.com", "admob.com"), 0u);
  EXPECT_LT(EditDistance("t0.gstatic.com", "t1.gstatic.com"),
            EditDistance("t0.gstatic.com", "ad-maker.info"));
}

TEST(EditDistanceTest, Symmetry) {
  Rng rng(99);
  for (int i = 0; i < 50; ++i) {
    std::string a = rng.RandomString(rng.UniformInt(20), "abcd");
    std::string b = rng.RandomString(rng.UniformInt(20), "abcd");
    EXPECT_EQ(EditDistance(a, b), EditDistance(b, a));
  }
}

TEST(EditDistanceTest, TriangleInequality) {
  Rng rng(101);
  for (int i = 0; i < 50; ++i) {
    std::string a = rng.RandomString(rng.UniformInt(15), "ab");
    std::string b = rng.RandomString(rng.UniformInt(15), "ab");
    std::string c = rng.RandomString(rng.UniformInt(15), "ab");
    EXPECT_LE(EditDistance(a, c), EditDistance(a, b) + EditDistance(b, c));
  }
}

TEST(EditDistanceCappedTest, AgreesWithExactUnderCap) {
  Rng rng(103);
  for (int i = 0; i < 100; ++i) {
    std::string a = rng.RandomString(5 + rng.UniformInt(20), "abcde");
    std::string b = rng.RandomString(5 + rng.UniformInt(20), "abcde");
    size_t exact = EditDistance(a, b);
    size_t cap = exact + 3;
    EXPECT_EQ(EditDistanceCapped(a, b, cap), exact);
  }
}

TEST(EditDistanceCappedTest, SaturatesAtCap) {
  EXPECT_EQ(EditDistanceCapped("aaaaaaaaaa", "bbbbbbbbbb", 4), 4u);
  EXPECT_EQ(EditDistanceCapped("abcdefgh", "abcdefgh", 4), 0u);
}

TEST(EditDistanceCappedTest, LengthGapShortCircuit) {
  EXPECT_EQ(EditDistanceCapped(std::string(100, 'a'), "a", 5), 5u);
}

TEST(NormalizedEditDistanceTest, RangeAndEdges) {
  EXPECT_DOUBLE_EQ(NormalizedEditDistance("", ""), 0.0);
  EXPECT_DOUBLE_EQ(NormalizedEditDistance("abc", "abc"), 0.0);
  EXPECT_DOUBLE_EQ(NormalizedEditDistance("abc", "xyz"), 1.0);
  EXPECT_DOUBLE_EQ(NormalizedEditDistance("", "xy"), 1.0);
}

TEST(NormalizedEditDistanceTest, AlwaysInUnitInterval) {
  Rng rng(107);
  for (int i = 0; i < 100; ++i) {
    std::string a = rng.RandomString(rng.UniformInt(30), "abcxyz.");
    std::string b = rng.RandomString(rng.UniformInt(30), "abcxyz.");
    double d = NormalizedEditDistance(a, b);
    EXPECT_GE(d, 0.0);
    EXPECT_LE(d, 1.0);
  }
}

// Property sweep: capped distance equals min(exact, cap) for all cap values.
class EditDistanceCapSweep : public ::testing::TestWithParam<size_t> {};

TEST_P(EditDistanceCapSweep, CappedEqualsMinOfExactAndCap) {
  size_t cap = GetParam();
  Rng rng(1000 + cap);
  for (int i = 0; i < 30; ++i) {
    std::string a = rng.RandomString(rng.UniformInt(25), "abcd");
    std::string b = rng.RandomString(rng.UniformInt(25), "abcd");
    size_t exact = EditDistance(a, b);
    EXPECT_EQ(EditDistanceCapped(a, b, cap), std::min(exact, cap))
        << "a=" << a << " b=" << b << " cap=" << cap;
  }
}

INSTANTIATE_TEST_SUITE_P(Caps, EditDistanceCapSweep,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 30));

}  // namespace
}  // namespace leakdet::text
