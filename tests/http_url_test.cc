#include "http/url.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace leakdet::http {
namespace {

TEST(PercentEncodeTest, UnreservedPassThrough) {
  EXPECT_EQ(PercentEncode("AZaz09-._~"), "AZaz09-._~");
}

TEST(PercentEncodeTest, ReservedEscaped) {
  EXPECT_EQ(PercentEncode("a b"), "a%20b");
  EXPECT_EQ(PercentEncode("a&b=c"), "a%26b%3Dc");
  EXPECT_EQ(PercentEncode("/path?"), "%2Fpath%3F");
  EXPECT_EQ(PercentEncode("NTT DOCOMO"), "NTT%20DOCOMO");
}

TEST(PercentEncodeTest, BinaryBytes) {
  EXPECT_EQ(PercentEncode(std::string("\x00\xff", 2)), "%00%FF");
}

TEST(PercentDecodeTest, BasicEscapes) {
  EXPECT_EQ(*PercentDecode("a%20b"), "a b");
  EXPECT_EQ(*PercentDecode("%41%42"), "AB");
  EXPECT_EQ(*PercentDecode("%4a%4B"), "JK");  // mixed hex case
  EXPECT_EQ(*PercentDecode(""), "");
}

TEST(PercentDecodeTest, PlusIsLiteralByDefault) {
  // Regression: '+' used to become a space unconditionally, which corrupts
  // base64-ish tokens in paths and cookie values — '+' is only a space in
  // form-urlencoded data.
  EXPECT_EQ(*PercentDecode("a+b"), "a+b");
  EXPECT_EQ(*PercentDecode("/ad/tok+Zm9v+/x"), "/ad/tok+Zm9v+/x");
}

TEST(PercentDecodeTest, PlusAsSpaceMode) {
  EXPECT_EQ(*PercentDecode("a+b", PlusDecoding::kSpace), "a b");
  EXPECT_EQ(*PercentDecode("a%2Bb", PlusDecoding::kSpace), "a+b");
}

TEST(PercentDecodeTest, PlusBearingPathRoundTrips) {
  const std::string path_bytes = "tok+Zm9v+bar+";
  auto decoded = PercentDecode(PercentEncode(path_bytes));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, path_bytes);
}

TEST(PercentDecodeTest, RejectsTruncatedEscape) {
  EXPECT_FALSE(PercentDecode("abc%").ok());
  EXPECT_FALSE(PercentDecode("abc%2").ok());
}

TEST(PercentDecodeTest, RejectsNonHexEscape) {
  EXPECT_FALSE(PercentDecode("%zz").ok());
  EXPECT_FALSE(PercentDecode("%2g").ok());
}

TEST(PercentCodecTest, RoundTripArbitraryBytes) {
  Rng rng(5);
  for (int trial = 0; trial < 30; ++trial) {
    std::string s;
    size_t len = rng.UniformInt(100);
    for (size_t i = 0; i < len; ++i) {
      s += static_cast<char>(rng.UniformInt(256));
    }
    auto decoded = PercentDecode(PercentEncode(s));
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(*decoded, s);
  }
}

TEST(ParseQueryTest, Basics) {
  auto params = ParseQuery("a=1&b=two&c=");
  ASSERT_TRUE(params.ok());
  ASSERT_EQ(params->size(), 3u);
  EXPECT_EQ((*params)[0], (QueryParam{"a", "1"}));
  EXPECT_EQ((*params)[1], (QueryParam{"b", "two"}));
  EXPECT_EQ((*params)[2], (QueryParam{"c", ""}));
}

TEST(ParseQueryTest, FlagWithoutEquals) {
  auto params = ParseQuery("flag&x=1");
  ASSERT_TRUE(params.ok());
  EXPECT_EQ((*params)[0], (QueryParam{"flag", ""}));
}

TEST(ParseQueryTest, EmptyQueryYieldsNoParams) {
  auto params = ParseQuery("");
  ASSERT_TRUE(params.ok());
  EXPECT_TRUE(params->empty());
}

TEST(ParseQueryTest, PlusStillMeansSpaceInQueryFields) {
  auto params = ParseQuery("q=a+b&k+1=v");
  ASSERT_TRUE(params.ok());
  EXPECT_EQ((*params)[0], (QueryParam{"q", "a b"}));
  EXPECT_EQ((*params)[1], (QueryParam{"k 1", "v"}));
}

TEST(ParseQueryTest, DecodesEscapes) {
  auto params = ParseQuery("carrier=NTT%20DOCOMO&q=a%26b");
  ASSERT_TRUE(params.ok());
  EXPECT_EQ((*params)[0].value, "NTT DOCOMO");
  EXPECT_EQ((*params)[1].value, "a&b");
}

TEST(ParseQueryTest, DuplicateKeysPreserved) {
  auto params = ParseQuery("k=1&k=2");
  ASSERT_TRUE(params.ok());
  ASSERT_EQ(params->size(), 2u);
  EXPECT_EQ((*params)[0].value, "1");
  EXPECT_EQ((*params)[1].value, "2");
}

TEST(ParseQueryTest, RejectsBadEscape) {
  EXPECT_FALSE(ParseQuery("a=%zz").ok());
}

TEST(BuildQueryTest, EncodesAndJoins) {
  std::vector<QueryParam> params = {{"carrier", "NTT DOCOMO"}, {"x", "1&2"}};
  EXPECT_EQ(BuildQuery(params), "carrier=NTT%20DOCOMO&x=1%262");
  EXPECT_EQ(BuildQuery({}), "");
}

TEST(QueryRoundTripTest, BuildThenParse) {
  Rng rng(7);
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<QueryParam> params;
    size_t n = 1 + rng.UniformInt(8);
    for (size_t i = 0; i < n; ++i) {
      QueryParam p;
      p.key = rng.RandomString(1 + rng.UniformInt(10), "abc&=%");
      size_t vlen = rng.UniformInt(20);
      for (size_t j = 0; j < vlen; ++j) {
        p.value += static_cast<char>(rng.UniformInt(256));
      }
      params.push_back(std::move(p));
    }
    auto parsed = ParseQuery(BuildQuery(params));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, params);
  }
}

TEST(SplitTargetTest, PathAndQuery) {
  Target t = SplitTarget("/ad/fetch?id=3&x=y");
  EXPECT_EQ(t.path, "/ad/fetch");
  EXPECT_EQ(t.raw_query, "id=3&x=y");
}

TEST(SplitTargetTest, NoQuery) {
  Target t = SplitTarget("/plain");
  EXPECT_EQ(t.path, "/plain");
  EXPECT_EQ(t.raw_query, "");
}

TEST(SplitTargetTest, EmptyPathBecomesRoot) {
  Target t = SplitTarget("?x=1");
  EXPECT_EQ(t.path, "/");
  EXPECT_EQ(t.raw_query, "x=1");
  Target e = SplitTarget("");
  EXPECT_EQ(e.path, "/");
}

TEST(SplitTargetTest, QuestionMarkInQueryKept) {
  Target t = SplitTarget("/p?a=1?b=2");
  EXPECT_EQ(t.path, "/p");
  EXPECT_EQ(t.raw_query, "a=1?b=2");
}

}  // namespace
}  // namespace leakdet::http
