#include "util/crc32c.h"

#include <gtest/gtest.h>

#include <string>

namespace leakdet {
namespace {

// Reference vectors from the iSCSI CRC32C specification (RFC 3720 B.4 /
// the standard test suite every implementation checks against).
TEST(Crc32cTest, StandardVectors) {
  EXPECT_EQ(Crc32c(""), 0u);
  EXPECT_EQ(Crc32c("123456789"), 0xE3069283u);
  EXPECT_EQ(Crc32c(std::string(32, '\0')), 0x8A9136AAu);
  EXPECT_EQ(Crc32c(std::string(32, '\xff')), 0x62A8AB43u);
  std::string ascending(32, '\0');
  for (int i = 0; i < 32; ++i) ascending[i] = static_cast<char>(i);
  EXPECT_EQ(Crc32c(ascending), 0x46DD794Eu);
}

TEST(Crc32cTest, ExtendMatchesOneShot) {
  const std::string data = "the quick brown fox jumps over the lazy dog";
  for (size_t split = 0; split <= data.size(); ++split) {
    uint32_t crc = Crc32cExtend(0, std::string_view(data).substr(0, split));
    crc = Crc32cExtend(crc, std::string_view(data).substr(split));
    EXPECT_EQ(crc, Crc32c(data)) << "split at " << split;
  }
}

TEST(Crc32cTest, MaskRoundTripsAndDiffers) {
  for (uint32_t crc : {0u, 1u, 0xE3069283u, 0xFFFFFFFFu, 0x12345678u}) {
    EXPECT_EQ(Crc32cUnmask(Crc32cMask(crc)), crc);
    EXPECT_NE(Crc32cMask(crc), crc);
  }
}

TEST(Crc32cTest, DetectsSingleBitFlips) {
  std::string data = "payload under test";
  const uint32_t clean = Crc32c(data);
  for (size_t i = 0; i < data.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      data[i] = static_cast<char>(data[i] ^ (1 << bit));
      EXPECT_NE(Crc32c(data), clean) << "byte " << i << " bit " << bit;
      data[i] = static_cast<char>(data[i] ^ (1 << bit));
    }
  }
}

}  // namespace
}  // namespace leakdet
