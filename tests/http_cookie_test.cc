#include "http/cookie.h"

#include <gtest/gtest.h>

namespace leakdet::http {
namespace {

TEST(ParseCookieHeaderTest, Basics) {
  auto cookies = ParseCookieHeader("a=1; b=2");
  ASSERT_EQ(cookies.size(), 2u);
  EXPECT_EQ(cookies[0], (Cookie{"a", "1"}));
  EXPECT_EQ(cookies[1], (Cookie{"b", "2"}));
}

TEST(ParseCookieHeaderTest, WhitespaceTolerant) {
  auto cookies = ParseCookieHeader("  a = 1 ;  b=2;c=3 ");
  ASSERT_EQ(cookies.size(), 3u);
  EXPECT_EQ(cookies[0], (Cookie{"a", "1"}));
  EXPECT_EQ(cookies[2], (Cookie{"c", "3"}));
}

TEST(ParseCookieHeaderTest, NameOnlySegment) {
  auto cookies = ParseCookieHeader("flag; x=1");
  ASSERT_EQ(cookies.size(), 2u);
  EXPECT_EQ(cookies[0], (Cookie{"flag", ""}));
}

TEST(ParseCookieHeaderTest, EmptySegmentsSkipped) {
  auto cookies = ParseCookieHeader("a=1;; ;b=2");
  ASSERT_EQ(cookies.size(), 2u);
}

TEST(ParseCookieHeaderTest, EmptyHeader) {
  EXPECT_TRUE(ParseCookieHeader("").empty());
}

TEST(ParseCookieHeaderTest, ValueWithEquals) {
  auto cookies = ParseCookieHeader("tok=a=b=c");
  ASSERT_EQ(cookies.size(), 1u);
  EXPECT_EQ(cookies[0], (Cookie{"tok", "a=b=c"}));
}

TEST(SerializeCookiesTest, RoundTrip) {
  std::vector<Cookie> cookies = {{"sid", "deadbeef"}, {"lang", "ja"}};
  std::string header = SerializeCookies(cookies);
  EXPECT_EQ(header, "sid=deadbeef; lang=ja");
  EXPECT_EQ(ParseCookieHeader(header), cookies);
}

TEST(SerializeCookiesTest, Empty) {
  EXPECT_EQ(SerializeCookies({}), "");
}

}  // namespace
}  // namespace leakdet::http
