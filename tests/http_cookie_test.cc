#include "http/cookie.h"

#include <gtest/gtest.h>

namespace leakdet::http {
namespace {

TEST(ParseCookieHeaderTest, Basics) {
  auto cookies = ParseCookieHeader("a=1; b=2");
  ASSERT_EQ(cookies.size(), 2u);
  EXPECT_EQ(cookies[0], (Cookie{"a", "1"}));
  EXPECT_EQ(cookies[1], (Cookie{"b", "2"}));
}

TEST(ParseCookieHeaderTest, WhitespaceTolerant) {
  auto cookies = ParseCookieHeader("  a = 1 ;  b=2;c=3 ");
  ASSERT_EQ(cookies.size(), 3u);
  EXPECT_EQ(cookies[0], (Cookie{"a", "1"}));
  EXPECT_EQ(cookies[2], (Cookie{"c", "3"}));
}

TEST(ParseCookieHeaderTest, NameOnlySegment) {
  auto cookies = ParseCookieHeader("flag; x=1");
  ASSERT_EQ(cookies.size(), 2u);
  EXPECT_EQ(cookies[0], (Cookie{"flag", "", false}));
  EXPECT_EQ(cookies[1], (Cookie{"x", "1"}));
}

TEST(ParseCookieHeaderTest, ValuelessDistinctFromEmptyValued) {
  // `sid` and `sid=` are different wire bytes; the parse must keep them
  // distinguishable so re-serialized packets match original-byte signatures.
  auto valueless = ParseCookieHeader("sid");
  auto empty_valued = ParseCookieHeader("sid=");
  ASSERT_EQ(valueless.size(), 1u);
  ASSERT_EQ(empty_valued.size(), 1u);
  EXPECT_FALSE(valueless[0].has_value);
  EXPECT_TRUE(empty_valued[0].has_value);
  EXPECT_NE(valueless[0], empty_valued[0]);
}

TEST(ParseCookieHeaderTest, EmptySegmentsSkipped) {
  auto cookies = ParseCookieHeader("a=1;; ;b=2");
  ASSERT_EQ(cookies.size(), 2u);
}

TEST(ParseCookieHeaderTest, EmptyHeader) {
  EXPECT_TRUE(ParseCookieHeader("").empty());
}

TEST(ParseCookieHeaderTest, ValueWithEquals) {
  auto cookies = ParseCookieHeader("tok=a=b=c");
  ASSERT_EQ(cookies.size(), 1u);
  EXPECT_EQ(cookies[0], (Cookie{"tok", "a=b=c"}));
}

TEST(SerializeCookiesTest, RoundTrip) {
  std::vector<Cookie> cookies = {{"sid", "deadbeef"}, {"lang", "ja"}};
  std::string header = SerializeCookies(cookies);
  EXPECT_EQ(header, "sid=deadbeef; lang=ja");
  EXPECT_EQ(ParseCookieHeader(header), cookies);
}

TEST(SerializeCookiesTest, Empty) {
  EXPECT_EQ(SerializeCookies({}), "");
}

TEST(SerializeCookiesTest, ValuelessCookieKeepsNoEqualsForm) {
  // Regression: `sid` used to re-serialize as `sid=`, breaking round-trip
  // stability of the Cookie content component.
  EXPECT_EQ(SerializeCookies(ParseCookieHeader("sid")), "sid");
  EXPECT_EQ(SerializeCookies(ParseCookieHeader("sid=")), "sid=");
  EXPECT_EQ(SerializeCookies(ParseCookieHeader("a; b=2; c")), "a; b=2; c");
}

TEST(SerializeCookiesTest, ParseSerializeParseProperty) {
  // Property: serialize(parse(h)) parses back to exactly parse(h), and a
  // second serialize is byte-identical to the first (idempotent round trip).
  const char* headers[] = {
      "a=1; b=2",        "flag",           "flag; x=1",
      "sid=; lang=ja",   "a; b; c=3",      "tok=a=b=c; bare",
      "  s = v ; only ", "x=%2Babc; y",    "",
  };
  for (const char* header : headers) {
    auto first = ParseCookieHeader(header);
    std::string serialized = SerializeCookies(first);
    auto second = ParseCookieHeader(serialized);
    EXPECT_EQ(second, first) << "header: " << header;
    EXPECT_EQ(SerializeCookies(second), serialized) << "header: " << header;
  }
}

}  // namespace
}  // namespace leakdet::http
