// Seeded fuzz tests (ctest label: fuzz) for the three readers that face
// bytes from outside the process: federation shard exports (cross-tenant
// wire text), store snapshots (disk after a crash), and WAL record frames
// (both the on-disk segments and the /replog replication payload). Contract
// under fuzz: never crash, never hang, never accept damage silently where a
// digest/CRC covers it — damage surfaces as a clean Corruption or
// InvalidArgument. Replays the checked-in corpus under tests/fuzz/ first,
// then seeded random and mutation sweeps (LEAKDET_TEST_SEED overrides).

#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "cluster/replication.h"
#include "federation/merge.h"
#include "store/snapshot.h"
#include "store/wal.h"
#include "test_seed.h"
#include "util/rng.h"

#ifndef LEAKDET_FUZZ_CORPUS_DIR
#define LEAKDET_FUZZ_CORPUS_DIR "tests/fuzz"
#endif

namespace leakdet {
namespace {

std::string ReadCorpus(const std::string& name) {
  const std::string path = std::string(LEAKDET_FUZZ_CORPUS_DIR) + "/" + name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing corpus file " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

std::string RandomBytes(Rng* rng, size_t max_len) {
  size_t len = rng->UniformInt(max_len + 1);
  std::string s;
  s.reserve(len);
  for (size_t i = 0; i < len; ++i) {
    s += static_cast<char>(rng->UniformInt(256));
  }
  return s;
}

void ExpectCleanParseError(const Status& status, const std::string& what) {
  EXPECT_TRUE(status.code() == StatusCode::kCorruption ||
              status.code() == StatusCode::kInvalidArgument)
      << what << ": " << status.ToString();
  EXPECT_FALSE(status.message().empty()) << what;
}

// ---------------------------------------------------------------- exports

TEST(FuzzShardExport, CorpusReplays) {
  auto valid = federation::ParseShardExport(ReadCorpus("shard_export_valid.seed"));
  ASSERT_TRUE(valid.ok()) << valid.status().message();
  EXPECT_EQ(valid->tenant, "tenant-a");
  EXPECT_EQ(valid->candidates.size(), 2u);
  EXPECT_FALSE(valid->witness.empty());
  // Accepted input must round-trip through its own serializer.
  auto again = federation::ParseShardExport(
      federation::SerializeShardExport(*valid));
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->witness, valid->witness);

  auto truncated =
      federation::ParseShardExport(ReadCorpus("shard_export_truncated.seed"));
  ASSERT_FALSE(truncated.ok());
  ExpectCleanParseError(truncated.status(), "truncated export");

  auto header_only = federation::ParseShardExport(
      ReadCorpus("shard_export_header_only.seed"));
  ASSERT_FALSE(header_only.ok());
  ExpectCleanParseError(header_only.status(), "header-only export");

  // A flipped byte may land in hex armor (still decodable) — it must either
  // parse to a round-trippable export or fail cleanly, never crash.
  auto flipped =
      federation::ParseShardExport(ReadCorpus("shard_export_flipped.seed"));
  if (flipped.ok()) {
    EXPECT_TRUE(federation::ParseShardExport(
                    federation::SerializeShardExport(*flipped))
                    .ok());
  } else {
    ExpectCleanParseError(flipped.status(), "flipped export");
  }
}

TEST(FuzzShardExport, SurvivesRandomBytes) {
  const uint64_t seed = testing::TestSeed(0xFE0001);
  SCOPED_TRACE(testing::SeedTrace(seed));
  Rng rng(seed);
  int accepted = 0;
  for (int trial = 0; trial < 2000; ++trial) {
    auto result = federation::ParseShardExport(RandomBytes(&rng, 300));
    if (result.ok()) ++accepted;
  }
  // Random bytes essentially never carry the versioned header.
  EXPECT_LT(accepted, 2);
}

TEST(FuzzShardExport, SurvivesMutationsOfValidInput) {
  const uint64_t seed = testing::TestSeed(0xFE0002);
  SCOPED_TRACE(testing::SeedTrace(seed));
  Rng rng(seed);
  const std::string valid = ReadCorpus("shard_export_valid.seed");
  for (int trial = 0; trial < 3000; ++trial) {
    std::string mutated = valid;
    size_t flips = 1 + rng.UniformInt(4);
    for (size_t f = 0; f < flips; ++f) {
      mutated[rng.UniformInt(mutated.size())] =
          static_cast<char>(rng.UniformInt(256));
    }
    auto result = federation::ParseShardExport(mutated);  // must not crash
    if (result.ok()) {
      // Whatever is accepted must be self-consistent: its canonical
      // serialization parses back.
      EXPECT_TRUE(federation::ParseShardExport(
                      federation::SerializeShardExport(*result))
                      .ok());
    } else {
      ExpectCleanParseError(result.status(), "mutated export");
    }
  }
  // Truncation at every byte boundary.
  for (size_t cut = 0; cut < valid.size(); cut += 7) {
    federation::ParseShardExport(valid.substr(0, cut));
  }
}

// --------------------------------------------------------------- snapshots

TEST(FuzzSnapshot, CorpusReplays) {
  auto valid = store::ParseSnapshot(ReadCorpus("snapshot_valid.seed"));
  ASSERT_TRUE(valid.ok()) << valid.status().message();
  EXPECT_EQ(valid->feed_version, 3u);
  EXPECT_EQ(valid->last_sequence, 17u);
  EXPECT_EQ(valid->suspicious.size(), 4u);
  EXPECT_EQ(valid->normal.size(), 4u);

  auto truncated = store::ParseSnapshot(ReadCorpus("snapshot_truncated.seed"));
  ASSERT_FALSE(truncated.ok());
  ExpectCleanParseError(truncated.status(), "truncated snapshot");

  // The SHA-1 digest covers the whole file: one flipped bit anywhere is
  // detected, wherever it lands.
  auto flipped = store::ParseSnapshot(ReadCorpus("snapshot_flipped.seed"));
  ASSERT_FALSE(flipped.ok());
  ExpectCleanParseError(flipped.status(), "flipped snapshot");
}

TEST(FuzzSnapshot, SurvivesRandomBytes) {
  const uint64_t seed = testing::TestSeed(0xFE0003);
  SCOPED_TRACE(testing::SeedTrace(seed));
  Rng rng(seed);
  for (int trial = 0; trial < 2000; ++trial) {
    auto result = store::ParseSnapshot(RandomBytes(&rng, 400));
    EXPECT_FALSE(result.ok());  // no digest, no acceptance
  }
}

TEST(FuzzSnapshot, EveryMutationOfValidInputIsDetected) {
  const uint64_t seed = testing::TestSeed(0xFE0004);
  SCOPED_TRACE(testing::SeedTrace(seed));
  Rng rng(seed);
  const std::string valid = ReadCorpus("snapshot_valid.seed");
  for (int trial = 0; trial < 3000; ++trial) {
    std::string mutated = valid;
    const size_t pos = rng.UniformInt(mutated.size());
    const char replacement = static_cast<char>(rng.UniformInt(256));
    if (mutated[pos] == replacement) continue;  // not actually a mutation
    mutated[pos] = replacement;
    auto result = store::ParseSnapshot(mutated);
    ASSERT_FALSE(result.ok()) << "accepted a corrupted snapshot (byte " << pos
                              << ")";
    ExpectCleanParseError(result.status(), "mutated snapshot");
  }
  for (size_t cut = 0; cut < valid.size(); cut += 11) {
    EXPECT_FALSE(store::ParseSnapshot(valid.substr(0, cut)).ok());
  }
}

// -------------------------------------------------------------- WAL frames

// Drains a RecordCursor, asserting the error contract: any sequence of
// bytes ends in exactly one of clean-end (NotFound), torn tail
// (OutOfRange), or Corruption — never a crash, never an infinite loop.
Status DrainCursor(std::string_view bytes, size_t* records) {
  store::RecordCursor cursor(bytes);
  while (true) {
    auto record = cursor.Next();
    if (!record.ok()) return record.status();
    ++*records;
  }
}

TEST(FuzzWalFrames, CorpusReplays) {
  const std::string valid = ReadCorpus("wal_batch_valid.seed");
  size_t records = 0;
  Status end = DrainCursor(valid, &records);
  EXPECT_EQ(end.code(), StatusCode::kNotFound);
  EXPECT_EQ(records, 3u);
  // The same bytes are the replication wire payload.
  auto batch = cluster::ParseWalBatch(valid, 0);
  ASSERT_TRUE(batch.ok()) << batch.status().message();
  EXPECT_EQ(batch->records.size(), 3u);
  EXPECT_EQ(batch->last_sequence, 3u);

  records = 0;
  Status torn = DrainCursor(ReadCorpus("wal_batch_torn.seed"), &records);
  EXPECT_EQ(torn.code(), StatusCode::kOutOfRange);  // torn tail, 2 clean
  EXPECT_EQ(records, 2u);
  EXPECT_EQ(cluster::ParseWalBatch(ReadCorpus("wal_batch_torn.seed"), 0)
                .status()
                .code(),
            StatusCode::kCorruption);  // the wire tolerates no tearing

  records = 0;
  Status flipped = DrainCursor(ReadCorpus("wal_batch_flipped.seed"), &records);
  EXPECT_TRUE(flipped.code() == StatusCode::kCorruption ||
              flipped.code() == StatusCode::kOutOfRange)
      << flipped.ToString();
  EXPECT_FALSE(
      cluster::ParseWalBatch(ReadCorpus("wal_batch_flipped.seed"), 0).ok());
}

TEST(FuzzWalFrames, SurvivesRandomBytes) {
  const uint64_t seed = testing::TestSeed(0xFE0005);
  SCOPED_TRACE(testing::SeedTrace(seed));
  Rng rng(seed);
  for (int trial = 0; trial < 2000; ++trial) {
    const std::string bytes = RandomBytes(&rng, 300);
    size_t records = 0;
    Status end = DrainCursor(bytes, &records);
    EXPECT_FALSE(end.ok());
    cluster::ParseWalBatch(bytes, rng.UniformInt(5));  // must not crash
  }
}

TEST(FuzzWalFrames, SurvivesMutationsAndTruncationsOfValidFrames) {
  const uint64_t seed = testing::TestSeed(0xFE0006);
  SCOPED_TRACE(testing::SeedTrace(seed));
  Rng rng(seed);
  const std::string valid = ReadCorpus("wal_batch_valid.seed");
  for (int trial = 0; trial < 3000; ++trial) {
    std::string mutated = valid;
    mutated[rng.UniformInt(mutated.size())] ^=
        static_cast<char>(1 + rng.UniformInt(255));
    // The frame CRC covers type + payload: a flipped byte can truncate the
    // usable prefix but never smuggles a damaged record through ParseWalBatch
    // as a full, valid batch of unchanged length.
    auto batch = cluster::ParseWalBatch(mutated, 0);
    if (batch.ok()) {
      EXPECT_LT(batch->records.size(), 3u) << "accepted a damaged batch";
    } else {
      ExpectCleanParseError(batch.status(), "mutated batch");
    }
    size_t records = 0;
    DrainCursor(mutated, &records);  // must terminate without crashing
  }
  for (size_t cut = 0; cut < valid.size(); ++cut) {
    size_t records = 0;
    Status end = DrainCursor(valid.substr(0, cut), &records);
    EXPECT_TRUE(end.code() == StatusCode::kNotFound ||
                end.code() == StatusCode::kOutOfRange ||
                end.code() == StatusCode::kCorruption)
        << "cut=" << cut << ": " << end.ToString();
  }
}

}  // namespace
}  // namespace leakdet
