// Differential cluster-chaos suite (ctest labels: cluster, chaos). Each run
// drives a 3-node gateway cluster — consistent-hash routing, WAL
// replication, scripted partitions, a leader kill with WAL-suffix failover —
// and verifies every verdict bit-identical to the single-node Detector
// oracle once epochs converge, plus exact packet conservation across the
// failover. Fixed seeds (LEAKDET_TEST_SEED overrides) keep every run
// replayable with `leakdet_cluster_chaos --seed <n>`.

#include <gtest/gtest.h>

#include <cstdint>

#include "test_seed.h"
#include "testing/cluster_chaos.h"
#include "testing/fault_script.h"

namespace leakdet {
namespace {

testing::ClusterChaosOptions SmallConfig(uint64_t seed) {
  testing::ClusterChaosOptions options;
  options.seed = seed;
  options.nodes = 3;
  options.shards = 2;
  options.queue_capacity = 64;
  options.epochs = 6;
  options.packets_per_epoch = 48;
  options.retrain_after = 12;
  options.kill_leader_at_epoch = 3;
  options.restart_killed_after = 1;
  options.partition_follower_at_epoch = 5;
  options.replog_batch_limit = 16;  // forces /replog batch loops
  return options;
}

void ExpectRunIsClean(const testing::ClusterChaosResult& result,
                      const testing::ClusterChaosOptions& options) {
  EXPECT_TRUE(result.ok()) << result.Summary();
  EXPECT_EQ(result.epochs, options.epochs) << result.Summary();
  EXPECT_GT(result.verdicts_checked, 0u) << result.Summary();
  // Exact conservation: delivered + dropped + in-flight == ingested,
  // through one leader kill, one failover, and one partition heal.
  EXPECT_EQ(result.delivered + result.dropped + result.in_flight,
            result.ingested)
      << result.Summary();
  EXPECT_EQ(result.oracle_mismatches, 0u) << result.Summary();
  EXPECT_EQ(result.epoch_mismatches, 0u) << result.Summary();
  EXPECT_EQ(result.feed_divergences, 0u) << result.Summary();
  EXPECT_EQ(result.promote_divergences, 0u) << result.Summary();
  EXPECT_GE(result.failovers, 1u) << result.Summary();
  EXPECT_GE(result.node_restarts, 1u) << result.Summary();
  EXPECT_GE(result.partitions, 1u) << result.Summary();
  EXPECT_GE(result.heals, 1u) << result.Summary();
  EXPECT_GE(result.split_epoch_windows, 1u) << result.Summary();
  EXPECT_GT(result.records_replicated, 0u) << result.Summary();
}

// Acceptance: ≥3 seeds, faithful transport — every verdict must match the
// single-node oracle exactly and conservation must hold through the kill.
TEST(ClusterChaosTest, ConvergesAndMatchesOracleAcrossSeeds) {
  for (uint64_t base : {11u, 12u, 13u}) {
    const uint64_t seed = testing::TestSeed(base);
    SCOPED_TRACE(testing::SeedTrace(seed));
    testing::ClusterChaosOptions options = SmallConfig(seed);
    testing::ClusterChaosResult result = testing::RunClusterChaos(options);
    ExpectRunIsClean(result, options);
  }
}

// The same seed must replay bit-for-bit: identical digests, counters, and
// failover history across two fresh clusters.
TEST(ClusterChaosTest, ReplayIsByteIdentical) {
  const uint64_t seed = testing::TestSeed(21);
  SCOPED_TRACE(testing::SeedTrace(seed));
  testing::ClusterChaosOptions options = SmallConfig(seed);
  testing::ClusterChaosResult first = testing::RunClusterChaos(options);
  ExpectRunIsClean(first, options);
  testing::ClusterChaosResult second = testing::RunClusterChaos(options);
  EXPECT_EQ(first.digest, second.digest)
      << "diverged across runs\nfirst:  " << first.Summary()
      << "\nsecond: " << second.Summary();
  EXPECT_EQ(first.delivered, second.delivered);
  EXPECT_EQ(first.accepted, second.accepted);
  EXPECT_EQ(first.records_replicated, second.records_replicated);
  EXPECT_EQ(first.failovers, second.failovers);
  EXPECT_EQ(first.split_epoch_windows, second.split_epoch_windows);
}

// Replication transport under a scripted fault schedule: short reads/writes
// and EINTR bursts on every /replog, /feed, /snapshot and heartbeat
// exchange. Convergence and verdict equivalence must survive; damage is
// detected (Corruption) and retried, never applied.
TEST(ClusterChaosTest, ShortIoTransportFaultsConvergeClean) {
  const uint64_t seed = testing::TestSeed(31);
  SCOPED_TRACE(testing::SeedTrace(seed));
  auto script = testing::FaultScript::Builtin("short-io");
  ASSERT_TRUE(script.ok());
  script->set_seed(seed);
  testing::ClusterChaosOptions options = SmallConfig(seed);
  options.script = *script;
  testing::ClusterChaosResult result = testing::RunClusterChaos(options);
  ExpectRunIsClean(result, options);
}

// Torn-write/bit-flip damage on the killed leader's disk at crash time: the
// restarted node must repair its tail on reopen and rejoin cleanly.
TEST(ClusterChaosTest, CrashTornTailOnKilledDiskRejoinsClean) {
  const uint64_t seed = testing::TestSeed(41);
  SCOPED_TRACE(testing::SeedTrace(seed));
  testing::ClusterChaosOptions options = SmallConfig(seed);
  options.store_faults.torn_tail = 0.5;
  options.store_faults.bit_flip = 0.25;
  testing::ClusterChaosResult result = testing::RunClusterChaos(options);
  ExpectRunIsClean(result, options);
}

// No scheduled chaos at all: a plain replicated cluster must behave exactly
// like the chaotic ones minus the events (a control for the harness itself).
TEST(ClusterChaosTest, NoChaosControlRun) {
  const uint64_t seed = testing::TestSeed(51);
  SCOPED_TRACE(testing::SeedTrace(seed));
  testing::ClusterChaosOptions options = SmallConfig(seed);
  options.kill_leader_at_epoch = 0;
  options.partition_follower_at_epoch = 0;
  options.epochs = 4;
  testing::ClusterChaosResult result = testing::RunClusterChaos(options);
  EXPECT_TRUE(result.ok()) << result.Summary();
  EXPECT_EQ(result.failovers, 0u) << result.Summary();
  EXPECT_EQ(result.partitions, 0u) << result.Summary();
  EXPECT_EQ(result.convergence_failures, 0u) << result.Summary();
  EXPECT_EQ(result.delivered, result.ingested) << result.Summary();
}

}  // namespace
}  // namespace leakdet
