#include "net/org_registry.h"

#include <gtest/gtest.h>

namespace leakdet::net {
namespace {

Ipv4Address Ip(const char* s) { return *Ipv4Address::Parse(s); }

TEST(CidrPrefixTest, ParseAndContains) {
  auto p = CidrPrefix::Parse("173.194.0.0/16");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->length, 16);
  EXPECT_TRUE(p->Contains(Ip("173.194.1.2")));
  EXPECT_TRUE(p->Contains(Ip("173.194.255.255")));
  EXPECT_FALSE(p->Contains(Ip("173.195.0.0")));
}

TEST(CidrPrefixTest, BaseMaskedToLength) {
  auto p = CidrPrefix::Parse("10.1.2.3/8");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->base.ToString(), "10.0.0.0");
  EXPECT_EQ(p->ToString(), "10.0.0.0/8");
}

TEST(CidrPrefixTest, ZeroLengthMatchesEverything) {
  auto p = CidrPrefix::Parse("0.0.0.0/0");
  ASSERT_TRUE(p.ok());
  EXPECT_TRUE(p->Contains(Ip("255.255.255.255")));
  EXPECT_TRUE(p->Contains(Ip("0.0.0.1")));
}

TEST(CidrPrefixTest, HostRoute) {
  auto p = CidrPrefix::Parse("192.0.2.7/32");
  ASSERT_TRUE(p.ok());
  EXPECT_TRUE(p->Contains(Ip("192.0.2.7")));
  EXPECT_FALSE(p->Contains(Ip("192.0.2.6")));
}

TEST(CidrPrefixTest, ParseRejectsMalformed) {
  EXPECT_FALSE(CidrPrefix::Parse("10.0.0.0").ok());
  EXPECT_FALSE(CidrPrefix::Parse("10.0.0.0/33").ok());
  EXPECT_FALSE(CidrPrefix::Parse("10.0.0.0/x").ok());
  EXPECT_FALSE(CidrPrefix::Parse("300.0.0.0/8").ok());
}

TEST(OrgRegistryTest, BasicLookup) {
  OrgRegistry registry;
  ASSERT_TRUE(registry.AddCidr("173.194.0.0/16", "Google").ok());
  ASSERT_TRUE(registry.AddCidr("61.213.0.0/16", "MicroAd").ok());
  EXPECT_EQ(registry.size(), 2u);
  EXPECT_EQ(registry.Lookup(Ip("173.194.3.4")).value(), "Google");
  EXPECT_EQ(registry.Lookup(Ip("61.213.200.1")).value(), "MicroAd");
  EXPECT_FALSE(registry.Lookup(Ip("8.8.8.8")).has_value());
}

TEST(OrgRegistryTest, LongestPrefixWins) {
  OrgRegistry registry;
  ASSERT_TRUE(registry.AddCidr("10.0.0.0/8", "BigBlock").ok());
  ASSERT_TRUE(registry.AddCidr("10.20.0.0/16", "Subtenant").ok());
  ASSERT_TRUE(registry.AddCidr("10.20.30.0/24", "Subsubtenant").ok());
  EXPECT_EQ(registry.Lookup(Ip("10.1.1.1")).value(), "BigBlock");
  EXPECT_EQ(registry.Lookup(Ip("10.20.1.1")).value(), "Subtenant");
  EXPECT_EQ(registry.Lookup(Ip("10.20.30.40")).value(), "Subsubtenant");
}

TEST(OrgRegistryTest, ReAddOverwrites) {
  OrgRegistry registry;
  ASSERT_TRUE(registry.AddCidr("10.0.0.0/8", "Old").ok());
  ASSERT_TRUE(registry.AddCidr("10.0.0.0/8", "New").ok());
  EXPECT_EQ(registry.size(), 1u);
  EXPECT_EQ(registry.Lookup(Ip("10.1.1.1")).value(), "New");
}

TEST(OrgRegistryTest, SameOrganization) {
  OrgRegistry registry;
  ASSERT_TRUE(registry.AddCidr("173.194.0.0/16", "Google").ok());
  ASSERT_TRUE(registry.AddCidr("74.125.0.0/16", "Google").ok());
  ASSERT_TRUE(registry.AddCidr("61.213.0.0/16", "MicroAd").ok());
  // Distant prefixes, same owner.
  EXPECT_TRUE(registry.SameOrganization(Ip("173.194.1.1"), Ip("74.125.9.9")));
  // Different owners.
  EXPECT_FALSE(registry.SameOrganization(Ip("173.194.1.1"),
                                         Ip("61.213.1.1")));
  // Unregistered address: never "same".
  EXPECT_FALSE(registry.SameOrganization(Ip("173.194.1.1"), Ip("8.8.8.8")));
}

TEST(OrgRegistryTest, AdjacentBlocksDifferentOwners) {
  // The §VI concern: numerically adjacent /16s with different owners.
  OrgRegistry registry;
  ASSERT_TRUE(registry.AddCidr("111.86.0.0/16", "mediba").ok());
  ASSERT_TRUE(registry.AddCidr("111.87.0.0/16", "otherco").ok());
  EXPECT_FALSE(registry.SameOrganization(Ip("111.86.0.1"), Ip("111.87.0.1")));
}

TEST(OrgRegistryTest, DefaultRouteFallback) {
  OrgRegistry registry;
  ASSERT_TRUE(registry.AddCidr("0.0.0.0/0", "TheInternet").ok());
  ASSERT_TRUE(registry.AddCidr("10.0.0.0/8", "Private").ok());
  EXPECT_EQ(registry.Lookup(Ip("99.99.99.99")).value(), "TheInternet");
  EXPECT_EQ(registry.Lookup(Ip("10.0.0.1")).value(), "Private");
}

TEST(OrgRegistryTest, EmptyRegistry) {
  OrgRegistry registry;
  EXPECT_EQ(registry.size(), 0u);
  EXPECT_FALSE(registry.Lookup(Ip("1.2.3.4")).has_value());
  EXPECT_FALSE(registry.SameOrganization(Ip("1.2.3.4"), Ip("1.2.3.4")));
}

}  // namespace
}  // namespace leakdet::net
