#include "core/siggen.h"

#include <gtest/gtest.h>

#include "core/detector.h"

namespace leakdet::core {
namespace {

HttpPacket AdPacket(const std::string& host, const std::string& rline,
                    const std::string& cookie = "") {
  HttpPacket p;
  p.destination.host = host;
  p.destination.ip = *net::Ipv4Address::Parse("203.104.1.2");
  p.destination.port = 80;
  p.request_line = rline;
  p.cookie = cookie;
  return p;
}

std::vector<HttpPacket> AdMakerCluster() {
  return {
      AdPacket("api.ad-maker.info",
               "GET /adpv2/get?app_id=k111&aid=9774d56d682e549c&r=11 "
               "HTTP/1.1"),
      AdPacket("api.ad-maker.info",
               "GET /adpv2/get?app_id=k222&aid=9774d56d682e549c&r=22 "
               "HTTP/1.1"),
      AdPacket("api.ad-maker.info",
               "GET /adpv2/get?app_id=k333&aid=9774d56d682e549c&r=33 "
               "HTTP/1.1"),
  };
}

TEST(SiggenTest, GeneratesOneSignaturePerCluster) {
  std::vector<HttpPacket> packets = AdMakerCluster();
  std::vector<std::vector<int32_t>> clusters = {{0, 1, 2}};
  SignatureGenerator gen;
  match::SignatureSet set = gen.Generate(packets, clusters, {});
  ASSERT_EQ(set.size(), 1u);
  const auto& sig = set.signatures()[0];
  EXPECT_EQ(sig.cluster_size, 3u);
  EXPECT_FALSE(sig.tokens.empty());
  // The invariant identifier value must be captured in some token.
  bool has_id = false;
  for (const auto& t : sig.tokens) {
    if (t.find("9774d56d682e549c") != std::string::npos) has_id = true;
  }
  EXPECT_TRUE(has_id);
}

TEST(SiggenTest, SignatureMatchesUnseenPacketFromSameModule) {
  std::vector<HttpPacket> packets = AdMakerCluster();
  SignatureGenerator gen;
  match::SignatureSet set = gen.Generate(packets, {{0, 1, 2}}, {});
  Detector detector(std::move(set));
  HttpPacket unseen = AdPacket(
      "api.ad-maker.info",
      "GET /adpv2/get?app_id=k999&aid=9774d56d682e549c&r=77 HTTP/1.1");
  EXPECT_TRUE(detector.IsSensitive(unseen));
  HttpPacket clean = AdPacket(
      "api.ad-maker.info",
      "GET /adpv2/get?app_id=k999&r=77 HTTP/1.1");
  EXPECT_FALSE(detector.IsSensitive(clean));
}

TEST(SiggenTest, HostScopeSetWhenUnanimous) {
  SiggenOptions opts;
  opts.scope_by_host = true;
  SignatureGenerator gen(opts);
  match::SignatureSet set = gen.Generate(AdMakerCluster(), {{0, 1, 2}}, {});
  ASSERT_EQ(set.size(), 1u);
  EXPECT_EQ(set.signatures()[0].host_scope, "ad-maker.info");
}

TEST(SiggenTest, HostScopeEmptyWhenMixed) {
  std::vector<HttpPacket> packets = AdMakerCluster();
  packets.push_back(AdPacket(
      "other.example.com",
      "GET /adpv2/get?app_id=k444&aid=9774d56d682e549c&r=44 HTTP/1.1"));
  SiggenOptions opts;
  opts.scope_by_host = true;
  SignatureGenerator gen(opts);
  match::SignatureSet set = gen.Generate(packets, {{0, 1, 2, 3}}, {});
  ASSERT_EQ(set.size(), 1u);
  EXPECT_EQ(set.signatures()[0].host_scope, "");
}

TEST(SiggenTest, ScopeOffByDefault) {
  SignatureGenerator gen;  // paper-faithful default: content-only matching
  match::SignatureSet set = gen.Generate(AdMakerCluster(), {{0, 1, 2}}, {});
  ASSERT_EQ(set.size(), 1u);
  EXPECT_EQ(set.signatures()[0].host_scope, "");
}

TEST(SiggenTest, MinClusterSizeFilters) {
  SiggenOptions opts;
  opts.min_cluster_size = 2;
  SignatureGenerator gen(opts);
  std::vector<SiggenClusterReport> reports;
  match::SignatureSet set =
      gen.Generate(AdMakerCluster(), {{0}, {1, 2}}, {}, &reports);
  EXPECT_EQ(set.size(), 1u);
  ASSERT_EQ(reports.size(), 2u);
  EXPECT_FALSE(reports[0].emitted);
  EXPECT_EQ(reports[0].reject_reason, "cluster below min_cluster_size");
  EXPECT_TRUE(reports[1].emitted);
}

TEST(SiggenTest, GenericTokensScreenedByNormalCorpus) {
  // Every packet shares "GET /adpv2/get?app_id=k" and " HTTP/1.1"; the
  // normal corpus contains those substrings in every document, so only the
  // identifier token survives.
  std::vector<std::string> normal_corpus;
  for (int i = 0; i < 100; ++i) {
    normal_corpus.push_back(
        "GET /adpv2/get?app_id=k00" + std::to_string(i) + "&r=5 HTTP/1.1\n\n");
  }
  SiggenOptions opts;
  opts.max_token_normal_df = 0.05;
  SignatureGenerator gen(opts);
  std::vector<SiggenClusterReport> reports;
  match::SignatureSet set =
      gen.Generate(AdMakerCluster(), {{0, 1, 2}}, normal_corpus, &reports);
  ASSERT_EQ(set.size(), 1u);
  for (const std::string& tok : set.signatures()[0].tokens) {
    EXPECT_NE(tok.find("9774d56d682e549c"), std::string::npos)
        << "surviving token should carry the identifier, got: " << tok;
  }
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_LT(reports[0].kept_tokens, reports[0].raw_tokens);
}

TEST(SiggenTest, SignatureMatchingNormalCorpusDiscarded) {
  // Cluster whose every invariant token also appears across the normal
  // corpus => the whole-signature FP screen must reject it.
  std::vector<HttpPacket> packets = {
      AdPacket("x.example.com", "GET /common/path?r=1 HTTP/1.1"),
      AdPacket("x.example.com", "GET /common/path?r=2 HTTP/1.1"),
  };
  std::vector<std::string> normal_corpus;
  for (int i = 0; i < 50; ++i) {
    normal_corpus.push_back("GET /common/path?r=" + std::to_string(100 + i) +
                            " HTTP/1.1\n\n");
  }
  SiggenOptions opts;
  opts.max_token_normal_df = 1.0;       // let generic tokens through
  opts.max_signature_normal_fp = 0.01;  // ...but kill the signature
  SignatureGenerator gen(opts);
  std::vector<SiggenClusterReport> reports;
  match::SignatureSet set = gen.Generate(packets, {{0, 1}}, normal_corpus,
                                         &reports);
  EXPECT_EQ(set.size(), 0u);
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_EQ(reports[0].reject_reason, "signature matches normal corpus");
}

TEST(SiggenTest, NoTokensSurvivingMeansNoSignature) {
  // Two packets with nothing in common above min_token_len.
  std::vector<HttpPacket> packets = {
      AdPacket("a.com", "GET /aaaaaaaa HTTP/1.1"),
      AdPacket("b.com", "POST /bbbbbbb XXXX/9.9"),
  };
  SiggenOptions opts;
  opts.min_token_len = 12;
  SignatureGenerator gen(opts);
  std::vector<SiggenClusterReport> reports;
  match::SignatureSet set = gen.Generate(packets, {{0, 1}}, {}, &reports);
  EXPECT_EQ(set.size(), 0u);
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_EQ(reports[0].reject_reason, "no tokens survived screening");
}

TEST(SiggenTest, SingletonClusterYieldsExactContentSignature) {
  std::vector<HttpPacket> packets = {AdPacket(
      "one.example.net", "GET /only?imei=352099001761481 HTTP/1.1")};
  SignatureGenerator gen;
  match::SignatureSet set = gen.Generate(packets, {{0}}, {});
  ASSERT_EQ(set.size(), 1u);
  Detector detector(std::move(set));
  EXPECT_TRUE(detector.IsSensitive(packets[0]));
}

TEST(SiggenTest, SignatureIdsAreSequential) {
  std::vector<HttpPacket> packets = AdMakerCluster();
  SignatureGenerator gen;
  match::SignatureSet set = gen.Generate(packets, {{0}, {1}, {2}}, {});
  ASSERT_EQ(set.size(), 3u);
  EXPECT_EQ(set.signatures()[0].id, "sig-0");
  EXPECT_EQ(set.signatures()[1].id, "sig-1");
  EXPECT_EQ(set.signatures()[2].id, "sig-2");
}

TEST(SiggenTest, MaxTokensPerSignatureCap) {
  // Packets sharing many distinct long segments.
  std::string shared;
  for (int i = 0; i < 30; ++i) {
    shared += "SEGMENT" + std::to_string(i) + "!";
  }
  std::vector<HttpPacket> packets = {
      AdPacket("m.example", "GET /" + shared + "?r=1 HTTP/1.1"),
      AdPacket("m.example", "GET /" + shared + "?r=2 HTTP/1.1"),
  };
  SiggenOptions opts;
  opts.max_tokens_per_signature = 4;
  SignatureGenerator gen(opts);
  match::SignatureSet set = gen.Generate(packets, {{0, 1}}, {});
  ASSERT_EQ(set.size(), 1u);
  EXPECT_LE(set.signatures()[0].tokens.size(), 4u);
}

}  // namespace
}  // namespace leakdet::core
