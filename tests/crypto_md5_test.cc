#include "crypto/md5.h"

#include <gtest/gtest.h>

#include <string>

namespace leakdet::crypto {
namespace {

// RFC 1321 appendix A.5 test suite.
TEST(Md5Test, Rfc1321Vectors) {
  EXPECT_EQ(Md5Hex(""), "d41d8cd98f00b204e9800998ecf8427e");
  EXPECT_EQ(Md5Hex("a"), "0cc175b9c0f1b6a831c399e269772661");
  EXPECT_EQ(Md5Hex("abc"), "900150983cd24fb0d6963f7d28e17f72");
  EXPECT_EQ(Md5Hex("message digest"), "f96b697d7cb7938d525a2f31aaf161d0");
  EXPECT_EQ(Md5Hex("abcdefghijklmnopqrstuvwxyz"),
            "c3fcd3d76192e4007dfb496cca67e13b");
  EXPECT_EQ(
      Md5Hex("ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789"),
      "d174ab98d277d9f5a5611c2c9f419d9f");
  EXPECT_EQ(Md5Hex("1234567890123456789012345678901234567890123456789012345678"
                   "9012345678901234567890"),
            "57edf4a22be3c955ac49da2e2107b67a");
}

TEST(Md5Test, UpperCaseVariant) {
  EXPECT_EQ(Md5HexUpper("abc"), "900150983CD24FB0D6963F7D28E17F72");
}

TEST(Md5Test, StreamingMatchesOneShot) {
  std::string data;
  for (int i = 0; i < 1000; ++i) data += static_cast<char>(i * 37 % 256);
  // Split at awkward boundaries relative to the 64-byte block size.
  for (size_t split : {1ul, 63ul, 64ul, 65ul, 127ul, 500ul}) {
    Md5 md5;
    md5.Update(std::string_view(data).substr(0, split));
    md5.Update(std::string_view(data).substr(split));
    auto digest = md5.Finish();
    std::string hex;
    for (uint8_t b : digest) {
      char buf[3];
      snprintf(buf, sizeof(buf), "%02x", b);
      hex += buf;
    }
    EXPECT_EQ(hex, Md5Hex(data)) << "split=" << split;
  }
}

TEST(Md5Test, ManySmallUpdates) {
  Md5 md5;
  std::string data = "The quick brown fox jumps over the lazy dog";
  for (char c : data) md5.Update(std::string_view(&c, 1));
  auto digest = md5.Finish();
  EXPECT_EQ(digest[0], 0x9e);  // 9e107d9d372bb6826bd81d3542a419d6
  EXPECT_EQ(Md5Hex(data), "9e107d9d372bb6826bd81d3542a419d6");
}

TEST(Md5Test, ResetAllowsReuse) {
  Md5 md5;
  md5.Update("garbage");
  md5.Reset();
  md5.Update("abc");
  auto digest = md5.Finish();
  EXPECT_EQ(digest[0], 0x90);
  EXPECT_EQ(digest[15], 0x72);
}

// Lengths straddling the padding boundary (55, 56, 57, 63, 64, 65 bytes)
// exercise both padding branches.
TEST(Md5Test, PaddingBoundaryLengths) {
  // Reference digests computed with the RFC implementation.
  struct Case {
    size_t len;
    const char* hex;
  };
  const Case cases[] = {
      {55, "ef1772b6dff9a122358552954ad0df65"},
      {56, "3b0c8ac703f828b04c6c197006d17218"},
      {57, "652b906d60af96844ebd21b674f35e93"},
      {63, "b06521f39153d618550606be297466d5"},
      {64, "014842d480b571495a4a0363793f7367"},
      {65, "c743a45e0d2e6a95cb859adae0248435"},
  };
  for (const Case& c : cases) {
    EXPECT_EQ(Md5Hex(std::string(c.len, 'a')), c.hex) << "len=" << c.len;
  }
}

}  // namespace
}  // namespace leakdet::crypto
