#include "core/distance.h"

#include <gtest/gtest.h>

#include <memory>

#include "compress/compressor.h"
#include "util/rng.h"

namespace leakdet::core {
namespace {

HttpPacket MakeTestPacket(const std::string& host, const char* ip,
                          uint16_t port, const std::string& rline,
                          const std::string& cookie = "",
                          const std::string& body = "") {
  HttpPacket p;
  p.destination.host = host;
  p.destination.ip = *net::Ipv4Address::Parse(ip);
  p.destination.port = port;
  p.request_line = rline;
  p.cookie = cookie;
  p.body = body;
  return p;
}

class DistanceTest : public ::testing::Test {
 protected:
  DistanceTest()
      : compressor_(new compress::Lz77HuffmanCompressor()),
        ncd_(compressor_.get()) {}

  std::unique_ptr<compress::Compressor> compressor_;
  compress::NcdCalculator ncd_;
};

TEST_F(DistanceTest, IdenticalDestinationsHaveZeroDestinationDistance) {
  PacketDistance metric(&ncd_);
  HttpPacket a = MakeTestPacket("ad.doubleclick.net", "173.194.1.2", 80,
                                "GET /a HTTP/1.1");
  HttpPacket b = MakeTestPacket("ad.doubleclick.net", "173.194.1.2", 80,
                                "GET /b HTTP/1.1");
  EXPECT_DOUBLE_EQ(metric.DestinationDistance(a, b), 0.0);
}

TEST_F(DistanceTest, DestinationDistanceComponentsAdd) {
  PacketDistance metric(&ncd_);
  // Same port, completely different IP (first bit) and maximally distant
  // host strings (no character aligns): d_ip = 1, d_port = 0, d_host = 1.
  HttpPacket a = MakeTestPacket("aaaa.com", "10.0.0.1", 80, "GET / HTTP/1.1");
  HttpPacket b = MakeTestPacket("zzzzzzzz", "200.0.0.1", 80,
                                "GET / HTTP/1.1");
  EXPECT_DOUBLE_EQ(metric.DestinationDistance(a, b), 2.0);
}

TEST_F(DistanceTest, PortMismatchAddsOne) {
  PacketDistance metric(&ncd_);
  HttpPacket a = MakeTestPacket("x.com", "1.2.3.4", 80, "GET / HTTP/1.1");
  HttpPacket b = MakeTestPacket("x.com", "1.2.3.4", 8080, "GET / HTTP/1.1");
  EXPECT_DOUBLE_EQ(metric.DestinationDistance(a, b), 1.0);
}

TEST_F(DistanceTest, IpPrefixScalesDistance) {
  PacketDistance metric(&ncd_);
  HttpPacket a = MakeTestPacket("x.com", "173.194.0.1", 80, "GET / HTTP/1.1");
  HttpPacket same16 = MakeTestPacket("x.com", "173.194.200.9", 80,
                                     "GET / HTTP/1.1");
  HttpPacket far = MakeTestPacket("x.com", "10.0.0.1", 80, "GET / HTTP/1.1");
  EXPECT_LT(metric.DestinationDistance(a, same16),
            metric.DestinationDistance(a, far));
}

TEST_F(DistanceTest, LiteralOrientationInvertsIpAndPort) {
  DistanceOptions literal;
  literal.literal_similarity_orientation = true;
  PacketDistance metric(&ncd_, literal);
  // Identical destination: lmatch/32 = 1 and match = 1 => d_dst = 2 under
  // the paper's literal reading (plus d_host = 0).
  HttpPacket a = MakeTestPacket("x.com", "1.2.3.4", 80, "GET / HTTP/1.1");
  HttpPacket b = a;
  EXPECT_DOUBLE_EQ(metric.DestinationDistance(a, b), 2.0);
}

TEST_F(DistanceTest, ContentDistanceZeroForBothEmptyFields) {
  PacketDistance metric(&ncd_);
  HttpPacket a = MakeTestPacket("x.com", "1.2.3.4", 80, "GET /same HTTP/1.1");
  HttpPacket b = a;
  // Identical non-trivial content: small but nonzero NCD; empty cookie and
  // body contribute zero.
  double d = metric.ContentDistance(a, b);
  EXPECT_GE(d, 0.0);
  EXPECT_LT(d, 0.6);
}

TEST_F(DistanceTest, SimilarTemplatesCloserThanDifferentServices) {
  PacketDistance metric(&ncd_);
  HttpPacket a = MakeTestPacket(
      "ads.mydas.mobi", "216.133.1.1", 80,
      "GET /getAd.php5?auid=9774d56d682e549c&r=11aa HTTP/1.1");
  HttpPacket b = MakeTestPacket(
      "ads.mydas.mobi", "216.133.1.1", 80,
      "GET /getAd.php5?auid=9774d56d682e549c&r=99ff HTTP/1.1");
  HttpPacket c = MakeTestPacket(
      "data.flurry.com", "74.6.20.9", 80, "POST /aap.do HTTP/1.1", "",
      "u=2b3e5a77&session=xyz");
  EXPECT_LT(metric.Distance(a, b), metric.Distance(a, c));
}

TEST_F(DistanceTest, AblationFlagsDropComponents) {
  DistanceOptions dst_only;
  dst_only.use_content = false;
  DistanceOptions content_only;
  content_only.use_destination = false;
  PacketDistance d_dst(&ncd_, dst_only);
  PacketDistance d_content(&ncd_, content_only);
  PacketDistance d_full(&ncd_);

  HttpPacket a = MakeTestPacket("x.com", "1.2.3.4", 80,
                                "GET /aaaa?x=1 HTTP/1.1");
  HttpPacket b = MakeTestPacket("y.org", "99.2.3.4", 80,
                                "GET /bbbb?y=2 HTTP/1.1");
  EXPECT_NEAR(d_dst.Distance(a, b) + d_content.Distance(a, b),
              d_full.Distance(a, b), 1e-9);
  EXPECT_DOUBLE_EQ(d_dst.MaxDistance(), 3.0);
  EXPECT_DOUBLE_EQ(d_content.MaxDistance(), 3.0);
  EXPECT_DOUBLE_EQ(d_full.MaxDistance(), 6.0);
}

TEST_F(DistanceTest, WeightsScaleComponents) {
  DistanceOptions weighted;
  weighted.host_weight = 2.0;
  weighted.use_content = false;
  PacketDistance metric(&ncd_, weighted);
  HttpPacket a = MakeTestPacket("aaaa", "1.2.3.4", 80, "GET / HTTP/1.1");
  HttpPacket b = MakeTestPacket("zzzz", "1.2.3.4", 80, "GET / HTTP/1.1");
  // d_host = 1 doubled; ip/port identical.
  EXPECT_DOUBLE_EQ(metric.Distance(a, b), 2.0);
}

TEST_F(DistanceTest, SymmetryOnRandomPackets) {
  PacketDistance metric(&ncd_);
  Rng rng(3);
  for (int trial = 0; trial < 15; ++trial) {
    HttpPacket a = MakeTestPacket(
        rng.RandomString(5, "abc") + ".com",
        "10.0.0.1", 80, "GET /" + rng.RandomString(20, "abcx=&") + " HTTP/1.1",
        "", rng.RandomString(rng.UniformInt(40), "klmn="));
    HttpPacket b = MakeTestPacket(
        rng.RandomString(5, "abc") + ".net",
        "200.0.0.1", 80, "GET /" + rng.RandomString(20, "abcx=&") + " HTTP/1.1",
        "", rng.RandomString(rng.UniformInt(40), "klmn="));
    // Destination components are exactly symmetric; NCD contributes a small
    // codec-dependent asymmetry.
    EXPECT_NEAR(metric.Distance(a, b), metric.Distance(b, a), 0.25);
  }
}

TEST(DistanceMatrixTest, StoresSymmetricValues) {
  DistanceMatrix m(4);
  m.set(0, 3, 1.5);
  m.set(2, 1, 0.25);
  EXPECT_DOUBLE_EQ(m.at(0, 3), 1.5);
  EXPECT_DOUBLE_EQ(m.at(3, 0), 1.5);
  EXPECT_DOUBLE_EQ(m.at(1, 2), 0.25);
  EXPECT_DOUBLE_EQ(m.at(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(m.at(0, 1), 0.0);  // unset defaults to zero
  EXPECT_EQ(m.size(), 4u);
}

TEST(DistanceMatrixTest, AllPairsIndependent) {
  DistanceMatrix m(5);
  double v = 0.0;
  for (size_t i = 0; i < 5; ++i) {
    for (size_t j = i + 1; j < 5; ++j) {
      m.set(i, j, v += 1.0);
    }
  }
  v = 0.0;
  for (size_t i = 0; i < 5; ++i) {
    for (size_t j = i + 1; j < 5; ++j) {
      EXPECT_DOUBLE_EQ(m.at(i, j), v += 1.0);
    }
  }
}

TEST_F(DistanceTest, ParallelMatrixBitIdenticalToSerial) {
  Rng rng(77);
  std::vector<HttpPacket> packets;
  for (int i = 0; i < 40; ++i) {
    packets.push_back(MakeTestPacket(
        rng.RandomString(4, "abcd") + ".com",
        i % 2 ? "10.0.0.1" : "200.3.2.1", 80,
        "GET /" + rng.RandomString(30, "abx=&/") + " HTTP/1.1",
        i % 3 ? "sid=" + rng.RandomHex(8) : "",
        rng.RandomString(rng.UniformInt(50), "klm=&")));
  }
  compress::LzwCompressor compressor;
  DistanceOptions options;
  compress::NcdCalculator ncd(&compressor);
  PacketDistance metric(&ncd, options);
  DistanceMatrix serial = ComputeDistanceMatrix(packets, metric);
  for (unsigned threads : {1u, 2u, 3u, 8u, 0u}) {
    DistanceMatrix parallel =
        ComputeDistanceMatrixParallel(packets, &compressor, options, threads);
    for (size_t i = 0; i < packets.size(); ++i) {
      for (size_t j = i + 1; j < packets.size(); ++j) {
        ASSERT_EQ(parallel.at(i, j), serial.at(i, j))
            << "threads=" << threads << " i=" << i << " j=" << j;
      }
    }
  }
}

TEST_F(DistanceTest, ParallelMatrixTinyInputs) {
  compress::LzwCompressor compressor;
  DistanceOptions options;
  EXPECT_EQ(ComputeDistanceMatrixParallel({}, &compressor, options, 4).size(),
            0u);
  std::vector<HttpPacket> one = {
      MakeTestPacket("x.com", "1.2.3.4", 80, "GET / HTTP/1.1")};
  EXPECT_EQ(ComputeDistanceMatrixParallel(one, &compressor, options, 4).size(),
            1u);
}

TEST_F(DistanceTest, ComputeDistanceMatrixMatchesMetric) {
  PacketDistance metric(&ncd_);
  std::vector<HttpPacket> packets = {
      MakeTestPacket("a.com", "1.2.3.4", 80, "GET /a HTTP/1.1"),
      MakeTestPacket("b.com", "5.6.7.8", 80, "GET /b HTTP/1.1"),
      MakeTestPacket("c.com", "9.9.9.9", 8080, "POST /c HTTP/1.1"),
  };
  DistanceMatrix m = ComputeDistanceMatrix(packets, metric);
  for (size_t i = 0; i < 3; ++i) {
    for (size_t j = i + 1; j < 3; ++j) {
      EXPECT_DOUBLE_EQ(m.at(i, j), metric.Distance(packets[i], packets[j]));
    }
  }
}

}  // namespace
}  // namespace leakdet::core
