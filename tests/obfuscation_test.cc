// The §VI obfuscation scenario end to end: a module XOR-encodes the IMEI
// with an SDK-wide key. Without the key the payload check is blind; with the
// reverse-engineered key the ciphertext becomes a needle, the packets enter
// the suspicious group, and signature generation detects the module's
// traffic like any other leak.

#include <gtest/gtest.h>

#include "core/payload_check.h"
#include "core/pipeline.h"
#include "crypto/xor_obfuscate.h"
#include "sim/trafficgen.h"

namespace leakdet {
namespace {

const sim::Trace& ObfuscatedTrace() {
  static const sim::Trace* trace = [] {
    sim::TrafficConfig config;
    config.seed = 99;
    config.scale = 0.1;
    config.include_obfuscated_module = true;
    return new sim::Trace(sim::GenerateTrace(config));
  }();
  return *trace;
}

size_t CountObfuscatedPackets(const sim::Trace& trace) {
  size_t count = 0;
  for (const sim::LabeledPacket& lp : trace.packets) {
    if (trace.services[lp.service_index].name == "ShadyTrack") ++count;
  }
  return count;
}

TEST(ObfuscationTest, ModuleGeneratesTraffic) {
  EXPECT_GT(CountObfuscatedPackets(ObfuscatedTrace()), 10u);
}

TEST(ObfuscationTest, ObfuscatedPacketsCarryCiphertextNotPlaintext) {
  const sim::Trace& trace = ObfuscatedTrace();
  std::string cipher = crypto::XorObfuscateHex(
      trace.device.imei, std::string(sim::kObfuscationSdkKey));
  for (const sim::LabeledPacket& lp : trace.packets) {
    if (trace.services[lp.service_index].name != "ShadyTrack") continue;
    std::string content = core::PacketContent(lp.packet);
    EXPECT_EQ(content.find(trace.device.imei), std::string::npos)
        << "plaintext IMEI leaked";
    EXPECT_NE(content.find(cipher), std::string::npos)
        << "expected ciphertext missing";
    // Ground truth labels it as an IMEI leak.
    ASSERT_EQ(lp.truth.size(), 1u);
    EXPECT_EQ(lp.truth[0], core::SensitiveType::kImei);
  }
}

TEST(ObfuscationTest, OracleBlindWithoutKey) {
  const sim::Trace& trace = ObfuscatedTrace();
  core::PayloadCheck blind({trace.device.ToTokens()});
  for (const sim::LabeledPacket& lp : trace.packets) {
    if (trace.services[lp.service_index].name != "ShadyTrack") continue;
    EXPECT_FALSE(blind.IsSensitive(lp.packet));
  }
}

TEST(ObfuscationTest, OracleSeesWithKey) {
  const sim::Trace& trace = ObfuscatedTrace();
  core::PayloadCheck informed({trace.device.ToTokens()},
                              {std::string(sim::kObfuscationSdkKey)});
  size_t flagged = 0;
  for (const sim::LabeledPacket& lp : trace.packets) {
    if (trace.services[lp.service_index].name != "ShadyTrack") continue;
    if (informed.IsSensitive(lp.packet)) ++flagged;
    auto types = informed.Check(lp.packet);
    ASSERT_EQ(types.size(), 1u);
    EXPECT_EQ(types[0], core::SensitiveType::kImei);
  }
  EXPECT_EQ(flagged, CountObfuscatedPackets(trace));
}

TEST(ObfuscationTest, SignaturesDetectObfuscatedLeakage) {
  // With the key in the payload check, the pipeline treats the module like
  // any other leaker; the generated signature keys on the invariant
  // ciphertext and catches the module's packets.
  const sim::Trace& trace = ObfuscatedTrace();
  core::PayloadCheck informed({trace.device.ToTokens()},
                              {std::string(sim::kObfuscationSdkKey)});
  std::vector<core::HttpPacket> suspicious, normal;
  informed.Split(trace.RawPackets(), &suspicious, &normal);

  core::PipelineOptions options;
  // Large enough that the ~40 obfuscated packets (of ~2,400 suspicious) are
  // sampled at least twice with overwhelming probability.
  options.sample_size = 500;
  options.seed = 7;
  auto result = core::RunPipeline(suspicious, normal, options);
  ASSERT_TRUE(result.ok());
  core::Detector detector(std::move(result->signatures));

  size_t detected = 0, total = 0;
  for (const sim::LabeledPacket& lp : trace.packets) {
    if (trace.services[lp.service_index].name != "ShadyTrack") continue;
    ++total;
    if (detector.IsSensitive(lp.packet)) ++detected;
  }
  ASSERT_GT(total, 0u);
  EXPECT_GT(static_cast<double>(detected) / static_cast<double>(total), 0.8)
      << detected << "/" << total;
}

}  // namespace
}  // namespace leakdet
