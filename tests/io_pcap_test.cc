#include "io/pcap.h"

#include <gtest/gtest.h>

#include "core/payload_check.h"
#include "sim/trafficgen.h"

namespace leakdet::io {
namespace {

core::HttpPacket MakePkt(uint32_t app, const std::string& host,
                         const char* ip, uint16_t port,
                         const std::string& rline,
                         const std::string& cookie = "",
                         const std::string& body = "") {
  core::HttpPacket p;
  p.app_id = app;
  p.destination.host = host;
  p.destination.ip = *net::Ipv4Address::Parse(ip);
  p.destination.port = port;
  p.request_line = rline;
  p.cookie = cookie;
  p.body = body;
  return p;
}

TEST(InternetChecksumTest, KnownVector) {
  // RFC 1071 example: 0x0001 0xf203 0xf4f5 0xf6f7 -> checksum 0x220d.
  std::string data = {0x00, 0x01, static_cast<char>(0xf2), 0x03,
                      static_cast<char>(0xf4), static_cast<char>(0xf5),
                      static_cast<char>(0xf6), static_cast<char>(0xf7)};
  EXPECT_EQ(InternetChecksum(data), 0x220D);
}

TEST(InternetChecksumTest, ChecksummedDataVerifiesToZero) {
  std::string data = "any bytes at all, odd length!";
  uint16_t checksum = InternetChecksum(data);
  std::string with;
  with += data;
  // Append checksum big-endian; total must verify to zero... but ones'
  // complement verification requires the checksum aligned at a 16-bit
  // boundary, so pad first.
  if (with.size() % 2 != 0) with += '\0';
  with += static_cast<char>(checksum >> 8);
  with += static_cast<char>(checksum & 0xFF);
  EXPECT_EQ(InternetChecksum(with), 0);
}

TEST(PcapTest, RoundTripBasicPackets) {
  std::vector<core::HttpPacket> packets = {
      MakePkt(7, "r.admob.com", "74.125.3.9", 80,
              "GET /ad_source.php?pub=k1&muid=9001509 HTTP/1.1"),
      MakePkt(12, "api.zqapk.com", "122.193.8.8", 8080,
              "POST /client/api.php HTTP/1.1", "sid=feedface",
              "imei=352099001761481&operator=NTT%20DOCOMO"),
  };
  PcapWriter writer;
  std::string capture = writer.Write(packets);
  auto restored = ReadPcap(capture);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  ASSERT_EQ(restored->size(), packets.size());
  for (size_t i = 0; i < packets.size(); ++i) {
    EXPECT_EQ((*restored)[i], packets[i]) << i;
  }
}

TEST(PcapTest, EmptyCapture) {
  PcapWriter writer;
  std::string capture = writer.Write({});
  EXPECT_EQ(capture.size(), 24u);  // global header only
  auto restored = ReadPcap(capture);
  ASSERT_TRUE(restored.ok());
  EXPECT_TRUE(restored->empty());
}

TEST(PcapTest, ReadsByteSwappedCaptures) {
  // Simulate a capture written on an opposite-endianness host: swap every
  // file-order header field (magic, global header, record headers); the
  // frame bytes are endianness-independent.
  PcapWriter writer;
  std::string capture = writer.Write(
      {MakePkt(3, "x.com", "9.8.7.6", 80, "GET /swapped HTTP/1.1")});
  auto swap32 = [&capture](size_t pos) {
    std::swap(capture[pos], capture[pos + 3]);
    std::swap(capture[pos + 1], capture[pos + 2]);
  };
  auto swap16 = [&capture](size_t pos) {
    std::swap(capture[pos], capture[pos + 1]);
  };
  swap32(0);              // magic
  swap16(4);              // version major
  swap16(6);              // version minor
  swap32(8);              // thiszone
  swap32(12);             // sigfigs
  swap32(16);             // snaplen
  swap32(20);             // link type
  for (size_t pos = 24; pos < 24 + 16; pos += 4) swap32(pos);  // record hdr
  auto restored = ReadPcap(capture);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  ASSERT_EQ(restored->size(), 1u);
  EXPECT_EQ((*restored)[0].request_line, "GET /swapped HTTP/1.1");
}

TEST(PcapTest, RejectsBadMagic) {
  PcapWriter writer;
  std::string capture = writer.Write({});
  capture[0] = 0x00;
  EXPECT_FALSE(ReadPcap(capture).ok());
}

TEST(PcapTest, RejectsTruncatedRecord) {
  PcapWriter writer;
  std::string capture = writer.Write(
      {MakePkt(1, "x.com", "1.2.3.4", 80, "GET / HTTP/1.1")});
  capture.resize(capture.size() - 10);
  EXPECT_FALSE(ReadPcap(capture).ok());
}

TEST(PcapTest, DetectsCorruptedPayloadViaIpChecksum) {
  PcapWriter writer;
  std::string capture = writer.Write(
      {MakePkt(1, "x.com", "1.2.3.4", 80, "GET / HTTP/1.1")});
  // Flip a byte inside the IPv4 header (after the 24B global header + 16B
  // record header + 14B Ethernet): the checksum must catch it.
  capture[24 + 16 + 14 + 8] ^= 0x40;  // TTL byte
  EXPECT_FALSE(ReadPcap(capture).ok());
}

TEST(PcapTest, AppIdRecoveredFromSourcePort) {
  PcapWriter writer;
  std::string capture = writer.Write(
      {MakePkt(4242, "x.com", "9.9.9.9", 80, "GET /a HTTP/1.1")});
  auto restored = ReadPcap(capture);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ((*restored)[0].app_id, 4242u);
}

TEST(PcapTest, GeneratedTraceSurvivesExportReimportAndRelabeling) {
  sim::TrafficConfig config;
  config.seed = 77;
  config.scale = 0.01;
  sim::Trace trace = sim::GenerateTrace(config);

  PcapWriter writer;
  std::string capture = writer.Write(trace.RawPackets());
  auto restored = ReadPcap(capture);
  ASSERT_TRUE(restored.ok());
  ASSERT_EQ(restored->size(), trace.packets.size());

  // pcap drops ground-truth labels; the oracle must re-derive the same
  // suspicious/normal split from the reconstructed bytes.
  core::PayloadCheck oracle({trace.device.ToTokens()});
  size_t relabeled_sensitive = 0, truth_sensitive = 0;
  for (size_t i = 0; i < restored->size(); ++i) {
    if (oracle.IsSensitive((*restored)[i])) ++relabeled_sensitive;
    if (trace.packets[i].sensitive()) ++truth_sensitive;
    EXPECT_EQ((*restored)[i], trace.packets[i].packet);
  }
  EXPECT_EQ(relabeled_sensitive, truth_sensitive);
}

}  // namespace
}  // namespace leakdet::io
