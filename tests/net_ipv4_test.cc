#include "net/ipv4.h"

#include <gtest/gtest.h>

namespace leakdet::net {
namespace {

TEST(Ipv4Test, ParseValid) {
  auto ip = Ipv4Address::Parse("192.0.2.1");
  ASSERT_TRUE(ip.ok());
  EXPECT_EQ(ip->value(), 0xC0000201u);
  EXPECT_EQ(ip->ToString(), "192.0.2.1");
}

TEST(Ipv4Test, ParseBoundaries) {
  EXPECT_EQ(Ipv4Address::Parse("0.0.0.0")->value(), 0u);
  EXPECT_EQ(Ipv4Address::Parse("255.255.255.255")->value(), 0xFFFFFFFFu);
}

TEST(Ipv4Test, ParseRejectsMalformed) {
  const char* bad[] = {
      "",          "1.2.3",      "1.2.3.4.5", "256.1.1.1", "1.2.3.256",
      "01.2.3.4",  "1.2.3.04",   "a.b.c.d",   "1.2.3.4 ",  " 1.2.3.4",
      "1..3.4",    "-1.2.3.4",   "1.2.3.4.",  "1,2,3,4",
  };
  for (const char* s : bad) {
    EXPECT_FALSE(Ipv4Address::Parse(s).ok()) << s;
  }
}

TEST(Ipv4Test, SingleDigitOctetsAllowed) {
  EXPECT_TRUE(Ipv4Address::Parse("1.2.3.4").ok());
  EXPECT_TRUE(Ipv4Address::Parse("0.0.0.1").ok());
}

TEST(Ipv4Test, RoundTripToString) {
  const char* addrs[] = {"10.0.0.1", "172.16.254.3", "8.8.8.8",
                         "203.104.18.77"};
  for (const char* s : addrs) {
    auto ip = Ipv4Address::Parse(s);
    ASSERT_TRUE(ip.ok());
    EXPECT_EQ(ip->ToString(), s);
  }
}

TEST(Ipv4Test, Equality) {
  EXPECT_EQ(*Ipv4Address::Parse("1.2.3.4"), *Ipv4Address::Parse("1.2.3.4"));
  EXPECT_NE(*Ipv4Address::Parse("1.2.3.4"), *Ipv4Address::Parse("1.2.3.5"));
}

TEST(CommonPrefixBitsTest, IdenticalIs32) {
  auto a = *Ipv4Address::Parse("173.194.10.7");
  EXPECT_EQ(CommonPrefixBits(a, a), 32);
}

TEST(CommonPrefixBitsTest, KnownPrefixes) {
  // Same /16, differ at bit 17.
  auto a = *Ipv4Address::Parse("173.194.0.1");
  auto b = *Ipv4Address::Parse("173.194.128.1");
  EXPECT_EQ(CommonPrefixBits(a, b), 16);
  // Differ in the very first bit.
  auto c = *Ipv4Address::Parse("10.0.0.0");
  auto d = *Ipv4Address::Parse("200.0.0.0");
  EXPECT_EQ(CommonPrefixBits(c, d), 0);
  // Differ only in the last bit.
  auto e = *Ipv4Address::Parse("1.2.3.4");
  auto f = *Ipv4Address::Parse("1.2.3.5");
  EXPECT_EQ(CommonPrefixBits(e, f), 31);
}

TEST(CommonPrefixBitsTest, Symmetric) {
  auto a = *Ipv4Address::Parse("61.213.10.1");
  auto b = *Ipv4Address::Parse("61.200.99.5");
  EXPECT_EQ(CommonPrefixBits(a, b), CommonPrefixBits(b, a));
}

TEST(CommonPrefixBitsTest, SameOrgBlocksCloserThanDifferent) {
  // The §IV-B rationale: same-organization blocks share upper bits.
  auto dc1 = *Ipv4Address::Parse("173.194.3.7");
  auto dc2 = *Ipv4Address::Parse("173.194.250.9");
  auto other = *Ipv4Address::Parse("61.213.18.4");
  EXPECT_GT(CommonPrefixBits(dc1, dc2), CommonPrefixBits(dc1, other));
}

}  // namespace
}  // namespace leakdet::net
