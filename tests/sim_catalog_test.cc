#include "sim/catalog.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "net/host.h"
#include "sim/paper_tables.h"

namespace leakdet::sim {
namespace {

TEST(ToSensitiveTypeTest, AllCombinations) {
  using core::SensitiveType;
  EXPECT_EQ(ToSensitiveType(IdKind::kAndroidId, HashMode::kNone),
            SensitiveType::kAndroidId);
  EXPECT_EQ(ToSensitiveType(IdKind::kAndroidId, HashMode::kMd5),
            SensitiveType::kAndroidIdMd5);
  EXPECT_EQ(ToSensitiveType(IdKind::kAndroidId, HashMode::kSha1),
            SensitiveType::kAndroidIdSha1);
  EXPECT_EQ(ToSensitiveType(IdKind::kImei, HashMode::kNone),
            SensitiveType::kImei);
  EXPECT_EQ(ToSensitiveType(IdKind::kImei, HashMode::kMd5),
            SensitiveType::kImeiMd5);
  EXPECT_EQ(ToSensitiveType(IdKind::kImei, HashMode::kSha1),
            SensitiveType::kImeiSha1);
  EXPECT_EQ(ToSensitiveType(IdKind::kImsi, HashMode::kNone),
            SensitiveType::kImsi);
  EXPECT_EQ(ToSensitiveType(IdKind::kSimSerial, HashMode::kNone),
            SensitiveType::kSimSerial);
  EXPECT_EQ(ToSensitiveType(IdKind::kCarrier, HashMode::kNone),
            SensitiveType::kCarrier);
}

TEST(DefaultCatalogTest, CoversEveryTableTwoDomain) {
  auto catalog = DefaultCatalog();
  std::set<std::string> domains;
  for (const auto& svc : catalog) domains.insert(svc.domain);
  for (const auto& row : kPaperTable2) {
    EXPECT_TRUE(domains.count(std::string(row.domain)))
        << "missing service for " << row.domain;
  }
  // Plus zqapk.com from §III-B.
  EXPECT_TRUE(domains.count("zqapk.com"));
}

TEST(DefaultCatalogTest, TargetsMatchTableTwo) {
  auto catalog = DefaultCatalog();
  for (const auto& row : kPaperTable2) {
    for (const auto& svc : catalog) {
      if (svc.domain == row.domain) {
        EXPECT_EQ(svc.target_packets, row.packets) << row.domain;
        EXPECT_EQ(svc.target_apps, row.apps) << row.domain;
      }
    }
  }
}

TEST(DefaultCatalogTest, HostsBelongToDomain) {
  for (const auto& svc : DefaultCatalog()) {
    ASSERT_FALSE(svc.hosts.empty()) << svc.name;
    for (const auto& host : svc.hosts) {
      EXPECT_TRUE(net::IsValidHostname(host)) << host;
      EXPECT_EQ(net::RegistrableDomain(host), svc.domain) << host;
    }
  }
}

TEST(DefaultCatalogTest, PhonePermissionConsistency) {
  // Any service leaking IMEI/IMSI/SIM must require READ_PHONE_STATE.
  for (const auto& svc : DefaultCatalog()) {
    bool leaks_phone_id = false;
    for (const auto& leak : svc.leaks) {
      if (leak.kind == IdKind::kImei || leak.kind == IdKind::kImsi ||
          leak.kind == IdKind::kSimSerial) {
        leaks_phone_id = true;
      }
    }
    if (leaks_phone_id) {
      EXPECT_TRUE(svc.requires_phone_permission) << svc.name;
    }
  }
}

TEST(DefaultCatalogTest, LeakProbabilitiesValid) {
  for (const auto& svc : DefaultCatalog()) {
    for (const auto& leak : svc.leaks) {
      EXPECT_GT(leak.probability, 0.0) << svc.name;
      EXPECT_LE(leak.probability, 1.0) << svc.name;
      EXPECT_GE(leak.uppercase_fraction, 0.0) << svc.name;
      EXPECT_LE(leak.uppercase_fraction, 1.0) << svc.name;
      EXPECT_FALSE(leak.param.empty()) << svc.name;
      if (leak.kind == IdKind::kCarrier) {
        EXPECT_EQ(leak.hash, HashMode::kNone) << svc.name;
      }
    }
  }
}

TEST(LongTailLeakyTest, CoversAllNineTypes) {
  Rng rng(1);
  auto services = MakeLongTailLeakyServices(&rng);
  std::set<core::SensitiveType> types;
  for (const auto& svc : services) {
    ASSERT_EQ(svc.leaks.size(), 1u);
    types.insert(ToSensitiveType(svc.leaks[0].kind, svc.leaks[0].hash));
    EXPECT_GE(svc.target_packets, 1);
    EXPECT_GE(svc.app_pool_id, 0);
    EXPECT_GT(svc.app_pool_size, 0);
    EXPECT_TRUE(net::IsValidHostname(svc.hosts[0])) << svc.hosts[0];
  }
  EXPECT_EQ(types.size(), static_cast<size_t>(core::kNumSensitiveTypes));
}

TEST(LongTailLeakyTest, PerTypePacketBudgetsPreserved) {
  Rng rng(2);
  auto services = MakeLongTailLeakyServices(&rng);
  std::map<int, int> packets_by_pool;
  for (const auto& svc : services) {
    packets_by_pool[svc.app_pool_id] += svc.target_packets;
  }
  // Pool 0 is ANDROID_ID raw (250 packets), pool 7 is IMSI (655) per the
  // calibration table in catalog.cc.
  EXPECT_EQ(packets_by_pool[0], 250);
  EXPECT_EQ(packets_by_pool[7], 655);
}

TEST(LongTailLeakyTest, DeterministicPerSeed) {
  Rng a(3), b(3);
  auto sa = MakeLongTailLeakyServices(&a);
  auto sb = MakeLongTailLeakyServices(&b);
  ASSERT_EQ(sa.size(), sb.size());
  for (size_t i = 0; i < sa.size(); ++i) {
    EXPECT_EQ(sa[i].hosts[0], sb[i].hosts[0]);
    EXPECT_EQ(sa[i].target_packets, sb[i].target_packets);
  }
}

TEST(LongTailNormalTest, GeneratesRequestedCount) {
  Rng rng(4);
  auto services = MakeLongTailNormalServices(&rng, 100);
  EXPECT_EQ(services.size(), 100u);
  for (const auto& svc : services) {
    EXPECT_TRUE(svc.leaks.empty());
    EXPECT_TRUE(net::IsValidHostname(svc.hosts[0])) << svc.hosts[0];
  }
}

TEST(PaperTablesTest, InternalConsistency) {
  int table1_sum = 0;
  for (const auto& row : kPaperTable1) table1_sum += row.apps;
  EXPECT_EQ(table1_sum + kPaperTable1OtherApps, kPaperTotalApps);
  EXPECT_EQ(kPaperSensitivePackets + kPaperNormalPackets, kPaperTotalPackets);
  EXPECT_EQ(kPaperTable3.size(), 9u);
}

}  // namespace
}  // namespace leakdet::sim
