#include "core/signature_server.h"

#include <gtest/gtest.h>

#include "core/flow_monitor.h"
#include "sim/trafficgen.h"
#include "util/rng.h"

namespace leakdet::core {
namespace {

DeviceTokens TestDevice() {
  DeviceTokens d;
  d.android_id = "9774d56d682e549c";
  d.imei = "352099001761481";
  d.carrier = "NTT DOCOMO";
  return d;
}

HttpPacket AdPacket(const std::string& noise, bool leaking) {
  HttpPacket p;
  p.destination.host = "ads.stream-net.com";
  p.destination.ip = *net::Ipv4Address::Parse("31.7.7.7");
  p.destination.port = 80;
  p.request_line = "GET /live/get?k=" + noise +
                   (leaking ? "&udid=9774d56d682e549c" : "") + "&r=" + noise +
                   " HTTP/1.1";
  return p;
}

class SignatureServerTest : public ::testing::Test {
 protected:
  SignatureServerTest() : oracle_({TestDevice()}) {
    options_.retrain_after = 50;
    options_.pipeline.sample_size = 40;
    options_.pipeline.normal_corpus_size = 100;
  }

  PayloadCheck oracle_;
  SignatureServer::Options options_;
};

TEST_F(SignatureServerTest, NoFeedBeforeEnoughSuspiciousTraffic) {
  SignatureServer server(&oracle_, options_);
  Rng rng(1);
  for (int i = 0; i < 49; ++i) {
    EXPECT_FALSE(server.Ingest(AdPacket(rng.RandomHex(6), true)));
  }
  EXPECT_EQ(server.feed_version(), 0u);
  EXPECT_TRUE(server.signatures().empty());
}

TEST_F(SignatureServerTest, RetrainsAtThreshold) {
  SignatureServer server(&oracle_, options_);
  Rng rng(2);
  bool retrained = false;
  for (int i = 0; i < 50; ++i) {
    retrained = server.Ingest(AdPacket(rng.RandomHex(6), true));
  }
  EXPECT_TRUE(retrained);
  EXPECT_EQ(server.feed_version(), 1u);
  EXPECT_GE(server.signatures().size(), 1u);
}

TEST_F(SignatureServerTest, NormalTrafficDoesNotTriggerRetrain) {
  SignatureServer server(&oracle_, options_);
  Rng rng(3);
  for (int i = 0; i < 500; ++i) {
    EXPECT_FALSE(server.Ingest(AdPacket(rng.RandomHex(6), false)));
  }
  EXPECT_EQ(server.feed_version(), 0u);
  EXPECT_EQ(server.suspicious_pool_size(), 0u);
  EXPECT_EQ(server.normal_pool_size(), 500u);
}

TEST_F(SignatureServerTest, FeedDetectsSubsequentLeaks) {
  SignatureServer server(&oracle_, options_);
  Rng rng(4);
  for (int i = 0; i < 60; ++i) {
    server.Ingest(AdPacket(rng.RandomHex(6), true));
  }
  for (int i = 0; i < 60; ++i) {
    server.Ingest(AdPacket(rng.RandomHex(6), false));
  }
  ASSERT_GE(server.feed_version(), 1u);
  Detector detector(server.signatures());
  EXPECT_TRUE(detector.IsSensitive(AdPacket("ffeedd", true)));
  EXPECT_FALSE(detector.IsSensitive(AdPacket("ffeedd", false)));
}

TEST_F(SignatureServerTest, FeedVersionAdvancesAcrossRetrains) {
  SignatureServer server(&oracle_, options_);
  Rng rng(5);
  for (int i = 0; i < 160; ++i) {
    server.Ingest(AdPacket(rng.RandomHex(6), true));
  }
  EXPECT_GE(server.feed_version(), 3u);
}

TEST_F(SignatureServerTest, PoolsEvictFifoAtCap) {
  options_.max_suspicious_pool = 30;
  options_.max_normal_pool = 20;
  options_.retrain_after = 1000000;  // never auto-retrain here
  SignatureServer server(&oracle_, options_);
  Rng rng(6);
  for (int i = 0; i < 100; ++i) {
    server.Ingest(AdPacket(rng.RandomHex(6), true));
    server.Ingest(AdPacket(rng.RandomHex(6), false));
  }
  EXPECT_EQ(server.suspicious_pool_size(), 30u);
  EXPECT_EQ(server.normal_pool_size(), 20u);
}

TEST_F(SignatureServerTest, ManualRetrainWithoutTrafficIsNoop) {
  SignatureServer server(&oracle_, options_);
  EXPECT_FALSE(server.Retrain());
  EXPECT_EQ(server.feed_version(), 0u);
}

TEST_F(SignatureServerTest, FeedRoundTripsToDevice) {
  SignatureServer server(&oracle_, options_);
  Rng rng(7);
  for (int i = 0; i < 60; ++i) {
    server.Ingest(AdPacket(rng.RandomHex(6), true));
  }
  ASSERT_GE(server.feed_version(), 1u);
  auto restored = match::SignatureSet::Deserialize(server.Feed());
  ASSERT_TRUE(restored.ok());
  Detector device_detector(std::move(*restored));
  FlowMonitor monitor(&device_detector, nullptr);  // block-all policy
  EXPECT_EQ(monitor.Mediate(AdPacket("aabbcc", true)),
            FlowVerdict::kBlockedByPolicy);
  EXPECT_EQ(monitor.Mediate(AdPacket("aabbcc", false)),
            FlowVerdict::kPassedSilently);
}

TEST_F(SignatureServerTest, FeedObserverFiresOnEveryRetrain) {
  SignatureServer server(&oracle_, options_);
  std::vector<uint64_t> observed_versions;
  size_t observed_sigs = 0;
  server.SetFeedObserver(
      [&](uint64_t version, const match::SignatureSet& set) {
        observed_versions.push_back(version);
        observed_sigs = set.size();
        // The hook runs after publication: the version is already visible.
        EXPECT_EQ(server.feed_version(), version);
      });
  Rng rng(8);
  for (int i = 0; i < 160; ++i) {
    server.Ingest(AdPacket(rng.RandomHex(6), true));
  }
  ASSERT_GE(server.feed_version(), 3u);
  // One observation per retrain, versions strictly increasing from 1.
  ASSERT_EQ(observed_versions.size(), server.feed_version());
  for (size_t i = 0; i < observed_versions.size(); ++i) {
    EXPECT_EQ(observed_versions[i], i + 1);
  }
  EXPECT_EQ(observed_sigs, server.signatures().size());
}

TEST_F(SignatureServerTest, EndToEndOnSimulatedTrafficStream) {
  sim::TrafficConfig config;
  config.seed = 21;
  config.scale = 0.03;
  sim::Trace trace = sim::GenerateTrace(config);
  PayloadCheck oracle({trace.device.ToTokens()});
  SignatureServer::Options options;
  options.retrain_after = 300;
  options.pipeline.sample_size = 150;
  SignatureServer server(&oracle, options);
  size_t retrains = 0;
  for (const sim::LabeledPacket& lp : trace.packets) {
    if (server.Ingest(lp.packet)) ++retrains;
  }
  EXPECT_GE(retrains, 2u);
  // The final feed catches most leaks in a replay.
  Detector detector(server.signatures());
  size_t detected = 0, sensitive = 0;
  for (const sim::LabeledPacket& lp : trace.packets) {
    if (!lp.sensitive()) continue;
    ++sensitive;
    if (detector.IsSensitive(lp.packet)) ++detected;
  }
  EXPECT_GT(static_cast<double>(detected) / static_cast<double>(sensitive),
            0.6);
}

}  // namespace
}  // namespace leakdet::core
