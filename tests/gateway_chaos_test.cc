// Chaos tests for the serving path (ctest label: chaos). These run the full
// differential harness — gateway + trainer + feed server under seeded fault
// schedules — and the epoch hot-swap invariants under concurrent readers.
// Every test uses fixed seeds, so a failure here replays bit-for-bit with
// `leakdet_chaos --schedule <name> --seed <seed>`.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "gateway/gateway.h"
#include "match/compiled_set.h"
#include "match/signature.h"
#include "testing/chaos.h"
#include "testing/fault_script.h"

namespace leakdet {
namespace {

testing::ChaosOptions SmallConfig(const char* schedule, uint64_t seed) {
  auto script = testing::FaultScript::Builtin(schedule);
  EXPECT_TRUE(script.ok()) << schedule;
  script->set_seed(seed);
  testing::ChaosOptions options;
  options.seed = seed;
  options.script = *script;
  options.shards = 2;
  options.queue_capacity = 64;
  options.epochs = 2;
  options.packets_per_epoch = 40;
  options.feed_fetches_per_epoch = 1;
  options.retrain_after = 12;
  return options;
}

void RunTwiceAndExpectIdentical(const char* schedule, uint64_t seed) {
  testing::ChaosOptions options = SmallConfig(schedule, seed);
  testing::ChaosResult first = testing::RunChaos(options);
  EXPECT_TRUE(first.ok()) << schedule << "\n" << first.Summary();
  EXPECT_EQ(first.epochs, options.epochs) << first.Summary();
  EXPECT_GT(first.verdicts_checked, 0u) << first.Summary();
  // Conservation, exactly: delivered + dropped + in-flight == ingested.
  EXPECT_EQ(first.delivered + first.dropped + first.in_flight,
            first.ingested)
      << first.Summary();

  testing::ChaosResult second = testing::RunChaos(options);
  EXPECT_EQ(first.digest, second.digest)
      << schedule << " diverged across runs\nfirst:  " << first.Summary()
      << "\nsecond: " << second.Summary();
  EXPECT_EQ(first.delivered, second.delivered);
  EXPECT_EQ(first.dropped, second.dropped);
  EXPECT_EQ(first.accepted, second.accepted);
  EXPECT_EQ(first.oracle_mismatches, second.oracle_mismatches);
}

TEST(GatewayChaosTest, ShortIoScheduleIsDeterministicAndOracleClean) {
  RunTwiceAndExpectIdentical("short-io", 42);
}

TEST(GatewayChaosTest, ResetStormScheduleIsDeterministicAndOracleClean) {
  RunTwiceAndExpectIdentical("reset-storm", 43);
}

TEST(GatewayChaosTest, SwapCrashScheduleKillsTheTrainerAndStaysConsistent) {
  testing::ChaosOptions options = SmallConfig("swap-crash", 44);
  testing::ChaosResult result = testing::RunChaos(options);
  EXPECT_TRUE(result.ok()) << result.Summary();
  // swap-crash (trainer_kill_every=2) must actually have exercised the
  // kill/restart path and the overflow probes.
  EXPECT_GT(result.trainer_restarts, 0u) << result.Summary();
  EXPECT_GT(result.overflow_probes, 0u) << result.Summary();
  EXPECT_EQ(result.swaps, result.epochs) << result.Summary();

  testing::ChaosResult again = testing::RunChaos(options);
  EXPECT_EQ(result.digest, again.digest)
      << "swap-crash diverged\nfirst:  " << result.Summary()
      << "\nsecond: " << again.Summary();
}

TEST(GatewayChaosTest, DifferentSeedsProduceDifferentTraffic) {
  testing::ChaosResult a = testing::RunChaos(SmallConfig("short-io", 1));
  testing::ChaosResult b = testing::RunChaos(SmallConfig("short-io", 2));
  EXPECT_TRUE(a.ok()) << a.Summary();
  EXPECT_TRUE(b.ok()) << b.Summary();
  EXPECT_NE(a.digest, b.digest)
      << "two different seeds produced identical verdict streams";
}

// Epoch hot-swap invariant under a concurrent reader storm: a reader must
// never observe a torn epoch (set version outside the [before, after]
// versions it sampled) and the published version must be monotone.
TEST(GatewayChaosTest, HotSwapNeverExposesATornOrRolledBackEpoch) {
  gateway::GatewayOptions options;
  options.num_shards = 1;
  options.queue_capacity = 8;
  gateway::DetectionGateway gateway(options);

  std::atomic<bool> done{false};
  std::atomic<uint64_t> violations{0};
  std::atomic<uint64_t> observations{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&] {
      uint64_t last_seen = 0;
      while (!done.load(std::memory_order_acquire)) {
        uint64_t before = gateway.current_version();
        auto set = gateway.current_set();
        uint64_t after = gateway.current_version();
        observations.fetch_add(1, std::memory_order_relaxed);
        if (before > after) violations.fetch_add(1);
        if (set == nullptr) {
          if (before != 0) violations.fetch_add(1);
        } else if (set->version() < before || set->version() > after) {
          violations.fetch_add(1);  // torn: a version nobody published here
        }
        if (after < last_seen) violations.fetch_add(1);  // rollback
        last_seen = after;
      }
    });
  }

  // Let the readers actually get scheduled before and during the swap storm
  // (on a single core the publish loop could otherwise finish unobserved).
  while (observations.load(std::memory_order_relaxed) == 0) {
    std::this_thread::yield();
  }
  for (uint64_t version = 1; version <= 200; ++version) {
    auto set = std::make_shared<const match::CompiledSignatureSet>(
        match::SignatureSet(), version);
    EXPECT_TRUE(gateway.Publish(set)) << version;
    if (version % 20 == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  // Stale and null publishes must be rejected, never installed.
  EXPECT_FALSE(gateway.Publish(nullptr));
  EXPECT_FALSE(gateway.Publish(
      std::make_shared<const match::CompiledSignatureSet>(
          match::SignatureSet(), 5)));
  EXPECT_FALSE(gateway.Publish(
      std::make_shared<const match::CompiledSignatureSet>(
          match::SignatureSet(), 0)));
  done.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();

  EXPECT_EQ(violations.load(), 0u);
  EXPECT_GT(observations.load(), 0u);
  EXPECT_EQ(gateway.current_version(), 200u);
  EXPECT_EQ(gateway.swaps(), 200u);
}

}  // namespace
}  // namespace leakdet
