#include "eval/roc.h"

#include <gtest/gtest.h>

#include "core/pipeline.h"

namespace leakdet::eval {
namespace {

sim::LabeledPacket Lp(const std::string& rline, bool sensitive) {
  sim::LabeledPacket lp;
  lp.packet.destination.host = "x.com";
  lp.packet.destination.ip = *net::Ipv4Address::Parse("5.5.5.5");
  lp.packet.request_line = rline;
  if (sensitive) lp.truth = {core::SensitiveType::kImei};
  return lp;
}

match::BayesSignatureSet OneSig() {
  match::BayesSignature sig;
  sig.id = "b0";
  sig.tokens = {{"LEAKVAL", 3.0}, {"TPLT", 1.0}};
  sig.threshold = 3.5;
  return match::BayesSignatureSet({sig});
}

std::vector<sim::LabeledPacket> Packets() {
  return {
      Lp("GET /a?TPLT&id=LEAKVAL HTTP/1.1", true),   // margin 0.5
      Lp("GET /a?id=LEAKVAL HTTP/1.1", true),        // margin -0.5
      Lp("GET /a?TPLT HTTP/1.1", false),             // margin -2.5
      Lp("GET /clean HTTP/1.1", false),              // margin -3.5
  };
}

TEST(BayesMarginsTest, ComputesScoreMinusThreshold) {
  auto margins = BayesMargins(OneSig(), Packets());
  ASSERT_EQ(margins.size(), 4u);
  EXPECT_DOUBLE_EQ(margins[0], 0.5);
  EXPECT_DOUBLE_EQ(margins[1], -0.5);
  EXPECT_DOUBLE_EQ(margins[2], -2.5);
  EXPECT_DOUBLE_EQ(margins[3], -3.5);
}

TEST(BayesRocSweepTest, MonotoneTradeoff) {
  auto points = BayesRocSweep(OneSig(), Packets(), {-3.0, -1.0, 0.0, 1.0});
  ASSERT_EQ(points.size(), 4u);
  // offset -3: flags margins >= -3 => 3 packets (2 sensitive, 1 normal).
  EXPECT_DOUBLE_EQ(points[0].recall, 1.0);
  EXPECT_DOUBLE_EQ(points[0].fpr, 0.5);
  // offset -1: flags margins >= -1 => both sensitive, no normal.
  EXPECT_DOUBLE_EQ(points[1].recall, 1.0);
  EXPECT_DOUBLE_EQ(points[1].fpr, 0.0);
  // offset 0: only the strongest sensitive packet.
  EXPECT_DOUBLE_EQ(points[2].recall, 0.5);
  EXPECT_DOUBLE_EQ(points[2].fpr, 0.0);
  // offset 1: nothing.
  EXPECT_DOUBLE_EQ(points[3].recall, 0.0);
  // Recall never increases as the offset rises.
  for (size_t i = 1; i < points.size(); ++i) {
    EXPECT_LE(points[i].recall, points[i - 1].recall);
    EXPECT_LE(points[i].fpr, points[i - 1].fpr);
  }
}

TEST(RocAucTest, PerfectAndDegenerate) {
  // A sweep containing a perfect operating point (recall 1, fpr 0).
  std::vector<RocPoint> perfect = {{0, 1.0, 0.0}, {1, 0.0, 0.0}};
  EXPECT_NEAR(RocAuc(perfect), 1.0, 1e-9);
  EXPECT_DOUBLE_EQ(RocAuc({}), 0.0);
  EXPECT_DOUBLE_EQ(RocAuc({{0, 0.5, 0.5}}), 0.0);
}

TEST(RocAucTest, SeparableBeatsOverlapping) {
  auto points_good = BayesRocSweep(OneSig(), Packets(),
                                   {-4, -3, -2, -1, 0, 1});
  double auc_good = RocAuc(points_good);
  EXPECT_GT(auc_good, 0.95);  // this toy set is separable at offset -1
}

TEST(BayesRocSweepTest, EmptySignatureSetFlagsNothing) {
  match::BayesSignatureSet empty;
  auto points = BayesRocSweep(empty, Packets(), {0.0});
  ASSERT_EQ(points.size(), 1u);
  EXPECT_DOUBLE_EQ(points[0].recall, 0.0);
  EXPECT_DOUBLE_EQ(points[0].fpr, 0.0);
}

}  // namespace
}  // namespace leakdet::eval
