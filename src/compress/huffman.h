#ifndef LEAKDET_COMPRESS_HUFFMAN_H_
#define LEAKDET_COMPRESS_HUFFMAN_H_

#include <cstdint>
#include <vector>

#include "compress/bitstream.h"
#include "util/status.h"
#include "util/statusor.h"

namespace leakdet::compress {

/// Builds Huffman code lengths for `freqs` (one entry per symbol; zero means
/// the symbol is unused). Lengths are canonical-ready; at most `max_len`
/// bits (lengths are rebalanced if the optimal tree is deeper). A single
/// used symbol gets length 1.
std::vector<uint8_t> BuildHuffmanCodeLengths(const std::vector<uint64_t>& freqs,
                                             int max_len = 24);

/// Canonical Huffman encoder: assigns codes from code lengths (symbols with
/// equal lengths are ordered by symbol index) and writes symbols to a
/// BitWriter. Codes are emitted MSB-first so that the decoder can consume
/// them bit by bit.
class HuffmanEncoder {
 public:
  /// `lengths[i]` is the code length of symbol i (0 = unused).
  explicit HuffmanEncoder(const std::vector<uint8_t>& lengths);

  /// Writes symbol `sym`; it must have a nonzero code length.
  void Encode(uint32_t sym, BitWriter* writer) const;

  /// Code length of `sym` in bits (0 = unused).
  int length(uint32_t sym) const { return lengths_[sym]; }

 private:
  std::vector<uint8_t> lengths_;
  std::vector<uint32_t> codes_;  // canonical code, MSB-first
};

/// Canonical Huffman decoder matching `HuffmanEncoder`.
class HuffmanDecoder {
 public:
  /// Builds decode tables; fails if the length set is not a valid prefix code
  /// (over-subscribed Kraft sum).
  static StatusOr<HuffmanDecoder> Build(const std::vector<uint8_t>& lengths);

  /// Reads one symbol. Fails with Corruption on an invalid code or underrun.
  Status Decode(BitReader* reader, uint32_t* sym) const;

 private:
  HuffmanDecoder() = default;
  // first_code_[l] = canonical code of first symbol of length l;
  // offset_[l] = index into symbols_ of that first symbol.
  std::vector<uint32_t> first_code_;
  std::vector<uint32_t> count_;
  std::vector<uint32_t> offset_;
  std::vector<uint32_t> symbols_;  // sorted by (length, symbol)
  int max_len_ = 0;
};

}  // namespace leakdet::compress

#endif  // LEAKDET_COMPRESS_HUFFMAN_H_
