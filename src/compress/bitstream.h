#ifndef LEAKDET_COMPRESS_BITSTREAM_H_
#define LEAKDET_COMPRESS_BITSTREAM_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "util/status.h"

namespace leakdet::compress {

/// Appends bit fields (LSB-first within each byte) to a byte string.
class BitWriter {
 public:
  /// Writes the low `nbits` bits of `value` (0 <= nbits <= 57).
  void WriteBits(uint64_t value, int nbits);

  /// Flushes any partial byte (zero-padded) and returns the buffer.
  std::string Finish();

  /// Number of whole bytes written so far (excluding a partial byte).
  size_t size_bytes() const { return out_.size(); }

 private:
  std::string out_;
  uint64_t acc_ = 0;
  int acc_bits_ = 0;
};

/// Reads bit fields written by `BitWriter`.
class BitReader {
 public:
  explicit BitReader(std::string_view data) : data_(data) {}

  /// Reads `nbits` bits into `*value`. Fails with Corruption on underrun.
  Status ReadBits(int nbits, uint64_t* value);

  /// Reads a single bit; returns -1 on underrun.
  int ReadBit();

  /// True when all bits (including any zero padding) are consumed.
  bool Exhausted() const {
    return pos_ >= data_.size() && acc_bits_ == 0;
  }

 private:
  std::string_view data_;
  size_t pos_ = 0;
  uint64_t acc_ = 0;
  int acc_bits_ = 0;
};

/// Appends `value` to `out` in LEB128 (7 bits per byte, little-endian).
void AppendVarint(uint64_t value, std::string* out);

/// Parses a LEB128 varint from `data` starting at `*pos`, advancing `*pos`.
Status ReadVarint(std::string_view data, size_t* pos, uint64_t* value);

}  // namespace leakdet::compress

#endif  // LEAKDET_COMPRESS_BITSTREAM_H_
