#include "compress/compressor.h"

#include <cmath>
#include <cstdint>

namespace leakdet::compress {

size_t Compressor::CompressedSize(std::string_view input) const {
  StatusOr<std::string> c = Compress(input);
  // Compressors that can fail must override CompressedSize; the built-in
  // codecs are total functions of their input.
  if (!c.ok()) return input.size() + 1;
  return c->size();
}

StatusOr<std::string> EntropyEstimator::Compress(std::string_view) const {
  return Status::Unimplemented("EntropyEstimator is a size model, not a codec");
}

StatusOr<std::string> EntropyEstimator::Decompress(std::string_view) const {
  return Status::Unimplemented("EntropyEstimator is a size model, not a codec");
}

size_t EntropyEstimator::CompressedSize(std::string_view input) const {
  if (input.empty()) return 1;
  uint64_t freq[256] = {0};
  for (unsigned char c : input) freq[c]++;
  double bits = 0;
  int distinct = 0;
  const double n = static_cast<double>(input.size());
  for (uint64_t f : freq) {
    if (f == 0) continue;
    ++distinct;
    double p = static_cast<double>(f) / n;
    bits += static_cast<double>(f) * -std::log2(p);
  }
  // Shannon bound plus a simple model cost: one byte per distinct symbol
  // (value) plus two bytes per frequency, plus a small header.
  size_t model = static_cast<size_t>(distinct) * 3 + 2;
  return static_cast<size_t>(std::ceil(bits / 8.0)) + model;
}

StatusOr<std::unique_ptr<Compressor>> MakeCompressor(std::string_view name) {
  if (name == "lz77h") {
    return std::unique_ptr<Compressor>(new Lz77HuffmanCompressor());
  }
  if (name == "lzw") {
    return std::unique_ptr<Compressor>(new LzwCompressor());
  }
  if (name == "entropy") {
    return std::unique_ptr<Compressor>(new EntropyEstimator());
  }
  return Status::InvalidArgument("unknown compressor: " + std::string(name));
}

}  // namespace leakdet::compress
