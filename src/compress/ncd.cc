#include "compress/ncd.h"

#include <algorithm>

namespace leakdet::compress {

size_t NcdCalculator::CompressedSize(std::string_view x) {
  auto it = cache_.find(std::string(x));
  if (it != cache_.end()) return it->second;
  size_t size = compressor_->CompressedSize(x);
  cache_.emplace(std::string(x), size);
  return size;
}

double NcdCalculator::Ncd(std::string_view x, std::string_view y) {
  if (x.empty() && y.empty()) return 0.0;
  size_t cx = CompressedSize(x);
  size_t cy = CompressedSize(y);
  std::string xy;
  xy.reserve(x.size() + y.size());
  xy.append(x);
  xy.append(y);
  size_t cxy = compressor_->CompressedSize(xy);
  size_t mn = std::min(cx, cy);
  size_t mx = std::max(cx, cy);
  if (mx == 0) return 0.0;
  double v = (static_cast<double>(cxy) - static_cast<double>(mn)) /
             static_cast<double>(mx);
  return std::clamp(v, 0.0, 1.0);
}

}  // namespace leakdet::compress
