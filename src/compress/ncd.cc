#include "compress/ncd.h"

#include <algorithm>
#include <thread>
#include <utility>

namespace leakdet::compress {

double NcdFromSizes(size_t cx, size_t cy, size_t cxy) {
  size_t mn = std::min(cx, cy);
  size_t mx = std::max(cx, cy);
  if (mx == 0) return 0.0;
  double v = (static_cast<double>(cxy) - static_cast<double>(mn)) /
             static_cast<double>(mx);
  return std::clamp(v, 0.0, 1.0);
}

size_t CanonicalPairCompressedSize(const Compressor& compressor,
                                   std::string_view x, std::string_view y) {
  if (y < x) std::swap(x, y);
  std::string xy;
  xy.reserve(x.size() + y.size());
  xy.append(x);
  xy.append(y);
  return compressor.CompressedSize(xy);
}

size_t NcdCalculator::CompressedSize(std::string_view x) {
  auto it = cache_.find(x);
  if (it != cache_.end()) {
    ++hits_;
    return it->second;
  }
  ++misses_;
  size_t size = compressor_->CompressedSize(x);
  cache_.emplace(std::string(x), size);
  return size;
}

double NcdCalculator::Ncd(std::string_view x, std::string_view y) {
  if (x.empty() && y.empty()) return 0.0;
  size_t cx = CompressedSize(x);
  size_t cy = CompressedSize(y);
  size_t cxy = CanonicalPairCompressedSize(*compressor_, x, y);
  return NcdFromSizes(cx, cy, cxy);
}

NcdPairCache::NcdPairCache(const Compressor* compressor,
                           std::vector<std::string_view> strings)
    : compressor_(compressor),
      strings_(std::move(strings)),
      sizes_(strings_.size(), 0),
      streams_(strings_.size()) {}

void NcdPairCache::PrecomputeSizes(unsigned num_threads) {
  const size_t n = strings_.size();
  if (n == 0) return;
  std::atomic<size_t> cursor{0};
  // Chunked claims: singleton compressions vary wildly in cost (empty
  // cookies vs multi-KB bodies), so fixed splits would straggle.
  const size_t chunk = std::max<size_t>(1, n / 64);
  auto worker = [&] {
    for (;;) {
      size_t begin = cursor.fetch_add(chunk, std::memory_order_relaxed);
      if (begin >= n) return;
      size_t end = std::min(n, begin + chunk);
      for (size_t i = begin; i < end; ++i) {
        // One absorption per string yields both C(x) and (when the codec
        // supports it) the frozen state pair compressions resume from.
        streams_[i] = compressor_->NewStream(strings_[i]);
        sizes_[i] = streams_[i] != nullptr
                        ? streams_[i]->SizeWithSuffix({})
                        : compressor_->CompressedSize(strings_[i]);
      }
    }
  };
  if (num_threads <= 1) {
    worker();
    return;
  }
  std::vector<std::thread> workers;
  workers.reserve(num_threads);
  for (unsigned w = 0; w < num_threads; ++w) workers.emplace_back(worker);
  for (std::thread& t : workers) t.join();
}

double NcdPairCache::Ncd(uint32_t x, uint32_t y) {
  if (x > y) std::swap(x, y);  // canonical (min_id, max_id) key
  std::string_view sx = strings_[x];
  std::string_view sy = strings_[y];
  if (sx.empty() && sy.empty()) return 0.0;
  uint64_t key = (static_cast<uint64_t>(x) << 32) | y;
  Shard& shard = shards_[key % kShardCount];
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.pairs.find(key);
    if (it != shard.pairs.end()) {
      pair_hits_.fetch_add(1, std::memory_order_relaxed);
      return it->second;
    }
  }
  // Compute outside the lock: two threads may race to the same pair, but
  // the value is a pure function so the duplicate insert is benign. The
  // concatenation orientation is canonical (lexicographically smaller
  // string first), matching CanonicalPairCompressedSize.
  uint32_t prefix = sx <= sy ? x : y;
  uint32_t suffix = prefix == x ? y : x;
  size_t cxy = streams_[prefix] != nullptr
                   ? streams_[prefix]->SizeWithSuffix(strings_[suffix])
                   : CanonicalPairCompressedSize(*compressor_, sx, sy);
  double v = NcdFromSizes(sizes_[x], sizes_[y], cxy);
  pairs_computed_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.pairs.emplace(key, v);
  }
  return v;
}

}  // namespace leakdet::compress
