#include <cstdint>
#include <memory>
#include <string>
#include <algorithm>
#include <vector>

#include "compress/bitstream.h"
#include "compress/compressor.h"

namespace leakdet::compress {

namespace {

constexpr char kMagic = 'W';
constexpr int kInitialBits = 9;
constexpr int kMaxBits = 16;
constexpr uint32_t kMaxCodes = uint32_t{1} << kMaxBits;

// Dictionary key: (prefix code << 8) | next byte.
uint64_t Key(uint32_t prefix, uint8_t next) {
  return (static_cast<uint64_t>(prefix) << 8) | next;
}

int BitsForCode(uint32_t next_code) {
  int bits = kInitialBits;
  while ((uint32_t{1} << bits) < next_code && bits < kMaxBits) ++bits;
  return bits;
}

size_t VarintLength(uint64_t value) {
  size_t len = 1;
  while (value >= 0x80) {
    value >>= 7;
    ++len;
  }
  return len;
}

/// Open-addressing (prefix, byte) -> code table. The encoder probes the
/// dictionary once per input byte, so lookup cost dominates encode time;
/// linear probing over flat arrays avoids unordered_map's per-node
/// allocation and pointer chasing on that hot path. Keys fit in 24 bits
/// (16-bit code << 8 | byte), so ~0 is a safe empty sentinel.
class FlatCodeTable {
 public:
  explicit FlatCodeTable(size_t expected_entries = 512) {
    size_t cap = 64;
    while (cap * 7 < expected_entries * 10) cap <<= 1;
    keys_.assign(cap, kEmpty);
    vals_.resize(cap);
    mask_ = cap - 1;
  }

  /// Pointer to the stored code, or nullptr when absent.
  const uint32_t* Find(uint64_t key) const {
    size_t i = Hash(key) & mask_;
    while (keys_[i] != kEmpty) {
      if (keys_[i] == key) return &vals_[i];
      i = (i + 1) & mask_;
    }
    return nullptr;
  }

  /// `key` must not already be present (LZW only inserts after a miss).
  void Insert(uint64_t key, uint32_t val) {
    if ((size_ + 1) * 10 > keys_.size() * 7) Grow();
    size_t i = Hash(key) & mask_;
    while (keys_[i] != kEmpty) i = (i + 1) & mask_;
    keys_[i] = key;
    vals_[i] = val;
    ++size_;
  }

 private:
  static constexpr uint64_t kEmpty = ~uint64_t{0};

  static size_t Hash(uint64_t key) {
    // Fibonacci hash; the top 24 bits cover any reachable table size
    // (at most 2 * kMaxCodes slots).
    return static_cast<size_t>((key * uint64_t{0x9E3779B97F4A7C15}) >> 40);
  }

  void Grow() {
    std::vector<uint64_t> old_keys = std::move(keys_);
    std::vector<uint32_t> old_vals = std::move(vals_);
    keys_.assign(old_keys.size() * 2, kEmpty);
    vals_.resize(old_vals.size() * 2);
    mask_ = keys_.size() - 1;
    for (size_t i = 0; i < old_keys.size(); ++i) {
      if (old_keys[i] == kEmpty) continue;
      size_t j = Hash(old_keys[i]) & mask_;
      while (keys_[j] != kEmpty) j = (j + 1) & mask_;
      keys_[j] = old_keys[i];
      vals_[j] = old_vals[i];
    }
  }

  std::vector<uint64_t> keys_;
  std::vector<uint32_t> vals_;
  size_t mask_ = 0;
  size_t size_ = 0;
};

/// The encoder state machine shared by Compress, the count-only
/// CompressedSize, and stream resumption. `Emit` is called with
/// (code, width) exactly as Compress writes them, so every consumer sees
/// the identical code sequence.
struct LzwEncoderState {
  FlatCodeTable dict;
  uint32_t next_code = 256;
  uint32_t cur = 0;
  bool has_cur = false;

  template <typename Emit>
  void Absorb(std::string_view input, const Emit& emit) {
    size_t i = 0;
    if (!has_cur) {
      if (input.empty()) return;
      cur = static_cast<uint8_t>(input[0]);
      has_cur = true;
      i = 1;
    }
    for (; i < input.size(); ++i) {
      uint8_t c = static_cast<uint8_t>(input[i]);
      if (const uint32_t* code = dict.Find(Key(cur, c))) {
        cur = *code;
        continue;
      }
      emit(cur, BitsForCode(next_code + 1));
      if (next_code < kMaxCodes) {
        dict.Insert(Key(cur, c), next_code++);
      }
      cur = c;
    }
  }
};

/// Replays `suffix` against a frozen prefix state and returns the total
/// payload bit count (including the final pending-phrase emission). New
/// dictionary entries discovered in the suffix go into a local overlay, so
/// the frozen state stays shareable across concurrent callers.
size_t ResumeBits(const LzwEncoderState& frozen, size_t frozen_bits,
                  std::string_view suffix) {
  // At most one overlay entry is minted per suffix byte.
  FlatCodeTable overlay(std::min<size_t>(suffix.size(), kMaxCodes));
  uint32_t next_code = frozen.next_code;
  uint32_t cur = frozen.cur;
  bool has_cur = frozen.has_cur;
  size_t bits = frozen_bits;
  size_t i = 0;
  if (!has_cur) {
    if (suffix.empty()) return bits;
    cur = static_cast<uint8_t>(suffix[0]);
    has_cur = true;
    i = 1;
  }
  for (; i < suffix.size(); ++i) {
    uint8_t c = static_cast<uint8_t>(suffix[i]);
    uint64_t key = Key(cur, c);
    if (const uint32_t* code = frozen.dict.Find(key)) {
      cur = *code;
      continue;
    }
    // A key minted during the suffix cannot collide with the frozen
    // dictionary (entries are only added on a miss against both).
    if (const uint32_t* code = overlay.Find(key)) {
      cur = *code;
      continue;
    }
    bits += static_cast<size_t>(BitsForCode(next_code + 1));
    if (next_code < kMaxCodes) {
      overlay.Insert(key, next_code++);
    }
    cur = c;
  }
  if (has_cur) bits += static_cast<size_t>(BitsForCode(next_code + 1));
  return bits;
}

class LzwStream : public Compressor::Stream {
 public:
  LzwStream(LzwEncoderState state, size_t bits, size_t prefix_len)
      : state_(std::move(state)), bits_(bits), prefix_len_(prefix_len) {}

  size_t SizeWithSuffix(std::string_view suffix) const override {
    size_t total = prefix_len_ + suffix.size();
    size_t header = 1 + VarintLength(total);
    if (total == 0) return header;
    return header + (ResumeBits(state_, bits_, suffix) + 7) / 8;
  }

 private:
  LzwEncoderState state_;
  size_t bits_;  ///< payload bits emitted inside the prefix
  size_t prefix_len_;
};

}  // namespace

StatusOr<std::string> LzwCompressor::Compress(std::string_view input) const {
  std::string out;
  out += kMagic;
  AppendVarint(input.size(), &out);
  if (input.empty()) return out;

  LzwEncoderState state;
  BitWriter writer;
  // Emit `cur` with the current code width; width grows with the
  // dictionary. Must match the decoder's view: the decoder will have
  // next_code + 1 entries *after* consuming this code, so the width for
  // this code covers codes up to next_code.
  state.Absorb(input,
               [&writer](uint32_t code, int bits) {
                 writer.WriteBits(code, bits);
               });
  writer.WriteBits(state.cur, BitsForCode(state.next_code + 1));
  out += writer.Finish();
  return out;
}

size_t LzwCompressor::CompressedSize(std::string_view input) const {
  size_t header = 1 + VarintLength(input.size());
  if (input.empty()) return header;
  LzwEncoderState state;
  size_t bits = 0;
  state.Absorb(input, [&bits](uint32_t, int nbits) {
    bits += static_cast<size_t>(nbits);
  });
  bits += static_cast<size_t>(BitsForCode(state.next_code + 1));
  return header + (bits + 7) / 8;
}

std::unique_ptr<Compressor::Stream> LzwCompressor::NewStream(
    std::string_view prefix) const {
  LzwEncoderState state;
  size_t bits = 0;
  state.Absorb(prefix, [&bits](uint32_t, int nbits) {
    bits += static_cast<size_t>(nbits);
  });
  return std::make_unique<LzwStream>(std::move(state), bits, prefix.size());
}

StatusOr<std::string> LzwCompressor::Decompress(
    std::string_view compressed) const {
  size_t pos = 0;
  if (compressed.empty() || compressed[pos++] != kMagic) {
    return Status::Corruption("bad lzw magic");
  }
  uint64_t original_size;
  LEAKDET_RETURN_IF_ERROR(ReadVarint(compressed, &pos, &original_size));
  if (original_size == 0) return std::string();

  BitReader reader(compressed.substr(pos));
  // entries[i] = (prefix code or kNoPrefix, byte)
  constexpr uint32_t kNoPrefix = UINT32_MAX;
  std::vector<std::pair<uint32_t, uint8_t>> entries;
  entries.reserve(4096);
  for (uint32_t i = 0; i < 256; ++i) {
    entries.emplace_back(kNoPrefix, static_cast<uint8_t>(i));
  }

  auto expand = [&entries](uint32_t code, std::string* dst) {
    // Reconstructs the string for `code` by walking prefix links.
    std::string tmp;
    while (code != kNoPrefix) {
      tmp += static_cast<char>(entries[code].second);
      code = entries[code].first;
    }
    dst->append(tmp.rbegin(), tmp.rend());
  };

  std::string out;
  out.reserve(original_size);

  uint64_t first;
  LEAKDET_RETURN_IF_ERROR(
      reader.ReadBits(BitsForCode(static_cast<uint32_t>(entries.size()) + 1),
                      &first));
  if (first >= 256) return Status::Corruption("invalid first LZW code");
  uint32_t prev = static_cast<uint32_t>(first);
  expand(prev, &out);

  while (out.size() < original_size) {
    int bits = BitsForCode(static_cast<uint32_t>(entries.size()) + 2);
    // Width rule must mirror the encoder: after this code the dictionary
    // will have entries.size() + 1 codes (if not frozen).
    if (entries.size() >= kMaxCodes) {
      bits = BitsForCode(kMaxCodes);
    }
    uint64_t raw;
    LEAKDET_RETURN_IF_ERROR(reader.ReadBits(bits, &raw));
    uint32_t code = static_cast<uint32_t>(raw);
    if (code > entries.size()) return Status::Corruption("LZW code gap");

    std::string decoded;
    if (code == entries.size()) {
      // KwKwK special case: the code being defined right now.
      if (entries.size() >= kMaxCodes) {
        return Status::Corruption("KwKwK after dictionary freeze");
      }
      expand(prev, &decoded);
      decoded += decoded[0];
    } else {
      expand(code, &decoded);
    }
    if (entries.size() < kMaxCodes) {
      entries.emplace_back(prev, static_cast<uint8_t>(decoded[0]));
    }
    out += decoded;
    prev = code;
  }
  if (out.size() != original_size) {
    return Status::Corruption("LZW output size mismatch");
  }
  return out;
}

}  // namespace leakdet::compress
