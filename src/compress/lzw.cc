#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "compress/bitstream.h"
#include "compress/compressor.h"

namespace leakdet::compress {

namespace {

constexpr char kMagic = 'W';
constexpr int kInitialBits = 9;
constexpr int kMaxBits = 16;
constexpr uint32_t kMaxCodes = uint32_t{1} << kMaxBits;

// Dictionary key: (prefix code << 8) | next byte.
uint64_t Key(uint32_t prefix, uint8_t next) {
  return (static_cast<uint64_t>(prefix) << 8) | next;
}

int BitsForCode(uint32_t next_code) {
  int bits = kInitialBits;
  while ((uint32_t{1} << bits) < next_code && bits < kMaxBits) ++bits;
  return bits;
}

}  // namespace

StatusOr<std::string> LzwCompressor::Compress(std::string_view input) const {
  std::string out;
  out += kMagic;
  AppendVarint(input.size(), &out);
  if (input.empty()) return out;

  std::unordered_map<uint64_t, uint32_t> dict;
  dict.reserve(4096);
  uint32_t next_code = 256;

  BitWriter writer;
  uint32_t cur = static_cast<uint8_t>(input[0]);
  for (size_t i = 1; i < input.size(); ++i) {
    uint8_t c = static_cast<uint8_t>(input[i]);
    auto it = dict.find(Key(cur, c));
    if (it != dict.end()) {
      cur = it->second;
      continue;
    }
    // Emit `cur` with the current code width; width grows with the
    // dictionary. Must match the decoder's view: the decoder will have
    // next_code + 1 entries *after* consuming this code, so the width for
    // this code covers codes up to next_code.
    writer.WriteBits(cur, BitsForCode(next_code + 1));
    if (next_code < kMaxCodes) {
      dict.emplace(Key(cur, c), next_code++);
    }
    cur = c;
  }
  writer.WriteBits(cur, BitsForCode(next_code + 1));
  out += writer.Finish();
  return out;
}

StatusOr<std::string> LzwCompressor::Decompress(
    std::string_view compressed) const {
  size_t pos = 0;
  if (compressed.empty() || compressed[pos++] != kMagic) {
    return Status::Corruption("bad lzw magic");
  }
  uint64_t original_size;
  LEAKDET_RETURN_IF_ERROR(ReadVarint(compressed, &pos, &original_size));
  if (original_size == 0) return std::string();

  BitReader reader(compressed.substr(pos));
  // entries[i] = (prefix code or kNoPrefix, byte)
  constexpr uint32_t kNoPrefix = UINT32_MAX;
  std::vector<std::pair<uint32_t, uint8_t>> entries;
  entries.reserve(4096);
  for (uint32_t i = 0; i < 256; ++i) {
    entries.emplace_back(kNoPrefix, static_cast<uint8_t>(i));
  }

  auto expand = [&entries](uint32_t code, std::string* dst) {
    // Reconstructs the string for `code` by walking prefix links.
    std::string tmp;
    while (code != kNoPrefix) {
      tmp += static_cast<char>(entries[code].second);
      code = entries[code].first;
    }
    dst->append(tmp.rbegin(), tmp.rend());
  };

  std::string out;
  out.reserve(original_size);

  uint64_t first;
  LEAKDET_RETURN_IF_ERROR(
      reader.ReadBits(BitsForCode(static_cast<uint32_t>(entries.size()) + 1),
                      &first));
  if (first >= 256) return Status::Corruption("invalid first LZW code");
  uint32_t prev = static_cast<uint32_t>(first);
  expand(prev, &out);

  while (out.size() < original_size) {
    int bits = BitsForCode(static_cast<uint32_t>(entries.size()) + 2);
    // Width rule must mirror the encoder: after this code the dictionary
    // will have entries.size() + 1 codes (if not frozen).
    if (entries.size() >= kMaxCodes) {
      bits = BitsForCode(kMaxCodes);
    }
    uint64_t raw;
    LEAKDET_RETURN_IF_ERROR(reader.ReadBits(bits, &raw));
    uint32_t code = static_cast<uint32_t>(raw);
    if (code > entries.size()) return Status::Corruption("LZW code gap");

    std::string decoded;
    if (code == entries.size()) {
      // KwKwK special case: the code being defined right now.
      if (entries.size() >= kMaxCodes) {
        return Status::Corruption("KwKwK after dictionary freeze");
      }
      expand(prev, &decoded);
      decoded += decoded[0];
    } else {
      expand(code, &decoded);
    }
    if (entries.size() < kMaxCodes) {
      entries.emplace_back(prev, static_cast<uint8_t>(decoded[0]));
    }
    out += decoded;
    prev = code;
  }
  if (out.size() != original_size) {
    return Status::Corruption("LZW output size mismatch");
  }
  return out;
}

}  // namespace leakdet::compress
