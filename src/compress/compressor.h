#ifndef LEAKDET_COMPRESS_COMPRESSOR_H_
#define LEAKDET_COMPRESS_COMPRESSOR_H_

#include <memory>
#include <string>
#include <string_view>

#include "util/status.h"
#include "util/statusor.h"

namespace leakdet::compress {

/// Abstract byte-string compressor. The Normalized Compression Distance
/// (§IV-C) only needs the *length* of the compressed output, so implementers
/// may provide a cheaper `CompressedSize` than a full `Compress`.
class Compressor {
 public:
  virtual ~Compressor() = default;

  /// Short stable identifier ("lz77h", "lzw", "entropy").
  virtual std::string_view name() const = 0;

  /// Compresses `input` into a self-describing byte string.
  virtual StatusOr<std::string> Compress(std::string_view input) const = 0;

  /// Inverse of Compress.
  virtual StatusOr<std::string> Decompress(
      std::string_view compressed) const = 0;

  /// Length in bytes of Compress(input). Default delegates to Compress().
  virtual size_t CompressedSize(std::string_view input) const;

  /// Frozen mid-stream codec state after absorbing a prefix string. NCD over
  /// a distance matrix sizes the same prefix against many suffixes (C(xy)
  /// for one x and every paired y); resuming from the prefix state skips
  /// re-processing the prefix on every pair.
  class Stream {
   public:
    virtual ~Stream() = default;

    /// Length in bytes of Compress(prefix + suffix), bit-identical to
    /// CompressedSize on the materialized concatenation. Thread-safe: the
    /// frozen state is read-only and may be shared across callers.
    virtual size_t SizeWithSuffix(std::string_view suffix) const = 0;
  };

  /// Freezes the codec state after `prefix`. Returns nullptr when the codec
  /// does not support resumption (callers fall back to materializing the
  /// concatenation).
  virtual std::unique_ptr<Stream> NewStream(std::string_view /*prefix*/) const {
    return nullptr;
  }
};

/// LZ77 (32 KiB window, hash-chain match finder, DEFLATE-style length and
/// distance buckets) followed by per-message canonical Huffman coding of the
/// literal/length and distance alphabets. Self-contained format; round-trips
/// exactly.
class Lz77HuffmanCompressor : public Compressor {
 public:
  std::string_view name() const override { return "lz77h"; }
  StatusOr<std::string> Compress(std::string_view input) const override;
  StatusOr<std::string> Decompress(std::string_view compressed) const override;
};

/// Classic LZW with 9→16-bit growing codes and a frozen dictionary once the
/// code space is exhausted. Small header overhead, which makes it well suited
/// to NCD over short HTTP payloads.
class LzwCompressor : public Compressor {
 public:
  std::string_view name() const override { return "lzw"; }
  StatusOr<std::string> Compress(std::string_view input) const override;
  StatusOr<std::string> Decompress(std::string_view compressed) const override;
  /// Counts emitted code widths without materializing the bitstream.
  size_t CompressedSize(std::string_view input) const override;
  std::unique_ptr<Stream> NewStream(std::string_view prefix) const override;
};

/// Order-0 entropy *estimator*: `CompressedSize` returns the Shannon bound
/// ceil(sum -log2 p(byte) / 8) plus a small model cost. Not an actual codec
/// (Compress/Decompress return Unimplemented); used as a fast NCD
/// approximation in ablation studies.
class EntropyEstimator : public Compressor {
 public:
  std::string_view name() const override { return "entropy"; }
  StatusOr<std::string> Compress(std::string_view input) const override;
  StatusOr<std::string> Decompress(std::string_view compressed) const override;
  size_t CompressedSize(std::string_view input) const override;
};

/// Creates a compressor by name ("lz77h", "lzw", "entropy").
StatusOr<std::unique_ptr<Compressor>> MakeCompressor(std::string_view name);

}  // namespace leakdet::compress

#endif  // LEAKDET_COMPRESS_COMPRESSOR_H_
