#include "compress/bitstream.h"

#include <cassert>

namespace leakdet::compress {

void BitWriter::WriteBits(uint64_t value, int nbits) {
  assert(nbits >= 0 && nbits <= 57);
  assert(nbits == 64 || (value >> nbits) == 0);
  acc_ |= value << acc_bits_;
  acc_bits_ += nbits;
  while (acc_bits_ >= 8) {
    out_ += static_cast<char>(acc_ & 0xFF);
    acc_ >>= 8;
    acc_bits_ -= 8;
  }
}

std::string BitWriter::Finish() {
  if (acc_bits_ > 0) {
    out_ += static_cast<char>(acc_ & 0xFF);
    acc_ = 0;
    acc_bits_ = 0;
  }
  return std::move(out_);
}

Status BitReader::ReadBits(int nbits, uint64_t* value) {
  assert(nbits >= 0 && nbits <= 57);
  while (acc_bits_ < nbits) {
    if (pos_ >= data_.size()) {
      return Status::Corruption("bitstream underrun");
    }
    acc_ |= static_cast<uint64_t>(static_cast<uint8_t>(data_[pos_++]))
            << acc_bits_;
    acc_bits_ += 8;
  }
  *value = (nbits == 0) ? 0 : (acc_ & ((uint64_t{1} << nbits) - 1));
  acc_ >>= nbits;
  acc_bits_ -= nbits;
  return Status::OK();
}

int BitReader::ReadBit() {
  uint64_t v;
  if (!ReadBits(1, &v).ok()) return -1;
  return static_cast<int>(v);
}

void AppendVarint(uint64_t value, std::string* out) {
  while (value >= 0x80) {
    *out += static_cast<char>((value & 0x7F) | 0x80);
    value >>= 7;
  }
  *out += static_cast<char>(value);
}

Status ReadVarint(std::string_view data, size_t* pos, uint64_t* value) {
  uint64_t result = 0;
  int shift = 0;
  while (true) {
    if (*pos >= data.size()) return Status::Corruption("varint underrun");
    if (shift >= 64) return Status::Corruption("varint too long");
    uint8_t byte = static_cast<uint8_t>(data[(*pos)++]);
    result |= static_cast<uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) break;
    shift += 7;
  }
  *value = result;
  return Status::OK();
}

}  // namespace leakdet::compress
