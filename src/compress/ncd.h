#ifndef LEAKDET_COMPRESS_NCD_H_
#define LEAKDET_COMPRESS_NCD_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "compress/compressor.h"

namespace leakdet::compress {

/// Transparent (heterogeneous) hashing so an `unordered_map` keyed by
/// `std::string` can be probed with a `std::string_view` without
/// materializing a temporary string per lookup.
struct TransparentStringHash {
  using is_transparent = void;
  size_t operator()(std::string_view s) const noexcept {
    return std::hash<std::string_view>{}(s);
  }
  size_t operator()(const std::string& s) const noexcept {
    return std::hash<std::string_view>{}(std::string_view(s));
  }
};

struct TransparentStringEq {
  using is_transparent = void;
  bool operator()(std::string_view a, std::string_view b) const noexcept {
    return a == b;
  }
};

/// The NCD formula from precomputed sizes:
///   (C(xy) - min(C(x), C(y))) / max(C(x), C(y)), clamped to [0, 1].
/// Factored out so every NCD evaluation path (per-thread calculator, shared
/// pair cache) performs bit-identical arithmetic.
double NcdFromSizes(size_t cx, size_t cy, size_t cxy);

/// C(xy) with the concatenation order canonicalized (lexicographically
/// smaller operand first). Real codecs are order-sensitive — C(xy) and
/// C(yx) differ for ~75% of realistic HTTP field pairs — so canonicalizing
/// here is what makes Ncd() a genuinely symmetric distance.
size_t CanonicalPairCompressedSize(const Compressor& compressor,
                                   std::string_view x, std::string_view y);

/// Normalized Compression Distance (Cilibrasi & Vitányi), the paper's §IV-C
/// content metric:
///
///   ncd(x, y) = (C(xy) - min(C(x), C(y))) / max(C(x), C(y))
///
/// where C(s) is the compressed length of s. Values are clamped to [0, 1]
/// (real compressors can slightly overshoot 1). The concatenation order is
/// canonicalized, so ncd(x, y) == ncd(y, x) exactly — the distance matrix
/// and its pair caches rely on this symmetry. The calculator memoizes
/// single-string sizes C(x), which the clustering distance matrix hits
/// O(M²) times.
class NcdCalculator {
 public:
  /// `compressor` must outlive the calculator. Not owned.
  explicit NcdCalculator(const Compressor* compressor)
      : compressor_(compressor) {}

  /// NCD of `x` and `y`. Both empty => 0. Symmetric: Ncd(x,y) == Ncd(y,x).
  double Ncd(std::string_view x, std::string_view y);

  /// Memoized C(x).
  size_t CompressedSize(std::string_view x);

  /// Number of memoized single-string entries (observability for tests).
  size_t cache_size() const { return cache_.size(); }

  /// CompressedSize() calls served from the memo / requiring a compression.
  uint64_t cache_hits() const { return hits_; }
  uint64_t cache_misses() const { return misses_; }

 private:
  const Compressor* compressor_;
  std::unordered_map<std::string, size_t, TransparentStringHash,
                     TransparentStringEq>
      cache_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

/// Thread-shared NCD evaluator over a fixed universe of distinct strings
/// (dense ids 0..size-1, typically produced by interning the fields of a
/// packet sample). Singleton sizes C(x) are precomputed once for the whole
/// universe in one (optionally parallel) pass; pair NCDs are computed once
/// per distinct unordered pair and shared across worker threads through a
/// sharded hash map. Keys are canonicalized to (min_id, max_id) — sound
/// because Ncd evaluation itself is orientation-canonicalized, so one value
/// serves both orders.
///
/// When the codec supports stream resumption (Compressor::NewStream), the
/// singleton pass also freezes each string's end-of-stream codec state, and
/// every pair compression then processes only the suffix string — C(xy)
/// costs C(y)-ish instead of C(x)+C(y)-ish, bit-identical to compressing
/// the materialized concatenation.
///
/// The string views must outlive the cache (they normally point into the
/// sampled packets' own field storage).
class NcdPairCache {
 public:
  NcdPairCache(const Compressor* compressor,
               std::vector<std::string_view> strings);

  /// Precomputes C(s) for every string in the universe. Work is claimed in
  /// chunks off an atomic cursor by `num_threads` workers (<= 1 runs
  /// inline). Must complete before the first Ncd() call.
  void PrecomputeSizes(unsigned num_threads);

  /// NCD between the strings with ids `x` and `y` (either order). Safe to
  /// call concurrently from many threads.
  double Ncd(uint32_t x, uint32_t y);

  size_t size() const { return strings_.size(); }
  size_t singleton_size(uint32_t id) const { return sizes_[id]; }

  /// Pair lookups served from the shared cache / computed fresh. A "miss"
  /// is one full compression of a pair concatenation.
  uint64_t pair_hits() const {
    return pair_hits_.load(std::memory_order_relaxed);
  }
  uint64_t pairs_computed() const {
    return pairs_computed_.load(std::memory_order_relaxed);
  }

 private:
  static constexpr size_t kShardCount = 16;

  struct Shard {
    std::mutex mu;
    std::unordered_map<uint64_t, double> pairs;
  };

  const Compressor* compressor_;
  std::vector<std::string_view> strings_;
  std::vector<size_t> sizes_;
  /// Frozen per-string codec states (all null if unsupported by the codec).
  std::vector<std::unique_ptr<Compressor::Stream>> streams_;
  Shard shards_[kShardCount];
  std::atomic<uint64_t> pair_hits_{0};
  std::atomic<uint64_t> pairs_computed_{0};
};

}  // namespace leakdet::compress

#endif  // LEAKDET_COMPRESS_NCD_H_
