#ifndef LEAKDET_COMPRESS_NCD_H_
#define LEAKDET_COMPRESS_NCD_H_

#include <string>
#include <string_view>
#include <unordered_map>

#include "compress/compressor.h"

namespace leakdet::compress {

/// Normalized Compression Distance (Cilibrasi & Vitányi), the paper's §IV-C
/// content metric:
///
///   ncd(x, y) = (C(xy) - min(C(x), C(y))) / max(C(x), C(y))
///
/// where C(s) is the compressed length of s. Values are clamped to [0, 1]
/// (real compressors can slightly overshoot 1). The calculator memoizes
/// single-string sizes C(x), which the clustering distance matrix hits
/// O(M²) times.
class NcdCalculator {
 public:
  /// `compressor` must outlive the calculator. Not owned.
  explicit NcdCalculator(const Compressor* compressor)
      : compressor_(compressor) {}

  /// NCD of `x` and `y`. Both empty => 0.
  double Ncd(std::string_view x, std::string_view y);

  /// Memoized C(x).
  size_t CompressedSize(std::string_view x);

  /// Number of memoized single-string entries (observability for tests).
  size_t cache_size() const { return cache_.size(); }

 private:
  const Compressor* compressor_;
  std::unordered_map<std::string, size_t> cache_;
};

}  // namespace leakdet::compress

#endif  // LEAKDET_COMPRESS_NCD_H_
