#include "compress/huffman.h"

#include <algorithm>
#include <cassert>
#include <queue>

namespace leakdet::compress {

namespace {

/// One heap-based Huffman pass; returns per-symbol depths (0 for unused).
std::vector<uint8_t> HuffmanDepths(const std::vector<uint64_t>& freqs) {
  struct Node {
    uint64_t freq;
    int32_t left;   // node index or ~symbol for leaves
    int32_t right;
  };
  std::vector<Node> nodes;
  using HeapItem = std::pair<uint64_t, int32_t>;  // (freq, node index)
  std::priority_queue<HeapItem, std::vector<HeapItem>, std::greater<>> heap;
  for (size_t s = 0; s < freqs.size(); ++s) {
    if (freqs[s] == 0) continue;
    nodes.push_back(Node{freqs[s], ~static_cast<int32_t>(s), 0});
    heap.emplace(freqs[s], static_cast<int32_t>(nodes.size() - 1));
  }
  std::vector<uint8_t> depths(freqs.size(), 0);
  if (nodes.empty()) return depths;
  if (nodes.size() == 1) {
    depths[static_cast<size_t>(~nodes[0].left)] = 1;
    return depths;
  }
  while (heap.size() > 1) {
    auto [fa, a] = heap.top();
    heap.pop();
    auto [fb, b] = heap.top();
    heap.pop();
    nodes.push_back(Node{fa + fb, a, b});
    heap.emplace(fa + fb, static_cast<int32_t>(nodes.size() - 1));
  }
  // DFS from the root to assign depths.
  std::vector<std::pair<int32_t, int>> stack;  // (node, depth)
  stack.emplace_back(static_cast<int32_t>(nodes.size() - 1), 0);
  while (!stack.empty()) {
    auto [n, d] = stack.back();
    stack.pop_back();
    const Node& node = nodes[static_cast<size_t>(n)];
    if (node.left < 0) {
      // Leaf: `left` stores ~symbol. (Internal nodes always reference two
      // previously-created nodes, so their `left` index is >= 0.)
      depths[static_cast<size_t>(~node.left)] =
          static_cast<uint8_t>(std::max(d, 1));
    } else {
      stack.emplace_back(node.left, d + 1);
      stack.emplace_back(node.right, d + 1);
    }
  }
  return depths;
}

}  // namespace

std::vector<uint8_t> BuildHuffmanCodeLengths(const std::vector<uint64_t>& freqs,
                                             int max_len) {
  std::vector<uint64_t> f = freqs;
  while (true) {
    std::vector<uint8_t> depths = HuffmanDepths(f);
    uint8_t deepest = 0;
    for (uint8_t d : depths) deepest = std::max(deepest, d);
    if (deepest <= max_len) return depths;
    // Dampen frequencies and retry; flattening the distribution strictly
    // reduces the depth, and terminates at depth <= ceil(log2(#symbols)).
    for (uint64_t& v : f) {
      if (v > 0) v = (v + 1) / 2;
    }
  }
}

HuffmanEncoder::HuffmanEncoder(const std::vector<uint8_t>& lengths)
    : lengths_(lengths), codes_(lengths.size(), 0) {
  int max_len = 0;
  for (uint8_t l : lengths_) max_len = std::max(max_len, static_cast<int>(l));
  if (max_len == 0) return;
  std::vector<uint32_t> count(static_cast<size_t>(max_len) + 1, 0);
  for (uint8_t l : lengths_) {
    if (l > 0) count[l]++;
  }
  std::vector<uint32_t> next(static_cast<size_t>(max_len) + 1, 0);
  uint32_t code = 0;
  for (int l = 1; l <= max_len; ++l) {
    code = (code + count[static_cast<size_t>(l) - 1]) << 1;
    next[static_cast<size_t>(l)] = code;
  }
  for (size_t s = 0; s < lengths_.size(); ++s) {
    if (lengths_[s] > 0) codes_[s] = next[lengths_[s]]++;
  }
}

void HuffmanEncoder::Encode(uint32_t sym, BitWriter* writer) const {
  assert(sym < lengths_.size() && lengths_[sym] > 0);
  uint32_t code = codes_[sym];
  int len = lengths_[sym];
  // Emit MSB-first.
  for (int i = len - 1; i >= 0; --i) {
    writer->WriteBits((code >> i) & 1u, 1);
  }
}

StatusOr<HuffmanDecoder> HuffmanDecoder::Build(
    const std::vector<uint8_t>& lengths) {
  HuffmanDecoder dec;
  for (uint8_t l : lengths) {
    dec.max_len_ = std::max(dec.max_len_, static_cast<int>(l));
  }
  if (dec.max_len_ == 0) {
    return Status::InvalidArgument("no symbols in Huffman code");
  }
  dec.count_.assign(static_cast<size_t>(dec.max_len_) + 1, 0);
  for (uint8_t l : lengths) {
    if (l > 0) dec.count_[l]++;
  }
  // Kraft inequality check: sum 2^(max-len) must not exceed 2^max.
  uint64_t kraft = 0;
  for (int l = 1; l <= dec.max_len_; ++l) {
    kraft += static_cast<uint64_t>(dec.count_[static_cast<size_t>(l)])
             << (dec.max_len_ - l);
  }
  if (kraft > (uint64_t{1} << dec.max_len_)) {
    return Status::Corruption("over-subscribed Huffman code");
  }
  dec.first_code_.assign(static_cast<size_t>(dec.max_len_) + 1, 0);
  dec.offset_.assign(static_cast<size_t>(dec.max_len_) + 1, 0);
  uint32_t code = 0;
  uint32_t index = 0;
  for (int l = 1; l <= dec.max_len_; ++l) {
    code = (code + dec.count_[static_cast<size_t>(l) - 1]) << 1;
    dec.first_code_[static_cast<size_t>(l)] = code;
    dec.offset_[static_cast<size_t>(l)] = index;
    index += dec.count_[static_cast<size_t>(l)];
  }
  dec.symbols_.resize(index);
  std::vector<uint32_t> fill(static_cast<size_t>(dec.max_len_) + 1, 0);
  for (size_t s = 0; s < lengths.size(); ++s) {
    uint8_t l = lengths[s];
    if (l > 0) {
      dec.symbols_[dec.offset_[l] + fill[l]++] = static_cast<uint32_t>(s);
    }
  }
  return dec;
}

Status HuffmanDecoder::Decode(BitReader* reader, uint32_t* sym) const {
  uint32_t code = 0;
  for (int l = 1; l <= max_len_; ++l) {
    int bit = reader->ReadBit();
    if (bit < 0) return Status::Corruption("Huffman bitstream underrun");
    code = (code << 1) | static_cast<uint32_t>(bit);
    uint32_t fc = first_code_[static_cast<size_t>(l)];
    uint32_t cnt = count_[static_cast<size_t>(l)];
    if (code >= fc && code < fc + cnt) {
      *sym = symbols_[offset_[static_cast<size_t>(l)] + (code - fc)];
      return Status::OK();
    }
  }
  return Status::Corruption("invalid Huffman code");
}

}  // namespace leakdet::compress
