#include <algorithm>
#include <array>
#include <cassert>
#include <cstring>
#include <optional>
#include <vector>

#include "compress/bitstream.h"
#include "compress/compressor.h"
#include "compress/huffman.h"

namespace leakdet::compress {

namespace {

constexpr char kMagic = 'Z';
constexpr int kMinMatch = 3;
constexpr int kMaxMatch = 258;
constexpr int kWindow = 32768;
constexpr int kHashBits = 15;
constexpr int kMaxChain = 64;

constexpr int kNumLitLen = 286;  // 0..255 literals, 256 EOB, 257..285 lengths
constexpr int kNumDist = 30;
constexpr int kEob = 256;

// DEFLATE length buckets for codes 257..285 (index 0..28).
constexpr int kLenBase[29] = {3,  4,  5,  6,  7,  8,  9,  10, 11,  13,
                              15, 17, 19, 23, 27, 31, 35, 43, 51,  59,
                              67, 83, 99, 115, 131, 163, 195, 227, 258};
constexpr int kLenExtra[29] = {0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2,
                               2, 3, 3, 3, 3, 4, 4, 4, 4, 5, 5, 5, 5, 0};

// DEFLATE distance buckets for codes 0..29.
constexpr int kDistBase[30] = {1,    2,    3,    4,    5,    7,     9,    13,
                               17,   25,   33,   49,   65,   97,    129,  193,
                               257,  385,  513,  769,  1025, 1537,  2049, 3073,
                               4097, 6145, 8193, 12289, 16385, 24577};
constexpr int kDistExtra[30] = {0, 0, 0,  0,  1,  1,  2,  2,  3,  3,
                                4, 4, 5,  5,  6,  6,  7,  7,  8,  8,
                                9, 9, 10, 10, 11, 11, 12, 12, 13, 13};

// Length/distance bucket lookup runs once per token on every compression,
// so both are table-driven: lengths index a direct 3..258 table, distances
// use the two-level DEFLATE scheme (exact table below 257, then buckets of
// 128 indexed by (dist - 1) >> 7, which works because every base above 256
// is 1 mod 128-aligned to a 128-wide power-of-two bucket).
struct LengthCodeTable {
  uint8_t code[kMaxMatch + 1];
  constexpr LengthCodeTable() : code{} {
    for (int len = kMinMatch; len <= kMaxMatch; ++len) {
      int c = 0;
      for (int i = 28; i >= 0; --i) {
        if (len >= kLenBase[i]) {
          c = i;
          break;
        }
      }
      code[len] = static_cast<uint8_t>(c);
    }
  }
};

struct DistCodeTable {
  uint8_t near[257];  // dist 1..256 -> code, indexed by dist
  uint8_t far[256];   // dist 257..32768 -> code, indexed by (dist - 1) >> 7
  constexpr DistCodeTable() : near{}, far{} {
    for (int dist = 1; dist <= kWindow; ++dist) {
      int c = 0;
      for (int i = 29; i >= 0; --i) {
        if (dist >= kDistBase[i]) {
          c = i;
          break;
        }
      }
      if (dist <= 256) {
        near[dist] = static_cast<uint8_t>(c);
      } else {
        far[(dist - 1) >> 7] = static_cast<uint8_t>(c);
      }
    }
  }
};

constexpr LengthCodeTable kLengthCodeTable;
constexpr DistCodeTable kDistCodeTable;

int LengthCode(int len) {
  assert(len >= kMinMatch && len <= kMaxMatch);
  return kLengthCodeTable.code[len];
}

int DistCode(int dist) {
  assert(dist >= 1 && dist <= kWindow);
  return dist <= 256 ? kDistCodeTable.near[dist]
                     : kDistCodeTable.far[(dist - 1) >> 7];
}

uint32_t Hash3(const uint8_t* p) {
  uint32_t v = static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
               (static_cast<uint32_t>(p[2]) << 16);
  return (v * 2654435761u) >> (32 - kHashBits);
}

/// One LZ77 token: either a literal byte or a (length, distance) match.
struct Token {
  bool is_match;
  uint8_t literal;
  int length;
  int distance;
};

std::vector<Token> Tokenize(std::string_view input) {
  const uint8_t* data = reinterpret_cast<const uint8_t*>(input.data());
  const size_t n = input.size();
  std::vector<Token> tokens;
  tokens.reserve(n / 2 + 8);

  std::vector<int32_t> head(size_t{1} << kHashBits, -1);
  std::vector<int32_t> prev(n, -1);

  size_t i = 0;
  while (i < n) {
    int best_len = 0;
    int best_dist = 0;
    if (i + kMinMatch <= n) {
      uint32_t h = Hash3(data + i);
      int32_t cand = head[h];
      int chain = kMaxChain;
      while (cand >= 0 && chain-- > 0 &&
             i - static_cast<size_t>(cand) <= kWindow) {
        const uint8_t* a = data + i;
        const uint8_t* b = data + cand;
        int limit = static_cast<int>(std::min<size_t>(kMaxMatch, n - i));
        int len = 0;
        while (len < limit && a[len] == b[len]) ++len;
        if (len > best_len) {
          best_len = len;
          best_dist = static_cast<int>(i - static_cast<size_t>(cand));
          if (len >= kMaxMatch) break;
        }
        cand = prev[static_cast<size_t>(cand)];
      }
    }
    if (best_len >= kMinMatch) {
      tokens.push_back(Token{true, 0, best_len, best_dist});
      // Insert every covered position into the hash chains.
      size_t end = i + static_cast<size_t>(best_len);
      for (; i < end; ++i) {
        if (i + kMinMatch <= n) {
          uint32_t h = Hash3(data + i);
          prev[i] = head[h];
          head[h] = static_cast<int32_t>(i);
        }
      }
    } else {
      tokens.push_back(Token{false, data[i], 0, 0});
      if (i + kMinMatch <= n) {
        uint32_t h = Hash3(data + i);
        prev[i] = head[h];
        head[h] = static_cast<int32_t>(i);
      }
      ++i;
    }
  }
  return tokens;
}

/// Serializes nonzero code lengths as (delta-coded symbol, length) pairs.
void WriteLengthTable(const std::vector<uint8_t>& lengths, std::string* out) {
  uint64_t used = 0;
  for (uint8_t l : lengths) {
    if (l > 0) ++used;
  }
  AppendVarint(used, out);
  uint64_t prev_sym = 0;
  for (size_t s = 0; s < lengths.size(); ++s) {
    if (lengths[s] == 0) continue;
    AppendVarint(s - prev_sym, out);
    *out += static_cast<char>(lengths[s]);
    prev_sym = s;
  }
}

Status ReadLengthTable(std::string_view data, size_t* pos, size_t num_symbols,
                       std::vector<uint8_t>* lengths) {
  lengths->assign(num_symbols, 0);
  uint64_t used;
  LEAKDET_RETURN_IF_ERROR(ReadVarint(data, pos, &used));
  if (used > num_symbols) return Status::Corruption("length table too large");
  uint64_t sym = 0;
  for (uint64_t i = 0; i < used; ++i) {
    uint64_t delta;
    LEAKDET_RETURN_IF_ERROR(ReadVarint(data, pos, &delta));
    sym += delta;
    if (sym >= num_symbols) return Status::Corruption("symbol out of range");
    if (*pos >= data.size()) return Status::Corruption("length table truncated");
    (*lengths)[sym] = static_cast<uint8_t>(data[(*pos)++]);
    if ((*lengths)[sym] == 0 || (*lengths)[sym] > 32) {
      return Status::Corruption("invalid code length");
    }
  }
  return Status::OK();
}

}  // namespace

StatusOr<std::string> Lz77HuffmanCompressor::Compress(
    std::string_view input) const {
  std::string out;
  out += kMagic;
  AppendVarint(input.size(), &out);
  if (input.empty()) return out;

  std::vector<Token> tokens = Tokenize(input);

  std::vector<uint64_t> lit_freq(kNumLitLen, 0);
  std::vector<uint64_t> dist_freq(kNumDist, 0);
  for (const Token& t : tokens) {
    if (t.is_match) {
      lit_freq[static_cast<size_t>(257 + LengthCode(t.length))]++;
      dist_freq[static_cast<size_t>(DistCode(t.distance))]++;
    } else {
      lit_freq[t.literal]++;
    }
  }
  lit_freq[kEob] = 1;

  std::vector<uint8_t> lit_lengths = BuildHuffmanCodeLengths(lit_freq);
  std::vector<uint8_t> dist_lengths = BuildHuffmanCodeLengths(dist_freq);
  WriteLengthTable(lit_lengths, &out);
  WriteLengthTable(dist_lengths, &out);

  HuffmanEncoder lit_enc(lit_lengths);
  HuffmanEncoder dist_enc(dist_lengths);
  BitWriter writer;
  for (const Token& t : tokens) {
    if (t.is_match) {
      int lc = LengthCode(t.length);
      lit_enc.Encode(static_cast<uint32_t>(257 + lc), &writer);
      writer.WriteBits(static_cast<uint64_t>(t.length - kLenBase[lc]),
                       kLenExtra[lc]);
      int dc = DistCode(t.distance);
      dist_enc.Encode(static_cast<uint32_t>(dc), &writer);
      writer.WriteBits(static_cast<uint64_t>(t.distance - kDistBase[dc]),
                       kDistExtra[dc]);
    } else {
      lit_enc.Encode(t.literal, &writer);
    }
  }
  lit_enc.Encode(kEob, &writer);
  out += writer.Finish();
  return out;
}

StatusOr<std::string> Lz77HuffmanCompressor::Decompress(
    std::string_view compressed) const {
  size_t pos = 0;
  if (compressed.empty() || compressed[pos++] != kMagic) {
    return Status::Corruption("bad lz77h magic");
  }
  uint64_t original_size;
  LEAKDET_RETURN_IF_ERROR(ReadVarint(compressed, &pos, &original_size));
  if (original_size == 0) {
    if (pos != compressed.size()) {
      return Status::Corruption("trailing bytes after empty payload");
    }
    return std::string();
  }

  std::vector<uint8_t> lit_lengths, dist_lengths;
  LEAKDET_RETURN_IF_ERROR(
      ReadLengthTable(compressed, &pos, kNumLitLen, &lit_lengths));
  LEAKDET_RETURN_IF_ERROR(
      ReadLengthTable(compressed, &pos, kNumDist, &dist_lengths));
  LEAKDET_ASSIGN_OR_RETURN(HuffmanDecoder lit_dec,
                           HuffmanDecoder::Build(lit_lengths));
  bool has_dist = false;
  for (uint8_t l : dist_lengths) {
    if (l > 0) has_dist = true;
  }
  std::optional<HuffmanDecoder> dist_dec;
  if (has_dist) {
    LEAKDET_ASSIGN_OR_RETURN(HuffmanDecoder d,
                             HuffmanDecoder::Build(dist_lengths));
    dist_dec = std::move(d);
  }

  BitReader reader(compressed.substr(pos));
  std::string out;
  out.reserve(original_size);
  while (true) {
    uint32_t sym;
    LEAKDET_RETURN_IF_ERROR(lit_dec.Decode(&reader, &sym));
    if (sym == kEob) break;
    if (sym < 256) {
      out += static_cast<char>(sym);
    } else {
      int lc = static_cast<int>(sym) - 257;
      if (lc < 0 || lc >= 29) return Status::Corruption("bad length code");
      uint64_t extra;
      LEAKDET_RETURN_IF_ERROR(reader.ReadBits(kLenExtra[lc], &extra));
      int length = kLenBase[lc] + static_cast<int>(extra);
      if (!dist_dec) return Status::Corruption("match without distance code");
      uint32_t dsym;
      LEAKDET_RETURN_IF_ERROR(dist_dec->Decode(&reader, &dsym));
      if (dsym >= 30) return Status::Corruption("bad distance code");
      LEAKDET_RETURN_IF_ERROR(
          reader.ReadBits(kDistExtra[dsym], &extra));
      int dist = kDistBase[dsym] + static_cast<int>(extra);
      if (static_cast<size_t>(dist) > out.size()) {
        return Status::Corruption("distance exceeds output");
      }
      size_t start = out.size() - static_cast<size_t>(dist);
      for (int k = 0; k < length; ++k) {
        out += out[start + static_cast<size_t>(k)];
      }
    }
    if (out.size() > original_size) {
      return Status::Corruption("output exceeds declared size");
    }
  }
  if (out.size() != original_size) {
    return Status::Corruption("output size mismatch");
  }
  return out;
}

}  // namespace leakdet::compress
