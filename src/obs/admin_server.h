#ifndef LEAKDET_OBS_ADMIN_SERVER_H_
#define LEAKDET_OBS_ADMIN_SERVER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "http/response.h"
#include "net/stream.h"
#include "obs/metrics.h"
#include "util/clock.h"
#include "util/statusor.h"

namespace leakdet::obs {

/// Human-readable build identification for /statusz and the
/// `leakdet_build_info` gauge: compiler, language standard, and word size.
/// Deliberately free of timestamps so builds stay reproducible.
std::string BuildInfoString();

/// Tunables for AdminServer. Defaults serve production; tests inject a
/// virtual clock and scripted listeners to make every deadline
/// deterministic.
struct AdminServerOptions {
  /// The registry /metrics exposes. nullptr = Registry::Default().
  Registry* registry = nullptr;
  /// Whole-request deadline, exactly like io::FeedServer's: a client
  /// trickling bytes cannot extend it.
  int request_deadline_ms = 2000;
  /// Time source for the request deadline. nullptr = Clock::Real().
  Clock* clock = nullptr;
};

/// The process observability endpoint: a tiny HTTP server on the
/// net::Listener/Stream seam exposing
///   GET /metrics  -> Prometheus text exposition of the registry
///   GET /healthz  -> "ok" once the server is accepting
///   GET /statusz  -> build info plus every registered status section
///   GET /varz     -> the registry's legacy flat TextDump
/// Production binds a TcpListener; the chaos harness runs it on a
/// testing::ScriptedListener so fault schedules cover the admin plane too.
class AdminServer {
 public:
  /// Renders one /statusz section body (plain text, one `key: value` per
  /// line). Runs on the server thread per request — must be thread-safe and
  /// must only read state that is safe from any thread (atomics, gauges,
  /// mutex-guarded snapshots).
  using StatusSection = std::function<std::string()>;

  explicit AdminServer(AdminServerOptions options = {});
  ~AdminServer();
  AdminServer(const AdminServer&) = delete;
  AdminServer& operator=(const AdminServer&) = delete;

  /// Registers a /statusz section, rendered in registration order under
  /// `[title]`. Re-registering an existing title replaces its renderer in
  /// place (components whose shape changes at runtime — e.g. a cluster node
  /// changing role — re-register rather than duplicate). Thread-safe; may be
  /// called while serving.
  void AddStatusSection(std::string title, StatusSection section);

  /// Binds 127.0.0.1:`port` (0 = ephemeral) and starts the accept loop.
  Status Start(uint16_t port = 0);

  /// Starts the accept loop on an injected transport (testing seam).
  Status Start(std::unique_ptr<net::Listener> listener);

  /// Stops the accept loop and joins the server thread. Idempotent.
  void Stop();

  /// The bound port (valid after Start()).
  uint16_t port() const { return port_; }

  /// Requests answered so far (any response, including 404s).
  uint64_t requests_served() const { return requests_served_.load(); }

  /// Pure request dispatch — what Handle() serves, exposed so unit tests
  /// can cover routing without a transport.
  http::HttpResponse Respond(const std::string& method,
                             const std::string& target) const;

 private:
  void Serve();
  void Handle(std::unique_ptr<net::Stream> stream);
  std::string RenderStatusz() const;

  AdminServerOptions options_;
  Registry* registry_;
  std::unique_ptr<net::Listener> listener_;
  std::thread thread_;
  std::atomic<bool> running_{false};
  std::atomic<uint64_t> requests_served_{0};
  uint16_t port_ = 0;

  mutable std::mutex sections_mu_;
  std::vector<std::pair<std::string, StatusSection>> sections_;

  // Mutable: Respond() is logically read-only routing but records its own
  // outcome (relaxed atomics behind a family cache).
  mutable CounterFamily requests_by_path_;
  Counter* requests_timed_out_ = nullptr;
  Histogram* request_ns_ = nullptr;
};

/// Client helper: one GET over a freshly connected stream (the admin-plane
/// counterpart of io::FetchFeedFrom — used by the chaos runner to scrape
/// /metrics and /statusz through scripted connections).
StatusOr<http::HttpResponse> AdminGet(net::Stream* stream,
                                      const std::string& path);

/// Client helper: one GET against a loopback AdminServer port.
StatusOr<http::HttpResponse> AdminGet(uint16_t port, const std::string& path);

}  // namespace leakdet::obs

#endif  // LEAKDET_OBS_ADMIN_SERVER_H_
