#ifndef LEAKDET_OBS_METRICS_H_
#define LEAKDET_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "util/clock.h"

namespace leakdet::obs {

/// A monotonically increasing counter. Inc/Value are lock-free atomics, so
/// instrumenting a hot path costs one relaxed fetch_add.
class Counter {
 public:
  void Inc(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// A point-in-time signed value (queue depths, sequence watermarks, epoch
/// versions). All operations are relaxed atomics; any thread may Set or read.
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// A fixed-bucket base-2 exponential histogram for latency-style values
/// (nanoseconds). Bucket i counts observations in [2^i, 2^(i+1)), bucket 0
/// additionally absorbs 0; the last bucket absorbs everything above. All
/// operations are lock-free; Observe is two relaxed fetch_adds.
class Histogram {
 public:
  static constexpr size_t kNumBuckets = 40;  ///< finite edges up to 2^40 ns

  void Observe(uint64_t value);

  /// A consistent-enough copy for reporting (buckets are read relaxed;
  /// concurrent observers may be torn across buckets by ±1 — fine for
  /// monitoring output, never used for control decisions).
  struct Snapshot {
    uint64_t count = 0;
    uint64_t sum = 0;
    std::array<uint64_t, kNumBuckets> buckets{};

    double Mean() const;
    /// Upper edge of the bucket containing quantile `q` in [0,1]
    /// (conservative: reports the bucket boundary, not an interpolation).
    /// Ranks over the snapshot's actual bucket mass, so a torn snapshot
    /// whose `count` ran ahead of the bucket sums can never fall off the
    /// end of the bucket array. A quantile landing in the last (unbounded)
    /// bucket reports UINT64_MAX — "off the scale", not a fake edge.
    uint64_t Quantile(double q) const;
  };
  Snapshot Take() const;

 private:
  std::array<std::atomic<uint64_t>, kNumBuckets> buckets_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
};

/// RAII wall-time span: observes the elapsed nanoseconds into `histogram`
/// when it leaves scope. `clock` nullptr = Clock::Real(); the test harness
/// injects a VirtualClock for deterministic timings.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* histogram, Clock* clock = nullptr)
      : histogram_(histogram),
        clock_(clock != nullptr ? clock : Clock::Real()),
        start_(clock_->Now()) {}
  ~ScopedTimer() {
    if (histogram_ != nullptr) histogram_->Observe(ElapsedNs());
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  uint64_t ElapsedNs() const;

 private:
  Histogram* histogram_;
  Clock* clock_;
  Clock::TimePoint start_;
};

/// One metric's label set, rendered into the exposition as
/// `name{key="value",...}`. Order-significant: the same pairs in a different
/// order name a different time series (callers use a fixed order).
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Owner and namespace of every metric in one scrape domain. Registration
/// (name lookup) takes a mutex; the returned pointers stay valid for the
/// registry's lifetime and are meant to be cached by the instrumented code,
/// so the mutex is never on a per-packet path.
///
/// Process-wide usage: `Registry::Default()` is the instance an
/// obs::AdminServer exposes unless told otherwise. Subsystems accept a
/// `Registry*` option (nullptr = Default()) so tests can isolate their
/// metrics while production binaries share one scrape surface.
class Registry {
 public:
  /// The process-global default instance. Never null; created on first use.
  static Registry* Default();

  /// Returns the counter registered under (name, labels), creating it on
  /// first use.
  Counter* GetCounter(const std::string& name, const Labels& labels = {});

  /// Returns the gauge registered under (name, labels), creating it on
  /// first use.
  Gauge* GetGauge(const std::string& name, const Labels& labels = {});

  /// Returns the histogram registered under (name, labels), creating it on
  /// first use.
  Histogram* GetHistogram(const std::string& name, const Labels& labels = {});

  /// Registers a collection hook, run at the start of every TextDump() /
  /// PrometheusText() so gauges can be refreshed from live state (queue
  /// depths, watermarks). The hook must be thread-safe and must outlive the
  /// registry's exposure — unregister by destroying the registry, so only
  /// objects that live as long as the registry should register one.
  void OnCollect(std::function<void()> hook);

  /// Flat text rendering of every metric, sorted by name — counters as
  /// `name value`, gauges as `name value`, histograms as
  /// `name count=N sum=S mean=M p50=.. p99=..`. Labeled series render the
  /// labels inline after the name. The loadgen prints this as its
  /// end-of-run report.
  std::string TextDump() const;

  /// Prometheus text exposition (format version 0.0.4): `# TYPE` lines per
  /// metric family, counters/gauges as single samples, histograms as
  /// cumulative `_bucket{le="..."}` series plus `_sum` and `_count`. Names
  /// are sanitized to the Prometheus charset (`.` becomes `_`).
  std::string PrometheusText() const;

 private:
  template <typename M>
  struct Entry {
    std::string name;
    Labels labels;
    std::unique_ptr<M> metric;
  };

  template <typename M>
  M* GetOrCreate(std::vector<Entry<M>>* entries, const std::string& name,
                 const Labels& labels);
  void RunCollectHooks() const;

  mutable std::mutex mu_;
  // Node-stable storage: pointers handed out must survive growth.
  std::vector<Entry<Counter>> counters_;
  std::vector<Entry<Gauge>> gauges_;
  std::vector<Entry<Histogram>> histograms_;
  std::vector<std::function<void()>> collect_hooks_;
};

namespace internal {
inline Counter* RegistryGet(Registry* r, const std::string& name,
                            const Labels& labels, Counter*) {
  return r->GetCounter(name, labels);
}
inline Gauge* RegistryGet(Registry* r, const std::string& name,
                          const Labels& labels, Gauge*) {
  return r->GetGauge(name, labels);
}
inline Histogram* RegistryGet(Registry* r, const std::string& name,
                              const Labels& labels, Histogram*) {
  return r->GetHistogram(name, labels);
}
}  // namespace internal

/// A labeled metric family over one label key: `With("ok")` returns the
/// series `name{key="ok"}`, creating it on first use and caching the lookup
/// so steady-state access is one small map probe under the family mutex.
/// Keep label cardinality bounded (enumerated outcomes, shard indices) —
/// every distinct value is a live time series for the registry's lifetime.
template <typename M>
class Family {
 public:
  Family(Registry* registry, std::string name, std::string label_key)
      : registry_(registry),
        name_(std::move(name)),
        label_key_(std::move(label_key)) {}

  M* With(const std::string& label_value) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = series_.find(label_value);
    if (it != series_.end()) return it->second;
    M* metric = internal::RegistryGet(registry_, name_,
                                      Labels{{label_key_, label_value}},
                                      static_cast<M*>(nullptr));
    series_.emplace(label_value, metric);
    return metric;
  }

 private:
  Registry* registry_;
  std::string name_;
  std::string label_key_;
  std::mutex mu_;
  std::map<std::string, M*> series_;
};

using CounterFamily = Family<Counter>;
using GaugeFamily = Family<Gauge>;
using HistogramFamily = Family<Histogram>;

}  // namespace leakdet::obs

#endif  // LEAKDET_OBS_METRICS_H_
