#include "obs/metrics.h"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cstdio>
#include <limits>

namespace leakdet::obs {

namespace {

size_t BucketIndex(uint64_t value) {
  if (value == 0) return 0;
  size_t bit = 63 - static_cast<size_t>(std::countl_zero(value));
  return std::min(bit, Histogram::kNumBuckets - 1);
}

/// Prometheus metric names allow [a-zA-Z_:][a-zA-Z0-9_:]*. Our internal
/// dotted names ("gateway.shard0.enqueued") map dots — and anything else
/// outside the charset — to underscores.
std::string SanitizeMetricName(std::string_view name) {
  std::string out;
  out.reserve(name.size() + 1);
  for (size_t i = 0; i < name.size(); ++i) {
    char c = name[i];
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
              c == ':' || (c >= '0' && c <= '9' && i > 0);
    out += ok ? c : '_';
  }
  if (out.empty()) out = "_";
  return out;
}

/// Label values escape backslash, double quote, and newline per the
/// exposition format.
std::string EscapeLabelValue(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '"') {
      out += "\\\"";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

std::string RenderLabels(const Labels& labels) {
  if (labels.empty()) return "";
  std::string out = "{";
  for (size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) out += ',';
    out += SanitizeMetricName(labels[i].first);
    out += "=\"";
    out += EscapeLabelValue(labels[i].second);
    out += '"';
  }
  out += '}';
  return out;
}

std::string RenderLabelsWithLe(const Labels& labels, const std::string& le) {
  std::string out = "{";
  for (const auto& [k, v] : labels) {
    out += SanitizeMetricName(k);
    out += "=\"";
    out += EscapeLabelValue(v);
    out += "\",";
  }
  out += "le=\"" + le + "\"}";
  return out;
}

}  // namespace

void Histogram::Observe(uint64_t value) {
  buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
}

Histogram::Snapshot Histogram::Take() const {
  Snapshot snap;
  snap.count = count_.load(std::memory_order_relaxed);
  snap.sum = sum_.load(std::memory_order_relaxed);
  for (size_t i = 0; i < kNumBuckets; ++i) {
    snap.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return snap;
}

double Histogram::Snapshot::Mean() const {
  return count == 0 ? 0.0
                    : static_cast<double>(sum) / static_cast<double>(count);
}

uint64_t Histogram::Snapshot::Quantile(double q) const {
  // Rank over the bucket mass the snapshot actually holds, not over `count`:
  // a torn snapshot (count incremented between the bucket reads and the
  // count read) must never rank past the last bucket and report the
  // ~18-minute 2^40 sentinel as a latency.
  uint64_t total = 0;
  for (uint64_t b : buckets) total += b;
  if (total == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(total - 1));
  uint64_t seen = 0;
  for (size_t i = 0; i + 1 < kNumBuckets; ++i) {
    seen += buckets[i];
    if (seen > rank) return uint64_t{1} << (i + 1);  // bucket upper edge
  }
  // The last bucket absorbs everything above 2^39 — it has no finite upper
  // edge, so report "off the scale" rather than a fabricated boundary.
  return std::numeric_limits<uint64_t>::max();
}

uint64_t ScopedTimer::ElapsedNs() const {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(clock_->Now() -
                                                           start_)
          .count());
}

Registry* Registry::Default() {
  static Registry* instance = new Registry();
  return instance;
}

template <typename M>
M* Registry::GetOrCreate(std::vector<Entry<M>>* entries,
                         const std::string& name, const Labels& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& entry : *entries) {
    if (entry.name == name && entry.labels == labels) {
      return entry.metric.get();
    }
  }
  entries->push_back(Entry<M>{name, labels, std::make_unique<M>()});
  return entries->back().metric.get();
}

Counter* Registry::GetCounter(const std::string& name, const Labels& labels) {
  return GetOrCreate(&counters_, name, labels);
}

Gauge* Registry::GetGauge(const std::string& name, const Labels& labels) {
  return GetOrCreate(&gauges_, name, labels);
}

Histogram* Registry::GetHistogram(const std::string& name,
                                  const Labels& labels) {
  return GetOrCreate(&histograms_, name, labels);
}

void Registry::OnCollect(std::function<void()> hook) {
  std::lock_guard<std::mutex> lock(mu_);
  collect_hooks_.push_back(std::move(hook));
}

void Registry::RunCollectHooks() const {
  // Copy under the lock, run outside it: hooks may re-enter the registry
  // (GetGauge on a lazily created series).
  std::vector<std::function<void()>> hooks;
  {
    std::lock_guard<std::mutex> lock(mu_);
    hooks = collect_hooks_;
  }
  for (const auto& hook : hooks) hook();
}

std::string Registry::TextDump() const {
  RunCollectHooks();
  struct Line {
    std::string name;
    std::string rendered;
  };
  std::vector<Line> lines;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& entry : counters_) {
      std::string name = entry.name + RenderLabels(entry.labels);
      lines.push_back({name, name + " " + std::to_string(entry.metric->Value())});
    }
    for (const auto& entry : gauges_) {
      std::string name = entry.name + RenderLabels(entry.labels);
      lines.push_back({name, name + " " + std::to_string(entry.metric->Value())});
    }
    for (const auto& entry : histograms_) {
      std::string name = entry.name + RenderLabels(entry.labels);
      Histogram::Snapshot snap = entry.metric->Take();
      char buf[256];
      std::snprintf(buf, sizeof(buf),
                    "%s count=%llu sum=%llu mean=%.1f p50=%llu p90=%llu "
                    "p99=%llu",
                    name.c_str(), static_cast<unsigned long long>(snap.count),
                    static_cast<unsigned long long>(snap.sum), snap.Mean(),
                    static_cast<unsigned long long>(snap.Quantile(0.50)),
                    static_cast<unsigned long long>(snap.Quantile(0.90)),
                    static_cast<unsigned long long>(snap.Quantile(0.99)));
      lines.push_back({name, buf});
    }
  }
  std::sort(lines.begin(), lines.end(),
            [](const Line& a, const Line& b) { return a.name < b.name; });
  std::string out;
  for (const Line& line : lines) {
    out += line.rendered;
    out += '\n';
  }
  return out;
}

std::string Registry::PrometheusText() const {
  RunCollectHooks();
  // One output block per metric family (sanitized name), series sorted by
  // labels within it, families sorted by name — a stable, diffable scrape.
  struct Series {
    Labels labels;
    std::string body;  ///< fully rendered sample line(s)
  };
  std::map<std::string, std::pair<const char*, std::vector<Series>>> families;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& entry : counters_) {
      std::string name = SanitizeMetricName(entry.name);
      auto& family = families[name];
      family.first = "counter";
      family.second.push_back(
          {entry.labels, name + RenderLabels(entry.labels) + " " +
                             std::to_string(entry.metric->Value()) + "\n"});
    }
    for (const auto& entry : gauges_) {
      std::string name = SanitizeMetricName(entry.name);
      auto& family = families[name];
      family.first = "gauge";
      family.second.push_back(
          {entry.labels, name + RenderLabels(entry.labels) + " " +
                             std::to_string(entry.metric->Value()) + "\n"});
    }
    for (const auto& entry : histograms_) {
      std::string name = SanitizeMetricName(entry.name);
      auto& family = families[name];
      family.first = "histogram";
      Histogram::Snapshot snap = entry.metric->Take();
      // Cumulative buckets. Trim the empty tail: emit finite edges up to the
      // highest non-empty bucket, then the mandatory +Inf (a scrape never
      // needs forty zero lines per idle histogram).
      size_t last_used = 0;
      for (size_t i = 0; i < Histogram::kNumBuckets; ++i) {
        if (snap.buckets[i] != 0) last_used = i;
      }
      std::string body;
      uint64_t cumulative = 0;
      for (size_t i = 0; i <= last_used && i + 1 < Histogram::kNumBuckets;
           ++i) {
        cumulative += snap.buckets[i];
        body += name + "_bucket" +
                RenderLabelsWithLe(entry.labels,
                                   std::to_string(uint64_t{1} << (i + 1))) +
                " " + std::to_string(cumulative) + "\n";
      }
      uint64_t bucket_total = 0;
      for (uint64_t b : snap.buckets) bucket_total += b;
      body += name + "_bucket" + RenderLabelsWithLe(entry.labels, "+Inf") +
              " " + std::to_string(bucket_total) + "\n";
      body += name + "_sum" + RenderLabels(entry.labels) + " " +
              std::to_string(snap.sum) + "\n";
      body += name + "_count" + RenderLabels(entry.labels) + " " +
              std::to_string(snap.count) + "\n";
      family.second.push_back({entry.labels, std::move(body)});
    }
  }
  std::string out;
  for (auto& [name, family] : families) {
    out += "# TYPE " + name + " " + family.first + "\n";
    std::sort(family.second.begin(), family.second.end(),
              [](const Series& a, const Series& b) {
                return a.labels < b.labels;
              });
    for (const Series& series : family.second) out += series.body;
  }
  return out;
}

}  // namespace leakdet::obs
