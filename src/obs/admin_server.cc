#include "obs/admin_server.h"

#include <chrono>

#include "http/message.h"
#include "http/parser.h"
#include "http/url.h"
#include "net/tcp.h"

namespace leakdet::obs {

namespace {

/// Bounded label value for admin.requests: known routes by name, everything
/// else collapses into "other" so a scanner probing random paths cannot mint
/// unbounded time series.
std::string PathLabel(const std::string& path) {
  if (path == "/metrics") return "metrics";
  if (path == "/healthz") return "healthz";
  if (path == "/statusz") return "statusz";
  if (path == "/varz") return "varz";
  return "other";
}

}  // namespace

std::string BuildInfoString() {
  std::string out;
#if defined(__clang__)
  out += "clang " + std::to_string(__clang_major__) + "." +
         std::to_string(__clang_minor__);
#elif defined(__GNUC__)
  out += "gcc " + std::to_string(__GNUC__) + "." +
         std::to_string(__GNUC_MINOR__);
#else
  out += "unknown-compiler";
#endif
  out += ", c++" + std::to_string(__cplusplus / 100 % 100);
  out += ", " + std::to_string(sizeof(void*) * 8) + "-bit";
#if defined(NDEBUG)
  out += ", release";
#else
  out += ", debug";
#endif
  return out;
}

AdminServer::AdminServer(AdminServerOptions options)
    : options_(options),
      registry_(options.registry != nullptr ? options.registry
                                            : Registry::Default()),
      requests_by_path_(registry_, "admin.requests", "path") {
  requests_timed_out_ = registry_->GetCounter("admin.requests_timed_out");
  request_ns_ = registry_->GetHistogram("admin.request_ns");
}

AdminServer::~AdminServer() { Stop(); }

void AdminServer::AddStatusSection(std::string title, StatusSection section) {
  std::lock_guard<std::mutex> lock(sections_mu_);
  // Re-registering a title replaces its renderer in place (keeping the
  // original position) rather than appending a duplicate — components that
  // change shape at runtime (a cluster node switching role on failover)
  // re-register their section instead of growing /statusz forever.
  for (auto& [existing_title, existing_section] : sections_) {
    if (existing_title == title) {
      existing_section = std::move(section);
      return;
    }
  }
  sections_.emplace_back(std::move(title), std::move(section));
}

Status AdminServer::Start(uint16_t port) {
  LEAKDET_ASSIGN_OR_RETURN(net::TcpListener listener,
                           net::TcpListener::Bind(port));
  return Start(std::make_unique<net::TcpListener>(std::move(listener)));
}

Status AdminServer::Start(std::unique_ptr<net::Listener> listener) {
  if (running_.load()) return Status::FailedPrecondition("already running");
  if (!listener || !listener->ok()) {
    return Status::InvalidArgument("listener not open");
  }
  listener_ = std::move(listener);
  port_ = listener_->port();
  running_.store(true);
  thread_ = std::thread([this] { Serve(); });
  return Status::OK();
}

void AdminServer::Stop() {
  if (!running_.exchange(false)) {
    if (thread_.joinable()) thread_.join();
    return;
  }
  if (thread_.joinable()) thread_.join();
  if (listener_) listener_->Close();
}

void AdminServer::Serve() {
  while (running_.load()) {
    StatusOr<std::unique_ptr<net::Stream>> stream =
        listener_->AcceptStream(100);
    if (!stream.ok()) continue;  // timeout or transient error
    Handle(std::move(*stream));
  }
}

std::string AdminServer::RenderStatusz() const {
  std::string out = "leakdet statusz\nbuild: " + BuildInfoString() + "\n";
  std::vector<std::pair<std::string, StatusSection>> sections;
  {
    std::lock_guard<std::mutex> lock(sections_mu_);
    sections = sections_;
  }
  for (const auto& [title, section] : sections) {
    out += "\n[" + title + "]\n";
    out += section();
    if (!out.empty() && out.back() != '\n') out += '\n';
  }
  return out;
}

http::HttpResponse AdminServer::Respond(const std::string& method,
                                        const std::string& target) const {
  http::HttpResponse response;
  // A query string never changes admin routing.
  const std::string path = http::SplitTarget(target).path;
  if (method != "GET") {
    response.set_status(405, "Method Not Allowed");
    response.set_body("admin endpoints are GET-only\n");
  } else if (path == "/metrics") {
    response.set_status(200, "OK");
    response.AddHeader("Content-Type",
                       "text/plain; version=0.0.4; charset=utf-8");
    response.set_body(registry_->PrometheusText());
  } else if (path == "/healthz") {
    response.set_status(200, "OK");
    response.AddHeader("Content-Type", "text/plain");
    response.set_body("ok\n");
  } else if (path == "/statusz") {
    response.set_status(200, "OK");
    response.AddHeader("Content-Type", "text/plain");
    response.set_body(RenderStatusz());
  } else if (path == "/varz") {
    response.set_status(200, "OK");
    response.AddHeader("Content-Type", "text/plain");
    response.set_body(registry_->TextDump());
  } else {
    response.set_status(404, "Not Found");
    response.set_body("unknown path\n");
  }
  requests_by_path_.With(PathLabel(path))->Inc();
  return response;
}

void AdminServer::Handle(std::unique_ptr<net::Stream> stream) {
  Clock* clock = options_.clock != nullptr ? options_.clock : Clock::Real();
  ScopedTimer timer(request_ns_, clock);
  // Same whole-request budget discipline as io::FeedServer: every read is
  // bounded by the *remaining* budget, so trickled bytes cannot extend it.
  const Clock::TimePoint deadline =
      clock->Now() + std::chrono::milliseconds(options_.request_deadline_ms);
  std::string raw;
  bool failed = false;
  while (raw.find("\r\n\r\n") == std::string::npos &&
         raw.find("\n\n") == std::string::npos && raw.size() < 65536) {
    Clock::TimePoint now = clock->Now();
    if (now >= deadline) {
      failed = true;
      break;
    }
    // Round the remaining budget up to whole ms — truncation would turn a
    // sub-millisecond remainder into SetReadTimeout(0) ("block forever").
    auto remaining_ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(deadline - now)
            .count();
    int remaining_ms = static_cast<int>((remaining_ns + 999999) / 1000000);
    (void)stream->SetReadTimeout(remaining_ms);
    StatusOr<std::string> chunk = stream->ReadSome(4096);
    if (!chunk.ok()) {
      failed = true;  // deadline expired, or the connection died mid-request
      break;
    }
    if (chunk->empty()) break;
    raw += *chunk;
  }
  if (failed) {
    requests_timed_out_->Inc();
    if (raw.empty()) return;  // nothing ever arrived; just drop it
    http::HttpResponse timeout_response;
    timeout_response.set_status(408, "Request Timeout");
    timeout_response.AddHeader("Connection", "close");
    timeout_response.set_body("request incomplete before deadline\n");
    (void)stream->WriteAll(timeout_response.Serialize());
    return;
  }

  http::HttpResponse response;
  StatusOr<http::HttpRequest> request = http::ParseRequest(raw);
  if (!request.ok()) {
    response.set_status(400, "Bad Request");
    response.set_body("malformed request\n");
    requests_by_path_.With("bad_request")->Inc();
  } else {
    response = Respond(request->method(), request->target());
  }
  response.AddHeader("Connection", "close");
  (void)stream->WriteAll(response.Serialize());
  requests_served_.fetch_add(1);
}

StatusOr<http::HttpResponse> AdminGet(net::Stream* stream,
                                      const std::string& path) {
  http::HttpRequest request("GET", path);
  request.AddHeader("Host", "127.0.0.1");
  request.AddHeader("Connection", "close");
  LEAKDET_RETURN_IF_ERROR(stream->WriteAll(request.Serialize()));
  stream->ShutdownWrite();
  LEAKDET_ASSIGN_OR_RETURN(std::string raw, stream->ReadUntilClose());
  return http::ParseResponse(raw);
}

StatusOr<http::HttpResponse> AdminGet(uint16_t port, const std::string& path) {
  LEAKDET_ASSIGN_OR_RETURN(net::TcpConnection connection,
                           net::TcpConnectLoopback(port));
  return AdminGet(&connection, path);
}

}  // namespace leakdet::obs
