#ifndef LEAKDET_TESTING_CLUSTER_CHAOS_H_
#define LEAKDET_TESTING_CLUSTER_CHAOS_H_

#include <cstdint>
#include <functional>
#include <string>

#include "testing/fault_script.h"
#include "testing/scripted_file.h"

namespace leakdet::testing {

/// Configuration of one differential cluster-chaos run (RunClusterChaos).
struct ClusterChaosOptions {
  /// Traffic seed: every packet, device id, and training token is a pure
  /// function of it. Transport faults live in `script`, disk faults in
  /// `store_faults` (each node's ScriptedDir is seeded from this seed plus
  /// its slot index, so crash damage is node-local and replayable).
  uint64_t seed = 1;
  FaultScript script;
  StoreFaultProfile store_faults;
  /// Cluster shape: member count (>= 2), detection shards per node, and the
  /// per-shard queue bound (kBlock, so the bound backpressures the driver).
  size_t nodes = 3;
  size_t shards = 2;
  size_t queue_capacity = 256;
  /// One epoch = train-to-publish on the leader + replication round +
  /// ring-routed detection batch + statusz checks + scheduled chaos events.
  size_t epochs = 6;
  size_t packets_per_epoch = 96;
  /// Retrain threshold for every node's SignatureServer and the shadow
  /// oracle (kept small so each epoch publishes quickly).
  size_t retrain_after = 24;
  double p_sensitive = 0.35;
  /// Device-id universe for consistent-hash routing.
  uint64_t devices = 64;
  /// After this epoch's detection batch the leader is hard-killed (graceful
  /// drain, then its disk takes a scripted crash) and a follower must win
  /// the election and serve from its replicated WAL. 0 = never.
  size_t kill_leader_at_epoch = 3;
  /// The killed slot rejoins as a follower this many epochs later.
  size_t restart_killed_after = 1;
  /// Before this epoch's replication round one follower is partitioned from
  /// the leader, serving its stale epoch through the detection batch (the
  /// split-epoch window); the link heals at the end of the epoch. 0 = never.
  size_t partition_follower_at_epoch = 5;
  /// Heartbeat rounds a follower must miss before the leader counts as
  /// lost, and replication retries allowed through detected corruption.
  size_t heartbeat_miss_threshold = 3;
  size_t max_sync_retries = 8;
  /// Per-response record cap on /replog (small values force batch loops).
  size_t replog_batch_limit = 64;
  /// Optional progress sink (nullptr = silent).
  std::function<void(const std::string&)> log;
};

/// Everything one cluster-chaos run measured. `digest` covers the
/// deterministic surface — the per-(node, shard) verdict streams plus the
/// deterministic counters — and must be bit-for-bit identical across runs
/// with the same options. Retry/corruption *counts* depend on where the
/// fault schedule lands relative to server-thread timing and are asserted
/// indirectly (convergence must still hold) but not digested.
struct ClusterChaosResult {
  uint64_t epochs = 0;

  // Detection-path conservation across every node, including killed
  // incarnations (kBlock everywhere: dropped and in_flight must end at 0).
  uint64_t ingested = 0;   ///< packets routed into the cluster
  uint64_t accepted = 0;
  uint64_t dropped = 0;
  uint64_t delivered = 0;  ///< verdicts the per-node sinks received
  uint64_t in_flight = 0;  ///< accepted - delivered after the final drain

  // Differential verification: every verdict vs a single-node Detector
  // oracle built from the exact epoch the serving node held at submit time.
  uint64_t verdicts_checked = 0;
  uint64_t oracle_mismatches = 0;
  uint64_t epoch_mismatches = 0;  ///< verdict carried a wrong feed_version
  uint64_t conservation_violations = 0;
  uint64_t barrier_timeouts = 0;  ///< an epoch never converged (fatal)

  // Feed-replication correctness against the shadow single-node trainer.
  uint64_t feed_divergences = 0;     ///< leader feed != shadow oracle feed
  uint64_t promote_divergences = 0;  ///< promoted leader's feed != shadow
  uint64_t convergence_checks = 0;   ///< follower epoch+WAL vs leader
  uint64_t convergence_failures = 0;
  uint64_t split_epoch_windows = 0;  ///< detection batches served by a
                                     ///  partitioned node on a stale epoch

  // Replication transport (counts; corruption/retry totals not digested).
  uint64_t records_replicated = 0;
  uint64_t epochs_applied = 0;
  uint64_t snapshots_installed = 0;
  uint64_t sync_corruptions = 0;
  uint64_t sync_failures = 0;  ///< a follower round exhausted its retries

  // Membership chaos.
  uint64_t failovers = 0;
  uint64_t failover_failures = 0;  ///< election failed, or fired spuriously
  uint64_t node_kills = 0;
  uint64_t node_restarts = 0;
  uint64_t partitions = 0;
  uint64_t heals = 0;

  // Training path (the seeded stream offered to the current leader).
  uint64_t training_packets = 0;
  uint64_t training_drops = 0;

  // Admin plane: transport-free /statusz vs live cluster state.
  uint64_t statusz_checks = 0;
  uint64_t statusz_mismatches = 0;

  // Echo of the schedule, so ok() can require the chaos actually happened.
  bool kill_requested = false;
  bool partition_requested = false;

  /// FNV-1a over the per-(node, shard) verdict streams and counters.
  uint64_t digest = 0;

  /// Verdicts bit-identical to the oracle, exact conservation through every
  /// failover, every reachable follower converged each epoch, and each
  /// scheduled chaos event actually fired and was survived.
  bool ok() const {
    return oracle_mismatches == 0 && epoch_mismatches == 0 &&
           conservation_violations == 0 && barrier_timeouts == 0 &&
           feed_divergences == 0 && promote_divergences == 0 &&
           convergence_failures == 0 && sync_failures == 0 &&
           failover_failures == 0 && dropped == 0 && in_flight == 0 &&
           training_drops == 0 && statusz_mismatches == 0 &&
           (!kill_requested || (failovers >= 1 && node_restarts >= 1)) &&
           (!partition_requested ||
            (partitions >= 1 && heals >= 1 && split_epoch_windows >= 1));
  }

  std::string Summary() const;
};

/// Drives a gateway cluster — N ClusterNodes behind consistent-hash device
/// routing, WAL replication over scripted (faulty) connections, scripted
/// per-node disks — through lock-step epochs while a *shadow* single-node
/// SignatureServer on the driver thread ingests the identical training
/// stream. Differentially verifies:
///  - the leader's published feed is byte-identical to the shadow's at
///    every epoch, including the leader promoted after a kill (which must
///    rebuild it from its local replicated WAL alone);
///  - every gateway verdict matches a fresh single-threaded core::Detector
///    built from the exact epoch the serving node held — including stale
///    epochs served inside partition windows;
///  - exact packet conservation (ingested == delivered, nothing dropped or
///    in flight) across leader kill, failover, and restart;
///  - /statusz cluster membership agrees with live state each epoch.
/// Identical options must produce identical `digest`s.
ClusterChaosResult RunClusterChaos(const ClusterChaosOptions& options);

}  // namespace leakdet::testing

#endif  // LEAKDET_TESTING_CLUSTER_CHAOS_H_
