#ifndef LEAKDET_TESTING_CHAOS_H_
#define LEAKDET_TESTING_CHAOS_H_

#include <cstdint>
#include <functional>
#include <string>

#include "testing/fault_script.h"

namespace leakdet::testing {

/// Configuration of one differential chaos run (see RunChaos below).
struct ChaosOptions {
  /// Traffic seed: every generated packet, device id, and training token is
  /// a pure function of it. The transport fault seed lives in `script`.
  uint64_t seed = 1;
  FaultScript script;
  size_t shards = 4;
  size_t queue_capacity = 256;
  /// One epoch = train-to-publish + detection batch + feed fetches.
  size_t epochs = 3;
  size_t packets_per_epoch = 120;
  size_t feed_fetches_per_epoch = 2;
  double p_sensitive = 0.35;
  /// Retrain threshold for the embedded SignatureServer (kept small so each
  /// epoch publishes quickly).
  size_t retrain_after = 24;
  /// Optional progress sink (nullptr = silent).
  std::function<void(const std::string&)> log;
};

/// Everything one chaos run measured. `digest` covers the deterministic
/// surface — the per-shard verdict streams and the conservation counters —
/// and must be bit-for-bit identical across runs with the same options.
/// Feed-fetch outcome *classification* (served vs cleanly failed) depends on
/// thread interleaving against the fault schedule and is asserted but not
/// digested; see docs/TESTING.md.
struct ChaosResult {
  uint64_t epochs = 0;

  // Detection-path conservation (the gateway runs kBlock, so dropped and
  // in_flight must both end at zero).
  uint64_t ingested = 0;   ///< detection packets submitted
  uint64_t accepted = 0;
  uint64_t dropped = 0;
  uint64_t delivered = 0;  ///< verdicts the sink received
  uint64_t in_flight = 0;  ///< accepted - delivered after the final drain

  // Differential verification against the single-threaded Detector oracle.
  uint64_t verdicts_checked = 0;
  uint64_t oracle_mismatches = 0;
  uint64_t epoch_mismatches = 0;  ///< verdict carried a wrong feed_version
  uint64_t conservation_violations = 0;
  uint64_t torn_epochs = 0;       ///< current_set()/current_version() disagreed
  uint64_t barrier_timeouts = 0;  ///< an epoch never converged (fatal)

  // Training path.
  uint64_t swaps = 0;
  uint64_t trainer_restarts = 0;
  uint64_t training_packets = 0;
  uint64_t training_drops = 0;

  // Feed path (not digested; see above).
  uint64_t feed_fetches = 0;
  uint64_t feed_fetch_ok = 0;
  uint64_t feed_fetch_errors = 0;
  uint64_t feed_corruptions_detected = 0;   ///< digest header caught a flip
  uint64_t feed_integrity_violations = 0;   ///< wrong payload slipped through

  // Admin plane. Wire fetch outcomes are interleaving-dependent like the
  // feed path's (counted, not digested); the /statusz consistency checks
  // run transport-free against live gateway/store state and are fatal.
  uint64_t admin_fetches = 0;
  uint64_t admin_fetch_ok = 0;
  uint64_t admin_fetch_errors = 0;
  uint64_t statusz_checks = 0;
  uint64_t statusz_mismatches = 0;  ///< /statusz disagreed with live state

  // kDropNewest overflow probes (exact-accounting checks).
  uint64_t overflow_probes = 0;
  uint64_t overflow_drop_mismatches = 0;

  /// FNV-1a over the per-shard verdict streams and deterministic counters.
  uint64_t digest = 0;

  /// No mismatches, no conservation violations, every epoch converged, and
  /// nothing corrupt was ever served as valid.
  bool ok() const {
    return oracle_mismatches == 0 && epoch_mismatches == 0 &&
           conservation_violations == 0 && torn_epochs == 0 &&
           barrier_timeouts == 0 && feed_integrity_violations == 0 &&
           overflow_drop_mismatches == 0 && dropped == 0 && in_flight == 0 &&
           training_drops == 0 && statusz_mismatches == 0;
  }

  std::string Summary() const;
};

/// Drives the full serving path — SignatureServer + TrainerLoop (backed by
/// a StoreManager on an in-memory Dir) + DetectionGateway + FeedServer and
/// obs::AdminServer over scripted connections — under the fault schedule in
/// `options.script`, and differentially verifies every gateway verdict
/// against a fresh single-threaded core::Detector built from the exact
/// epoch the packet was matched under, plus exact packet conservation and
/// per-epoch /statusz-vs-live-state consistency.
///
/// Epochs run in lock-step so the run is reproducible bit-for-bit despite
/// worker threads: train until the publish barrier, snapshot the epoch,
/// submit the detection batch, drain to the delivery barrier, then exercise
/// the feed path. Identical options must produce identical `digest`s.
ChaosResult RunChaos(const ChaosOptions& options);

}  // namespace leakdet::testing

#endif  // LEAKDET_TESTING_CHAOS_H_
