#ifndef LEAKDET_TESTING_FAULT_SCRIPT_H_
#define LEAKDET_TESTING_FAULT_SCRIPT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/rng.h"
#include "util/statusor.h"

namespace leakdet::testing {

/// Per-operation fault probabilities and magnitudes. A FaultScript carries
/// one profile plus a seed; every decision a scripted connection makes is a
/// pure function of (seed, connection id, operation index), so a failing run
/// replays bit-for-bit from its seed.
struct FaultProfile {
  // Transport faults (consumed by testing::ScriptedStream).
  double short_read = 0;   ///< P(cap one read at `short_chunk` bytes)
  double short_write = 0;  ///< P(split one write into `short_chunk` pieces)
  double eintr = 0;        ///< P(EINTR burst before an op; absorbed, counted)
  double timeout = 0;      ///< P(a read with no buffered data reports
                           ///  "read timed out" — scripted EAGAIN)
  double reset = 0;        ///< P(connection reset; fatal for both ends)
  double delay = 0;        ///< P(delivery delayed `delay_ns` of virtual time)
  double corrupt = 0;      ///< P(one delivered byte flipped)
  uint32_t short_chunk = 1;     ///< byte cap for short reads/writes
  uint32_t max_eintr = 3;       ///< EINTR burst length bound
  uint64_t delay_ns = 1000000;  ///< virtual-time delivery delay

  // Chaos-runner shape knobs (ignored by ScriptedStream itself).
  uint32_t trainer_kill_every = 0;  ///< restart TrainerLoop every N epochs
                                    ///  (0 = never)
  uint32_t burst_multiplier = 0;    ///< overflow probe: burst = multiplier x
                                    ///  queue capacity (0 = no probe)
};

/// The deterministic decision stream one scripted connection consumes: an
/// own Rng seeded from (script seed, connection id) yields the same fault
/// sequence on every run.
class FaultPlan {
 public:
  /// A plan with no faults (faithful transport).
  FaultPlan() = default;

  FaultPlan(uint64_t seed, const FaultProfile& profile)
      : rng_(seed), profile_(profile), scripted_(true) {}

  struct ReadDecision {
    uint32_t eintrs = 0;    ///< EINTR burst absorbed before the read
    bool timeout = false;   ///< report "read timed out" if nothing buffered
    bool reset = false;     ///< connection reset now
    uint64_t delay_ns = 0;  ///< delay delivery this much virtual time
    size_t max_bytes = SIZE_MAX;  ///< short-read cap
    bool corrupt = false;         ///< flip one delivered byte
  };
  struct WriteDecision {
    uint32_t eintrs = 0;
    bool reset = false;
    size_t chunk = SIZE_MAX;  ///< short-write piece size
    bool corrupt = false;
  };

  ReadDecision NextRead();
  WriteDecision NextWrite();

 private:
  Rng rng_{0};
  FaultProfile profile_;
  bool scripted_ = false;
};

/// A named, seeded fault schedule: the unit `leakdet_chaos --schedule` loads
/// and CI failures replay from. Serializes to a line-oriented `key=value`
/// text format (see docs/TESTING.md); three builtin schedules cover the
/// standing chaos suite: "short-io", "reset-storm", "swap-crash" (plus
/// "none" for faithful baselines).
class FaultScript {
 public:
  FaultScript() = default;
  FaultScript(std::string name, uint64_t seed, const FaultProfile& profile)
      : name_(std::move(name)), seed_(seed), profile_(profile) {}

  /// Parses the Serialize() format: `key=value` lines, `#` comments and
  /// blank lines ignored. Unknown keys and unparsable values are errors so
  /// a typo in a schedule file cannot silently run a different schedule.
  static StatusOr<FaultScript> Parse(std::string_view text);

  /// Loads `spec` as a schedule file if one exists at that path, otherwise
  /// resolves it as a builtin name.
  static StatusOr<FaultScript> Load(const std::string& spec);

  /// The builtin schedule registry.
  static StatusOr<FaultScript> Builtin(std::string_view name);
  static std::vector<std::string> BuiltinNames();

  std::string Serialize() const;

  /// Deterministic per-connection fault plan: identical (script, conn_id)
  /// always yields an identical decision stream.
  FaultPlan PlanForConnection(uint64_t conn_id) const;

  const std::string& name() const { return name_; }
  uint64_t seed() const { return seed_; }
  void set_seed(uint64_t seed) { seed_ = seed; }
  const FaultProfile& profile() const { return profile_; }
  FaultProfile* mutable_profile() { return &profile_; }

 private:
  std::string name_ = "none";
  uint64_t seed_ = 1;
  FaultProfile profile_;
};

}  // namespace leakdet::testing

#endif  // LEAKDET_TESTING_FAULT_SCRIPT_H_
