#include "testing/chaos.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <optional>
#include <sstream>
#include <thread>
#include <vector>

#include "core/detector.h"
#include "core/payload_check.h"
#include "core/signature_server.h"
#include "gateway/gateway.h"
#include "gateway/trainer.h"
#include "http/response.h"
#include "io/feed_server.h"
#include "obs/admin_server.h"
#include "obs/metrics.h"
#include "store/store_manager.h"
#include "testing/chaos_util.h"
#include "testing/packet_gen.h"
#include "testing/scripted_conn.h"
#include "testing/scripted_file.h"
#include "util/rng.h"

namespace leakdet::testing {

std::string ChaosResult::Summary() const {
  std::ostringstream out;
  out << "epochs=" << epochs << " ingested=" << ingested
      << " accepted=" << accepted << " delivered=" << delivered
      << " dropped=" << dropped << " in_flight=" << in_flight << "\n"
      << "verdicts_checked=" << verdicts_checked
      << " oracle_mismatches=" << oracle_mismatches
      << " epoch_mismatches=" << epoch_mismatches
      << " conservation_violations=" << conservation_violations << "\n"
      << "swaps=" << swaps << " trainer_restarts=" << trainer_restarts
      << " training_packets=" << training_packets
      << " training_drops=" << training_drops
      << " torn_epochs=" << torn_epochs
      << " barrier_timeouts=" << barrier_timeouts << "\n"
      << "feed_fetches=" << feed_fetches << " ok=" << feed_fetch_ok
      << " errors=" << feed_fetch_errors
      << " corruptions_detected=" << feed_corruptions_detected
      << " integrity_violations=" << feed_integrity_violations << "\n"
      << "admin_fetches=" << admin_fetches << " ok=" << admin_fetch_ok
      << " errors=" << admin_fetch_errors
      << " statusz_checks=" << statusz_checks
      << " statusz_mismatches=" << statusz_mismatches << "\n"
      << "overflow_probes=" << overflow_probes
      << " overflow_drop_mismatches=" << overflow_drop_mismatches << "\n"
      << "digest=" << std::hex << digest << std::dec
      << " verdict=" << (ok() ? "OK" : "FAILED");
  return out.str();
}

ChaosResult RunChaos(const ChaosOptions& options) {
  ChaosResult result;
  auto log = [&](const std::string& message) {
    if (options.log) options.log(message);
  };
  Rng rng(options.seed);
  const FaultProfile& profile = options.script.profile();

  // The instrumented handset whose identifiers make ground truth: training
  // packets embed these tokens, the PayloadCheck oracle knows them.
  std::vector<core::DeviceTokens> devices(2);
  for (core::DeviceTokens& device : devices) {
    device.android_id = rng.RandomHex(16);
    device.imei = rng.RandomDigits(15);
    device.imsi = rng.RandomDigits(15);
    device.sim_serial = rng.RandomDigits(19);
    device.carrier = "NTT DOCOMO";
  }
  std::vector<std::string> tokens;
  for (const core::DeviceTokens& device : devices) {
    tokens.push_back(device.android_id);
    tokens.push_back(device.imei);
  }
  core::PayloadCheck payload_check(devices);

  core::SignatureServer::Options server_options;
  server_options.retrain_after =
      options.retrain_after == 0 ? 1 : options.retrain_after;
  server_options.pipeline.sample_size = 16;
  server_options.pipeline.normal_corpus_size = 64;
  server_options.pipeline.num_threads = 1;  // deterministic generation
  core::SignatureServer server(&payload_check, server_options);

  // One registry for the whole serving stack, so the admin plane scrapes
  // gateway, trainer, store, and feed metrics from a single place. Declared
  // before every component that registers into it (destroyed after them).
  obs::Registry registry;

  // Durable store on a fault-free in-memory Dir: the trainer WAL-appends
  // every mailbox item and snapshots every epoch, and /statusz must agree
  // with the live WAL watermarks it mirrors into the registry's gauges.
  ScriptedDir store_dir(options.seed);
  std::unique_ptr<store::StoreManager> store;
  {
    store::StoreOptions store_options;
    store_options.registry = &registry;
    auto opened =
        store::StoreManager::Open(&store_dir, "chaos-store", store_options);
    if (!opened.ok()) {
      ++result.barrier_timeouts;
      return result;
    }
    store = std::move(*opened);
  }

  gateway::GatewayOptions gateway_options;
  gateway_options.registry = &registry;
  gateway_options.num_shards = options.shards == 0 ? 1 : options.shards;
  gateway_options.queue_capacity =
      options.queue_capacity == 0 ? 1 : options.queue_capacity;
  gateway_options.pop_batch = 16;
  // kBlock is what makes the run replayable: backpressure instead of
  // timing-dependent drops. kDropNewest accounting gets its own probes.
  gateway_options.overload = gateway::OverloadPolicy::kBlock;
  gateway::DetectionGateway gateway(gateway_options);

  const size_t num_shards = gateway.num_shards();
  std::mutex records_mu;
  std::vector<std::vector<VerdictRecord>> shard_records(num_shards);
  std::atomic<uint64_t> delivered{0};
  gateway.set_sink([&](const core::HttpPacket& packet,
                       const gateway::Verdict& verdict) {
    {
      std::lock_guard<std::mutex> lock(records_mu);
      shard_records[verdict.shard].push_back({packet.app_id, verdict});
    }
    delivered.fetch_add(1, std::memory_order_release);
  });
  if (!gateway.Start().ok()) {
    ++result.barrier_timeouts;
    return result;
  }

  gateway::TrainerOptions trainer_options;
  trainer_options.queue_capacity = 4096;
  trainer_options.store = store.get();
  auto trainer =
      std::make_unique<gateway::TrainerLoop>(&server, &gateway,
                                             trainer_options);
  if (!trainer->Start().ok()) {
    ++result.barrier_timeouts;
    return result;
  }

  // Feed side: a FeedServer on scripted connections, serving a snapshot the
  // main thread refreshes at each publish barrier (the SignatureServer
  // itself is only safe on the training thread).
  std::mutex feed_mu;
  uint64_t feed_version = 0;
  std::string feed_payload;
  io::FeedServerOptions feed_options;
  feed_options.request_deadline_ms = 2000;
  io::FeedServer feed_server(
      [&]() {
        std::lock_guard<std::mutex> lock(feed_mu);
        return std::make_pair(feed_version, feed_payload);
      },
      feed_options);
  auto listener = std::make_unique<ScriptedListener>(Clock::Real(),
                                                     &options.script);
  ScriptedListener* listener_ptr = listener.get();
  if (!feed_server.Start(std::move(listener)).ok()) {
    ++result.barrier_timeouts;
    return result;
  }

  // Admin plane on its own scripted listener: the same fault schedule that
  // batters the feed path covers /metrics and /statusz. The status sections
  // only read atomics/gauges, per AdminServer's thread-safety contract.
  obs::AdminServerOptions admin_options;
  admin_options.registry = &registry;
  obs::AdminServer admin(admin_options);
  admin.AddStatusSection("gateway", [&gateway] {
    std::ostringstream out;
    out << "epoch_version: " << gateway.current_version() << "\n"
        << "epoch_age_ns: " << gateway.epoch_age_ns() << "\n";
    return out.str();
  });
  obs::Gauge* wal_last_gauge = registry.GetGauge("store.wal_last_sequence");
  admin.AddStatusSection("store", [&registry, wal_last_gauge] {
    std::ostringstream out;
    out << "wal_last_sequence: " << wal_last_gauge->Value() << "\n"
        << "wal_durable_sequence: "
        << registry.GetGauge("store.wal_durable_sequence")->Value() << "\n"
        << "snapshot_version: "
        << registry.GetGauge("store.snapshot_version")->Value() << "\n";
    return out.str();
  });
  auto admin_listener = std::make_unique<ScriptedListener>(Clock::Real(),
                                                           &options.script);
  ScriptedListener* admin_listener_ptr = admin_listener.get();
  if (!admin.Start(std::move(admin_listener)).ok()) {
    ++result.barrier_timeouts;
    return result;
  }

  // Expected verdict per trace index, from the Detector oracle built at each
  // epoch's publish barrier.
  std::vector<uint8_t> expected_sensitive;
  std::vector<uint64_t> expected_epoch;
  uint64_t cumulative_accepted = 0;
  uint32_t trace_index = 0;
  bool aborted = false;

  for (size_t epoch = 1; epoch <= options.epochs && !aborted; ++epoch) {
    // ---- Phase 1: train until this epoch publishes. -------------------
    const bool kill_trainer = profile.trainer_kill_every > 0 &&
                              epoch % profile.trainer_kill_every == 0;
    const size_t sensitive_needed = server_options.retrain_after;
    const size_t kill_at = sensitive_needed / 2;
    for (size_t i = 0; i < sensitive_needed; ++i) {
      if (kill_trainer && i == kill_at) {
        // Chaos: tear the training loop down mid-epoch (Stop drains the
        // mailbox, so ingestion stays deterministic) and stand up a fresh
        // one. The gateway must keep serving the last published epoch.
        trainer->Stop();
        trainer.reset();
        trainer = std::make_unique<gateway::TrainerLoop>(&server, &gateway,
                                                         trainer_options);
        if (!trainer->Start().ok()) {
          aborted = true;
          break;
        }
        ++result.trainer_restarts;
      }
      core::HttpPacket packet = GeneratePacket(&rng, tokens, 1.0);
      gateway::Verdict verdict;
      verdict.sensitive = true;
      trainer->Offer(packet, verdict);
      ++result.training_packets;
      if (i % 2 == 1) {
        core::HttpPacket normal = GeneratePacket(&rng, {}, 0.0);
        trainer->Offer(normal, gateway::Verdict{});
        ++result.training_packets;
      }
    }
    if (aborted) break;
    if (!WaitUntil([&] { return gateway.current_version() >= epoch; })) {
      log("epoch " + std::to_string(epoch) + ": publish barrier timed out");
      ++result.barrier_timeouts;
      break;
    }

    // ---- Publish barrier: snapshot the epoch, build the oracle. -------
    auto compiled = gateway.current_set();
    if (!compiled || compiled->version() != epoch ||
        gateway.current_version() != compiled->version()) {
      ++result.torn_epochs;
    }
    if (!compiled) {
      ++result.barrier_timeouts;
      break;
    }
    core::Detector oracle(compiled->set(), /*use_host_scope=*/true);
    {
      std::lock_guard<std::mutex> lock(feed_mu);
      feed_version = compiled->version();
      feed_payload = compiled->set().Serialize();
    }

    // ---- Phase 2: detection batch, verified against the oracle. -------
    // The publish happened-before our acquire read of current_version(),
    // and the queue mutex carries that edge to the workers: every packet
    // below is matched under exactly this epoch.
    for (size_t i = 0; i < options.packets_per_epoch; ++i) {
      core::HttpPacket packet =
          GeneratePacket(&rng, tokens, options.p_sensitive);
      packet.app_id = trace_index;
      expected_sensitive.push_back(oracle.IsSensitive(packet) ? 1 : 0);
      expected_epoch.push_back(epoch);
      uint64_t device_id = rng.UniformInt(64);
      ++result.ingested;
      if (gateway.Submit(device_id, std::move(packet))) {
        ++result.accepted;
        ++cumulative_accepted;
      }
      ++trace_index;
    }
    if (!WaitUntil([&] {
          return delivered.load(std::memory_order_acquire) >=
                 cumulative_accepted;
        })) {
      log("epoch " + std::to_string(epoch) + ": delivery barrier timed out");
      ++result.barrier_timeouts;
      break;
    }

    // ---- Phase 3: feed fetches over scripted (faulty) connections. ----
    for (size_t i = 0; i < options.feed_fetches_per_epoch; ++i) {
      std::unique_ptr<ScriptedStream> client = listener_ptr->Connect();
      (void)client->SetReadTimeout(5000);
      ++result.feed_fetches;
      StatusOr<io::FetchedFeed> fetched = io::FetchFeedFrom(client.get());
      if (fetched.ok()) {
        std::lock_guard<std::mutex> lock(feed_mu);
        if (fetched->version == feed_version &&
            fetched->payload == feed_payload) {
          ++result.feed_fetch_ok;
        } else {
          // A fetch that "succeeded" with a payload that is not the one the
          // provider served means the digest header failed its one job.
          ++result.feed_integrity_violations;
        }
      } else {
        ++result.feed_fetch_errors;
        if (fetched.status().code() == StatusCode::kCorruption) {
          ++result.feed_corruptions_detected;
        }
      }
    }

    // ---- Phase 3.5: admin plane. Wire fetches exercise the fault
    // schedule (their outcomes are interleaving-dependent — counted, not
    // digested); the consistency check runs transport-free via Respond()
    // so a scripted bit flip can never fake a /statusz mismatch.
    for (const char* admin_path : {"/healthz", "/metrics", "/statusz"}) {
      std::unique_ptr<ScriptedStream> admin_client =
          admin_listener_ptr->Connect();
      (void)admin_client->SetReadTimeout(5000);
      ++result.admin_fetches;
      StatusOr<http::HttpResponse> fetched =
          obs::AdminGet(admin_client.get(), admin_path);
      if (fetched.ok() && fetched->status_code() == 200) {
        ++result.admin_fetch_ok;
      } else {
        ++result.admin_fetch_errors;
      }
    }
    {
      // Trailing training appends may still be draining, so the WAL
      // watermark is checked by bracketing; the epoch is quiescent between
      // the publish barrier and the next batch, so it must match exactly.
      const int64_t wal_before = wal_last_gauge->Value();
      http::HttpResponse statusz = admin.Respond("GET", "/statusz");
      const int64_t wal_after = wal_last_gauge->Value();
      ++result.statusz_checks;
      std::optional<uint64_t> statusz_version =
          StatuszValue(statusz.body(), "epoch_version");
      std::optional<uint64_t> statusz_wal =
          StatuszValue(statusz.body(), "wal_last_sequence");
      if (statusz.status_code() != 200 || !statusz_version ||
          *statusz_version != epoch || !statusz_wal ||
          *statusz_wal < static_cast<uint64_t>(wal_before) ||
          *statusz_wal > static_cast<uint64_t>(wal_after)) {
        ++result.statusz_mismatches;
      }
    }

    // ---- Phase 4: kDropNewest exact-accounting probe. -----------------
    if (profile.burst_multiplier > 0) {
      ++result.overflow_probes;
      gateway::GatewayOptions probe_options;
      probe_options.num_shards = 1;
      probe_options.queue_capacity = 32;
      probe_options.overload = gateway::OverloadPolicy::kDropNewest;
      gateway::DetectionGateway probe(probe_options);
      probe.Publish(compiled);
      // Workers are not started yet, so acceptance is a pure function of
      // queue occupancy: exactly `capacity` accepted, the rest dropped.
      const size_t burst =
          static_cast<size_t>(profile.burst_multiplier) *
          probe_options.queue_capacity;
      uint64_t probe_accepted = 0;
      for (size_t i = 0; i < burst; ++i) {
        core::HttpPacket packet = GeneratePacket(&rng, tokens, 0.5);
        if (probe.Submit(/*device_id=*/0, std::move(packet))) {
          ++probe_accepted;
        }
      }
      const uint64_t expected_accepted =
          std::min<uint64_t>(burst, probe_options.queue_capacity);
      if (probe_accepted != expected_accepted ||
          probe.dropped() != burst - expected_accepted ||
          probe.submitted() != expected_accepted) {
        ++result.overflow_drop_mismatches;
      }
      if (!probe.Start().ok()) ++result.overflow_drop_mismatches;
      probe.Stop();
      if (probe.processed() != probe_accepted ||
          probe.submitted() + probe.dropped() != burst) {
        ++result.conservation_violations;
      }
    }

    ++result.epochs;
    log("epoch " + std::to_string(epoch) + " done: accepted=" +
        std::to_string(cumulative_accepted));
  }

  // ---- Final drain + verification. ------------------------------------
  feed_server.Stop();
  admin.Stop();
  trainer->Stop();
  result.training_drops = trainer->training_drops();
  gateway.Stop();  // every accepted packet has a verdict after this
  (void)store->Sync();

  // Fully quiesced now, so /statusz (Respond() stays usable after Stop())
  // must agree with the store and gateway exactly, not just by bracketing.
  {
    http::HttpResponse statusz = admin.Respond("GET", "/statusz");
    ++result.statusz_checks;
    std::optional<uint64_t> statusz_version =
        StatuszValue(statusz.body(), "epoch_version");
    std::optional<uint64_t> statusz_wal =
        StatuszValue(statusz.body(), "wal_last_sequence");
    if (!statusz_version || *statusz_version != gateway.current_version() ||
        !statusz_wal || *statusz_wal != store->last_sequence()) {
      ++result.statusz_mismatches;
    }
  }

  result.swaps = gateway.swaps();
  result.dropped += gateway.dropped();
  {
    std::lock_guard<std::mutex> lock(records_mu);
    uint64_t recorded = 0;
    for (const auto& records : shard_records) recorded += records.size();
    result.delivered = recorded;
  }
  result.in_flight = result.accepted - result.delivered;
  if (result.accepted + result.dropped != result.ingested ||
      result.delivered != gateway.processed()) {
    ++result.conservation_violations;
  }

  Fnv1a digest;
  {
    std::lock_guard<std::mutex> lock(records_mu);
    for (size_t shard = 0; shard < shard_records.size(); ++shard) {
      digest.Mix(0x5A5A0000ULL + shard);
      for (const VerdictRecord& record : shard_records[shard]) {
        const uint32_t index = record.trace_index;
        if (index < expected_sensitive.size()) {
          ++result.verdicts_checked;
          if (record.verdict.sensitive != (expected_sensitive[index] != 0)) {
            ++result.oracle_mismatches;
          }
          if (record.verdict.feed_version != expected_epoch[index]) {
            ++result.epoch_mismatches;
          }
        } else {
          ++result.oracle_mismatches;  // verdict for a packet never sent
        }
        digest.Mix(index);
        digest.Mix(record.verdict.feed_version);
        digest.Mix(record.verdict.sensitive ? 1 : 0);
        digest.Mix(record.verdict.num_matches);
      }
    }
  }
  digest.Mix(result.epochs);
  digest.Mix(result.ingested);
  digest.Mix(result.accepted);
  digest.Mix(result.dropped);
  digest.Mix(result.delivered);
  digest.Mix(result.verdicts_checked);
  digest.Mix(result.oracle_mismatches);
  digest.Mix(result.epoch_mismatches);
  digest.Mix(result.swaps);
  digest.Mix(result.trainer_restarts);
  digest.Mix(result.training_packets);
  digest.Mix(result.overflow_probes);
  digest.Mix(result.overflow_drop_mismatches);
  result.digest = digest.hash;
  return result;
}

}  // namespace leakdet::testing
