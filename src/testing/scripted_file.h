#ifndef LEAKDET_TESTING_SCRIPTED_FILE_H_
#define LEAKDET_TESTING_SCRIPTED_FILE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>

#include "store/file.h"
#include "util/rng.h"

namespace leakdet::testing {

/// Fault knobs for the store::Dir seam, mirroring FaultProfile on the
/// net::Stream seam. All decisions flow from one seeded Rng in operation
/// order, so an identical operation sequence replays identical faults.
struct StoreFaultProfile {
  double short_write = 0;  ///< P(an Append lands only a prefix and errors)
  double sync_fail = 0;    ///< P(a Sync / SyncDir reports failure)
  double torn_tail = 0;    ///< P(per file at Crash(): unsynced suffix torn
                           ///  at a scripted byte rather than kept whole)
  double bit_flip = 0;     ///< P(per file at Crash(): one surviving unsynced
                           ///  byte gets one bit flipped)
};

/// In-memory store::Dir with deterministic fault injection and crash
/// simulation — the filesystem counterpart of ScriptedStream.
///
/// Every file is an inode with *live* bytes (what reads return) and a
/// *durable prefix* (bytes covered by a successful File::Sync). The
/// namespace is tracked the same way: a live name table plus a durable name
/// table updated only by SyncDir. Crash() then reverts the world to what a
/// kernel would guarantee after power loss:
///  - the namespace rolls back to the durable table (files created or
///    renamed without a SyncDir vanish / reappear under their old names);
///  - every inode keeps its durable prefix intact; the unsynced suffix
///    survives whole, torn at a scripted byte boundary-free offset
///    (P = torn_tail), and may take a single scripted bit flip
///    (P = bit_flip) — never inside the durable prefix.
///
/// Thread-safe (one mutex), though the store's contract is single-writer.
class ScriptedDir final : public store::Dir {
 public:
  explicit ScriptedDir(uint64_t seed = 1,
                       StoreFaultProfile profile = StoreFaultProfile());
  ~ScriptedDir() override;

  StatusOr<std::unique_ptr<store::File>> OpenAppend(
      const std::string& path) override;
  StatusOr<std::string> Read(const std::string& path) override;
  StatusOr<std::vector<std::string>> List(const std::string& dirpath) override;
  Status CreateDir(const std::string& dirpath) override;
  Status Rename(const std::string& from, const std::string& to) override;
  Status Remove(const std::string& path) override;
  Status Truncate(const std::string& path, uint64_t size) override;
  Status SyncDir(const std::string& dirpath) override;
  StatusOr<uint64_t> FileSize(const std::string& path) override;
  bool Exists(const std::string& path) override;

  /// Simulates a kill -9 + power loss, per the class comment. Open handles
  /// become invalid (their appends fail). Deterministic given the seed and
  /// the operation history.
  void Crash();

  /// Everything the fault plan did (for assertions).
  struct Stats {
    uint64_t appends = 0;
    uint64_t short_writes = 0;
    uint64_t sync_failures = 0;
    uint64_t crashes = 0;
    uint64_t torn_bytes = 0;    ///< unsynced bytes discarded across crashes
    uint64_t flipped_bits = 0;  ///< bits flipped across crashes
  };
  Stats stats() const;

 private:
  class ScriptedFile;
  struct Inode {
    std::string data;
    size_t synced = 0;   ///< durable prefix length
    uint64_t epoch = 0;  ///< bumped by Crash(); stale handles refuse writes
  };

  std::string DirOf(const std::string& path) const;

  mutable std::mutex mu_;
  Rng rng_;
  StoreFaultProfile profile_;
  uint64_t crash_epoch_ = 0;
  std::map<std::string, std::shared_ptr<Inode>> live_;
  std::map<std::string, std::shared_ptr<Inode>> durable_;
  std::set<std::string> dirs_;
  Stats stats_;
};

}  // namespace leakdet::testing

#endif  // LEAKDET_TESTING_SCRIPTED_FILE_H_
