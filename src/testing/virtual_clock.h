#ifndef LEAKDET_TESTING_VIRTUAL_CLOCK_H_
#define LEAKDET_TESTING_VIRTUAL_CLOCK_H_

#include <condition_variable>
#include <cstdint>
#include <mutex>

#include "util/clock.h"

namespace leakdet::testing {

/// Manual-advance Clock: time moves only when a test (or a sleeper) says so,
/// which makes every deadline in the code under test fire at an exact,
/// replayable instant. Inject wherever a Clock* is accepted (FeedServer
/// request deadlines, gateway timings, ScriptedStream read deadlines).
///
/// Threading: all methods are thread-safe. Advance() wakes anything blocked
/// in a ScriptedStream deadline wait or in SleepFor on another thread.
/// SleepFor called on a VirtualClock advances the clock itself — a lone
/// sleeper is what makes virtual time pass, so it never deadlocks.
class VirtualClock final : public Clock {
 public:
  /// Starts at an arbitrary non-zero epoch so subtracting small durations
  /// from Now() can never underflow the time_point.
  VirtualClock()
      : now_(TimePoint{} + std::chrono::hours(1)) {}

  TimePoint Now() override {
    std::lock_guard<std::mutex> lock(mu_);
    return now_;
  }

  /// Virtual sleep: advances the clock by `duration` (a sleeping thread is
  /// what makes virtual time pass) and returns immediately in real time.
  void SleepFor(std::chrono::nanoseconds duration) override {
    Advance(duration);
  }

  /// Moves time forward and wakes every waiter. `delta` must be >= 0.
  void Advance(std::chrono::nanoseconds delta) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (delta.count() > 0) now_ += delta;
      ++advances_;
    }
    advanced_.notify_all();
  }

  /// Moves time to `t` (never backwards) and wakes every waiter.
  void AdvanceTo(TimePoint t) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (t > now_) now_ = t;
      ++advances_;
    }
    advanced_.notify_all();
  }

  /// Number of Advance/AdvanceTo calls so far (observability for tests).
  uint64_t advances() const {
    std::lock_guard<std::mutex> lock(mu_);
    return advances_;
  }

  /// Blocks (in real time, with a bounded poll) until virtual time reaches
  /// `t`. Used by ScriptedStream to realize delayed-delivery faults; tests
  /// drive it by calling Advance from the controlling thread.
  void BlockUntil(TimePoint t) {
    std::unique_lock<std::mutex> lock(mu_);
    while (now_ < t) {
      advanced_.wait_for(lock, std::chrono::milliseconds(1));
    }
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable advanced_;
  TimePoint now_;
  uint64_t advances_ = 0;
};

}  // namespace leakdet::testing

#endif  // LEAKDET_TESTING_VIRTUAL_CLOCK_H_
