#ifndef LEAKDET_TESTING_SCRIPTED_CONN_H_
#define LEAKDET_TESTING_SCRIPTED_CONN_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>

#include "net/stream.h"
#include "testing/fault_script.h"
#include "util/clock.h"

namespace leakdet::testing {

/// In-memory implementation of the net::Stream seam with deterministic fault
/// injection: an emulated kernel socket buffer between two endpoints, where
/// every read/write first consults a FaultPlan. Faults modelled:
///  - short reads/writes (data delivered in scripted-size pieces);
///  - EINTR bursts (absorbed and counted, mirroring the production retry
///    loops' contract that interrupts never surface);
///  - scripted EAGAIN ("read timed out" with an empty buffer);
///  - genuine deadline expiry against an injected (virtual) clock, with
///    `now >= deadline` — boundary included — counting as expired;
///  - connection resets (fatal for both ends, mid-message capable);
///  - delayed delivery (virtual time) and single-byte corruption.
///
/// Determinism: all decisions come from the FaultPlan's seeded Rng, so one
/// (script, connection id) pair replays the same behaviour on every run.
class ScriptedStream final : public net::Stream {
 public:
  /// Everything the fault plan did to this endpoint (for assertions).
  struct Stats {
    uint64_t reads = 0;
    uint64_t writes = 0;
    uint64_t short_reads = 0;
    uint64_t short_writes = 0;
    uint64_t eintrs_absorbed = 0;
    uint64_t timeouts = 0;
    uint64_t resets = 0;
    uint64_t delays = 0;
    uint64_t corrupted_bytes = 0;
    uint64_t bytes_read = 0;
    uint64_t bytes_written = 0;
  };

  ~ScriptedStream() override;

  Status WriteAll(std::string_view data) override;
  Status SetReadTimeout(int timeout_ms) override;
  StatusOr<std::string> ReadSome(size_t max_bytes) override;
  void ShutdownWrite() override;
  void Close() override;
  bool ok() const override;

  Stats stats() const;

 private:
  friend struct ScriptedPair;
  friend class ScriptedListener;

  struct PipeState;
  ScriptedStream(std::shared_ptr<PipeState> state, bool is_a, FaultPlan plan,
                 Clock* clock);

  std::shared_ptr<PipeState> state_;
  bool is_a_ = false;
  FaultPlan plan_;
  Clock* clock_ = nullptr;
  int read_timeout_ms_ = 0;  // 0 = block indefinitely
  bool closed_ = false;
  mutable std::mutex stats_mu_;
  Stats stats_;
};

/// A connected pair of scripted streams ("client" a, "server" b), each with
/// its own fault plan over a shared emulated socket buffer.
struct ScriptedPair {
  std::unique_ptr<ScriptedStream> client;
  std::unique_ptr<ScriptedStream> server;

  /// `clock` may be a VirtualClock (deterministic deadlines/delays) or
  /// nullptr for Clock::Real(). Plans default to no faults.
  static ScriptedPair Make(Clock* clock = nullptr,
                           FaultPlan client_plan = FaultPlan(),
                           FaultPlan server_plan = FaultPlan());
};

/// net::Listener fed by the test: each Connect() creates a scripted pair,
/// returns the client end and queues the server end for AcceptStream.
/// Connection ids increment from 0 in Connect order; with a FaultScript
/// attached, connection k's client end uses plan 2k and its server end plan
/// 2k+1 — fully deterministic across runs.
class ScriptedListener final : public net::Listener {
 public:
  /// `script` may be null (faithful transport) and must outlive the
  /// listener. `clock` nullptr = Clock::Real().
  explicit ScriptedListener(Clock* clock = nullptr,
                            const FaultScript* script = nullptr);
  ~ScriptedListener() override;

  /// Creates a connection; the returned client end is the test's to drive.
  std::unique_ptr<ScriptedStream> Connect();

  StatusOr<std::unique_ptr<net::Stream>> AcceptStream(int timeout_ms) override;
  uint16_t port() const override { return 0; }
  void Close() override;
  bool ok() const override;

  uint64_t connections() const;

 private:
  Clock* clock_;
  const FaultScript* script_;
  mutable std::mutex mu_;
  std::condition_variable pending_cv_;
  std::deque<std::unique_ptr<ScriptedStream>> pending_;
  uint64_t next_conn_id_ = 0;
  bool closed_ = false;
};

}  // namespace leakdet::testing

#endif  // LEAKDET_TESTING_SCRIPTED_CONN_H_
