#include "testing/packet_gen.h"

#include <array>
#include <string_view>

namespace leakdet::testing {

namespace {

constexpr std::string_view kTokenAlphabet =
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789-._";
constexpr std::string_view kValueAlphabet =
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789"
    "-._~:/?#[]@!$&'()*+,;=";
constexpr std::string_view kPathAlphabet =
    "abcdefghijklmnopqrstuvwxyz0123456789-_.";
constexpr std::string_view kBodyAlphabet =
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789"
    "-._=&%+{}:\"[], ";

constexpr std::array<std::string_view, 6> kMethods = {"GET",  "POST", "PUT",
                                                      "HEAD", "DELETE",
                                                      "M-SEARCH"};
constexpr std::array<std::string_view, 6> kHeaderNames = {
    "Host", "User-Agent", "Accept", "X-Trace-Id", "Accept-Language",
    "X-Requested-With"};
constexpr std::array<std::string_view, 4> kHosts = {
    "ads.example.com", "track.example.net", "api.example.org",
    "cdn.example.io"};

std::string RandomTarget(Rng* rng) {
  std::string target = "/";
  size_t segments = static_cast<size_t>(rng->UniformInt(3));
  for (size_t i = 0; i < segments; ++i) {
    target += rng->RandomString(1 + rng->UniformInt(8), kPathAlphabet);
    target += '/';
  }
  if (rng->Bernoulli(0.6)) {
    target += '?';
    size_t params = 1 + static_cast<size_t>(rng->UniformInt(3));
    for (size_t i = 0; i < params; ++i) {
      if (i > 0) target += '&';
      target += rng->RandomString(1 + rng->UniformInt(5), kPathAlphabet);
      target += '=';
      target += rng->RandomString(rng->UniformInt(10), kPathAlphabet);
    }
  }
  return target;
}

/// A header value that survives the parser's trim untouched: non-empty
/// interior draws from kValueAlphabet, which has no whitespace.
std::string RandomHeaderValue(Rng* rng) {
  return rng->RandomString(1 + rng->UniformInt(16), kValueAlphabet);
}

}  // namespace

http::HttpRequest GenerateValidRequest(Rng* rng) {
  std::string method(kMethods[rng->UniformInt(kMethods.size())]);
  std::string version = rng->Bernoulli(0.85) ? "HTTP/1.1" : "HTTP/1.0";
  http::HttpRequest request(method, RandomTarget(rng), version);
  size_t headers = static_cast<size_t>(rng->UniformInt(6));
  for (size_t i = 0; i < headers; ++i) {
    // Duplicate names are deliberately possible: order and multiplicity must
    // both round-trip. Content-Length is managed below, never drawn here.
    std::string name =
        rng->Bernoulli(0.8)
            ? std::string(kHeaderNames[rng->UniformInt(kHeaderNames.size())])
            : rng->RandomString(1 + rng->UniformInt(12), kTokenAlphabet);
    request.AddHeader(std::move(name), RandomHeaderValue(rng));
  }
  if (rng->Bernoulli(0.3)) {
    request.AddHeader("Cookie", "sid=" + rng->RandomHex(16));
  }
  if (rng->Bernoulli(0.4)) {
    std::string body =
        rng->RandomString(1 + rng->UniformInt(64), kBodyAlphabet);
    // The parser treats the remainder as the body whether or not a
    // Content-Length is present, but when present it must agree — exercise
    // both shapes.
    if (rng->Bernoulli(0.5)) {
      request.AddHeader("Content-Length", std::to_string(body.size()));
    }
    request.set_body(std::move(body));
  }
  return request;
}

std::string SerializeWithVariations(const http::HttpRequest& request,
                                    Rng* rng) {
  const std::string eol = rng->Bernoulli(0.5) ? "\r\n" : "\n";
  std::string out = request.method();
  out += ' ';
  out += request.target();
  out += ' ';
  out += request.version();
  out += eol;
  for (const http::HeaderField& h : request.headers()) {
    out += h.name;
    out += ':';
    // The parser trims the value, so squeezed ("name:value") and padded
    // ("name:   value  ") separators must parse identically.
    switch (rng->UniformInt(3)) {
      case 0:
        break;
      case 1:
        out += ' ';
        break;
      default:
        out.append(1 + rng->UniformInt(3), ' ');
        break;
    }
    out += h.value;
    if (rng->Bernoulli(0.2)) out.append(1 + rng->UniformInt(2), ' ');
    out += eol;
  }
  out += eol;
  out += request.body();
  return out;
}

std::string GenerateMalformedRequest(Rng* rng, std::string* clazz) {
  auto set_class = [&](std::string_view name) {
    if (clazz != nullptr) *clazz = std::string(name);
  };
  switch (rng->UniformInt(12)) {
    case 0: {
      set_class("missing-request-line-terminator");
      return "GET " + RandomTarget(rng) + " HTTP/1.1";
    }
    case 1: {
      set_class("non-token-method");
      static constexpr std::string_view kBad = "@(){}<>\\\",";
      std::string method = "GE";
      method += kBad[rng->UniformInt(kBad.size())];
      method += "T";
      return method + " / HTTP/1.1\r\n\r\n";
    }
    case 2: {
      set_class("empty-method");
      return " / HTTP/1.1\r\n\r\n";
    }
    case 3: {
      set_class("one-space-request-line");
      return "GET /\r\n\r\n";
    }
    case 4: {
      set_class("bad-version");
      static constexpr std::array<std::string_view, 5> kVersions = {
          "HTTP/11", "HTPS/1.1", "HTTP/1.10", "http/1.1", "HTTP/a.1"};
      return "GET / " + std::string(kVersions[rng->UniformInt(5)]) +
             "\r\n\r\n";
    }
    case 5: {
      set_class("empty-target");
      return "GET  HTTP/1.1\r\n\r\n";
    }
    case 6: {
      set_class("header-without-colon");
      return "GET / HTTP/1.1\r\nHost " +
             rng->RandomString(4, kPathAlphabet) + "\r\n\r\n";
    }
    case 7: {
      set_class("non-token-header-name");
      return "GET / HTTP/1.1\r\nBad Name: x\r\n\r\n";
    }
    case 8: {
      set_class("obs-fold-continuation");
      return "GET / HTTP/1.1\r\nA: b\r\n " +
             rng->RandomString(4, kPathAlphabet) + "\r\n\r\n";
    }
    case 9: {
      set_class("unterminated-header-block");
      return "GET / HTTP/1.1\r\nHost: " +
             rng->RandomString(6, kPathAlphabet) + "\r\n";
    }
    case 10: {
      set_class("bad-content-length");
      std::string cl = rng->Bernoulli(0.5)
                           ? rng->RandomDigits(3) + "x"
                           : "-" + rng->RandomDigits(2);
      return "GET / HTTP/1.1\r\nContent-Length: " + cl + "\r\n\r\nbody";
    }
    default: {
      // Any strict prefix of a valid request carrying a non-empty body with
      // a correct Content-Length is invalid: cut in the body and the length
      // mismatches; cut earlier and the header block never terminates.
      set_class("truncated-valid-request");
      http::HttpRequest request("POST", RandomTarget(rng));
      request.AddHeader("Host", "h.example.com");
      std::string body =
          rng->RandomString(1 + rng->UniformInt(32), kBodyAlphabet);
      request.AddHeader("Content-Length", std::to_string(body.size()));
      request.set_body(std::move(body));
      std::string full = request.Serialize();
      size_t cut = 1 + static_cast<size_t>(rng->UniformInt(full.size() - 1));
      return full.substr(0, cut);
    }
  }
}

core::HttpPacket GeneratePacket(
    Rng* rng, const std::vector<std::string>& sensitive_tokens,
    double p_sensitive) {
  size_t host_index = rng->UniformInt(kHosts.size());
  net::Endpoint destination;
  destination.ip =
      net::Ipv4Address(0x0A000001u + static_cast<uint32_t>(host_index));
  destination.port = 80;
  destination.host = std::string(kHosts[host_index]);

  std::string target = "/track?session=" + rng->RandomHex(8);
  if (!sensitive_tokens.empty() && rng->Bernoulli(p_sensitive)) {
    target += "&udid=" + sensitive_tokens[rng->UniformInt(
                             sensitive_tokens.size())];
  }
  target += "&r=" + rng->RandomDigits(4);

  http::HttpRequest request("GET", target);
  request.AddHeader("Host", destination.host);
  if (rng->Bernoulli(0.3)) {
    request.AddHeader("Cookie", "sid=" + rng->RandomHex(12));
  }
  return core::MakePacket(static_cast<uint32_t>(rng->UniformInt(32)),
                          destination, request);
}

}  // namespace leakdet::testing
