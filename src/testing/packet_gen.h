#ifndef LEAKDET_TESTING_PACKET_GEN_H_
#define LEAKDET_TESTING_PACKET_GEN_H_

#include <string>
#include <vector>

#include "core/packet.h"
#include "http/message.h"
#include "util/rng.h"

namespace leakdet::testing {

/// Property-based generators for HTTP requests and packets. Everything is a
/// pure function of the Rng state, so a failing property test replays from
/// its seed.

/// A request guaranteed to round-trip: for any rng,
/// ParseRequest(GenerateValidRequest(rng).Serialize()) succeeds and yields
/// field-identical method/target/version/headers/body.
http::HttpRequest GenerateValidRequest(Rng* rng);

/// Serializes `request` with wire-level variations the parser must accept as
/// equivalent (bare-LF line endings, squeezed or padded header separators).
std::string SerializeWithVariations(const http::HttpRequest& request,
                                    Rng* rng);

/// Adversarially malformed wire bytes, guaranteed rejected: ParseRequest must
/// return (not crash) a clean InvalidArgument for every output. When
/// `clazz` is non-null it receives the malformation class name for
/// diagnostics.
std::string GenerateMalformedRequest(Rng* rng, std::string* clazz = nullptr);

/// A well-formed HttpPacket for gateway/chaos traffic. With probability
/// `p_sensitive` one of `sensitive_tokens` is embedded in the query string
/// (the paper's leaking-identifier shape); hosts come from a small fixed
/// pool so host-scoped signatures get repeat traffic.
core::HttpPacket GeneratePacket(Rng* rng,
                                const std::vector<std::string>& sensitive_tokens,
                                double p_sensitive);

}  // namespace leakdet::testing

#endif  // LEAKDET_TESTING_PACKET_GEN_H_
