#include "testing/scripted_file.h"

#include <algorithm>

namespace leakdet::testing {

/// A handle onto one inode. Faults and stats live in the owning dir; a
/// crash invalidates the handle via the inode epoch (the kernel analogue:
/// the process holding the fd died with the machine).
class ScriptedDir::ScriptedFile final : public store::File {
 public:
  ScriptedFile(ScriptedDir* dir, std::shared_ptr<Inode> inode)
      : dir_(dir), inode_(std::move(inode)), epoch_(inode_->epoch) {}

  Status Append(std::string_view data) override {
    std::lock_guard<std::mutex> lock(dir_->mu_);
    if (closed_) return Status::FailedPrecondition("append on closed file");
    if (inode_->epoch != epoch_) {
      return Status::IOError("scripted: stale handle (crashed)");
    }
    ++dir_->stats_.appends;
    if (!data.empty() && dir_->rng_.Bernoulli(dir_->profile_.short_write)) {
      // A prefix lands, the rest does not — the caller sees the error and
      // must repair via Truncate, exactly as with a real ENOSPC/EIO.
      size_t landed = static_cast<size_t>(dir_->rng_.UniformInt(data.size()));
      inode_->data.append(data.substr(0, landed));
      ++dir_->stats_.short_writes;
      return Status::IOError("scripted: short write (" +
                             std::to_string(landed) + "/" +
                             std::to_string(data.size()) + " bytes)");
    }
    inode_->data.append(data);
    return Status::OK();
  }

  Status Sync() override {
    std::lock_guard<std::mutex> lock(dir_->mu_);
    if (closed_) return Status::FailedPrecondition("sync on closed file");
    if (inode_->epoch != epoch_) {
      return Status::IOError("scripted: stale handle (crashed)");
    }
    if (dir_->rng_.Bernoulli(dir_->profile_.sync_fail)) {
      ++dir_->stats_.sync_failures;
      return Status::IOError("scripted: sync failure");
    }
    inode_->synced = inode_->data.size();
    return Status::OK();
  }

  Status Close() override {
    closed_ = true;
    return Status::OK();
  }

 private:
  ScriptedDir* dir_;
  std::shared_ptr<Inode> inode_;
  uint64_t epoch_;
  bool closed_ = false;
};

ScriptedDir::ScriptedDir(uint64_t seed, StoreFaultProfile profile)
    : rng_(seed), profile_(profile) {}

ScriptedDir::~ScriptedDir() = default;

std::string ScriptedDir::DirOf(const std::string& path) const {
  size_t slash = path.rfind('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

StatusOr<std::unique_ptr<store::File>> ScriptedDir::OpenAppend(
    const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = live_.find(path);
  if (it == live_.end()) {
    auto inode = std::make_shared<Inode>();
    inode->epoch = crash_epoch_;
    it = live_.emplace(path, std::move(inode)).first;
  }
  return std::unique_ptr<store::File>(new ScriptedFile(this, it->second));
}

StatusOr<std::string> ScriptedDir::Read(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = live_.find(path);
  if (it == live_.end()) return Status::NotFound("read " + path);
  return it->second->data;
}

StatusOr<std::vector<std::string>> ScriptedDir::List(
    const std::string& dirpath) {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  for (const auto& [path, inode] : live_) {
    if (DirOf(path) == dirpath) names.push_back(path.substr(dirpath.size() + 1));
  }
  // Subdirectories too — readdir(2) returns them, so callers that scan for
  // child lineages (federation's per-tenant stores) see the same view here.
  for (const std::string& dir : dirs_) {
    if (DirOf(dir) == dirpath) names.push_back(dir.substr(dirpath.size() + 1));
  }
  std::sort(names.begin(), names.end());
  return names;
}

Status ScriptedDir::CreateDir(const std::string& dirpath) {
  std::lock_guard<std::mutex> lock(mu_);
  dirs_.insert(dirpath);
  return Status::OK();
}

Status ScriptedDir::Rename(const std::string& from, const std::string& to) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = live_.find(from);
  if (it == live_.end()) return Status::NotFound("rename " + from);
  live_[to] = it->second;
  live_.erase(it);
  return Status::OK();
}

Status ScriptedDir::Remove(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  if (live_.erase(path) == 0) return Status::NotFound("remove " + path);
  return Status::OK();
}

Status ScriptedDir::Truncate(const std::string& path, uint64_t size) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = live_.find(path);
  if (it == live_.end()) return Status::NotFound("truncate " + path);
  Inode& inode = *it->second;
  if (size < inode.data.size()) {
    inode.data.resize(static_cast<size_t>(size));
    inode.synced = std::min(inode.synced, inode.data.size());
  }
  return Status::OK();
}

Status ScriptedDir::SyncDir(const std::string& dirpath) {
  std::lock_guard<std::mutex> lock(mu_);
  if (rng_.Bernoulli(profile_.sync_fail)) {
    ++stats_.sync_failures;
    return Status::IOError("scripted: directory sync failure");
  }
  // Directory durability is per directory: names in `dirpath` now match the
  // live namespace exactly (creates, renames, and removes all stick).
  for (auto it = durable_.begin(); it != durable_.end();) {
    if (DirOf(it->first) == dirpath && live_.find(it->first) == live_.end()) {
      it = durable_.erase(it);
    } else {
      ++it;
    }
  }
  for (const auto& [path, inode] : live_) {
    if (DirOf(path) == dirpath) durable_[path] = inode;
  }
  return Status::OK();
}

StatusOr<uint64_t> ScriptedDir::FileSize(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = live_.find(path);
  if (it == live_.end()) return Status::NotFound("stat " + path);
  return static_cast<uint64_t>(it->second->data.size());
}

bool ScriptedDir::Exists(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  return live_.find(path) != live_.end();
}

void ScriptedDir::Crash() {
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.crashes;
  ++crash_epoch_;
  // The namespace reverts to its durable table; inode contents revert to
  // the durable prefix plus a scripted portion of the unsynced suffix.
  live_ = durable_;
  std::set<const Inode*> visited;
  for (const auto& [path, inode_ptr] : live_) {
    Inode& inode = *inode_ptr;
    if (!visited.insert(&inode).second) continue;
    inode.epoch = crash_epoch_;
    if (inode.data.size() > inode.synced) {
      size_t unsynced = inode.data.size() - inode.synced;
      if (rng_.Bernoulli(profile_.torn_tail)) {
        size_t keep = static_cast<size_t>(rng_.UniformInt(unsynced + 1));
        stats_.torn_bytes += unsynced - keep;
        inode.data.resize(inode.synced + keep);
      }
      if (inode.data.size() > inode.synced &&
          rng_.Bernoulli(profile_.bit_flip)) {
        size_t span = inode.data.size() - inode.synced;
        size_t at = inode.synced + static_cast<size_t>(rng_.UniformInt(span));
        inode.data[at] = static_cast<char>(
            inode.data[at] ^ (1u << rng_.UniformInt(8)));
        ++stats_.flipped_bits;
      }
    }
  }
}

ScriptedDir::Stats ScriptedDir::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace leakdet::testing
