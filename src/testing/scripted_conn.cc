#include "testing/scripted_conn.h"

#include <algorithm>
#include <chrono>
#include <utility>

namespace leakdet::testing {

namespace {
constexpr auto kPollInterval = std::chrono::microseconds(200);
}  // namespace

/// The emulated kernel socket buffer both endpoints share: one byte queue per
/// direction, a half-close flag per direction, and a reset flag that kills
/// both. Writers never block (unbounded buffer); readers wait on `cv` with a
/// bounded poll so a VirtualClock advancing without touching this cv still
/// gets noticed promptly.
struct ScriptedStream::PipeState {
  struct Half {
    std::string buffer;
    bool write_closed = false;
  };
  std::mutex mu;
  std::condition_variable cv;
  Half a_to_b;
  Half b_to_a;
  bool reset = false;
};

ScriptedStream::ScriptedStream(std::shared_ptr<PipeState> state, bool is_a,
                               FaultPlan plan, Clock* clock)
    : state_(std::move(state)),
      is_a_(is_a),
      plan_(std::move(plan)),
      clock_(clock != nullptr ? clock : Clock::Real()) {}

ScriptedStream::~ScriptedStream() { Close(); }

Status ScriptedStream::WriteAll(std::string_view data) {
  if (closed_) return Status::IOError("write on closed stream");
  if (data.empty()) return Status::OK();
  Stats delta;
  size_t offset = 0;
  Status result = Status::OK();
  {
    std::unique_lock<std::mutex> lock(state_->mu);
    PipeState::Half* out = is_a_ ? &state_->a_to_b : &state_->b_to_a;
    while (offset < data.size()) {
      if (state_->reset) {
        result = Status::IOError("connection reset by peer");
        break;
      }
      if (out->write_closed) {
        result = Status::IOError("write after shutdown");
        break;
      }
      // One fault decision per delivered piece, so a reset can land mid-body
      // after earlier pieces already reached the peer.
      FaultPlan::WriteDecision decision = plan_.NextWrite();
      ++delta.writes;
      delta.eintrs_absorbed += decision.eintrs;
      if (decision.reset) {
        state_->reset = true;
        ++delta.resets;
        result = Status::IOError("connection reset by peer");
        break;
      }
      size_t piece = std::min(decision.chunk, data.size() - offset);
      if (piece == 0) piece = 1;
      if (decision.chunk != SIZE_MAX) ++delta.short_writes;
      size_t pos = out->buffer.size();
      out->buffer.append(data.substr(offset, piece));
      if (decision.corrupt) {
        out->buffer[pos + piece / 2] =
            static_cast<char>(out->buffer[pos + piece / 2] ^ 0xFF);
        ++delta.corrupted_bytes;
      }
      delta.bytes_written += piece;
      offset += piece;
      state_->cv.notify_all();
    }
  }
  state_->cv.notify_all();
  std::lock_guard<std::mutex> stats_lock(stats_mu_);
  stats_.writes += delta.writes;
  stats_.short_writes += delta.short_writes;
  stats_.eintrs_absorbed += delta.eintrs_absorbed;
  stats_.resets += delta.resets;
  stats_.corrupted_bytes += delta.corrupted_bytes;
  stats_.bytes_written += delta.bytes_written;
  return result;
}

Status ScriptedStream::SetReadTimeout(int timeout_ms) {
  read_timeout_ms_ = timeout_ms < 0 ? 0 : timeout_ms;
  return Status::OK();
}

StatusOr<std::string> ScriptedStream::ReadSome(size_t max_bytes) {
  if (closed_) return Status::IOError("read on closed stream");
  if (max_bytes == 0) return std::string();
  FaultPlan::ReadDecision decision = plan_.NextRead();
  Stats delta;
  ++delta.reads;
  // Stream contract: EINTR never surfaces — it is retried (here: counted)
  // inside the implementation, mirroring TcpConnection's retry loops.
  delta.eintrs_absorbed += decision.eintrs;
  auto commit = [&]() {
    std::lock_guard<std::mutex> stats_lock(stats_mu_);
    stats_.reads += delta.reads;
    stats_.short_reads += delta.short_reads;
    stats_.eintrs_absorbed += delta.eintrs_absorbed;
    stats_.timeouts += delta.timeouts;
    stats_.resets += delta.resets;
    stats_.delays += delta.delays;
    stats_.corrupted_bytes += delta.corrupted_bytes;
    stats_.bytes_read += delta.bytes_read;
  };
  const Clock::TimePoint start = clock_->Now();
  const bool has_deadline = read_timeout_ms_ > 0;
  const Clock::TimePoint deadline =
      start + std::chrono::milliseconds(read_timeout_ms_);
  Clock::TimePoint deliver_after = start;
  if (decision.delay_ns > 0) {
    deliver_after = start + std::chrono::nanoseconds(decision.delay_ns);
    ++delta.delays;
  }
  std::string out;
  {
    std::unique_lock<std::mutex> lock(state_->mu);
    if (decision.reset) {
      state_->reset = true;
      ++delta.resets;
      state_->cv.notify_all();
      commit();
      return Status::IOError("connection reset by peer");
    }
    PipeState::Half* in = is_a_ ? &state_->b_to_a : &state_->a_to_b;
    if (decision.timeout &&
        (in->buffer.empty() || clock_->Now() < deliver_after)) {
      // Scripted EAGAIN: the wait "expired" with nothing deliverable. Data
      // already buffered wins over an injected timeout — a real poll() would
      // report it readable.
      ++delta.timeouts;
      commit();
      return Status::IOError("read timed out");
    }
    for (;;) {
      if (state_->reset) {
        ++delta.resets;
        commit();
        return Status::IOError("connection reset by peer");
      }
      Clock::TimePoint now = clock_->Now();
      // Deliverable bytes (and orderly EOF) win over an expired deadline,
      // like recv() on a socket with data already queued.
      if (now >= deliver_after) {
        if (!in->buffer.empty()) break;
        if (in->write_closed) {
          commit();
          return std::string();  // orderly EOF
        }
      }
      // The read budget is [start, deadline): stepping exactly onto the
      // deadline counts as expired.
      if (has_deadline && now >= deadline) {
        ++delta.timeouts;
        commit();
        return Status::IOError("read timed out");
      }
      state_->cv.wait_for(lock, kPollInterval);
    }
    size_t take = std::min(max_bytes, in->buffer.size());
    if (decision.max_bytes < take) {
      take = decision.max_bytes == 0 ? 1 : decision.max_bytes;
      ++delta.short_reads;
    }
    out = in->buffer.substr(0, take);
    in->buffer.erase(0, take);
  }
  if (decision.corrupt && !out.empty()) {
    out[out.size() / 2] = static_cast<char>(out[out.size() / 2] ^ 0xFF);
    ++delta.corrupted_bytes;
  }
  delta.bytes_read += out.size();
  commit();
  return out;
}

void ScriptedStream::ShutdownWrite() {
  {
    std::lock_guard<std::mutex> lock(state_->mu);
    (is_a_ ? state_->a_to_b : state_->b_to_a).write_closed = true;
  }
  state_->cv.notify_all();
}

void ScriptedStream::Close() {
  if (closed_) return;
  closed_ = true;
  ShutdownWrite();
}

bool ScriptedStream::ok() const { return !closed_; }

ScriptedStream::Stats ScriptedStream::stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

ScriptedPair ScriptedPair::Make(Clock* clock, FaultPlan client_plan,
                                FaultPlan server_plan) {
  auto state = std::make_shared<ScriptedStream::PipeState>();
  ScriptedPair pair;
  pair.client.reset(new ScriptedStream(state, /*is_a=*/true,
                                       std::move(client_plan), clock));
  pair.server.reset(new ScriptedStream(state, /*is_a=*/false,
                                       std::move(server_plan), clock));
  return pair;
}

ScriptedListener::ScriptedListener(Clock* clock, const FaultScript* script)
    : clock_(clock != nullptr ? clock : Clock::Real()), script_(script) {}

ScriptedListener::~ScriptedListener() { Close(); }

std::unique_ptr<ScriptedStream> ScriptedListener::Connect() {
  FaultPlan client_plan;
  FaultPlan server_plan;
  std::unique_ptr<ScriptedStream> client;
  {
    std::lock_guard<std::mutex> lock(mu_);
    uint64_t conn_id = next_conn_id_++;
    if (script_ != nullptr) {
      client_plan = script_->PlanForConnection(2 * conn_id);
      server_plan = script_->PlanForConnection(2 * conn_id + 1);
    }
    ScriptedPair pair =
        ScriptedPair::Make(clock_, std::move(client_plan),
                           std::move(server_plan));
    client = std::move(pair.client);
    pending_.push_back(std::move(pair.server));
  }
  pending_cv_.notify_all();
  return client;
}

StatusOr<std::unique_ptr<net::Stream>> ScriptedListener::AcceptStream(
    int timeout_ms) {
  // Accept waits are real-time even under a VirtualClock: accept timeouts
  // are serve-loop plumbing, not part of the fault model.
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(timeout_ms < 0 ? 0 : timeout_ms);
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    if (closed_) return Status::FailedPrecondition("listener closed");
    if (!pending_.empty()) {
      std::unique_ptr<net::Stream> stream = std::move(pending_.front());
      pending_.pop_front();
      return stream;
    }
    if (pending_cv_.wait_until(lock, deadline) == std::cv_status::timeout &&
        pending_.empty()) {
      return Status::NotFound("accept timed out");
    }
  }
}

void ScriptedListener::Close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  pending_cv_.notify_all();
}

bool ScriptedListener::ok() const {
  std::lock_guard<std::mutex> lock(mu_);
  return !closed_;
}

uint64_t ScriptedListener::connections() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_conn_id_;
}

}  // namespace leakdet::testing
