#include "testing/cluster_chaos.h"

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <sstream>
#include <utility>
#include <vector>

#include "cluster/cluster.h"
#include "cluster/node.h"
#include "core/detector.h"
#include "core/payload_check.h"
#include "core/signature_server.h"
#include "gateway/gateway.h"
#include "gateway/trainer.h"
#include "http/response.h"
#include "match/signature.h"
#include "obs/admin_server.h"
#include "obs/metrics.h"
#include "testing/chaos_util.h"
#include "testing/packet_gen.h"
#include "testing/scripted_conn.h"
#include "util/rng.h"

namespace leakdet::testing {

std::string ClusterChaosResult::Summary() const {
  std::ostringstream out;
  out << "epochs=" << epochs << " ingested=" << ingested
      << " accepted=" << accepted << " delivered=" << delivered
      << " dropped=" << dropped << " in_flight=" << in_flight << "\n"
      << "verdicts_checked=" << verdicts_checked
      << " oracle_mismatches=" << oracle_mismatches
      << " epoch_mismatches=" << epoch_mismatches
      << " conservation_violations=" << conservation_violations
      << " barrier_timeouts=" << barrier_timeouts << "\n"
      << "feed_divergences=" << feed_divergences
      << " promote_divergences=" << promote_divergences
      << " convergence=" << convergence_checks << "/"
      << convergence_failures << " split_epoch_windows="
      << split_epoch_windows << "\n"
      << "replicated=" << records_replicated << " epochs_applied="
      << epochs_applied << " snapshots_installed=" << snapshots_installed
      << " sync_corruptions=" << sync_corruptions
      << " sync_failures=" << sync_failures << "\n"
      << "failovers=" << failovers << " failover_failures="
      << failover_failures << " kills=" << node_kills << " restarts="
      << node_restarts << " partitions=" << partitions << " heals=" << heals
      << "\n"
      << "training_packets=" << training_packets
      << " training_drops=" << training_drops
      << " statusz_checks=" << statusz_checks
      << " statusz_mismatches=" << statusz_mismatches << "\n"
      << "digest=" << std::hex << digest << std::dec
      << " verdict=" << (ok() ? "OK" : "FAILED");
  return out.str();
}

ClusterChaosResult RunClusterChaos(const ClusterChaosOptions& options) {
  ClusterChaosResult result;
  auto log = [&](const std::string& message) {
    if (options.log) options.log(message);
  };
  Rng rng(options.seed);
  const size_t num_nodes = options.nodes < 2 ? 2 : options.nodes;
  const size_t num_shards = options.shards == 0 ? 1 : options.shards;
  result.kill_requested = options.kill_leader_at_epoch > 0 &&
                          options.kill_leader_at_epoch <= options.epochs;
  result.partition_requested =
      options.partition_follower_at_epoch > 0 &&
      options.partition_follower_at_epoch <= options.epochs;

  // The instrumented handset whose identifiers make ground truth: training
  // packets embed these tokens, the PayloadCheck oracle knows them.
  std::vector<core::DeviceTokens> devices(2);
  for (core::DeviceTokens& device : devices) {
    device.android_id = rng.RandomHex(16);
    device.imei = rng.RandomDigits(15);
    device.imsi = rng.RandomDigits(15);
    device.sim_serial = rng.RandomDigits(19);
    device.carrier = "NTT DOCOMO";
  }
  std::vector<std::string> tokens;
  for (const core::DeviceTokens& device : devices) {
    tokens.push_back(device.android_id);
    tokens.push_back(device.imei);
  }
  core::PayloadCheck payload_check(devices);

  core::SignatureServer::Options server_options;
  server_options.retrain_after =
      options.retrain_after == 0 ? 1 : options.retrain_after;
  server_options.pipeline.sample_size = 16;
  server_options.pipeline.normal_corpus_size = 64;
  server_options.pipeline.num_threads = 1;  // deterministic generation

  // The shadow oracle: a never-crashed single-node trainer on this thread,
  // fed the identical training stream the cluster's leader receives. Every
  // feed it publishes is archived by version; cluster nodes must only ever
  // serve byte-identical copies of these.
  core::SignatureServer shadow(&payload_check, server_options);
  std::map<uint64_t, match::SignatureSet> archive;
  std::map<uint64_t, std::string> archive_bytes;
  shadow.SetFeedObserver(
      [&](uint64_t version, const match::SignatureSet& set) {
        archive.emplace(version, set);
        archive_bytes[version] = set.Serialize();
      });
  std::map<uint64_t, std::unique_ptr<core::Detector>> oracles;
  auto oracle_for = [&](uint64_t version) -> core::Detector* {
    auto it = oracles.find(version);
    if (it != oracles.end()) return it->second.get();
    match::SignatureSet set;  // version 0: nothing published yet
    auto archived = archive.find(version);
    if (archived != archive.end()) {
      set = archived->second;
    } else if (version != 0) {
      // A node is serving an epoch the shadow never produced — that is a
      // feed divergence in itself; the empty oracle will also flag verdicts.
      ++result.feed_divergences;
    }
    return oracles
        .emplace(version, std::make_unique<core::Detector>(
                              std::move(set), /*use_host_scope=*/true))
        .first->second.get();
  };

  // Per-slot scripted infrastructure. Disks are seeded per slot so crash
  // damage replays; the replication listeners share one fault script (the
  // control thread drives all replication I/O sequentially, so connection
  // ids — and therefore fault plans — are deterministic).
  std::vector<std::unique_ptr<ScriptedDir>> dirs;
  for (size_t i = 0; i < num_nodes; ++i) {
    dirs.push_back(std::make_unique<ScriptedDir>(
        options.seed * 1000003 + i, options.store_faults));
  }
  std::vector<ScriptedListener*> listeners(num_nodes, nullptr);

  // Delivery ledger: per-(slot, shard) verdict streams. Shard workers drain
  // FIFO, so each stream's order is the submission order — digestable.
  std::mutex records_mu;
  std::vector<std::vector<std::vector<VerdictRecord>>> records(
      num_nodes, std::vector<std::vector<VerdictRecord>>(num_shards));
  std::atomic<uint64_t> delivered{0};

  obs::Registry cluster_registry;
  cluster::ClusterOptions cluster_options;
  cluster_options.heartbeat_miss_threshold = options.heartbeat_miss_threshold;
  cluster_options.max_sync_retries = options.max_sync_retries;
  cluster_options.registry = &cluster_registry;
  cluster::Cluster cluster(cluster_options);

  std::map<std::string, size_t> slot_of;
  for (size_t i = 0; i < num_nodes; ++i) {
    const std::string id = "node-" + std::to_string(i);
    slot_of[id] = i;
    auto factory = [&, i,
                    id]() -> StatusOr<std::unique_ptr<cluster::ClusterNode>> {
      cluster::NodeOptions node_options;
      node_options.node_id = id;
      node_options.dir = dirs[i].get();
      node_options.data_dir = "node";
      node_options.oracle = &payload_check;
      node_options.server = server_options;
      node_options.gateway.num_shards = num_shards;
      node_options.gateway.queue_capacity =
          options.queue_capacity == 0 ? 1 : options.queue_capacity;
      node_options.gateway.pop_batch = 16;
      // kBlock keeps the run replayable: backpressure, never timing drops.
      node_options.gateway.overload = gateway::OverloadPolicy::kBlock;
      node_options.trainer.queue_capacity = 4096;
      node_options.feed.request_deadline_ms = 2000;
      node_options.replog_batch_limit = options.replog_batch_limit;
      // The chaos harness feeds the leader's trainer an explicit seeded
      // stream; detection traffic must not perturb the differential oracle.
      node_options.train_from_gateway = false;
      node_options.sink = [&records, &records_mu, &delivered, i, num_shards](
                              const core::HttpPacket& packet,
                              const gateway::Verdict& verdict) {
        {
          std::lock_guard<std::mutex> lock(records_mu);
          records[i][verdict.shard % num_shards].push_back(
              {packet.app_id, verdict});
        }
        delivered.fetch_add(1, std::memory_order_release);
      };
      LEAKDET_ASSIGN_OR_RETURN(std::unique_ptr<cluster::ClusterNode> node,
                               cluster::ClusterNode::Start(
                                   std::move(node_options)));
      auto listener = std::make_unique<ScriptedListener>(Clock::Real(),
                                                         &options.script);
      listeners[i] = listener.get();
      LEAKDET_RETURN_IF_ERROR(node->ServeReplication(std::move(listener)));
      return node;
    };
    auto connect = [&listeners,
                    i]() -> StatusOr<std::unique_ptr<net::Stream>> {
      std::unique_ptr<ScriptedStream> stream = listeners[i]->Connect();
      (void)stream->SetReadTimeout(5000);
      return StatusOr<std::unique_ptr<net::Stream>>(std::move(stream));
    };
    cluster.AddNode(id, std::move(factory), std::move(connect));
  }
  if (!cluster.Start(/*leader_index=*/0).ok()) {
    ++result.barrier_timeouts;
    return result;
  }

  // Admin plane: cluster membership/epoch-skew on /statusz, checked
  // transport-free via Respond() so a scripted fault can't fake a mismatch.
  obs::AdminServerOptions admin_options;
  admin_options.registry = &cluster_registry;
  obs::AdminServer admin(admin_options);
  cluster.AddStatusTo(&admin);

  // Expected verdict per trace index, fixed at submit time from the serving
  // node's epoch and the shadow archive's Detector for that version.
  std::vector<uint8_t> expected_sensitive;
  std::vector<uint64_t> expected_epoch;
  uint64_t cumulative_accepted = 0;
  uint32_t trace_index = 0;

  // Training-drop ledger across leader incarnations (a failover replaces
  // the TrainerLoop object, whose counter starts at zero).
  gateway::TrainerLoop* current_trainer = nullptr;
  uint64_t offers_to_trainer = 0;
  uint64_t drops_prev_incarnations = 0;
  uint64_t current_trainer_drops = 0;

  size_t killed_slot = num_nodes;  // num_nodes = no kill pending
  size_t restart_at_epoch = 0;
  size_t partitioned_slot = num_nodes;
  bool partition_active = false;
  bool aborted = false;

  for (size_t epoch = 1; epoch <= options.epochs && !aborted; ++epoch) {
    // ---- Scheduled restart: the killed slot rejoins as a follower. ------
    if (killed_slot < num_nodes && restart_at_epoch == epoch) {
      if (cluster.RestartNode(killed_slot).ok()) {
        ++result.node_restarts;
        log("epoch " + std::to_string(epoch) + ": node-" +
            std::to_string(killed_slot) + " restarted");
      } else {
        ++result.failover_failures;
      }
      restart_at_epoch = 0;
    }

    const size_t leader = cluster.leader_index();
    cluster::ClusterNode* leader_node = cluster.node(leader);
    if (leader_node == nullptr || !cluster.alive(leader)) {
      ++result.barrier_timeouts;  // driver invariant broken — fatal
      break;
    }
    gateway::TrainerLoop* trainer = leader_node->trainer();
    if (trainer == nullptr) {
      ++result.barrier_timeouts;
      break;
    }
    if (trainer != current_trainer) {
      if (current_trainer != nullptr) {
        drops_prev_incarnations += current_trainer_drops;
      }
      current_trainer = trainer;
      current_trainer_drops = 0;
      offers_to_trainer = 0;
    }

    // ---- Phase 1: train the leader; the shadow ingests the same stream
    // in the same order (the trainer's mailbox is FIFO). ------------------
    const size_t sensitive_needed = server_options.retrain_after;
    for (size_t i = 0; i < sensitive_needed; ++i) {
      core::HttpPacket packet = GeneratePacket(&rng, tokens, 1.0);
      gateway::Verdict verdict;
      verdict.sensitive = true;
      if (trainer->Offer(packet, verdict)) {
        ++offers_to_trainer;
        shadow.Ingest(packet);
      }
      ++result.training_packets;
      if (i % 2 == 1) {
        core::HttpPacket normal = GeneratePacket(&rng, {}, 0.0);
        if (trainer->Offer(normal, gateway::Verdict{})) {
          ++offers_to_trainer;
          shadow.Ingest(normal);
        }
        ++result.training_packets;
      }
    }
    const uint64_t target_version = shadow.feed_version();

    // ---- Publish barrier. items_processed()'s release/acquire pairing is
    // what makes the leader's store safe to touch from this thread below.
    const uint64_t quiesce_target = offers_to_trainer;
    if (!WaitUntil([&] {
          return trainer->items_processed() >= quiesce_target &&
                 leader_node->epoch_version() >= target_version;
        })) {
      log("epoch " + std::to_string(epoch) + ": publish barrier timed out");
      ++result.barrier_timeouts;
      break;
    }
    current_trainer_drops = trainer->training_drops();
    // Quiesced: flush the leader's log so /replog serves every record.
    (void)leader_node->store().Sync();

    // ---- Differential feed check: leader vs shadow, byte-for-byte. ------
    {
      auto compiled = leader_node->gateway().current_set();
      if (compiled == nullptr || compiled->version() != target_version ||
          compiled->set().Serialize() != archive_bytes[target_version]) {
        ++result.feed_divergences;
      }
    }

    // ---- Scheduled partition: sever one follower before replication, so
    // it serves this epoch's detection traffic on its stale feed. ---------
    if (epoch == options.partition_follower_at_epoch && !partition_active) {
      for (size_t i = 0; i < num_nodes; ++i) {
        if (i != leader && cluster.alive(i)) {
          partitioned_slot = i;
          break;
        }
      }
      if (partitioned_slot < num_nodes) {
        cluster.SetReachable(partitioned_slot, leader, false);
        partition_active = true;
        ++result.partitions;
        log("epoch " + std::to_string(epoch) + ": partitioned node-" +
            std::to_string(partitioned_slot));
      }
    }

    // ---- Phase 2: replication round + convergence checks. ---------------
    cluster::Cluster::SyncStats sync = cluster.SyncFollowers();
    result.records_replicated += sync.records_replicated;
    result.epochs_applied += sync.epochs_applied;
    result.snapshots_installed += sync.snapshots_installed;
    result.sync_corruptions += sync.corruptions_detected;
    result.sync_failures += sync.failures;
    const uint64_t leader_wal = leader_node->wal_last_sequence();
    for (size_t i = 0; i < num_nodes; ++i) {
      if (i == leader || !cluster.alive(i)) continue;
      cluster::ClusterNode* follower = cluster.node(i);
      if (partition_active && i == partitioned_slot) {
        // The split-epoch window: it must still be serving, just stale.
        if (follower->epoch_version() < target_version) {
          ++result.split_epoch_windows;
        }
        continue;
      }
      ++result.convergence_checks;
      if (follower->epoch_version() != target_version ||
          follower->wal_last_sequence() != leader_wal) {
        ++result.convergence_failures;
      }
    }

    // ---- Phase 3: ring-routed detection batch, verified per-node against
    // the Detector oracle for the exact epoch that node is serving. -------
    for (size_t i = 0; i < options.packets_per_epoch; ++i) {
      core::HttpPacket packet =
          GeneratePacket(&rng, tokens, options.p_sensitive);
      packet.app_id = trace_index;
      const uint64_t device_id =
          rng.UniformInt(options.devices == 0 ? 1 : options.devices);
      const std::string route = cluster.RouteFor(device_id);
      auto slot_it = slot_of.find(route);
      if (slot_it == slot_of.end()) {
        ++result.conservation_violations;  // empty ring mid-run — fatal
        aborted = true;
        break;
      }
      cluster::ClusterNode* target = cluster.node(slot_it->second);
      const uint64_t serving_version =
          target != nullptr ? target->epoch_version() : 0;
      expected_sensitive.push_back(
          oracle_for(serving_version)->IsSensitive(packet) ? 1 : 0);
      expected_epoch.push_back(serving_version);
      ++result.ingested;
      if (cluster.Submit(device_id, std::move(packet))) {
        ++result.accepted;
        ++cumulative_accepted;
      }
      ++trace_index;
    }
    if (aborted) break;
    if (!WaitUntil([&] {
          return delivered.load(std::memory_order_acquire) >=
                 cumulative_accepted;
        })) {
      log("epoch " + std::to_string(epoch) + ": delivery barrier timed out");
      ++result.barrier_timeouts;
      break;
    }

    // ---- Phase 4: /statusz vs live cluster state (transport-free). ------
    {
      http::HttpResponse statusz = admin.Respond("GET", "/statusz");
      ++result.statusz_checks;
      std::optional<uint64_t> members =
          StatuszValue(statusz.body(), "members");
      std::optional<uint64_t> alive = StatuszValue(statusz.body(), "alive");
      const std::string leader_line = "leader: node-" + std::to_string(leader);
      const bool leader_listed =
          statusz.body().find(leader_line) != std::string::npos;
      obs::Gauge* leader_epoch_gauge = cluster_registry.GetGauge(
          "cluster.epoch_version", {{"node", "node-" + std::to_string(leader)}});
      if (statusz.status_code() != 200 || !members || *members != num_nodes ||
          !alive || *alive != cluster.num_alive() || !leader_listed ||
          leader_epoch_gauge->Value() !=
              static_cast<int64_t>(target_version)) {
        ++result.statusz_mismatches;
      }
    }

    // ---- Phase 5: heartbeat round. A live leader must never be deposed —
    // the partitioned follower alone cannot split the brain. --------------
    cluster.PollHeartbeats();
    if (cluster.MaybeFailover()) ++result.failover_failures;

    // ---- Scheduled heal: the split window closes; next epoch's
    // replication round must re-converge the stale follower. --------------
    if (partition_active && epoch == options.partition_follower_at_epoch) {
      cluster.SetReachable(partitioned_slot, leader, true);
      partition_active = false;
      ++result.heals;
      log("epoch " + std::to_string(epoch) + ": healed node-" +
          std::to_string(partitioned_slot));
    }

    // ---- Scheduled kill: graceful drain (conservation must survive via
    // the retired ledger), then the disk crashes, then a follower must win
    // the election and serve the shadow's exact feed from its own WAL. ----
    if (epoch == options.kill_leader_at_epoch && killed_slot == num_nodes) {
      drops_prev_incarnations += trainer->training_drops();
      current_trainer = nullptr;
      current_trainer_drops = 0;
      killed_slot = leader;
      if (!cluster.KillLeader().ok()) {
        ++result.failover_failures;
        break;
      }
      ++result.node_kills;
      dirs[killed_slot]->Crash();
      for (size_t round = 0; round < options.heartbeat_miss_threshold;
           ++round) {
        cluster.PollHeartbeats();
      }
      if (!cluster.MaybeFailover()) {
        ++result.failover_failures;
        break;
      }
      cluster::ClusterNode* promoted = cluster.node(cluster.leader_index());
      auto compiled =
          promoted != nullptr ? promoted->gateway().current_set() : nullptr;
      if (compiled == nullptr ||
          compiled->version() != shadow.feed_version() ||
          compiled->set().Serialize() !=
              archive_bytes[shadow.feed_version()]) {
        ++result.promote_divergences;
      }
      restart_at_epoch = epoch + (options.restart_killed_after == 0
                                      ? 1
                                      : options.restart_killed_after);
      log("epoch " + std::to_string(epoch) + ": killed node-" +
          std::to_string(killed_slot) + ", leader is now node-" +
          std::to_string(cluster.leader_index()));
    }

    ++result.epochs;
    log("epoch " + std::to_string(epoch) + " done: accepted=" +
        std::to_string(cumulative_accepted));
  }

  // A restart still pending when the loop ends happens now, so the ledger
  // (and the reopen path) is exercised even by short schedules.
  if (killed_slot < num_nodes && restart_at_epoch != 0) {
    if (cluster.RestartNode(killed_slot).ok()) ++result.node_restarts;
  }

  // ---- Final drain + verification. ------------------------------------
  cluster.Shutdown();
  if (current_trainer != nullptr) {
    drops_prev_incarnations += current_trainer->training_drops();
  }
  result.training_drops = drops_prev_incarnations;
  result.failovers = cluster.failovers();

  cluster::Cluster::Totals totals = cluster.GatewayTotals();
  result.dropped = totals.dropped;
  {
    std::lock_guard<std::mutex> lock(records_mu);
    uint64_t recorded = 0;
    for (const auto& node_records : records) {
      for (const auto& shard_records : node_records) {
        recorded += shard_records.size();
      }
    }
    result.delivered = recorded;
  }
  result.in_flight = result.accepted - result.delivered;
  // Exact conservation across every incarnation: what the driver got into a
  // gateway equals what the gateways admit to, and every admitted packet
  // came back out as exactly one verdict.
  if (result.accepted != totals.submitted ||
      result.delivered != totals.processed ||
      result.accepted + result.dropped >
          result.ingested + totals.dropped) {
    ++result.conservation_violations;
  }

  Fnv1a digest;
  {
    std::lock_guard<std::mutex> lock(records_mu);
    for (size_t slot = 0; slot < records.size(); ++slot) {
      for (size_t shard = 0; shard < records[slot].size(); ++shard) {
        digest.Mix(0xC1A50000ULL + slot * 1024 + shard);
        for (const VerdictRecord& record : records[slot][shard]) {
          const uint32_t index = record.trace_index;
          if (index < expected_sensitive.size()) {
            ++result.verdicts_checked;
            if (record.verdict.sensitive != (expected_sensitive[index] != 0)) {
              ++result.oracle_mismatches;
            }
            if (record.verdict.feed_version != expected_epoch[index]) {
              ++result.epoch_mismatches;
            }
          } else {
            ++result.oracle_mismatches;  // verdict for a packet never sent
          }
          digest.Mix(index);
          digest.Mix(record.verdict.feed_version);
          digest.Mix(record.verdict.sensitive ? 1 : 0);
          digest.Mix(record.verdict.num_matches);
        }
      }
    }
  }
  digest.Mix(result.epochs);
  digest.Mix(result.ingested);
  digest.Mix(result.accepted);
  digest.Mix(result.dropped);
  digest.Mix(result.delivered);
  digest.Mix(result.verdicts_checked);
  digest.Mix(result.oracle_mismatches);
  digest.Mix(result.epoch_mismatches);
  digest.Mix(result.feed_divergences);
  digest.Mix(result.promote_divergences);
  digest.Mix(result.split_epoch_windows);
  digest.Mix(result.records_replicated);
  digest.Mix(result.failovers);
  digest.Mix(result.node_kills);
  digest.Mix(result.node_restarts);
  digest.Mix(result.partitions);
  digest.Mix(result.heals);
  digest.Mix(result.training_packets);
  result.digest = digest.hash;
  return result;
}

}  // namespace leakdet::testing
