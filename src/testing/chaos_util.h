#ifndef LEAKDET_TESTING_CHAOS_UTIL_H_
#define LEAKDET_TESTING_CHAOS_UTIL_H_

#include <chrono>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <thread>

#include "gateway/gateway.h"

namespace leakdet::testing {

/// Shared plumbing of the differential chaos runners (single-node RunChaos
/// and the cluster suite RunClusterChaos): the convergence barrier, the
/// digest accumulator, the traced-verdict record, and the /statusz parser.

inline constexpr auto kChaosBarrierLimit = std::chrono::seconds(120);

/// Real-time convergence wait for the lock-step barriers. The predicates are
/// all "the worker/trainer threads caught up", so this is pure progress
/// waiting — it never influences what the run computes, only when.
inline bool WaitUntil(const std::function<bool()>& pred) {
  auto deadline = std::chrono::steady_clock::now() + kChaosBarrierLimit;
  while (!pred()) {
    if (std::chrono::steady_clock::now() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::microseconds(500));
  }
  return true;
}

/// FNV-1a over a stream of 64-bit values; the replayable-run fingerprint.
struct Fnv1a {
  uint64_t hash = 0xCBF29CE484222325ULL;
  void Mix(uint64_t value) {
    for (int i = 0; i < 8; ++i) {
      hash ^= (value >> (8 * i)) & 0xFF;
      hash *= 0x100000001B3ULL;
    }
  }
};

/// One delivered verdict, keyed back to the submission order by the trace
/// index the driver stamped into packet.app_id.
struct VerdictRecord {
  uint32_t trace_index = 0;
  gateway::Verdict verdict;
};

/// Extracts `key: <uint64>` from a rendered /statusz body. nullopt when the
/// key is absent or its value is not a bare decimal.
inline std::optional<uint64_t> StatuszValue(const std::string& body,
                                            const std::string& key) {
  const std::string needle = key + ": ";
  size_t pos = 0;
  while (pos < body.size()) {
    size_t line_end = body.find('\n', pos);
    if (line_end == std::string::npos) line_end = body.size();
    if (body.compare(pos, needle.size(), needle) == 0) {
      uint64_t value = 0;
      bool any = false;
      for (size_t i = pos + needle.size(); i < line_end; ++i) {
        char c = body[i];
        if (c < '0' || c > '9') return std::nullopt;
        value = value * 10 + static_cast<uint64_t>(c - '0');
        any = true;
      }
      if (any) return value;
      return std::nullopt;
    }
    pos = line_end + 1;
  }
  return std::nullopt;
}

}  // namespace leakdet::testing

#endif  // LEAKDET_TESTING_CHAOS_UTIL_H_
